package gp

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestFitRecoversSmootFunction(t *testing.T) {
	// f(x) = sin(x0) + 0.5 x1.
	f := func(x []float64) float64 { return math.Sin(x[0]) + 0.5*x[1] }
	r := rng.New(1)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		x := []float64{r.Uniform(-2, 2), r.Uniform(-2, 2)}
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	g, err := Fit(xs, ys, RBF{LengthScale: 1, Variance: 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x := []float64{r.Uniform(-1.5, 1.5), r.Uniform(-1.5, 1.5)}
		if math.Abs(g.Predict(x)-f(x)) > 0.05 {
			t.Fatalf("prediction at %v: %v, want %v", x, g.Predict(x), f(x))
		}
	}
}

func TestGradMatchesNumeric(t *testing.T) {
	f := func(x []float64) float64 { return math.Sin(x[0]) * math.Cos(x[1]) }
	r := rng.New(2)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 150; i++ {
		x := []float64{r.Uniform(-2, 2), r.Uniform(-2, 2)}
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	g, err := Fit(xs, ys, RBF{LengthScale: 0.8, Variance: 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// The GP-mean gradient must match the numeric gradient of the GP mean
	// exactly, and the true function's gradient approximately.
	x := []float64{0.3, -0.4}
	grad := g.Grad(x)
	const h = 1e-5
	for i := range x {
		xp := append([]float64{}, x...)
		xm := append([]float64{}, x...)
		xp[i] += h
		xm[i] -= h
		num := (g.Predict(xp) - g.Predict(xm)) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-6 {
			t.Fatalf("grad[%d] = %v, numeric GP grad %v", i, grad[i], num)
		}
	}
	trueGrad := []float64{math.Cos(x[0]) * math.Cos(x[1]), -math.Sin(x[0]) * math.Sin(x[1])}
	for i := range trueGrad {
		if math.Abs(grad[i]-trueGrad[i]) > 0.1 {
			t.Fatalf("grad[%d] = %v far from true %v", i, grad[i], trueGrad[i])
		}
	}
}

func TestPredictVarShrinksAtData(t *testing.T) {
	r := rng.New(3)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 30; i++ {
		x := []float64{r.Uniform(-1, 1)}
		xs = append(xs, x)
		ys = append(ys, x[0]*x[0])
	}
	g, err := Fit(xs, ys, RBF{LengthScale: 0.5, Variance: 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	atData := g.PredictVar(xs[0])
	far := g.PredictVar([]float64{5})
	if atData >= far {
		t.Fatalf("variance at data %v >= far away %v", atData, far)
	}
	if atData < 0 || far < 0 {
		t.Fatal("negative variance")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, RBF{1, 1}, 1e-6); err == nil {
		t.Fatal("accepted empty data")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, RBF{1, 1}, 1e-6); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}

func TestSurrogateComponentInPipeline(t *testing.T) {
	// Fit a surrogate of an opaque component and use it in a core.Pipeline;
	// the surrogate's gradients should approximate the true ones.
	opaque := func(x []float64) []float64 {
		return []float64{x[0]*x[0] + x[1], math.Sin(x[1])}
	}
	r := rng.New(4)
	var xs [][]float64
	for i := 0; i < 200; i++ {
		xs = append(xs, []float64{r.Uniform(-1.5, 1.5), r.Uniform(-1.5, 1.5)})
	}
	sc, err := FitComponent("opaque", opaque, xs, RBF{LengthScale: 0.9, Variance: 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "opaque+gp" {
		t.Fatalf("name = %q", sc.Name())
	}
	sum := &core.DiffFunc{
		ComponentName: "sum",
		Fn: func(x []float64) []float64 {
			s := 0.0
			for _, v := range x {
				s += v
			}
			return []float64{s}
		},
		VJPFn: func(x, ybar []float64) []float64 {
			g := make([]float64, len(x))
			for i := range g {
				g[i] = ybar[0]
			}
			return g
		},
	}
	p := core.NewPipeline(sc, sum)
	x := []float64{0.4, -0.2}
	// True gradient of sum(opaque(x)): [2 x0, 1 + cos(x1)].
	grad := p.Grad(x)
	want := []float64{2 * x[0], 1 + math.Cos(x[1])}
	for i := range want {
		if math.Abs(grad[i]-want[i]) > 0.15 {
			t.Fatalf("surrogate grad[%d] = %v, want ~%v", i, grad[i], want[i])
		}
	}
	// Forward accuracy.
	got := p.EvalScalar(x)
	wantVal := x[0]*x[0] + x[1] + math.Sin(x[1])
	if math.Abs(got-wantVal) > 0.05 {
		t.Fatalf("surrogate forward %v, want %v", got, wantVal)
	}
}

func TestFitComponentValidation(t *testing.T) {
	if _, err := FitComponent("x", func(x []float64) []float64 { return x }, nil, RBF{1, 1}, 1e-6); err == nil {
		t.Fatal("accepted empty sample set")
	}
}

func TestRBFKernelProperties(t *testing.T) {
	k := RBF{LengthScale: 1, Variance: 2}
	a := []float64{1, 2}
	if math.Abs(k.Eval(a, a)-2) > 1e-12 {
		t.Fatal("k(x,x) != variance")
	}
	b := []float64{3, 4}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Fatal("kernel not symmetric")
	}
	if k.Eval(a, b) >= k.Eval(a, a) {
		t.Fatal("kernel not decaying")
	}
	g := k.GradA(a, a)
	if g[0] != 0 || g[1] != 0 {
		t.Fatal("kernel gradient at identical points must vanish")
	}
}
