// Package gp implements Gaussian-process regression with an RBF kernel and
// analytic posterior-mean gradients. §6 proposes GPs as one way to
// approximate non-(sub)differentiable components so they can still
// participate in the gray-box chain rule: fit the GP to samples of the
// component, then differentiate the posterior mean.
package gp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// RBF is the squared-exponential kernel k(a,b) = σ²·exp(−‖a−b‖²/2ℓ²).
type RBF struct {
	LengthScale float64
	Variance    float64
}

// Eval computes the kernel value.
func (k RBF) Eval(a, b []float64) float64 {
	d2 := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d2 += diff * diff
	}
	return k.Variance * math.Exp(-d2/(2*k.LengthScale*k.LengthScale))
}

// GradA computes ∂k(a,b)/∂a.
func (k RBF) GradA(a, b []float64) []float64 {
	v := k.Eval(a, b)
	g := make([]float64, len(a))
	inv := 1 / (k.LengthScale * k.LengthScale)
	for i := range a {
		g[i] = -v * (a[i] - b[i]) * inv
	}
	return g
}

// Regressor is a fitted Gaussian process for a scalar-valued function.
type Regressor struct {
	kernel RBF
	noise  float64
	xs     [][]float64
	alpha  []float64 // (K + σₙ²I)⁻¹ y
	chol   *linalg.Matrix
	mean   float64
}

// Fit trains a GP on the (x, y) samples. The observation noise keeps the
// kernel matrix well conditioned.
func Fit(xs [][]float64, ys []float64, kernel RBF, noise float64) (*Regressor, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("gp: need equal non-empty xs and ys")
	}
	if noise <= 0 {
		noise = 1e-6
	}
	n := len(xs)
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := kernel.Eval(xs[i], xs[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+noise)
	}
	chol, err := linalg.Cholesky(k)
	if err != nil {
		return nil, fmt.Errorf("gp: kernel matrix not PD (try more noise): %w", err)
	}
	centered := make([]float64, n)
	for i := range ys {
		centered[i] = ys[i] - mean
	}
	alpha := linalg.SolveCholesky(chol, centered)
	return &Regressor{kernel: kernel, noise: noise, xs: xs, alpha: alpha, chol: chol, mean: mean}, nil
}

// Predict returns the posterior mean at x.
func (g *Regressor) Predict(x []float64) float64 {
	s := g.mean
	for i, xi := range g.xs {
		s += g.alpha[i] * g.kernel.Eval(x, xi)
	}
	return s
}

// PredictVar returns the posterior variance at x.
func (g *Regressor) PredictVar(x []float64) float64 {
	n := len(g.xs)
	kstar := make([]float64, n)
	for i, xi := range g.xs {
		kstar[i] = g.kernel.Eval(x, xi)
	}
	v := linalg.SolveCholesky(g.chol, kstar)
	out := g.kernel.Eval(x, x) - linalg.Dot(kstar, v)
	if out < 0 {
		out = 0
	}
	return out
}

// Grad returns the gradient of the posterior mean at x — the quantity the
// gray-box analyzer consumes in place of the true component gradient.
func (g *Regressor) Grad(x []float64) []float64 {
	grad := make([]float64, len(x))
	for i, xi := range g.xs {
		kg := g.kernel.GradA(x, xi)
		for j := range grad {
			grad[j] += g.alpha[i] * kg[j]
		}
	}
	return grad
}

// SurrogateComponent adapts a fitted multi-output GP (one Regressor per
// output dimension) into the analyzer's Differentiable interface: Forward
// returns posterior means, VJP combines posterior-mean gradients.
type SurrogateComponent struct {
	ComponentName string
	Outputs       []*Regressor
}

// Name implements core.Component.
func (s *SurrogateComponent) Name() string { return s.ComponentName + "+gp" }

// Forward implements core.Component.
func (s *SurrogateComponent) Forward(x []float64) []float64 {
	out := make([]float64, len(s.Outputs))
	for i, r := range s.Outputs {
		out[i] = r.Predict(x)
	}
	return out
}

// VJP implements core.Differentiable.
func (s *SurrogateComponent) VJP(x, ybar []float64) []float64 {
	grad := make([]float64, len(x))
	for i, r := range s.Outputs {
		if ybar[i] == 0 {
			continue
		}
		g := r.Grad(x)
		for j := range grad {
			grad[j] += ybar[i] * g[j]
		}
	}
	return grad
}

// FitComponent samples an opaque vector function at the given points and
// fits one Regressor per output dimension, returning a Differentiable
// surrogate usable in a core.Pipeline.
func FitComponent(name string, f func([]float64) []float64, xs [][]float64, kernel RBF, noise float64) (*SurrogateComponent, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("gp: no sample points")
	}
	ys := make([][]float64, len(xs))
	for i, x := range xs {
		ys[i] = f(x)
	}
	outDim := len(ys[0])
	regs := make([]*Regressor, outDim)
	col := make([]float64, len(xs))
	for d := 0; d < outDim; d++ {
		for i := range xs {
			col[i] = ys[i][d]
		}
		r, err := Fit(xs, append([]float64{}, col...), kernel, noise)
		if err != nil {
			return nil, fmt.Errorf("gp: output %d: %w", d, err)
		}
		regs[d] = r
	}
	return &SurrogateComponent{ComponentName: name, Outputs: regs}, nil
}
