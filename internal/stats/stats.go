// Package stats provides the small set of summary statistics the
// evaluation code reports: means, extrema, percentiles and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P95, P99  float64
	StdDev         float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	// Welford's one-pass algorithm. The textbook sumSq/n − mean² form
	// cancels catastrophically when the mean dwarfs the spread (a sample
	// like 1e9 + {0,1,2} reports zero or negative variance in float64);
	// Welford subtracts the running mean before squaring, so the variance
	// is computed from the deviations themselves and stays accurate at any
	// magnitude.
	mean, m2 := 0.0, 0.0
	for i, x := range xs {
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = mean
	if variance := m2 / float64(len(xs)); variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P95 = Percentile(sorted, 0.95)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 < p <= 1) of an ASCENDING-sorted
// sample using the nearest-rank method. An empty sample has no quantiles and
// returns NaN — report layers render it as missing data instead of crashing
// (an all-faulted restart set produces exactly this).
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// String renders the summary on one line.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g sd=%.3g",
		s.N, s.Mean, s.Min, s.P50, s.P95, s.Max, s.StdDev)
}

// Histogram bins values into equal-width buckets over [lo, hi]; values
// outside the range clamp to the edge buckets. NaN observations are dropped
// and tallied in NaNs — the clamp path would otherwise sort them into an
// edge bucket (NaN comparisons are all false) and silently skew the shape.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
	// NaNs counts dropped NaN observations; they are excluded from Counts,
	// Total and the CDF.
	NaNs int
}

// NewHistogram allocates a histogram with the given number of buckets.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 || hi <= lo {
		panic("stats: bad histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}
}

// Add records one observation. NaN is counted in NaNs and otherwise ignored.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) {
		h.NaNs++
		return
	}
	frac := (v - h.Lo) / (h.Hi - h.Lo)
	idx := int(frac * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.Total++
}

// CDF returns the cumulative fraction at each bucket's upper edge.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Counts))
	run := 0
	for i, c := range h.Counts {
		run += c
		if h.Total > 0 {
			out[i] = float64(run) / float64(h.Total)
		}
	}
	return out
}

// ASCII renders the histogram as a bar chart for terminal reports.
func (h *Histogram) ASCII(width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo := h.Lo + (h.Hi-h.Lo)*float64(i)/float64(len(h.Counts))
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%8.3g | %s %d\n", lo, strings.Repeat("#", bar), c)
	}
	return b.String()
}
