package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %v, want 3", s.P50)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("sd = %v, want sqrt(2)", s.StdDev)
	}
}

// TestSummarizeLargeMean is the regression test for the catastrophic
// cancellation in the old sumSq/n − mean² variance: on 1e9 + {0,1,2} that
// formula computes a non-positive variance in float64 (the squares agree in
// their leading ~18 digits and the true variance lives below the ulp), which
// the old guard silently rounded to StdDev = 0. Welford must recover the
// exact population variance 2/3.
func TestSummarizeLargeMean(t *testing.T) {
	xs := []float64{1e9, 1e9 + 1, 1e9 + 2}

	// The old formula, verbatim, to prove the sample actually triggers the
	// bug this test guards against.
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(len(xs))
	if naive := sumSq/float64(len(xs)) - mean*mean; naive > 0 {
		t.Fatalf("naive variance = %g; sample no longer triggers cancellation, pick a harder one", naive)
	}

	s := Summarize(xs)
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Fatalf("StdDev = %g, want %g (Welford)", s.StdDev, want)
	}
	if s.Mean != mean {
		t.Fatalf("Mean = %g, want %g", s.Mean, mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.String() != "n=0" {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 1) != 40 {
		t.Fatal("edge percentiles wrong")
	}
	if Percentile(sorted, 0.5) != 20 {
		t.Fatalf("p50 = %v, want 20 (nearest rank)", Percentile(sorted, 0.5))
	}
	if Percentile(sorted, 0.75) != 30 {
		t.Fatal("p75 wrong")
	}
}

// TestPercentileEmpty pins the empty-sample contract: NaN, never a panic.
// An all-faulted restart set reaches the report layers with zero samples,
// and a crash there used to take the whole report down with it.
func TestPercentileEmpty(t *testing.T) {
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if v := Percentile(nil, p); !math.IsNaN(v) {
			t.Fatalf("Percentile(nil, %v) = %v, want NaN", p, v)
		}
		if v := Percentile([]float64{}, p); !math.IsNaN(v) {
			t.Fatalf("Percentile([], %v) = %v, want NaN", p, v)
		}
	}
}

func TestPercentilePropertyMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 3, 7, 9.9, -5, 100} {
		h.Add(v)
	}
	if h.Total != 7 {
		t.Fatalf("total = %d", h.Total)
	}
	// -5 clamps to bucket 0; 100 clamps to bucket 4.
	if h.Counts[0] != 3 { // 0.5, 1, -5
		t.Fatalf("bucket 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 100
		t.Fatalf("bucket 4 = %d, want 2", h.Counts[4])
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1] != 1 {
		t.Fatal("CDF must end at 1")
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if !strings.Contains(h.ASCII(20), "#") {
		t.Fatal("ASCII histogram empty")
	}
}

// TestHistogramNaN: a NaN observation must not land in an edge bucket via
// the clamp path (every NaN comparison is false, so the old code clamped it
// into the last bucket); it is dropped and tallied separately.
func TestHistogramNaN(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(5)
	h.Add(math.NaN())
	h.Add(math.NaN())
	if h.Total != 1 {
		t.Fatalf("Total = %d, want 1 (NaN must not count)", h.Total)
	}
	if h.NaNs != 2 {
		t.Fatalf("NaNs = %d, want 2", h.NaNs)
	}
	for i, c := range h.Counts {
		want := 0
		if i == 2 {
			want = 1
		}
		if c != want {
			t.Fatalf("bucket %d = %d, want %d", i, c, want)
		}
	}
	if cdf := h.CDF(); cdf[len(cdf)-1] != 1 {
		t.Fatal("CDF must still normalize over non-NaN observations")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram accepted")
		}
	}()
	NewHistogram(1, 0, 5)
}
