package dote

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/nn"
)

// This file adapts the DOTE pipeline to the analyzer's Component interface,
// realizing the decomposition of Figure 4: the end-to-end system is the
// composition
//
//	x = [history | demand]
//	H1 (dnn):            [history | demand] -> [logits | demand]
//	H2 (post-processor): [logits  | demand] -> [splits | demand]
//	H3 (routing):        [splits  | demand] -> [per-edge utilization]
//	H4 (mlu):            [utilization]      -> [MLU]
//
// For DOTE-Curr the input is just [demand]; H1 fans it into both roles, so
// the chain rule automatically accounts for the demand's influence through
// the DNN as well as through the routing.

// dnnStage is H1: it runs the DNN on the history part and passes the demand
// through.
type dnnStage struct{ m *Model }

// Name implements core.Component.
func (s *dnnStage) Name() string { return "dnn" }

// Forward implements core.Component.
func (s *dnnStage) Forward(x []float64) []float64 {
	history, demand := s.m.SplitInput(x)
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)
	h := c.T.ConstMat(history, 1, len(history))
	logits := s.m.LogitsValue(c, h)
	out := make([]float64, s.m.TotalPaths()+s.m.NumPairs())
	copy(out, logits.Data())
	copy(out[s.m.TotalPaths():], demand)
	return out
}

// VJP implements core.Differentiable via the tape.
func (s *dnnStage) VJP(x, ybar []float64) []float64 {
	m := s.m
	history, demand := m.SplitInput(x)
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)
	h := c.T.VarMat(history, 1, len(history))
	logits := m.LogitsValue(c, h)
	ad.BackwardVJP(logits, ybar[:m.TotalPaths()])
	hg := h.Grad()

	grad := make([]float64, len(x))
	dbar := ybar[m.TotalPaths():]
	if m.Cfg.Variant == Curr {
		// The single input vector feeds both the DNN and the passthrough.
		for i := range grad {
			grad[i] = hg[i] + dbar[i]
		}
		return grad
	}
	copy(grad, hg)
	for i := range demand {
		grad[m.HistoryDim()+i] = dbar[i]
	}
	return grad
}

// postprocStage is H2: the per-demand softmax over the logits part.
type postprocStage struct{ m *Model }

// Name implements core.Component.
func (s *postprocStage) Name() string { return "post-processor" }

func (s *postprocStage) run(x []float64, ybar []float64) ([]float64, []float64) {
	m := s.m
	t := ad.GetTape()
	defer ad.PutTape(t)
	logits := t.Var(x[:m.TotalPaths()])
	splits := ad.SegmentSoftmax(logits, m.offsets, m.lens)
	out := make([]float64, len(x))
	copy(out, splits.Data())
	copy(out[m.TotalPaths():], x[m.TotalPaths():])
	if ybar == nil {
		return out, nil
	}
	ad.BackwardVJP(splits, ybar[:m.TotalPaths()])
	grad := make([]float64, len(x))
	copy(grad, logits.Grad())
	copy(grad[m.TotalPaths():], ybar[m.TotalPaths():])
	return out, grad
}

// Forward implements core.Component.
func (s *postprocStage) Forward(x []float64) []float64 {
	out, _ := s.run(x, nil)
	return out
}

// VJP implements core.Differentiable.
func (s *postprocStage) VJP(x, ybar []float64) []float64 {
	_, grad := s.run(x, ybar)
	return grad
}

// routingStage is H3: the bilinear routing of demands over splits.
type routingStage struct{ m *Model }

// Name implements core.Component.
func (s *routingStage) Name() string { return "routing" }

func (s *routingStage) run(x []float64, ybar []float64) ([]float64, []float64) {
	m := s.m
	t := ad.GetTape()
	defer ad.PutTape(t)
	splits := t.Var(x[:m.TotalPaths()])
	demand := t.Var(x[m.TotalPaths():])
	util := m.UtilizationValue(t, demand, splits)
	out := make([]float64, util.Len())
	copy(out, util.Data())
	if ybar == nil {
		return out, nil
	}
	ad.BackwardVJP(util, ybar)
	grad := make([]float64, len(x))
	copy(grad, splits.Grad())
	copy(grad[m.TotalPaths():], demand.Grad())
	return out, grad
}

// Forward implements core.Component.
func (s *routingStage) Forward(x []float64) []float64 {
	out, _ := s.run(x, nil)
	return out
}

// VJP implements core.Differentiable.
func (s *routingStage) VJP(x, ybar []float64) []float64 {
	_, grad := s.run(x, ybar)
	return grad
}

// mluStage is H4: the max reduction.
type mluStage struct{}

// Name implements core.Component.
func (mluStage) Name() string { return "mlu" }

// Forward implements core.Component.
func (mluStage) Forward(x []float64) []float64 {
	best := x[0]
	for _, v := range x[1:] {
		if v > best {
			best = v
		}
	}
	return []float64{best}
}

// VJP implements core.Differentiable: the subgradient flows to the first
// attaining edge.
func (mluStage) VJP(x, ybar []float64) []float64 {
	arg, best := 0, x[0]
	for i, v := range x {
		if v > best {
			best, arg = v, i
		}
	}
	grad := make([]float64, len(x))
	grad[arg] = ybar[0]
	return grad
}

// Pipeline returns the four-stage analyzer pipeline for this model. Every
// stage is Differentiable, so the analyzer gets exact chain-rule gradients.
func (m *Model) Pipeline() *core.Pipeline {
	return core.NewPipeline(
		&dnnStage{m},
		&postprocStage{m},
		&routingStage{m},
		mluStage{},
	)
}

// OpaqueRoutingPipeline returns the same pipeline but with the routing and
// MLU stages fused into a single *non-differentiable* component. This is the
// gray-box scenario of §3.2/§6: the analyzer must estimate that stage's
// gradient from samples (wrap via Grayboxed, WithFiniteDiff, or WithSPSA).
//
// The fused stage is backed by incremental evaluators (see sparse.go): its
// forwards are bitwise identical to the previous routing→mlu composition,
// and it advertises core.SparseProbeEvaluator so finite-difference wrappers
// take the per-coordinate fast path. Wrap it in core.DenseProbes to force
// full-vector probing.
func (m *Model) OpaqueRoutingPipeline() *core.Pipeline {
	return core.NewPipeline(
		&dnnStage{m},
		&postprocStage{m},
		newOpaqueRoutingStage(m),
	)
}

// OpaqueRoutingPipelineDense is OpaqueRoutingPipeline with the fused stage
// wrapped in core.DenseProbes: finite differences fall back to full-vector
// forwards. It is the opt-out path (cmd/e2eperf -sparse=false) and the
// baseline side of the sparse-vs-dense equivalence tests and benchmarks.
func (m *Model) OpaqueRoutingPipelineDense() *core.Pipeline {
	return core.NewPipeline(
		&dnnStage{m},
		&postprocStage{m},
		core.DenseProbes(newOpaqueRoutingStage(m)),
	)
}
