package dote

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/te"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func smallModel(t *testing.T, v Variant) *Model {
	t.Helper()
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := DefaultConfig(v)
	cfg.Hidden = []int{16}
	if v == Hist {
		cfg.HistLen = 3
	}
	return New(ps, cfg)
}

func abileneModel(v Variant, hidden []int) *Model {
	ps := paths.NewPathSet(topology.Abilene(), 4)
	cfg := DefaultConfig(v)
	cfg.Hidden = hidden
	return New(ps, cfg)
}

func TestModelDims(t *testing.T) {
	mh := smallModel(t, Hist)
	// Triangle: 6 pairs, 2 paths each = 12 slots.
	if mh.TotalPaths() != 12 {
		t.Fatalf("TotalPaths = %d, want 12", mh.TotalPaths())
	}
	if mh.HistoryDim() != 3*6 {
		t.Fatalf("HistoryDim = %d, want 18", mh.HistoryDim())
	}
	if mh.InputDim() != 18+6 {
		t.Fatalf("Hist InputDim = %d, want 24", mh.InputDim())
	}
	mc := smallModel(t, Curr)
	if mc.InputDim() != 6 || mc.HistoryDim() != 6 {
		t.Fatalf("Curr dims wrong: input %d history %d", mc.InputDim(), mc.HistoryDim())
	}
	if mc.Cfg.HistLen != 1 {
		t.Fatal("Curr must force HistLen = 1")
	}
}

func TestSplitsAreValid(t *testing.T) {
	m := smallModel(t, Hist)
	r := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		h := make([]float64, m.HistoryDim())
		for i := range h {
			h[i] = r.Float64() * 100
		}
		s := m.Splits(h)
		if err := te.ValidateSplits(m.PS, s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestJoinSplitInputRoundTrip(t *testing.T) {
	m := smallModel(t, Hist)
	r := rng.New(2)
	hist := make([]float64, m.HistoryDim())
	dem := make(te.TrafficMatrix, m.NumPairs())
	for i := range hist {
		hist[i] = r.Float64()
	}
	for i := range dem {
		dem[i] = r.Float64()
	}
	x := m.JoinInput(hist, dem)
	h2, d2 := m.SplitInput(x)
	for i := range hist {
		if h2[i] != hist[i] {
			t.Fatal("history round trip failed")
		}
	}
	for i := range dem {
		if d2[i] != dem[i] {
			t.Fatal("demand round trip failed")
		}
	}
	mc := smallModel(t, Curr)
	xc := mc.JoinInput(dem, dem)
	hc, dc := mc.SplitInput(xc)
	for i := range dem {
		if hc[i] != dem[i] || dc[i] != dem[i] {
			t.Fatal("Curr input must be shared history/demand")
		}
	}
}

func TestSystemMLUMatchesTE(t *testing.T) {
	// Routing the splits externally through te must equal the pipeline MLU.
	m := smallModel(t, Hist)
	r := rng.New(3)
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = r.Float64() * 50
	}
	hist, dem := m.SplitInput(x)
	splits := m.Splits(hist)
	want, _ := te.MLU(m.PS, te.TrafficMatrix(dem), splits)
	got := m.SystemMLU(x)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("SystemMLU = %v, te.MLU = %v", got, want)
	}
}

func TestPipelineForwardMatchesSystemMLU(t *testing.T) {
	for _, v := range []Variant{Hist, Curr} {
		m := smallModel(t, v)
		p := m.Pipeline()
		r := rng.New(4)
		for trial := 0; trial < 5; trial++ {
			x := make([]float64, m.InputDim())
			for i := range x {
				x[i] = r.Float64() * 80
			}
			if got, want := p.EvalScalar(x), m.SystemMLU(x); math.Abs(got-want) > 1e-9 {
				t.Fatalf("%v: pipeline %v, SystemMLU %v", v, got, want)
			}
		}
	}
}

func TestOpaquePipelineMatches(t *testing.T) {
	m := smallModel(t, Curr)
	p := m.OpaqueRoutingPipeline()
	r := rng.New(5)
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = 10 + r.Float64()*50
	}
	if got, want := p.EvalScalar(x), m.SystemMLU(x); math.Abs(got-want) > 1e-9 {
		t.Fatalf("opaque pipeline %v, SystemMLU %v", got, want)
	}
}

// TestPipelineGradientNumeric validates the full chain-rule gradient of the
// end-to-end system against central differences — the heart of §3.2.
func TestPipelineGradientNumeric(t *testing.T) {
	for _, v := range []Variant{Hist, Curr} {
		m := smallModel(t, v)
		p := m.Pipeline()
		r := rng.New(6)
		x := make([]float64, m.InputDim())
		for i := range x {
			x[i] = 20 + r.Float64()*40
		}
		grad := p.Grad(x)
		const h = 1e-4
		for i := 0; i < len(x); i++ {
			orig := x[i]
			x[i] = orig + h
			fp := p.EvalScalar(x)
			x[i] = orig - h
			fm := p.EvalScalar(x)
			x[i] = orig
			num := (fp - fm) / (2 * h)
			if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%v: grad[%d] = %v, numeric %v", v, i, grad[i], num)
			}
		}
	}
}

// TestGrayboxedGradientClose checks the finite-difference treatment of the
// opaque routing stage approximates the exact chain-rule gradient.
func TestGrayboxedGradientClose(t *testing.T) {
	m := smallModel(t, Curr)
	exact := m.Pipeline()
	gray := m.OpaqueRoutingPipeline().Grayboxed(1e-5)
	r := rng.New(7)
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = 20 + r.Float64()*40
	}
	ge := exact.Grad(x)
	gg := gray.Grad(x)
	for i := range ge {
		if math.Abs(ge[i]-gg[i]) > 1e-3*(1+math.Abs(ge[i])) {
			t.Fatalf("grad[%d]: exact %v, gray %v", i, ge[i], gg[i])
		}
	}
}

func TestVJPNotImplementedPanics(t *testing.T) {
	m := smallModel(t, Curr)
	p := m.OpaqueRoutingPipeline() // NOT grayboxed
	defer func() {
		if recover() == nil {
			t.Fatal("VJP through an opaque stage must panic with guidance")
		}
	}()
	x := make([]float64, m.InputDim())
	p.Grad(x)
}

func TestTrainingReducesLoss(t *testing.T) {
	m := abileneModel(Curr, []int{32})
	r := rng.New(8)
	gen := traffic.NewGravity(m.PS, 0.3, r)
	seq := traffic.Sequence(gen, 60)
	examples := traffic.CurrWindows(seq)
	opts := DefaultTrainOptions()
	opts.Epochs = 8
	opts.LR = 3e-3
	res, err := Train(m, examples, opts)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if last >= first {
		t.Fatalf("training did not reduce loss: %v -> %v", first, last)
	}
	if last < 1-1e-6 {
		t.Fatalf("loss %v below 1: ratio can never beat the optimal", last)
	}
}

func TestEvaluateAfterTraining(t *testing.T) {
	m := abileneModel(Curr, []int{32})
	r := rng.New(9)
	gen := traffic.NewGravity(m.PS, 0.3, r)
	train := traffic.CurrWindows(traffic.Sequence(gen, 80))
	test := traffic.CurrWindows(traffic.Sequence(gen, 20))
	opts := DefaultTrainOptions()
	opts.Epochs = 12
	opts.LR = 3e-3
	if _, err := Train(m, train, opts); err != nil {
		t.Fatal(err)
	}
	stats, err := Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanRatio < 1-1e-6 {
		t.Fatalf("mean ratio %v below 1 is impossible", stats.MeanRatio)
	}
	if stats.MeanRatio > 2.5 {
		t.Fatalf("mean test ratio %v: training failed to generalize on in-distribution data", stats.MeanRatio)
	}
	if stats.MaxRatio < stats.MeanRatio || stats.P95Ratio < stats.MeanRatio*0.5 {
		t.Fatalf("inconsistent stats: %+v", stats)
	}
	if stats.N != len(test) {
		t.Fatalf("N = %d, want %d", stats.N, len(test))
	}
}

func TestTrainEarlyStopping(t *testing.T) {
	m := abileneModel(Curr, []int{32})
	gen := traffic.NewGravity(m.PS, 0.3, rng.New(14))
	examples := traffic.CurrWindows(traffic.Sequence(gen, 60))
	opts := DefaultTrainOptions()
	opts.Epochs = 50
	opts.LR = 5e-3
	opts.ValFraction = 0.25
	opts.Patience = 2
	res, err := Train(m, examples, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValLoss) != len(res.EpochLoss) {
		t.Fatalf("val loss per epoch missing: %d vs %d", len(res.ValLoss), len(res.EpochLoss))
	}
	if !res.StoppedEarly && len(res.EpochLoss) == opts.Epochs {
		// Either outcome is possible on a lucky run, but with patience 2
		// and 50 epochs, stopping is overwhelmingly likely; if it trained
		// to the end, validation must have kept improving.
		for i := 3; i < len(res.ValLoss); i++ {
			better := false
			for j := i - 2; j <= i; j++ {
				if res.ValLoss[j] < res.ValLoss[i-3] {
					better = true
				}
			}
			if !better {
				t.Fatal("patience should have triggered")
			}
		}
	}
	for _, v := range res.ValLoss {
		if v < 1-1e-6 {
			t.Fatalf("validation ratio %v below 1", v)
		}
	}
}

func TestTrainValSplitKeepsSemantics(t *testing.T) {
	// With a validation split, training still reduces the loss.
	m := abileneModel(Curr, []int{32})
	gen := traffic.NewGravity(m.PS, 0.3, rng.New(15))
	examples := traffic.CurrWindows(traffic.Sequence(gen, 60))
	opts := DefaultTrainOptions()
	opts.Epochs = 8
	opts.LR = 3e-3
	opts.ValFraction = 0.2
	res, err := Train(m, examples, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0] {
		t.Fatal("training with a val split did not reduce loss")
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	m := smallModel(t, Curr)
	if _, err := Train(m, nil, DefaultTrainOptions()); err == nil {
		t.Fatal("Train accepted empty example set")
	}
}

func TestUtilizationValueMatchesLinkLoads(t *testing.T) {
	m := smallModel(t, Hist)
	r := rng.New(10)
	dem := make([]float64, m.NumPairs())
	for i := range dem {
		dem[i] = r.Float64() * 100
	}
	splits := te.UniformSplits(m.PS)
	c := nn.NewCtx(false)
	d := c.T.Const(dem)
	s := c.T.Const(splits)
	util := m.UtilizationValue(c.T, d, s)
	loads := te.LinkLoads(m.PS, te.TrafficMatrix(dem), splits)
	wantU := te.Utilizations(m.PS, loads)
	for i := range wantU {
		if math.Abs(util.Data()[i]-wantU[i]) > 1e-9 {
			t.Fatalf("utilization[%d] = %v, want %v", i, util.Data()[i], wantU[i])
		}
	}
}

func TestDefaultConfigs(t *testing.T) {
	h := DefaultConfig(Hist)
	if h.HistLen != 12 || h.Variant != Hist {
		t.Fatalf("bad Hist config: %+v", h)
	}
	c := DefaultConfig(Curr)
	if c.HistLen != 1 || c.Variant != Curr {
		t.Fatalf("bad Curr config: %+v", c)
	}
	if Hist.String() != "DOTE-Hist" || Curr.String() != "DOTE-Curr" {
		t.Fatal("variant names wrong")
	}
}

func TestPerformanceRatioAtLeastOne(t *testing.T) {
	m := smallModel(t, Curr)
	r := rng.New(11)
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, m.InputDim())
		for i := range x {
			x[i] = 1 + r.Float64()*50
		}
		ratio, sys, opt, err := m.PerformanceRatio(x)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 1-1e-6 {
			t.Fatalf("ratio %v < 1 (sys %v, opt %v): optimal cannot lose", ratio, sys, opt)
		}
	}
}

func TestParallelGradsMatchSequential(t *testing.T) {
	m := smallModel(t, Curr)
	p := m.Pipeline()
	r := rng.New(12)
	xs := make([][]float64, 8)
	for i := range xs {
		xs[i] = make([]float64, m.InputDim())
		for j := range xs[i] {
			xs[i][j] = 10 + r.Float64()*50
		}
	}
	par := core.ParallelGrads(p, xs, 4)
	for i, x := range xs {
		seq := p.Grad(x)
		for j := range seq {
			if math.Abs(seq[j]-par[i][j]) > 1e-12 {
				t.Fatalf("parallel grad differs at input %d dim %d", i, j)
			}
		}
	}
}
