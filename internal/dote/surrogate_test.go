package dote

import (
	"math"
	"testing"

	"repro/internal/core"
)

// badSurrogateCfg returns an adversarially bad surrogate: zero training
// steps (the network stays at its random initialization) and a disagreement
// tolerance no real prediction can meet, so trust is never earned.
func badSurrogateCfg(seed uint64) core.SurrogateGradConfig {
	cfg := core.DefaultSurrogateGradConfig(seed)
	cfg.Surrogate.TrainSteps = 0
	cfg.Surrogate.Warmup = 4
	cfg.DisagreeTol = 1e-12
	cfg.FDStep = 1e-4
	return cfg
}

// TestSurrogateFallbackContractBitwise is the ISSUE's fallback acceptance
// check: with an adversarially bad surrogate the trust/verify loop must keep
// every VJP on the sparse-FD path, so a fixed-seed search takes EXACTLY the
// trajectory of today's Grayboxed pipeline — identical best point, ratio,
// trace, and eval counts, on both engines. Worst case is today's path, not
// worse.
func TestSurrogateFallbackContractBitwise(t *testing.T) {
	for _, engine := range []core.SearchEngine{core.EngineScalar, core.EngineBatched} {
		m := abileneModel(Curr, []int{16})
		cfg := core.DefaultGradientConfig()
		cfg.Iters = 30
		cfg.Restarts = 2
		cfg.EvalEvery = 5
		cfg.Seed = 17
		cfg.Engine = engine

		surPipe, est := m.SurrogateRoutingPipeline(badSurrogateCfg(1))
		rs, err := core.GradientSearch(attackTargetFor(m, surPipe), cfg)
		if err != nil {
			t.Fatalf("%v surrogate search: %v", engine, err)
		}
		rf, err := core.GradientSearch(attackTargetFor(m, m.OpaqueRoutingPipeline().Grayboxed(1e-4)), cfg)
		if err != nil {
			t.Fatalf("%v fd search: %v", engine, err)
		}

		st := est.Stats()
		if st.SurrogateVJPs != 0 || st.Promotions != 0 {
			t.Fatalf("%v: bad surrogate served %d VJPs (%d promotions)", engine, st.SurrogateVJPs, st.Promotions)
		}
		if st.FDVJPs == 0 {
			t.Fatalf("%v: no FD VJPs recorded", engine)
		}
		if rs.BestRatio != rf.BestRatio {
			t.Fatalf("%v: BestRatio %v != %v", engine, rs.BestRatio, rf.BestRatio)
		}
		if rs.BestSysMLU != rf.BestSysMLU || rs.BestOptMLU != rf.BestOptMLU {
			t.Fatalf("%v: best MLU decomposition diverged", engine)
		}
		for i := range rs.BestX {
			if rs.BestX[i] != rf.BestX[i] {
				t.Fatalf("%v: BestX[%d] %v != %v", engine, i, rs.BestX[i], rf.BestX[i])
			}
		}
		if rs.Evals != rf.Evals || rs.GradEvals != rf.GradEvals || rs.LPEvals != rf.LPEvals {
			t.Fatalf("%v: eval counts diverged: surrogate (%d,%d,%d) fd (%d,%d,%d)", engine,
				rs.Evals, rs.GradEvals, rs.LPEvals, rf.Evals, rf.GradEvals, rf.LPEvals)
		}
		// Trace CONTENT is not compared: parallel restarts race to record
		// intermediate improvements, so the trace's interleaving is
		// nondeterministic even for one fixed-seed configuration. The
		// deterministic outputs — best point, ratios, and eval totals — are
		// checked above; here only the invariant that both traces end at
		// their (identical) best.
		for _, tr := range [][]core.TracePoint{rs.Trace, rf.Trace} {
			if len(tr) == 0 || tr[len(tr)-1].Ratio != rs.BestRatio {
				t.Fatalf("%v: trace does not end at the best ratio", engine)
			}
		}
	}
}

// TestSurrogateSearchSavesTrueEvals runs the same fixed-seed search through
// (a) a counting FD baseline — a surrogate estimator that can never earn
// trust, which the fallback contract above proves is bitwise sparse-FD —
// and (b) the real surrogate estimator, and checks the surrogate reaches a
// comparable ratio for a fraction of the true evaluations.
func TestSurrogateSearchSavesTrueEvals(t *testing.T) {
	m := abileneModel(Curr, []int{16})
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 120
	cfg.Restarts = 2
	cfg.EvalEvery = 10
	cfg.Seed = 19

	baseCfg := core.DefaultSurrogateGradConfig(2)
	baseCfg.Surrogate.TrainSteps = 0
	baseCfg.Surrogate.Warmup = 1 << 30 // never warm: pure counting FD
	fdPipe, fdEst := m.SurrogateRoutingPipeline(baseCfg)
	cfg.EvalCache = core.NewEvalCache(1<<14, 0)
	rf, err := core.GradientSearch(attackTargetFor(m, fdPipe), cfg)
	if err != nil {
		t.Fatal(err)
	}

	surCfg := core.DefaultSurrogateGradConfig(2)
	surPipe, surEst := m.SurrogateRoutingPipeline(surCfg)
	cfg.EvalCache = core.NewEvalCache(1<<14, 0)
	rs, err := core.GradientSearch(attackTargetFor(m, surPipe), cfg)
	if err != nil {
		t.Fatal(err)
	}

	fdStats, surStats := fdEst.Stats(), surEst.Stats()
	if surStats.SurrogateVJPs == 0 || surStats.EvalsSaved == 0 {
		t.Fatalf("surrogate never served a gradient: %+v", surStats)
	}
	if surStats.TrueEvals >= fdStats.TrueEvals {
		t.Fatalf("surrogate spent %d true evals, FD baseline %d", surStats.TrueEvals, fdStats.TrueEvals)
	}
	// The searches share seeds and budget; the surrogate run must land in
	// the same ballpark (the Geant-scale 1e-6 acceptance point lives in
	// BenchmarkSurrogateSearch, this guards the mechanism at test speed).
	if rs.BestRatio < 1 || math.Abs(rs.BestRatio-rf.BestRatio) > 0.25*rf.BestRatio {
		t.Fatalf("surrogate ratio %v too far from FD ratio %v (true evals: %d vs %d)",
			rs.BestRatio, rf.BestRatio, surStats.TrueEvals, fdStats.TrueEvals)
	}
	t.Logf("true evals: fd=%d surrogate=%d (%.1fx), ratio fd=%.4f surrogate=%.4f",
		fdStats.TrueEvals, surStats.TrueEvals,
		float64(fdStats.TrueEvals)/float64(surStats.TrueEvals), rf.BestRatio, rs.BestRatio)
}
