package dote

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/te"
)

// Contribution describes one demand pair's share of the bottleneck link's
// load.
type Contribution struct {
	Pair     int
	Src, Dst string
	// Demand is the pair's offered volume; OnBottleneck the part of it the
	// system routed across the bottleneck link.
	Demand, OnBottleneck float64
}

// Explanation attributes an input's MLU to the routing decisions that
// caused it — the kind of artifact §6 (citing XPlain) argues analyzers
// should eventually produce instead of a bare adversarial instance.
type Explanation struct {
	// MLU and the bottleneck link.
	MLU            float64
	BottleneckEdge int
	BottleneckSrc  string
	BottleneckDst  string
	BottleneckCap  float64
	// Contributions lists the pairs loading the bottleneck, sorted by
	// decreasing share.
	Contributions []Contribution
	// OptimalMLU is what the optimal routing achieves on the same demand.
	OptimalMLU float64
}

// Explain runs the pipeline on a search-space input and attributes the
// resulting MLU to demand pairs.
func (m *Model) Explain(x []float64) (*Explanation, error) {
	history, demand := m.SplitInput(x)
	splits := m.Splits(history)
	tm := te.TrafficMatrix(demand)
	mlu, bottleneck := te.MLU(m.PS, tm, splits)
	if bottleneck < 0 {
		return &Explanation{MLU: 0, BottleneckEdge: -1}, nil
	}
	g := m.PS.Graph
	e := g.Edge(bottleneck)
	exp := &Explanation{
		MLU:            mlu,
		BottleneckEdge: bottleneck,
		BottleneckSrc:  g.NodeName(e.Src),
		BottleneckDst:  g.NodeName(e.Dst),
		BottleneckCap:  e.Capacity,
	}
	off, _ := m.PS.Offsets()
	for i, pp := range m.PS.PairPaths {
		if tm[i] == 0 {
			continue
		}
		onB := 0.0
		for k, path := range pp {
			f := tm[i] * splits[off[i]+k]
			if f == 0 {
				continue
			}
			for _, eid := range path.Edges {
				if eid == bottleneck {
					onB += f
					break
				}
			}
		}
		if onB > 0 {
			p := m.PS.Pairs[i]
			exp.Contributions = append(exp.Contributions, Contribution{
				Pair:         i,
				Src:          g.NodeName(p.Src),
				Dst:          g.NodeName(p.Dst),
				Demand:       tm[i],
				OnBottleneck: onB,
			})
		}
	}
	sort.Slice(exp.Contributions, func(a, b int) bool {
		return exp.Contributions[a].OnBottleneck > exp.Contributions[b].OnBottleneck
	})
	opt, _, err := te.OptimalMLU(m.PS, tm)
	if err != nil {
		return nil, err
	}
	exp.OptimalMLU = opt
	return exp, nil
}

// String renders the explanation as a short operator-facing report.
func (e *Explanation) String() string {
	if e.BottleneckEdge < 0 {
		return "no traffic routed"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "MLU %.3f on link %s->%s (cap %g); optimal MLU %.3f (%.2fx gap)\n",
		e.MLU, e.BottleneckSrc, e.BottleneckDst, e.BottleneckCap, e.OptimalMLU, e.Gap())
	shown := e.Contributions
	if len(shown) > 5 {
		shown = shown[:5]
	}
	for _, c := range shown {
		fmt.Fprintf(&b, "  %s->%s: demand %.2f, %.2f of it crosses the bottleneck\n",
			c.Src, c.Dst, c.Demand, c.OnBottleneck)
	}
	if rest := len(e.Contributions) - len(shown); rest > 0 {
		fmt.Fprintf(&b, "  (+%d smaller contributors)\n", rest)
	}
	return b.String()
}

// Gap returns MLU / OptimalMLU (1 when the optimum is zero).
func (e *Explanation) Gap() float64 {
	if e.OptimalMLU <= 0 {
		return 1
	}
	return e.MLU / e.OptimalMLU
}
