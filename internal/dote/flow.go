package dote

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/te"
)

// This file implements the total-flow objective of §4 ("Other TE
// Objectives"): instead of the MLU, the end-to-end performance function is
// the traffic the pipeline actually delivers under proportional shedding.
// Because total flow is not linear in the demands, the analyzer must sweep
// the feasibility target (core.SweepConstraintTarget) rather than rely on
// the MLU's normalization trick.

// DeliveredFlowValue computes, differentiably, the total delivered flow of
// routing `demand` with `splits`: each path's flow is scaled by
// 1/max(1, worst utilization along the path).
func (m *Model) DeliveredFlowValue(t *ad.Tape, demand, splits ad.Value) ad.Value {
	util := m.UtilizationValue(t, demand, splits)
	// Per-slot raw flow: demand[pair(slot)] * splits[slot].
	dPerSlot := ad.Gather(demand, m.slotPair)
	flows := ad.Mul(dPerSlot, splits)
	// Per-slot worst utilization via a flattened gather + segment max, using
	// the incidence layout precomputed in New.
	slotUtil := ad.SegmentMax(ad.Gather(util, m.flowFlat), m.flowOffsets, m.flowLens)
	// max(u, 1) = relu(u - 1) + 1 (smooth enough; subgradient at the kink).
	shed := ad.AddConst(ad.ReLU(ad.AddConst(slotUtil, -1)), 1)
	return ad.Sum(ad.Div(flows, shed))
}

// deliveredStage maps [splits | demand] -> [-delivered]: negative so the
// analyzer's ascent direction REDUCES the delivered traffic.
type deliveredStage struct{ m *Model }

// Name implements core.Component.
func (s *deliveredStage) Name() string { return "delivered-flow" }

func (s *deliveredStage) run(x []float64, ybar []float64) ([]float64, []float64) {
	m := s.m
	t := ad.GetTape()
	defer ad.PutTape(t)
	splits := t.Var(x[:m.TotalPaths()])
	demand := t.Var(x[m.TotalPaths():])
	delivered := ad.Neg(m.DeliveredFlowValue(t, demand, splits))
	out := []float64{delivered.ScalarValue()}
	if ybar == nil {
		return out, nil
	}
	ad.BackwardVJP(delivered, ybar)
	grad := make([]float64, len(x))
	copy(grad, splits.Grad())
	copy(grad[m.TotalPaths():], demand.Grad())
	return out, grad
}

// Forward implements core.Component.
func (s *deliveredStage) Forward(x []float64) []float64 {
	out, _ := s.run(x, nil)
	return out
}

// VJP implements core.Differentiable.
func (s *deliveredStage) VJP(x, ybar []float64) []float64 {
	_, grad := s.run(x, ybar)
	return grad
}

// FlowPipeline returns the pipeline whose scalar output is the NEGATED
// delivered flow — the quantity the analyzer maximizes to find demands the
// system serves badly.
func (m *Model) FlowPipeline() *core.Pipeline {
	return core.NewPipeline(
		&dnnStage{m},
		&postprocStage{m},
		&deliveredStage{m},
	)
}

// DeliveredFlow runs the full pipeline on a search-space input and returns
// the delivered traffic volume.
func (m *Model) DeliveredFlow(x []float64) float64 {
	history, demand := m.SplitInput(x)
	splits := m.Splits(history)
	return te.DeliveredFlow(m.PS, te.TrafficMatrix(demand), splits)
}

// FlowAttackTarget builds an AttackTarget for the total-flow objective: the
// search ascends the negated delivered flow, and inputs are scored by
// OptimalFlow(d) / Delivered(d) (how much traffic the optimal could have
// delivered versus what the learned system actually delivered).
func (m *Model) FlowAttackTarget() *core.AttackTarget {
	demandStart := 0
	if m.Cfg.Variant == Hist {
		demandStart = m.HistoryDim()
	}
	t := &core.AttackTarget{
		Pipeline:    m.FlowPipeline(),
		InputDim:    m.InputDim(),
		DemandStart: demandStart,
		DemandLen:   m.NumPairs(),
		PS:          m.PS,
		MaxDemand:   m.PS.Graph.AvgLinkCapacity(),
	}
	t.RatioOverride = func(x []float64) (float64, float64, float64, error) {
		_, demand := m.SplitInput(x)
		tm := te.TrafficMatrix(demand)
		if tm.Total() == 0 {
			return 1, 0, 0, nil
		}
		delivered := m.DeliveredFlow(x)
		optFlow, err := te.MaxTotalFlow(m.PS, tm)
		if err != nil {
			return 0, 0, 0, err
		}
		if delivered <= 1e-9 {
			if optFlow <= 1e-9 {
				return 1, delivered, optFlow, nil
			}
			return optFlow / 1e-9, delivered, optFlow, nil
		}
		return optFlow / delivered, delivered, optFlow, nil
	}
	return t
}

// String renders the model briefly.
func (m *Model) String() string {
	return fmt.Sprintf("%s(K=%d, hidden=%v, %s)", m.Cfg.Variant, m.Cfg.HistLen, m.Cfg.Hidden, m.Cfg.Act)
}
