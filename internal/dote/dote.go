// Package dote implements the learning-enabled traffic-engineering pipeline
// of Figure 2, after DOTE (Perry et al., NSDI '23): a DNN maps the last K
// traffic matrices to split-ratio logits, a post-processor normalizes them
// into per-demand split ratios, and the routing stage yields the MLU.
//
// Two variants are evaluated in §5:
//   - DOTE-Hist: the DNN sees the last K=12 demand matrices and must predict
//     splits for the (unseen) next epoch.
//   - DOTE-Curr: the DNN sees the current matrix itself (like Teal).
package dote

import (
	"fmt"
	"sync"

	"repro/internal/ad"
	"repro/internal/nn"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/te"
)

// Variant selects the pipeline input.
type Variant int

const (
	// Hist is DOTE-Hist: input = last K traffic matrices.
	Hist Variant = iota
	// Curr is DOTE-Curr: input = the current traffic matrix.
	Curr
)

func (v Variant) String() string {
	if v == Curr {
		return "DOTE-Curr"
	}
	return "DOTE-Hist"
}

// Config describes a DOTE model.
type Config struct {
	Variant Variant
	// HistLen is K, the number of history matrices (ignored for Curr,
	// which always uses 1).
	HistLen int
	// Hidden lists the hidden layer widths.
	Hidden []int
	// Act is the hidden activation. DOTE uses a smooth nonlinearity; the
	// default is ELU, which white-box tools cannot encode exactly (§5).
	Act nn.ActKind
	// Seed controls weight initialization.
	Seed uint64
}

// DefaultConfig returns the §5 configuration for the given variant.
func DefaultConfig(v Variant) Config {
	k := 12
	if v == Curr {
		k = 1
	}
	return Config{Variant: v, HistLen: k, Hidden: []int{128, 128}, Act: nn.ActELU, Seed: 1}
}

// Model is a DOTE pipeline bound to a topology's path set.
type Model struct {
	PS  *paths.PathSet
	Cfg Config
	Net *nn.Sequential

	// segment layout of the split-ratio vector
	offsets, lens []int
	totalPaths    int
	// routing incidence: for each path slot, its pair and edge list
	slotPair  []int
	slotEdges [][]int
	caps      []float64
	// utilization kernels, built once in New so the per-call hot path
	// records them onto the tape without allocating closures
	utilFwd func(in [][]float64, out []float64)
	utilBwd func(in [][]float64, out, gout []float64, gin [][]float64)
	// flattened slot→edge incidence for the delivered-flow objective
	flowFlat, flowOffsets, flowLens []int
	// InputScale normalizes demands before they enter the DNN.
	InputScale float64
	// SparseRefresh overrides the incremental evaluators' full-recompute
	// interval in OpaqueRoutingPipeline's fused routing+MLU stage (0 keeps
	// te.DefaultRefreshEvery). Set before building the pipeline.
	SparseRefresh int

	// per-batch-size segment layouts for the batched stages, built lazily
	// and cached for the life of the model (batch sizes are few: at most
	// one per distinct active-restart count)
	batchMu   sync.Mutex
	batchSegs map[int]*batchSegments
}

// batchSegments replicates the per-pair segment layout across R rows of a
// flattened [R·T] logits/splits vector. The slices are handed to the tape's
// segment ops, which retain them until Reset — they are cached here and
// never mutated, satisfying that contract.
type batchSegments struct {
	offsets, lens []int
}

// batchSegments returns the cached R-row segment layout.
func (m *Model) batchSegments(rows int) *batchSegments {
	m.batchMu.Lock()
	defer m.batchMu.Unlock()
	if bs, ok := m.batchSegs[rows]; ok {
		return bs
	}
	if m.batchSegs == nil {
		m.batchSegs = make(map[int]*batchSegments)
	}
	nSeg := len(m.offsets)
	bs := &batchSegments{
		offsets: make([]int, rows*nSeg),
		lens:    make([]int, rows*nSeg),
	}
	for r := 0; r < rows; r++ {
		for i := 0; i < nSeg; i++ {
			bs.offsets[r*nSeg+i] = r*m.totalPaths + m.offsets[i]
			bs.lens[r*nSeg+i] = m.lens[i]
		}
	}
	m.batchSegs[rows] = bs
	return bs
}

// New builds a DOTE model for the given path set.
func New(ps *paths.PathSet, cfg Config) *Model {
	if cfg.Variant == Curr {
		cfg.HistLen = 1
	}
	if cfg.HistLen < 1 {
		panic("dote: HistLen must be >= 1")
	}
	offsets, total := ps.Offsets()
	lens := make([]int, ps.NumPairs())
	for i, pp := range ps.PairPaths {
		lens[i] = len(pp)
	}
	slotPair := make([]int, total)
	slotEdges := make([][]int, total)
	for i, pp := range ps.PairPaths {
		for k, path := range pp {
			slotPair[offsets[i]+k] = i
			slotEdges[offsets[i]+k] = path.Edges
		}
	}
	sizes := append([]int{cfg.HistLen * ps.NumPairs()}, cfg.Hidden...)
	sizes = append(sizes, total)
	m := &Model{
		PS:         ps,
		Cfg:        cfg,
		Net:        nn.MLP("dote", sizes, cfg.Act, rng.New(cfg.Seed)),
		offsets:    offsets,
		lens:       lens,
		totalPaths: total,
		slotPair:   slotPair,
		slotEdges:  slotEdges,
		InputScale: ps.Graph.AvgLinkCapacity(),
	}
	g := ps.Graph
	m.caps = make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		m.caps[e] = g.Edge(e).Capacity
	}
	m.flowOffsets = make([]int, len(slotEdges))
	m.flowLens = make([]int, len(slotEdges))
	for slot, edges := range slotEdges {
		m.flowOffsets[slot] = len(m.flowFlat)
		m.flowLens[slot] = len(edges)
		m.flowFlat = append(m.flowFlat, edges...)
	}
	caps := m.caps
	// The utilization kernels are row-generalized: they infer the batch size
	// from len(out)/len(caps) and route each [demand|splits] row into its own
	// utilization row, so the same closures serve the scalar pipeline (R=1)
	// and the batched restart engine. Per-row arithmetic is identical in both
	// cases, a requirement for batched/scalar trajectory equivalence.
	nPairs, nSlots := ps.NumPairs(), total
	m.utilFwd = func(in [][]float64, out []float64) {
		d, s := in[0], in[1]
		nE := len(caps)
		for base, db, sb := 0, 0, 0; base < len(out); base, db, sb = base+nE, db+nPairs, sb+nSlots {
			dd := d[db : db+nPairs]
			ss := s[sb : sb+nSlots]
			oo := out[base : base+nE]
			for slot, edges := range slotEdges {
				f := dd[slotPair[slot]] * ss[slot]
				if f == 0 {
					continue
				}
				for _, e := range edges {
					oo[e] += f
				}
			}
			for e := range oo {
				oo[e] /= caps[e]
			}
		}
	}
	m.utilBwd = func(in [][]float64, out, gout []float64, gin [][]float64) {
		d, s := in[0], in[1]
		gd, gs := gin[0], gin[1]
		nE := len(caps)
		for base, db, sb := 0, 0, 0; base < len(gout); base, db, sb = base+nE, db+nPairs, sb+nSlots {
			dd := d[db : db+nPairs]
			ss := s[sb : sb+nSlots]
			gg := gout[base : base+nE]
			for slot, edges := range slotEdges {
				sum := 0.0
				for _, e := range edges {
					sum += gg[e] / caps[e]
				}
				if gd != nil {
					gd[db+slotPair[slot]] += ss[slot] * sum
				}
				if gs != nil {
					gs[sb+slot] += dd[slotPair[slot]] * sum
				}
			}
		}
	}
	return m
}

// NumPairs returns the demand dimensionality.
func (m *Model) NumPairs() int { return m.PS.NumPairs() }

// TotalPaths returns the split-ratio dimensionality.
func (m *Model) TotalPaths() int { return m.totalPaths }

// HistoryDim returns the DNN input dimensionality (K · pairs).
func (m *Model) HistoryDim() int { return m.Cfg.HistLen * m.PS.NumPairs() }

// InputDim returns the dimensionality of the full adversarial search space:
// the DNN input plus, for DOTE-Hist, the next-epoch demand. For DOTE-Curr
// the current matrix plays both roles, so InputDim == NumPairs.
func (m *Model) InputDim() int {
	if m.Cfg.Variant == Curr {
		return m.PS.NumPairs()
	}
	return m.HistoryDim() + m.PS.NumPairs()
}

// SplitInput separates a search-space vector into the DNN history input and
// the demand to be routed.
func (m *Model) SplitInput(x []float64) (history, demand []float64) {
	if len(x) != m.InputDim() {
		panic(fmt.Sprintf("dote: input length %d, want %d", len(x), m.InputDim()))
	}
	if m.Cfg.Variant == Curr {
		return x, x
	}
	return x[:m.HistoryDim()], x[m.HistoryDim():]
}

// JoinInput concatenates history and demand into a search-space vector.
func (m *Model) JoinInput(history []float64, demand te.TrafficMatrix) []float64 {
	if m.Cfg.Variant == Curr {
		out := make([]float64, len(demand))
		copy(out, demand)
		return out
	}
	if len(history) != m.HistoryDim() {
		panic("dote: history length mismatch")
	}
	out := make([]float64, 0, m.InputDim())
	out = append(out, history...)
	out = append(out, demand...)
	return out
}

// LogitsValue runs the DNN on a (scaled) history input of shape [1, K·P],
// returning raw split logits of shape [1, totalPaths].
func (m *Model) LogitsValue(c *nn.Ctx, hist ad.Value) ad.Value {
	scaled := ad.Scale(hist, 1/m.InputScale)
	return m.Net.Forward(c, scaled)
}

// SplitsValue converts logits (shape [1, T] or [T]) to split ratios via the
// per-demand softmax post-processor.
func (m *Model) SplitsValue(logits ad.Value) ad.Value {
	flat := ad.Reshape(logits, logits.Len(), 1)
	return ad.SegmentSoftmax(flat, m.offsets, m.lens)
}

// UtilizationValue routes demand (length P) according to splits (length T)
// and returns per-edge utilization (length E). Both inputs are tape values,
// so gradients flow to demands AND splits — the bilinear routing stage.
func (m *Model) UtilizationValue(t *ad.Tape, demand, splits ad.Value) ad.Value {
	return ad.Custom(t, []ad.Value{demand, splits}, len(m.caps), 1, m.utilFwd, m.utilBwd)
}

// MLUValue reduces per-edge utilization to the scalar MLU.
func (m *Model) MLUValue(util ad.Value) ad.Value { return ad.Max(util) }

// Splits runs inference: history (length K·P, raw demand units) to split
// ratios.
func (m *Model) Splits(history []float64) te.Splits {
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)
	h := c.T.ConstMat(history, 1, len(history))
	logits := m.LogitsValue(c, h)
	s := m.SplitsValue(logits)
	out := make(te.Splits, s.Len())
	copy(out, s.Data())
	return out
}

// SystemMLU runs the entire pipeline on a search-space input and returns
// the resulting MLU.
func (m *Model) SystemMLU(x []float64) float64 {
	history, demand := m.SplitInput(x)
	splits := m.Splits(history)
	mlu, _ := te.MLU(m.PS, te.TrafficMatrix(demand), splits)
	return mlu
}

// PerformanceRatio evaluates Eq. 2 on a search-space input: the pipeline's
// MLU over the LP-optimal MLU for the routed demand.
func (m *Model) PerformanceRatio(x []float64) (ratio, sys, opt float64, err error) {
	history, demand := m.SplitInput(x)
	splits := m.Splits(history)
	return te.PerformanceRatio(m.PS, te.TrafficMatrix(demand), splits)
}
