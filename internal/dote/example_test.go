package dote_test

import (
	"fmt"

	"repro/internal/dote"
	"repro/internal/paths"
	"repro/internal/te"
	"repro/internal/topology"
)

// ExampleModel_Splits shows the pipeline's inference path: a (here
// untrained) DOTE-Curr model turns the current traffic matrix into valid
// split ratios — non-negative and summing to one per demand.
func ExampleModel_Splits() {
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{8}
	m := dote.New(ps, cfg)

	demand := make([]float64, m.NumPairs())
	demand[0] = 50
	splits := m.Splits(demand)
	err := te.ValidateSplits(ps, splits)
	fmt.Println("pairs:", m.NumPairs(), "path slots:", m.TotalPaths(), "valid:", err == nil)
	// Output: pairs: 6 path slots: 12 valid: true
}

// ExampleModel_SystemMLU evaluates the full pipeline — DNN, post-processor,
// routing — on one input.
func ExampleModel_SystemMLU() {
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{8}
	m := dote.New(ps, cfg)

	x := make([]float64, m.InputDim()) // zero demand -> zero utilization
	fmt.Println("MLU on zero demand:", m.SystemMLU(x))
	// Output: MLU on zero demand: 0
}
