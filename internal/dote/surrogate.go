package dote

import "repro/internal/core"

// SurrogateRoutingPipeline is OpaqueRoutingPipeline with the fused
// routing+MLU stage wrapped in the surrogate-guided estimator (§6 closed
// loop): true evaluations the search performs train an online DNN surrogate
// of the stage, and once the surrogate earns trust its network gradient
// replaces the O(n) finite-difference probe sweep. Until then — and whenever
// the trust/verify loop demotes the surrogate — gradients fall back to the
// same sparse incremental probing OpaqueRoutingPipeline().Grayboxed uses,
// so the worst case is exactly that path.
//
// The estimator is returned alongside the pipeline so callers can read its
// trust/savings counters (Stats) and checkpoint the trained surrogate.
// Unless the caller supplied per-coordinate input scales, the [splits |
// demand] stage layout gets its natural normalization: splits are already
// in [0, 1], demands are divided by the average link capacity.
func (m *Model) SurrogateRoutingPipeline(cfg core.SurrogateGradConfig) (*core.Pipeline, *core.SurrogateEstimator) {
	inDim := m.TotalPaths() + m.NumPairs()
	if cfg.Surrogate.InputScales == nil {
		scales := make([]float64, inDim)
		maxD := m.PS.Graph.AvgLinkCapacity()
		if maxD <= 0 {
			maxD = 1
		}
		for i := 0; i < m.TotalPaths(); i++ {
			scales[i] = 1
		}
		for i := m.TotalPaths(); i < inDim; i++ {
			scales[i] = maxD
		}
		cfg.Surrogate.InputScales = scales
	}
	est := core.WithSurrogateGradient(newOpaqueRoutingStage(m), inDim, 1, cfg)
	return core.NewPipeline(
		&dnnStage{m},
		&postprocStage{m},
		est,
	), est
}
