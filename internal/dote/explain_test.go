package dote

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestExplainAttributesBottleneck(t *testing.T) {
	m := smallModel(t, Curr)
	r := rng.New(1)
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = 10 + r.Float64()*80
	}
	exp, err := m.Explain(x)
	if err != nil {
		t.Fatal(err)
	}
	if exp.BottleneckEdge < 0 {
		t.Fatal("no bottleneck on a loaded network")
	}
	// The explanation's MLU must equal the pipeline's.
	if got := m.SystemMLU(x); math.Abs(got-exp.MLU) > 1e-9 {
		t.Fatalf("Explain MLU %v != SystemMLU %v", exp.MLU, got)
	}
	// The contributions on the bottleneck must sum to its load:
	// load = MLU * capacity.
	sum := 0.0
	for _, c := range exp.Contributions {
		if c.OnBottleneck <= 0 || c.OnBottleneck > c.Demand+1e-9 {
			t.Fatalf("bad contribution: %+v", c)
		}
		sum += c.OnBottleneck
	}
	if math.Abs(sum-exp.MLU*exp.BottleneckCap) > 1e-6*(1+sum) {
		t.Fatalf("contributions sum %v != bottleneck load %v", sum, exp.MLU*exp.BottleneckCap)
	}
	// Sorted descending.
	for i := 1; i < len(exp.Contributions); i++ {
		if exp.Contributions[i].OnBottleneck > exp.Contributions[i-1].OnBottleneck {
			t.Fatal("contributions not sorted")
		}
	}
	if exp.Gap() < 1-1e-9 {
		t.Fatalf("gap %v below 1", exp.Gap())
	}
	s := exp.String()
	if !strings.Contains(s, "MLU") || !strings.Contains(s, "bottleneck") {
		t.Fatalf("unhelpful explanation string: %q", s)
	}
}

func TestExplainZeroTraffic(t *testing.T) {
	m := smallModel(t, Curr)
	x := make([]float64, m.InputDim())
	exp, err := m.Explain(x)
	if err != nil {
		t.Fatal(err)
	}
	if exp.BottleneckEdge != -1 || exp.String() == "" {
		t.Fatalf("zero-traffic explanation wrong: %+v", exp)
	}
}

func TestExplainSingleHotPair(t *testing.T) {
	// With exactly one demand, that pair must be the only contributor.
	m := smallModel(t, Curr)
	x := make([]float64, m.InputDim())
	x[0] = 100
	exp, err := m.Explain(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Contributions) != 1 || exp.Contributions[0].Pair != 0 {
		t.Fatalf("single-pair attribution wrong: %+v", exp.Contributions)
	}
	if math.Abs(exp.Contributions[0].Demand-100) > 1e-9 {
		t.Fatal("demand misreported")
	}
}
