package dote

import (
	"context"
	"fmt"

	"repro/internal/ad"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/te"
	"repro/internal/traffic"
)

// TrainOptions control end-to-end training.
type TrainOptions struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      uint64
	// ValFraction, when positive, holds out that fraction of the examples
	// as a validation split and enables early stopping.
	ValFraction float64
	// Patience stops training after this many epochs without validation
	// improvement (0 = train for the full Epochs budget). The best-seen
	// weights are restored on stop.
	Patience int
	// Verbose, when non-nil, receives one line per epoch.
	Verbose func(string)
	// Obs, when non-nil, receives training telemetry: "dote.train.epoch.ms"
	// and "dote.train.batch.ms" latency histograms, a "dote.train.loss"
	// gauge tracking the latest epoch's mean loss, and counters
	// "dote.train.epochs" / "dote.train.batches". Nil adds no overhead.
	Obs *obs.Registry
}

// DefaultTrainOptions returns a configuration that converges on
// Abilene-scale problems in seconds.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 30, BatchSize: 16, LR: 1e-3, Seed: 7}
}

// TrainResult reports training progress.
type TrainResult struct {
	// EpochLoss holds the mean training loss (MLU ratio) per epoch.
	EpochLoss []float64
	// ValLoss holds the validation loss per epoch (empty without a split).
	ValLoss []float64
	// StoppedEarly reports whether patience triggered.
	StoppedEarly bool
}

// Train fits the model end to end, exactly as DOTE does: the loss for one
// example is the differentiable MLU obtained by routing the next epoch's
// demands with the predicted splits, divided by the (precomputed) optimal
// MLU — so the loss is the performance ratio of Eq. 2 and a perfectly
// trained model approaches loss 1.
func Train(m *Model, examples []traffic.Example, opts TrainOptions) (*TrainResult, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("dote: no training examples")
	}
	// Precompute optimal MLUs (LP per example, done once).
	optimal := make([]float64, len(examples))
	for i, ex := range examples {
		opt, _, err := te.OptimalMLU(m.PS, ex.Next)
		if err != nil {
			return nil, fmt.Errorf("dote: optimal MLU for example %d: %w", i, err)
		}
		if opt <= 0 {
			optimal[i] = 1 // zero-demand epoch: any routing is "optimal"
		} else {
			optimal[i] = opt
		}
	}
	r := rng.New(opts.Seed)
	// Optional validation split for early stopping.
	var valIdx []int
	trainIdx := make([]int, len(examples))
	for i := range trainIdx {
		trainIdx[i] = i
	}
	if opts.ValFraction > 0 && len(examples) >= 4 {
		r.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
		nVal := int(opts.ValFraction * float64(len(examples)))
		if nVal < 1 {
			nVal = 1
		}
		if nVal > len(examples)/2 {
			nVal = len(examples) / 2
		}
		valIdx = append(valIdx, trainIdx[:nVal]...)
		trainIdx = trainIdx[nVal:]
	}
	valLoss := func() float64 {
		total := 0.0
		for _, idx := range valIdx {
			ex := examples[idx]
			splits := m.Splits(ex.History)
			mlu, _ := te.MLU(m.PS, ex.Next, splits)
			total += mlu / optimal[idx]
		}
		return total / float64(len(valIdx))
	}
	snapshot := func() [][]float64 {
		out := make([][]float64, 0, len(m.Net.Params()))
		for _, p := range m.Net.Params() {
			out = append(out, append([]float64{}, p.Data...))
		}
		return out
	}
	restore := func(weights [][]float64) {
		for i, p := range m.Net.Params() {
			copy(p.Data, weights[i])
		}
	}

	optzr := nn.NewAdam(opts.LR)
	params := m.Net.Params()
	res := &TrainResult{}
	bestVal := 0.0
	var bestWeights [][]float64
	stale := 0
	// Pre-resolved telemetry handles (nil registry → nil handles → no-ops).
	epochHist := opts.Obs.Histogram("dote.train.epoch.ms")
	batchHist := opts.Obs.Histogram("dote.train.batch.ms")
	lossGauge := opts.Obs.Gauge("dote.train.loss")
	epochCtr := opts.Obs.Counter("dote.train.epochs")
	batchCtr := opts.Obs.Counter("dote.train.batches")
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		epochTimer := epochHist.StartTimer()
		perm := make([]int, len(trainIdx))
		copy(perm, trainIdx)
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		epochLoss, batches := 0.0, 0
		for start := 0; start < len(perm); start += opts.BatchSize {
			batchTimer := batchHist.StartTimer()
			end := start + opts.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			batch := perm[start:end]
			nn.ZeroGrads(params)
			// One tape per batch: the DNN runs as a single batched matmul;
			// the per-sample softmax/routing/max stages share the tape, so
			// a single backward pass yields the mean-loss gradient.
			c := nn.GetCtx(true)
			histDim := len(examples[batch[0]].History)
			stacked := make([]float64, 0, len(batch)*histDim)
			for _, idx := range batch {
				stacked = append(stacked, examples[idx].History...)
			}
			h := c.T.ConstMat(stacked, len(batch), histDim)
			logits := m.LogitsValue(c, h)
			losses := make([]ad.Value, len(batch))
			for bi, idx := range batch {
				splits := m.SplitsValue(ad.Row(logits, bi))
				d := c.T.Const(examples[idx].Next)
				util := m.UtilizationValue(c.T, d, splits)
				losses[bi] = ad.Scale(m.MLUValue(util), 1/optimal[idx])
			}
			loss := ad.Scale(ad.Sum(ad.Concat(losses...)), 1/float64(len(batch)))
			batchLoss := loss.ScalarValue()
			ad.Backward(loss)
			c.Harvest()
			nn.PutCtx(c)
			nn.ClipGradNorm(params, 10)
			optzr.Step(params)
			epochLoss += batchLoss
			batches++
			batchTimer.Stop()
			batchCtr.Inc()
		}
		mean := epochLoss / float64(batches)
		res.EpochLoss = append(res.EpochLoss, mean)
		epochTimer.Stop()
		epochCtr.Inc()
		lossGauge.Set(mean)
		if len(valIdx) > 0 {
			v := valLoss()
			res.ValLoss = append(res.ValLoss, v)
			if bestWeights == nil || v < bestVal {
				bestVal = v
				bestWeights = snapshot()
				stale = 0
			} else {
				stale++
				if opts.Patience > 0 && stale >= opts.Patience {
					restore(bestWeights)
					res.StoppedEarly = true
					if opts.Verbose != nil {
						opts.Verbose(fmt.Sprintf("early stop at epoch %d (best val %.4f)", epoch, bestVal))
					}
					return res, nil
				}
			}
			if opts.Verbose != nil {
				opts.Verbose(fmt.Sprintf("epoch %3d: train %.4f val %.4f", epoch, mean, v))
			}
			continue
		}
		if opts.Verbose != nil {
			opts.Verbose(fmt.Sprintf("epoch %3d: mean ratio %.4f", epoch, mean))
		}
	}
	if bestWeights != nil {
		restore(bestWeights)
	}
	return res, nil
}

// EvalStats summarizes test-set performance (the "DOTE's test set" rows of
// Tables 1 and 2).
type EvalStats struct {
	MeanRatio float64
	MaxRatio  float64
	P95Ratio  float64
	N         int
}

// Evaluate computes the performance ratio of the trained pipeline on held
// out examples.
func Evaluate(m *Model, examples []traffic.Example) (EvalStats, error) {
	return EvaluateCtx(context.Background(), m, examples)
}

// EvaluateCtx is Evaluate under a caller-controlled context: cancellation is
// observed between examples and the per-example optimal-MLU LP inherits the
// context's deadline, so a wall-clock-budgeted evaluation stops promptly
// instead of finishing the whole test set.
func EvaluateCtx(ctx context.Context, m *Model, examples []traffic.Example) (EvalStats, error) {
	return EvaluateObs(ctx, m, examples, nil)
}

// EvaluateObs is EvaluateCtx with telemetry: the whole pass is recorded as a
// "dote.eval" span, each example's latency lands in "dote.eval.example.ms"
// and its performance ratio in "dote.eval.ratio" (so the snapshot carries the
// ratio distribution, not just the EvalStats summary). A nil registry makes
// every record a no-op and the function behaves exactly like EvaluateCtx.
func EvaluateObs(ctx context.Context, m *Model, examples []traffic.Example, reg *obs.Registry) (EvalStats, error) {
	sp := reg.StartSpan("dote.eval")
	defer sp.End()
	exHist := reg.Histogram("dote.eval.example.ms")
	ratioHist := reg.Histogram("dote.eval.ratio")
	var ratios []float64
	for _, ex := range examples {
		if err := ctx.Err(); err != nil {
			return EvalStats{}, err
		}
		if te.TrafficMatrix(ex.Next).Total() == 0 {
			continue
		}
		t := exHist.StartTimer()
		splits := m.Splits(ex.History)
		ratio, _, _, err := te.PerformanceRatioCtx(ctx, m.PS, ex.Next, splits)
		t.Stop()
		if err != nil {
			return EvalStats{}, err
		}
		ratioHist.Observe(ratio)
		ratios = append(ratios, ratio)
	}
	if len(ratios) == 0 {
		return EvalStats{}, fmt.Errorf("dote: no evaluable examples")
	}
	s := stats.Summarize(ratios)
	return EvalStats{
		MeanRatio: s.Mean,
		MaxRatio:  s.Max,
		P95Ratio:  s.P95,
		N:         s.N,
	}, nil
}
