package dote

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/te"
)

func TestDeliveredFlowValueMatchesTE(t *testing.T) {
	m := smallModel(t, Hist)
	r := rng.New(1)
	for trial := 0; trial < 8; trial++ {
		dem := make([]float64, m.NumPairs())
		for i := range dem {
			dem[i] = r.Float64() * 150 // may oversubscribe
		}
		splits := te.UniformSplits(m.PS)
		c := nn.NewCtx(false)
		d := c.T.Const(dem)
		s := c.T.Const(splits)
		got := m.DeliveredFlowValue(c.T, d, s).ScalarValue()
		want := te.DeliveredFlow(m.PS, te.TrafficMatrix(dem), splits)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: DeliveredFlowValue = %v, te.DeliveredFlow = %v", trial, got, want)
		}
	}
}

func TestDeliveredFlowProperties(t *testing.T) {
	m := smallModel(t, Curr)
	r := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		dem := make(te.TrafficMatrix, m.NumPairs())
		for i := range dem {
			dem[i] = r.Float64() * 80
		}
		splits := te.UniformSplits(m.PS)
		delivered := te.DeliveredFlow(m.PS, dem, splits)
		if delivered > dem.Total()+1e-9 {
			t.Fatalf("delivered %v exceeds offered %v", delivered, dem.Total())
		}
		mlu, _ := te.MLU(m.PS, dem, splits)
		if mlu <= 1 && math.Abs(delivered-dem.Total()) > 1e-9*(1+dem.Total()) {
			t.Fatalf("no congestion (MLU %v) but delivered %v != offered %v", mlu, delivered, dem.Total())
		}
	}
}

func TestFlowPipelineGradientNumeric(t *testing.T) {
	m := smallModel(t, Curr)
	p := m.FlowPipeline()
	r := rng.New(3)
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = 30 + r.Float64()*80
	}
	grad := p.Grad(x)
	const h = 1e-4
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		fp := p.EvalScalar(x)
		x[i] = orig - h
		fm := p.EvalScalar(x)
		x[i] = orig
		num := (fp - fm) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-3*(1+math.Abs(num)) {
			t.Fatalf("flow grad[%d] = %v, numeric %v", i, grad[i], num)
		}
	}
}

func TestFlowPipelineMatchesDeliveredFlow(t *testing.T) {
	m := smallModel(t, Curr)
	p := m.FlowPipeline()
	r := rng.New(4)
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = r.Float64() * 120
	}
	if got, want := -p.EvalScalar(x), m.DeliveredFlow(x); math.Abs(got-want) > 1e-9*(1+want) {
		t.Fatalf("pipeline -output %v != DeliveredFlow %v", got, want)
	}
}

func TestFlowAttackTargetRatio(t *testing.T) {
	m := smallModel(t, Curr)
	tg := m.FlowAttackTarget()
	if err := tg.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = r.Float64() * 100
	}
	ratio, delivered, optFlow, err := tg.Ratio(x)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1-1e-6 {
		t.Fatalf("flow ratio %v < 1: the optimal cannot deliver less than the system", ratio)
	}
	if delivered > optFlow+1e-6 {
		t.Fatalf("delivered %v exceeds optimal %v", delivered, optFlow)
	}
	// Zero demand: ratio 1 by convention.
	zero := make([]float64, m.InputDim())
	zr, _, _, err := tg.Ratio(zero)
	if err != nil || zr != 1 {
		t.Fatalf("zero-demand flow ratio = %v (%v)", zr, err)
	}
}

func TestModelString(t *testing.T) {
	m := smallModel(t, Curr)
	if m.String() == "" {
		t.Fatal("empty model string")
	}
}
