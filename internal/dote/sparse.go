package dote

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/te"
)

// opaqueRoutingStage is the fused routing+MLU component of the gray-box
// scenario, backed by pooled te.IncrementalEvaluators. Input layout matches
// routingStage: [splits (totalPaths) | demand (pairs)], output is [MLU].
//
// Forward is a full recompute through the evaluator, bitwise identical to
// the tape-based routingStage+mluStage composition it replaces. The stage
// additionally advertises core.SparseProbeEvaluator, so the FD estimator's
// ±h sweeps cost one Rebase plus per-coordinate incremental probes instead
// of 2n full evaluations — probes are bitwise identical to dense forwards at
// the perturbed points, which keeps the sparse and dense search trajectories
// exactly equal.
type opaqueRoutingStage struct {
	m    *Model
	pool sync.Pool // of *te.IncrementalEvaluator
	reg  atomic.Pointer[obs.Registry]
}

func newOpaqueRoutingStage(m *Model) *opaqueRoutingStage {
	s := &opaqueRoutingStage{m: m}
	s.pool.New = func() any {
		ev := te.NewIncrementalEvaluator(m.PS)
		if m.SparseRefresh > 0 {
			ev.RefreshEvery = m.SparseRefresh
		}
		return ev
	}
	return s
}

// Name implements core.Component; kept identical to the previous fused
// component so telemetry series and reports line up across versions.
func (s *opaqueRoutingStage) Name() string { return "routing+mlu (opaque)" }

// Instrument implements core.Instrumentable: pooled evaluators borrowed
// after this call route te.incr.* probe/update counters and latency
// histograms into reg (nil detaches).
func (s *opaqueRoutingStage) Instrument(reg *obs.Registry) { s.reg.Store(reg) }

func (s *opaqueRoutingStage) get() *te.IncrementalEvaluator {
	ev := s.pool.Get().(*te.IncrementalEvaluator)
	ev.Instrument(s.reg.Load())
	return ev
}

// Forward implements core.Component.
func (s *opaqueRoutingStage) Forward(x []float64) []float64 {
	total := s.m.totalPaths
	ev := s.get()
	ev.Rebase(te.TrafficMatrix(x[total:]), te.Splits(x[:total]))
	mlu, _ := ev.MLU()
	s.pool.Put(ev)
	return []float64{mlu}
}

// SparseProber implements core.SparseProbeEvaluator.
func (s *opaqueRoutingStage) SparseProber(x []float64) core.SparseProber {
	total := s.m.totalPaths
	ev := s.get()
	ev.Rebase(te.TrafficMatrix(x[total:]), te.Splits(x[:total]))
	return &opaqueProber{stage: s, ev: ev, total: total}
}

// opaqueProber answers (index, delta) probes against one rebased evaluator.
// Indices follow the stage's input layout: path slots first, then demands.
type opaqueProber struct {
	stage *opaqueRoutingStage
	ev    *te.IncrementalEvaluator
	total int
	out   [1]float64
}

// Probe implements core.SparseProber.
func (p *opaqueProber) Probe(index int, delta float64) []float64 {
	if index < p.total {
		p.out[0] = p.ev.ProbeSplit(index, delta)
	} else {
		p.out[0] = p.ev.ProbeDemand(index-p.total, delta)
	}
	return p.out[:]
}

// CertifiedSupport implements core.SupportCertifier: the coordinates whose
// ±delta probe could change the MLU are exactly those crossing the argmax
// link or a link whose utilization is within probe-reach of the max — the
// evaluator's per-coordinate certificate (see te.SplitProbeCanMoveMax). On
// bottleneck-structured operating points this is a few hundred of thousands
// of coordinates, and every omitted coordinate provably probes to a bitwise
// zero central difference, so a sweep over just this set reproduces the full
// FD row exactly.
func (p *opaqueProber) CertifiedSupport(delta float64) []int {
	sup := make([]int, 0, 256)
	for slot := 0; slot < p.total; slot++ {
		if p.ev.SplitProbeCanMoveMax(slot, delta) {
			sup = append(sup, slot)
		}
	}
	for pair := 0; pair < p.stage.m.PS.NumPairs(); pair++ {
		if p.ev.DemandProbeCanMoveMax(pair, delta) {
			sup = append(sup, p.total+pair)
		}
	}
	return sup
}

// Close implements core.SparseProber.
func (p *opaqueProber) Close() { p.stage.pool.Put(p.ev) }
