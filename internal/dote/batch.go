package dote

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/nn"
)

// The full exact-gradient pipeline is batch-capable.
var (
	_ core.BatchDifferentiable = (*dnnStage)(nil)
	_ core.BatchDifferentiable = (*postprocStage)(nil)
	_ core.BatchDifferentiable = (*routingStage)(nil)
	_ core.BatchDifferentiable = mluStage{}
)

// Batched implementations of the four pipeline stages (core.BatchComponent /
// core.BatchDifferentiable): the batched restart engine hands each stage an
// [R, n] matrix whose rows are the active restarts, and the stage processes
// all rows on ONE tape — the DNN sees a [R, K·P] input so its dense layers
// become matrix–matrix kernels, and the segment/routing ops use row-shifted
// segment layouts.
//
// Every stage computes each row exactly as its scalar Forward/VJP would
// (same kernels, same per-row accumulation order), so a batched sweep is
// bitwise identical to R scalar sweeps — the property the equivalence tests
// in core pin down.

// batchRun is the shared forward(+backward) body of dnnStage.
func (s *dnnStage) batchRun(xs, ybars *linalg.Matrix) (*linalg.Matrix, *linalg.Matrix) {
	m := s.m
	R := xs.Rows
	hd := m.HistoryDim()
	T, P := m.TotalPaths(), m.NumPairs()
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)

	// Gather the history parts into one contiguous [R, hd] block. For Curr
	// the history IS the demand, so the whole row is gathered.
	hb := linalg.GetVec(R * hd)
	for r := 0; r < R; r++ {
		copy(hb[r*hd:(r+1)*hd], xs.Row(r)[:hd])
	}
	var h ad.Value
	if ybars != nil {
		h = c.T.VarMat(hb, R, hd)
	} else {
		h = c.T.ConstMat(hb, R, hd)
	}
	linalg.PutVec(hb) // VarMat/ConstMat copy
	logits := m.LogitsValue(c, h)
	ld := logits.Data()

	out := linalg.NewMatrix(R, T+P)
	for r := 0; r < R; r++ {
		row := out.Row(r)
		copy(row[:T], ld[r*T:(r+1)*T])
		copy(row[T:], xs.Row(r)[xs.Cols-P:])
	}
	if ybars == nil {
		return out, nil
	}

	cot := linalg.GetVec(R * T)
	for r := 0; r < R; r++ {
		copy(cot[r*T:(r+1)*T], ybars.Row(r)[:T])
	}
	ad.BackwardVJP(logits, cot)
	linalg.PutVec(cot) // BackwardVJP copies the seed into the tape
	hg := h.Grad()

	grad := linalg.NewMatrix(R, xs.Cols)
	for r := 0; r < R; r++ {
		grow := grad.Row(r)
		dbar := ybars.Row(r)[T:]
		hgr := hg[r*hd : (r+1)*hd]
		if m.Cfg.Variant == Curr {
			for i := range grow {
				grow[i] = hgr[i] + dbar[i]
			}
		} else {
			copy(grow[:hd], hgr)
			copy(grow[hd:], dbar)
		}
	}
	return out, grad
}

// BatchForward implements core.BatchComponent.
func (s *dnnStage) BatchForward(xs *linalg.Matrix) *linalg.Matrix {
	out, _ := s.batchRun(xs, nil)
	return out
}

// BatchVJP implements core.BatchDifferentiable.
func (s *dnnStage) BatchVJP(xs, ybars *linalg.Matrix) *linalg.Matrix {
	_, grad := s.batchRun(xs, ybars)
	return grad
}

func (s *postprocStage) batchRun(xs, ybars *linalg.Matrix) (*linalg.Matrix, *linalg.Matrix) {
	m := s.m
	R := xs.Rows
	T := m.TotalPaths()
	t := ad.GetTape()
	defer ad.PutTape(t)

	lg := linalg.GetVec(R * T)
	for r := 0; r < R; r++ {
		copy(lg[r*T:(r+1)*T], xs.Row(r)[:T])
	}
	logits := t.Var(lg)
	linalg.PutVec(lg)
	segs := m.batchSegments(R)
	splits := ad.SegmentSoftmax(logits, segs.offsets, segs.lens)
	sd := splits.Data()

	out := linalg.NewMatrix(R, xs.Cols)
	for r := 0; r < R; r++ {
		row := out.Row(r)
		copy(row[:T], sd[r*T:(r+1)*T])
		copy(row[T:], xs.Row(r)[T:])
	}
	if ybars == nil {
		return out, nil
	}

	cot := linalg.GetVec(R * T)
	for r := 0; r < R; r++ {
		copy(cot[r*T:(r+1)*T], ybars.Row(r)[:T])
	}
	ad.BackwardVJP(splits, cot)
	linalg.PutVec(cot)
	lgGrad := logits.Grad()

	grad := linalg.NewMatrix(R, xs.Cols)
	for r := 0; r < R; r++ {
		grow := grad.Row(r)
		copy(grow[:T], lgGrad[r*T:(r+1)*T])
		copy(grow[T:], ybars.Row(r)[T:])
	}
	return out, grad
}

// BatchForward implements core.BatchComponent.
func (s *postprocStage) BatchForward(xs *linalg.Matrix) *linalg.Matrix {
	out, _ := s.batchRun(xs, nil)
	return out
}

// BatchVJP implements core.BatchDifferentiable.
func (s *postprocStage) BatchVJP(xs, ybars *linalg.Matrix) *linalg.Matrix {
	_, grad := s.batchRun(xs, ybars)
	return grad
}

func (s *routingStage) batchRun(xs, ybars *linalg.Matrix) (*linalg.Matrix, *linalg.Matrix) {
	m := s.m
	R := xs.Rows
	T, P, E := m.TotalPaths(), m.NumPairs(), len(m.caps)
	t := ad.GetTape()
	defer ad.PutTape(t)

	sb := linalg.GetVec(R * T)
	db := linalg.GetVec(R * P)
	for r := 0; r < R; r++ {
		row := xs.Row(r)
		copy(sb[r*T:(r+1)*T], row[:T])
		copy(db[r*P:(r+1)*P], row[T:])
	}
	splits := t.Var(sb)
	demand := t.Var(db)
	linalg.PutVec(sb)
	linalg.PutVec(db)
	// The row-generalized utilization kernels infer R from the output size.
	util := ad.Custom(t, []ad.Value{demand, splits}, R*E, 1, m.utilFwd, m.utilBwd)

	out := linalg.NewMatrix(R, E)
	copy(out.Data, util.Data())
	if ybars == nil {
		return out, nil
	}

	ad.BackwardVJP(util, ybars.Data)
	sg, dg := splits.Grad(), demand.Grad()
	grad := linalg.NewMatrix(R, xs.Cols)
	for r := 0; r < R; r++ {
		grow := grad.Row(r)
		copy(grow[:T], sg[r*T:(r+1)*T])
		copy(grow[T:], dg[r*P:(r+1)*P])
	}
	return out, grad
}

// BatchForward implements core.BatchComponent.
func (s *routingStage) BatchForward(xs *linalg.Matrix) *linalg.Matrix {
	out, _ := s.batchRun(xs, nil)
	return out
}

// BatchVJP implements core.BatchDifferentiable.
func (s *routingStage) BatchVJP(xs, ybars *linalg.Matrix) *linalg.Matrix {
	_, grad := s.batchRun(xs, ybars)
	return grad
}

// BatchForward implements core.BatchComponent: per-row max, same first-
// attaining tie-break as the scalar Forward.
func (mluStage) BatchForward(xs *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(xs.Rows, 1)
	for r := 0; r < xs.Rows; r++ {
		row := xs.Row(r)
		best := row[0]
		for _, v := range row[1:] {
			if v > best {
				best = v
			}
		}
		out.Data[r] = best
	}
	return out
}

// BatchVJP implements core.BatchDifferentiable: each row's subgradient flows
// to its first attaining edge.
func (mluStage) BatchVJP(xs, ybars *linalg.Matrix) *linalg.Matrix {
	grad := linalg.NewMatrix(xs.Rows, xs.Cols)
	for r := 0; r < xs.Rows; r++ {
		row := xs.Row(r)
		arg, best := 0, row[0]
		for i, v := range row {
			if v > best {
				best, arg = v, i
			}
		}
		grad.Row(r)[arg] = ybars.Data[r]
	}
	return grad
}
