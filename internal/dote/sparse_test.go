package dote

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// randStageInput draws a [splits | demand] vector for the fused routing+MLU
// stage, with a sprinkling of exact zeros so the f==0 skip in the forward
// kernel and the d==0 skip in the split probes stay exercised.
func randStageInput(m *Model, r *rng.RNG) []float64 {
	x := make([]float64, m.TotalPaths()+m.NumPairs())
	for i := 0; i < m.TotalPaths(); i++ {
		x[i] = r.Float64()
	}
	maxD := m.PS.Graph.AvgLinkCapacity()
	for i := 0; i < m.NumPairs(); i++ {
		v := r.Float64() * maxD
		if r.Float64() < 0.1 {
			v = 0
		}
		x[m.TotalPaths()+i] = v
	}
	return x
}

// TestOpaqueStageForwardBitwise pins the fused stage's contract: its forward
// is bitwise identical to the tape-based routingStage→mluStage composition
// it replaced, at arbitrary (not just softmax-normalized) inputs.
func TestOpaqueStageForwardBitwise(t *testing.T) {
	for _, m := range []*Model{smallModel(t, Curr), abileneModel(Curr, []int{16})} {
		fused := newOpaqueRoutingStage(m)
		routing := &routingStage{m}
		var mlu mluStage
		r := rng.New(42)
		for trial := 0; trial < 50; trial++ {
			x := randStageInput(m, r)
			want := mlu.Forward(routing.Forward(x))[0]
			got := fused.Forward(x)[0]
			if got != want {
				t.Fatalf("trial %d: fused forward %v != composed %v", trial, got, want)
			}
		}
	}
}

// TestOpaqueSparseGradBitwise checks the end-to-end estimator equivalence:
// the gray-box FD gradient through incremental probes equals the dense
// full-forward FD gradient bitwise, coordinate for coordinate.
func TestOpaqueSparseGradBitwise(t *testing.T) {
	m := abileneModel(Curr, []int{16})
	sparse := m.OpaqueRoutingPipeline().Grayboxed(1e-4)
	dense := m.OpaqueRoutingPipelineDense().Grayboxed(1e-4)
	maxD := m.PS.Graph.AvgLinkCapacity()
	r := rng.New(7)
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, m.InputDim())
		for i := range x {
			x[i] = r.Float64() * maxD
		}
		gs := sparse.Grad(x)
		gd := dense.Grad(x)
		for j := range gs {
			if gs[j] != gd[j] {
				t.Fatalf("trial %d grad[%d]: sparse %v != dense %v", trial, j, gs[j], gd[j])
			}
		}
	}
}

func attackTargetFor(m *Model, p *core.Pipeline) *core.AttackTarget {
	return &core.AttackTarget{
		Pipeline:  p,
		InputDim:  m.InputDim(),
		DemandLen: m.NumPairs(),
		PS:        m.PS,
		MaxDemand: m.PS.Graph.AvgLinkCapacity(),
	}
}

// TestOpaqueSearchTrajectoryEquivalence is the ISSUE acceptance check: a
// fixed-seed gradient search driven by sparse probes takes exactly the same
// trajectory — identical accepted steps, best point, and eval counts — as
// one driven by dense full-vector probing.
func TestOpaqueSearchTrajectoryEquivalence(t *testing.T) {
	for _, engine := range []core.SearchEngine{core.EngineScalar, core.EngineBatched} {
		m := abileneModel(Curr, []int{16})
		cfg := core.DefaultGradientConfig()
		cfg.Iters = 30
		cfg.Restarts = 2
		cfg.EvalEvery = 5
		cfg.Seed = 11
		cfg.Engine = engine

		sparseTarget := attackTargetFor(m, m.OpaqueRoutingPipeline().Grayboxed(1e-4))
		denseTarget := attackTargetFor(m, m.OpaqueRoutingPipelineDense().Grayboxed(1e-4))

		rs, err := core.GradientSearch(sparseTarget, cfg)
		if err != nil {
			t.Fatalf("%v sparse search: %v", engine, err)
		}
		rd, err := core.GradientSearch(denseTarget, cfg)
		if err != nil {
			t.Fatalf("%v dense search: %v", engine, err)
		}

		if rs.BestRatio != rd.BestRatio {
			t.Fatalf("%v: BestRatio %v != %v", engine, rs.BestRatio, rd.BestRatio)
		}
		if rs.BestSysMLU != rd.BestSysMLU || rs.BestOptMLU != rd.BestOptMLU {
			t.Fatalf("%v: best MLU decomposition diverged", engine)
		}
		if len(rs.BestX) != len(rd.BestX) {
			t.Fatalf("%v: BestX lengths differ", engine)
		}
		for i := range rs.BestX {
			if rs.BestX[i] != rd.BestX[i] {
				t.Fatalf("%v: BestX[%d] %v != %v", engine, i, rs.BestX[i], rd.BestX[i])
			}
		}
		if rs.Evals != rd.Evals || rs.GradEvals != rd.GradEvals || rs.LPEvals != rd.LPEvals {
			t.Fatalf("%v: eval counts diverged: sparse (%d,%d,%d) dense (%d,%d,%d)", engine,
				rs.Evals, rs.GradEvals, rs.LPEvals, rd.Evals, rd.GradEvals, rd.LPEvals)
		}
		// Identical accepted steps: every improvement lands on the same
		// iteration with the same ratio.
		if len(rs.Trace) != len(rd.Trace) {
			t.Fatalf("%v: trace lengths differ: %d != %d", engine, len(rs.Trace), len(rd.Trace))
		}
		for i := range rs.Trace {
			if rs.Trace[i].Iter != rd.Trace[i].Iter || rs.Trace[i].Ratio != rd.Trace[i].Ratio {
				t.Fatalf("%v: trace[%d] (%d, %v) != (%d, %v)", engine, i,
					rs.Trace[i].Iter, rs.Trace[i].Ratio, rd.Trace[i].Iter, rd.Trace[i].Ratio)
			}
		}
	}
}

// TestOpaqueSearchWithEvalCacheSameAnswer runs the same sparse search with
// and without the memo cache: scoring must agree (the cache only suppresses
// duplicate LP solves, never changes values).
func TestOpaqueSearchWithEvalCacheSameAnswer(t *testing.T) {
	m := abileneModel(Curr, []int{16})
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 30
	cfg.Restarts = 2
	cfg.EvalEvery = 5
	cfg.Seed = 11

	plain, err := core.GradientSearch(attackTargetFor(m, m.OpaqueRoutingPipeline().Grayboxed(1e-4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewEvalCache(1<<12, 0)
	cfg.EvalCache = cache
	cached, err := core.GradientSearch(attackTargetFor(m, m.OpaqueRoutingPipeline().Grayboxed(1e-4)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.BestRatio != cached.BestRatio {
		t.Fatalf("cache changed the answer: %v != %v", cached.BestRatio, plain.BestRatio)
	}
	st := cache.Stats()
	if st.Misses == 0 {
		t.Fatal("cache saw no traffic")
	}
	if cached.Evals > plain.Evals {
		t.Fatalf("cached run counted more evals (%d) than plain (%d)", cached.Evals, plain.Evals)
	}
}
