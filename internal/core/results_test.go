package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestResultJSONRoundTrip(t *testing.T) {
	orig := &SearchResult{
		Method:     "gradient-based (lagrangian)",
		Found:      true,
		BestRatio:  4.7,
		BestSysMLU: 4.7,
		BestOptMLU: 1.0,
		BestX:      []float64{1, 0, 3.5},
		Evals:      10,
		GradEvals:  400,
		LPEvals:    40,
		Elapsed:    1200 * time.Millisecond,
		TimeToBest: 900 * time.Millisecond,
		Trace: []TracePoint{
			{Iter: 10, Ratio: 2.1, Elapsed: 300 * time.Millisecond},
			{Iter: 40, Ratio: 4.7, Elapsed: 900 * time.Millisecond},
		},
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != orig.Method || got.BestRatio != orig.BestRatio || !got.Found {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.BestX) != 3 || got.BestX[2] != 3.5 {
		t.Fatalf("input lost: %v", got.BestX)
	}
	if len(got.Trace) != 2 || got.Trace[1].Ratio != 4.7 {
		t.Fatalf("trace lost: %v", got.Trace)
	}
	if got.Elapsed != orig.Elapsed || got.TimeToBest != orig.TimeToBest {
		t.Fatal("durations lost")
	}
}

func TestReadResultJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadResultJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
}

func TestWriteJSONOmitsEmpty(t *testing.T) {
	r := &SearchResult{Method: "x"}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Contains(s, "best_input") || strings.Contains(s, "trace") {
		t.Fatalf("empty fields not omitted: %s", s)
	}
}
