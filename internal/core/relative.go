package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/rng"
)

// RelativeTarget compares two learning-enabled systems instead of a system
// against the optimal (§6, "Comparing to other learning-enabled systems"):
// the adversarial objective becomes M_adv(d) = MLU_A(d) / MLU_B(d), so the
// search finds inputs where system A does much worse than system B (e.g.
// DOTE-Hist versus a Teal-like DOTE-Curr).
type RelativeTarget struct {
	// SystemA and SystemB map the input to their respective scalar MLUs.
	// Both consume the SAME input layout.
	SystemA, SystemB *Pipeline
	// InputDim, DemandStart, DemandLen, PS, MaxDemand as in AttackTarget.
	Inner *AttackTarget
}

// NewRelativeTarget wires a comparison: inner supplies the input geometry
// and constraint substrate (its Pipeline field is ignored).
func NewRelativeTarget(a, b *Pipeline, inner *AttackTarget) *RelativeTarget {
	return &RelativeTarget{SystemA: a, SystemB: b, Inner: inner}
}

// Validate checks internal consistency.
func (t *RelativeTarget) Validate() error {
	if t.SystemA == nil || t.SystemB == nil {
		return fmt.Errorf("core: RelativeTarget missing a system")
	}
	probe := *t.Inner
	probe.Pipeline = t.SystemA
	return probe.Validate()
}

// Ratio evaluates MLU_A(x)/MLU_B(x); a vanishing denominator yields 1.
func (t *RelativeTarget) Ratio(x []float64) (ratio, a, b float64) {
	a = t.SystemA.EvalScalar(x)
	b = t.SystemB.EvalScalar(x)
	if b <= 1e-12 {
		return 1, a, b
	}
	return a / b, a, b
}

// RelativeGradientSearch maximizes MLU_A/MLU_B with the same Lagrangian
// feasibility term as the absolute search (the demand must stay routable at
// MLU 1 so the comparison happens on meaningful inputs). The ascent uses
// the gradient of log(A/B) = ∇A/A − ∇B/B, assembled from both systems'
// chain-rule gradients.
func RelativeGradientSearch(t *RelativeTarget, cfg GradientConfig) (*SearchResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.Iters <= 0 || cfg.Restarts <= 0 {
		return nil, fmt.Errorf("core: RelativeGradientSearch needs positive Iters and Restarts")
	}
	if cfg.EvalEvery < 1 {
		cfg.EvalEvery = 10
	}
	// An instrumented relative search times both systems' pipeline stages;
	// same-named stages in A and B share a histogram (the combined
	// distribution), which is what an operator comparing the two wants.
	if cfg.Obs != nil {
		t.SystemA.Instrument(cfg.Obs)
		defer t.SystemA.Instrument(nil)
		t.SystemB.Instrument(cfg.Obs)
		defer t.SystemB.Instrument(nil)
	}
	inner := t.Inner
	nSlots := 0
	if inner.PS != nil {
		nSlots = len(routingFor(inner.PS).slotPair)
	}
	start := time.Now()
	res := &SearchResult{Method: "gradient-based (relative " + cfg.Mode.String() + ")"}
	var mu sync.Mutex

	workers := cfg.Workers
	if workers <= 0 || workers > cfg.Restarts {
		workers = cfg.Restarts
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for restart := 0; restart < cfg.Restarts; restart++ {
		wg.Add(1)
		go func(restart int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := rng.New(cfg.Seed + uint64(restart)*0x9e3779b97f4a7c15)
			n := inner.InputDim
			x := make([]float64, n)
			for i := range x {
				x[i] = r.Float64() * inner.MaxDemand * 0.5
			}
			fLogits := make([]float64, nSlots)
			lambda := cfg.LambdaInit
			stepD := cfg.AlphaD * inner.MaxDemand
			demS, demE := inner.DemandStart, inner.DemandStart+inner.DemandLen
			bestLocal, stale := 0.0, 0
			// Per-restart scratch, reused across iterations.
			g := make([]float64, n)
			gD := make([]float64, demE-demS)
			gF := make([]float64, len(fLogits))
			for iter := 0; iter < cfg.Iters; iter++ {
				a := t.SystemA.EvalScalar(x)
				b := t.SystemB.EvalScalar(x)
				gA := t.SystemA.Grad(x)
				gB := t.SystemB.Grad(x)
				mu.Lock()
				res.GradEvals += 2
				res.Evals += 2
				mu.Unlock()
				// ∇ log(A/B).
				for i := range g {
					ga, gb := 0.0, 0.0
					if a > 1e-12 {
						ga = gA[i] / a
					}
					if b > 1e-12 {
						gb = gB[i] / b
					}
					g[i] = ga - gb
				}
				gN := normalizeInPlace(g)
				cMLU := inner.constraintMLU(x[demS:demE], fLogits, gD, gF)
				dN := normalizeInPlace(gD)
				for i := demS; i < demE; i++ {
					gN[i] += lambda * dN[i-demS]
				}
				fN := normalizeInPlace(gF)
				for i := range fLogits {
					fLogits[i] += cfg.AlphaF * lambda * fN[i]
				}
				for i := range x {
					x[i] += stepD * gN[i]
					if x[i] < 0 {
						x[i] = 0
					}
					if x[i] > inner.MaxDemand {
						x[i] = inner.MaxDemand
					}
				}
				lambda -= cfg.AlphaL * (cMLU - 1)

				if (iter+1)%cfg.EvalEvery == 0 || iter == cfg.Iters-1 {
					ratio, ra, rb := t.Ratio(x)
					if ratio > bestLocal && !math.IsInf(ratio, 0) {
						bestLocal = ratio
						stale = 0
						mu.Lock()
						if ratio > res.BestRatio {
							res.BestRatio = ratio
							res.BestSysMLU, res.BestOptMLU = ra, rb
							res.BestX = append(res.BestX[:0], x...)
							res.TimeToBest = time.Since(start)
							res.Found = true
							res.Trace = append(res.Trace, TracePoint{Iter: iter, Ratio: ratio, Elapsed: res.TimeToBest})
						}
						mu.Unlock()
					} else {
						stale++
						if cfg.Patience > 0 && stale >= cfg.Patience {
							return
						}
					}
				}
			}
		}(restart)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if cfg.Obs != nil {
		cfg.Obs.Histogram("search.elapsed.ms").Observe(float64(res.Elapsed) / float64(time.Millisecond))
		res.Telemetry = cfg.Obs.Snapshot()
	}
	return res, nil
}
