package core

import (
	"math"
	"testing"
)

func TestSliceComponent(t *testing.T) {
	s := &SliceComponent{From: 1, To: 3}
	out := s.Forward([]float64{10, 20, 30, 40})
	if len(out) != 2 || out[0] != 20 || out[1] != 30 {
		t.Fatalf("slice forward = %v", out)
	}
	g := s.VJP([]float64{10, 20, 30, 40}, []float64{5, 7})
	want := []float64{0, 5, 7, 0}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("slice VJP = %v, want %v", g, want)
		}
	}
	if s.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestPrependStage(t *testing.T) {
	// sum(x[1:3]^2) via prepend: slice then square then sum.
	base := NewPipeline(quadratic{}, sumComp{})
	p := base.PrependStage(&SliceComponent{From: 1, To: 3})
	x := []float64{100, 2, 3, 100}
	if got := p.EvalScalar(x); got != 13 {
		t.Fatalf("prepended pipeline = %v, want 13", got)
	}
	g := p.Grad(x)
	want := []float64{0, 4, 6, 0}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("prepended grad = %v, want %v", g, want)
		}
	}
	// Base pipeline must be unchanged.
	if len(base.Stages()) != 2 {
		t.Fatal("PrependStage mutated the base pipeline")
	}
}
