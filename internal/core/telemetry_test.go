package core_test

// Telemetry integration tests: an instrumented search must populate the
// registry across every layer it touches (pipeline stages, LP solver,
// per-restart search counters), attach the snapshot to the result, and
// round-trip it through the JSON result schema losslessly. An
// uninstrumented search must leave no trace in the output — older result
// files and new uninstrumented ones stay byte-compatible.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func searchCfg(engine core.SearchEngine, reg *obs.Registry) core.GradientConfig {
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 20
	cfg.Restarts = 2
	cfg.EvalEvery = 5
	cfg.Patience = 0
	cfg.Seed = 7
	cfg.Engine = engine
	cfg.Obs = reg
	return cfg
}

func TestSearchTelemetryPopulated(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	for _, engine := range []core.SearchEngine{core.EngineScalar, core.EngineBatched} {
		t.Run(engine.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			res, err := core.GradientSearch(tg, searchCfg(engine, reg))
			if err != nil {
				t.Fatal(err)
			}
			if res.Telemetry == nil {
				t.Fatal("instrumented search returned nil Telemetry")
			}
			snap := res.Telemetry

			// Per-restart step counters must account for every completed
			// outer iteration of every restart.
			var steps int64
			for r := 0; r < 2; r++ {
				key := "search.restart." + string(rune('0'+r)) + ".steps"
				if snap.Counters[key] == 0 {
					t.Errorf("counter %s is zero", key)
				}
				steps += snap.Counters[key]
			}
			var iters int64
			for _, o := range res.Restarts {
				iters += int64(o.Iters)
			}
			if steps != iters {
				t.Errorf("step counters sum to %d, outcomes report %d iterations", steps, iters)
			}

			// LP counters: the ratio evaluations solve optimal-MLU LPs.
			if snap.Counters["lp.solves"] == 0 {
				t.Error("lp.solves counter is zero despite LP-scored evaluations")
			}
			if h, ok := snap.Histograms["lp.solve.ms"]; !ok || h.Count == 0 {
				t.Error("lp.solve.ms histogram missing or empty")
			}
			if h, ok := snap.Histograms["lp.solve.pivots"]; !ok || h.Count == 0 {
				t.Error("lp.solve.pivots histogram missing or empty")
			}

			// Pipeline stage timings: at least one forward and one vjp
			// histogram must have observations.
			fwd, vjp := false, false
			for name, h := range snap.Histograms {
				if !strings.HasPrefix(name, "pipeline.") || h.Count == 0 {
					continue
				}
				if strings.HasSuffix(name, ".forward.ms") {
					fwd = true
				}
				if strings.HasSuffix(name, ".vjp.ms") {
					vjp = true
				}
			}
			if !fwd || !vjp {
				t.Errorf("pipeline stage histograms incomplete: forward=%v vjp=%v", fwd, vjp)
			}

			if h, ok := snap.Histograms["search.elapsed.ms"]; !ok || h.Count != 1 {
				t.Error("search.elapsed.ms histogram missing or not exactly one observation")
			}
		})
	}
}

// TestTelemetryJSONRoundTrip: a populated Telemetry block must decode to
// exactly the struct that was encoded (encoding/json's shortest-round-trip
// float formatting makes this lossless).
func TestTelemetryJSONRoundTrip(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	reg := obs.NewRegistry()
	res, err := core.GradientSearch(tg, searchCfg(core.EngineScalar, reg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("no telemetry to round-trip")
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Telemetry == nil {
		t.Fatal("telemetry block lost in round-trip")
	}
	if !reflect.DeepEqual(res.Telemetry, back.Telemetry) {
		t.Fatalf("telemetry round-trip mismatch:\nwrote %+v\nread  %+v", res.Telemetry, back.Telemetry)
	}
}

// TestNoTelemetryNoBlock: an uninstrumented search emits no telemetry key at
// all, and result files written before the field existed decode with a nil
// Telemetry — the schema change is invisible to old readers and writers.
func TestNoTelemetryNoBlock(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	cfg := searchCfg(core.EngineScalar, nil)
	res, err := core.GradientSearch(tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("uninstrumented search produced a Telemetry block")
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "telemetry") {
		t.Fatalf("uninstrumented result JSON mentions telemetry:\n%s", buf.String())
	}
	// A pre-telemetry result file (no such key) must still decode.
	legacy := `{"method":"gradient-based (lagrangian)","found":true,"best_ratio":1.5,
"best_sys_mlu":0.9,"best_opt_mlu":0.6,"evals":10,"grad_evals":10,"lp_evals":10,
"elapsed_ms":100,"time_to_best_ms":50,"stop_reason":"converged"}`
	back, err := core.ReadResultJSON(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if back.Telemetry != nil {
		t.Fatal("legacy result decoded with non-nil Telemetry")
	}
	if back.BestRatio != 1.5 {
		t.Fatalf("legacy decode BestRatio = %v", back.BestRatio)
	}
}
