package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
)

// evalCacheShards is the fixed shard count: scoring fan-out is at most a few
// dozen goroutines, so 16 mutexes keep contention negligible without a
// per-entry locking scheme.
const evalCacheShards = 16

// EvalCache memoizes true-ratio evaluations keyed by a quantized demand
// vector, shared across restarts (and searches): lock-step batches and
// near-converged restarts repeatedly score coincident points, and each miss
// costs an optimal-MLU LP solve. The cache is sharded for concurrency and
// bounded per shard; eviction drops an arbitrary resident entry (Go map
// iteration order), which is cheap and good enough for a memo table whose
// hit pattern is dominated by exact re-visits.
//
// Keying quantizes every coordinate to a multiple of quantum before hashing,
// so points within quantum/2 of each other share an entry. A second
// independent hash is stored as a signature to reject bucket collisions;
// colliding signatures (~2⁻⁶⁴ per pair) would return a stale value, the
// standard memo-cache trade.
type EvalCache struct {
	quantum  float64
	perShard int
	shards   [evalCacheShards]evalShard

	hits, misses, evictions atomic.Int64

	// onInsert, when set, observes every fresh insert (see SetOnInsert).
	onInsert atomic.Pointer[func(x []float64, ratio, sys, opt float64)]
}

// SetOnInsert installs (or, with nil, removes) an observation hook called
// once for every fresh insert — i.e. exactly once per distinct true
// evaluation, at the moment its result enters the cache. Hits never re-fire
// the hook, and errors are never cached, so they are never observed. The
// hook runs outside the shard lock on the inserting goroutine and must be
// safe for concurrent use. One hook is live at a time (last call wins);
// GradientSearchContext uses this to fan fresh evaluations out to
// TrueEvalObserver pipeline stages for the duration of a search.
func (c *EvalCache) SetOnInsert(fn func(x []float64, ratio, sys, opt float64)) {
	if fn == nil {
		c.onInsert.Store(nil)
		return
	}
	c.onInsert.Store(&fn)
}

type evalShard struct {
	mu sync.Mutex
	m  map[uint64]evalEntry
}

type evalEntry struct {
	sig             uint64
	ratio, sys, opt float64
}

// NewEvalCache builds a cache holding at most capacity entries (0 means
// 1<<16) keyed at the given quantization step (0 means 1e-9, i.e. exact
// re-visits only for demand values of order one).
func NewEvalCache(capacity int, quantum float64) *EvalCache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	if quantum <= 0 {
		quantum = 1e-9
	}
	c := &EvalCache{
		quantum:  quantum,
		perShard: (capacity + evalCacheShards - 1) / evalCacheShards,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]evalEntry)
	}
	return c
}

// EvalCacheStats is a snapshot of the cache's counters.
type EvalCacheStats struct {
	Hits, Misses, Evictions, Entries int64
}

// Sub returns s - o field-wise (Entries is a level, not a counter, and is
// carried over from s).
func (s EvalCacheStats) Sub(o EvalCacheStats) EvalCacheStats {
	return EvalCacheStats{
		Hits:      s.Hits - o.Hits,
		Misses:    s.Misses - o.Misses,
		Evictions: s.Evictions - o.Evictions,
		Entries:   s.Entries,
	}
}

// Stats returns the current counters. Safe to call concurrently.
func (c *EvalCache) Stats() EvalCacheStats {
	var n int64
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += int64(len(c.shards[i].m))
		c.shards[i].mu.Unlock()
	}
	return EvalCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// keys hashes the quantized vector with two independent FNV-1a streams: the
// first selects the bucket, the second is the stored collision signature.
func (c *EvalCache) keys(x []float64) (key, sig uint64) {
	const (
		offset1 = 14695981039346656037
		offset2 = 0x9e3779b97f4a7c15 // different seed, same prime: independent stream
		prime   = 1099511628211
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	inv := 1 / c.quantum
	for _, v := range x {
		q := uint64(int64(math.Round(v * inv)))
		for shift := 0; shift < 64; shift += 8 {
			b := uint64(byte(q >> shift))
			h1 = (h1 ^ b) * prime
			h2 = (h2 ^ (b + 0x51)) * prime
		}
	}
	return h1, h2
}

func (c *EvalCache) get(key, sig uint64) (ratio, sys, opt float64, ok bool) {
	sh := &c.shards[key%evalCacheShards]
	sh.mu.Lock()
	e, found := sh.m[key]
	sh.mu.Unlock()
	if found && e.sig == sig {
		c.hits.Add(1)
		return e.ratio, e.sys, e.opt, true
	}
	c.misses.Add(1)
	return 0, 0, 0, false
}

func (c *EvalCache) put(x []float64, key, sig uint64, ratio, sys, opt float64) {
	sh := &c.shards[key%evalCacheShards]
	sh.mu.Lock()
	_, exists := sh.m[key]
	if !exists && len(sh.m) >= c.perShard {
		for k := range sh.m {
			delete(sh.m, k) // evict an arbitrary entry to stay bounded
			c.evictions.Add(1)
			break
		}
	}
	sh.m[key] = evalEntry{sig: sig, ratio: ratio, sys: sys, opt: opt}
	sh.mu.Unlock()
	// Fresh inserts are observed outside the lock: the hook may be slow
	// (surrogate bookkeeping) and must not serialize unrelated shard
	// traffic. Racing duplicate misses may both observe; that is the same
	// point twice, which observers tolerate.
	if !exists {
		if fn := c.onInsert.Load(); fn != nil {
			(*fn)(x, ratio, sys, opt)
		}
	}
}

// RatioCached scores x like RatioCtx but through the memo cache when one is
// configured (nil cache falls back to a plain scoring call). cached reports
// whether the result was served from memory. External drivers and the
// benchmarks use this; the search engines go through the same path.
func (a *AttackTarget) RatioCached(ctx context.Context, cache *EvalCache, x []float64) (ratio, sys, opt float64, cached bool, err error) {
	return a.ratioCachedCtx(ctx, cache, x)
}

// ratioCachedCtx scores x like RatioCtx but through the memo cache when one
// is configured. cached reports whether the result was served from memory
// (so callers skip their eval/LP accounting); errors are never cached.
func (a *AttackTarget) ratioCachedCtx(ctx context.Context, cache *EvalCache, x []float64) (ratio, sys, opt float64, cached bool, err error) {
	if cache == nil {
		ratio, sys, opt, err = a.RatioCtx(ctx, x)
		return ratio, sys, opt, false, err
	}
	key, sig := cache.keys(x)
	if r, s, o, ok := cache.get(key, sig); ok {
		return r, s, o, true, nil
	}
	ratio, sys, opt, err = a.RatioCtx(ctx, x)
	if err == nil {
		cache.put(x, key, sig, ratio, sys, opt)
	}
	return ratio, sys, opt, false, err
}
