package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
)

// evalCacheShards is the fixed shard count: scoring fan-out is at most a few
// dozen goroutines, so 16 mutexes keep contention negligible without a
// per-entry locking scheme.
const evalCacheShards = 16

// EvalCache memoizes true-ratio evaluations keyed by a quantized demand
// vector, shared across restarts (and searches): lock-step batches and
// near-converged restarts repeatedly score coincident points, and each miss
// costs an optimal-MLU LP solve. The cache is sharded for concurrency and
// bounded per shard; eviction drops an arbitrary resident entry (Go map
// iteration order), which is cheap and good enough for a memo table whose
// hit pattern is dominated by exact re-visits.
//
// Keying quantizes every coordinate to a multiple of quantum before hashing,
// so points within quantum/2 of each other share an entry. A second
// independent hash is stored as a signature to reject bucket collisions;
// colliding signatures (~2⁻⁶⁴ per pair) would return a stale value, the
// standard memo-cache trade.
type EvalCache struct {
	quantum  float64
	perShard int
	shards   [evalCacheShards]evalShard

	hits, misses, evictions, bypasses atomic.Int64

	// subs is the copy-on-write subscriber list observing fresh inserts.
	// Readers load it atomically on the insert path; AddOnInsert/remove
	// mutate it under subMu and publish a fresh slice, so the hot path never
	// takes a lock.
	subs  atomic.Pointer[[]*insertSub]
	subMu sync.Mutex
	// legacy is the subscriber installed via the deprecated SetOnInsert shim
	// (nil when none is live); guarded by subMu.
	legacy *insertSub
}

// insertSub is one registered on-insert observer. The struct identity is the
// removal token: remove compares pointers, so two subscriptions with the
// same function value stay independent.
type insertSub struct {
	fn func(x []float64, ratio, sys, opt float64)
}

// AddOnInsert subscribes fn to every fresh insert — i.e. exactly once per
// distinct true evaluation, at the moment its result enters the cache. Hits
// never re-fire subscribers, and errors are never cached, so they are never
// observed. Subscribers run outside the shard lock on the inserting
// goroutine and must be safe for concurrent use.
//
// The returned remove function unsubscribes fn (idempotent, safe after the
// cache has other subscribers). Any number of subscribers may be live at
// once: each concurrent search over a shared cache registers its own
// TrueEvalObserver fan-out and removes exactly that one on the way out, so
// one search finishing never detaches another's observers.
func (c *EvalCache) AddOnInsert(fn func(x []float64, ratio, sys, opt float64)) (remove func()) {
	if fn == nil {
		return func() {}
	}
	sub := &insertSub{fn: fn}
	c.subMu.Lock()
	c.publishLocked(sub, nil)
	c.subMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.subMu.Lock()
			c.publishLocked(nil, sub)
			c.subMu.Unlock()
		})
	}
}

// publishLocked rebuilds and publishes the subscriber slice, adding add (if
// non-nil) and dropping drop (if present). Caller holds subMu.
func (c *EvalCache) publishLocked(add, drop *insertSub) {
	var cur []*insertSub
	if p := c.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]*insertSub, 0, len(cur)+1)
	for _, s := range cur {
		if s != drop {
			next = append(next, s)
		}
	}
	if add != nil {
		next = append(next, add)
	}
	if len(next) == 0 {
		c.subs.Store(nil)
		return
	}
	c.subs.Store(&next)
}

// SetOnInsert installs (or, with nil, removes) a single observation hook.
//
// Deprecated: SetOnInsert keeps the old last-wins, one-hook-at-a-time
// contract for existing callers — it replaces only the hook it previously
// installed and cannot see (or clobber) AddOnInsert subscriptions. New code
// should use AddOnInsert, whose remove token makes concurrent searches over
// a shared cache safe.
func (c *EvalCache) SetOnInsert(fn func(x []float64, ratio, sys, opt float64)) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	drop := c.legacy
	c.legacy = nil
	var add *insertSub
	if fn != nil {
		add = &insertSub{fn: fn}
		c.legacy = add
	}
	c.publishLocked(add, drop)
}

type evalShard struct {
	mu sync.Mutex
	m  map[uint64]evalEntry
}

type evalEntry struct {
	sig             uint64
	ratio, sys, opt float64
}

// NewEvalCache builds a cache holding at most capacity entries (0 means
// 1<<16) keyed at the given quantization step (0 means 1e-9, i.e. exact
// re-visits only for demand values of order one).
func NewEvalCache(capacity int, quantum float64) *EvalCache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	if quantum <= 0 {
		quantum = 1e-9
	}
	c := &EvalCache{
		quantum:  quantum,
		perShard: (capacity + evalCacheShards - 1) / evalCacheShards,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]evalEntry)
	}
	return c
}

// EvalCacheStats is a snapshot of the cache's counters. Bypasses counts
// lookups that skipped the cache entirely because the point could not be
// keyed deterministically (NaN/±Inf coordinates).
type EvalCacheStats struct {
	Hits, Misses, Evictions, Bypasses, Entries int64
}

// Sub returns s - o field-wise (Entries is a level, not a counter, and is
// carried over from s).
func (s EvalCacheStats) Sub(o EvalCacheStats) EvalCacheStats {
	return EvalCacheStats{
		Hits:      s.Hits - o.Hits,
		Misses:    s.Misses - o.Misses,
		Evictions: s.Evictions - o.Evictions,
		Bypasses:  s.Bypasses - o.Bypasses,
		Entries:   s.Entries,
	}
}

// Stats returns the current counters. Safe to call concurrently.
func (c *EvalCache) Stats() EvalCacheStats {
	var n int64
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += int64(len(c.shards[i].m))
		c.shards[i].mu.Unlock()
	}
	return EvalCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bypasses:  c.bypasses.Load(),
		Entries:   n,
	}
}

// keys hashes the quantized vector with two independent FNV-1a streams: the
// first selects the bucket, the second is the stored collision signature.
// ok is false when the vector cannot be keyed deterministically — any NaN or
// ±Inf coordinate — in which case the caller must bypass the cache: Go's
// float→int conversion is implementation-defined outside the representable
// range, so a NaN demand would otherwise hash to a platform-dependent key.
// Finite coordinates whose quantized magnitude overflows int64 saturate to
// the range limit instead, keeping the key deterministic everywhere.
func (c *EvalCache) keys(x []float64) (key, sig uint64, ok bool) {
	const (
		offset1 = 14695981039346656037
		offset2 = 0x9e3779b97f4a7c15 // different seed, same prime: independent stream
		prime   = 1099511628211
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	inv := 1 / c.quantum
	for _, v := range x {
		// NaN and ±Inf coordinates cannot be keyed; the caller bypasses the
		// cache. Checked on the raw coordinate: a finite v whose scaled
		// magnitude overflows to Inf below is still a legitimate (huge)
		// demand and saturates instead.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, 0, false
		}
		qf := math.Round(v * inv)
		// Saturate instead of converting out-of-range values: float64 holds
		// integers far past 2^63, and the conversion there is
		// implementation-defined. math.MaxInt64/MinInt64 convert to ±2^63
		// exactly, so >= / <= (which also catch an overflowed ±Inf product)
		// cover every unrepresentable magnitude.
		var qi int64
		switch {
		case qf >= math.MaxInt64:
			qi = math.MaxInt64
		case qf <= math.MinInt64:
			qi = math.MinInt64
		default:
			qi = int64(qf)
		}
		q := uint64(qi)
		for shift := 0; shift < 64; shift += 8 {
			b := uint64(byte(q >> shift))
			h1 = (h1 ^ b) * prime
			h2 = (h2 ^ (b + 0x51)) * prime
		}
	}
	return h1, h2, true
}

func (c *EvalCache) get(key, sig uint64) (ratio, sys, opt float64, ok bool) {
	sh := &c.shards[key%evalCacheShards]
	sh.mu.Lock()
	e, found := sh.m[key]
	sh.mu.Unlock()
	if found && e.sig == sig {
		c.hits.Add(1)
		return e.ratio, e.sys, e.opt, true
	}
	c.misses.Add(1)
	return 0, 0, 0, false
}

func (c *EvalCache) put(x []float64, key, sig uint64, ratio, sys, opt float64) {
	sh := &c.shards[key%evalCacheShards]
	sh.mu.Lock()
	_, exists := sh.m[key]
	if !exists && len(sh.m) >= c.perShard {
		for k := range sh.m {
			delete(sh.m, k) // evict an arbitrary entry to stay bounded
			c.evictions.Add(1)
			break
		}
	}
	sh.m[key] = evalEntry{sig: sig, ratio: ratio, sys: sys, opt: opt}
	sh.mu.Unlock()
	// Fresh inserts are observed outside the lock: subscribers may be slow
	// (surrogate bookkeeping) and must not serialize unrelated shard
	// traffic. Racing duplicate misses insert once and observe once; a
	// subscriber removed concurrently with an insert may see that one final
	// event (the list is loaded before the fan-out), which observers
	// tolerate.
	if !exists {
		if p := c.subs.Load(); p != nil {
			for _, s := range *p {
				s.fn(x, ratio, sys, opt)
			}
		}
	}
}

// RatioCached scores x like RatioCtx but through the memo cache when one is
// configured (nil cache falls back to a plain scoring call). cached reports
// whether the result was served from memory. External drivers and the
// benchmarks use this; the search engines go through the same path.
func (a *AttackTarget) RatioCached(ctx context.Context, cache *EvalCache, x []float64) (ratio, sys, opt float64, cached bool, err error) {
	return a.ratioCachedCtx(ctx, cache, x)
}

// ratioCachedCtx scores x like RatioCtx but through the memo cache when one
// is configured. cached reports whether the result was served from memory
// (so callers skip their eval/LP accounting); errors are never cached.
func (a *AttackTarget) ratioCachedCtx(ctx context.Context, cache *EvalCache, x []float64) (ratio, sys, opt float64, cached bool, err error) {
	if cache == nil {
		ratio, sys, opt, err = a.RatioCtx(ctx, x)
		return ratio, sys, opt, false, err
	}
	key, sig, keyable := cache.keys(x)
	if !keyable {
		// NaN/±Inf coordinates have no deterministic key: score fresh and
		// never insert, so the cache stays platform-independent.
		cache.bypasses.Add(1)
		ratio, sys, opt, err = a.RatioCtx(ctx, x)
		return ratio, sys, opt, false, err
	}
	if r, s, o, ok := cache.get(key, sig); ok {
		return r, s, o, true, nil
	}
	ratio, sys, opt, err = a.RatioCtx(ctx, x)
	if err == nil {
		cache.put(x, key, sig, ratio, sys, opt)
	}
	return ratio, sys, opt, false, err
}
