// Package core implements the paper's contribution: a gray-box end-to-end
// performance analyzer for learning-enabled systems (§3.2–§4).
//
// A system H(x) = Hn(...(H2(H1(x)))) is modeled as a Pipeline of Components.
// Each component exposes forward evaluation; components that are piecewise
// sub-differentiable also expose a vector-Jacobian product (VJP). The
// Pipeline combines per-component VJPs with the chain rule (Figure 4) to
// obtain the end-to-end gradient used by the adversarial search — without
// ever requiring a joint closed-form model of the whole system, which is
// what limits white-box tools (§3.1).
//
// Components that are NOT differentiable can still participate: wrap them
// with WithFiniteDiff or WithSPSA, which estimate the VJP locally from
// samples of the function (§3.2, "compute it locally through samples").
package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Component is one stage of a learning-enabled pipeline. Implementations
// must be safe for concurrent Forward calls (the analyzer parallelizes).
type Component interface {
	// Name identifies the stage in reports.
	Name() string
	// Forward evaluates the stage.
	Forward(x []float64) []float64
}

// Differentiable is a Component that can push a cotangent back through
// itself: VJP returns ȳᵀ·J evaluated at x. This is the only capability the
// chain rule needs — far weaker than the closed-form model white-box
// analyzers demand.
type Differentiable interface {
	Component
	VJP(x, ybar []float64) []float64
}

// Pipeline chains components into an end-to-end system H.
type Pipeline struct {
	stages []Component
	// obs, when non-nil, holds one pre-resolved histogram pair per stage
	// (see Instrument). Nil means uninstrumented: the forward/VJP hot paths
	// take branches with no clock reads, no lookups and no allocations.
	obs []stageObs
}

// stageObs is the pre-resolved telemetry of one stage: registry lookups
// happen once in Instrument, never per evaluation.
type stageObs struct {
	fwd *obs.Histogram
	vjp *obs.Histogram
}

// Instrumentable is an optional Component capability: stages holding their
// own internal telemetry (e.g. an incremental evaluator's probe counters)
// receive the pipeline's registry when the pipeline is (de)instrumented.
type Instrumentable interface {
	Instrument(reg *obs.Registry)
}

// Instrument routes per-stage wall-clock timings into reg: stage i records
// "pipeline.<name>.forward.ms" on every forward evaluation (including the
// forward sweep inside a VJP) and "pipeline.<name>.vjp.ms" on every backward
// pull. Stages sharing a name share histograms; stages implementing
// Instrumentable are handed reg as well. Instrument(nil) removes the
// instrumentation and restores the allocation-free fast path. Not safe to
// call concurrently with evaluations.
func (p *Pipeline) Instrument(reg *obs.Registry) {
	for _, s := range p.stages {
		if in, ok := s.(Instrumentable); ok {
			in.Instrument(reg)
		}
	}
	if reg == nil {
		p.obs = nil
		return
	}
	p.obs = make([]stageObs, len(p.stages))
	for i, s := range p.stages {
		p.obs[i] = stageObs{
			fwd: reg.Histogram("pipeline." + s.Name() + ".forward.ms"),
			vjp: reg.Histogram("pipeline." + s.Name() + ".vjp.ms"),
		}
	}
}

// NewPipeline builds a pipeline from stages applied left to right.
func NewPipeline(stages ...Component) *Pipeline {
	if len(stages) == 0 {
		panic("core: empty pipeline")
	}
	return &Pipeline{stages: stages}
}

// Stages returns the component list (shared; do not mutate).
func (p *Pipeline) Stages() []Component { return p.stages }

// Forward evaluates the whole system.
func (p *Pipeline) Forward(x []float64) []float64 {
	if p.obs == nil {
		for _, s := range p.stages {
			x = s.Forward(x)
		}
		return x
	}
	for i, s := range p.stages {
		t := p.obs[i].fwd.StartTimer()
		x = s.Forward(x)
		t.Stop()
	}
	return x
}

// EvalScalar evaluates a pipeline whose final output is scalar.
func (p *Pipeline) EvalScalar(x []float64) float64 {
	y := p.Forward(x)
	if len(y) != 1 {
		panic(fmt.Sprintf("core: pipeline output has %d elements, want scalar", len(y)))
	}
	return y[0]
}

// VJP computes ȳᵀ·dH/dx by the chain rule: it evaluates the pipeline
// forward, then pulls the cotangent back stage by stage (Figure 4). Every
// stage must be Differentiable — wrap opaque stages with WithFiniteDiff or
// WithSPSA first (see Grayboxed).
func (p *Pipeline) VJP(x, ybar []float64) []float64 {
	inputs := make([][]float64, len(p.stages))
	cur := x
	for i, s := range p.stages {
		inputs[i] = cur
		if p.obs != nil {
			t := p.obs[i].fwd.StartTimer()
			cur = s.Forward(cur)
			t.Stop()
		} else {
			cur = s.Forward(cur)
		}
	}
	if len(ybar) != len(cur) {
		panic(fmt.Sprintf("core: cotangent length %d, output length %d", len(ybar), len(cur)))
	}
	cot := ybar
	for i := len(p.stages) - 1; i >= 0; i-- {
		d, ok := p.stages[i].(Differentiable)
		if !ok {
			panic(fmt.Sprintf("core: stage %q is not differentiable; wrap it with WithFiniteDiff or WithSPSA", p.stages[i].Name()))
		}
		if p.obs != nil {
			t := p.obs[i].vjp.StartTimer()
			cot = d.VJP(inputs[i], cot)
			t.Stop()
		} else {
			cot = d.VJP(inputs[i], cot)
		}
	}
	return cot
}

// scalarSeed is the shared unit cotangent for scalar-output pipelines. No
// VJP implementation mutates its cotangent argument, so one global is safe.
var scalarSeed = []float64{1}

// Grad returns the gradient of a scalar-output pipeline.
func (p *Pipeline) Grad(x []float64) []float64 {
	return p.VJP(x, scalarSeed)
}

// CtxDifferentiable is an optional extension of Differentiable: stages whose
// VJP is expensive enough to observe cancellation mid-computation (the
// sampling estimators, whose single VJP costs O(n) forward evaluations)
// implement it; cheap analytic stages need not. Implementations return
// ctx.Err() promptly after cancellation and must behave exactly like VJP when
// the context never fires.
type CtxDifferentiable interface {
	Differentiable
	VJPCtx(ctx context.Context, x, ybar []float64) ([]float64, error)
}

// VJPCtx is VJP under a caller-controlled context: the chain rule checks ctx
// between stages and delegates to CtxDifferentiable stages so long-running
// estimators abort promptly. A context that can never fire (no deadline, no
// cancel) takes the exact VJP code path, so results are bitwise identical to
// VJP. The only error returned is ctx.Err(); structural problems (shape
// mismatches, non-differentiable stages) still panic, to be contained by the
// search engine's recover() boundary.
func (p *Pipeline) VJPCtx(ctx context.Context, x, ybar []float64) ([]float64, error) {
	if ctx.Done() == nil {
		return p.VJP(x, ybar), nil
	}
	inputs := make([][]float64, len(p.stages))
	cur := x
	for i, s := range p.stages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		inputs[i] = cur
		if p.obs != nil {
			t := p.obs[i].fwd.StartTimer()
			cur = s.Forward(cur)
			t.Stop()
		} else {
			cur = s.Forward(cur)
		}
	}
	if len(ybar) != len(cur) {
		panic(fmt.Sprintf("core: cotangent length %d, output length %d", len(ybar), len(cur)))
	}
	cot := ybar
	for i := len(p.stages) - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var t obs.Timer
		if p.obs != nil {
			t = p.obs[i].vjp.StartTimer()
		}
		switch d := p.stages[i].(type) {
		case CtxDifferentiable:
			var err error
			cot, err = d.VJPCtx(ctx, inputs[i], cot)
			if err != nil {
				t.Stop()
				return nil, err
			}
		case Differentiable:
			cot = d.VJP(inputs[i], cot)
		default:
			panic(fmt.Sprintf("core: stage %q is not differentiable; wrap it with WithFiniteDiff or WithSPSA", p.stages[i].Name()))
		}
		t.Stop()
	}
	return cot, nil
}

// GradCtx is Grad under a caller-controlled context (see VJPCtx).
func (p *Pipeline) GradCtx(ctx context.Context, x []float64) ([]float64, error) {
	return p.VJPCtx(ctx, x, scalarSeed)
}

// Grayboxed returns a pipeline in which every non-differentiable stage has
// been wrapped with a finite-difference VJP estimator — the default
// gray-box treatment of opaque components.
func (p *Pipeline) Grayboxed(step float64) *Pipeline {
	stages := make([]Component, len(p.stages))
	for i, s := range p.stages {
		if _, ok := s.(Differentiable); ok {
			stages[i] = s
		} else {
			stages[i] = WithFiniteDiff(s, step)
		}
	}
	return &Pipeline{stages: stages}
}

// Func wraps a plain function as a named non-differentiable component.
type Func struct {
	ComponentName string
	Fn            func(x []float64) []float64
}

// Name implements Component.
func (f *Func) Name() string { return f.ComponentName }

// Forward implements Component.
func (f *Func) Forward(x []float64) []float64 { return f.Fn(x) }

// DiffFunc wraps forward and VJP closures as a Differentiable component.
type DiffFunc struct {
	ComponentName string
	Fn            func(x []float64) []float64
	VJPFn         func(x, ybar []float64) []float64
}

// Name implements Component.
func (f *DiffFunc) Name() string { return f.ComponentName }

// Forward implements Component.
func (f *DiffFunc) Forward(x []float64) []float64 { return f.Fn(x) }

// VJP implements Differentiable.
func (f *DiffFunc) VJP(x, ybar []float64) []float64 { return f.VJPFn(x, ybar) }

// SliceComponent extracts x[From:To] — a differentiable adapter used to
// feed a sub-slice of one system's input layout into another system (e.g.
// comparing DOTE-Hist, whose input is [history | demand], against a
// Teal-like model that consumes just the demand).
type SliceComponent struct {
	From, To int
}

// Name implements Component.
func (s *SliceComponent) Name() string { return "slice" }

// Forward implements Component.
func (s *SliceComponent) Forward(x []float64) []float64 {
	out := make([]float64, s.To-s.From)
	copy(out, x[s.From:s.To])
	return out
}

// VJP implements Differentiable.
func (s *SliceComponent) VJP(x, ybar []float64) []float64 {
	g := make([]float64, len(x))
	copy(g[s.From:s.To], ybar)
	return g
}

// PrependStage returns a new pipeline with the given component applied
// before every stage of p.
func (p *Pipeline) PrependStage(c Component) *Pipeline {
	stages := append([]Component{c}, p.stages...)
	return &Pipeline{stages: stages}
}

// ParallelGrads computes pipeline gradients for many inputs concurrently
// using up to workers goroutines — the parallelism §3.2 highlights as a
// benefit of the gray-box design. Each input gets its own forward/backward,
// so stages must be safe for concurrent Forward/VJP (all stages in this
// repository are).
func ParallelGrads(p *Pipeline, xs [][]float64, workers int) [][]float64 {
	if workers < 1 {
		workers = 1
	}
	out := make([][]float64, len(xs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = p.Grad(xs[i])
			}
		}()
	}
	for i := range xs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
