package core

import "math"

// InputConstraint restricts the adversarial search to realistic inputs
// (§6, "Constraining bad inputs"). Each constraint contributes a violation
// term to the Lagrangian with its own multiplier, exactly like the
// feasibility term of Eq. 4: the search ascends the input on
// −μ·violation(x) while μ rises whenever the constraint is violated.
type InputConstraint interface {
	// Name identifies the constraint in reports.
	Name() string
	// Violation returns a non-negative violation measure (0 when the input
	// is acceptable) and its gradient with respect to x.
	Violation(x []float64) (float64, []float64)
}

// L1Constraint bounds the total volume of the input: Σx ≤ Budget. In TE
// terms it keeps the aggregate demand realistic.
type L1Constraint struct {
	Budget float64
	// From/To restrict the constrained slice (0,0 = whole input).
	From, To int
}

// Name implements InputConstraint.
func (c *L1Constraint) Name() string { return "l1-volume" }

// Violation implements InputConstraint.
func (c *L1Constraint) Violation(x []float64) (float64, []float64) {
	from, to := c.From, c.To
	if to == 0 {
		to = len(x)
	}
	sum := 0.0
	for _, v := range x[from:to] {
		sum += v
	}
	g := make([]float64, len(x))
	if sum <= c.Budget {
		return 0, g
	}
	for i := from; i < to; i++ {
		g[i] = 1
	}
	return sum - c.Budget, g
}

// SparsityConstraint pushes the input toward matrices where at most
// MaxActive entries are "large": the violation is the mass carried by
// entries beyond the MaxActive largest ones. This encodes the locality /
// sparsity structure of realistic demands (§6 cites sparse, local traffic).
type SparsityConstraint struct {
	MaxActive int
	From, To  int
}

// Name implements InputConstraint.
func (c *SparsityConstraint) Name() string { return "sparsity" }

// Violation implements InputConstraint.
func (c *SparsityConstraint) Violation(x []float64) (float64, []float64) {
	from, to := c.From, c.To
	if to == 0 {
		to = len(x)
	}
	n := to - from
	g := make([]float64, len(x))
	if c.MaxActive >= n {
		return 0, g
	}
	// Find the MaxActive-th largest value as the cut.
	vals := append([]float64{}, x[from:to]...)
	// Selection of the k largest via partial sort (n is small).
	for i := 0; i < c.MaxActive && i < n; i++ {
		for j := i + 1; j < n; j++ {
			if vals[j] > vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	cut := vals[c.MaxActive-1]
	viol := 0.0
	for i := from; i < to; i++ {
		if x[i] < cut {
			viol += x[i]
			g[i] = 1
		}
	}
	return viol, g
}

// ReferenceBallConstraint keeps the input within an L2 ball around a
// reference point (e.g. a training demand matrix): adversarial inputs from
// "the same distribution as the training data".
type ReferenceBallConstraint struct {
	Reference []float64
	Radius    float64
	From, To  int
}

// Name implements InputConstraint.
func (c *ReferenceBallConstraint) Name() string { return "reference-ball" }

// Violation implements InputConstraint.
func (c *ReferenceBallConstraint) Violation(x []float64) (float64, []float64) {
	from, to := c.From, c.To
	if to == 0 {
		to = len(x)
	}
	g := make([]float64, len(x))
	d2 := 0.0
	for i := from; i < to; i++ {
		diff := x[i] - c.Reference[i-from]
		d2 += diff * diff
	}
	d := math.Sqrt(d2)
	if d <= c.Radius {
		return 0, g
	}
	if d > 0 {
		for i := from; i < to; i++ {
			g[i] = (x[i] - c.Reference[i-from]) / d
		}
	}
	return d - c.Radius, g
}

// applyConstraints folds constraint-violation gradients into the ascent
// direction and updates the per-constraint multipliers; returns the total
// violation for reporting.
func applyConstraints(cons []InputConstraint, mus []float64, x, ascent []float64, alphaMu float64) float64 {
	total := 0.0
	for ci, c := range cons {
		v, g := c.Violation(x)
		total += v
		if v > 0 || mus[ci] > 0 {
			gn := normalizeInPlace(g)
			for i := range ascent {
				ascent[i] -= mus[ci] * gn[i]
			}
		}
		// Multiplier rises with violation, decays toward 0 when satisfied.
		mus[ci] += alphaMu * v
		if v == 0 {
			mus[ci] *= 0.99
		}
		if mus[ci] < 0 {
			mus[ci] = 0
		}
	}
	return total
}
