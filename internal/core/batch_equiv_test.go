package core_test

// Equivalence tests for the batched restart engine: batched stage sweeps
// must reproduce the scalar chain-rule path exactly, and a batched
// multi-restart search must discover the same ratios as sequential scalar
// restarts with the same seeds — including restarts retired early by
// Patience.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/rng"
)

// randomBatch builds an [R, n] batch of box-bounded inputs.
func randomBatch(r *rng.RNG, rows, n int, maxDemand float64) *linalg.Matrix {
	xs := linalg.NewMatrix(rows, n)
	for i := range xs.Data {
		xs.Data[i] = r.Float64() * maxDemand
	}
	return xs
}

func TestBatchForwardMatchesScalarRows(t *testing.T) {
	m := trainedTriangleModel(t)
	p := m.Pipeline()
	if !p.BatchCapable() {
		t.Fatal("exact DOTE pipeline should be batch-capable")
	}
	xs := randomBatch(rng.New(21), 5, m.InputDim(), m.PS.Graph.AvgLinkCapacity())
	outs := p.BatchForward(xs)
	for r := 0; r < xs.Rows; r++ {
		want := p.Forward(xs.Row(r))
		got := outs.Row(r)
		if len(got) != len(want) {
			t.Fatalf("row %d: batch output width %d, scalar %d", r, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d col %d: batch %v, scalar %v (must be bitwise equal)",
					r, i, got[i], want[i])
			}
		}
	}
}

func TestBatchGradMatchesScalarRows(t *testing.T) {
	m := trainedTriangleModel(t)
	p := m.Pipeline()
	xs := randomBatch(rng.New(22), 6, m.InputDim(), m.PS.Graph.AvgLinkCapacity())
	grads := p.BatchGrad(xs)
	for r := 0; r < xs.Rows; r++ {
		want := p.Grad(xs.Row(r))
		got := grads.Row(r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d coord %d: batch grad %v, scalar %v (must be bitwise equal)",
					r, i, got[i], want[i])
			}
		}
	}
}

// TestBatchVJPGrayboxMatchesScalarRows covers the estimator path: the FD
// wrapper batches its probe evaluations but each coordinate's estimate uses
// the scalar arithmetic, so rows agree bitwise.
func TestBatchVJPGrayboxMatchesScalarRows(t *testing.T) {
	m := trainedTriangleModel(t)
	p := m.OpaqueRoutingPipeline().Grayboxed(1e-5)
	if !p.BatchCapable() {
		t.Fatal("grayboxed pipeline should be batch-capable (fd wrapper batches)")
	}
	xs := randomBatch(rng.New(23), 3, m.InputDim(), m.PS.Graph.AvgLinkCapacity())
	grads := p.BatchGrad(xs)
	for r := 0; r < xs.Rows; r++ {
		want := p.Grad(xs.Row(r))
		got := grads.Row(r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d coord %d: batch FD grad %v, scalar %v", r, i, got[i], want[i])
			}
		}
	}
}

// TestBatchedEngineMatchesScalarEngine is the PR's headline equivalence:
// batched search with Restarts=4 discovers the same ratios as four
// sequential scalar restarts with the same seeds, with identical budget
// counters — including restarts stopped early by Patience.
func TestBatchedEngineMatchesScalarEngine(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)

	base := core.DefaultGradientConfig()
	base.Iters = 100
	base.Restarts = 4
	base.EvalEvery = 5
	base.Patience = 2 // aggressive so at least one restart retires early
	base.Workers = 1  // sequential scalar restarts: deterministic improve order

	scalarCfg := base
	scalarCfg.Engine = core.EngineScalar
	scalarRes, err := core.GradientSearch(tg, scalarCfg)
	if err != nil {
		t.Fatal(err)
	}

	batchedCfg := base
	batchedCfg.Engine = core.EngineBatched
	batchedRes, err := core.GradientSearch(tg, batchedCfg)
	if err != nil {
		t.Fatal(err)
	}

	if !scalarRes.Found || !batchedRes.Found {
		t.Fatalf("found: scalar %v, batched %v", scalarRes.Found, batchedRes.Found)
	}
	if math.Abs(scalarRes.BestRatio-batchedRes.BestRatio) > 1e-9 {
		t.Fatalf("BestRatio: scalar %.15f, batched %.15f", scalarRes.BestRatio, batchedRes.BestRatio)
	}
	if math.Abs(scalarRes.BestSysMLU-batchedRes.BestSysMLU) > 1e-9 ||
		math.Abs(scalarRes.BestOptMLU-batchedRes.BestOptMLU) > 1e-9 {
		t.Fatalf("MLU decomposition differs: scalar (%v,%v), batched (%v,%v)",
			scalarRes.BestSysMLU, scalarRes.BestOptMLU, batchedRes.BestSysMLU, batchedRes.BestOptMLU)
	}
	for i := range scalarRes.BestX {
		if math.Abs(scalarRes.BestX[i]-batchedRes.BestX[i]) > 1e-9 {
			t.Fatalf("BestX[%d]: scalar %v, batched %v", i, scalarRes.BestX[i], batchedRes.BestX[i])
		}
	}
	// Identical trajectories spend identical budgets.
	if scalarRes.Evals != batchedRes.Evals ||
		scalarRes.GradEvals != batchedRes.GradEvals ||
		scalarRes.LPEvals != batchedRes.LPEvals {
		t.Fatalf("budget counters: scalar (%d,%d,%d), batched (%d,%d,%d)",
			scalarRes.Evals, scalarRes.GradEvals, scalarRes.LPEvals,
			batchedRes.Evals, batchedRes.GradEvals, batchedRes.LPEvals)
	}
	// The Patience path must actually have been exercised: with early
	// stopping, at least one restart retires before Iters runs out.
	if scalarRes.GradEvals >= base.Restarts*base.Iters {
		t.Fatalf("no restart retired early (GradEvals=%d); Patience path untested", scalarRes.GradEvals)
	}
	// Both reported inputs reproduce their ratios (the repo-wide invariant).
	ratio, _, _, err := tg.Ratio(batchedRes.BestX)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-batchedRes.BestRatio) > 1e-9 {
		t.Fatalf("batched BestX reproduces %v, reported %v", ratio, batchedRes.BestRatio)
	}
}

// TestEngineAutoSelection: auto uses the batched engine only when it can —
// Restarts == 1 must fall back to the scalar path (and still work).
func TestEngineAutoSelection(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 30
	cfg.Restarts = 1
	cfg.EvalEvery = 10
	cfg.Engine = core.EngineBatched // forced, but nothing to batch
	res, err := core.GradientSearch(tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("single-restart fallback found nothing")
	}
}
