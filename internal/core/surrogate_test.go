package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestOnlineSurrogateLearnsGradient(t *testing.T) {
	// Opaque component: h(x) = [x0^2 + x1, 2*x1]. After enough
	// observations, the surrogate's VJP should approximate the true one.
	opaque := &Func{ComponentName: "h", Fn: func(x []float64) []float64 {
		return []float64{x[0]*x[0] + x[1], 2 * x[1]}
	}}
	cfg := DefaultSurrogateConfig(1)
	cfg.TrainSteps = 8
	cfg.LR = 5e-3
	cfg.Hidden = []int{64, 64}
	cfg.Warmup = 50
	s := WithOnlineSurrogate(opaque, 2, 2, cfg)
	if s.Name() != "h+dnn-surrogate" {
		t.Fatalf("name = %q", s.Name())
	}
	r := rng.New(2)
	// Feed observations across the domain (as a search would).
	for i := 0; i < 1200; i++ {
		x := []float64{r.Uniform(-1, 1), r.Uniform(-1, 1)}
		y := s.Forward(x)
		// Forward must return the TRUE output, not the surrogate's.
		if y[0] != x[0]*x[0]+x[1] || y[1] != 2*x[1] {
			t.Fatal("Forward did not pass through the true component")
		}
	}
	// The surrogate's own predictions must track the component closely.
	probe := []float64{0.2, 0.4}
	pred := s.(*onlineSurrogate).predict(probe)
	truth := opaque.Fn(probe)
	for i := range truth {
		if math.Abs(pred[i]-truth[i]) > 0.25 {
			t.Fatalf("surrogate prediction %d = %v, truth %v", i, pred[i], truth[i])
		}
	}
	// True VJP at x with cotangent ybar: [2 x0 ybar0, ybar0 + 2 ybar1].
	x := []float64{0.5, -0.3}
	ybar := []float64{1, 0.5}
	got := s.VJP(x, ybar)
	want := []float64{2 * x[0] * ybar[0], ybar[0] + 2*ybar[1]}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.35 {
			t.Fatalf("surrogate VJP[%d] = %v, want ~%v", i, got[i], want[i])
		}
	}
}

func TestOnlineSurrogateWarmup(t *testing.T) {
	opaque := &Func{ComponentName: "h", Fn: func(x []float64) []float64 { return x }}
	cfg := DefaultSurrogateConfig(3)
	cfg.Warmup = 10
	s := WithOnlineSurrogate(opaque, 2, 2, cfg)
	// Before warmup the VJP must be zero (no trusted gradient yet) — even
	// after some observations, as long as fewer than Warmup.
	g := s.VJP([]float64{1, 2}, []float64{1, 1})
	for _, v := range g {
		if v != 0 {
			t.Fatal("cold surrogate returned a non-zero gradient")
		}
	}
	r := rng.New(31)
	for i := 0; i < cfg.Warmup-1; i++ {
		s.(*onlineSurrogate).Forward([]float64{r.Uniform(-1, 1), r.Uniform(-1, 1)})
		g = s.VJP([]float64{1, 2}, []float64{1, 1})
		for _, v := range g {
			if v != 0 {
				t.Fatalf("surrogate served a gradient after %d < %d observations", i+1, cfg.Warmup)
			}
		}
	}
	// The observation that completes warmup flips the VJP to the network's
	// gradient, which is generically non-zero.
	s.(*onlineSurrogate).Forward([]float64{r.Uniform(-1, 1), r.Uniform(-1, 1)})
	g = s.VJP([]float64{1, 2}, []float64{1, 1})
	nonzero := false
	for _, v := range g {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("warm surrogate still returns the zero gradient")
	}
}

func TestOnlineSurrogateInPipeline(t *testing.T) {
	// sum(h(x)) with h opaque: the surrogate must let the chain rule pull a
	// useful gradient through.
	opaque := &Func{ComponentName: "h", Fn: func(x []float64) []float64 {
		return []float64{x[0] * x[0], x[1] * x[1]}
	}}
	cfg := DefaultSurrogateConfig(4)
	cfg.Warmup = 40
	cfg.TrainSteps = 8
	cfg.LR = 5e-3
	cfg.Hidden = []int{64, 64}
	wrapped := WithOnlineSurrogate(opaque, 2, 2, cfg)
	p := NewPipeline(wrapped, sumComp{})
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		p.Forward([]float64{r.Uniform(-1, 1), r.Uniform(-1, 1)})
	}
	g := p.Grad([]float64{0.6, -0.4})
	want := []float64{1.2, -0.8}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 0.35 {
			t.Fatalf("pipeline surrogate grad[%d] = %v, want ~%v", i, g[i], want[i])
		}
	}
}

func TestSurrogateBufferWraps(t *testing.T) {
	opaque := &Func{ComponentName: "h", Fn: func(x []float64) []float64 { return x }}
	cfg := DefaultSurrogateConfig(6)
	cfg.BufferSize = 8
	cfg.TrainSteps = 0
	s := WithOnlineSurrogate(opaque, 1, 1, cfg).(*onlineSurrogate)
	for i := 0; i < 30; i++ {
		s.Forward([]float64{float64(i)})
	}
	if s.Observations() != 30 {
		t.Fatalf("observations = %d", s.Observations())
	}
	if len(s.bufX) != 8 {
		t.Fatalf("buffer grew beyond cap: %d", len(s.bufX))
	}
}
