package core

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// PartitionConfig controls the partitioned analysis of §6 ("Partitioning
// the performance analysis"): instead of differentiating through the whole
// system at once, analyze it backwards stage by stage. Starting from the
// last component, find outputs of the preceding stage that drive the
// downstream sub-system into its adversarial space; then recurse toward the
// input.
type PartitionConfig struct {
	// StepsPerStage is the number of gradient steps per stage.
	StepsPerStage int
	// Step is the relative step size.
	Step float64
	// Seed drives initialization.
	Seed uint64
	// TrustRadius bounds how far an intermediate stage target may move from
	// its nominal forward value, as a multiple of the value's scale.
	TrustRadius float64
}

// DefaultPartitionConfig returns workable defaults.
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{StepsPerStage: 60, Step: 0.02, Seed: 1, TrustRadius: 3}
}

// StageReport describes one step of the backward analysis.
type StageReport struct {
	Stage string
	// TargetObjective is the downstream objective value reached when
	// optimizing this stage's INPUT against the sub-pipeline from here on.
	TargetObjective float64
}

// PartitionedSearch runs the backward stage-by-stage analysis:
//
//  1. For the sub-pipeline H_j..H_n (j = n..1), gradient-ascend the stage-j
//     input to maximize the final objective, starting from the forward
//     activations of a seed input and constrained to a trust region around
//     them (intermediate spaces have no natural box bounds).
//  2. The stage-1 result lives in the true input space; clamp it to the
//     input box and score it with the true performance ratio.
//
// Every stage is analyzed in isolation — the decomposition white-box tools
// cannot do because they must model everything jointly (§3.1).
func PartitionedSearch(target *AttackTarget, cfg PartitionConfig) (*SearchResult, []StageReport, error) {
	if err := target.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.StepsPerStage <= 0 {
		cfg.StepsPerStage = 60
	}
	if cfg.Step <= 0 {
		cfg.Step = 0.02
	}
	if cfg.TrustRadius <= 0 {
		cfg.TrustRadius = 3
	}
	start := time.Now()
	stages := target.Pipeline.Stages()
	n := len(stages)
	r := rng.New(cfg.Seed)

	// Seed input and nominal forward activations.
	x0 := make([]float64, target.InputDim)
	for i := range x0 {
		x0[i] = r.Float64() * target.MaxDemand * 0.5
	}
	activations := make([][]float64, n+1)
	activations[0] = x0
	for i, s := range stages {
		activations[i+1] = s.Forward(activations[i])
	}

	var reports []StageReport
	bestInput := append([]float64{}, x0...)
	// Backwards: stage index j from n-1 down to 0; optimize the input of
	// the sub-pipeline stages[j:].
	for j := n - 1; j >= 0; j-- {
		sub := NewPipeline(stages[j:]...)
		z := append([]float64{}, activations[j]...)
		// Trust region around the nominal activation (or the input box at
		// stage 0).
		lo := make([]float64, len(z))
		hi := make([]float64, len(z))
		for i := range z {
			if j == 0 {
				lo[i], hi[i] = 0, target.MaxDemand
			} else {
				scale := abs(activations[j][i])
				if scale < 1e-3 {
					scale = 1e-3
				}
				lo[i] = activations[j][i] - cfg.TrustRadius*scale
				hi[i] = activations[j][i] + cfg.TrustRadius*scale
			}
		}
		step := make([]float64, len(z))
		for i := range step {
			step[i] = cfg.Step * (hi[i] - lo[i])
		}
		for it := 0; it < cfg.StepsPerStage; it++ {
			g := sub.Grad(z)
			gN := normalizeInPlace(g)
			for i := range z {
				z[i] += step[i] * gN[i]
				if z[i] < lo[i] {
					z[i] = lo[i]
				}
				if z[i] > hi[i] {
					z[i] = hi[i]
				}
			}
		}
		obj := sub.EvalScalar(z)
		reports = append(reports, StageReport{Stage: stages[j].Name(), TargetObjective: obj})
		if j == 0 {
			bestInput = z
		} else {
			// Pull the nominal activation of stage j toward the adversarial
			// target so the next (upstream) stage chases it.
			activations[j] = z
		}
	}

	ratio, sys, opt, err := target.Ratio(bestInput)
	if err != nil {
		return nil, nil, err
	}
	res := &SearchResult{
		Method:     "partitioned backward analysis",
		BestRatio:  ratio,
		BestSysMLU: sys,
		BestOptMLU: opt,
		BestX:      bestInput,
		Found:      ratio > 1,
		Elapsed:    time.Since(start),
		TimeToBest: time.Since(start),
	}
	if len(reports) == 0 {
		return nil, nil, fmt.Errorf("core: empty pipeline in partitioned search")
	}
	return res, reports, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
