package core

import "fmt"

// SweepResult pairs a constraint target with its search outcome.
type SweepResult struct {
	ConstraintTarget float64
	Result           *SearchResult
}

// SweepConstraintTarget implements the P-sweep of §4 ("Other TE
// Objectives"): for objectives without the MLU's scale-linearity, the
// feasible space {d | OPT(d, f) = P} must be explored for several values of
// P. Each target value runs a full gradient search; the best overall result
// and all per-target outcomes are returned. The method is fast, so running
// it multiple times is cheap — the argument the paper makes.
func SweepConstraintTarget(target *AttackTarget, cfg GradientConfig, values []float64) (*SearchResult, []SweepResult, error) {
	if len(values) == 0 {
		return nil, nil, fmt.Errorf("core: sweep needs at least one constraint target")
	}
	var best *SearchResult
	var all []SweepResult
	for _, v := range values {
		c := cfg
		c.ConstraintTarget = v
		res, err := GradientSearch(target, c)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, SweepResult{ConstraintTarget: v, Result: res})
		if best == nil || (res.Found && res.BestRatio > best.BestRatio) {
			best = res
		}
	}
	return best, all, nil
}
