package core

import (
	"context"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// SurrogateGradConfig configures WithSurrogateGradient: the online surrogate
// itself plus the trust/verify loop that decides, per VJP, whether the
// learned gradient is good enough to replace finite-difference probing.
type SurrogateGradConfig struct {
	// Surrogate configures the online learner (network, replay buffer,
	// warmup). Its Warmup field is the number of true observations before
	// the surrogate may start earning trust.
	Surrogate SurrogateConfig
	// FDStep is the probe step of the finite-difference fallback estimator
	// (0 = 1e-4). The fallback preserves the sparse incremental probe fast
	// path when the wrapped component advertises SparseProbeEvaluator.
	FDStep float64
	// DisagreeTol is the relative L∞ error between the surrogate's
	// prediction and the true output above which a verification counts as a
	// disagreement (0 = 0.05).
	DisagreeTol float64
	// TrustWindow is how many consecutive agreeing verifications the
	// surrogate needs before its VJPs are served in place of FD probing
	// (0 = 4). Trust is EARNED, never assumed: a freshly constructed or
	// never-trained surrogate serves no gradients, so the worst case is
	// exactly today's sparse-FD path.
	TrustWindow int
	// DisagreeWindow is how many consecutive disagreeing verifications
	// demote a trusted surrogate back to FD probing (0 = 2).
	DisagreeWindow int
	// VerifyWindow is how many consecutive true-ratio evaluations without a
	// new best (rejected steps, reported through the EvalCache observation
	// hook) demote a trusted surrogate back to FD probing (0 = 12).
	VerifyWindow int
	// GuidedBlock is the probe block size of the trusted guided-sparse VJP:
	// coordinates are probed in descending order of the surrogate gradient's
	// magnitude, one block at a time, and the sweep stops after the first
	// block whose probes all contribute exactly zero (0 = 64). Smaller blocks
	// stop earlier on sharply sparse gradients; n/GuidedBlock is the
	// worst-case overhead of a misranked support.
	GuidedBlock int
}

// DefaultSurrogateGradConfig returns a workable trust/verify configuration.
// The learner trains harder than the bare DefaultSurrogateConfig (the
// estimator folds training into evaluations the search already pays for, so
// the extra SGD steps are cheap next to true probes), and the disagreement
// tolerance is loose: the guided-sparse serve only uses the surrogate to RANK
// probe coordinates, so a moderately accurate surrogate already buys exact
// gradients — mis-trust costs extra probe blocks, never wrong derivatives.
func DefaultSurrogateGradConfig(seed uint64) SurrogateGradConfig {
	sur := DefaultSurrogateConfig(seed)
	sur.Hidden = []int{128}
	sur.BufferSize = 2048
	sur.BatchSize = 32
	sur.TrainSteps = 32
	sur.Warmup = 16
	return SurrogateGradConfig{
		Surrogate:      sur,
		FDStep:         1e-4,
		DisagreeTol:    0.2,
		TrustWindow:    2,
		DisagreeWindow: 8,
		VerifyWindow:   12,
		GuidedBlock:    64,
	}
}

// Estimator modes: FD probing (untrusted) vs surrogate-served VJPs.
const (
	surrogateModeProbing int32 = iota
	surrogateModeTrusted
)

// SurrogateStats is a snapshot of the estimator's counters.
type SurrogateStats struct {
	// TrueEvals counts true evaluations of the wrapped component: forward
	// sweeps, 2n per full finite-difference VJP row, and 2·probed per
	// guided-sparse row.
	TrueEvals int64
	// EvalsSaved counts the true evaluations guided-sparse VJPs avoided
	// versus full FD probing (2·(n − probed) per guided row).
	EvalsSaved int64
	// SurrogateVJPs counts guided-sparse rows (the surrogate ranked the
	// probes); FDVJPs counts full finite-difference rows.
	SurrogateVJPs, FDVJPs int64
	// VerifyAccepts / VerifyRejects count post-warmup prediction checks
	// against true outputs at or beyond DisagreeTol.
	VerifyAccepts, VerifyRejects int64
	// StepRejects counts true-ratio evaluations that failed to improve the
	// best (via the EvalCache observation hook).
	StepRejects int64
	// Fallbacks counts trusted→probing demotions; Promotions counts
	// probing→trusted transitions (the first is initial trust, the rest are
	// re-earned trust).
	Fallbacks, Promotions int64
	// Observations is how many samples the surrogate has seen; Warm reports
	// whether warmup has completed; Trusted whether VJPs are currently
	// surrogate-served.
	Observations  int64
	Warm, Trusted bool
}

// surrogateObsHandles caches resolved telemetry instruments so the hot path
// pays one atomic load, mirroring the opaque routing stage's pattern.
type surrogateObsHandles struct {
	trueEvals, evalsSaved    *obs.Counter
	vjpSurrogate, vjpFD      *obs.Counter
	accepts, rejects         *obs.Counter
	stepRejects              *obs.Counter
	fallbacks, promotions    *obs.Counter
	state                    *obs.Gauge
	trainLoss, disagreements *obs.Histogram
}

// SurrogateEstimator closes the §6 surrogate loop inside the search: every
// true evaluation the search performs feeds the online surrogate's replay
// buffer, and once the surrogate has earned trust the O(n) finite-difference
// sweep is restricted to the coordinates that can matter — the prober's
// certified support when it implements SupportCertifier (bitwise identical
// to the full FD row by the certificate's guarantee), or the surrogate's
// top-ranked coordinates otherwise (in blocks, stopping after the first
// block that contributes nothing). Every derivative the search consumes is
// therefore a true central difference; trust only decides where probes are
// spent. On max-structured objectives like MLU, where the true gradient's
// support is the coordinates crossing the bottleneck, a restricted row that
// covers the support equals the full FD row at a fraction of the
// evaluations.
//
// Each forward sweep the pipeline runs before a VJP doubles as the
// verification eval — the surrogate's pre-training prediction is scored
// against the true output at zero extra cost. A configurable window of
// consecutive disagreements (or of rejected search steps, reported through
// the EvalCache observation hook) falls back to full sparse-FD probing until
// the surrogate re-earns trust, so the worst case degrades to today's path,
// never below it.
type SurrogateEstimator struct {
	inner Component
	sur   *onlineSurrogate
	fd    *fdComponent
	cfg   SurrogateGradConfig
	inDim int

	mode atomic.Int32 // surrogateModeProbing | surrogateModeTrusted

	mu          sync.Mutex // guards the trust counters below
	agreeRun    int
	disagreeRun int
	staleRun    int
	bestRatio   float64
	haveBest    bool

	// supports caches recent rows' true gradient supports (indices of
	// nonzero central differences), keyed by the base point they were
	// measured at. On max-structured objectives the support is the set of
	// coordinates crossing the bottleneck, which changes only when the
	// bottleneck does — so the nearest cached support predicts this row's
	// almost perfectly. Concurrent restarts share one estimator but walk
	// different trajectories; nearest-point lookup keeps each restart on
	// its own entry (a wrong pick only costs extra probes, never accuracy).
	supMu    sync.Mutex
	supports []supportEntry

	trueEvals     atomic.Int64
	evalsSaved    atomic.Int64
	surrogateVJPs atomic.Int64
	fdVJPs        atomic.Int64
	verifyAccepts atomic.Int64
	verifyRejects atomic.Int64
	stepRejects   atomic.Int64
	fallbacks     atomic.Int64
	promotions    atomic.Int64

	obs atomic.Pointer[surrogateObsHandles]
}

// WithSurrogateGradient wraps an opaque component of the given input/output
// dimensions with the surrogate-guided estimator. The wrapper is safe for
// concurrent use: observations from all goroutines feed one shared
// surrogate, and the trust state is shared across restarts.
func WithSurrogateGradient(c Component, inDim, outDim int, cfg SurrogateGradConfig) *SurrogateEstimator {
	if cfg.FDStep <= 0 {
		cfg.FDStep = 1e-4
	}
	if cfg.DisagreeTol <= 0 {
		cfg.DisagreeTol = 0.05
	}
	if cfg.TrustWindow <= 0 {
		cfg.TrustWindow = 4
	}
	if cfg.DisagreeWindow <= 0 {
		cfg.DisagreeWindow = 2
	}
	if cfg.VerifyWindow <= 0 {
		cfg.VerifyWindow = 12
	}
	if cfg.GuidedBlock <= 0 {
		cfg.GuidedBlock = 64
	}
	return &SurrogateEstimator{
		inner: c,
		sur:   newOnlineSurrogate(c, inDim, outDim, cfg.Surrogate),
		fd:    WithFiniteDiff(c, cfg.FDStep).(*fdComponent),
		cfg:   cfg,
		inDim: inDim,
	}
}

// Name implements Component.
func (e *SurrogateEstimator) Name() string { return e.inner.Name() + "+surrogate-grad" }

// Instrument implements Instrumentable: it resolves the surrogate.* handles
// once and forwards (de)instrumentation to the wrapped component.
func (e *SurrogateEstimator) Instrument(reg *obs.Registry) {
	if in, ok := e.inner.(Instrumentable); ok {
		in.Instrument(reg)
	}
	if reg == nil {
		e.obs.Store(nil)
		return
	}
	e.obs.Store(&surrogateObsHandles{
		trueEvals:     reg.Counter("surrogate.true_evals"),
		evalsSaved:    reg.Counter("surrogate.evals_saved"),
		vjpSurrogate:  reg.Counter("surrogate.vjp.surrogate"),
		vjpFD:         reg.Counter("surrogate.vjp.fd"),
		accepts:       reg.Counter("surrogate.verify.accepts"),
		rejects:       reg.Counter("surrogate.verify.rejects"),
		stepRejects:   reg.Counter("surrogate.step_rejects"),
		fallbacks:     reg.Counter("surrogate.fallbacks"),
		promotions:    reg.Counter("surrogate.promotions"),
		state:         reg.Gauge("surrogate.state"),
		trainLoss:     reg.Histogram("surrogate.train.loss"),
		disagreements: reg.Histogram("surrogate.disagreement"),
	})
	e.publishState()
}

// publishState mirrors the trust mode into the state gauge: 0 probing (FD),
// 1 trusted (surrogate-served VJPs).
func (e *SurrogateEstimator) publishState() {
	if h := e.obs.Load(); h != nil {
		h.state.Set(float64(e.mode.Load()))
	}
}

// Forward implements Component: it evaluates the TRUE component, feeds the
// observation (with its pre-training prediction error) to the surrogate, and
// advances the trust state machine. The pipeline's forward sweep calls this
// right before each VJP, so verification rides evaluations the search
// already pays for.
func (e *SurrogateEstimator) Forward(x []float64) []float64 {
	y := e.inner.Forward(x)
	e.trueEvals.Add(1)
	relErr, warm := e.sur.observeErr(x, y)
	h := e.obs.Load()
	if h != nil {
		h.trueEvals.Inc()
		h.trainLoss.Observe(e.sur.trainLoss())
	}
	if !warm {
		return y
	}
	if h != nil {
		h.disagreements.Observe(relErr)
	}
	if relErr <= e.cfg.DisagreeTol {
		e.verifyAccepts.Add(1)
		if h != nil {
			h.accepts.Inc()
		}
		e.mu.Lock()
		e.disagreeRun = 0
		if e.mode.Load() == surrogateModeProbing {
			e.agreeRun++
			if e.agreeRun >= e.cfg.TrustWindow {
				e.promoteLocked(h)
			}
		}
		e.mu.Unlock()
	} else {
		e.verifyRejects.Add(1)
		if h != nil {
			h.rejects.Inc()
		}
		e.mu.Lock()
		e.agreeRun = 0
		if e.mode.Load() == surrogateModeTrusted {
			e.disagreeRun++
			if e.disagreeRun >= e.cfg.DisagreeWindow {
				e.demoteLocked(h)
			}
		}
		e.mu.Unlock()
	}
	return y
}

// promoteLocked flips probing → trusted (mu held).
func (e *SurrogateEstimator) promoteLocked(h *surrogateObsHandles) {
	e.mode.Store(surrogateModeTrusted)
	e.agreeRun, e.disagreeRun, e.staleRun = 0, 0, 0
	e.promotions.Add(1)
	if h != nil {
		h.promotions.Inc()
		h.state.Set(float64(surrogateModeTrusted))
	}
}

// demoteLocked flips trusted → probing (mu held).
func (e *SurrogateEstimator) demoteLocked(h *surrogateObsHandles) {
	e.mode.Store(surrogateModeProbing)
	e.agreeRun, e.disagreeRun, e.staleRun = 0, 0, 0
	e.fallbacks.Add(1)
	if h != nil {
		h.fallbacks.Inc()
		h.state.Set(float64(surrogateModeProbing))
	}
}

// ObserveTrueEval implements TrueEvalObserver: the search reports every
// fresh true-ratio evaluation (at EvalCache insert time, so cache hits are
// never double-counted). A run of consecutive evaluations that fail to
// improve the best ratio means the surrogate's directions stopped paying
// off — after VerifyWindow of them a trusted surrogate is demoted back to
// FD probing.
func (e *SurrogateEstimator) ObserveTrueEval(x []float64, ratio, sys, opt float64) {
	h := e.obs.Load()
	e.mu.Lock()
	if !e.haveBest || ratio > e.bestRatio {
		e.bestRatio = ratio
		e.haveBest = true
		e.staleRun = 0
		e.mu.Unlock()
		return
	}
	e.staleRun++
	e.stepRejects.Add(1)
	if h != nil {
		h.stepRejects.Inc()
	}
	if e.mode.Load() == surrogateModeTrusted && e.staleRun >= e.cfg.VerifyWindow {
		e.demoteLocked(h)
	}
	e.mu.Unlock()
}

// trusted reports whether VJPs are currently guided by the surrogate.
func (e *SurrogateEstimator) trusted() bool { return e.mode.Load() == surrogateModeTrusted }

// countFD accounts rows' worth of full finite-difference probing.
func (e *SurrogateEstimator) countFD(rows int) {
	probes := int64(rows) * int64(2*e.inDim)
	e.fdVJPs.Add(int64(rows))
	e.trueEvals.Add(probes)
	if h := e.obs.Load(); h != nil {
		h.vjpFD.Add(int64(rows))
		h.trueEvals.Add(probes)
	}
}

// countGuided accounts one guided-sparse row that probed `probed` of inDim
// coordinates: the probes spent are true evals, the rest are savings over
// what a full FD row would have cost.
func (e *SurrogateEstimator) countGuided(probed int) {
	spent := int64(2 * probed)
	saved := int64(2 * (e.inDim - probed))
	e.surrogateVJPs.Add(1)
	e.trueEvals.Add(spent)
	e.evalsSaved.Add(saved)
	if h := e.obs.Load(); h != nil {
		h.vjpSurrogate.Inc()
		h.trueEvals.Add(spent)
		h.evalsSaved.Add(saved)
	}
}

// supportEntry is one cached gradient support with the base point it was
// measured at.
type supportEntry struct {
	x   []float64
	sup []int
}

// maxSupportEntries bounds the support cache: one entry per concurrent
// trajectory is enough, and lookups are linear.
const maxSupportEntries = 4

// nearestSupportLocked returns the index of the cached entry whose base
// point is closest (L2) to x, or -1 (supMu held).
func (e *SurrogateEstimator) nearestSupportLocked(x []float64) int {
	best, bestD := -1, math.Inf(1)
	for i := range e.supports {
		d := 0.0
		for j, v := range e.supports[i].x {
			dv := v - x[j]
			d += dv * dv
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// lookupSupport returns the cached support measured nearest to x (nil when
// the cache is empty).
func (e *SurrogateEstimator) lookupSupport(x []float64) []int {
	e.supMu.Lock()
	defer e.supMu.Unlock()
	if i := e.nearestSupportLocked(x); i >= 0 {
		return e.supports[i].sup
	}
	return nil
}

// recordSupport stores the row's true gradient support for the next guided
// sweep, replacing the nearest cached entry once the cache is full — each
// search trajectory takes small steps, so its own previous entry is the
// nearest and trajectories do not evict each other. Full-FD rows feed the
// cache too: scanning a gradient the fallback already computed is free next
// to its 2n probes, so the first trusted row starts from a measured support,
// not from the surrogate's ranking alone.
func (e *SurrogateEstimator) recordSupport(x, grad []float64) {
	sup := make([]int, 0, 64)
	for j, g := range grad {
		if g != 0 {
			sup = append(sup, j)
		}
	}
	e.supMu.Lock()
	defer e.supMu.Unlock()
	if len(e.supports) < maxSupportEntries {
		e.supports = append(e.supports, supportEntry{x: append([]float64{}, x...), sup: sup})
		return
	}
	i := e.nearestSupportLocked(x)
	ent := &e.supports[i]
	ent.x = ent.x[:0]
	ent.x = append(ent.x, x...)
	ent.sup = sup
}

// guidedVJPInto serves one trusted row with true central differences on a
// restricted subset of coordinates; everything unprobed is reported as zero.
// Two restriction mechanisms, tried in order:
//
// Certified support. When the component's prober implements
// SupportCertifier, the row probes exactly the coordinates the prober
// certifies could affect the output at ±step — every omitted coordinate is
// GUARANTEED (by the certifier's contract) to produce a bitwise-zero central
// difference, so the row equals the full FD row bitwise at a fraction of the
// probes. On MLU that certified set is the coordinates crossing the
// bottleneck link or a link within probe-reach of it.
//
// Ranked blocks (generic fallback, no certifier). The previous row's
// recorded support is probed first (the bottleneck rarely moves between
// consecutive rows), then the surrogate's VJP ranks the remaining
// coordinates and probes are spent in descending rank order, one block at a
// time, stopping after the first block whose probes all contribute exactly
// zero — but never before at least one nonzero contribution has been found,
// and never on a cached support that failed to re-confirm (either degrades
// to the full sweep; worst case is a full FD row reordered, never a wrongly
// truncated gradient).
//
// Probed coordinates use the FD estimator's exact arithmetic, bitwise
// identical to a full FD row on those coordinates. Returns the number of
// coordinates probed.
func (e *SurrogateEstimator) guidedVJPInto(x, ybar, grad []float64) int {
	n := len(x)
	step := e.fd.step
	fpBuf := linalg.GetVec(len(ybar))
	defer linalg.PutVec(fpBuf)
	probe := func(j int) float64 { panic("unset") }
	var certified []int
	haveCert := false
	if spe, ok := e.fd.inner.(SparseProbeEvaluator); ok {
		prober := spe.SparseProber(x)
		defer prober.Close()
		if sc, ok := prober.(SupportCertifier); ok {
			certified = sc.CertifiedSupport(step)
			haveCert = true
		}
		probe = func(j int) float64 {
			fp := prober.Probe(j, step)
			copy(fpBuf, fp)
			fm := prober.Probe(j, -step)
			s := 0.0
			for i := range ybar {
				s += ybar[i] * (fpBuf[i] - fm[i])
			}
			return s
		}
	} else {
		xp := linalg.GetVec(n)
		defer linalg.PutVec(xp)
		copy(xp, x)
		probe = func(j int) float64 {
			xp[j] = x[j] + step
			fp := e.fd.inner.Forward(xp)
			copy(fpBuf, fp)
			xp[j] = x[j] - step
			fm := e.fd.inner.Forward(xp)
			xp[j] = x[j]
			s := 0.0
			for i := range ybar {
				s += ybar[i] * (fpBuf[i] - fm[i])
			}
			return s
		}
	}

	probedMark := make([]bool, n)
	probed, seen := 0, false
	doProbe := func(j int) {
		s := probe(j)
		grad[j] = s / (2 * step)
		probedMark[j] = true
		probed++
		if s != 0 {
			seen = true
		}
	}

	// Certified path: probe exactly the certified set. No ranking, no
	// stopping rule — the omitted coordinates are zero by the certifier's
	// guarantee, not by inference, so the row is bitwise the full FD row.
	if haveCert {
		for _, j := range certified {
			if j >= 0 && j < n && !probedMark[j] {
				doProbe(j)
			}
		}
		e.recordSupport(x, grad)
		return probed
	}

	// Ranked path. Rank all coordinates by the magnitude of the surrogate's
	// learned gradient — where the learner thinks the probes matter.
	sg := linalg.GetVec(n)
	defer linalg.PutVec(sg)
	e.sur.vjpInto(x, ybar, sg)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return math.Abs(sg[order[a]]) > math.Abs(sg[order[b]])
	})

	// Phase 1: probe the nearest cached support. If every one of those
	// coordinates is still in the support, the bottleneck has not moved and
	// the support is confirmed stable — the ranked sweep then only needs to
	// catch entrants and may stop at the first all-zero block. If ANY cached
	// coordinate probes to zero, the support shifted under us: truncating on
	// a ranking we cannot cross-check would risk a wrongly sparsified
	// gradient, so the row degrades to the full sweep (exactly a full FD
	// row, reordered) and re-measures the support from scratch.
	prev := e.lookupSupport(x)
	stale := false
	for _, j := range prev {
		if j >= 0 && j < n && !probedMark[j] {
			doProbe(j)
			if grad[j] == 0 {
				stale = true
			}
		}
	}
	confirmed := len(prev) > 0 && !stale
	block := e.cfg.GuidedBlock
	inBlock, live := 0, false
	for _, j := range order {
		if probedMark[j] {
			continue
		}
		doProbe(j)
		if grad[j] != 0 {
			live = true
		}
		if inBlock++; inBlock == block {
			// An all-zero block ends the sweep only when the support is
			// positively known: either confirmed stable by phase 1, or (with
			// no cached prediction) located by this sweep itself. A sweep
			// that has not seen a single nonzero yet never stops early.
			if !live && (confirmed || (len(prev) == 0 && seen)) {
				break
			}
			inBlock, live = 0, false
		}
	}
	e.recordSupport(x, grad)
	return probed
}

// VJP implements Differentiable: guided-sparse probing when the surrogate is
// trusted, full sparse-FD probing otherwise.
func (e *SurrogateEstimator) VJP(x, ybar []float64) []float64 {
	if e.trusted() {
		grad := make([]float64, len(x))
		e.countGuided(e.guidedVJPInto(x, ybar, grad))
		return grad
	}
	e.countFD(1)
	grad := e.fd.VJP(x, ybar)
	e.recordSupport(x, grad)
	return grad
}

// VJPCtx implements CtxDifferentiable. The guided path probes a handful of
// blocks and checks are per full-FD fallback only; the FD path observes
// cancellation per coordinate.
func (e *SurrogateEstimator) VJPCtx(ctx context.Context, x, ybar []float64) ([]float64, error) {
	if e.trusted() {
		grad := make([]float64, len(x))
		e.countGuided(e.guidedVJPInto(x, ybar, grad))
		return grad, nil
	}
	e.countFD(1)
	grad, err := e.fd.VJPCtx(ctx, x, ybar)
	if err == nil {
		e.recordSupport(x, grad)
	}
	return grad, err
}

// BatchForward implements BatchComponent: rows are true evaluations, each
// observed (and verified) like the scalar Forward.
func (e *SurrogateEstimator) BatchForward(xs *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(xs.Rows, e.sur.outDim)
	for r := 0; r < xs.Rows; r++ {
		copy(out.Row(r), e.Forward(xs.Row(r)))
	}
	return out
}

// BatchVJP implements BatchDifferentiable: trusted rows run the scalar
// guided-sparse serve per row (each row's result depends only on that row
// and the surrogate's parameters, so batched and scalar agree row for row);
// untrusted batches fall through to the FD estimator's probe batching
// (sparse when available).
func (e *SurrogateEstimator) BatchVJP(xs, ybars *linalg.Matrix) *linalg.Matrix {
	if e.trusted() {
		grads := linalg.NewMatrix(xs.Rows, xs.Cols)
		for r := 0; r < xs.Rows; r++ {
			e.countGuided(e.guidedVJPInto(xs.Row(r), ybars.Row(r), grads.Row(r)))
		}
		return grads
	}
	e.countFD(xs.Rows)
	grads := e.fd.BatchVJP(xs, ybars)
	if grads.Rows > 0 {
		e.recordSupport(xs.Row(grads.Rows-1), grads.Row(grads.Rows-1))
	}
	return grads
}

// BatchVJPCtx implements BatchCtxDifferentiable (see VJPCtx).
func (e *SurrogateEstimator) BatchVJPCtx(ctx context.Context, xs, ybars *linalg.Matrix) (*linalg.Matrix, error) {
	if e.trusted() {
		grads := linalg.NewMatrix(xs.Rows, xs.Cols)
		for r := 0; r < xs.Rows; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			e.countGuided(e.guidedVJPInto(xs.Row(r), ybars.Row(r), grads.Row(r)))
		}
		return grads, nil
	}
	e.countFD(xs.Rows)
	grads, err := e.fd.BatchVJPCtx(ctx, xs, ybars)
	if err == nil && grads.Rows > 0 {
		e.recordSupport(xs.Row(grads.Rows-1), grads.Row(grads.Rows-1))
	}
	return grads, err
}

// Stats returns a snapshot of the estimator's counters and trust state.
func (e *SurrogateEstimator) Stats() SurrogateStats {
	obsn := int64(e.sur.Observations())
	return SurrogateStats{
		TrueEvals:     e.trueEvals.Load(),
		EvalsSaved:    e.evalsSaved.Load(),
		SurrogateVJPs: e.surrogateVJPs.Load(),
		FDVJPs:        e.fdVJPs.Load(),
		VerifyAccepts: e.verifyAccepts.Load(),
		VerifyRejects: e.verifyRejects.Load(),
		StepRejects:   e.stepRejects.Load(),
		Fallbacks:     e.fallbacks.Load(),
		Promotions:    e.promotions.Load(),
		Observations:  obsn,
		Warm:          obsn >= int64(e.sur.cfg.Warmup),
		Trusted:       e.trusted(),
	}
}

// SaveCheckpoint writes the trained surrogate network's parameters to w
// (nn.SaveParams encoding; restore with LoadCheckpoint into an estimator of
// identical architecture).
func (e *SurrogateEstimator) SaveCheckpoint(w io.Writer) error { return e.sur.saveTo(w) }

// LoadCheckpoint restores surrogate parameters written by SaveCheckpoint.
func (e *SurrogateEstimator) LoadCheckpoint(r io.Reader) error { return e.sur.loadFrom(r) }

// TrueEvalObserver is implemented by pipeline stages that want to see every
// fresh true-ratio evaluation the search performs. When a search runs with
// an EvalCache, GradientSearchContext installs the cache's observation hook
// for its duration and fans inserts out to all observer stages; results
// served from the cache were observed when first inserted, so observers
// never pay (or learn) twice, and errors are never cached hence never
// observed.
type TrueEvalObserver interface {
	ObserveTrueEval(x []float64, ratio, sys, opt float64)
}
