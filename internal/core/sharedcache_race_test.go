package core

// -race regression for the shared-EvalCache observer clobbering bug: two
// concurrent GradientSearchContext calls over ONE memo cache each install a
// TrueEvalObserver fan-out. With the old last-wins SetOnInsert hook, the
// search that finished first detached the other's observers (its deferred
// SetOnInsert(nil) clobbered the shared slot), silently starving the
// surviving search's surrogate learner. The subscriber registry keeps every
// live search's fan-out attached until that search itself returns.
//
// CI runs this under -race (the shared cache is hammered by both searches'
// restart workers while subscriptions come and go).

import (
	"context"
	"sync"
	"testing"
	"time"
)

// observedSearchTarget builds a cheap scalar-engine search target whose
// pipeline contains one obsStage recording every ObserveTrueEval fan-out.
func observedSearchTarget() (*AttackTarget, *obsStage) {
	stage := &obsStage{}
	p := NewPipeline(stage)
	return &AttackTarget{
		Pipeline:  p,
		InputDim:  4,
		MaxDemand: 1,
		RatioOverride: func(x []float64) (float64, float64, float64, error) {
			sys := p.EvalScalar(x)
			return sys, sys, 1, nil
		},
	}, stage
}

// TestConcurrentSearchesSharedEvalCacheObservers interleaves a short search A
// inside a long search B, both over one shared cache, with channel-gated
// ordering so the schedule is deterministic: B attaches first, A starts and
// finishes strictly inside B's lifetime, then B keeps inserting. Since B's
// fan-out is attached for every insert of the whole test, B's learner must
// observe exactly one event per fresh insert — under the clobbering bug it
// goes blind the moment A returns (and during A's run), and this count
// assertion fails.
func TestConcurrentSearchesSharedEvalCacheObservers(t *testing.T) {
	cache := NewEvalCache(1<<14, 0)

	targetA, stageA := observedSearchTarget()
	targetB, stageB := observedSearchTarget()

	bAttached := make(chan struct{}) // closed when B's restart 0 reaches iter 20
	aDone := make(chan struct{})     // closed when search A has returned

	cfgB := DefaultGradientConfig()
	cfgB.Iters = 200
	cfgB.Restarts = 2
	cfgB.EvalEvery = 1
	cfgB.Patience = 0 // never retire early: B must outlive A
	cfgB.Seed = 7
	cfgB.Engine = EngineScalar
	cfgB.EvalCache = cache
	cfgB.FaultInjector = func(restart, iter int, x []float64) error {
		if restart == 0 && iter == 20 {
			close(bAttached)
			<-aDone // hold B mid-flight while A runs and detaches
		}
		return nil
	}

	var wg sync.WaitGroup
	var resB *SearchResult
	var errB error
	wg.Add(1)
	go func() {
		defer wg.Done()
		resB, errB = GradientSearchContext(context.Background(), targetB, cfgB)
	}()

	select {
	case <-bAttached:
	case <-time.After(30 * time.Second):
		t.Fatal("search B never reached its gate")
	}

	cfgA := DefaultGradientConfig()
	cfgA.Iters = 30
	cfgA.Restarts = 2
	cfgA.EvalEvery = 1
	cfgA.Patience = 0
	cfgA.Seed = 1301 // disjoint RNG stream from B: (mostly) distinct points
	cfgA.Engine = EngineScalar
	cfgA.EvalCache = cache
	resA, errA := GradientSearchContext(context.Background(), targetA, cfgA)
	close(aDone)
	wg.Wait()

	if errA != nil || errB != nil {
		t.Fatalf("search errors: A=%v B=%v", errA, errB)
	}
	if !resA.Found || !resB.Found {
		t.Fatalf("searches found nothing: A=%v B=%v", resA.Found, resB.Found)
	}

	st := cache.Stats()
	inserts := int(st.Entries + st.Evictions)
	if inserts == 0 {
		t.Fatal("test exercised no cache inserts")
	}
	if got := stageA.count(); got == 0 {
		t.Fatal("search A's observer saw no true evaluations")
	}
	// The pinned contract: B's observer was attached for every insert of the
	// run (B attached before any evaluation of either search and detached
	// only when B itself returned, after A), so it observed each fresh
	// insert exactly once.
	if got := stageB.count(); got != inserts {
		t.Fatalf("search B's observer saw %d of %d fresh inserts — a finishing search detached a concurrent search's fan-out", got, inserts)
	}
}
