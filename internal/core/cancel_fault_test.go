package core_test

// Cancellation and fault-isolation tests for the gradient-search engines:
// the failure-semantics contract says a cancelled or partially faulted
// search still returns a well-formed best-so-far result, retires only the
// affected restarts, and leaks nothing. Run with -race.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// settleGoroutines polls until the goroutine count returns to the baseline
// or the deadline passes — worker goroutines need a moment to observe closed
// channels after the search returns.
func settleGoroutines(before int) int {
	deadline := time.Now().Add(3 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before || time.Now().After(deadline) {
			return after
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelBatchedSearchMidFlight cancels a Restarts=8 batched search
// mid-flight and checks the acceptance contract: prompt return, StopReason
// cancelled, a valid best-so-far result, and zero leaked goroutines.
func TestCancelBatchedSearchMidFlight(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)

	cfg := core.DefaultGradientConfig()
	cfg.Iters = 10_000 // far more than will run before the cancel
	cfg.Restarts = 8
	cfg.EvalEvery = 1
	cfg.Patience = 0
	cfg.Engine = core.EngineBatched

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg.FaultInjector = func(restart, iter int, x []float64) error {
		if iter >= 5 {
			once.Do(cancel)
		}
		return nil
	}

	before := runtime.NumGoroutine()
	start := time.Now()
	res, err := core.GradientSearchContext(ctx, tg, cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled search returned error %v, want nil (result with StopReason)", err)
	}
	if res == nil {
		t.Fatal("cancelled search returned nil result")
	}
	if res.StopReason != core.StopCancelled {
		t.Fatalf("StopReason = %v, want cancelled", res.StopReason)
	}
	if !res.Found || res.BestX == nil {
		t.Fatalf("cancelled search lost its best-so-far result (found=%v)", res.Found)
	}
	if len(res.Restarts) != cfg.Restarts {
		t.Fatalf("got %d restart outcomes, want %d", len(res.Restarts), cfg.Restarts)
	}
	for _, o := range res.Restarts {
		if o.Stop != core.StopCancelled {
			t.Fatalf("restart %d Stop = %v, want cancelled", o.Restart, o.Stop)
		}
		if o.Iters > 8 {
			t.Fatalf("restart %d ran %d iterations after a cancel at iter 5 — not within one step granularity", o.Restart, o.Iters)
		}
	}
	// Generous sanity bound: 10k iterations would take far longer than the
	// handful that actually ran.
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled search took %v", elapsed)
	}
	if after := settleGoroutines(before); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestCancelScalarSearchMidFlight is the scalar-engine counterpart.
func TestCancelScalarSearchMidFlight(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)

	cfg := core.DefaultGradientConfig()
	cfg.Iters = 10_000
	cfg.Restarts = 4
	cfg.EvalEvery = 1
	cfg.Patience = 0
	cfg.Engine = core.EngineScalar

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg.FaultInjector = func(restart, iter int, x []float64) error {
		if iter >= 5 {
			once.Do(cancel)
		}
		return nil
	}

	before := runtime.NumGoroutine()
	res, err := core.GradientSearchContext(ctx, tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != core.StopCancelled {
		t.Fatalf("StopReason = %v, want cancelled", res.StopReason)
	}
	if !res.Found {
		t.Fatal("cancelled search lost its best-so-far result")
	}
	if after := settleGoroutines(before); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestCancelDeadlineStopReason distinguishes an expired deadline from an
// explicit cancel in the StopReason taxonomy.
func TestCancelDeadlineStopReason(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)

	cfg := core.DefaultGradientConfig()
	cfg.Iters = 1_000_000
	cfg.Restarts = 2
	cfg.EvalEvery = 1
	cfg.Patience = 0

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	res, err := core.GradientSearchContext(ctx, tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != core.StopDeadline {
		t.Fatalf("StopReason = %v, want deadline", res.StopReason)
	}
}

// recordingInjector captures every restart's iterate at the top of each
// outer iteration (the FaultInjector hook doubles as the trajectory
// observation point) and optionally faults one restart at one iteration.
type recordingInjector struct {
	mu         sync.Mutex
	traj       map[int][][]float64
	faultAt    int // restart to fault; -1 for none
	faultIter  int
	faultCount int
}

func newRecordingInjector(faultRestart, faultIter int) *recordingInjector {
	return &recordingInjector{traj: make(map[int][][]float64), faultAt: faultRestart, faultIter: faultIter}
}

func (ri *recordingInjector) hook(restart, iter int, x []float64) error {
	ri.mu.Lock()
	ri.traj[restart] = append(ri.traj[restart], append([]float64(nil), x...))
	ri.mu.Unlock()
	if restart == ri.faultAt && iter == ri.faultIter {
		ri.faultCount++
		return fmt.Errorf("injected fault at restart %d iter %d", restart, iter)
	}
	return nil
}

// deterministicScore replaces the LP-backed ratio with the raw system MLU:
// the verified score of the bitwise tests must be a pure function of the
// iterate, and the warm-started LP pool is deterministic only for identical
// process-wide solve histories (which a retired restart changes by design).
// The search trajectory itself never touches the LP either way.
func deterministicScore(tg *core.AttackTarget) *core.AttackTarget {
	t2 := *tg
	t2.RatioOverride = func(x []float64) (float64, float64, float64, error) {
		sys := t2.Pipeline.EvalScalar(x)
		return sys, sys, 1, nil
	}
	return &t2
}

// runWithInjector runs one search with the given engine and injector and
// returns the result.
func runWithInjector(t *testing.T, tg *core.AttackTarget, engine core.SearchEngine, ri *recordingInjector) *core.SearchResult {
	t.Helper()
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 24
	cfg.Restarts = 4
	cfg.Workers = 1 // deterministic eval order
	cfg.EvalEvery = 4
	cfg.Patience = 0
	cfg.Engine = engine
	cfg.FaultInjector = ri.hook
	res, err := core.GradientSearchContext(context.Background(), tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultIsolationBitwiseTrajectories is the fault-injection matrix of the
// determinism contract: faulting restart 0 (scalar) and row 0 (batched) must
// leave every surviving restart's trajectory bitwise identical to the same
// engine's unfaulted run.
func TestFaultIsolationBitwiseTrajectories(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := deterministicScore(target(m))

	for _, engine := range []core.SearchEngine{core.EngineScalar, core.EngineBatched} {
		t.Run(engine.String(), func(t *testing.T) {
			clean := newRecordingInjector(-1, 0)
			resClean := runWithInjector(t, tg, engine, clean)

			faulted := newRecordingInjector(0, 7)
			resFault := runWithInjector(t, tg, engine, faulted)

			if faulted.faultCount != 1 {
				t.Fatalf("injected %d faults, want 1", faulted.faultCount)
			}
			if got := resFault.Restarts[0].Stop; got != core.StopFaulted {
				t.Fatalf("faulted restart Stop = %v, want faulted", got)
			}
			fe := resFault.Restarts[0].Fault
			if fe == nil || fe.Restart != 0 || fe.Iter != 7 || fe.Stage != "fault-injector" {
				t.Fatalf("fault attribution %+v, want restart 0 iter 7 stage fault-injector", fe)
			}
			if resFault.FaultCount != 1 || len(resFault.Faults) != 1 {
				t.Fatalf("FaultCount=%d len(Faults)=%d, want 1 and 1", resFault.FaultCount, len(resFault.Faults))
			}
			// The faulted restart stops recording at the fault iteration...
			if got := len(faulted.traj[0]); got != 8 {
				t.Fatalf("faulted restart recorded %d iterations, want 8", got)
			}
			// ...while every survivor's trajectory matches the clean run
			// bitwise, iteration by iteration.
			for r := 1; r < 4; r++ {
				want, got := clean.traj[r], faulted.traj[r]
				if len(want) != len(got) {
					t.Fatalf("restart %d: %d iterations faulted vs %d clean", r, len(got), len(want))
				}
				for it := range want {
					for i := range want[it] {
						if want[it][i] != got[it][i] {
							t.Fatalf("restart %d iter %d coord %d: %v != %v (trajectory diverged)",
								r, it, i, got[it][i], want[it][i])
						}
					}
				}
				if resFault.Restarts[r].Stop != core.StopConverged {
					t.Fatalf("surviving restart %d Stop = %v, want converged", r, resFault.Restarts[r].Stop)
				}
				if resFault.Restarts[r].BestRatio != resClean.Restarts[r].BestRatio {
					t.Fatalf("surviving restart %d BestRatio %v != clean %v",
						r, resFault.Restarts[r].BestRatio, resClean.Restarts[r].BestRatio)
				}
			}
			if resClean.StopReason != core.StopConverged || resFault.StopReason != core.StopConverged {
				t.Fatalf("StopReason clean=%v faulted=%v, want converged (survivors ran out the budget)",
					resClean.StopReason, resFault.StopReason)
			}
		})
	}
}

// TestFaultScalarBatchedAgree cross-checks the two engines against each
// other under the same injected fault: the per-row determinism contract of
// PR2 must also hold when a restart is retired mid-search.
func TestFaultScalarBatchedAgree(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := deterministicScore(target(m))

	scalar := newRecordingInjector(0, 7)
	batched := newRecordingInjector(0, 7)
	resS := runWithInjector(t, tg, core.EngineScalar, scalar)
	resB := runWithInjector(t, tg, core.EngineBatched, batched)

	for r := 0; r < 4; r++ {
		ws, wb := scalar.traj[r], batched.traj[r]
		if len(ws) != len(wb) {
			t.Fatalf("restart %d: scalar %d iterations, batched %d", r, len(ws), len(wb))
		}
		for it := range ws {
			for i := range ws[it] {
				if ws[it][i] != wb[it][i] {
					t.Fatalf("restart %d iter %d coord %d: scalar %v != batched %v",
						r, it, i, ws[it][i], wb[it][i])
				}
			}
		}
		if resS.Restarts[r].Stop != resB.Restarts[r].Stop {
			t.Fatalf("restart %d Stop: scalar %v != batched %v", r, resS.Restarts[r].Stop, resB.Restarts[r].Stop)
		}
	}
	if resS.BestRatio != resB.BestRatio {
		t.Fatalf("BestRatio: scalar %v != batched %v", resS.BestRatio, resB.BestRatio)
	}
}

// TestFaultAllRestartsRetired drives every restart into persistent eval
// failure: the search must degrade gracefully to StopFaulted with a
// well-formed (empty-handed) result instead of crashing or erroring — the
// scenario that used to panic cmd/tereport via an empty percentile sample.
func TestFaultAllRestartsRetired(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	tg.RatioOverride = func(x []float64) (float64, float64, float64, error) {
		return 0, 0, 0, errors.New("solver permanently down")
	}

	cfg := core.DefaultGradientConfig()
	cfg.Iters = 40
	cfg.Restarts = 3
	cfg.EvalEvery = 1
	cfg.Patience = 0

	res, err := core.GradientSearchContext(context.Background(), tg, cfg)
	if err != nil {
		t.Fatalf("all-faulted search returned error %v, want nil", err)
	}
	if res.StopReason != core.StopFaulted {
		t.Fatalf("StopReason = %v, want faulted", res.StopReason)
	}
	if res.Found {
		t.Fatal("Found = true with every evaluation failing")
	}
	if res.FaultCount == 0 {
		t.Fatal("no faults recorded")
	}
	for _, o := range res.Restarts {
		if o.Stop != core.StopFaulted {
			t.Fatalf("restart %d Stop = %v, want faulted", o.Restart, o.Stop)
		}
		if o.Fault == nil || o.Fault.Stage != "ratio-eval" {
			t.Fatalf("restart %d fault %+v, want stage ratio-eval", o.Restart, o.Fault)
		}
	}
}

// TestFaultComponentPanicContained checks the recover() boundary end to end
// with a real panic (not an injector error): a pipeline stage that panics for
// one restart's region of the input space must retire only that restart.
func TestFaultComponentPanicContained(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)

	var poisoned sync.Map // restart index → true once faulted
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 20
	cfg.Restarts = 4
	cfg.EvalEvery = 5
	cfg.Patience = 0
	cfg.Engine = core.EngineScalar
	cfg.FaultInjector = func(restart, iter int, x []float64) error {
		if restart == 2 && iter == 3 {
			poisoned.Store(restart, true)
			panic("simulated ad shape mismatch") // raw panic, not an error return
		}
		return nil
	}

	res, err := core.GradientSearchContext(context.Background(), tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts[2].Stop != core.StopFaulted {
		t.Fatalf("restart 2 Stop = %v, want faulted", res.Restarts[2].Stop)
	}
	fe := res.Restarts[2].Fault
	if fe == nil {
		t.Fatal("no fault recorded on restart 2")
	}
	var ce *core.ComponentError
	if !errors.As(fe, &ce) {
		t.Fatalf("fault %T does not unwrap to *ComponentError", fe)
	}
	if !strings.Contains(ce.Error(), "simulated ad shape mismatch") {
		t.Fatalf("fault message %q lost the panic value", ce.Error())
	}
	for _, r := range []int{0, 1, 3} {
		if res.Restarts[r].Stop != core.StopConverged {
			t.Fatalf("restart %d Stop = %v, want converged", r, res.Restarts[r].Stop)
		}
	}
	if !res.Found {
		t.Fatal("surviving restarts found nothing")
	}
}

// TestFaultCountJSONRoundTrip checks the failure-semantics fields survive
// the result file format.
func TestFaultCountJSONRoundTrip(t *testing.T) {
	res := &core.SearchResult{
		Method:     "gradient-based (lagrangian)",
		Found:      true,
		BestRatio:  1.5,
		StopReason: core.StopCancelled,
		FaultCount: 3,
	}
	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.ReadResultJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.StopReason != core.StopCancelled || back.FaultCount != 3 {
		t.Fatalf("round-trip lost failure fields: %+v", back)
	}
	// Results that predate the taxonomy parse to StopNone.
	old, err := core.ReadResultJSON(strings.NewReader(`{"method":"x","found":false}`))
	if err != nil {
		t.Fatal(err)
	}
	if old.StopReason != core.StopNone {
		t.Fatalf("legacy result StopReason = %v, want none", old.StopReason)
	}
}
