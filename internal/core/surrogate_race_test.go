package core

// -race regression coverage for the surrogate path: the online learner and
// the estimator's trust state are shared across restart workers, so training,
// gradient serving, verification, and stats scraping all race against each
// other in a real search. CI runs these under -race (Makefile bench-surrogate
// leg).

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestOnlineSurrogateConcurrentForwardTrain(t *testing.T) {
	opaque := &Func{ComponentName: "h", Fn: func(x []float64) []float64 {
		return []float64{x[0]*x[0] + 0.5*x[1]}
	}}
	cfg := DefaultSurrogateConfig(21)
	cfg.Warmup = 8
	cfg.TrainSteps = 1
	s := WithOnlineSurrogate(opaque, 2, 1, cfg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(100 + w))
			for i := 0; i < 60; i++ {
				x := []float64{r.Uniform(-1, 1), r.Uniform(-1, 1)}
				s.Forward(x)
				s.VJP(x, []float64{1})
			}
		}(w)
	}
	wg.Wait()
	if got := s.(*onlineSurrogate).Observations(); got != 8*60 {
		t.Fatalf("observations = %d, want %d", got, 8*60)
	}
}

func TestSurrogateEstimatorConcurrentSearchWorkers(t *testing.T) {
	lin := &linComp{w: []float64{0.8, -0.5, 0.3, 0.2}, c: 0.1}
	cfg := DefaultSurrogateGradConfig(22)
	cfg.Surrogate.Warmup = 16
	cfg.TrustWindow = 2
	cfg.DisagreeTol = 0.5
	est := WithSurrogateGradient(lin, 4, 1, cfg)
	p := NewPipeline(est)
	target := &AttackTarget{
		Pipeline:  p,
		InputDim:  4,
		MaxDemand: 1,
		RatioOverride: func(x []float64) (float64, float64, float64, error) {
			sys := p.EvalScalar(x)
			return sys, sys, 1, nil
		},
	}
	gcfg := DefaultGradientConfig()
	gcfg.Iters = 40
	gcfg.Restarts = 4
	gcfg.Engine = EngineScalar // per-restart goroutines share the estimator
	gcfg.EvalEvery = 5
	gcfg.Seed = 23
	gcfg.EvalCache = NewEvalCache(1<<10, 0)

	// Scrape stats concurrently with the search: the counters are part of
	// the estimator's public surface and must be race-free.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = est.Stats()
			}
		}
	}()
	res, err := GradientSearch(target, gcfg)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.GradEvals == 0 {
		t.Fatal("search computed no gradients")
	}
	st := est.Stats()
	if st.TrueEvals == 0 || st.Observations == 0 {
		t.Fatalf("estimator saw no traffic: %+v", st)
	}
}
