package core

import (
	"sync"

	"repro/internal/ad"
	"repro/internal/nn"
	"repro/internal/rng"
)

// SurrogateConfig controls the online DNN surrogate of §6 ("Mechanisms
// that approximate non-differentiable components"): a small network f_θ is
// trained DURING the search to match the opaque component h, by minimizing
// L_diff = ‖f_θ(x) − h(x)‖² over the points the search actually visits.
// Forward always returns the TRUE component output; only the gradient comes
// from the surrogate.
type SurrogateConfig struct {
	// Hidden widths of the surrogate MLP.
	Hidden []int
	// BufferSize bounds the replay buffer of observed (x, h(x)) pairs.
	BufferSize int
	// TrainSteps is how many SGD steps run after every observation.
	TrainSteps int
	// BatchSize per training step.
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// InputScale normalizes surrogate inputs (0 = 1).
	InputScale float64
	// Seed drives initialization and batch sampling.
	Seed uint64
	// Warmup is the number of observations before the surrogate's gradient
	// is trusted; before that VJP returns zeros (the search direction then
	// comes from the other stages).
	Warmup int
}

// DefaultSurrogateConfig returns a workable configuration.
func DefaultSurrogateConfig(seed uint64) SurrogateConfig {
	return SurrogateConfig{
		Hidden:     []int{64},
		BufferSize: 512,
		TrainSteps: 2,
		BatchSize:  16,
		LR:         1e-3,
		InputScale: 1,
		Seed:       seed,
		Warmup:     32,
	}
}

// onlineSurrogate wraps an opaque component with a DNN whose training is
// folded into the search, per §6.
type onlineSurrogate struct {
	inner         Component
	cfg           SurrogateConfig
	inDim, outDim int

	mu   sync.Mutex
	net  *nn.Sequential
	opt  *nn.Adam
	r    *rng.RNG
	bufX [][]float64
	bufY [][]float64
	next int
	seen int
}

// WithOnlineSurrogate wraps an opaque component of the given input/output
// dimensions. The wrapper is safe for concurrent use; observations from all
// goroutines feed one shared surrogate.
func WithOnlineSurrogate(c Component, inDim, outDim int, cfg SurrogateConfig) Differentiable {
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{64}
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 512
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.InputScale == 0 {
		cfg.InputScale = 1
	}
	sizes := append(append([]int{inDim}, cfg.Hidden...), outDim)
	return &onlineSurrogate{
		inner:  c,
		cfg:    cfg,
		inDim:  inDim,
		outDim: outDim,
		net:    nn.MLP("surrogate", sizes, nn.ActTanh, rng.New(cfg.Seed)),
		opt:    nn.NewAdam(cfg.LR),
		r:      rng.New(cfg.Seed + 1),
	}
}

// Name implements Component.
func (s *onlineSurrogate) Name() string { return s.inner.Name() + "+dnn-surrogate" }

// Forward evaluates the TRUE component, records the observation, and takes
// a few surrogate training steps (the integration of L_diff into the
// search loop).
func (s *onlineSurrogate) Forward(x []float64) []float64 {
	y := s.inner.Forward(x)
	s.observe(x, y)
	return y
}

func (s *onlineSurrogate) observe(x, y []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	xc := append([]float64{}, x...)
	yc := append([]float64{}, y...)
	if len(s.bufX) < s.cfg.BufferSize {
		s.bufX = append(s.bufX, xc)
		s.bufY = append(s.bufY, yc)
	} else {
		s.bufX[s.next] = xc
		s.bufY[s.next] = yc
		s.next = (s.next + 1) % s.cfg.BufferSize
	}
	s.seen++
	for step := 0; step < s.cfg.TrainSteps; step++ {
		s.trainStepLocked()
	}
}

// trainStepLocked runs one minibatch step of min ‖f_θ(x) − h(x)‖².
func (s *onlineSurrogate) trainStepLocked() {
	n := len(s.bufX)
	if n == 0 {
		return
	}
	b := s.cfg.BatchSize
	if b > n {
		b = n
	}
	xs := make([]float64, 0, b*s.inDim)
	ys := make([]float64, 0, b*s.outDim)
	for i := 0; i < b; i++ {
		idx := s.r.Intn(n)
		for _, v := range s.bufX[idx] {
			xs = append(xs, v/s.cfg.InputScale)
		}
		ys = append(ys, s.bufY[idx]...)
	}
	c := nn.GetCtx(true)
	defer nn.PutCtx(c)
	pred := s.net.Forward(c, c.T.ConstMat(xs, b, s.inDim))
	loss := nn.MSE(pred, c.T.ConstMat(ys, b, s.outDim))
	nn.ZeroGrads(s.net.Params())
	ad.Backward(loss)
	c.Harvest()
	s.opt.Step(s.net.Params())
}

// VJP implements Differentiable using the surrogate network's gradient —
// the approximation the chain rule consumes in place of the non-existent
// true gradient.
func (s *onlineSurrogate) VJP(x, ybar []float64) []float64 {
	s.mu.Lock()
	warm := s.seen >= s.cfg.Warmup
	s.mu.Unlock()
	if !warm {
		return make([]float64, len(x))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)
	scaled := make([]float64, len(x))
	for i, v := range x {
		scaled[i] = v / s.cfg.InputScale
	}
	in := c.T.VarMat(scaled, 1, s.inDim)
	out := s.net.Forward(c, in)
	ad.BackwardVJP(out, ybar)
	g := in.Grad()
	grad := make([]float64, len(x))
	for i := range grad {
		grad[i] = g[i] / s.cfg.InputScale
	}
	return grad
}

// Observations reports how many samples the surrogate has seen (tests).
func (s *onlineSurrogate) Observations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// predict returns the surrogate network's own prediction (diagnostics: how
// closely f_θ tracks the true component).
func (s *onlineSurrogate) predict(x []float64) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)
	scaled := make([]float64, len(x))
	for i, v := range x {
		scaled[i] = v / s.cfg.InputScale
	}
	out := s.net.Forward(c, c.T.ConstMat(scaled, 1, s.inDim))
	res := make([]float64, out.Len())
	copy(res, out.Data())
	return res
}
