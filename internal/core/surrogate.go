package core

import (
	"io"
	"math"
	"sync"

	"repro/internal/ad"
	"repro/internal/linalg"
	"repro/internal/nn"
	"repro/internal/rng"
)

// SurrogateConfig controls the online DNN surrogate of §6 ("Mechanisms
// that approximate non-differentiable components"): a small network f_θ is
// trained DURING the search to match the opaque component h, by minimizing
// L_diff = ‖f_θ(x) − h(x)‖² over the points the search actually visits.
// Forward always returns the TRUE component output; only the gradient comes
// from the surrogate.
type SurrogateConfig struct {
	// Hidden widths of the surrogate MLP.
	Hidden []int
	// BufferSize bounds the replay buffer of observed (x, h(x)) pairs.
	BufferSize int
	// TrainSteps is how many SGD steps run after every observation.
	TrainSteps int
	// BatchSize per training step.
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// InputScale normalizes surrogate inputs (0 = 1).
	InputScale float64
	// InputScales, when non-nil, normalizes each input coordinate by its own
	// scale (length must equal the wrapped component's input dimension) and
	// takes precedence over InputScale. Stage inputs that mix magnitudes —
	// e.g. [splits in [0,1] | demands in [0, capacity]] — need this so no
	// block of coordinates is squashed to numerical noise.
	InputScales []float64
	// Seed drives initialization and batch sampling.
	Seed uint64
	// Warmup is the number of observations before the surrogate's gradient
	// is trusted; before that VJP returns zeros (the search direction then
	// comes from the other stages).
	Warmup int
}

// DefaultSurrogateConfig returns a workable configuration.
func DefaultSurrogateConfig(seed uint64) SurrogateConfig {
	return SurrogateConfig{
		Hidden:     []int{64},
		BufferSize: 512,
		TrainSteps: 2,
		BatchSize:  16,
		LR:         1e-3,
		InputScale: 1,
		Seed:       seed,
		Warmup:     32,
	}
}

// onlineSurrogate wraps an opaque component with a DNN whose training is
// folded into the search, per §6.
type onlineSurrogate struct {
	inner         Component
	cfg           SurrogateConfig
	inDim, outDim int
	scale         []float64 // per-coordinate input scale, length inDim

	mu       sync.Mutex
	net      *nn.Sequential
	opt      *nn.Adam
	r        *rng.RNG
	bufX     [][]float64
	bufY     [][]float64
	next     int
	seen     int
	mb       *nn.Minibatch
	scratch  []float64 // pooled prediction/scaling buffer, length max(inDim, outDim)
	lastLoss float64
}

// newOnlineSurrogate builds the shared learner behind WithOnlineSurrogate
// and SurrogateEstimator.
func newOnlineSurrogate(c Component, inDim, outDim int, cfg SurrogateConfig) *onlineSurrogate {
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{64}
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 512
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.InputScale == 0 {
		cfg.InputScale = 1
	}
	scale := make([]float64, inDim)
	if cfg.InputScales != nil {
		if len(cfg.InputScales) != inDim {
			panic("core: SurrogateConfig.InputScales length must equal the input dimension")
		}
		copy(scale, cfg.InputScales)
		for i, v := range scale {
			if v == 0 {
				scale[i] = 1
			}
		}
	} else {
		for i := range scale {
			scale[i] = cfg.InputScale
		}
	}
	sc := inDim
	if outDim > sc {
		sc = outDim
	}
	sizes := append(append([]int{inDim}, cfg.Hidden...), outDim)
	return &onlineSurrogate{
		inner:   c,
		cfg:     cfg,
		inDim:   inDim,
		outDim:  outDim,
		scale:   scale,
		net:     nn.MLP("surrogate", sizes, nn.ActTanh, rng.New(cfg.Seed)),
		opt:     nn.NewAdam(cfg.LR),
		r:       rng.New(cfg.Seed + 1),
		mb:      nn.NewMinibatch(inDim, outDim, cfg.BatchSize),
		scratch: make([]float64, sc),
	}
}

// WithOnlineSurrogate wraps an opaque component of the given input/output
// dimensions. The wrapper is safe for concurrent use; observations from all
// goroutines feed one shared surrogate.
func WithOnlineSurrogate(c Component, inDim, outDim int, cfg SurrogateConfig) Differentiable {
	return newOnlineSurrogate(c, inDim, outDim, cfg)
}

// Name implements Component.
func (s *onlineSurrogate) Name() string { return s.inner.Name() + "+dnn-surrogate" }

// Forward evaluates the TRUE component, records the observation, and takes
// a few surrogate training steps (the integration of L_diff into the
// search loop).
func (s *onlineSurrogate) Forward(x []float64) []float64 {
	y := s.inner.Forward(x)
	s.observe(x, y)
	return y
}

func (s *onlineSurrogate) observe(x, y []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observeLocked(x, y)
}

// observeErr records (x, y) like observe, but first scores the surrogate's
// PRE-training prediction against the true output: the relative L∞ error
// drives the estimator's trust/verify loop. warm reports whether the
// surrogate had passed Warmup before this observation.
func (s *onlineSurrogate) observeErr(x, y []float64) (relErr float64, warm bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	warm = s.seen >= s.cfg.Warmup
	if warm {
		pred := s.predictLocked(x)
		num, den := 0.0, 0.0
		for i := range y {
			if d := math.Abs(pred[i] - y[i]); d > num {
				num = d
			}
			if a := math.Abs(y[i]); a > den {
				den = a
			}
		}
		relErr = num / (den + 1e-12)
	}
	s.observeLocked(x, y)
	return relErr, warm
}

func (s *onlineSurrogate) observeLocked(x, y []float64) {
	if len(s.bufX) < s.cfg.BufferSize {
		s.bufX = append(s.bufX, append([]float64{}, x...))
		s.bufY = append(s.bufY, append([]float64{}, y...))
	} else {
		// Reuse the evicted row's storage: the ring is at capacity, so the
		// steady state copies in place instead of allocating.
		copy(s.bufX[s.next], x)
		copy(s.bufY[s.next], y)
		s.next = (s.next + 1) % s.cfg.BufferSize
	}
	s.seen++
	for step := 0; step < s.cfg.TrainSteps; step++ {
		s.trainStepLocked()
	}
}

// trainStepLocked runs one minibatch step of min ‖f_θ(x) − h(x)‖² through
// the reusable workspace.
func (s *onlineSurrogate) trainStepLocked() {
	n := len(s.bufX)
	if n == 0 {
		return
	}
	b := s.cfg.BatchSize
	if b > n {
		b = n
	}
	s.mb.Reset()
	for i := 0; i < b; i++ {
		idx := s.r.Intn(n)
		s.mb.AddScaled(s.bufX[idx], s.bufY[idx], s.scale)
	}
	s.lastLoss = nn.MSEStep(s.net, s.opt, s.mb)
}

// scaleInto writes x normalized by the per-coordinate scale into dst.
func (s *onlineSurrogate) scaleInto(dst, x []float64) {
	for i, v := range x {
		dst[i] = v / s.scale[i]
	}
}

// VJP implements Differentiable using the surrogate network's gradient —
// the approximation the chain rule consumes in place of the non-existent
// true gradient.
func (s *onlineSurrogate) VJP(x, ybar []float64) []float64 {
	grad := make([]float64, len(x))
	s.vjpInto(x, ybar, grad)
	return grad
}

// vjpInto writes the surrogate VJP into grad. Before Warmup the gradient is
// zero (the search direction then comes from the other stages).
func (s *onlineSurrogate) vjpInto(x, ybar, grad []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen < s.cfg.Warmup {
		for i := range grad {
			grad[i] = 0
		}
		return
	}
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)
	s.scaleInto(s.scratch[:s.inDim], x)
	in := c.T.VarMat(s.scratch[:s.inDim], 1, s.inDim)
	out := s.net.Forward(c, in)
	ad.BackwardVJP(out, ybar)
	g := in.Grad()
	for i := range grad {
		grad[i] = g[i] / s.scale[i]
	}
}

// batchVJPInto computes surrogate VJPs for all rows of xs on ONE tape pass:
// the rows become a [R, inDim] batch through the network and BackwardVJP
// distributes the per-row cotangents, so R gradients cost one forward +
// one backward instead of R.
func (s *onlineSurrogate) batchVJPInto(xs, ybars, grads *linalg.Matrix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	R := xs.Rows
	if s.seen < s.cfg.Warmup {
		for i := range grads.Data {
			grads.Data[i] = 0
		}
		return
	}
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)
	scaled := linalg.GetVec(R * s.inDim)
	defer linalg.PutVec(scaled)
	for r := 0; r < R; r++ {
		s.scaleInto(scaled[r*s.inDim:(r+1)*s.inDim], xs.Row(r))
	}
	in := c.T.VarMat(scaled, R, s.inDim)
	out := s.net.Forward(c, in)
	ad.BackwardVJP(out, ybars.Data)
	g := in.Grad()
	for r := 0; r < R; r++ {
		grow := grads.Row(r)
		base := r * s.inDim
		for i := range grow {
			grow[i] = g[base+i] / s.scale[i]
		}
	}
}

// Observations reports how many samples the surrogate has seen (tests).
func (s *onlineSurrogate) Observations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// trainLoss returns the most recent minibatch loss.
func (s *onlineSurrogate) trainLoss() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastLoss
}

// predict returns the surrogate network's own prediction (diagnostics: how
// closely f_θ tracks the true component).
func (s *onlineSurrogate) predict(x []float64) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64{}, s.predictLocked(x)...)
}

// predictLocked evaluates f_θ(x) into the shared scratch buffer; the result
// is valid until the next locked operation.
func (s *onlineSurrogate) predictLocked(x []float64) []float64 {
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)
	s.scaleInto(s.scratch[:s.inDim], x)
	out := s.net.Forward(c, c.T.ConstMat(s.scratch[:s.inDim], 1, s.inDim))
	res := s.scratch[:s.outDim]
	copy(res, out.Data())
	return res
}

// saveTo writes the surrogate network's parameters (gob, see nn.SaveParams).
func (s *onlineSurrogate) saveTo(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return nn.SaveParams(w, s.net)
}

// loadFrom restores parameters previously written by saveTo.
func (s *onlineSurrogate) loadFrom(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return nn.LoadParams(r, s.net)
}
