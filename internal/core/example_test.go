package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExamplePipeline shows the component/chain-rule abstraction on an analytic
// two-stage system: y = sum(x²), whose gradient is 2x.
func ExamplePipeline() {
	square := &core.DiffFunc{
		ComponentName: "square",
		Fn: func(x []float64) []float64 {
			y := make([]float64, len(x))
			for i, v := range x {
				y[i] = v * v
			}
			return y
		},
		VJPFn: func(x, ybar []float64) []float64 {
			g := make([]float64, len(x))
			for i := range x {
				g[i] = 2 * x[i] * ybar[i]
			}
			return g
		},
	}
	sum := &core.DiffFunc{
		ComponentName: "sum",
		Fn: func(x []float64) []float64 {
			s := 0.0
			for _, v := range x {
				s += v
			}
			return []float64{s}
		},
		VJPFn: func(x, ybar []float64) []float64 {
			g := make([]float64, len(x))
			for i := range g {
				g[i] = ybar[0]
			}
			return g
		},
	}
	p := core.NewPipeline(square, sum)
	fmt.Println("H(x) =", p.EvalScalar([]float64{1, 2, 3}))
	fmt.Println("grad =", p.Grad([]float64{1, 2, 3}))
	// Output:
	// H(x) = 14
	// grad = [2 4 6]
}

// ExampleWithFiniteDiff shows the gray-box treatment of an opaque stage:
// only its Forward is available; the finite-difference wrapper supplies the
// VJP the chain rule needs.
func ExampleWithFiniteDiff() {
	opaque := &core.Func{
		ComponentName: "blackbox",
		Fn: func(x []float64) []float64 {
			return []float64{3 * x[0]}
		},
	}
	d := core.WithFiniteDiff(opaque, 1e-6)
	g := d.VJP([]float64{5}, []float64{1})
	fmt.Printf("estimated gradient = %.3f\n", g[0])
	// Output: estimated gradient = 3.000
}
