package core

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/obs"
)

// resultJSON is the stable on-disk schema for a SearchResult.
type resultJSON struct {
	Method       string    `json:"method"`
	Found        bool      `json:"found"`
	BestRatio    float64   `json:"best_ratio"`
	BestSysMLU   float64   `json:"best_sys_mlu"`
	BestOptMLU   float64   `json:"best_opt_mlu"`
	BestX        []float64 `json:"best_input,omitempty"`
	Evals        int       `json:"evals"`
	GradEvals    int       `json:"grad_evals"`
	LPEvals      int       `json:"lp_evals"`
	ElapsedMS    int64     `json:"elapsed_ms"`
	TimeToBestMS int64     `json:"time_to_best_ms"`
	Trace        []struct {
		Iter      int     `json:"iter"`
		Ratio     float64 `json:"ratio"`
		ElapsedMS int64   `json:"elapsed_ms"`
	} `json:"trace,omitempty"`
	// StopReason and FaultCount round-trip the failure-semantics fields;
	// omitempty keeps files from older runs (and non-gradient baselines)
	// byte-identical.
	StopReason string `json:"stop_reason,omitempty"`
	FaultCount int    `json:"fault_count,omitempty"`
	// Telemetry carries the metrics snapshot of an instrumented search;
	// omitempty keeps uninstrumented results (and files written before the
	// field existed) unchanged.
	Telemetry *obs.Snapshot `json:"telemetry,omitempty"`
}

// WriteJSON serializes the result (including the adversarial input, so it
// can be replayed) to w.
func (r *SearchResult) WriteJSON(w io.Writer) error {
	out := resultJSON{
		Method:       r.Method,
		Found:        r.Found,
		BestRatio:    r.BestRatio,
		BestSysMLU:   r.BestSysMLU,
		BestOptMLU:   r.BestOptMLU,
		BestX:        r.BestX,
		Evals:        r.Evals,
		GradEvals:    r.GradEvals,
		LPEvals:      r.LPEvals,
		ElapsedMS:    r.Elapsed.Milliseconds(),
		TimeToBestMS: r.TimeToBest.Milliseconds(),
		FaultCount:   r.FaultCount,
		Telemetry:    r.Telemetry,
	}
	if r.StopReason != StopNone {
		out.StopReason = r.StopReason.String()
	}
	for _, tp := range r.Trace {
		out.Trace = append(out.Trace, struct {
			Iter      int     `json:"iter"`
			Ratio     float64 `json:"ratio"`
			ElapsedMS int64   `json:"elapsed_ms"`
		}{tp.Iter, tp.Ratio, tp.Elapsed.Milliseconds()})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadResultJSON parses a result previously written by WriteJSON.
func ReadResultJSON(r io.Reader) (*SearchResult, error) {
	var in resultJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	res := &SearchResult{
		Method:     in.Method,
		Found:      in.Found,
		BestRatio:  in.BestRatio,
		BestSysMLU: in.BestSysMLU,
		BestOptMLU: in.BestOptMLU,
		BestX:      in.BestX,
		Evals:      in.Evals,
		GradEvals:  in.GradEvals,
		LPEvals:    in.LPEvals,
		Elapsed:    time.Duration(in.ElapsedMS) * time.Millisecond,
		TimeToBest: time.Duration(in.TimeToBestMS) * time.Millisecond,
		StopReason: stopReasonFromString(in.StopReason),
		FaultCount: in.FaultCount,
		Telemetry:  in.Telemetry,
	}
	for _, tp := range in.Trace {
		res.Trace = append(res.Trace, TracePoint{
			Iter:    tp.Iter,
			Ratio:   tp.Ratio,
			Elapsed: time.Duration(tp.ElapsedMS) * time.Millisecond,
		})
	}
	return res, nil
}
