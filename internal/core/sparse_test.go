package core

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

// synthSparse is a reference SparseProbeEvaluator: a small nonlinear map
// whose prober answers probes by re-running the exact Forward arithmetic on
// a perturbed copy of the base point. It is trivially exact, so it isolates
// the estimator's sparse dispatch from any incremental-update cleverness.
type synthSparse struct {
	w        []float64
	forwards atomic.Int64
	probes   atomic.Int64
}

func (c *synthSparse) Name() string { return "synth" }

func (c *synthSparse) eval(x []float64) []float64 {
	out := make([]float64, 2)
	for i, v := range x {
		out[0] += c.w[i] * v * v
	}
	best := x[0]
	for _, v := range x[1:] {
		if v > best {
			best = v
		}
	}
	out[1] = math.Tanh(best)
	return out
}

func (c *synthSparse) Forward(x []float64) []float64 {
	c.forwards.Add(1)
	return c.eval(x)
}

func (c *synthSparse) SparseProber(x []float64) SparseProber {
	xp := make([]float64, len(x))
	copy(xp, x)
	return &synthProber{c: c, base: x, xp: xp}
}

type synthProber struct {
	c    *synthSparse
	base []float64
	xp   []float64
}

func (p *synthProber) Probe(index int, delta float64) []float64 {
	p.c.probes.Add(1)
	p.xp[index] = p.base[index] + delta
	out := p.c.eval(p.xp)
	p.xp[index] = p.base[index]
	return out
}

func (p *synthProber) Close() {}

func synthPair(n int, seed uint64) (*synthSparse, *synthSparse, []float64, []float64) {
	r := rng.New(seed)
	w := make([]float64, n)
	x := make([]float64, n)
	for i := range w {
		w[i] = r.Float64() - 0.5
		x[i] = 2*r.Float64() - 1
	}
	ybar := []float64{1.25, -0.75}
	a := &synthSparse{w: w}
	b := &synthSparse{w: w}
	return a, b, x, ybar
}

// TestFDSparseMatchesDenseVJP checks the acceptance contract of the fast
// path: the sparse estimator's gradient is bitwise identical to the dense
// full-vector estimator's, and the probes actually went through the sparse
// channel (zero inner forwards).
func TestFDSparseMatchesDenseVJP(t *testing.T) {
	const n = 23
	sparse, dense, x, ybar := synthPair(n, 7)
	fdSparse := WithFiniteDiff(sparse, 1e-4)
	fdDense := WithFiniteDiff(DenseProbes(dense), 1e-4)

	gs := fdSparse.VJP(x, ybar)
	gd := fdDense.VJP(x, ybar)
	for j := range gs {
		if gs[j] != gd[j] {
			t.Fatalf("grad[%d]: sparse %v != dense %v", j, gs[j], gd[j])
		}
	}
	if got := sparse.forwards.Load(); got != 0 {
		t.Fatalf("sparse VJP ran %d full forwards, want 0", got)
	}
	if got := sparse.probes.Load(); got != 2*n {
		t.Fatalf("sparse VJP issued %d probes, want %d", got, 2*n)
	}
	if got := dense.probes.Load(); got != 0 {
		t.Fatalf("DenseProbes wrapper leaked %d sparse probes", got)
	}
	if got := dense.forwards.Load(); got != 2*n {
		t.Fatalf("dense VJP ran %d forwards, want %d", got, 2*n)
	}
}

// TestFDSparseMatchesDenseVJPCtx covers the context-aware scalar path, both
// live and pre-cancelled.
func TestFDSparseMatchesDenseVJPCtx(t *testing.T) {
	sparse, dense, x, ybar := synthPair(17, 11)
	fdSparse := WithFiniteDiff(sparse, 1e-4).(*fdComponent)
	fdDense := WithFiniteDiff(DenseProbes(dense), 1e-4).(*fdComponent)

	ctx, cancel := context.WithCancel(context.Background())
	gs, err := fdSparse.VJPCtx(ctx, x, ybar)
	if err != nil {
		t.Fatalf("sparse VJPCtx: %v", err)
	}
	gd, err := fdDense.VJPCtx(ctx, x, ybar)
	if err != nil {
		t.Fatalf("dense VJPCtx: %v", err)
	}
	for j := range gs {
		if gs[j] != gd[j] {
			t.Fatalf("grad[%d]: sparse %v != dense %v", j, gs[j], gd[j])
		}
	}

	cancel()
	if _, err := fdSparse.VJPCtx(ctx, x, ybar); err != context.Canceled {
		t.Fatalf("cancelled sparse VJPCtx: err = %v, want context.Canceled", err)
	}
}

// TestFDSparseMatchesDenseBatchVJP covers the batched-row estimators.
func TestFDSparseMatchesDenseBatchVJP(t *testing.T) {
	const n, rows = 19, 5
	sparse, dense, _, _ := synthPair(n, 13)
	fdSparse := WithFiniteDiff(sparse, 1e-4).(*fdComponent)
	fdDense := WithFiniteDiff(DenseProbes(dense), 1e-4).(*fdComponent)

	r := rng.New(99)
	xs := linalg.NewMatrix(rows, n)
	ybars := linalg.NewMatrix(rows, 2)
	for i := range xs.Data {
		xs.Data[i] = 2*r.Float64() - 1
	}
	for i := range ybars.Data {
		ybars.Data[i] = r.Float64() - 0.5
	}

	gs := fdSparse.BatchVJP(xs, ybars)
	gd := fdDense.BatchVJP(xs, ybars)
	for i := range gs.Data {
		if gs.Data[i] != gd.Data[i] {
			t.Fatalf("batch grad[%d]: sparse %v != dense %v", i, gs.Data[i], gd.Data[i])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	gsc, err := fdSparse.BatchVJPCtx(ctx, xs, ybars)
	if err != nil {
		t.Fatalf("sparse BatchVJPCtx: %v", err)
	}
	for i := range gsc.Data {
		if gsc.Data[i] != gd.Data[i] {
			t.Fatalf("batch ctx grad[%d]: sparse %v != dense %v", i, gsc.Data[i], gd.Data[i])
		}
	}
	cancel()
	if _, err := fdSparse.BatchVJPCtx(ctx, xs, ybars); err != context.Canceled {
		t.Fatalf("cancelled sparse BatchVJPCtx: err = %v, want context.Canceled", err)
	}
}

// TestDenseProbesHidesCapability pins the opt-out semantics: the wrapper
// forwards Name/Forward but does not satisfy SparseProbeEvaluator.
func TestDenseProbesHidesCapability(t *testing.T) {
	c := &synthSparse{w: []float64{1, 2}}
	if _, ok := any(c).(SparseProbeEvaluator); !ok {
		t.Fatal("synthSparse should advertise SparseProbeEvaluator")
	}
	d := DenseProbes(c)
	if _, ok := d.(SparseProbeEvaluator); ok {
		t.Fatal("DenseProbes wrapper must not advertise SparseProbeEvaluator")
	}
	if d.Name() != c.Name() {
		t.Fatalf("Name not forwarded: %q != %q", d.Name(), c.Name())
	}
	x := []float64{0.5, -0.25}
	got, want := d.Forward(x), c.eval(x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Forward not forwarded: %v != %v", got, want)
		}
	}
}
