package core_test

// Integration tests: the gray-box gradient search attacking a real (small)
// DOTE pipeline, cross-checked against the black-box baselines. These tests
// exercise the full §4 construction end to end.

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/te"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// trainedTriangleModel returns a briefly trained DOTE-Curr model on the
// triangle topology — small enough for fast search tests.
func trainedTriangleModel(t *testing.T) *dote.Model {
	t.Helper()
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{16}
	m := dote.New(ps, cfg)
	gen := traffic.NewGravity(ps, 0.3, rng.New(3))
	examples := traffic.CurrWindows(traffic.Sequence(gen, 40))
	opts := dote.DefaultTrainOptions()
	opts.Epochs = 10
	opts.LR = 3e-3
	if _, err := dote.Train(m, examples, opts); err != nil {
		t.Fatal(err)
	}
	return m
}

func target(m *dote.Model) *core.AttackTarget {
	demandStart := 0
	if m.Cfg.Variant == dote.Hist {
		demandStart = m.HistoryDim()
	}
	return &core.AttackTarget{
		Pipeline:    m.Pipeline(),
		InputDim:    m.InputDim(),
		DemandStart: demandStart,
		DemandLen:   m.NumPairs(),
		PS:          m.PS,
		MaxDemand:   m.PS.Graph.AvgLinkCapacity(),
	}
}

func TestAttackTargetValidate(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	if err := tg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *tg
	bad.DemandLen = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted wrong demand length")
	}
	bad = *tg
	bad.MaxDemand = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero MaxDemand")
	}
	bad = *tg
	bad.DemandStart = tg.InputDim
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted out-of-range demand slice")
	}
}

func TestRatioMatchesDirectComputation(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	r := rng.New(4)
	x := make([]float64, tg.InputDim)
	for i := range x {
		x[i] = r.Float64() * tg.MaxDemand
	}
	ratio, sys, opt, err := tg.Ratio(x)
	if err != nil {
		t.Fatal(err)
	}
	wantRatio, wantSys, wantOpt, err := m.PerformanceRatio(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-wantRatio) > 1e-9 || math.Abs(sys-wantSys) > 1e-9 || math.Abs(opt-wantOpt) > 1e-9 {
		t.Fatalf("Ratio() = (%v,%v,%v), model says (%v,%v,%v)", ratio, sys, opt, wantRatio, wantSys, wantOpt)
	}
}

func TestRatioZeroDemand(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	x := make([]float64, tg.InputDim)
	ratio, _, _, err := tg.Ratio(x)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 {
		t.Fatalf("zero-demand ratio = %v, want 1", ratio)
	}
}

func TestGradientSearchFindsGap(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 150
	cfg.Restarts = 2
	cfg.EvalEvery = 15
	res, err := core.GradientSearch(tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("gradient search found nothing")
	}
	if res.BestRatio < 1.05 {
		t.Fatalf("gradient search ratio %v; expected a real gap on a small model", res.BestRatio)
	}
	// The reported input must reproduce the reported ratio.
	ratio, _, _, err := tg.Ratio(res.BestX)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-res.BestRatio) > 1e-9 {
		t.Fatalf("BestX reproduces ratio %v, reported %v", ratio, res.BestRatio)
	}
	if res.GradEvals == 0 || res.LPEvals == 0 {
		t.Fatal("counters not maintained")
	}
	if res.TimeToBest > res.Elapsed {
		t.Fatal("TimeToBest exceeds Elapsed")
	}
	// Trace must be monotonically improving.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Ratio < res.Trace[i-1].Ratio {
			t.Fatal("trace not monotone")
		}
	}
}

func TestGradientSearchDirectAscentMode(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 80
	cfg.Restarts = 1
	cfg.Mode = core.DirectAscent
	res, err := core.GradientSearch(tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("direct ascent found nothing at all")
	}
	if res.Method != "gradient-based (direct-ascent)" {
		t.Fatalf("method label %q", res.Method)
	}
}

func TestGradientSearchConfigValidation(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 0
	if _, err := core.GradientSearch(tg, cfg); err == nil {
		t.Fatal("accepted zero iterations")
	}
	cfg = core.DefaultGradientConfig()
	cfg.Restarts = 0
	if _, err := core.GradientSearch(tg, cfg); err == nil {
		t.Fatal("accepted zero restarts")
	}
}

func TestGradientBeatsRandomAtEqualBudget(t *testing.T) {
	// The paper's headline comparison, scaled down: with comparable search
	// budgets the gradient-guided method discovers at least as large a gap
	// as random sampling (usually far larger).
	m := trainedTriangleModel(t)
	tg := target(m)

	gcfg := core.DefaultGradientConfig()
	gcfg.Iters = 200
	gcfg.Restarts = 2
	gcfg.EvalEvery = 20
	grad, err := core.GradientSearch(tg, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := search.Random(tg, search.Budget{MaxEvals: 60}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if grad.BestRatio < rnd.BestRatio*0.95 {
		t.Fatalf("gradient %v worse than random %v", grad.BestRatio, rnd.BestRatio)
	}
}

func TestRandomSearchBasics(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	res, err := search.Random(tg, search.Budget{MaxEvals: 30}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 30 {
		t.Fatalf("random search spent %d evals, want 30", res.Evals)
	}
	if !res.Found || res.BestRatio < 1 {
		t.Fatalf("random search result broken: %+v", res)
	}
	// Deterministic under the same seed.
	res2, err := search.Random(tg, search.Budget{MaxEvals: 30}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res2.BestRatio != res.BestRatio {
		t.Fatal("random search not deterministic")
	}
}

func TestHillClimbAndAnneal(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	hc, err := search.HillClimb(tg, search.Budget{MaxEvals: 60}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !hc.Found || hc.BestRatio < 1 {
		t.Fatalf("hill climb broken: %+v", hc)
	}
	sa, err := search.Anneal(tg, search.Budget{MaxEvals: 60}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !sa.Found || sa.BestRatio < 1 {
		t.Fatalf("anneal broken: %+v", sa)
	}
}

func TestBudgetValidation(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	if _, err := search.Random(tg, search.Budget{}, 1); err == nil {
		t.Fatal("empty budget accepted")
	}
	if _, err := search.HillClimb(tg, search.Budget{}, 1); err == nil {
		t.Fatal("empty budget accepted")
	}
	if _, err := search.Anneal(tg, search.Budget{}, 1); err == nil {
		t.Fatal("empty budget accepted")
	}
}

func TestTimeBudget(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	start := time.Now()
	res, err := search.Random(tg, search.Budget{MaxTime: 150 * time.Millisecond}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("time budget ignored")
	}
	if res.Evals == 0 {
		t.Fatal("no evaluations under time budget")
	}
}

func TestSearchResultString(t *testing.T) {
	r := &core.SearchResult{Method: "x", Found: false}
	if r.String() == "" {
		t.Fatal("empty string for not-found result")
	}
	r.Found = true
	r.BestRatio = 2.5
	if r.String() == "" {
		t.Fatal("empty string for found result")
	}
}

// TestLagrangianDrivesConstraint verifies the multiplier dynamics: after a
// search, the best demand should be routable at an optimal MLU within a
// modest factor of 1 (the feasible space of Eq. 3 after normalization).
func TestLagrangianDrivesConstraint(t *testing.T) {
	m := trainedTriangleModel(t)
	tg := target(m)
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 200
	cfg.Restarts = 2
	res, err := core.GradientSearch(tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := tg.Demand(res.BestX)
	opt, _, err := te.OptimalMLU(tg.PS, d)
	if err != nil {
		t.Fatal(err)
	}
	if opt <= 0 {
		t.Fatal("degenerate best demand")
	}
	// The ratio is scale-invariant on the optimal side, so we only check
	// the search kept demands in a sane band rather than collapsing to 0
	// or saturating everything at the box bound.
	if opt > 10 {
		t.Fatalf("optimal MLU of adversarial demand = %v; constraint term had no effect", opt)
	}
}
