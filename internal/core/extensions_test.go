package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// trainedModel returns a briefly trained model of the given variant.
func trainedModel(t *testing.T, v dote.Variant, histLen int) *dote.Model {
	t.Helper()
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := dote.DefaultConfig(v)
	cfg.Hidden = []int{16}
	if v == dote.Hist {
		cfg.HistLen = histLen
	}
	m := dote.New(ps, cfg)
	gen := traffic.NewGravity(ps, 0.3, rng.New(31))
	var ex []traffic.Example
	if v == dote.Curr {
		ex = traffic.CurrWindows(traffic.Sequence(gen, 40))
	} else {
		ex = traffic.Windows(traffic.Sequence(gen, 40), cfg.HistLen)
	}
	opts := dote.DefaultTrainOptions()
	opts.Epochs = 8
	opts.LR = 3e-3
	if _, err := dote.Train(m, ex, opts); err != nil {
		t.Fatal(err)
	}
	return m
}

func targetFor(m *dote.Model) *core.AttackTarget {
	ds := 0
	if m.Cfg.Variant == dote.Hist {
		ds = m.HistoryDim()
	}
	return &core.AttackTarget{
		Pipeline:    m.Pipeline(),
		InputDim:    m.InputDim(),
		DemandStart: ds,
		DemandLen:   m.NumPairs(),
		PS:          m.PS,
		MaxDemand:   m.PS.Graph.AvgLinkCapacity(),
	}
}

func TestRelativeGradientSearch(t *testing.T) {
	// Compare two differently initialized DOTE-Curr models: the search
	// should find inputs where A is measurably worse than B.
	a := trainedModel(t, dote.Curr, 1)
	ps := a.PS
	cfgB := dote.DefaultConfig(dote.Curr)
	cfgB.Hidden = []int{16}
	cfgB.Seed = 99
	b := dote.New(ps, cfgB)
	gen := traffic.NewGravity(ps, 0.3, rng.New(32))
	opts := dote.DefaultTrainOptions()
	opts.Epochs = 8
	opts.LR = 3e-3
	if _, err := dote.Train(b, traffic.CurrWindows(traffic.Sequence(gen, 40)), opts); err != nil {
		t.Fatal(err)
	}
	rt := core.NewRelativeTarget(a.Pipeline(), b.Pipeline(), targetFor(a))
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 120
	cfg.Restarts = 2
	res, err := core.RelativeGradientSearch(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("relative search found nothing")
	}
	// The reported input must reproduce the reported ratio.
	ratio, _, _ := rt.Ratio(res.BestX)
	if math.Abs(ratio-res.BestRatio) > 1e-9 {
		t.Fatalf("BestX reproduces %v, reported %v", ratio, res.BestRatio)
	}
	if res.BestRatio < 1 {
		t.Fatalf("relative ratio %v should exceed 1 for distinct models", res.BestRatio)
	}
}

func TestRelativeSearchValidation(t *testing.T) {
	m := trainedModel(t, dote.Curr, 1)
	rt := core.NewRelativeTarget(nil, m.Pipeline(), targetFor(m))
	if _, err := core.RelativeGradientSearch(rt, core.DefaultGradientConfig()); err == nil {
		t.Fatal("accepted nil system")
	}
	rt2 := core.NewRelativeTarget(m.Pipeline(), m.Pipeline(), targetFor(m))
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 0
	if _, err := core.RelativeGradientSearch(rt2, cfg); err == nil {
		t.Fatal("accepted zero iterations")
	}
}

func TestL1Constraint(t *testing.T) {
	c := &core.L1Constraint{Budget: 5}
	v, g := c.Violation([]float64{1, 2, 1})
	if v != 0 {
		t.Fatalf("within budget but violation %v", v)
	}
	for _, gi := range g {
		if gi != 0 {
			t.Fatal("gradient should vanish when satisfied")
		}
	}
	v, g = c.Violation([]float64{4, 4, 0})
	if math.Abs(v-3) > 1e-12 {
		t.Fatalf("violation = %v, want 3", v)
	}
	if g[0] != 1 || g[2] != 1 {
		t.Fatalf("gradient = %v", g)
	}
	if c.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestSparsityConstraint(t *testing.T) {
	c := &core.SparsityConstraint{MaxActive: 2}
	// Only entries beyond the 2 largest count as violation mass.
	v, g := c.Violation([]float64{10, 8, 3, 1})
	if math.Abs(v-4) > 1e-12 {
		t.Fatalf("violation = %v, want 4 (3+1)", v)
	}
	if g[0] != 0 || g[1] != 0 || g[2] != 1 || g[3] != 1 {
		t.Fatalf("gradient = %v", g)
	}
	// MaxActive >= n: always satisfied.
	c2 := &core.SparsityConstraint{MaxActive: 10}
	if v, _ := c2.Violation([]float64{1, 2}); v != 0 {
		t.Fatal("over-wide sparsity should be satisfied")
	}
}

func TestReferenceBallConstraint(t *testing.T) {
	c := &core.ReferenceBallConstraint{Reference: []float64{0, 0}, Radius: 5}
	if v, _ := c.Violation([]float64{3, 4}); v != 0 {
		t.Fatalf("point on radius should satisfy, got %v", v)
	}
	v, g := c.Violation([]float64{6, 8})
	if math.Abs(v-5) > 1e-12 {
		t.Fatalf("violation = %v, want 5", v)
	}
	if math.Abs(g[0]-0.6) > 1e-12 || math.Abs(g[1]-0.8) > 1e-12 {
		t.Fatalf("gradient = %v, want unit direction", g)
	}
}

func TestConstrainedSearchRespectsBudget(t *testing.T) {
	m := trainedModel(t, dote.Curr, 1)
	tg := targetFor(m)
	budget := tg.MaxDemand * 1.5 // well below what unconstrained search uses
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 150
	cfg.Restarts = 2
	cfg.Constraints = []core.InputConstraint{&core.L1Constraint{Budget: budget}}
	res, err := core.GradientSearch(tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Skip("constrained search found nothing at this scale")
	}
	total := 0.0
	for _, v := range res.BestX {
		total += v
	}
	// The multiplier method enforces the budget softly; allow modest slack.
	if total > budget*1.5 {
		t.Fatalf("constrained search ignored the volume budget: %v >> %v", total, budget)
	}
}

func TestSweepConstraintTarget(t *testing.T) {
	m := trainedModel(t, dote.Curr, 1)
	tg := targetFor(m)
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 60
	cfg.Restarts = 1
	best, all, err := core.SweepConstraintTarget(tg, cfg, []float64{0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("sweep results = %d, want 3", len(all))
	}
	if best == nil {
		t.Fatal("no best result")
	}
	for _, sr := range all {
		if sr.Result.Found && best.Found && sr.Result.BestRatio > best.BestRatio {
			t.Fatal("best is not the max over the sweep")
		}
	}
	if _, _, err := core.SweepConstraintTarget(tg, cfg, nil); err == nil {
		t.Fatal("accepted empty sweep")
	}
}

func TestPartitionedSearch(t *testing.T) {
	m := trainedModel(t, dote.Curr, 1)
	tg := targetFor(m)
	res, reports, err := core.PartitionedSearch(tg, core.DefaultPartitionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("stage reports = %d, want 4 (mlu, routing, post-processor, dnn)", len(reports))
	}
	// Backward order: the first report is the LAST stage.
	if reports[0].Stage != "mlu" {
		t.Fatalf("first analyzed stage = %q, want mlu", reports[0].Stage)
	}
	if reports[len(reports)-1].Stage != "dnn" {
		t.Fatalf("last analyzed stage = %q, want dnn", reports[len(reports)-1].Stage)
	}
	// The final input must be inside the box and reproduce its ratio.
	for _, v := range res.BestX {
		if v < -1e-9 || v > tg.MaxDemand+1e-9 {
			t.Fatalf("partitioned input escaped the box: %v", v)
		}
	}
	ratio, _, _, err := tg.Ratio(res.BestX)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-res.BestRatio) > 1e-9 {
		t.Fatalf("ratio mismatch: %v vs %v", ratio, res.BestRatio)
	}
}

// TestNonTETarget exercises the "Beyond learning-enabled systems" path: a
// target with no routing substrate, scored entirely by a RatioOverride.
func TestNonTETarget(t *testing.T) {
	// System: f(x) = ((x0-3)^2 + 1) / (x1^2 + 1); "optimal" = 1, so the
	// ratio equals f. Max over the box [0,5]^2 is at x0=0... f(0, 0)=10?
	// ((0-3)^2+1)/(0+1) = 10; also x0=5 gives 5. Global max ratio = 10.
	pipe := core.NewPipeline(&core.DiffFunc{
		ComponentName: "analytic",
		Fn: func(x []float64) []float64 {
			return []float64{((x[0]-3)*(x[0]-3) + 1) / (x[1]*x[1] + 1)}
		},
		VJPFn: func(x, ybar []float64) []float64 {
			den := x[1]*x[1] + 1
			num := (x[0]-3)*(x[0]-3) + 1
			return []float64{
				ybar[0] * 2 * (x[0] - 3) / den,
				ybar[0] * num * (-2 * x[1]) / (den * den),
			}
		},
	})
	tg := &core.AttackTarget{
		Pipeline:    pipe,
		InputDim:    2,
		DemandStart: 0,
		DemandLen:   2,
		MaxDemand:   5,
	}
	if err := tg.Validate(); err == nil {
		t.Fatal("nil PS without RatioOverride must be rejected")
	}
	tg.RatioOverride = func(x []float64) (float64, float64, float64, error) {
		v := pipe.EvalScalar(x)
		return v, v, 1, nil
	}
	if err := tg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 300
	cfg.Restarts = 4
	cfg.EvalEvery = 20
	cfg.Patience = 0
	res, err := core.GradientSearch(tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("found nothing on an analytic objective")
	}
	// The global max is 10 at (0, 0); gradient ascent from random starts
	// must get close.
	if res.BestRatio < 8 {
		t.Fatalf("best ratio %v, want near 10", res.BestRatio)
	}
}

func TestFlowObjectiveSearch(t *testing.T) {
	// The §4 extension end to end: attack the total-flow objective with a
	// constraint-target sweep.
	m := trainedModel(t, dote.Curr, 1)
	tg := m.FlowAttackTarget()
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 80
	cfg.Restarts = 2
	best, all, err := core.SweepConstraintTarget(tg, cfg, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || best == nil {
		t.Fatal("flow sweep shape wrong")
	}
	if best.Found && best.BestRatio < 1 {
		t.Fatalf("flow ratio %v < 1 is impossible", best.BestRatio)
	}
}
