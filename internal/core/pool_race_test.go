package core

import (
	"math"
	"testing"

	"repro/internal/ad"
	"repro/internal/linalg"
)

// pooledStages builds a two-stage pipeline whose stages lean on every shared
// pool the hot path uses: pooled tapes (ad.GetTape/PutTape) and the pooled
// vector workspace (linalg.GetVec/PutVec). Run under -race, ParallelGrads
// over this pipeline verifies that concurrent borrows never hand two
// goroutines the same storage.
func pooledStages(n int) *Pipeline {
	square := &DiffFunc{
		ComponentName: "pooled-square",
		Fn: func(x []float64) []float64 {
			t := ad.GetTape()
			defer ad.PutTape(t)
			v := t.Var(x)
			y := ad.Square(v)
			out := make([]float64, len(x))
			copy(out, y.Data())
			return out
		},
		VJPFn: func(x, ybar []float64) []float64 {
			t := ad.GetTape()
			defer ad.PutTape(t)
			v := t.Var(x)
			y := ad.Square(v)
			ad.BackwardVJP(y, ybar)
			g := make([]float64, len(x))
			copy(g, v.Grad())
			return g
		},
	}
	sum := &DiffFunc{
		ComponentName: "pooled-scaled-sum",
		Fn: func(x []float64) []float64 {
			w := linalg.GetVec(len(x))
			defer linalg.PutVec(w)
			for i := range x {
				w[i] = 2 * x[i]
			}
			s := 0.0
			for _, v := range w {
				s += v
			}
			return []float64{s}
		},
		VJPFn: func(x, ybar []float64) []float64 {
			g := make([]float64, len(x))
			for i := range g {
				g[i] = 2 * ybar[0]
			}
			return g
		},
	}
	return NewPipeline(square, sum)
}

// TestParallelGradsPooledWorkspaces hammers the pooled tape and vector
// workspaces from many goroutines and checks every gradient against the
// closed form d/dx_i Σ 2 x_i² = 4 x_i. Its real teeth are under
// `go test -race`.
func TestParallelGradsPooledWorkspaces(t *testing.T) {
	const dim, batch, workers = 37, 64, 8
	p := pooledStages(dim)
	xs := make([][]float64, batch)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for j := range xs[i] {
			xs[i][j] = math.Sin(float64(i*dim+j)) + 0.1
		}
	}
	grads := ParallelGrads(p, xs, workers)
	for i, g := range grads {
		if len(g) != dim {
			t.Fatalf("grad %d has length %d, want %d", i, len(g), dim)
		}
		for j := range g {
			want := 4 * xs[i][j]
			if math.Abs(g[j]-want) > 1e-9 {
				t.Fatalf("grad[%d][%d] = %g, want %g", i, j, g[j], want)
			}
		}
	}
}
