package core

import (
	"context"
	"fmt"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// Batched evaluation: the batched restart engine runs R search points in
// lock-step, represented as a row-major [R, n] linalg.Matrix whose row r is
// point r. Stages that implement the Batch* interfaces process the whole
// batch in one sweep (turning the DNN's work into matrix–matrix kernels);
// stages that don't are driven row by row, so a mixed pipeline still works.
//
// Contract: batched stages must compute each row EXACTLY as the scalar
// Forward/VJP would — same values bit for bit, independent of the batch
// size — so a batched search reproduces the scalar trajectory. The blocked
// linalg kernels and the segment ops preserve this by construction.
//
// Ownership: the input matrix is owned by the caller and is read-only to the
// stage; the returned matrix is freshly allocated and owned by the caller.
// Rows of either may be retained only until the next call.

// BatchComponent is a Component that can evaluate a whole batch natively.
type BatchComponent interface {
	Component
	// BatchForward evaluates the stage on each row of xs, returning one
	// output row per input row.
	BatchForward(xs *linalg.Matrix) *linalg.Matrix
}

// BatchDifferentiable is a Differentiable stage with a native batched VJP:
// row r of the result is ybars.Row(r)ᵀ·J evaluated at xs.Row(r).
type BatchDifferentiable interface {
	Differentiable
	BatchComponent
	BatchVJP(xs, ybars *linalg.Matrix) *linalg.Matrix
}

// BatchCapable reports whether every stage batches natively — the condition
// under which the batched engine beats concurrent scalar restarts.
func (p *Pipeline) BatchCapable() bool {
	for _, s := range p.stages {
		if _, ok := s.(BatchDifferentiable); !ok {
			return false
		}
	}
	return true
}

// batchForwardStage evaluates one stage on a batch, natively when the stage
// supports it and row by row otherwise.
func batchForwardStage(s Component, xs *linalg.Matrix) *linalg.Matrix {
	if bc, ok := s.(BatchComponent); ok {
		return bc.BatchForward(xs)
	}
	var out *linalg.Matrix
	for r := 0; r < xs.Rows; r++ {
		y := s.Forward(xs.Row(r))
		if out == nil {
			out = linalg.NewMatrix(xs.Rows, len(y))
		}
		copy(out.Row(r), y)
	}
	return out
}

// BatchForward evaluates the whole system on every row of xs.
func (p *Pipeline) BatchForward(xs *linalg.Matrix) *linalg.Matrix {
	if xs.Rows == 0 {
		panic("core: BatchForward on empty batch")
	}
	cur := xs
	for i, s := range p.stages {
		if p.obs != nil {
			t := p.obs[i].fwd.StartTimer()
			cur = batchForwardStage(s, cur)
			t.Stop()
		} else {
			cur = batchForwardStage(s, cur)
		}
	}
	return cur
}

// BatchVJP computes the chain-rule VJP of every row in lock-step: it runs
// the batched forward sweep, then pulls the per-row cotangents back stage by
// stage. Row r of the result equals VJP(xs.Row(r), ybars.Row(r)) exactly.
func (p *Pipeline) BatchVJP(xs, ybars *linalg.Matrix) *linalg.Matrix {
	if xs.Rows == 0 {
		panic("core: BatchVJP on empty batch")
	}
	inputs := make([]*linalg.Matrix, len(p.stages))
	cur := xs
	for i, s := range p.stages {
		inputs[i] = cur
		if p.obs != nil {
			t := p.obs[i].fwd.StartTimer()
			cur = batchForwardStage(s, cur)
			t.Stop()
		} else {
			cur = batchForwardStage(s, cur)
		}
	}
	if ybars.Rows != cur.Rows || ybars.Cols != cur.Cols {
		panic(fmt.Sprintf("core: batch cotangent shape [%d,%d], output [%d,%d]",
			ybars.Rows, ybars.Cols, cur.Rows, cur.Cols))
	}
	cot := ybars
	for i := len(p.stages) - 1; i >= 0; i-- {
		var t obs.Timer
		if p.obs != nil {
			t = p.obs[i].vjp.StartTimer()
		}
		switch d := p.stages[i].(type) {
		case BatchDifferentiable:
			cot = d.BatchVJP(inputs[i], cot)
		case Differentiable:
			next := linalg.NewMatrix(xs.Rows, inputs[i].Cols)
			for r := 0; r < xs.Rows; r++ {
				copy(next.Row(r), d.VJP(inputs[i].Row(r), cot.Row(r)))
			}
			cot = next
		default:
			panic(fmt.Sprintf("core: stage %q is not differentiable; wrap it with WithFiniteDiff or WithSPSA", p.stages[i].Name()))
		}
		t.Stop()
	}
	return cot
}

// BatchCtxDifferentiable is an optional extension of BatchDifferentiable for
// stages whose batched VJP is expensive enough to observe cancellation
// mid-computation (the sampling estimators). Implementations return ctx.Err()
// promptly after cancellation and behave exactly like BatchVJP otherwise.
type BatchCtxDifferentiable interface {
	BatchDifferentiable
	BatchVJPCtx(ctx context.Context, xs, ybars *linalg.Matrix) (*linalg.Matrix, error)
}

// BatchVJPCtx is BatchVJP under a caller-controlled context: ctx is checked
// between stages and long-running estimator stages abort promptly. A context
// that can never fire takes the exact BatchVJP code path, preserving the
// bitwise per-row contract. The only error returned is ctx.Err(); structural
// problems still panic, to be contained by the search engine.
func (p *Pipeline) BatchVJPCtx(ctx context.Context, xs, ybars *linalg.Matrix) (*linalg.Matrix, error) {
	if ctx.Done() == nil {
		return p.BatchVJP(xs, ybars), nil
	}
	if xs.Rows == 0 {
		panic("core: BatchVJP on empty batch")
	}
	inputs := make([]*linalg.Matrix, len(p.stages))
	cur := xs
	for i, s := range p.stages {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		inputs[i] = cur
		if p.obs != nil {
			t := p.obs[i].fwd.StartTimer()
			cur = batchForwardStage(s, cur)
			t.Stop()
		} else {
			cur = batchForwardStage(s, cur)
		}
	}
	if ybars.Rows != cur.Rows || ybars.Cols != cur.Cols {
		panic(fmt.Sprintf("core: batch cotangent shape [%d,%d], output [%d,%d]",
			ybars.Rows, ybars.Cols, cur.Rows, cur.Cols))
	}
	cot := ybars
	for i := len(p.stages) - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var t obs.Timer
		if p.obs != nil {
			t = p.obs[i].vjp.StartTimer()
		}
		switch d := p.stages[i].(type) {
		case BatchCtxDifferentiable:
			var err error
			cot, err = d.BatchVJPCtx(ctx, inputs[i], cot)
			if err != nil {
				t.Stop()
				return nil, err
			}
		case BatchDifferentiable:
			cot = d.BatchVJP(inputs[i], cot)
		case Differentiable:
			next := linalg.NewMatrix(xs.Rows, inputs[i].Cols)
			for r := 0; r < xs.Rows; r++ {
				copy(next.Row(r), d.VJP(inputs[i].Row(r), cot.Row(r)))
			}
			cot = next
		default:
			panic(fmt.Sprintf("core: stage %q is not differentiable; wrap it with WithFiniteDiff or WithSPSA", p.stages[i].Name()))
		}
		t.Stop()
	}
	return cot, nil
}

// BatchGrad returns the gradient of a scalar-output pipeline for every row.
func (p *Pipeline) BatchGrad(xs *linalg.Matrix) *linalg.Matrix {
	ones := linalg.NewMatrix(xs.Rows, 1)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	return p.BatchVJP(xs, ones)
}
