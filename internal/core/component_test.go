package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// quadratic is a differentiable test component: y_i = x_i^2.
type quadratic struct{}

func (quadratic) Name() string { return "quadratic" }
func (quadratic) Forward(x []float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = v * v
	}
	return y
}
func (quadratic) VJP(x, ybar []float64) []float64 {
	g := make([]float64, len(x))
	for i := range x {
		g[i] = ybar[i] * 2 * x[i]
	}
	return g
}

// sumComp reduces to a scalar.
type sumComp struct{}

func (sumComp) Name() string { return "sum" }
func (sumComp) Forward(x []float64) []float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return []float64{s}
}
func (sumComp) VJP(x, ybar []float64) []float64 {
	g := make([]float64, len(x))
	for i := range g {
		g[i] = ybar[0]
	}
	return g
}

func TestPipelineForwardAndGrad(t *testing.T) {
	p := NewPipeline(quadratic{}, sumComp{})
	x := []float64{1, 2, 3}
	if got := p.EvalScalar(x); got != 14 {
		t.Fatalf("forward = %v, want 14", got)
	}
	g := p.Grad(x)
	want := []float64{2, 4, 6}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("grad = %v, want %v", g, want)
		}
	}
}

func TestPipelinePanicsOnOpaqueStage(t *testing.T) {
	opaque := &Func{ComponentName: "op", Fn: func(x []float64) []float64 { return x }}
	p := NewPipeline(opaque, sumComp{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-differentiable stage")
		}
	}()
	p.Grad([]float64{1})
}

func TestGrayboxedWrapsOnlyOpaque(t *testing.T) {
	opaque := &Func{ComponentName: "op", Fn: quadratic{}.Forward}
	p := NewPipeline(opaque, sumComp{}).Grayboxed(1e-5)
	x := []float64{1, -2, 0.5}
	g := p.Grad(x)
	want := []float64{2, -4, 1}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-5 {
			t.Fatalf("grayboxed grad = %v, want %v", g, want)
		}
	}
	// The differentiable stage must remain unwrapped.
	if p.Stages()[1].Name() != "sum" {
		t.Fatal("Grayboxed wrapped a differentiable stage")
	}
	if p.Stages()[0].Name() != "op+fd" {
		t.Fatalf("opaque stage not wrapped: %q", p.Stages()[0].Name())
	}
}

func TestFiniteDiffVJPMatchesAnalytic(t *testing.T) {
	fd := WithFiniteDiff(&Func{ComponentName: "q", Fn: quadratic{}.Forward}, 1e-5)
	r := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, 6)
		ybar := make([]float64, 6)
		for i := range x {
			x[i] = r.Uniform(-2, 2)
			ybar[i] = r.Uniform(-1, 1)
		}
		got := fd.VJP(x, ybar)
		want := quadratic{}.VJP(x, ybar)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				t.Fatalf("fd VJP[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestSPSAVJPUnbiased(t *testing.T) {
	// For a LINEAR map the SPSA two-point estimate is exact in expectation;
	// with enough samples it must approach the true gradient.
	lin := &Func{ComponentName: "lin", Fn: func(x []float64) []float64 {
		return []float64{2*x[0] - 3*x[1] + 0.5*x[2]}
	}}
	spsa := WithSPSA(lin, 1e-3, 4000, 42)
	got := spsa.VJP([]float64{1, 1, 1}, []float64{1})
	want := []float64{2, -3, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.15 {
			t.Fatalf("spsa VJP = %v, want %v", got, want)
		}
	}
}

func TestSPSADefaultsAndNames(t *testing.T) {
	c := &Func{ComponentName: "f", Fn: func(x []float64) []float64 { return x }}
	s := WithSPSA(c, 0, 0, 1)
	if s.Name() != "f+spsa" {
		t.Fatalf("name = %q", s.Name())
	}
	fd := WithFiniteDiff(c, 0)
	if fd.Name() != "f+fd" {
		t.Fatalf("name = %q", fd.Name())
	}
	// Forward passes through.
	out := s.Forward([]float64{1, 2})
	if out[0] != 1 || out[1] != 2 {
		t.Fatal("wrapped Forward changed values")
	}
}

func TestDiffFunc(t *testing.T) {
	df := &DiffFunc{
		ComponentName: "scale2",
		Fn: func(x []float64) []float64 {
			y := make([]float64, len(x))
			for i := range x {
				y[i] = 2 * x[i]
			}
			return y
		},
		VJPFn: func(x, ybar []float64) []float64 {
			g := make([]float64, len(x))
			for i := range g {
				g[i] = 2 * ybar[i]
			}
			return g
		},
	}
	p := NewPipeline(df, sumComp{})
	if p.EvalScalar([]float64{1, 2}) != 6 {
		t.Fatal("DiffFunc forward wrong")
	}
	g := p.Grad([]float64{1, 2})
	if g[0] != 2 || g[1] != 2 {
		t.Fatalf("DiffFunc grad = %v", g)
	}
}

func TestParallelGradsConsistency(t *testing.T) {
	p := NewPipeline(quadratic{}, sumComp{})
	r := rng.New(2)
	xs := make([][]float64, 20)
	for i := range xs {
		xs[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	got := ParallelGrads(p, xs, 4)
	for i, x := range xs {
		want := p.Grad(x)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatal("parallel grads differ from sequential")
			}
		}
	}
	// workers < 1 must still work.
	one := ParallelGrads(p, xs[:2], 0)
	if len(one) != 2 {
		t.Fatal("ParallelGrads with 0 workers failed")
	}
}

func TestPipelineValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { NewPipeline() })
	p := NewPipeline(quadratic{})
	mustPanic("nonscalar", func() { p.EvalScalar([]float64{1, 2}) })
	mustPanic("cotangent", func() { p.VJP([]float64{1, 2}, []float64{1}) })
}
