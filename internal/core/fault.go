package core

import (
	"context"
	"fmt"
)

// StopReason classifies why a search (or one of its restarts) stopped.
// The taxonomy is part of the failure-semantics contract (DESIGN.md): a
// caller that time-boxes or cancels a search still receives a well-formed
// SearchResult carrying the best point found so far, and reads the reason
// here instead of an error.
type StopReason int

const (
	// StopNone is the zero value: the search has not stopped (or the result
	// predates the taxonomy, e.g. was read from an old JSON file).
	StopNone StopReason = iota
	// StopConverged means the iteration budget ran to completion.
	StopConverged
	// StopPatience means every live restart retired early after Patience
	// evaluations without improvement.
	StopPatience
	// StopDeadline means the context's deadline expired mid-search.
	StopDeadline
	// StopCancelled means the context was cancelled mid-search.
	StopCancelled
	// StopFaulted means every restart was retired by a contained component
	// failure (panic or persistent solver error); nothing ran to completion.
	StopFaulted
)

func (s StopReason) String() string {
	switch s {
	case StopConverged:
		return "converged"
	case StopPatience:
		return "patience"
	case StopDeadline:
		return "deadline"
	case StopCancelled:
		return "cancelled"
	case StopFaulted:
		return "faulted"
	default:
		return "none"
	}
}

// stopReasonFromString is the inverse of String, for JSON round-trips.
func stopReasonFromString(s string) StopReason {
	switch s {
	case "converged":
		return StopConverged
	case "patience":
		return StopPatience
	case "deadline":
		return StopDeadline
	case "cancelled":
		return StopCancelled
	case "faulted":
		return StopFaulted
	default:
		return StopNone
	}
}

// ctxStopReason maps a context error to the matching StopReason.
func ctxStopReason(err error) StopReason {
	if err == context.DeadlineExceeded {
		return StopDeadline
	}
	return StopCancelled
}

// ComponentError is a contained failure of one pipeline stage or solver
// during the search: a recovered panic (ad shape mismatch, linalg dimension
// panic) or a structured error (non-optimal LP status) that retired a single
// restart — or, for Restart == -1, faulted a whole batched sweep that cannot
// be attributed to one row.
type ComponentError struct {
	// Restart is the restart index the fault was attributed to (-1 when the
	// fault hit a shared batched stage covering all active restarts).
	Restart int
	// Iter is the outer iteration at which the fault occurred.
	Iter int
	// Stage names the component boundary that faulted (e.g. "pipeline-grad",
	// "constraint-mlu", "ratio-eval", "fault-injector").
	Stage string
	// Err is the underlying error; recovered panics are wrapped so the
	// original value is preserved in the message.
	Err error
}

// Error implements error.
func (e *ComponentError) Error() string {
	return fmt.Sprintf("core: restart %d iter %d stage %s: %v", e.Restart, e.Iter, e.Stage, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ComponentError) Unwrap() error { return e.Err }

// RestartOutcome records how one restart ended — the per-restart row of the
// failure-semantics contract.
type RestartOutcome struct {
	// Restart is the restart index.
	Restart int
	// Stop is why this restart stopped (never StopNone on a finished search).
	Stop StopReason
	// BestRatio is the best verified ratio this restart discovered (0 if
	// none).
	BestRatio float64
	// Iters is the number of outer iterations the restart completed.
	Iters int
	// Fault is the contained failure that retired the restart, when Stop ==
	// StopFaulted.
	Fault *ComponentError
}

// maxRecordedFaults caps SearchResult.Faults so a persistently failing
// component cannot grow the result without bound; FaultCount keeps the true
// total.
const maxRecordedFaults = 64

// contained runs fn under a recover() boundary, converting a panic into a
// typed *ComponentError attributed to (restart, iter) and the stage named by
// *stage at the time of the panic (the body may update *stage as it moves
// between component boundaries). Returns nil when fn completes.
func contained(restart, iter int, stage *string, fn func()) (cerr *ComponentError) {
	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok {
				err = fmt.Errorf("panic: %v", r)
			}
			cerr = &ComponentError{Restart: restart, Iter: iter, Stage: *stage, Err: err}
		}
	}()
	fn()
	return nil
}
