package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/ad"
	"repro/internal/paths"
	"repro/internal/te"
)

// AttackTarget packages everything the searchers need about a system under
// analysis: the end-to-end pipeline H(x) (whose scalar output is the
// system's MLU), where the routed demand lives inside the input vector, the
// path set (to compute the optimal baseline), and the input box constraint
// (§5 bounds demands by the average link capacity).
type AttackTarget struct {
	// Pipeline maps the full input x to [MLU_system(x)].
	Pipeline *Pipeline
	// InputDim is the dimension of x.
	InputDim int
	// DemandStart/DemandLen locate the routed demand matrix within x. Any
	// remaining coordinates (e.g. DOTE-Hist's history window) are free
	// search variables too.
	DemandStart, DemandLen int
	// PS is the routing substrate used for the optimal baseline and the
	// feasibility constraint of Eq. 3.
	PS *paths.PathSet
	// MaxDemand is the per-coordinate upper bound on x.
	MaxDemand float64
	// RatioOverride, when non-nil, replaces the default MLU-over-optimal
	// scoring — used by alternative objectives such as total flow (§4,
	// "Other TE Objectives").
	RatioOverride func(x []float64) (ratio, sys, opt float64, err error)
}

// attackRouting holds the routing incidence caches and the utilization
// kernels for the constraint term of one path set. It lives in a
// package-level cache rather than on AttackTarget so that targets stay
// plain copyable values (searchers clone them to probe perturbed settings)
// while concurrent restart goroutines still build the cache exactly once.
type attackRouting struct {
	slotPair  []int
	slotEdges [][]int
	caps      []float64
	offsets   []int
	lens      []int
	mluFwd    func(in [][]float64, out []float64)
	mluBwd    func(in [][]float64, out, gout []float64, gin [][]float64)

	// per-batch-size segment layouts for the batched constraint term; the
	// slices are retained by tapes until Reset, so they are cached here and
	// never mutated
	batchMu  sync.Mutex
	softSegs map[int]*attackSegs // per-pair softmax segments × rows
	maxSegs  map[int]*attackSegs // one [E]-long segment per row
}

// attackSegs is a cached (offsets, lens) pair for the tape's segment ops.
type attackSegs struct {
	offsets, lens []int
}

// batchSoftmaxSegs returns the per-pair softmax layout replicated across
// rows of a flattened [rows·nSlots] logits vector.
func (r *attackRouting) batchSoftmaxSegs(rows int) *attackSegs {
	r.batchMu.Lock()
	defer r.batchMu.Unlock()
	if s, ok := r.softSegs[rows]; ok {
		return s
	}
	if r.softSegs == nil {
		r.softSegs = make(map[int]*attackSegs)
	}
	nSeg, nSlots := len(r.offsets), len(r.slotPair)
	s := &attackSegs{offsets: make([]int, rows*nSeg), lens: make([]int, rows*nSeg)}
	for row := 0; row < rows; row++ {
		for i := 0; i < nSeg; i++ {
			s.offsets[row*nSeg+i] = row*nSlots + r.offsets[i]
			s.lens[row*nSeg+i] = r.lens[i]
		}
	}
	r.softSegs[rows] = s
	return s
}

// batchMaxSegs returns one length-E segment per row of a flattened
// [rows·E] utilization vector, for the per-row max reduction.
func (r *attackRouting) batchMaxSegs(rows int) *attackSegs {
	r.batchMu.Lock()
	defer r.batchMu.Unlock()
	if s, ok := r.maxSegs[rows]; ok {
		return s
	}
	if r.maxSegs == nil {
		r.maxSegs = make(map[int]*attackSegs)
	}
	nE := len(r.caps)
	s := &attackSegs{offsets: make([]int, rows), lens: make([]int, rows)}
	for row := 0; row < rows; row++ {
		s.offsets[row] = row * nE
		s.lens[row] = nE
	}
	r.maxSegs[rows] = s
	return s
}

// attackRoutingCache maps path sets to their routing kernels. Bounded like
// te's solver cache: path sets are few and long-lived, so wholesale eviction
// is a backstop, not a policy.
var attackRoutingCache = struct {
	sync.Mutex
	m map[*paths.PathSet]*attackRouting
}{m: make(map[*paths.PathSet]*attackRouting)}

const attackRoutingCacheLimit = 32

// Validate checks internal consistency. The path set may be nil for
// non-TE systems ("Beyond learning-enabled systems", §6) — then a
// RatioOverride must supply the scoring and the search runs without the
// TE feasibility term (as if Mode were DirectAscent).
func (a *AttackTarget) Validate() error {
	if a.Pipeline == nil {
		return fmt.Errorf("core: AttackTarget missing pipeline")
	}
	if a.PS == nil {
		if a.RatioOverride == nil {
			return fmt.Errorf("core: AttackTarget without a path set needs a RatioOverride")
		}
	} else if a.DemandLen != a.PS.NumPairs() {
		return fmt.Errorf("core: demand length %d, path set has %d pairs", a.DemandLen, a.PS.NumPairs())
	}
	if a.DemandStart < 0 || a.DemandStart+a.DemandLen > a.InputDim {
		return fmt.Errorf("core: demand slice out of input range")
	}
	if a.MaxDemand <= 0 {
		return fmt.Errorf("core: MaxDemand must be positive")
	}
	return nil
}

// Demand extracts the routed demand from a search point.
func (a *AttackTarget) Demand(x []float64) te.TrafficMatrix {
	d := make(te.TrafficMatrix, a.DemandLen)
	copy(d, x[a.DemandStart:a.DemandStart+a.DemandLen])
	return d
}

// Ratio evaluates the true performance ratio (Eq. 2) at x: the pipeline's
// MLU over the LP-optimal MLU of the routed demand. This is the ground
// truth all searchers are scored on.
func (a *AttackTarget) Ratio(x []float64) (ratio, sys, opt float64, err error) {
	return a.RatioCtx(context.Background(), x)
}

// RatioCtx is Ratio under a caller-controlled context: the optimal-MLU LP
// solve inherits ctx's deadline (mapped onto lp.Problem.Deadline) and the
// call returns ctx.Err() promptly after cancellation. With a context that
// can never fire the code path is identical to Ratio.
func (a *AttackTarget) RatioCtx(ctx context.Context, x []float64) (ratio, sys, opt float64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, err
	}
	if a.RatioOverride != nil {
		return a.RatioOverride(x)
	}
	sys = a.Pipeline.EvalScalar(x)
	d := a.Demand(x)
	if d.Total() == 0 {
		return 1, sys, 0, nil
	}
	opt, _, err = te.OptimalMLUCtx(ctx, a.PS, d)
	if err != nil {
		return 0, 0, 0, err
	}
	if opt <= 0 {
		return 1, sys, opt, nil
	}
	return sys / opt, sys, opt, nil
}

// routingFor returns the cached incidence and utilization kernels for ps,
// building them on first use. The forward/backward closures are built once
// here, not per constraintMLU call, so the per-iteration hot path records
// them onto the tape without allocating.
func routingFor(ps *paths.PathSet) *attackRouting {
	attackRoutingCache.Lock()
	defer attackRoutingCache.Unlock()
	if r, ok := attackRoutingCache.m[ps]; ok {
		return r
	}
	if len(attackRoutingCache.m) >= attackRoutingCacheLimit {
		attackRoutingCache.m = make(map[*paths.PathSet]*attackRouting)
	}
	offsets, total := ps.Offsets()
	r := &attackRouting{
		offsets:   offsets,
		lens:      make([]int, ps.NumPairs()),
		slotPair:  make([]int, total),
		slotEdges: make([][]int, total),
	}
	for i, pp := range ps.PairPaths {
		r.lens[i] = len(pp)
		for k, path := range pp {
			r.slotPair[offsets[i]+k] = i
			r.slotEdges[offsets[i]+k] = path.Edges
		}
	}
	g := ps.Graph
	r.caps = make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		r.caps[e] = g.Edge(e).Capacity
	}
	slotPair, slotEdges, caps := r.slotPair, r.slotEdges, r.caps
	// Row-generalized like dote's utilization kernels: the batch size is
	// inferred from len(out)/len(caps), and R=1 reproduces the scalar math
	// exactly (the batched engine depends on per-row equivalence).
	nPairs, nSlots := ps.NumPairs(), total
	r.mluFwd = func(in [][]float64, out []float64) {
		dd, ss := in[0], in[1]
		nE := len(caps)
		for base, db, sb := 0, 0, 0; base < len(out); base, db, sb = base+nE, db+nPairs, sb+nSlots {
			drow := dd[db : db+nPairs]
			srow := ss[sb : sb+nSlots]
			oo := out[base : base+nE]
			for slot, edges := range slotEdges {
				flow := drow[slotPair[slot]] * srow[slot]
				if flow == 0 {
					continue
				}
				for _, e := range edges {
					oo[e] += flow
				}
			}
			for e := range oo {
				oo[e] /= caps[e]
			}
		}
	}
	r.mluBwd = func(in [][]float64, out, gout []float64, gin [][]float64) {
		dd, ss := in[0], in[1]
		gd, gs := gin[0], gin[1]
		nE := len(caps)
		for base, db, sb := 0, 0, 0; base < len(gout); base, db, sb = base+nE, db+nPairs, sb+nSlots {
			drow := dd[db : db+nPairs]
			srow := ss[sb : sb+nSlots]
			gg := gout[base : base+nE]
			for slot, edges := range slotEdges {
				sum := 0.0
				for _, e := range edges {
					sum += gg[e] / caps[e]
				}
				gd[db+slotPair[slot]] += srow[slot] * sum
				gs[sb+slot] += drow[slotPair[slot]] * sum
			}
		}
	}
	attackRoutingCache.m[ps] = r
	return r
}

// constraintMLU computes MLU(d, f) of Eq. 3/4 differentiably: fLogits are
// free variables turned into valid split ratios by a per-pair softmax, the
// demand is routed with them, and the max utilization is returned with its
// gradients written into the caller-owned gradD (len(demand)) and gradF
// (len(fLogits)) buffers. The tape is pooled, so nothing tape-backed
// escapes; callers hoist the buffers out of their search loops.
func (a *AttackTarget) constraintMLU(demand, fLogits, gradD, gradF []float64) (mlu float64) {
	r := routingFor(a.PS)
	t := ad.GetTape()
	defer ad.PutTape(t)
	d := t.Var(demand)
	fl := t.Var(fLogits)
	f := ad.SegmentSoftmax(fl, r.offsets, r.lens)
	util := ad.Custom(t, []ad.Value{d, f}, len(r.caps), 1, r.mluFwd, r.mluBwd)
	m := ad.Max(util)
	ad.Backward(m)
	copy(gradD, d.Grad())
	copy(gradF, fl.Grad())
	return m.ScalarValue()
}

// constraintMLUBatch is the batched constraintMLU used by the batched
// restart engine: demand is [rows·demandLen] and fLogits [rows·nSlots], both
// row-major over active restarts. Per-row MLUs land in mlus and the
// gradients in gradD/gradF (same row-major layouts). ones must be an
// all-ones seed of length rows (caller-owned, hoisted out of the loop).
// Row arithmetic is identical to rows separate constraintMLU calls: the
// per-row softmax segments and the per-row SegmentMax reproduce the scalar
// segment math and Max's first-attaining subgradient exactly.
func (a *AttackTarget) constraintMLUBatch(demand, fLogits []float64, rows int, gradD, gradF, mlus, ones []float64) {
	r := routingFor(a.PS)
	t := ad.GetTape()
	defer ad.PutTape(t)
	d := t.Var(demand)
	fl := t.Var(fLogits)
	ss := r.batchSoftmaxSegs(rows)
	f := ad.SegmentSoftmax(fl, ss.offsets, ss.lens)
	util := ad.Custom(t, []ad.Value{d, f}, rows*len(r.caps), 1, r.mluFwd, r.mluBwd)
	ms := r.batchMaxSegs(rows)
	mx := ad.SegmentMax(util, ms.offsets, ms.lens)
	ad.BackwardVJP(mx, ones)
	copy(mlus, mx.Data())
	copy(gradD, d.Grad())
	copy(gradF, fl.Grad())
}
