package core

import (
	"fmt"

	"repro/internal/ad"
	"repro/internal/paths"
	"repro/internal/te"
)

// AttackTarget packages everything the searchers need about a system under
// analysis: the end-to-end pipeline H(x) (whose scalar output is the
// system's MLU), where the routed demand lives inside the input vector, the
// path set (to compute the optimal baseline), and the input box constraint
// (§5 bounds demands by the average link capacity).
type AttackTarget struct {
	// Pipeline maps the full input x to [MLU_system(x)].
	Pipeline *Pipeline
	// InputDim is the dimension of x.
	InputDim int
	// DemandStart/DemandLen locate the routed demand matrix within x. Any
	// remaining coordinates (e.g. DOTE-Hist's history window) are free
	// search variables too.
	DemandStart, DemandLen int
	// PS is the routing substrate used for the optimal baseline and the
	// feasibility constraint of Eq. 3.
	PS *paths.PathSet
	// MaxDemand is the per-coordinate upper bound on x.
	MaxDemand float64
	// RatioOverride, when non-nil, replaces the default MLU-over-optimal
	// scoring — used by alternative objectives such as total flow (§4,
	// "Other TE Objectives").
	RatioOverride func(x []float64) (ratio, sys, opt float64, err error)

	// routing incidence caches (built lazily)
	slotPair  []int
	slotEdges [][]int
	caps      []float64
	offsets   []int
	lens      []int
}

// Validate checks internal consistency. The path set may be nil for
// non-TE systems ("Beyond learning-enabled systems", §6) — then a
// RatioOverride must supply the scoring and the search runs without the
// TE feasibility term (as if Mode were DirectAscent).
func (a *AttackTarget) Validate() error {
	if a.Pipeline == nil {
		return fmt.Errorf("core: AttackTarget missing pipeline")
	}
	if a.PS == nil {
		if a.RatioOverride == nil {
			return fmt.Errorf("core: AttackTarget without a path set needs a RatioOverride")
		}
	} else if a.DemandLen != a.PS.NumPairs() {
		return fmt.Errorf("core: demand length %d, path set has %d pairs", a.DemandLen, a.PS.NumPairs())
	}
	if a.DemandStart < 0 || a.DemandStart+a.DemandLen > a.InputDim {
		return fmt.Errorf("core: demand slice out of input range")
	}
	if a.MaxDemand <= 0 {
		return fmt.Errorf("core: MaxDemand must be positive")
	}
	return nil
}

// Demand extracts the routed demand from a search point.
func (a *AttackTarget) Demand(x []float64) te.TrafficMatrix {
	d := make(te.TrafficMatrix, a.DemandLen)
	copy(d, x[a.DemandStart:a.DemandStart+a.DemandLen])
	return d
}

// Ratio evaluates the true performance ratio (Eq. 2) at x: the pipeline's
// MLU over the LP-optimal MLU of the routed demand. This is the ground
// truth all searchers are scored on.
func (a *AttackTarget) Ratio(x []float64) (ratio, sys, opt float64, err error) {
	if a.RatioOverride != nil {
		return a.RatioOverride(x)
	}
	sys = a.Pipeline.EvalScalar(x)
	d := a.Demand(x)
	if d.Total() == 0 {
		return 1, sys, 0, nil
	}
	opt, _, err = te.OptimalMLU(a.PS, d)
	if err != nil {
		return 0, 0, 0, err
	}
	if opt <= 0 {
		return 1, sys, opt, nil
	}
	return sys / opt, sys, opt, nil
}

// ensureRouting builds the incidence caches for the constraint term. It is
// a no-op for non-TE targets (nil path set).
func (a *AttackTarget) ensureRouting() {
	if a.slotPair != nil || a.PS == nil {
		return
	}
	ps := a.PS
	offsets, total := ps.Offsets()
	a.offsets = offsets
	a.lens = make([]int, ps.NumPairs())
	a.slotPair = make([]int, total)
	a.slotEdges = make([][]int, total)
	for i, pp := range ps.PairPaths {
		a.lens[i] = len(pp)
		for k, path := range pp {
			a.slotPair[offsets[i]+k] = i
			a.slotEdges[offsets[i]+k] = path.Edges
		}
	}
	g := ps.Graph
	a.caps = make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		a.caps[e] = g.Edge(e).Capacity
	}
}

// constraintMLU computes MLU(d, f) of Eq. 3/4 differentiably: fLogits are
// free variables turned into valid split ratios by a per-pair softmax, the
// demand is routed with them, and the max utilization is returned together
// with its gradients with respect to d and fLogits.
func (a *AttackTarget) constraintMLU(demand, fLogits []float64) (mlu float64, gradD, gradF []float64) {
	a.ensureRouting()
	t := ad.NewTape()
	d := t.Var(demand)
	fl := t.Var(fLogits)
	f := ad.SegmentSoftmax(fl, a.offsets, a.lens)
	slotPair, slotEdges, caps := a.slotPair, a.slotEdges, a.caps
	util := ad.Custom(t, []ad.Value{d, f}, len(caps), 1,
		func(in [][]float64) []float64 {
			dd, ss := in[0], in[1]
			u := make([]float64, len(caps))
			for slot, edges := range slotEdges {
				flow := dd[slotPair[slot]] * ss[slot]
				if flow == 0 {
					continue
				}
				for _, e := range edges {
					u[e] += flow
				}
			}
			for e := range u {
				u[e] /= caps[e]
			}
			return u
		},
		func(in [][]float64, out, gout []float64) [][]float64 {
			dd, ss := in[0], in[1]
			gd := make([]float64, len(dd))
			gs := make([]float64, len(ss))
			for slot, edges := range slotEdges {
				sum := 0.0
				for _, e := range edges {
					sum += gout[e] / caps[e]
				}
				gd[slotPair[slot]] += ss[slot] * sum
				gs[slot] += dd[slotPair[slot]] * sum
			}
			return [][]float64{gd, gs}
		})
	m := ad.Max(util)
	ad.Backward(m)
	return m.ScalarValue(), d.Grad(), fl.Grad()
}
