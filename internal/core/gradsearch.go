package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/te"
)

// ObjectiveMode selects the search objective.
type ObjectiveMode int

const (
	// Lagrangian is the paper's method (Eq. 3–5): maximize MLU_system(d)
	// over the convexified feasible space {d : ∃f MLU(d,f)=1}, relaxed via
	// a Lagrange multiplier and solved with multi-step gradient
	// descent-ascent.
	Lagrangian ObjectiveMode = iota
	// DirectAscent ablates the convex reformulation: plain gradient ascent
	// on MLU_system(x) (Eq. 2's numerator) with no feasibility term.
	DirectAscent
)

func (m ObjectiveMode) String() string {
	if m == DirectAscent {
		return "direct-ascent"
	}
	return "lagrangian"
}

// SearchEngine selects how the restarts of GradientSearch are executed.
type SearchEngine int

const (
	// EngineAuto picks the batched engine when Restarts > 1 and every
	// pipeline stage batches natively (BatchCapable), else the scalar one.
	EngineAuto SearchEngine = iota
	// EngineScalar runs each restart as its own goroutine over the scalar
	// chain-rule path.
	EngineScalar
	// EngineBatched runs all active restarts in lock-step as one [R, n]
	// batch, turning the DNN sweeps into matrix–matrix kernels. Both engines
	// follow bitwise-identical per-restart trajectories. With Restarts == 1
	// the scalar path is used regardless (there is nothing to batch).
	EngineBatched
)

func (e SearchEngine) String() string {
	switch e {
	case EngineScalar:
		return "scalar"
	case EngineBatched:
		return "batched"
	default:
		return "auto"
	}
}

// GradientConfig are the hyper-parameters of Eq. 5.
type GradientConfig struct {
	// Iters is the number of outer iterations per restart.
	Iters int
	// T is the number of inner ascent steps per outer iteration (§4; the
	// paper uses T = 1).
	T int
	// AlphaD, AlphaF, AlphaL are the step sizes for demands, split
	// variables and the multiplier. The paper sets all three to 0.01.
	AlphaD, AlphaF, AlphaL float64
	// LambdaInit seeds the multiplier.
	LambdaInit float64
	// Restarts is the number of random restarts; they run in parallel.
	Restarts int
	// Workers caps restart parallelism (0 = Restarts).
	Workers int
	// EvalEvery controls how often (in outer iterations) the true ratio is
	// scored with the LP.
	EvalEvery int
	// Seed drives initialization.
	Seed uint64
	// Mode selects the objective (see ObjectiveMode).
	Mode ObjectiveMode
	// Patience stops a restart after this many consecutive evaluations
	// without improvement (0 = never stop early).
	Patience int
	// Momentum, when positive, applies heavy-ball momentum to the demand
	// ascent direction — an optimization-quality knob the ablations probe.
	Momentum float64
	// Constraints restricts the search to realistic inputs (§6). Each gets
	// its own multiplier, relaxed into the objective like Eq. 4's term.
	Constraints []InputConstraint
	// ConstraintTarget is the target value c of the feasibility constraint
	// MLU(d, f) = c (Eq. 3 uses c = 1; "Other TE Objectives" sweeps it to
	// realize {d | OPT(d, f) = P}). Zero means 1.
	ConstraintTarget float64
	// Engine selects the restart execution strategy (see SearchEngine).
	Engine SearchEngine
	// EvalCache, when non-nil, memoizes true-ratio scoring (hash of the
	// quantized input → ratio/sys/opt) across restarts and searches, so
	// lock-step batches and near-converged restarts stop re-solving the
	// optimal-MLU LP at coincident points. Cached evaluations are not
	// counted in Evals/LPEvals. Nil disables memoization.
	EvalCache *EvalCache
	// Obs, when non-nil, receives search telemetry: per-stage pipeline
	// timings (see Pipeline.Instrument), per-restart step/reject/fault
	// counters ("search.restart.<r>.steps" etc.), LP solve latency and
	// warm-start counters from the traffic-engineering solver, and the
	// search-level improvement count. The registry's snapshot is attached to
	// the result as SearchResult.Telemetry. Nil keeps every hot path on its
	// allocation-free uninstrumented branch.
	Obs *obs.Registry
	// FaultInjector, when non-nil, is invoked at the top of every outer
	// iteration of every live restart with the restart index, the outer
	// iteration and a read-only view of the current iterate. Returning a
	// non-nil error makes that restart panic with it, exercising the same
	// recover() boundary that contains real component panics. Tests use it
	// both to fault restart k at step j deterministically and to observe
	// per-restart trajectories; it must not mutate x.
	FaultInjector func(restart, iter int, x []float64) error
	// Executor, when non-nil, receives one task per restart instead of the
	// search spawning its own bounded worker goroutines — the analyzer
	// daemon's work-stealing pool rides this to interleave restarts from
	// many concurrent searches over one set of machine cores. Run must
	// execute the task exactly once (on any goroutine, at any later time);
	// the search blocks until all its tasks complete. An Executor implies
	// the scalar engine (each restart is an independent work item), whose
	// per-restart trajectories are bitwise identical regardless of
	// scheduling, and makes Workers moot: parallelism is the pool's.
	Executor Executor
	// OnImprove, when non-nil, is invoked after every global best-ratio
	// improvement with the new best and the time since the search started.
	// Calls are strictly ratio-monotone and serialized (made under the
	// result lock from restart workers) — keep the callback fast. The
	// daemon uses it to stream incremental best-so-far results per job.
	OnImprove func(ratio, sys, opt float64, iter int, elapsed time.Duration)
}

// Executor runs independent tasks on behalf of a search. Implementations
// must execute every submitted task exactly once and may run tasks from many
// searches concurrently; tasks never block on other tasks, so any pool with
// at least one worker makes progress.
type Executor interface {
	Run(task func())
}

// DefaultGradientConfig mirrors §5: alpha = 0.01 everywhere, T = 1.
func DefaultGradientConfig() GradientConfig {
	return GradientConfig{
		Iters:      400,
		T:          1,
		AlphaD:     0.01,
		AlphaF:     0.01,
		AlphaL:     0.01,
		LambdaInit: 1,
		Restarts:   4,
		EvalEvery:  10,
		Seed:       1,
		Patience:   8,
	}
}

// TracePoint records the best-known ratio at a point in the search.
type TracePoint struct {
	Iter    int
	Ratio   float64
	Elapsed time.Duration
}

// SearchResult is the outcome of any adversarial-input search.
type SearchResult struct {
	Method string
	// BestRatio is the largest verified performance ratio (Eq. 2).
	BestRatio float64
	// BestX is the adversarial input attaining it.
	BestX []float64
	// BestSysMLU / BestOptMLU decompose the ratio.
	BestSysMLU, BestOptMLU float64
	// Evals counts pipeline forward evaluations; GradEvals counts
	// end-to-end gradient computations; LPEvals counts optimal-MLU solves.
	Evals, GradEvals, LPEvals int
	// Elapsed is the total wall-clock time; TimeToBest is when the best
	// ratio was found (the paper reports the earliest point at which no
	// further improvement occurred).
	Elapsed, TimeToBest time.Duration
	// Trace samples the best ratio over time.
	Trace []TracePoint
	// Found reports whether any ratio was discovered at all (white-box
	// baselines can time out with nothing — the "—" entries in Tables 1/2).
	Found bool
	// StopReason classifies why the search as a whole stopped (see the
	// failure-semantics section of DESIGN.md). Cancellation and deadlines
	// are reported here, NOT as an error: the result always carries the best
	// point found so far.
	StopReason StopReason
	// Restarts records how each restart ended, indexed by restart number
	// (gradient searches only; baselines leave it nil).
	Restarts []RestartOutcome
	// Faults lists contained component failures (capped at 64 entries);
	// FaultCount is the uncapped total.
	Faults     []*ComponentError
	FaultCount int
	// Telemetry is the metrics snapshot taken at the end of the search when
	// GradientConfig.Obs was set; nil otherwise. It round-trips through
	// WriteJSON/ReadResultJSON.
	Telemetry *obs.Snapshot
}

func (r *SearchResult) String() string {
	if !r.Found {
		return fmt.Sprintf("%s: no adversarial input found (elapsed %v)", r.Method, r.Elapsed.Round(time.Millisecond))
	}
	return fmt.Sprintf("%s: ratio %.2fx (sys %.3f / opt %.3f) in %v",
		r.Method, r.BestRatio, r.BestSysMLU, r.BestOptMLU, r.TimeToBest.Round(time.Millisecond))
}

// maxConsecutiveEvalFaults retires a restart whose true-ratio evaluation
// (the LP solve) keeps failing: single failures reject the step and the
// search continues from the same trajectory, persistent failure retires just
// that restart.
const maxConsecutiveEvalFaults = 3

// searchObs holds the search engines' pre-resolved counter handles: registry
// lookups happen once per search, never inside the iteration loops. Built
// from a nil registry every handle is nil, and the nil-receiver no-op
// contract of the obs package makes every increment free.
type searchObs struct {
	// steps/rejects/faults are indexed by restart number.
	steps, rejects, faults []*obs.Counter
	// batchFaults counts faults in shared batched stages (Restart == -1),
	// which cannot be attributed to one row.
	batchFaults *obs.Counter
	// improvements counts global best-ratio improvements.
	improvements *obs.Counter
}

func newSearchObs(reg *obs.Registry, restarts int) *searchObs {
	so := &searchObs{
		steps:   make([]*obs.Counter, restarts),
		rejects: make([]*obs.Counter, restarts),
		faults:  make([]*obs.Counter, restarts),
	}
	if reg == nil {
		// All handles stay nil; every increment is a nil-receiver no-op.
		return so
	}
	so.batchFaults = reg.Counter("search.fault.batch")
	so.improvements = reg.Counter("search.improvements")
	for r := 0; r < restarts; r++ {
		so.steps[r] = reg.Counter(fmt.Sprintf("search.restart.%d.steps", r))
		so.rejects[r] = reg.Counter(fmt.Sprintf("search.restart.%d.rejects", r))
		so.faults[r] = reg.Counter(fmt.Sprintf("search.restart.%d.faults", r))
	}
	return so
}

// GradientSearch runs the paper's gray-box analyzer: multi-step gradient
// descent-ascent on the Lagrangian of Eq. 4, with gradients obtained from
// the pipeline via the chain rule (§3.2). Restarts run concurrently.
func GradientSearch(target *AttackTarget, cfg GradientConfig) (*SearchResult, error) {
	return GradientSearchContext(context.Background(), target, cfg)
}

// GradientSearchContext is GradientSearch under a caller-controlled context:
// cancelling ctx (or letting its deadline expire) stops the search within
// roughly one outer-iteration granularity and returns a well-formed
// SearchResult holding the best point found so far, with StopReason set to
// cancelled or deadline — not an error. Component panics and LP failures are
// contained per restart (see ComponentError); the returned error is non-nil
// only for invalid targets or configurations.
func GradientSearchContext(ctx context.Context, target *AttackTarget, cfg GradientConfig) (*SearchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if cfg.Iters <= 0 || cfg.Restarts <= 0 {
		return nil, fmt.Errorf("core: GradientSearch needs positive Iters and Restarts")
	}
	if cfg.T < 1 {
		cfg.T = 1
	}
	if cfg.EvalEvery < 1 {
		cfg.EvalEvery = 10
	}
	workers := cfg.Workers
	if workers <= 0 || workers > cfg.Restarts {
		workers = cfg.Restarts
	}
	// Pre-warm the shared routing cache before spawning restarts.
	if target.PS != nil {
		routingFor(target.PS)
	}

	// Surrogate trust feedback: when scoring goes through a memo cache,
	// every FRESH true evaluation (cache inserts only — hits were observed
	// when first inserted, errors are never cached) is fanned out to the
	// pipeline stages that want it. The hook lives exactly as long as the
	// search so a shared cache never retains stage references.
	if cfg.EvalCache != nil {
		var observers []TrueEvalObserver
		for _, s := range target.Pipeline.Stages() {
			if o, ok := s.(TrueEvalObserver); ok {
				observers = append(observers, o)
			}
		}
		if len(observers) > 0 {
			// AddOnInsert (not the legacy SetOnInsert) so concurrent searches
			// sharing one cache each keep their own fan-out: the remove token
			// detaches exactly this search's subscription when it returns,
			// never another search's.
			remove := cfg.EvalCache.AddOnInsert(func(x []float64, ratio, sys, opt float64) {
				for _, o := range observers {
					o.ObserveTrueEval(x, ratio, sys, opt)
				}
			})
			defer remove()
		}
	}

	// Telemetry: instrument the pipeline and the shared LP solver for the
	// duration of the search, restoring the uninstrumented fast paths on the
	// way out. LP counters are cumulative across searches sharing a path
	// set, so the search publishes its own delta.
	so := newSearchObs(cfg.Obs, cfg.Restarts)
	var lpBefore lp.SolverStatsSnapshot
	var cacheBefore EvalCacheStats
	if cfg.Obs != nil {
		target.Pipeline.Instrument(cfg.Obs)
		defer target.Pipeline.Instrument(nil)
		if target.PS != nil {
			te.InstrumentSolver(target.PS, cfg.Obs)
			defer te.InstrumentSolver(target.PS, nil)
			lpBefore = te.SolverStatsFor(target.PS)
		}
		if cfg.EvalCache != nil {
			cacheBefore = cfg.EvalCache.Stats()
		}
	}

	start := time.Now()
	res := &SearchResult{Method: "gradient-based (" + cfg.Mode.String() + ")"}
	var mu sync.Mutex
	improve := func(ratio, sys, opt float64, x []float64, iter int) {
		mu.Lock()
		defer mu.Unlock()
		if ratio > res.BestRatio {
			res.BestRatio = ratio
			res.BestSysMLU = sys
			res.BestOptMLU = opt
			res.BestX = append([]float64{}, x...)
			res.TimeToBest = time.Since(start)
			res.Found = true
			res.Trace = append(res.Trace, TracePoint{Iter: iter, Ratio: ratio, Elapsed: res.TimeToBest})
			so.improvements.Inc()
			if cfg.OnImprove != nil {
				cfg.OnImprove(ratio, sys, opt, iter, res.TimeToBest)
			}
		}
	}
	count := func(evals, grads, lps int) {
		mu.Lock()
		res.Evals += evals
		res.GradEvals += grads
		res.LPEvals += lps
		mu.Unlock()
	}
	recordFault := func(ce *ComponentError) {
		mu.Lock()
		res.FaultCount++
		if len(res.Faults) < maxRecordedFaults {
			res.Faults = append(res.Faults, ce)
		}
		mu.Unlock()
		if ce.Restart >= 0 && ce.Restart < len(so.faults) {
			so.faults[ce.Restart].Inc()
		} else {
			so.batchFaults.Inc()
		}
	}

	// Engine dispatch: the batched engine wins when the DNN sweeps dominate
	// and every stage batches natively; the scalar engine keeps per-restart
	// goroutine parallelism and is the only option for Restarts == 1. An
	// external Executor forces the scalar engine — restarts must be
	// independent work items a pool can interleave with other searches, and
	// the engines' bitwise trajectory contract keeps the results identical.
	useBatched := cfg.Restarts > 1 && cfg.Executor == nil &&
		(cfg.Engine == EngineBatched ||
			(cfg.Engine == EngineAuto && target.Pipeline.BatchCapable()))
	if useBatched {
		res.Restarts = runBatchedRestarts(ctx, target, cfg, workers, improve, count, recordFault, so)
	} else {
		outcomes := make([]RestartOutcome, cfg.Restarts)
		var wg sync.WaitGroup
		if cfg.Executor != nil {
			// Restart parallelism belongs to the external pool: submit every
			// restart as one work item and wait for the pool to drain them.
			for restart := 0; restart < cfg.Restarts; restart++ {
				restart := restart
				wg.Add(1)
				cfg.Executor.Run(func() {
					defer wg.Done()
					outcomes[restart] = runRestart(ctx, target, cfg, restart, improve, count, recordFault, so)
				})
			}
		} else {
			sem := make(chan struct{}, workers)
			for restart := 0; restart < cfg.Restarts; restart++ {
				wg.Add(1)
				go func(restart int) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					outcomes[restart] = runRestart(ctx, target, cfg, restart, improve, count, recordFault, so)
				}(restart)
			}
		}
		wg.Wait()
		res.Restarts = outcomes
	}
	res.Elapsed = time.Since(start)
	res.StopReason = aggregateStop(ctx, res.Restarts)
	if cfg.Obs != nil {
		if target.PS != nil {
			delta := te.SolverStatsFor(target.PS).Sub(lpBefore)
			cfg.Obs.Counter("lp.solves").Add(delta.Solves)
			cfg.Obs.Counter("lp.warm_attempts").Add(delta.WarmAttempts)
			cfg.Obs.Counter("lp.warm_hits").Add(delta.WarmHits)
			cfg.Obs.Counter("lp.cold_solves").Add(delta.ColdSolves)
			cfg.Obs.Counter("lp.pivots").Add(delta.Pivots)
			cfg.Obs.Counter("lp.rhs_attempts").Add(delta.RHSAttempts)
			cfg.Obs.Counter("lp.rhs_hits").Add(delta.RHSHits)
			cfg.Obs.Gauge("lp.warm_hit_ratio").Set(delta.WarmHitRatio())
		}
		if cfg.EvalCache != nil {
			d := cfg.EvalCache.Stats().Sub(cacheBefore)
			cfg.Obs.Counter("evalcache.hits").Add(d.Hits)
			cfg.Obs.Counter("evalcache.misses").Add(d.Misses)
			cfg.Obs.Counter("evalcache.evictions").Add(d.Evictions)
			cfg.Obs.Counter("evalcache.bypasses").Add(d.Bypasses)
			cfg.Obs.Gauge("evalcache.entries").Set(float64(d.Entries))
		}
		cfg.Obs.Histogram("search.elapsed.ms").Observe(float64(res.Elapsed) / float64(time.Millisecond))
		res.Telemetry = cfg.Obs.Snapshot()
	}
	return res, nil
}

// aggregateStop folds per-restart outcomes into the search-level StopReason.
func aggregateStop(ctx context.Context, outcomes []RestartOutcome) StopReason {
	if err := ctx.Err(); err != nil {
		return ctxStopReason(err)
	}
	sawConverged, sawNonFault := false, false
	for _, o := range outcomes {
		if o.Stop == StopConverged {
			sawConverged = true
		}
		if o.Stop != StopFaulted {
			sawNonFault = true
		}
	}
	switch {
	case !sawNonFault:
		return StopFaulted
	case sawConverged:
		return StopConverged
	default:
		return StopPatience
	}
}

// runRestart executes one trajectory of Eq. 5. It never propagates panics or
// component errors: each outer iteration's compute runs under a recover()
// boundary, and a fault retires only this restart (recorded in the outcome).
func runRestart(ctx context.Context, target *AttackTarget, cfg GradientConfig, restart int,
	improve func(ratio, sys, opt float64, x []float64, iter int),
	count func(evals, grads, lps int),
	recordFault func(*ComponentError),
	so *searchObs,
) (out RestartOutcome) {
	out = RestartOutcome{Restart: restart, Stop: StopConverged}
	r := rng.New(cfg.Seed + uint64(restart)*0x9e3779b97f4a7c15)
	n := target.InputDim
	nSlots := 0
	if target.PS != nil {
		nSlots = len(routingFor(target.PS).slotPair)
	}
	if target.PS == nil {
		// Non-TE target: no routing substrate, so no feasibility term.
		cfg.Mode = DirectAscent
	}

	// Initialize the search point inside the box. Mixing dense and sparse
	// starts diversifies restarts: sparse starts match the adversarial
	// demand shape of Figure 5.
	x := make([]float64, n)
	if restart%2 == 0 {
		for i := range x {
			x[i] = r.Float64() * target.MaxDemand * 0.5
		}
	} else {
		for i := range x {
			if r.Float64() < 0.15 {
				x[i] = r.Float64() * target.MaxDemand
			}
		}
	}
	fLogits := make([]float64, nSlots)
	lambda := cfg.LambdaInit
	cTarget := cfg.ConstraintTarget
	if cTarget == 0 {
		cTarget = 1
	}
	mus := make([]float64, len(cfg.Constraints))
	var velocity []float64
	if cfg.Momentum > 0 {
		velocity = make([]float64, n)
	}

	// Step sizes are relative to the demand scale so that alpha=0.01 moves
	// demands by ~1% of the box per step, matching the paper's convention.
	stepD := cfg.AlphaD * target.MaxDemand
	stepF := cfg.AlphaF
	stepL := cfg.AlphaL

	demS, demE := target.DemandStart, target.DemandStart+target.DemandLen

	// Per-restart scratch for the constraint gradients, reused across
	// iterations (constraintMLU writes into these).
	gD := make([]float64, demE-demS)
	gF := make([]float64, len(fLogits))

	bestLocal := 0.0
	stale := 0
	evalFaults := 0
	evals, grads, lps := 0, 0, 0
	defer func() {
		out.BestRatio = bestLocal
		count(evals, grads, lps)
	}()

	for iter := 0; iter < cfg.Iters; iter++ {
		if err := ctx.Err(); err != nil {
			out.Stop = ctxStopReason(err)
			return out
		}
		var cMLU float64
		var ctxErr error
		stage := "fault-injector"
		cerr := contained(restart, iter, &stage, func() {
			if cfg.FaultInjector != nil {
				if err := cfg.FaultInjector(restart, iter, x); err != nil {
					panic(err)
				}
			}
			for inner := 0; inner < cfg.T; inner++ {
				// Gradient of the system's MLU with respect to the full input,
				// assembled stage by stage via the chain rule.
				stage = "pipeline-grad"
				g, err := target.Pipeline.GradCtx(ctx, x)
				if err != nil {
					ctxErr = err
					return
				}
				gNorm := normalizeInPlace(g)
				grads++

				if cfg.Mode == Lagrangian {
					stage = "constraint-mlu"
					cMLU = target.constraintMLU(x[demS:demE], fLogits, gD, gF)
					// Ascend d on  M_adv + λ·(MLU(d,f)−1).
					dNorm := normalizeInPlace(gD)
					for i := demS; i < demE; i++ {
						gNorm[i] += lambda * dNorm[i-demS]
					}
					// Ascend f on  λ·MLU(d,f).
					fNorm := normalizeInPlace(gF)
					for i := range fLogits {
						fLogits[i] += stepF * lambda * fNorm[i]
					}
				}
				if len(cfg.Constraints) > 0 {
					stage = "input-constraints"
					applyConstraints(cfg.Constraints, mus, x, gNorm, stepL)
				}
				stage = "ascent-step"
				if velocity != nil {
					for i := range velocity {
						velocity[i] = cfg.Momentum*velocity[i] + gNorm[i]
					}
					gNorm = velocity
				}
				for i := range x {
					x[i] += stepD * gNorm[i]
					if x[i] < 0 {
						x[i] = 0
					}
					if x[i] > target.MaxDemand {
						x[i] = target.MaxDemand
					}
				}
			}
		})
		if ctxErr != nil {
			out.Stop = ctxStopReason(ctxErr)
			return out
		}
		if cerr != nil {
			recordFault(cerr)
			out.Stop = StopFaulted
			out.Fault = cerr
			return out
		}
		if cfg.Mode == Lagrangian {
			// Descend λ on the constraint violation (outer minimization).
			lambda -= stepL * (cMLU - cTarget)
		}
		out.Iters = iter + 1
		so.steps[restart].Inc()

		if (iter+1)%cfg.EvalEvery == 0 || iter == cfg.Iters-1 {
			ratio, sys, opt, cached, err := target.ratioCachedCtx(ctx, cfg.EvalCache, x)
			if !cached {
				evals++
				lps++
			}
			if err != nil {
				if ce := ctx.Err(); ce != nil {
					out.Stop = ctxStopReason(ce)
					return out
				}
				// A non-optimal LP status (or any other eval failure)
				// mid-search rejects this scoring step instead of propagating
				// a garbage MLU into the search: the trajectory continues from
				// the same iterate, and only persistent failure retires the
				// restart.
				fault := &ComponentError{Restart: restart, Iter: iter, Stage: "ratio-eval", Err: err}
				recordFault(fault)
				so.rejects[restart].Inc()
				evalFaults++
				if evalFaults >= maxConsecutiveEvalFaults {
					out.Stop = StopFaulted
					out.Fault = fault
					return out
				}
				stale++
				if cfg.Patience > 0 && stale >= cfg.Patience {
					out.Stop = StopPatience
					return out
				}
				continue
			}
			evalFaults = 0
			if ratio > bestLocal {
				bestLocal = ratio
				stale = 0
				improve(ratio, sys, opt, x, iter)
			} else {
				stale++
				if cfg.Patience > 0 && stale >= cfg.Patience {
					out.Stop = StopPatience
					return out
				}
			}
		}
	}
	return out
}

// runBatchedRestarts executes every restart's Eq. 5 trajectory in lock-step:
// one [A, n] batch of the A still-active restarts per inner step, so the
// pipeline sweep and the constraint term run as single batched tape builds
// instead of A scalar ones. Each restart's arithmetic — initialization,
// normalization, multiplier updates, eval cadence, Patience — replicates
// runRestart exactly, and the batched stages guarantee per-row values match
// the scalar path bitwise, so both engines discover identical ratios.
//
// Patience and fault containment retire restarts individually via an
// active-set mask: retired rows are simply not gathered into the batch,
// while the [R, n] state storage keeps its shape (no reallocation
// mid-search). Per-row work (fault injection, gradient post-processing,
// ratio evaluation) runs under per-row recover() boundaries, so a panic in
// one restart's row retires only that row; because per-row arithmetic is
// independent of the batch size, the surviving rows' trajectories are
// bitwise unchanged. A panic inside a shared batched stage cannot be
// attributed to one row and retires every active restart (ComponentError
// with Restart == -1) — still returning the best-so-far result rather than
// crashing.
func runBatchedRestarts(ctx context.Context, target *AttackTarget, cfg GradientConfig, workers int,
	improve func(ratio, sys, opt float64, x []float64, iter int),
	count func(evals, grads, lps int),
	recordFault func(*ComponentError),
	so *searchObs,
) []RestartOutcome {
	n := target.InputDim
	R := cfg.Restarts
	nSlots := 0
	if target.PS != nil {
		nSlots = len(routingFor(target.PS).slotPair)
	}
	if target.PS == nil {
		cfg.Mode = DirectAscent
	}

	// Per-restart state, row r belongs to restart r for the whole search.
	// Initialization replays runRestart's RNG streams verbatim.
	X := linalg.NewMatrix(R, n)
	for restart := 0; restart < R; restart++ {
		r := rng.New(cfg.Seed + uint64(restart)*0x9e3779b97f4a7c15)
		x := X.Row(restart)
		if restart%2 == 0 {
			for i := range x {
				x[i] = r.Float64() * target.MaxDemand * 0.5
			}
		} else {
			for i := range x {
				if r.Float64() < 0.15 {
					x[i] = r.Float64() * target.MaxDemand
				}
			}
		}
	}
	fLog := linalg.NewMatrix(R, nSlots)
	lambda := make([]float64, R)
	for r := range lambda {
		lambda[r] = cfg.LambdaInit
	}
	cTarget := cfg.ConstraintTarget
	if cTarget == 0 {
		cTarget = 1
	}
	mus := make([][]float64, R)
	for r := range mus {
		mus[r] = make([]float64, len(cfg.Constraints))
	}
	var velocity *linalg.Matrix
	if cfg.Momentum > 0 {
		velocity = linalg.NewMatrix(R, n)
	}
	active := make([]bool, R)
	bestLocal := make([]float64, R)
	stale := make([]int, R)
	evalFaults := make([]int, R)
	for r := range active {
		active[r] = true
	}
	outcomes := make([]RestartOutcome, R)
	for r := range outcomes {
		outcomes[r] = RestartOutcome{Restart: r, Stop: StopConverged}
	}
	defer func() {
		for r := range outcomes {
			outcomes[r].BestRatio = bestLocal[r]
		}
	}()
	retire := func(r int, reason StopReason, fault *ComponentError) {
		active[r] = false
		outcomes[r].Stop = reason
		outcomes[r].Fault = fault
	}
	stopActive := func(reason StopReason) {
		for r := 0; r < R; r++ {
			if active[r] {
				retire(r, reason, nil)
			}
		}
	}

	stepD := cfg.AlphaD * target.MaxDemand
	stepF := cfg.AlphaF
	stepL := cfg.AlphaL
	demS, demE := target.DemandStart, target.DemandStart+target.DemandLen
	demLen := demE - demS

	// Batch scratch, sized for the full R and re-sliced to the active count.
	Xa := linalg.NewMatrix(R, n)
	idx := make([]int, 0, R)
	demB := make([]float64, R*demLen)
	flB := make([]float64, R*nSlots)
	gDb := make([]float64, R*demLen)
	gFb := make([]float64, R*nSlots)
	cMLU := make([]float64, R)
	onesSeed := make([]float64, R)
	for i := range onesSeed {
		onesSeed[i] = 1
	}
	type evalResult struct {
		ratio, sys, opt float64
		cached          bool
		err             error
		fault           *ComponentError
	}
	evalRes := make([]evalResult, R)

	evals, grads, lps := 0, 0, 0
	defer func() { count(evals, grads, lps) }()

	for iter := 0; iter < cfg.Iters; iter++ {
		if err := ctx.Err(); err != nil {
			stopActive(ctxStopReason(err))
			return outcomes
		}
		// Deterministic fault injection happens before the batch is gathered,
		// under a per-row boundary, so a faulted row never enters this
		// iteration's batch and the surviving rows see the same batch they
		// would in a run where the faulted restart never existed.
		if cfg.FaultInjector != nil {
			for r := 0; r < R; r++ {
				if !active[r] {
					continue
				}
				stage := "fault-injector"
				row := r
				cerr := contained(row, iter, &stage, func() {
					if err := cfg.FaultInjector(row, iter, X.Row(row)); err != nil {
						panic(err)
					}
				})
				if cerr != nil {
					recordFault(cerr)
					retire(r, StopFaulted, cerr)
				}
			}
		}
		idx = idx[:0]
		for r := 0; r < R; r++ {
			if active[r] {
				idx = append(idx, r)
			}
		}
		A := len(idx)
		if A == 0 {
			break
		}
		for j, r := range idx {
			copy(Xa.Row(j), X.Row(r))
		}
		xa := &linalg.Matrix{Rows: A, Cols: n, Data: Xa.Data[:A*n]}
		ones := &linalg.Matrix{Rows: A, Cols: 1, Data: onesSeed[:A]}

		for inner := 0; inner < cfg.T; inner++ {
			// Shared batched sweeps: a panic here spans all active rows and
			// cannot be attributed, so it faults every remaining restart (the
			// result still carries everything found so far).
			var G *linalg.Matrix
			var ctxErr error
			stage := "pipeline-batch-vjp"
			cerr := contained(-1, iter, &stage, func() {
				G, ctxErr = target.Pipeline.BatchVJPCtx(ctx, xa, ones)
				if ctxErr != nil {
					return
				}
				grads += A
				if cfg.Mode == Lagrangian {
					for j, r := range idx {
						copy(demB[j*demLen:(j+1)*demLen], xa.Row(j)[demS:demE])
						copy(flB[j*nSlots:(j+1)*nSlots], fLog.Row(r))
					}
					stage = "constraint-mlu"
					target.constraintMLUBatch(demB[:A*demLen], flB[:A*nSlots], A,
						gDb[:A*demLen], gFb[:A*nSlots], cMLU[:A], onesSeed[:A])
				}
			})
			if ctxErr != nil {
				stopActive(ctxStopReason(ctxErr))
				return outcomes
			}
			if cerr != nil {
				recordFault(cerr)
				for _, r := range idx {
					if active[r] {
						retire(r, StopFaulted, cerr)
					}
				}
				return outcomes
			}
			for j, r := range idx {
				if !active[r] {
					continue
				}
				jj, rr := j, r
				stage := "row-update"
				cerr := contained(rr, iter, &stage, func() {
					gNorm := normalizeInPlace(G.Row(jj))
					if cfg.Mode == Lagrangian {
						dNorm := normalizeInPlace(gDb[jj*demLen : (jj+1)*demLen])
						for i := demS; i < demE; i++ {
							gNorm[i] += lambda[rr] * dNorm[i-demS]
						}
						fNorm := normalizeInPlace(gFb[jj*nSlots : (jj+1)*nSlots])
						fl := fLog.Row(rr)
						for i := range fl {
							fl[i] += stepF * lambda[rr] * fNorm[i]
						}
					}
					if len(cfg.Constraints) > 0 {
						stage = "input-constraints"
						applyConstraints(cfg.Constraints, mus[rr], xa.Row(jj), gNorm, stepL)
					}
					stage = "ascent-step"
					if velocity != nil {
						v := velocity.Row(rr)
						for i := range v {
							v[i] = cfg.Momentum*v[i] + gNorm[i]
						}
						gNorm = v
					}
					x := xa.Row(jj)
					for i := range x {
						x[i] += stepD * gNorm[i]
						if x[i] < 0 {
							x[i] = 0
						}
						if x[i] > target.MaxDemand {
							x[i] = target.MaxDemand
						}
					}
				})
				if cerr != nil {
					recordFault(cerr)
					retire(r, StopFaulted, cerr)
				}
			}
		}
		if cfg.Mode == Lagrangian {
			for j, r := range idx {
				if !active[r] {
					continue
				}
				lambda[r] -= stepL * (cMLU[j] - cTarget)
			}
		}
		// Rows that faulted mid-iteration keep their pre-iteration state in X
		// (their partially updated Xa row is discarded).
		for j, r := range idx {
			if !active[r] {
				continue
			}
			copy(X.Row(r), xa.Row(j))
			outcomes[r].Iters = iter + 1
			so.steps[r].Inc()
		}

		if (iter+1)%cfg.EvalEvery == 0 || iter == cfg.Iters-1 {
			// True-ratio scoring (LP + scalar pipeline eval) is per-restart
			// work with no batch structure; fan it out across workers. Each
			// job runs under its own recover() boundary so an eval panic
			// faults one row, not the pool.
			w := workers
			if w > A {
				w = A
			}
			var wg sync.WaitGroup
			jobs := make(chan int)
			for g := 0; g < w; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := range jobs {
						r := idx[j]
						if !active[r] {
							continue
						}
						var er evalResult
						stage := "ratio-eval"
						er.fault = contained(r, iter, &stage, func() {
							er.ratio, er.sys, er.opt, er.cached, er.err = target.ratioCachedCtx(ctx, cfg.EvalCache, X.Row(r))
						})
						evalRes[j] = er
					}
				}()
			}
			for j := range idx {
				jobs <- j
			}
			close(jobs)
			wg.Wait()
			for j, r := range idx {
				if !active[r] {
					continue
				}
				er := evalRes[j]
				if !er.cached {
					evals++
					lps++
				}
				if er.fault != nil {
					recordFault(er.fault)
					retire(r, StopFaulted, er.fault)
					continue
				}
				if er.err != nil {
					if ce := ctx.Err(); ce != nil {
						stopActive(ctxStopReason(ce))
						return outcomes
					}
					// Step rejected: same semantics as the scalar engine.
					fault := &ComponentError{Restart: r, Iter: iter, Stage: "ratio-eval", Err: er.err}
					recordFault(fault)
					so.rejects[r].Inc()
					evalFaults[r]++
					if evalFaults[r] >= maxConsecutiveEvalFaults {
						retire(r, StopFaulted, fault)
						continue
					}
					stale[r]++
					if cfg.Patience > 0 && stale[r] >= cfg.Patience {
						retire(r, StopPatience, nil)
					}
					continue
				}
				evalFaults[r] = 0
				if er.ratio > bestLocal[r] {
					bestLocal[r] = er.ratio
					stale[r] = 0
					improve(er.ratio, er.sys, er.opt, X.Row(r), iter)
				} else {
					stale[r]++
					if cfg.Patience > 0 && stale[r] >= cfg.Patience {
						retire(r, StopPatience, nil)
					}
				}
			}
		}
	}
	return outcomes
}

// normalizeInPlace scales a gradient to unit infinity-norm (sign-preserving)
// so that step sizes have a consistent meaning across pipeline scales.
// Returns the slice for convenience.
func normalizeInPlace(g []float64) []float64 {
	m := 0.0
	for _, v := range g {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	if m == 0 {
		return g
	}
	inv := 1 / m
	for i := range g {
		g[i] *= inv
	}
	return g
}
