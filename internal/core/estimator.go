package core

import (
	"runtime"
	"sync"

	"repro/internal/linalg"
	"repro/internal/rng"
)

// fdComponent wraps an opaque component with a central finite-difference
// VJP: column j of the Jacobian is (f(x + h e_j) − f(x − h e_j)) / 2h, and
// the VJP is the cotangent dotted against each column. Probes across input
// dimensions run in parallel.
type fdComponent struct {
	inner   Component
	step    float64
	workers int
}

// WithFiniteDiff wraps a component with a finite-difference gradient
// estimator using the given probe step. The wrapped component's Forward
// must be safe for concurrent use.
func WithFiniteDiff(c Component, step float64) Differentiable {
	if step <= 0 {
		step = 1e-5
	}
	return &fdComponent{inner: c, step: step, workers: runtime.NumCPU()}
}

// Name implements Component.
func (f *fdComponent) Name() string { return f.inner.Name() + "+fd" }

// Forward implements Component.
func (f *fdComponent) Forward(x []float64) []float64 { return f.inner.Forward(x) }

// VJP implements Differentiable by sampling the function around x.
func (f *fdComponent) VJP(x, ybar []float64) []float64 {
	n := len(x)
	grad := make([]float64, n)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < f.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled perturbation buffer per worker, filled once: each
			// job only touches coordinate j and restores it, so there is no
			// per-job copy of x.
			xp := linalg.GetVec(n)
			defer linalg.PutVec(xp)
			copy(xp, x)
			for j := range jobs {
				xp[j] = x[j] + f.step
				fp := f.inner.Forward(xp)
				xp[j] = x[j] - f.step
				fm := f.inner.Forward(xp)
				xp[j] = x[j]
				s := 0.0
				for i := range ybar {
					s += ybar[i] * (fp[i] - fm[i])
				}
				grad[j] = s / (2 * f.step)
			}
		}()
	}
	for j := 0; j < n; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	return grad
}

// spsaComponent estimates the VJP with simultaneous perturbation (SPSA):
// each sample perturbs ALL input coordinates with a random ±1 vector Δ and
// uses (g(x+hΔ) − g(x−hΔ)) / 2h · Δ⁻¹ as an unbiased gradient estimate of
// the scalar g(x) = ȳᵀf(x). Needs O(samples) function evaluations total,
// independent of the input dimension — the cheap end of the gray-box
// spectrum.
type spsaComponent struct {
	inner   Component
	step    float64
	samples int

	mu sync.Mutex
	r  *rng.RNG
}

// WithSPSA wraps a component with an SPSA gradient estimator averaging the
// given number of two-point probes.
func WithSPSA(c Component, step float64, samples int, seed uint64) Differentiable {
	if step <= 0 {
		step = 1e-4
	}
	if samples < 1 {
		samples = 8
	}
	return &spsaComponent{inner: c, step: step, samples: samples, r: rng.New(seed)}
}

// Name implements Component.
func (s *spsaComponent) Name() string { return s.inner.Name() + "+spsa" }

// Forward implements Component.
func (s *spsaComponent) Forward(x []float64) []float64 { return s.inner.Forward(x) }

// VJP implements Differentiable.
func (s *spsaComponent) VJP(x, ybar []float64) []float64 {
	n := len(x)
	grad := make([]float64, n)
	delta := linalg.GetVec(n)
	xp := linalg.GetVec(n)
	xm := linalg.GetVec(n)
	defer linalg.PutVec(delta)
	defer linalg.PutVec(xp)
	defer linalg.PutVec(xm)
	for k := 0; k < s.samples; k++ {
		s.mu.Lock()
		for j := range delta {
			if s.r.Float64() < 0.5 {
				delta[j] = 1
			} else {
				delta[j] = -1
			}
		}
		s.mu.Unlock()
		for j := range x {
			xp[j] = x[j] + s.step*delta[j]
			xm[j] = x[j] - s.step*delta[j]
		}
		fp := s.inner.Forward(xp)
		fm := s.inner.Forward(xm)
		gp, gm := 0.0, 0.0
		for i := range ybar {
			gp += ybar[i] * fp[i]
			gm += ybar[i] * fm[i]
		}
		d := (gp - gm) / (2 * s.step)
		for j := range grad {
			grad[j] += d / delta[j]
		}
	}
	inv := 1 / float64(s.samples)
	for j := range grad {
		grad[j] *= inv
	}
	return grad
}
