package core

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/rng"
)

// fdComponent wraps an opaque component with a central finite-difference
// VJP: column j of the Jacobian is (f(x + h e_j) − f(x − h e_j)) / 2h, and
// the VJP is the cotangent dotted against each column. Probes across input
// dimensions run in parallel.
type fdComponent struct {
	inner   Component
	step    float64
	workers int
}

// WithFiniteDiff wraps a component with a finite-difference gradient
// estimator using the given probe step. The wrapped component's Forward
// must be safe for concurrent use.
func WithFiniteDiff(c Component, step float64) Differentiable {
	if step <= 0 {
		step = 1e-5
	}
	return &fdComponent{inner: c, step: step, workers: runtime.NumCPU()}
}

// Name implements Component.
func (f *fdComponent) Name() string { return f.inner.Name() + "+fd" }

// Forward implements Component.
func (f *fdComponent) Forward(x []float64) []float64 { return f.inner.Forward(x) }

// Instrument forwards pipeline (de)instrumentation to the wrapped component.
func (f *fdComponent) Instrument(reg *obs.Registry) {
	if in, ok := f.inner.(Instrumentable); ok {
		in.Instrument(reg)
	}
}

// VJP implements Differentiable by sampling the function around x. When the
// wrapped component advertises SparseProbeEvaluator, probes go through its
// incremental fast path ((index, delta) pairs instead of full vectors); the
// sparse path reproduces this function's arithmetic bitwise.
func (f *fdComponent) VJP(x, ybar []float64) []float64 {
	n := len(x)
	grad := make([]float64, n)
	if spe, ok := f.inner.(SparseProbeEvaluator); ok {
		f.sparseVJPInto(nil, spe, x, ybar, grad)
		return grad
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < f.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled perturbation buffer per worker, filled once: each
			// job only touches coordinate j and restores it, so there is no
			// per-job copy of x.
			xp := linalg.GetVec(n)
			defer linalg.PutVec(xp)
			copy(xp, x)
			for j := range jobs {
				xp[j] = x[j] + f.step
				fp := f.inner.Forward(xp)
				xp[j] = x[j] - f.step
				fm := f.inner.Forward(xp)
				xp[j] = x[j]
				s := 0.0
				for i := range ybar {
					s += ybar[i] * (fp[i] - fm[i])
				}
				grad[j] = s / (2 * f.step)
			}
		}()
	}
	for j := 0; j < n; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	return grad
}

// VJPCtx implements CtxDifferentiable: one FD VJP costs 2n forward
// evaluations, so cancellation is observed per coordinate. The feeder stops
// enqueuing jobs once ctx fires and workers skip remaining work while still
// draining the channel, so no goroutine ever blocks on an abandoned send.
func (f *fdComponent) VJPCtx(ctx context.Context, x, ybar []float64) ([]float64, error) {
	if ctx.Done() == nil {
		return f.VJP(x, ybar), nil
	}
	n := len(x)
	grad := make([]float64, n)
	if spe, ok := f.inner.(SparseProbeEvaluator); ok {
		if err := f.sparseVJPInto(ctx, spe, x, ybar, grad); err != nil {
			return nil, err
		}
		return grad, nil
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < f.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			xp := linalg.GetVec(n)
			defer linalg.PutVec(xp)
			copy(xp, x)
			for j := range jobs {
				if ctx.Err() != nil {
					continue // keep draining so the feeder never blocks
				}
				xp[j] = x[j] + f.step
				fp := f.inner.Forward(xp)
				xp[j] = x[j] - f.step
				fm := f.inner.Forward(xp)
				xp[j] = x[j]
				s := 0.0
				for i := range ybar {
					s += ybar[i] * (fp[i] - fm[i])
				}
				grad[j] = s / (2 * f.step)
			}
		}()
	}
	for j := 0; j < n && ctx.Err() == nil; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return grad, nil
}

// fdBatchChunk is how many coordinates' ± probes are packed into one batch
// before evaluating the wrapped component: 2·fdBatchChunk probe rows per
// sweep keeps the probe matrix cache-resident while amortizing the batched
// forward over many samples.
const fdBatchChunk = 16

// BatchForward implements BatchComponent by delegating to the inner
// component (natively batched when it can be).
func (f *fdComponent) BatchForward(xs *linalg.Matrix) *linalg.Matrix {
	return batchForwardStage(f.inner, xs)
}

// BatchVJP implements BatchDifferentiable: rows are independent FD
// estimates, and within each row the ±h probes are packed into probe
// batches evaluated through the same batched engine. Each coordinate's
// estimate uses exactly the scalar path's arithmetic, so batched and scalar
// VJPs agree bitwise.
func (f *fdComponent) BatchVJP(xs, ybars *linalg.Matrix) *linalg.Matrix {
	if spe, ok := f.inner.(SparseProbeEvaluator); ok {
		grads, _ := f.sparseBatchVJP(nil, spe, xs, ybars)
		return grads
	}
	R, n := xs.Rows, xs.Cols
	grads := linalg.NewMatrix(R, n)
	workers := f.workers
	if workers > R {
		workers = R
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probes := linalg.NewMatrix(2*fdBatchChunk, n)
			for r := range rows {
				x, ybar, grad := xs.Row(r), ybars.Row(r), grads.Row(r)
				for j0 := 0; j0 < n; j0 += fdBatchChunk {
					j1 := min(j0+fdBatchChunk, n)
					nb := j1 - j0
					for jj := 0; jj < nb; jj++ {
						pp, pm := probes.Row(2*jj), probes.Row(2*jj+1)
						copy(pp, x)
						copy(pm, x)
						pp[j0+jj] = x[j0+jj] + f.step
						pm[j0+jj] = x[j0+jj] - f.step
					}
					sub := &linalg.Matrix{Rows: 2 * nb, Cols: n, Data: probes.Data[:2*nb*n]}
					outs := batchForwardStage(f.inner, sub)
					for jj := 0; jj < nb; jj++ {
						fp, fm := outs.Row(2*jj), outs.Row(2*jj+1)
						s := 0.0
						for i := range ybar {
							s += ybar[i] * (fp[i] - fm[i])
						}
						grad[j0+jj] = s / (2 * f.step)
					}
				}
			}
		}()
	}
	for r := 0; r < R; r++ {
		rows <- r
	}
	close(rows)
	wg.Wait()
	return grads
}

// BatchVJPCtx implements BatchCtxDifferentiable: cancellation is observed
// between rows and probe chunks; partially estimated rows are discarded by
// the caller (the search never uses a gradient from a cancelled sweep).
func (f *fdComponent) BatchVJPCtx(ctx context.Context, xs, ybars *linalg.Matrix) (*linalg.Matrix, error) {
	if ctx.Done() == nil {
		return f.BatchVJP(xs, ybars), nil
	}
	if spe, ok := f.inner.(SparseProbeEvaluator); ok {
		return f.sparseBatchVJP(ctx, spe, xs, ybars)
	}
	R, n := xs.Rows, xs.Cols
	grads := linalg.NewMatrix(R, n)
	workers := f.workers
	if workers > R {
		workers = R
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			probes := linalg.NewMatrix(2*fdBatchChunk, n)
			for r := range rows {
				if ctx.Err() != nil {
					continue // keep draining so the feeder never blocks
				}
				x, ybar, grad := xs.Row(r), ybars.Row(r), grads.Row(r)
				for j0 := 0; j0 < n; j0 += fdBatchChunk {
					if ctx.Err() != nil {
						break
					}
					j1 := min(j0+fdBatchChunk, n)
					nb := j1 - j0
					for jj := 0; jj < nb; jj++ {
						pp, pm := probes.Row(2*jj), probes.Row(2*jj+1)
						copy(pp, x)
						copy(pm, x)
						pp[j0+jj] = x[j0+jj] + f.step
						pm[j0+jj] = x[j0+jj] - f.step
					}
					sub := &linalg.Matrix{Rows: 2 * nb, Cols: n, Data: probes.Data[:2*nb*n]}
					outs := batchForwardStage(f.inner, sub)
					for jj := 0; jj < nb; jj++ {
						fp, fm := outs.Row(2*jj), outs.Row(2*jj+1)
						s := 0.0
						for i := range ybar {
							s += ybar[i] * (fp[i] - fm[i])
						}
						grad[j0+jj] = s / (2 * f.step)
					}
				}
			}
		}()
	}
	for r := 0; r < R && ctx.Err() == nil; r++ {
		rows <- r
	}
	close(rows)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return grads, nil
}

// spsaComponent estimates the VJP with simultaneous perturbation (SPSA):
// each sample perturbs ALL input coordinates with a random ±1 vector Δ and
// uses (g(x+hΔ) − g(x−hΔ)) / 2h · Δ⁻¹ as an unbiased gradient estimate of
// the scalar g(x) = ȳᵀf(x). Needs O(samples) function evaluations total,
// independent of the input dimension — the cheap end of the gray-box
// spectrum.
type spsaComponent struct {
	inner   Component
	step    float64
	samples int

	mu sync.Mutex
	r  *rng.RNG
}

// WithSPSA wraps a component with an SPSA gradient estimator averaging the
// given number of two-point probes.
func WithSPSA(c Component, step float64, samples int, seed uint64) Differentiable {
	if step <= 0 {
		step = 1e-4
	}
	if samples < 1 {
		samples = 8
	}
	return &spsaComponent{inner: c, step: step, samples: samples, r: rng.New(seed)}
}

// Name implements Component.
func (s *spsaComponent) Name() string { return s.inner.Name() + "+spsa" }

// Forward implements Component.
func (s *spsaComponent) Forward(x []float64) []float64 { return s.inner.Forward(x) }

// VJP implements Differentiable.
func (s *spsaComponent) VJP(x, ybar []float64) []float64 {
	n := len(x)
	grad := make([]float64, n)
	delta := linalg.GetVec(n)
	xp := linalg.GetVec(n)
	xm := linalg.GetVec(n)
	defer linalg.PutVec(delta)
	defer linalg.PutVec(xp)
	defer linalg.PutVec(xm)
	for k := 0; k < s.samples; k++ {
		s.mu.Lock()
		for j := range delta {
			if s.r.Float64() < 0.5 {
				delta[j] = 1
			} else {
				delta[j] = -1
			}
		}
		s.mu.Unlock()
		for j := range x {
			xp[j] = x[j] + s.step*delta[j]
			xm[j] = x[j] - s.step*delta[j]
		}
		fp := s.inner.Forward(xp)
		fm := s.inner.Forward(xm)
		gp, gm := 0.0, 0.0
		for i := range ybar {
			gp += ybar[i] * fp[i]
			gm += ybar[i] * fm[i]
		}
		d := (gp - gm) / (2 * s.step)
		for j := range grad {
			grad[j] += d / delta[j]
		}
	}
	inv := 1 / float64(s.samples)
	for j := range grad {
		grad[j] *= inv
	}
	return grad
}

// VJPCtx implements CtxDifferentiable: cancellation is observed between
// two-point samples. An aborted call leaves the shared RNG stream advanced by
// the samples already drawn; the caller discards the whole sweep, so the
// stream position only matters for runs that complete — which consume exactly
// the same draws as the plain VJP.
func (s *spsaComponent) VJPCtx(ctx context.Context, x, ybar []float64) ([]float64, error) {
	if ctx.Done() == nil {
		return s.VJP(x, ybar), nil
	}
	n := len(x)
	grad := make([]float64, n)
	delta := linalg.GetVec(n)
	xp := linalg.GetVec(n)
	xm := linalg.GetVec(n)
	defer linalg.PutVec(delta)
	defer linalg.PutVec(xp)
	defer linalg.PutVec(xm)
	for k := 0; k < s.samples; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		for j := range delta {
			if s.r.Float64() < 0.5 {
				delta[j] = 1
			} else {
				delta[j] = -1
			}
		}
		s.mu.Unlock()
		for j := range x {
			xp[j] = x[j] + s.step*delta[j]
			xm[j] = x[j] - s.step*delta[j]
		}
		fp := s.inner.Forward(xp)
		fm := s.inner.Forward(xm)
		gp, gm := 0.0, 0.0
		for i := range ybar {
			gp += ybar[i] * fp[i]
			gm += ybar[i] * fm[i]
		}
		d := (gp - gm) / (2 * s.step)
		for j := range grad {
			grad[j] += d / delta[j]
		}
	}
	inv := 1 / float64(s.samples)
	for j := range grad {
		grad[j] *= inv
	}
	return grad, nil
}

// BatchForward implements BatchComponent by delegating to the inner
// component.
func (s *spsaComponent) BatchForward(xs *linalg.Matrix) *linalg.Matrix {
	return batchForwardStage(s.inner, xs)
}

// BatchVJPCtx implements BatchCtxDifferentiable: cancellation is observed
// between rows (each row costs 2·samples forward evaluations).
func (s *spsaComponent) BatchVJPCtx(ctx context.Context, xs, ybars *linalg.Matrix) (*linalg.Matrix, error) {
	if ctx.Done() == nil {
		return s.BatchVJP(xs, ybars), nil
	}
	R := xs.Rows
	grads := linalg.NewMatrix(R, xs.Cols)
	for r := 0; r < R; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row, err := s.VJPCtx(ctx, xs.Row(r), ybars.Row(r))
		if err != nil {
			return nil, err
		}
		copy(grads.Row(r), row)
	}
	return grads, nil
}

// BatchVJP implements BatchDifferentiable. Rows run sequentially (the RNG is
// shared state), but each row's 2·samples probe points are packed into one
// batch and evaluated through the batched engine. The ± deltas for a row are
// drawn in the same order as the scalar VJP draws them, so a batched row
// matches a scalar call made at the same point in the RNG stream.
func (s *spsaComponent) BatchVJP(xs, ybars *linalg.Matrix) *linalg.Matrix {
	R, n := xs.Rows, xs.Cols
	grads := linalg.NewMatrix(R, n)
	probes := linalg.NewMatrix(2*s.samples, n)
	deltas := linalg.NewMatrix(s.samples, n)
	for r := 0; r < R; r++ {
		x, ybar, grad := xs.Row(r), ybars.Row(r), grads.Row(r)
		s.mu.Lock()
		for k := 0; k < s.samples; k++ {
			d := deltas.Row(k)
			for j := range d {
				if s.r.Float64() < 0.5 {
					d[j] = 1
				} else {
					d[j] = -1
				}
			}
		}
		s.mu.Unlock()
		for k := 0; k < s.samples; k++ {
			d := deltas.Row(k)
			xp, xm := probes.Row(2*k), probes.Row(2*k+1)
			for j := range x {
				xp[j] = x[j] + s.step*d[j]
				xm[j] = x[j] - s.step*d[j]
			}
		}
		outs := batchForwardStage(s.inner, probes)
		for k := 0; k < s.samples; k++ {
			d := deltas.Row(k)
			fp, fm := outs.Row(2*k), outs.Row(2*k+1)
			gp, gm := 0.0, 0.0
			for i := range ybar {
				gp += ybar[i] * fp[i]
				gm += ybar[i] * fm[i]
			}
			est := (gp - gm) / (2 * s.step)
			for j := range grad {
				grad[j] += est / d[j]
			}
		}
		inv := 1 / float64(s.samples)
		for j := range grad {
			grad[j] *= inv
		}
	}
	return grads
}
