package core

import (
	"context"
	"sync"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// SparseProber evaluates single-coordinate perturbations of one base point.
// It is the probe-side contract of the incremental-evaluation fast path: the
// implementation keeps whatever state it needs (per-link loads, a resident
// max) to answer f(x + delta·e_index) in time proportional to what the
// coordinate touches, not to the component size.
//
// A prober is bound to the base point passed to SparseProber and is used by
// a single goroutine; concurrency comes from creating one prober per worker.
type SparseProber interface {
	// Probe returns f(x + delta·e_index). The returned slice is owned by the
	// prober and only valid until the next Probe or Close call — callers
	// needing both sides of a central difference must copy the first.
	Probe(index int, delta float64) []float64
	// Close releases the prober's resources (typically back to a pool).
	Close()
}

// SupportCertifier is an optional capability of a SparseProber: from its
// resident state the prober names every coordinate whose ±delta probe could
// change the component's output. The contract is one-sided and exact — any
// index NOT in the returned set is GUARANTEED to probe to the resident
// output bitwise on both sides, so its central difference is exactly zero
// and an estimator may report a zero derivative there without probing and
// without approximation. Indices the certificate includes conservatively
// (probes that turn out to be zero anyway) only cost the probes. The
// returned slice is freshly allocated and owned by the caller; it must be
// re-obtained after the prober's base point changes.
type SupportCertifier interface {
	CertifiedSupport(delta float64) []int
}

// SparseProbeEvaluator is an optional capability of an opaque Component: the
// finite-difference estimator detects it and drives gradient estimation with
// (index, delta) probes instead of full-vector forwards. Implementations
// must guarantee a probe is EXACTLY the value Forward would return at the
// perturbed point, so the sparse and dense estimators produce bitwise
// identical gradients — and therefore identical search trajectories.
type SparseProbeEvaluator interface {
	Component
	// SparseProber returns a prober for base point x. The prober may retain
	// x's backing array until Close; callers must not mutate x while probing.
	SparseProber(x []float64) SparseProber
}

// DenseProbes hides a component's SparseProbeEvaluator capability (if any),
// forcing the finite-difference estimator back onto full-vector forwards.
// Used to opt out of the fast path and as the baseline in equivalence tests
// and benchmarks.
func DenseProbes(c Component) Component { return &denseProbes{inner: c} }

type denseProbes struct{ inner Component }

func (d *denseProbes) Name() string                  { return d.inner.Name() }
func (d *denseProbes) Forward(x []float64) []float64 { return d.inner.Forward(x) }

// Instrument still forwards: hiding the sparse probes must not also hide
// the component's telemetry.
func (d *denseProbes) Instrument(reg *obs.Registry) {
	if in, ok := d.inner.(Instrumentable); ok {
		in.Instrument(reg)
	}
}

// sparseVJPInto estimates grad via per-coordinate sparse probes, using
// exactly the scalar FD arithmetic (copy fp, probe fm, dot against ybar) so
// the result is bitwise identical to the dense path whenever the prober
// honors the exactness contract. A nil done channel skips cancellation
// checks. Returns ctx.Err() when cancelled.
func (f *fdComponent) sparseVJPInto(ctx context.Context, spe SparseProbeEvaluator, x, ybar, grad []float64) error {
	n := len(x)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < f.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prober := spe.SparseProber(x)
			defer prober.Close()
			fpBuf := linalg.GetVec(len(ybar))
			defer linalg.PutVec(fpBuf)
			for j := range jobs {
				if ctx != nil && ctx.Err() != nil {
					continue // keep draining so the feeder never blocks
				}
				fp := prober.Probe(j, f.step)
				copy(fpBuf, fp)
				fm := prober.Probe(j, -f.step)
				s := 0.0
				for i := range ybar {
					s += ybar[i] * (fpBuf[i] - fm[i])
				}
				grad[j] = s / (2 * f.step)
			}
		}()
	}
	if ctx == nil {
		for j := 0; j < n; j++ {
			jobs <- j
		}
	} else {
		for j := 0; j < n && ctx.Err() == nil; j++ {
			jobs <- j
		}
	}
	close(jobs)
	wg.Wait()
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// sparseBatchVJP is the batched-row counterpart: rows are independent base
// points, each worker binds one prober per row and sweeps its coordinates.
func (f *fdComponent) sparseBatchVJP(ctx context.Context, spe SparseProbeEvaluator, xs, ybars *linalg.Matrix) (*linalg.Matrix, error) {
	R, n := xs.Rows, xs.Cols
	grads := linalg.NewMatrix(R, n)
	workers := f.workers
	if workers > R {
		workers = R
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var fpBuf []float64
			for r := range rows {
				if ctx != nil && ctx.Err() != nil {
					continue // keep draining so the feeder never blocks
				}
				x, ybar, grad := xs.Row(r), ybars.Row(r), grads.Row(r)
				if fpBuf == nil {
					fpBuf = linalg.GetVec(len(ybar))
					defer linalg.PutVec(fpBuf)
				}
				prober := spe.SparseProber(x)
				for j := 0; j < n; j++ {
					if ctx != nil && j%64 == 0 && ctx.Err() != nil {
						break
					}
					fp := prober.Probe(j, f.step)
					copy(fpBuf, fp)
					fm := prober.Probe(j, -f.step)
					s := 0.0
					for i := range ybar {
						s += ybar[i] * (fpBuf[i] - fm[i])
					}
					grad[j] = s / (2 * f.step)
				}
				prober.Close()
			}
		}()
	}
	if ctx == nil {
		for r := 0; r < R; r++ {
			rows <- r
		}
	} else {
		for r := 0; r < R && ctx.Err() == nil; r++ {
			rows <- r
		}
	}
	close(rows)
	wg.Wait()
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return grads, nil
}
