package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

// countingTarget builds an AttackTarget whose scoring is a cheap
// RatioOverride counting invocations, so cache hits are observable as
// suppressed calls.
func countingTarget(calls *int) *AttackTarget {
	return &AttackTarget{
		InputDim:  3,
		DemandLen: 3,
		MaxDemand: 1,
		RatioOverride: func(x []float64) (float64, float64, float64, error) {
			*calls++
			s := 0.0
			for _, v := range x {
				s += v
			}
			return 1 + s, 2 + s, 3 + s, nil
		},
	}
}

func TestEvalCacheHitMissRoundTrip(t *testing.T) {
	calls := 0
	target := countingTarget(&calls)
	cache := NewEvalCache(64, 1e-9)
	ctx := context.Background()

	x := []float64{0.25, 0.5, 0.75}
	r1, s1, o1, cached, err := target.ratioCachedCtx(ctx, cache, x)
	if err != nil || cached {
		t.Fatalf("first eval: cached=%v err=%v, want miss", cached, err)
	}
	r2, s2, o2, cached, err := target.ratioCachedCtx(ctx, cache, x)
	if err != nil || !cached {
		t.Fatalf("second eval: cached=%v err=%v, want hit", cached, err)
	}
	if r1 != r2 || s1 != s2 || o1 != o2 {
		t.Fatalf("cached values drifted: (%v %v %v) != (%v %v %v)", r2, s2, o2, r1, s1, o1)
	}
	if calls != 1 {
		t.Fatalf("underlying scorer ran %d times, want 1", calls)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestEvalCacheQuantization(t *testing.T) {
	calls := 0
	target := countingTarget(&calls)
	cache := NewEvalCache(64, 1e-3)
	ctx := context.Background()

	a := []float64{0.1000, 0.2, 0.3}
	b := []float64{0.10004, 0.2, 0.3} // within quantum/2 of a → same key
	c := []float64{0.1020, 0.2, 0.3}  // two quanta away → distinct key

	if _, _, _, cached, _ := target.ratioCachedCtx(ctx, cache, a); cached {
		t.Fatal("a should miss")
	}
	if _, _, _, cached, _ := target.ratioCachedCtx(ctx, cache, b); !cached {
		t.Fatal("b quantizes onto a and should hit")
	}
	if _, _, _, cached, _ := target.ratioCachedCtx(ctx, cache, c); cached {
		t.Fatal("c is outside the quantum and should miss")
	}
	if calls != 2 {
		t.Fatalf("underlying scorer ran %d times, want 2", calls)
	}
}

func TestEvalCacheBoundedEviction(t *testing.T) {
	calls := 0
	target := countingTarget(&calls)
	const capacity = 32
	cache := NewEvalCache(capacity, 1e-9)
	ctx := context.Background()

	// perShard rounds capacity up to shard granularity; the bound the cache
	// promises is perShard entries in each of the 16 shards.
	bound := int64(((capacity + evalCacheShards - 1) / evalCacheShards) * evalCacheShards)
	for i := 0; i < 4*capacity; i++ {
		x := []float64{float64(i), float64(2 * i), float64(3 * i)}
		if _, _, _, _, err := target.ratioCachedCtx(ctx, cache, x); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Entries > bound {
		t.Fatalf("cache holds %d entries, bound %d", st.Entries, bound)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions after overfilling the cache")
	}
	if st.Misses != int64(4*capacity) {
		t.Fatalf("misses = %d, want %d (all points distinct)", st.Misses, 4*capacity)
	}
}

func TestEvalCacheNeverCachesErrors(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	target := &AttackTarget{
		InputDim:  1,
		DemandLen: 1,
		MaxDemand: 1,
		RatioOverride: func(x []float64) (float64, float64, float64, error) {
			calls++
			return 0, 0, 0, boom
		},
	}
	cache := NewEvalCache(8, 1e-9)
	ctx := context.Background()
	x := []float64{1}
	for i := 0; i < 3; i++ {
		if _, _, _, cached, err := target.ratioCachedCtx(ctx, cache, x); err != boom || cached {
			t.Fatalf("eval %d: cached=%v err=%v, want fresh boom", i, cached, err)
		}
	}
	if calls != 3 {
		t.Fatalf("scorer ran %d times, want 3 (errors must not be cached)", calls)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("error result was cached: %+v", st)
	}
}

func TestEvalCacheNilPassthrough(t *testing.T) {
	calls := 0
	target := countingTarget(&calls)
	ctx := context.Background()
	x := []float64{0.1, 0.2, 0.3}
	for i := 0; i < 2; i++ {
		if _, _, _, cached, err := target.ratioCachedCtx(ctx, nil, x); cached || err != nil {
			t.Fatalf("nil cache: cached=%v err=%v", cached, err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache should always score: calls = %d", calls)
	}
}

func TestEvalCacheStatsSub(t *testing.T) {
	a := EvalCacheStats{Hits: 10, Misses: 7, Evictions: 3, Entries: 5}
	b := EvalCacheStats{Hits: 4, Misses: 2, Evictions: 1, Entries: 9}
	d := a.Sub(b)
	if d.Hits != 6 || d.Misses != 5 || d.Evictions != 2 {
		t.Fatalf("Sub counters wrong: %+v", d)
	}
	if d.Entries != 5 {
		t.Fatalf("Entries is a level and must carry from the receiver: %+v", d)
	}
}

// TestEvalCacheConcurrent hammers one cache from many goroutines over a
// small key set; run with -race this checks the sharded locking.
func TestEvalCacheConcurrent(t *testing.T) {
	target := &AttackTarget{
		InputDim:  2,
		DemandLen: 2,
		MaxDemand: 1,
		RatioOverride: func(x []float64) (float64, float64, float64, error) {
			return x[0] + x[1], x[0], x[1], nil
		},
	}
	cache := NewEvalCache(128, 1e-9)
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := float64(i % 40)
				r, _, _, _, err := target.ratioCachedCtx(ctx, cache, []float64{k, 2 * k})
				if err != nil || r != 3*k {
					select {
					case errCh <- errors.New("bad cached value"):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatal("expected concurrent hits")
	}
	if st.Hits+st.Misses != 8*500 {
		t.Fatalf("lost lookups: hits+misses = %d, want %d", st.Hits+st.Misses, 8*500)
	}
}

// TestEvalCacheAddOnInsertRegistry pins the subscriber-registry contract:
// any number of live subscribers, each fresh insert fans out to all of them,
// and a remove token detaches exactly its own subscription. The last block
// is the regression for the shared-cache clobbering bug: removing one
// subscriber (what a finishing search does) must not silence the others.
func TestEvalCacheAddOnInsertRegistry(t *testing.T) {
	cache := NewEvalCache(1<<8, 0)
	var a, b int
	removeA := cache.AddOnInsert(func(x []float64, ratio, sys, opt float64) { a++ })
	removeB := cache.AddOnInsert(func(x []float64, ratio, sys, opt float64) { b++ })

	insert := func(v float64) {
		x := []float64{v, v, v}
		k, s, ok := cache.keys(x)
		if !ok {
			t.Fatalf("finite point %v not keyable", x)
		}
		cache.put(x, k, s, v, v, 1)
	}
	insert(1)
	if a != 1 || b != 1 {
		t.Fatalf("both subscribers must see the insert: a=%d b=%d", a, b)
	}
	// Search A finishes: its removal must leave B attached.
	removeA()
	insert(2)
	if a != 1 {
		t.Fatalf("removed subscriber still firing: a=%d", a)
	}
	if b != 2 {
		t.Fatalf("surviving subscriber was clobbered by another's removal: b=%d", b)
	}
	// Removal is idempotent and cannot touch other subscriptions.
	removeA()
	insert(3)
	if b != 3 {
		t.Fatalf("idempotent remove detached a live subscriber: b=%d", b)
	}
	removeB()
	insert(4)
	if a != 1 || b != 3 {
		t.Fatalf("subscribers fired after removal: a=%d b=%d", a, b)
	}
}

// TestEvalCacheSetOnInsertShimScoped pins the deprecated shim's scope: it
// replaces only its own previous hook and never an AddOnInsert subscription.
func TestEvalCacheSetOnInsertShimScoped(t *testing.T) {
	cache := NewEvalCache(1<<8, 0)
	var reg, legacy1, legacy2 int
	remove := cache.AddOnInsert(func(x []float64, ratio, sys, opt float64) { reg++ })
	cache.SetOnInsert(func(x []float64, ratio, sys, opt float64) { legacy1++ })
	// Last-wins applies to the legacy slot only.
	cache.SetOnInsert(func(x []float64, ratio, sys, opt float64) { legacy2++ })

	insert := func(v float64) {
		x := []float64{v}
		k, s, ok := cache.keys(x)
		if !ok {
			t.Fatalf("finite point %v not keyable", x)
		}
		cache.put(x, k, s, v, v, 1)
	}
	insert(1)
	if legacy1 != 0 || legacy2 != 1 || reg != 1 {
		t.Fatalf("legacy last-wins broke: legacy1=%d legacy2=%d reg=%d", legacy1, legacy2, reg)
	}
	// SetOnInsert(nil) clears the legacy slot, not the registry.
	cache.SetOnInsert(nil)
	insert(2)
	if legacy2 != 1 {
		t.Fatalf("legacy hook fired after SetOnInsert(nil): %d", legacy2)
	}
	if reg != 2 {
		t.Fatalf("SetOnInsert(nil) clobbered an AddOnInsert subscription: reg=%d", reg)
	}
	remove()
}

// TestEvalCacheNaNInfBypass is the regression for the implementation-defined
// float->int conversion in key hashing: NaN or infinite demand coordinates
// must bypass the cache (fresh scoring, no insert, no platform-dependent
// key), while finite vectors keep caching normally around them.
func TestEvalCacheNaNInfBypass(t *testing.T) {
	calls := 0
	target := countingTarget(&calls)
	cache := NewEvalCache(64, 1e-9)
	ctx := context.Background()

	for i, x := range [][]float64{
		{math.NaN(), 0.5, 0.75},
		{0.25, math.Inf(1), 0.75},
		{0.25, 0.5, math.Inf(-1)},
	} {
		for rep := 0; rep < 2; rep++ {
			_, _, _, cached, err := target.ratioCachedCtx(ctx, cache, x)
			if err != nil {
				t.Fatalf("vector %d rep %d: %v", i, rep, err)
			}
			if cached {
				t.Fatalf("vector %d rep %d: non-finite point served from cache", i, rep)
			}
		}
	}
	if calls != 6 {
		t.Fatalf("scorer ran %d times, want 6 (every non-finite eval fresh)", calls)
	}
	st := cache.Stats()
	if st.Entries != 0 {
		t.Fatalf("non-finite point was inserted: %+v", st)
	}
	if st.Bypasses != 6 {
		t.Fatalf("bypasses = %d, want 6", st.Bypasses)
	}
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("bypassed lookups leaked into hit/miss accounting: %+v", st)
	}

	// A NaN-free vector still caches.
	x := []float64{0.25, 0.5, 0.75}
	if _, _, _, cached, _ := target.ratioCachedCtx(ctx, cache, x); cached {
		t.Fatal("finite point should miss first")
	}
	if _, _, _, cached, _ := target.ratioCachedCtx(ctx, cache, x); !cached {
		t.Fatal("finite point should hit second")
	}
}

// TestEvalCacheKeySaturation pins the overflow clamp: finite coordinates
// whose quantized magnitude exceeds int64 saturate to the range limit, so
// the key is deterministic (and equal for any two such magnitudes, which is
// an acceptable collision) rather than implementation-defined.
func TestEvalCacheKeySaturation(t *testing.T) {
	cache := NewEvalCache(64, 1e-9) // inv = 1e9: 1e300 overflows int64 by far
	kA, sA, ok := cache.keys([]float64{1e300})
	if !ok {
		t.Fatal("finite overflow must stay keyable (saturated), not bypass")
	}
	kB, sB, ok := cache.keys([]float64{1e301})
	if !ok {
		t.Fatal("finite overflow must stay keyable (saturated), not bypass")
	}
	if kA != kB || sA != sB {
		t.Fatal("saturated keys must be deterministic and equal at the clamp")
	}
	kneg, _, ok := cache.keys([]float64{-1e300})
	if !ok {
		t.Fatal("negative overflow must stay keyable")
	}
	if kneg == kA {
		t.Fatal("positive and negative saturation must not collide")
	}
	// The exact int64 boundary converts cleanly.
	if _, _, ok := cache.keys([]float64{float64(math.MaxInt64) * 1e-9}); !ok {
		t.Fatal("boundary magnitude must be keyable")
	}
}
