package core

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

// linComp is a cheap, perfectly learnable opaque stage: h(x) = [w·x + c].
type linComp struct {
	w []float64
	c float64
}

func (l *linComp) Name() string { return "lin" }

func (l *linComp) Forward(x []float64) []float64 {
	s := l.c
	for i, v := range x {
		s += l.w[i] * v
	}
	return []float64{s}
}

// swapComp lets a test flip the underlying function mid-run (the
// "component changed under the surrogate" scenario).
type swapComp struct {
	mu sync.Mutex
	fn func(x []float64) []float64
}

func (s *swapComp) Name() string { return "swap" }

func (s *swapComp) Forward(x []float64) []float64 {
	s.mu.Lock()
	fn := s.fn
	s.mu.Unlock()
	return fn(x)
}

func (s *swapComp) set(fn func(x []float64) []float64) {
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

// coldEstimator returns an estimator that can never earn trust: huge warmup,
// zero training. Its behavior must be exactly the FD path.
func coldEstimator(c Component, inDim int) *SurrogateEstimator {
	cfg := DefaultSurrogateGradConfig(7)
	cfg.Surrogate.Warmup = 1 << 30
	cfg.Surrogate.TrainSteps = 0
	return WithSurrogateGradient(c, inDim, 1, cfg)
}

func TestSurrogateEstimatorColdMatchesFDBitwise(t *testing.T) {
	inner := &linComp{w: []float64{0.5, -1.25, 2}, c: 0.3}
	est := coldEstimator(inner, 3)
	fd := WithFiniteDiff(&linComp{w: []float64{0.5, -1.25, 2}, c: 0.3}, 1e-4)
	r := rng.New(11)
	ybar := []float64{1}
	for trial := 0; trial < 20; trial++ {
		x := []float64{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)}
		got := est.VJP(x, ybar)
		want := fd.VJP(x, ybar)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: cold estimator VJP[%d] = %v, FD = %v", trial, i, got[i], want[i])
			}
		}
	}
	// Batched rows must agree with the scalar path too.
	xs := linalg.NewMatrix(3, 3)
	ybars := linalg.NewMatrix(3, 1)
	for rr := 0; rr < 3; rr++ {
		for j := 0; j < 3; j++ {
			xs.Row(rr)[j] = r.Uniform(-1, 1)
		}
		ybars.Row(rr)[0] = 1
	}
	grads := est.BatchVJP(xs, ybars)
	for rr := 0; rr < 3; rr++ {
		want := fd.VJP(xs.Row(rr), ybar)
		for j := range want {
			if grads.Row(rr)[j] != want[j] {
				t.Fatalf("batched row %d col %d: %v != %v", rr, j, grads.Row(rr)[j], want[j])
			}
		}
	}
	st := est.Stats()
	if st.SurrogateVJPs != 0 || st.EvalsSaved != 0 {
		t.Fatalf("cold estimator served surrogate VJPs: %+v", st)
	}
	if st.FDVJPs != 23 {
		t.Fatalf("FD VJPs = %d, want 23", st.FDVJPs)
	}
	// Each FD row bills 2n probes as true evaluations.
	if st.TrueEvals != 23*6 {
		t.Fatalf("TrueEvals = %d, want %d", st.TrueEvals, 23*6)
	}
	if st.Trusted {
		t.Fatal("cold estimator reports trusted")
	}
}

func TestSurrogateEstimatorEarnsTrustAndServes(t *testing.T) {
	inner := &linComp{w: []float64{0.8, -0.5, 0.3}, c: 0.1}
	cfg := DefaultSurrogateGradConfig(3)
	cfg.Surrogate.Warmup = 24
	cfg.Surrogate.TrainSteps = 6
	cfg.Surrogate.LR = 5e-3
	cfg.TrustWindow = 3
	cfg.DisagreeTol = 0.25
	est := WithSurrogateGradient(inner, 3, 1, cfg)
	r := rng.New(4)
	for i := 0; i < 600; i++ {
		est.Forward([]float64{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)})
		if est.Stats().Trusted {
			break
		}
	}
	st := est.Stats()
	if !st.Warm || !st.Trusted {
		t.Fatalf("estimator never earned trust: %+v", st)
	}
	if st.Promotions < 1 || st.VerifyAccepts < int64(cfg.TrustWindow) {
		t.Fatalf("trust bookkeeping wrong: %+v", st)
	}
	// Trusted VJPs are guided-sparse: the surrogate ranks the probes, true
	// central differences supply every served derivative. A dense-support
	// gradient (all w nonzero) probes every coordinate — full FD cost, zero
	// savings — and must therefore match the true gradient w essentially
	// exactly.
	before := st
	g := est.VJP([]float64{0.2, -0.1, 0.4}, []float64{1})
	st = est.Stats()
	if st.SurrogateVJPs != before.SurrogateVJPs+1 {
		t.Fatalf("trusted VJP not surrogate-guided: %+v", st)
	}
	if st.EvalsSaved != before.EvalsSaved {
		t.Fatalf("dense-support row reported savings: %d -> %d", before.EvalsSaved, st.EvalsSaved)
	}
	if st.TrueEvals != before.TrueEvals+6 {
		t.Fatalf("guided dense row spent %d true evals, want 6", st.TrueEvals-before.TrueEvals)
	}
	for i, w := range inner.w {
		if math.Abs(g[i]-w) > 1e-6 {
			t.Fatalf("guided grad[%d] = %v, want %v (true central difference)", i, g[i], w)
		}
	}
}

// sparseLinComp depends on a strict subset of its inputs: h(x) = [w·x + c]
// with most w zero, so finite differences on unused coordinates are exactly
// zero — the structure that lets the guided-sparse sweep stop early.
func TestSurrogateEstimatorGuidedSparseSavesProbes(t *testing.T) {
	const n = 6
	inner := &linComp{w: []float64{4, 0, 0, -3, 0, 0}, c: 0.2}
	cfg := DefaultSurrogateGradConfig(12)
	cfg.Surrogate.Warmup = 24
	cfg.Surrogate.TrainSteps = 8
	cfg.Surrogate.LR = 5e-3
	cfg.TrustWindow = 3
	cfg.DisagreeTol = 0.25
	cfg.GuidedBlock = 2
	est := WithSurrogateGradient(inner, n, 1, cfg)
	r := rng.New(21)
	sample := func() []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Uniform(-1, 1)
		}
		return x
	}
	for i := 0; i < 2000; i++ {
		est.Forward(sample())
		if est.Stats().Trusted {
			break
		}
	}
	if !est.Stats().Trusted {
		t.Fatalf("estimator never earned trust: %+v", est.Stats())
	}
	// A well-trained surrogate ranks the two live coordinates first; with
	// block size 2 the sweep probes {0,3}, sees the next block contribute
	// exactly zero, and stops. Ranking is learned, so allow a few rows for
	// at least one early stop rather than demanding it on the first.
	saved := false
	var g []float64
	for trial := 0; trial < 5 && !saved; trial++ {
		before := est.Stats()
		g = est.VJP(sample(), []float64{1})
		st := est.Stats()
		if st.SurrogateVJPs != before.SurrogateVJPs+1 {
			t.Fatalf("trusted VJP not surrogate-guided: %+v", st)
		}
		if st.EvalsSaved > before.EvalsSaved {
			saved = true
			spent := st.TrueEvals - before.TrueEvals
			if spent+st.EvalsSaved-before.EvalsSaved != 2*n {
				t.Fatalf("spent %d + saved %d != 2n = %d",
					spent, st.EvalsSaved-before.EvalsSaved, 2*n)
			}
		}
		// Every served derivative is a true central difference: live
		// coordinates match w, dead coordinates are exactly zero whether
		// probed (FD delta is bitwise zero) or skipped.
		for i, w := range inner.w {
			if w != 0 && math.Abs(g[i]-w) > 1e-6 {
				t.Fatalf("guided grad[%d] = %v, want %v", i, g[i], w)
			}
			if w == 0 && g[i] != 0 {
				t.Fatalf("dead coordinate %d served nonzero gradient %v", i, g[i])
			}
		}
	}
	if !saved {
		t.Fatalf("guided sweep never stopped early on a 2-of-%d-support gradient: %+v", n, est.Stats())
	}
}

// trustedEstimator trains a small estimator on a linear target until it is
// trusted; t.Fatal on failure.
func trustedEstimator(t *testing.T, inner Component, seed uint64) *SurrogateEstimator {
	t.Helper()
	cfg := DefaultSurrogateGradConfig(seed)
	cfg.Surrogate.Warmup = 24
	cfg.Surrogate.TrainSteps = 6
	cfg.Surrogate.LR = 5e-3
	cfg.TrustWindow = 3
	cfg.DisagreeTol = 0.25
	cfg.VerifyWindow = 5
	est := WithSurrogateGradient(inner, 3, 1, cfg)
	r := rng.New(seed + 1)
	for i := 0; i < 800; i++ {
		est.Forward([]float64{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)})
		if est.Stats().Trusted {
			return est
		}
	}
	t.Fatalf("estimator never earned trust: %+v", est.Stats())
	return nil
}

func TestSurrogateEstimatorDisagreementFallsBack(t *testing.T) {
	sw := &swapComp{}
	lin := &linComp{w: []float64{0.8, -0.5, 0.3}, c: 0.1}
	sw.fn = lin.Forward
	est := trustedEstimator(t, sw, 5)
	// The component changes under the surrogate: verification must notice
	// and demote back to FD probing within DisagreeWindow forwards.
	sw.set(func(x []float64) []float64 { return []float64{10*x[0] - 7} })
	r := rng.New(9)
	for i := 0; i < 20 && est.Stats().Trusted; i++ {
		est.Forward([]float64{r.Uniform(-1, 1), r.Uniform(-1, 1), r.Uniform(-1, 1)})
	}
	st := est.Stats()
	if st.Trusted {
		t.Fatalf("estimator still trusted after the component changed: %+v", st)
	}
	if st.Fallbacks < 1 || st.VerifyRejects < 1 {
		t.Fatalf("fallback bookkeeping wrong: %+v", st)
	}
	// Demoted VJPs are FD-served again.
	before := st.FDVJPs
	est.VJP([]float64{0.1, 0.2, 0.3}, []float64{1})
	if got := est.Stats().FDVJPs; got != before+1 {
		t.Fatalf("post-fallback VJP not FD-served: %d -> %d", before, got)
	}
}

func TestSurrogateEstimatorStepRejectsDemote(t *testing.T) {
	lin := &linComp{w: []float64{0.8, -0.5, 0.3}, c: 0.1}
	est := trustedEstimator(t, lin, 6)
	// One improving eval establishes the best; VerifyWindow consecutive
	// non-improving evals demote the trusted surrogate.
	est.ObserveTrueEval(nil, 2.0, 2, 1)
	for i := 0; i < est.cfg.VerifyWindow; i++ {
		if !est.Stats().Trusted {
			break
		}
		est.ObserveTrueEval(nil, 1.5, 1.5, 1)
	}
	st := est.Stats()
	if st.Trusted {
		t.Fatalf("estimator survived %d rejected steps: %+v", est.cfg.VerifyWindow, st)
	}
	if st.StepRejects != int64(est.cfg.VerifyWindow) || st.Fallbacks != 1 {
		t.Fatalf("step-reject bookkeeping wrong: %+v", st)
	}
	// An improving eval after re-promotion resets the streak; here we just
	// check the counter keeps moving without another demotion while probing.
	est.ObserveTrueEval(nil, 3.0, 3, 1)
	if got := est.Stats().StepRejects; got != st.StepRejects {
		t.Fatalf("improving eval counted as a reject: %d -> %d", st.StepRejects, got)
	}
}

func TestSurrogateEstimatorCheckpointRoundTrip(t *testing.T) {
	lin := &linComp{w: []float64{0.8, -0.5, 0.3}, c: 0.1}
	est := trustedEstimator(t, lin, 8)
	var buf bytes.Buffer
	if err := est.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSurrogateGradConfig(99) // different init seed on purpose
	fresh := WithSurrogateGradient(&linComp{w: []float64{0.8, -0.5, 0.3}, c: 0.1}, 3, 1, cfg)
	if err := fresh.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.25, -0.4, 0.6}
	a, b := est.sur.predict(x), fresh.sur.predict(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored surrogate predicts %v, original %v", b[i], a[i])
		}
	}
	// Shape mismatches must be rejected, not silently truncated.
	narrow := WithSurrogateGradient(&linComp{w: []float64{1, 1}, c: 0}, 2, 1, DefaultSurrogateGradConfig(1))
	if err := narrow.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched checkpoint loaded without error")
	}
}

func TestEvalCacheOnInsertHook(t *testing.T) {
	cache := NewEvalCache(1<<8, 0)
	var mu sync.Mutex
	var got [][]float64
	cache.SetOnInsert(func(x []float64, ratio, sys, opt float64) {
		mu.Lock()
		got = append(got, append([]float64{}, x...))
		mu.Unlock()
	})
	x1 := []float64{1, 2, 3}
	k1, s1, _ := cache.keys(x1)
	cache.put(x1, k1, s1, 2.0, 2, 1)
	if len(got) != 1 {
		t.Fatalf("hook fired %d times after first insert", len(got))
	}
	// A hit must not re-fire the hook.
	if _, _, _, ok := cache.get(k1, s1); !ok {
		t.Fatal("expected a hit")
	}
	// Overwriting the same key is not a fresh insert.
	cache.put(x1, k1, s1, 2.0, 2, 1)
	if len(got) != 1 {
		t.Fatalf("hook fired on overwrite: %d calls", len(got))
	}
	x2 := []float64{4, 5, 6}
	k2, s2, _ := cache.keys(x2)
	cache.put(x2, k2, s2, 3.0, 3, 1)
	if len(got) != 2 {
		t.Fatalf("hook missed a fresh insert: %d calls", len(got))
	}
	// Uninstalling stops observation.
	cache.SetOnInsert(nil)
	x3 := []float64{7, 8, 9}
	k3, s3, _ := cache.keys(x3)
	cache.put(x3, k3, s3, 4.0, 4, 1)
	if len(got) != 2 {
		t.Fatalf("hook fired after SetOnInsert(nil): %d calls", len(got))
	}
}

// obsStage records ObserveTrueEval calls; it is a trivially differentiable
// identity-sum stage so searches run fast.
type obsStage struct {
	mu    sync.Mutex
	calls int
}

func (o *obsStage) Name() string { return "obs" }

func (o *obsStage) Forward(x []float64) []float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return []float64{s}
}

func (o *obsStage) VJP(x, ybar []float64) []float64 {
	g := make([]float64, len(x))
	for i := range g {
		g[i] = ybar[0]
	}
	return g
}

func (o *obsStage) ObserveTrueEval(x []float64, ratio, sys, opt float64) {
	o.mu.Lock()
	o.calls++
	o.mu.Unlock()
}

func (o *obsStage) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.calls
}

func TestGradientSearchFansOutTrueEvalsToObserverStages(t *testing.T) {
	stage := &obsStage{}
	p := NewPipeline(stage)
	target := &AttackTarget{
		Pipeline:  p,
		InputDim:  4,
		MaxDemand: 1,
		RatioOverride: func(x []float64) (float64, float64, float64, error) {
			sys := p.EvalScalar(x)
			return sys, sys, 1, nil
		},
	}
	cache := NewEvalCache(1<<10, 0)
	cfg := DefaultGradientConfig()
	cfg.Iters = 20
	cfg.Restarts = 2
	cfg.EvalEvery = 5
	cfg.Seed = 3
	cfg.EvalCache = cache
	if _, err := GradientSearch(target, cfg); err != nil {
		t.Fatal(err)
	}
	seen := stage.count()
	if seen == 0 {
		t.Fatal("observer stage saw no true evaluations")
	}
	// The hook must be uninstalled when the search returns: further inserts
	// are silent.
	x := []float64{9, 9, 9, 9}
	k, s, _ := cache.keys(x)
	cache.put(x, k, s, 1.5, 1.5, 1)
	if stage.count() != seen {
		t.Fatal("EvalCache hook leaked past the search")
	}
}
