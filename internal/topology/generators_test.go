package topology

import (
	"testing"

	"repro/internal/rng"
)

func TestWaxmanConnectedDeterministic(t *testing.T) {
	for _, n := range []int{2, 10, 60} {
		g := Waxman(n, 3, 5, 10, rng.New(42))
		if g.NumNodes() != n {
			t.Fatalf("n=%d: got %d nodes", n, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Fatalf("n=%d: Waxman graph disconnected", n)
		}
		g2 := Waxman(n, 3, 5, 10, rng.New(42))
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("n=%d: same seed, different edge counts %d vs %d", n, g.NumEdges(), g2.NumEdges())
		}
	}
	// Degree targeting: average undirected degree within ~1 of the target.
	g := Waxman(100, 4, 5, 10, rng.New(7))
	avg := float64(g.NumEdges()) / float64(g.NumNodes()) // directed edges / n = undirected degree
	if avg < 3 || avg > 5 {
		t.Fatalf("average degree %.2f, want ≈4", avg)
	}
	for _, e := range g.Edges() {
		if e.Capacity < 5 || e.Capacity > 10 {
			t.Fatalf("capacity %g outside [5,10]", e.Capacity)
		}
	}
}

func TestPrefAttachConnectedDeterministic(t *testing.T) {
	for _, n := range []int{2, 3, 10, 80} {
		g := PrefAttach(n, 4, 5, 10, rng.New(9))
		if g.NumNodes() != n {
			t.Fatalf("n=%d: got %d nodes", n, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Fatalf("n=%d: PrefAttach graph disconnected", n)
		}
		g2 := PrefAttach(n, 4, 5, 10, rng.New(9))
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("n=%d: same seed, different edge counts", n)
		}
	}
	// Heavy tail: some node should collect well above the attachment count.
	g := PrefAttach(200, 4, 5, 10, rng.New(3))
	maxDeg := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := len(g.Out(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 10 {
		t.Fatalf("max degree %d — no hub formed, not preferential attachment", maxDeg)
	}
}
