// Package topology models directed capacitated networks and provides the
// concrete topologies the paper's evaluation uses: the Abilene backbone
// (§5), the three-node example of Figure 3, and several synthetic shapes
// used by tests and ablations.
package topology

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Edge is a directed capacitated link.
type Edge struct {
	ID       int
	Src, Dst int
	Capacity float64
	Weight   float64 // routing metric (IGP-style); defaults to 1
}

// Graph is a directed multigraph with named nodes and capacitated edges.
// Nodes are dense integers [0, NumNodes). The zero Graph is empty; use New.
type Graph struct {
	names   []string
	nameIdx map[string]int
	edges   []Edge
	out     [][]int // node -> edge IDs leaving it
	in      [][]int // node -> edge IDs entering it
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nameIdx: make(map[string]int)}
}

// AddNode adds a named node and returns its index. Adding an existing name
// returns the existing index.
func (g *Graph) AddNode(name string) int {
	if i, ok := g.nameIdx[name]; ok {
		return i
	}
	i := len(g.names)
	g.names = append(g.names, name)
	g.nameIdx[name] = i
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return i
}

// AddEdge adds a directed edge and returns its ID.
func (g *Graph) AddEdge(src, dst int, capacity, weight float64) int {
	if src < 0 || src >= len(g.names) || dst < 0 || dst >= len(g.names) {
		panic("topology: AddEdge with unknown node")
	}
	if capacity <= 0 {
		panic("topology: AddEdge with non-positive capacity")
	}
	if weight <= 0 {
		weight = 1
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, Src: src, Dst: dst, Capacity: capacity, Weight: weight})
	g.out[src] = append(g.out[src], id)
	g.in[dst] = append(g.in[dst], id)
	return id
}

// AddBiEdge adds a pair of opposite directed edges with the same capacity and
// weight, returning both IDs.
func (g *Graph) AddBiEdge(a, b int, capacity, weight float64) (int, int) {
	return g.AddEdge(a, b, capacity, weight), g.AddEdge(b, a, capacity, weight)
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns a copy of all edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Out returns the IDs of edges leaving node n (shared storage; do not mutate).
func (g *Graph) Out(n int) []int { return g.out[n] }

// In returns the IDs of edges entering node n (shared storage; do not mutate).
func (g *Graph) In(n int) []int { return g.in[n] }

// NodeName returns the name of node i.
func (g *Graph) NodeName(i int) string { return g.names[i] }

// NodeIndex returns the index of a named node, or -1.
func (g *Graph) NodeIndex(name string) int {
	if i, ok := g.nameIdx[name]; ok {
		return i
	}
	return -1
}

// AvgLinkCapacity returns the mean capacity over all directed edges. The
// paper bounds adversarial demands by this value (§5).
func (g *Graph) AvgLinkCapacity() float64 {
	if len(g.edges) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range g.edges {
		s += e.Capacity
	}
	return s / float64(len(g.edges))
}

// TotalCapacity returns the sum of all edge capacities.
func (g *Graph) TotalCapacity() float64 {
	s := 0.0
	for _, e := range g.edges {
		s += e.Capacity
	}
	return s
}

// Pair identifies an ordered source-destination demand pair.
type Pair struct {
	Src, Dst int
}

// AllPairs returns every ordered pair of distinct nodes in deterministic
// (src-major) order — the demand index space for traffic matrices.
func (g *Graph) AllPairs() []Pair {
	n := g.NumNodes()
	pairs := make([]Pair, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				pairs = append(pairs, Pair{s, d})
			}
		}
	}
	return pairs
}

// IsConnected reports whether every node can reach every other node.
func (g *Graph) IsConnected() bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		stack := []int{s}
		seen[s] = true
		count := 1
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, eid := range g.out[u] {
				v := g.edges[eid].Dst
				if !seen[v] {
					seen[v] = true
					count++
					stack = append(stack, v)
				}
			}
		}
		if count != n {
			return false
		}
	}
	return true
}

// WriteTo serializes the graph in the text format understood by Parse:
//
//	node <name>
//	edge <src> <dst> <capacity> <weight>
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, name := range g.names {
		n, err := fmt.Fprintf(w, "node %s\n", name)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, e := range g.edges {
		n, err := fmt.Fprintf(w, "edge %s %s %g %g\n", g.names[e.Src], g.names[e.Dst], e.Capacity, e.Weight)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Parse reads a graph in the WriteTo text format. Unknown node names in edge
// lines are created implicitly. Lines starting with '#' are comments.
func Parse(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topology: line %d: node wants 1 arg", lineNo)
			}
			g.AddNode(fields[1])
		case "edge":
			if len(fields) != 5 {
				return nil, fmt.Errorf("topology: line %d: edge wants 4 args", lineNo)
			}
			src := g.AddNode(fields[1])
			dst := g.AddNode(fields[2])
			cap, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: bad capacity: %v", lineNo, err)
			}
			if cap <= 0 || math.IsInf(cap, 0) || math.IsNaN(cap) {
				return nil, fmt.Errorf("topology: line %d: capacity must be positive and finite, got %v", lineNo, cap)
			}
			w, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: bad weight: %v", lineNo, err)
			}
			if math.IsInf(w, 0) || math.IsNaN(w) {
				return nil, fmt.Errorf("topology: line %d: weight must be finite, got %v", lineNo, w)
			}
			g.AddEdge(src, dst, cap, w)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// SortedNodeNames returns node names in sorted order (testing helper).
func (g *Graph) SortedNodeNames() []string {
	names := make([]string, len(g.names))
	copy(names, g.names)
	sort.Strings(names)
	return names
}
