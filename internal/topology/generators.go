package topology

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// This file holds the large-topology generators behind `tegen -nodes`: the
// Waxman random-geometric model and preferential attachment (Barabási–
// Albert). Both are deterministic given the RNG, always connected (a
// locality-respecting spanning tree comes first), and target an average
// undirected degree rather than a raw edge count — the knob that actually
// controls LP size once K-shortest-path sets are built on top.

// waxmanAlpha/waxmanBeta are the classic parameterization of the edge
// probability p(u,v) = α·exp(−d(u,v)/(β·L)): α scales overall density (the
// degree target supersedes it here), β the reach of long links.
const (
	waxmanAlpha = 0.9
	waxmanBeta  = 0.4
)

// Waxman returns a connected Waxman random graph: n nodes placed uniformly
// in the unit square, a spanning tree connecting each node to its nearest
// already-placed neighbor, then random pairs accepted with probability
// proportional to exp(−d/(β·L)) until the average undirected degree reaches
// avgDegree. Capacities are uniform in [minCap, maxCap].
func Waxman(n int, avgDegree, minCap, maxCap float64, r *rng.RNG) *Graph {
	if n < 2 {
		panic("topology: Waxman needs at least 2 nodes")
	}
	g := New()
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("w%d", i))
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	dist := func(a, b int) float64 {
		return math.Hypot(xs[a]-xs[b], ys[a]-ys[b])
	}

	have := make(map[[2]int]bool)
	link := func(a, b int) {
		g.AddBiEdge(a, b, r.Uniform(minCap, maxCap), 1)
		have[[2]int{a, b}] = true
		have[[2]int{b, a}] = true
	}
	// Spanning tree: nearest already-placed neighbor, so the backbone
	// respects the geometric locality the Waxman probabilities assume.
	for i := 1; i < n; i++ {
		best, bestD := 0, dist(i, 0)
		for j := 1; j < i; j++ {
			if d := dist(i, j); d < bestD {
				best, bestD = j, d
			}
		}
		link(i, best)
	}

	// L normalizes distances; √2 bounds the unit square diagonal.
	const l = math.Sqrt2
	target := int(math.Round(float64(n) * avgDegree / 2))
	maxLinks := n * (n - 1) / 2
	if target > maxLinks {
		target = maxLinks
	}
	links := n - 1
	// Rejection-sample extra links. The attempt cap guards degenerate
	// parameterizations (tiny β on a dense target) from spinning forever.
	for attempts := 0; links < target && attempts < 200*n*n; attempts++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b || have[[2]int{a, b}] {
			continue
		}
		if r.Float64() < waxmanAlpha*math.Exp(-dist(a, b)/(waxmanBeta*l)) {
			link(a, b)
			links++
		}
	}
	return g
}

// PrefAttach returns a connected preferential-attachment (Barabási–Albert)
// graph: a seed clique of m+1 nodes, then each new node attaches to
// m = max(1, round(avgDegree/2)) distinct existing nodes chosen with
// probability proportional to their degree. The heavy-tailed degrees give
// hub-and-spoke structure closer to ISP topologies than uniform randomness.
// Capacities are uniform in [minCap, maxCap].
func PrefAttach(n int, avgDegree, minCap, maxCap float64, r *rng.RNG) *Graph {
	if n < 2 {
		panic("topology: PrefAttach needs at least 2 nodes")
	}
	m := int(math.Round(avgDegree / 2))
	if m < 1 {
		m = 1
	}
	if m > n-1 {
		m = n - 1
	}
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("p%d", i))
	}
	// endpoints lists every edge endpoint once per incidence; sampling it
	// uniformly is degree-proportional sampling.
	endpoints := make([]int, 0, 2*m*n)
	link := func(a, b int) {
		g.AddBiEdge(a, b, r.Uniform(minCap, maxCap), 1)
		endpoints = append(endpoints, a, b)
	}
	seed := m + 1
	if seed > n {
		seed = n
	}
	for a := 0; a < seed; a++ {
		for b := a + 1; b < seed; b++ {
			link(a, b)
		}
	}
	picked := make(map[int]bool, m)
	for v := seed; v < n; v++ {
		for k := range picked {
			delete(picked, k)
		}
		for len(picked) < m {
			t := endpoints[r.Intn(len(endpoints))]
			if t == v || picked[t] {
				continue
			}
			picked[t] = true
			link(v, t)
		}
	}
	return g
}
