package topology

import (
	"fmt"

	"repro/internal/rng"
)

// Abilene returns the Internet2 Abilene backbone used in §5 of the paper:
// 11 PoPs and 14 bidirectional links (28 directed edges). Capacities follow
// the published topology: all OC-192 (~10 Gbps) except Atlanta–Indianapolis,
// which was OC-48 (~2.5 Gbps). Units are Gbps.
func Abilene() *Graph {
	g := New()
	names := []string{
		"NewYork", "Chicago", "WashingtonDC", "Seattle", "Sunnyvale",
		"LosAngeles", "Denver", "KansasCity", "Houston", "Atlanta",
		"Indianapolis",
	}
	for _, n := range names {
		g.AddNode(n)
	}
	link := func(a, b string, cap float64) {
		g.AddBiEdge(g.NodeIndex(a), g.NodeIndex(b), cap, 1)
	}
	const oc192 = 9.92
	const oc48 = 2.48
	link("NewYork", "Chicago", oc192)
	link("NewYork", "WashingtonDC", oc192)
	link("Chicago", "Indianapolis", oc192)
	link("WashingtonDC", "Atlanta", oc192)
	link("Seattle", "Sunnyvale", oc192)
	link("Seattle", "Denver", oc192)
	link("Sunnyvale", "LosAngeles", oc192)
	link("Sunnyvale", "Denver", oc192)
	link("LosAngeles", "Houston", oc192)
	link("Denver", "KansasCity", oc192)
	link("KansasCity", "Houston", oc192)
	link("KansasCity", "Indianapolis", oc192)
	link("Houston", "Atlanta", oc192)
	link("Atlanta", "Indianapolis", oc48)
	return g
}

// Triangle returns the three-node example of Figure 3: nodes 1, 2, 3 with
// bidirectional links 1-2, 1-3 and 2-3, all of capacity 100.
func Triangle() *Graph {
	g := New()
	n1 := g.AddNode("1")
	n2 := g.AddNode("2")
	n3 := g.AddNode("3")
	g.AddBiEdge(n1, n2, 100, 1)
	g.AddBiEdge(n1, n3, 100, 1)
	g.AddBiEdge(n2, n3, 100, 1)
	return g
}

// B4 returns a topology shaped like Google's B4 WAN (12 nodes, 19
// bidirectional links) with uniform 10-unit capacities. Used for scale tests.
func B4() *Graph {
	g := New()
	for i := 0; i < 12; i++ {
		g.AddNode(fmt.Sprintf("b4-%d", i))
	}
	links := [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {3, 5}, {4, 6},
		{5, 6}, {5, 7}, {6, 8}, {7, 8}, {7, 9}, {8, 10}, {9, 10}, {9, 11},
		{10, 11}, {2, 5}, {4, 9},
	}
	for _, l := range links {
		g.AddBiEdge(l[0], l[1], 10, 1)
	}
	return g
}

// Geant returns a topology shaped like the GÉANT European research
// backbone (22 nodes, 36 bidirectional links), with a mix of 10G core and
// 2.5G edge capacities. Used for scale and transferability experiments.
func Geant() *Graph {
	g := New()
	names := []string{
		"AT", "BE", "CH", "CZ", "DE", "DK", "ES", "FR", "GR", "HR", "HU",
		"IE", "IL", "IT", "LU", "NL", "NO", "PL", "PT", "SE", "SI", "UK",
	}
	for _, n := range names {
		g.AddNode(n)
	}
	core := 9.92
	edge := 2.48
	link := func(a, b string, cap float64) {
		g.AddBiEdge(g.NodeIndex(a), g.NodeIndex(b), cap, 1)
	}
	link("UK", "FR", core)
	link("UK", "NL", core)
	link("UK", "IE", edge)
	link("FR", "CH", core)
	link("FR", "ES", core)
	link("FR", "BE", edge)
	link("FR", "LU", edge)
	link("ES", "PT", edge)
	link("ES", "IT", core)
	link("PT", "UK", edge)
	link("NL", "DE", core)
	link("NL", "BE", edge)
	link("BE", "LU", edge)
	link("LU", "DE", edge)
	link("DE", "CH", core)
	link("DE", "DK", core)
	link("DE", "PL", core)
	link("DE", "CZ", core)
	link("DE", "AT", core)
	link("CH", "IT", core)
	link("IT", "AT", core)
	link("IT", "GR", edge)
	link("IT", "IL", edge)
	link("AT", "CZ", edge)
	link("AT", "HU", core)
	link("AT", "SI", edge)
	link("SI", "HR", edge)
	link("HR", "HU", edge)
	link("HU", "PL", edge)
	link("CZ", "PL", edge)
	link("PL", "SE", edge)
	link("DK", "SE", core)
	link("DK", "NO", edge)
	link("SE", "NO", edge)
	link("GR", "IL", edge)
	link("SE", "DE", core)
	return g
}

// Line returns a path graph with n nodes and uniform capacities.
func Line(n int, capacity float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddBiEdge(i, i+1, capacity, 1)
	}
	return g
}

// Ring returns a cycle graph with n nodes and uniform capacities.
func Ring(n int, capacity float64) *Graph {
	g := Line(n, capacity)
	if n > 2 {
		g.AddBiEdge(n-1, 0, capacity, 1)
	}
	return g
}

// Star returns a hub-and-spoke graph: node 0 is the hub.
func Star(spokes int, capacity float64) *Graph {
	g := New()
	hub := g.AddNode("hub")
	for i := 0; i < spokes; i++ {
		s := g.AddNode(fmt.Sprintf("spoke%d", i))
		g.AddBiEdge(hub, s, capacity, 1)
	}
	return g
}

// Random returns a connected random graph: a random spanning tree plus
// `extra` additional random bidirectional links, with capacities drawn
// uniformly from [minCap, maxCap].
func Random(n, extra int, minCap, maxCap float64, r *rng.RNG) *Graph {
	if n < 2 {
		panic("topology: Random needs at least 2 nodes")
	}
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("r%d", i))
	}
	// Random spanning tree: attach each node to a random earlier node.
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		a := perm[i]
		b := perm[r.Intn(i)]
		g.AddBiEdge(a, b, r.Uniform(minCap, maxCap), 1)
	}
	have := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		have[[2]int{e.Src, e.Dst}] = true
	}
	for added := 0; added < extra; {
		a, b := r.Intn(n), r.Intn(n)
		if a == b || have[[2]int{a, b}] {
			continue
		}
		have[[2]int{a, b}] = true
		have[[2]int{b, a}] = true
		g.AddBiEdge(a, b, r.Uniform(minCap, maxCap), 1)
		added++
	}
	return g
}
