package topology

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestAbileneShape(t *testing.T) {
	g := Abilene()
	if got := g.NumNodes(); got != 11 {
		t.Fatalf("Abilene nodes = %d, want 11", got)
	}
	if got := g.NumEdges(); got != 28 {
		t.Fatalf("Abilene directed edges = %d, want 28", got)
	}
	if !g.IsConnected() {
		t.Fatal("Abilene not strongly connected")
	}
}

func TestAbileneCapacities(t *testing.T) {
	g := Abilene()
	oc48 := 0
	for _, e := range g.Edges() {
		if e.Capacity < 3 {
			oc48++
		}
	}
	if oc48 != 2 {
		t.Fatalf("expected exactly 2 OC-48 directed edges (Atlanta-Indianapolis), got %d", oc48)
	}
}

func TestTriangleMatchesFigure3(t *testing.T) {
	g := Triangle()
	if g.NumNodes() != 3 || g.NumEdges() != 6 {
		t.Fatalf("triangle shape wrong: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Capacity != 100 {
			t.Fatalf("Figure 3 requires capacity 100, got %v", e.Capacity)
		}
	}
}

func TestAllPairsCount(t *testing.T) {
	g := Abilene()
	pairs := g.AllPairs()
	if len(pairs) != 11*10 {
		t.Fatalf("AllPairs = %d, want 110", len(pairs))
	}
	seen := make(map[Pair]bool)
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Fatal("AllPairs contains a self pair")
		}
		if seen[p] {
			t.Fatal("AllPairs contains a duplicate")
		}
		seen[p] = true
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	a := g.AddNode("x")
	b := g.AddNode("x")
	if a != b {
		t.Fatal("AddNode created duplicate for same name")
	}
}

func TestAvgLinkCapacity(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(a, b, 10, 1)
	g.AddEdge(b, a, 20, 1)
	if got := g.AvgLinkCapacity(); got != 15 {
		t.Fatalf("AvgLinkCapacity = %v, want 15", got)
	}
	if got := g.TotalCapacity(); got != 30 {
		t.Fatalf("TotalCapacity = %v, want 30", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	g := Abilene()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		e1, e2 := g.Edge(i), g2.Edge(i)
		if g.NodeName(e1.Src) != g2.NodeName(e2.Src) || e1.Capacity != e2.Capacity {
			t.Fatalf("edge %d differs after round trip", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus a b",
		"edge a b xcap 1",
		"edge a b 1 xw",
		"edge a b 1",
		"node",
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("Parse accepted malformed input %q", c)
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	in := "# comment\n\nnode a\nnode b\nedge a b 5 2\n"
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatal("comment/blank handling wrong")
	}
	if e := g.Edge(0); e.Capacity != 5 || e.Weight != 2 {
		t.Fatalf("edge attrs wrong: %+v", e)
	}
}

func TestRandomConnected(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 10; trial++ {
		g := Random(8, 5, 1, 10, r)
		if !g.IsConnected() {
			t.Fatalf("Random graph trial %d not connected", trial)
		}
		if g.NumNodes() != 8 {
			t.Fatal("Random node count wrong")
		}
		if g.NumEdges() != 2*(7+5) {
			t.Fatalf("Random edge count = %d, want %d", g.NumEdges(), 2*(7+5))
		}
	}
}

func TestGeantShape(t *testing.T) {
	g := Geant()
	if g.NumNodes() != 22 {
		t.Fatalf("Geant nodes = %d, want 22", g.NumNodes())
	}
	if g.NumEdges() != 72 {
		t.Fatalf("Geant directed edges = %d, want 72", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Fatal("Geant not strongly connected")
	}
	// Mixed capacities: both core and edge speeds must be present.
	fast, slow := false, false
	for _, e := range g.Edges() {
		if e.Capacity > 5 {
			fast = true
		} else {
			slow = true
		}
	}
	if !fast || !slow {
		t.Fatal("Geant should mix core and edge capacities")
	}
}

func TestBuildersConnected(t *testing.T) {
	for name, g := range map[string]*Graph{
		"B4":       B4(),
		"Line":     Line(5, 10),
		"Ring":     Ring(6, 10),
		"Star":     Star(4, 10),
		"Triangle": Triangle(),
		"Abilene":  Abilene(),
		"Geant":    Geant(),
	} {
		if !g.IsConnected() {
			t.Fatalf("%s is not connected", name)
		}
	}
}

func TestOutInDegreesConsistent(t *testing.T) {
	g := Abilene()
	outSum, inSum := 0, 0
	for n := 0; n < g.NumNodes(); n++ {
		outSum += len(g.Out(n))
		inSum += len(g.In(n))
	}
	if outSum != g.NumEdges() || inSum != g.NumEdges() {
		t.Fatalf("degree sums inconsistent: out=%d in=%d edges=%d", outSum, inSum, g.NumEdges())
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New()
	g.AddNode("a")
	mustPanic := func(f func()) {
		defer func() { _ = recover() }()
		f()
		t.Fatal("expected panic")
	}
	mustPanic(func() { g.AddEdge(0, 5, 1, 1) })
	mustPanic(func() { g.AddNode("b"); g.AddEdge(0, 1, 0, 1) })
}
