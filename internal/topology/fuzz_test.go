package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks that the topology parser never panics and that every
// successfully parsed graph survives a serialize/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("node a\nnode b\nedge a b 1 1\n")
	f.Add("# comment\nedge x y 2.5 3\n")
	f.Add("edge a b -1 1\n")
	f.Add("node\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("serialize failed on parsed graph: %v", err)
		}
		g2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
		}
	})
}
