// Package search implements the black-box baselines of §5: methods that
// treat the learning-enabled system as an opaque function and look for
// adversarial inputs by sampling — random search, hill climbing and
// simulated annealing. They exist to demonstrate what the gray-box analyzer
// is compared against: without gradient information they explore the huge
// demand space blindly and find far smaller performance gaps (Tables 1, 2).
package search

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

// Budget bounds a black-box search: it stops when either MaxEvals ratio
// evaluations have been spent or MaxTime has elapsed (whichever first;
// zero fields mean unlimited, but at least one bound must be set).
type Budget struct {
	MaxEvals int
	MaxTime  time.Duration
}

func (b Budget) validate() error {
	if b.MaxEvals <= 0 && b.MaxTime <= 0 {
		return fmt.Errorf("search: budget needs MaxEvals or MaxTime")
	}
	return nil
}

type budgetTracker struct {
	b     Budget
	start time.Time
	evals int
}

func (t *budgetTracker) exhausted() bool {
	if t.b.MaxEvals > 0 && t.evals >= t.b.MaxEvals {
		return true
	}
	if t.b.MaxTime > 0 && time.Since(t.start) >= t.b.MaxTime {
		return true
	}
	return false
}

// Random runs pure random search: each step samples a fresh input uniformly
// from the box and scores it with the true performance ratio.
func Random(target *core.AttackTarget, budget Budget, seed uint64) (*core.SearchResult, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if err := budget.validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	res := &core.SearchResult{Method: "random search"}
	tr := &budgetTracker{b: budget, start: time.Now()}
	x := make([]float64, target.InputDim)
	for !tr.exhausted() {
		// Alternate dense and sparse samples so the baseline is not
		// strawmanned: sparse demand matrices are where bad inputs live.
		if tr.evals%2 == 0 {
			for i := range x {
				x[i] = r.Float64() * target.MaxDemand
			}
		} else {
			for i := range x {
				x[i] = 0
				if r.Float64() < 0.1 {
					x[i] = r.Float64() * target.MaxDemand
				}
			}
		}
		ratio, sys, opt, err := target.Ratio(x)
		if err != nil {
			return nil, err
		}
		tr.evals++
		if ratio > res.BestRatio {
			res.BestRatio, res.BestSysMLU, res.BestOptMLU = ratio, sys, opt
			res.BestX = append(res.BestX[:0], x...)
			res.TimeToBest = time.Since(tr.start)
			res.Found = true
			res.Trace = append(res.Trace, core.TracePoint{Iter: tr.evals, Ratio: ratio, Elapsed: res.TimeToBest})
		}
	}
	res.Evals = tr.evals
	res.LPEvals = tr.evals
	res.Elapsed = time.Since(tr.start)
	return res, nil
}

// HillClimb runs local search: perturb the incumbent, keep improvements,
// restart when stuck. This is the "local search gets stuck in local optima"
// baseline of §3.1.
func HillClimb(target *core.AttackTarget, budget Budget, seed uint64) (*core.SearchResult, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if err := budget.validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	res := &core.SearchResult{Method: "hill climbing"}
	tr := &budgetTracker{b: budget, start: time.Now()}
	n := target.InputDim

	eval := func(x []float64) (float64, float64, float64, error) {
		tr.evals++
		return target.Ratio(x)
	}
	record := func(ratio, sys, opt float64, x []float64) {
		if ratio > res.BestRatio {
			res.BestRatio, res.BestSysMLU, res.BestOptMLU = ratio, sys, opt
			res.BestX = append(res.BestX[:0], x...)
			res.TimeToBest = time.Since(tr.start)
			res.Found = true
			res.Trace = append(res.Trace, core.TracePoint{Iter: tr.evals, Ratio: ratio, Elapsed: res.TimeToBest})
		}
	}

	for !tr.exhausted() {
		// Fresh start.
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64() * target.MaxDemand
		}
		cur, sys, opt, err := eval(x)
		if err != nil {
			return nil, err
		}
		record(cur, sys, opt, x)
		stuck := 0
		cand := make([]float64, n)
		for stuck < 20 && !tr.exhausted() {
			copy(cand, x)
			// Perturb a random 10% of coordinates.
			k := 1 + n/10
			for j := 0; j < k; j++ {
				i := r.Intn(n)
				cand[i] += r.NormFloat64() * 0.1 * target.MaxDemand
				if cand[i] < 0 {
					cand[i] = 0
				}
				if cand[i] > target.MaxDemand {
					cand[i] = target.MaxDemand
				}
			}
			ratio, sys, opt, err := eval(cand)
			if err != nil {
				return nil, err
			}
			if ratio > cur {
				cur = ratio
				copy(x, cand)
				record(ratio, sys, opt, x)
				stuck = 0
			} else {
				stuck++
			}
		}
	}
	res.Evals = tr.evals
	res.LPEvals = tr.evals
	res.Elapsed = time.Since(tr.start)
	return res, nil
}

// Anneal runs simulated annealing with a geometric cooling schedule.
func Anneal(target *core.AttackTarget, budget Budget, seed uint64) (*core.SearchResult, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if err := budget.validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	res := &core.SearchResult{Method: "simulated annealing"}
	tr := &budgetTracker{b: budget, start: time.Now()}
	n := target.InputDim

	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() * target.MaxDemand
	}
	cur, sys, opt, err := target.Ratio(x)
	if err != nil {
		return nil, err
	}
	tr.evals++
	res.BestRatio, res.BestSysMLU, res.BestOptMLU = cur, sys, opt
	res.BestX = append([]float64{}, x...)
	res.Found = true
	res.TimeToBest = time.Since(tr.start)

	temp := 0.5
	const cooling = 0.995
	cand := make([]float64, n)
	for !tr.exhausted() {
		copy(cand, x)
		k := 1 + n/10
		for j := 0; j < k; j++ {
			i := r.Intn(n)
			cand[i] += r.NormFloat64() * 0.1 * target.MaxDemand
			if cand[i] < 0 {
				cand[i] = 0
			}
			if cand[i] > target.MaxDemand {
				cand[i] = target.MaxDemand
			}
		}
		ratio, sys, opt, err := target.Ratio(cand)
		if err != nil {
			return nil, err
		}
		tr.evals++
		accept := ratio > cur || r.Float64() < math.Exp((ratio-cur)/math.Max(temp, 1e-9))
		if accept {
			cur = ratio
			copy(x, cand)
		}
		if ratio > res.BestRatio {
			res.BestRatio, res.BestSysMLU, res.BestOptMLU = ratio, sys, opt
			res.BestX = append(res.BestX[:0], cand...)
			res.TimeToBest = time.Since(tr.start)
			res.Trace = append(res.Trace, core.TracePoint{Iter: tr.evals, Ratio: ratio, Elapsed: res.TimeToBest})
		}
		temp *= cooling
	}
	res.Evals = tr.evals
	res.LPEvals = tr.evals
	res.Elapsed = time.Since(tr.start)
	return res, nil
}
