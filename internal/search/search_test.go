package search

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/paths"
	"repro/internal/te"
	"repro/internal/topology"
)

// uniformSystem is a cheap hand-written learning-enabled stand-in: it
// always routes with uniform splits. Its performance ratio is exactly
// MLU_uniform(d)/MLU_OPT(d), so the searchers can be unit-tested without
// training any model.
func uniformTarget(t testing.TB) *core.AttackTarget {
	t.Helper()
	ps := paths.NewPathSet(topology.Triangle(), 2)
	splits := te.UniformSplits(ps)
	pipeline := core.NewPipeline(&core.DiffFunc{
		ComponentName: "uniform-system",
		Fn: func(x []float64) []float64 {
			mlu, _ := te.MLU(ps, te.TrafficMatrix(x), splits)
			return []float64{mlu}
		},
		VJPFn: func(x, ybar []float64) []float64 {
			// Subgradient through the argmax link.
			loads := te.LinkLoads(ps, te.TrafficMatrix(x), splits)
			g := ps.Graph
			bestU, arg := 0.0, -1
			for e, l := range loads {
				if u := l / g.Edge(e).Capacity; u > bestU {
					bestU, arg = u, e
				}
			}
			grad := make([]float64, len(x))
			if arg < 0 {
				return grad
			}
			off, _ := ps.Offsets()
			for i, pp := range ps.PairPaths {
				for k, path := range pp {
					onEdge := false
					for _, eid := range path.Edges {
						if eid == arg {
							onEdge = true
							break
						}
					}
					if onEdge {
						grad[i] += ybar[0] * splits[off[i]+k] / g.Edge(arg).Capacity
					}
				}
			}
			return grad
		},
	})
	return &core.AttackTarget{
		Pipeline:    pipeline,
		InputDim:    ps.NumPairs(),
		DemandStart: 0,
		DemandLen:   ps.NumPairs(),
		PS:          ps,
		MaxDemand:   ps.Graph.AvgLinkCapacity(),
	}
}

func TestRandomFindsUniformGap(t *testing.T) {
	tg := uniformTarget(t)
	res, err := Random(tg, Budget{MaxEvals: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform splits on the triangle are suboptimal for concentrated
	// demands; random search must find SOME gap.
	if !res.Found || res.BestRatio <= 1 {
		t.Fatalf("random found no gap against uniform splits: %+v", res.BestRatio)
	}
}

func TestHillClimbImprovesOverInitial(t *testing.T) {
	tg := uniformTarget(t)
	res, err := HillClimb(tg, Budget{MaxEvals: 120}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("hill climb found nothing")
	}
	// The first trace entry is the initial point; later entries must
	// improve on it.
	if len(res.Trace) >= 2 && res.Trace[len(res.Trace)-1].Ratio <= res.Trace[0].Ratio {
		t.Fatal("hill climbing never improved")
	}
}

func TestAnnealAcceptsAndImproves(t *testing.T) {
	tg := uniformTarget(t)
	res, err := Anneal(tg, Budget{MaxEvals: 150}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.BestRatio < 1 {
		t.Fatalf("anneal broken: %v", res.BestRatio)
	}
	if res.Evals != 150 {
		t.Fatalf("anneal spent %d evals, want 150", res.Evals)
	}
}

func TestGradientBeatsBlackBoxOnUniform(t *testing.T) {
	// With the same evaluation budget the gradient method should match or
	// beat the black-box searchers on this analytically simple system.
	tg := uniformTarget(t)
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 200
	cfg.Restarts = 2
	cfg.EvalEvery = 20
	grad, err := core.GradientSearch(tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Random(tg, Budget{MaxEvals: 40}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if grad.BestRatio < rnd.BestRatio*0.95 {
		t.Fatalf("gradient %v worse than random %v on the uniform system", grad.BestRatio, rnd.BestRatio)
	}
	// The true worst case for uniform splits on the triangle: a single
	// demand pair, e.g. 1->2 = 100, gives uniform MLU-ratio... the optimal
	// routes it direct (MLU d/100), uniform puts half on the 2-hop path
	// (longest link load 0.5d). Ratio = 1 is wrong: uniform loads direct
	// link 0.5d -> MLU 0.5d/100; optimal splits across both paths -> MLU
	// (2/3)d/... — just assert a sane bound.
	if grad.BestRatio > 3 {
		t.Fatalf("ratio %v impossible for uniform splits on a triangle", grad.BestRatio)
	}
}

func TestBudgetTimeOnly(t *testing.T) {
	tg := uniformTarget(t)
	res, err := HillClimb(tg, Budget{MaxTime: 100 * time.Millisecond}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals == 0 {
		t.Fatal("no evals under a time budget")
	}
	if res.Elapsed > 5*time.Second {
		t.Fatal("hill climb ignored time budget")
	}
}
