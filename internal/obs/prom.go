package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the dependency-free Prometheus text-exposition encoder: the
// daemon's /metrics endpoint renders a registry Snapshot with it, so any
// Prometheus-compatible scraper can watch the analyzer fleet without this
// repo importing a client library.
//
// Mapping: counters become Prometheus counters, gauges become gauges, and
// the streaming histograms (which keep P² quantile estimates, not buckets)
// become summaries — {quantile="0.5"|"0.95"|"0.99"} sample lines plus the
// conventional _sum and _count series, and a _nans counter carrying the
// dropped-NaN tally. Metric names are sanitized to the exposition charset
// (dots become underscores: "search.elapsed.ms" → "search_elapsed_ms") and
// emitted in lexical order, so the output is deterministic and diffable.

// promName sanitizes a registry metric name into the Prometheus exposition
// charset [a-zA-Z_:][a-zA-Z0-9_:]*. Every invalid byte maps to '_', and a
// leading digit is prefixed with '_'. The mapping can collide two registry
// names ("a.b" and "a_b"); the encoder dedupes families so the exposition
// stays well-formed, keeping the lexically-first name's samples.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float64 sample value. Prometheus' text format accepts
// "NaN", "+Inf" and "-Inf", which is exactly what FormatFloat produces.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). A nil snapshot writes nothing. Families are
// emitted in lexical order of their sanitized names with a single # TYPE
// line each, so the output is valid for any scraper and stable across
// renders of the same snapshot.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	seen := make(map[string]bool)
	// claim reserves a family name (and, for summaries, its _sum/_count/
	// _nans companions); false means a sanitization collision and the
	// family is skipped to keep the exposition well-formed.
	claim := func(names ...string) bool {
		for _, n := range names {
			if seen[n] {
				return false
			}
		}
		for _, n := range names {
			seen[n] = true
		}
		return true
	}

	for _, k := range sortedKeys(s.Counters) {
		n := promName(k)
		if !claim(n) {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		n := promName(k)
		if !claim(n) {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[k])); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		n := promName(k)
		if !claim(n, n+"_sum", n+"_count", n+"_nans") {
			continue
		}
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %s\n%s{quantile=\"0.95\"} %s\n%s{quantile=\"0.99\"} %s\n%s_sum %s\n%s_count %d\n",
			n,
			n, promFloat(h.P50),
			n, promFloat(h.P95),
			n, promFloat(h.P99),
			n, promFloat(h.Sum),
			n, h.Count); err != nil {
			return err
		}
		if h.NaNs > 0 {
			if _, err := fmt.Fprintf(w, "# TYPE %s_nans counter\n%s_nans %d\n", n, n, h.NaNs); err != nil {
				return err
			}
		}
	}
	return nil
}

// Write renders the snapshot in the named format: "text" (the human-readable
// dump of WriteText), "json" (indented JSON), or "prom" (Prometheus text
// exposition, also accepted as "prometheus"). This is the single snapshot
// path shared by the -metrics stderr dump and the daemon's /metrics
// endpoint, so the two can never drift.
func (s *Snapshot) Write(w io.Writer, format string) error {
	switch format {
	case "text":
		return s.WriteText(w)
	case "json":
		return s.writeJSONIndented(w)
	case "prom", "prometheus":
		return s.WritePrometheus(w)
	default:
		return fmt.Errorf("obs: unknown snapshot format %q (want text, json, or prom)", format)
	}
}
