package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("hits") != c {
		t.Fatal("Counter lookup is not stable")
	}
	g := r.Gauge("ratio")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", got)
	}
}

func TestHistogramMoments(t *testing.T) {
	var h Histogram
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		h.Observe(x)
	}
	s := h.Snapshot()
	if s.Count != 8 || s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Fatalf("bad count/min/max/sum: %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %g, want 5", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Fatalf("stddev = %g, want 2", s.StdDev)
	}
}

// TestHistogramLargeMean pins the Welford property the whole telemetry layer
// relies on: a tight sample around a huge mean keeps its tiny variance
// instead of cancelling to zero.
func TestHistogramLargeMean(t *testing.T) {
	var h Histogram
	for _, x := range []float64{1e9, 1e9 + 1, 1e9 + 2} {
		h.Observe(x)
	}
	s := h.Snapshot()
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Fatalf("stddev = %g, want %g", s.StdDev, want)
	}
}

func TestHistogramNaNDropped(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(math.NaN())
	h.Observe(3)
	s := h.Snapshot()
	if s.Count != 2 || s.NaNs != 1 {
		t.Fatalf("count=%d nans=%d, want 2/1", s.Count, s.NaNs)
	}
	if math.IsNaN(s.Mean) || math.IsNaN(s.P50) || s.Mean != 2 {
		t.Fatalf("NaN leaked into moments: %+v", s)
	}
}

// TestP2Quantiles checks the streaming P² estimates against exact quantiles
// on a 20k-point uniform sample.
func TestP2Quantiles(t *testing.T) {
	var h Histogram
	r := rng.New(42)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		h.Observe(xs[i])
	}
	sort.Float64s(xs)
	exact := func(p float64) float64 { return xs[int(p*float64(n))-1] }
	s := h.Snapshot()
	for _, tc := range []struct {
		name      string
		got, want float64
	}{
		{"p50", s.P50, exact(0.50)},
		{"p95", s.P95, exact(0.95)},
		{"p99", s.P99, exact(0.99)},
	} {
		if math.Abs(tc.got-tc.want) > 0.02 {
			t.Errorf("%s = %g, exact %g (|err| > 0.02)", tc.name, tc.got, tc.want)
		}
	}
}

func TestHistogramSmallSampleQuantiles(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(30)
	h.Observe(20)
	s := h.Snapshot()
	if s.P50 != 20 || s.P99 != 30 {
		t.Fatalf("small-sample quantiles: p50=%g p99=%g, want 20/30", s.P50, s.P99)
	}
}

// TestNilFastPath: every operation on nil handles and a nil registry is a
// no-op — and allocation-free, which is the contract that lets hot paths
// stay instrumented unconditionally.
func TestNilFastPath(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	allocs := testing.AllocsPerRun(100, func() {
		var c *Counter
		c.Inc()
		c.Add(3)
		var g *Gauge
		g.Set(1)
		var h *Histogram
		h.Observe(2)
		tm := h.StartTimer()
		tm.Stop()
		sp := r.StartSpan("region")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled-telemetry path allocates: %.1f allocs/op", allocs)
	}
}

func TestSpanRecordsThroughPanic(t *testing.T) {
	r := NewRegistry()
	func() {
		defer func() { recover() }()
		sp := r.StartSpan("faulty")
		defer sp.End()
		time.Sleep(time.Millisecond)
		panic("component fault")
	}()
	if n := r.Histogram("faulty.ms").Count(); n != 1 {
		t.Fatalf("span through panic recorded %d observations, want 1", n)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("lp.solves").Add(17)
	r.Gauge("lp.warm_hit_ratio").Set(0.8125)
	h := r.Histogram("grad.ms")
	for i := 0; i < 100; i++ {
		h.Observe(0.1 * float64(i))
	}
	snap := r.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["lp.solves"] != 17 {
		t.Fatalf("counter lost: %+v", back.Counters)
	}
	if back.Gauges["lp.warm_hit_ratio"] != 0.8125 {
		t.Fatalf("gauge lost: %+v", back.Gauges)
	}
	if back.Histograms["grad.ms"] != snap.Histograms["grad.ms"] {
		t.Fatalf("histogram snapshot not lossless:\n got %+v\nwant %+v",
			back.Histograms["grad.ms"], snap.Histograms["grad.ms"])
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("g").Set(3.5)
	r.Histogram("h").Observe(1)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("a.count")) || !bytes.Contains(buf.Bytes(), []byte("histogram")) {
		t.Fatalf("text dump missing entries:\n%s", out)
	}
	if bytes.Index(buf.Bytes(), []byte("a.count")) > bytes.Index(buf.Bytes(), []byte("b.count")) {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}
