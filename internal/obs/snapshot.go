package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// HistogramSnapshot is a point-in-time summary of one histogram. All fields
// are finite for any sequence of finite observations, so the type marshals
// cleanly with encoding/json and round-trips losslessly (Go's JSON encoder
// emits shortest-round-trip float formatting).
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	NaNs   int64   `json:"nans,omitempty"`
	Sum    float64 `json:"sum"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of a whole registry, suitable for JSON
// embedding (the Telemetry block of result files) and text dumps.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state (nil for a nil registry).
// Concurrent observers may keep writing; each metric is read atomically but
// the snapshot as a whole is not a single atomic cut.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]struct {
		name string
		c    *Counter
	}, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, struct {
			name string
			c    *Counter
		}{name, c})
	}
	gauges := make([]struct {
		name string
		g    *Gauge
	}, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, struct {
			name string
			g    *Gauge
		}{name, g})
	}
	hists := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, struct {
			name string
			h    *Histogram
		}{name, h})
	}
	r.mu.Unlock()

	s := &Snapshot{}
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for _, e := range counters {
			s.Counters[e.name] = e.c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for _, e := range gauges {
			s.Gauges[e.name] = e.g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for _, e := range hists {
			s.Histograms[e.name] = e.h.Snapshot()
		}
	}
	return s
}

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeJSONIndented renders the snapshot as indented JSON — the "json"
// branch of Snapshot.Write, kept here beside the schema it serializes.
func (s *Snapshot) writeJSONIndented(w io.Writer) error {
	if s == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as a human-readable metrics dump, one
// metric per line, grouped and lexically sorted within each group.
func (s *Snapshot) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter   %-44s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge     %-44s %.6g\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		nan := ""
		if h.NaNs > 0 {
			nan = fmt.Sprintf(" nans=%d", h.NaNs)
		}
		if _, err := fmt.Fprintf(w,
			"histogram %-44s n=%d mean=%.4g sd=%.3g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g%s\n",
			k, h.Count, h.Mean, h.StdDev, h.Min, h.P50, h.P95, h.P99, h.Max, nan); err != nil {
			return err
		}
	}
	return nil
}
