package obs

import (
	"bytes"
	"math"
	"regexp"
	"strings"
	"testing"
)

// expositionLine validates one non-comment sample line of the text format:
// name, optional {quantile="..."} label set, and a value parseable as a Go
// float (including NaN/+Inf/-Inf, which Prometheus accepts).
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{quantile="0\.(5|95|99)"\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)

// typeLine validates a # TYPE comment.
var typeLine = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$`)

func buildPromRegistry() *Registry {
	r := NewRegistry()
	r.Counter("search.improvements").Add(3)
	r.Counter("search.restart.0.steps").Add(41) // digits + dots need sanitizing
	r.Gauge("evalcache.entries").Set(128)
	r.Gauge("lp.warm_hit_ratio").Set(math.NaN()) // NaN gauges must stay valid
	h := r.Histogram("search.elapsed.ms")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	h.Observe(math.NaN()) // dropped, surfaces as _nans
	return r
}

func TestWritePrometheusWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := buildPromRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	typesSeen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			if !typeLine.MatchString(line) {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name := strings.Fields(line)[2]
			if typesSeen[name] {
				t.Fatalf("duplicate TYPE line for %q", name)
			}
			typesSeen[name] = true
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
	}

	for _, want := range []string{
		"# TYPE search_improvements counter\nsearch_improvements 3\n",
		"# TYPE search_restart_0_steps counter\nsearch_restart_0_steps 41\n",
		"# TYPE evalcache_entries gauge\nevalcache_entries 128\n",
		"lp_warm_hit_ratio NaN\n",
		"# TYPE search_elapsed_ms summary\n",
		"search_elapsed_ms{quantile=\"0.5\"} ",
		"search_elapsed_ms_sum 5050\n",
		"search_elapsed_ms_count 100\n",
		"search_elapsed_ms_nans 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	snap := buildPromRegistry().Snapshot()
	var a, b bytes.Buffer
	if err := snap.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same snapshot rendered differently twice")
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	var s *Snapshot
	if err := s.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil snapshot: err=%v bytes=%d", err, buf.Len())
	}
	if err := NewRegistry().Snapshot().WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("empty snapshot: err=%v bytes=%d", err, buf.Len())
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"search.elapsed.ms":      "search_elapsed_ms",
		"search.restart.0.steps": "search_restart_0_steps",
		"0weird":                 "_0weird",
		"a-b/c d":                "a_b_c_d",
		"ok_name:x":              "ok_name:x",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSnapshotWriteFormats pins the shared dump path: "text", "json" and
// "prom" all render through the same Snapshot, and unknown formats error.
// The registry here is all-finite: encoding/json rejects NaN, and the
// Snapshot contract only promises JSON-cleanliness for finite observations
// (the prom path additionally tolerates NaN, covered above).
func TestSnapshotWriteFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("search.improvements").Add(3)
	r.Gauge("evalcache.entries").Set(128)
	r.Histogram("search.elapsed.ms").Observe(1.5)
	snap := r.Snapshot()
	for _, format := range []string{"text", "json", "prom", "prometheus"} {
		var buf bytes.Buffer
		if err := snap.Write(&buf, format); err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %q wrote nothing", format)
		}
	}
	var buf bytes.Buffer
	if err := snap.Write(&buf, "xml"); err == nil {
		t.Fatal("unknown format must error")
	}
}
