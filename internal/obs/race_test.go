package obs

import (
	"sync"
	"testing"
)

// TestConcurrentObserveAndSnapshot hammers one registry from writer
// goroutines while a reader snapshots it — the exact shape of the metrics
// layer scraping live solver counters. Run under -race.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := r.Snapshot()
				_ = snap.Counters
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			c := r.Counter("ops")
			h := r.Histogram("lat.ms")
			g := r.Gauge("last")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(i % 97))
				g.Set(float64(i))
				sp := r.StartSpan("tick")
				sp.End()
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["ops"] != writers*perWriter {
		t.Fatalf("ops = %d, want %d", snap.Counters["ops"], writers*perWriter)
	}
	if snap.Histograms["lat.ms"].Count != writers*perWriter {
		t.Fatalf("lat count = %d, want %d", snap.Histograms["lat.ms"].Count, writers*perWriter)
	}
}
