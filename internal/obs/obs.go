// Package obs is the analyzer's zero-dependency observability layer: a
// metrics registry of counters, gauges and streaming histograms, plus a
// lightweight span API for timing code regions.
//
// The design constraint is that the instrumented code is the same hot path
// the performance work of earlier PRs optimized, so everything here follows
// one rule: a nil receiver is a no-op. Instrumented code holds pre-resolved
// *Counter / *Histogram handles (or a *Registry) that are nil when telemetry
// is disabled, and every method tolerates that — no branches at the call
// sites, no allocations, and the disabled path costs a nil check per call.
//
//	var h *obs.Histogram            // telemetry off
//	t := h.StartTimer()             // zero-value Timer
//	work()
//	t.Stop()                        // no-op
//
// Counters and gauges are atomic; histograms are mutex-guarded. All types
// are safe for concurrent use, including snapshotting a registry while other
// goroutines observe into it.
//
// Histograms keep streaming moments (Welford's algorithm, so large-mean
// samples do not cancel catastrophically) and streaming quantiles (the P²
// algorithm of Jain & Chlamtac), so a histogram is O(1) memory no matter how
// many observations it absorbs. NaN observations are dropped and counted
// separately rather than being allowed to poison the moments.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is a
// valid no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64. The nil Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a streaming summary of a float64 sample: count, sum, extrema,
// Welford mean/variance and P² estimates of the 50th, 95th and 99th
// percentiles — all O(1) memory. The nil Histogram is a valid no-op.
type Histogram struct {
	mu   sync.Mutex
	n    int64
	nans int64
	sum  float64
	min  float64
	max  float64
	// Welford running moments.
	mean, m2 float64
	// First observations seed the quantile markers; until five arrive the
	// quantiles are computed exactly from this buffer.
	seed [5]float64
	q50  p2
	q95  p2
	q99  p2
}

// Observe records one observation. NaN observations are dropped and counted
// in the NaNs field of the snapshot instead of skewing the summary.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if math.IsNaN(v) {
		h.nans++
		return
	}
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if h.n == 1 || v > h.max {
		h.max = v
	}
	delta := v - h.mean
	h.mean += delta / float64(h.n)
	h.m2 += delta * (v - h.mean)

	if h.n <= 5 {
		h.seed[h.n-1] = v
		if h.n == 5 {
			sorted := h.seed
			sort.Float64s(sorted[:])
			h.q50.init(0.50, sorted)
			h.q95.init(0.95, sorted)
			h.q99.init(0.99, sorted)
		}
		return
	}
	h.q50.observe(v)
	h.q95.observe(v)
	h.q99.observe(v)
}

// Count returns the number of non-NaN observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// snapshotLocked reads the summary; h.mu must be held.
func (h *Histogram) snapshotLocked() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.n, NaNs: h.nans, Sum: h.sum}
	if h.n == 0 {
		return s
	}
	s.Min, s.Max, s.Mean = h.min, h.max, h.mean
	if variance := h.m2 / float64(h.n); variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	if h.n < 5 {
		// Exact nearest-rank quantiles from the seed buffer.
		sorted := append([]float64{}, h.seed[:h.n]...)
		sort.Float64s(sorted)
		rank := func(p float64) float64 {
			idx := int(math.Ceil(p*float64(len(sorted)))) - 1
			if idx < 0 {
				idx = 0
			}
			return sorted[idx]
		}
		s.P50, s.P95, s.P99 = rank(0.50), rank(0.95), rank(0.99)
		return s
	}
	s.P50, s.P95, s.P99 = h.q50.quantile(), h.q95.quantile(), h.q99.quantile()
	return s
}

// Snapshot returns a point-in-time copy of the summary (zero for nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snapshotLocked()
}

// p2 is one P² (Jain & Chlamtac, 1985) streaming quantile estimator: five
// markers whose heights track the p-quantile of everything observed so far.
type p2 struct {
	p  float64
	q  [5]float64 // marker heights
	n  [5]float64 // actual marker positions (1-based)
	np [5]float64 // desired marker positions
	dn [5]float64 // desired-position increments per observation
}

func (e *p2) init(p float64, sorted [5]float64) {
	e.p = p
	e.q = sorted
	e.n = [5]float64{1, 2, 3, 4, 5}
	e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

func (e *p2) observe(x float64) {
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dn[i]
	}
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			if qp := e.parabolic(i, s); e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

// parabolic is the piecewise-parabolic (P²) marker-height adjustment.
func (e *p2) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+s)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-s)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback adjustment when the parabola overshoots a neighbor.
func (e *p2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

func (e *p2) quantile() float64 { return e.q[2] }

// Registry names and owns a set of metrics. The nil Registry is valid: every
// lookup returns a nil handle, so instrumented code needs no guards. A
// Registry is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use (nil for a nil
// registry). The lookup takes the registry lock: hot paths should resolve
// handles once, outside their loops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil for a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil for a
// nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Timer measures one duration into a histogram, in milliseconds. The zero
// Timer (from a nil histogram) is a valid no-op.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing into h. On a nil histogram the returned Timer is
// a no-op and the clock is never read.
func (h *Histogram) StartTimer() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time since StartTimer, in milliseconds.
func (t Timer) Stop() {
	if t.h != nil {
		t.h.Observe(float64(time.Since(t.start)) / float64(time.Millisecond))
	}
}

// Span is a named timed region recorded into the registry's "<name>.ms"
// histogram. Spans are values: end one with defer so the duration is recorded
// even when the spanned code panics into a containment boundary — a faulted
// region's time is real time spent and must not vanish from the profile. A
// span from a nil registry is a no-op.
type Span struct {
	t Timer
}

// StartSpan begins a span named name (recorded as histogram "<name>.ms").
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{t: r.Histogram(name + ".ms").StartTimer()}
}

// End records the span's duration.
func (s Span) End() { s.t.Stop() }
