// Package paths computes the predetermined path sets the TE pipeline routes
// over. The paper configures K=4 shortest paths per demand with Yen's
// algorithm (§5, [48]).
package paths

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/topology"
)

// Path is a loop-free route described by the IDs of its directed edges, in
// order from source to destination.
type Path struct {
	Edges  []int
	Weight float64
}

// Nodes returns the node sequence of the path in g, starting at the source.
func (p Path) Nodes(g *topology.Graph) []int {
	if len(p.Edges) == 0 {
		return nil
	}
	nodes := make([]int, 0, len(p.Edges)+1)
	nodes = append(nodes, g.Edge(p.Edges[0]).Src)
	for _, eid := range p.Edges {
		nodes = append(nodes, g.Edge(eid).Dst)
	}
	return nodes
}

// String renders the path as an edge-ID list.
func (p Path) String() string { return fmt.Sprintf("%v(w=%g)", p.Edges, p.Weight) }

// equal reports whether two paths traverse identical edge sequences.
func (p Path) equal(q Path) bool {
	if len(p.Edges) != len(q.Edges) {
		return false
	}
	for i := range p.Edges {
		if p.Edges[i] != q.Edges[i] {
			return false
		}
	}
	return true
}

type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (h pq) Len() int            { return len(h) }
func (h pq) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra returns the minimum-weight path from src to dst, honoring the
// bannedNodes and bannedEdges sets (nil means nothing banned). The boolean
// result reports whether a path exists.
func Dijkstra(g *topology.Graph, src, dst int, bannedNodes map[int]bool, bannedEdges map[int]bool) (Path, bool) {
	n := g.NumNodes()
	dist := make([]float64, n)
	prevEdge := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	h := &pq{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.Out(u) {
			if bannedEdges != nil && bannedEdges[eid] {
				continue
			}
			e := g.Edge(eid)
			v := e.Dst
			if done[v] || (bannedNodes != nil && bannedNodes[v]) {
				continue
			}
			nd := dist[u] + e.Weight
			if nd < dist[v] {
				dist[v] = nd
				prevEdge[v] = eid
				heap.Push(h, pqItem{v, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	// Reconstruct.
	var rev []int
	for v := dst; v != src; {
		eid := prevEdge[v]
		rev = append(rev, eid)
		v = g.Edge(eid).Src
	}
	edges := make([]int, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return Path{Edges: edges, Weight: dist[dst]}, true
}

// KShortest returns up to k loopless shortest paths from src to dst using
// Yen's algorithm. Paths are ordered by increasing weight; ties are broken
// deterministically by edge sequence.
func KShortest(g *topology.Graph, src, dst, k int) []Path {
	if k <= 0 || src == dst {
		return nil
	}
	first, ok := Dijkstra(g, src, dst, nil, nil)
	if !ok {
		return nil
	}
	result := []Path{first}
	var candidates []Path

	for len(result) < k {
		prev := result[len(result)-1]
		prevNodes := prev.Nodes(g)
		// Spur from each node of the previous path except the destination.
		for i := 0; i < len(prev.Edges); i++ {
			spurNode := prevNodes[i]
			rootEdges := prev.Edges[:i]
			rootWeight := 0.0
			for _, eid := range rootEdges {
				rootWeight += g.Edge(eid).Weight
			}
			bannedEdges := make(map[int]bool)
			for _, rp := range result {
				if len(rp.Edges) > i && sharesPrefix(rp.Edges, rootEdges) {
					bannedEdges[rp.Edges[i]] = true
				}
			}
			bannedNodes := make(map[int]bool)
			for _, n := range prevNodes[:i] {
				bannedNodes[n] = true
			}
			spur, ok := Dijkstra(g, spurNode, dst, bannedNodes, bannedEdges)
			if !ok {
				continue
			}
			total := Path{
				Edges:  append(append([]int{}, rootEdges...), spur.Edges...),
				Weight: rootWeight + spur.Weight,
			}
			dup := false
			for _, c := range candidates {
				if c.equal(total) {
					dup = true
					break
				}
			}
			if !dup {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].Weight != candidates[b].Weight {
				return candidates[a].Weight < candidates[b].Weight
			}
			return lessEdges(candidates[a].Edges, candidates[b].Edges)
		})
		result = append(result, candidates[0])
		candidates = candidates[1:]
	}
	return result
}

func sharesPrefix(edges, prefix []int) bool {
	if len(edges) < len(prefix) {
		return false
	}
	for i := range prefix {
		if edges[i] != prefix[i] {
			return false
		}
	}
	return true
}

func lessEdges(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// PathSet holds, for every ordered demand pair, the candidate paths traffic
// may be split across. It is the fixed routing substrate of the DOTE
// pipeline (Figure 2): split ratios index into these paths.
type PathSet struct {
	Graph *topology.Graph
	Pairs []topology.Pair
	// PairPaths[i] are the candidate paths for Pairs[i].
	PairPaths [][]Path
	// pairIdx maps a pair to its index in Pairs.
	pairIdx map[topology.Pair]int
}

// NewPathSet computes K-shortest path sets for every ordered node pair.
func NewPathSet(g *topology.Graph, k int) *PathSet {
	pairs := g.AllPairs()
	ps := &PathSet{
		Graph:     g,
		Pairs:     pairs,
		PairPaths: make([][]Path, len(pairs)),
		pairIdx:   make(map[topology.Pair]int, len(pairs)),
	}
	for i, p := range pairs {
		ps.PairPaths[i] = KShortest(g, p.Src, p.Dst, k)
		ps.pairIdx[p] = i
	}
	return ps
}

// NumPairs returns the number of demand pairs.
func (ps *PathSet) NumPairs() int { return len(ps.Pairs) }

// PairIndex returns the dense index of an ordered pair, or -1.
func (ps *PathSet) PairIndex(src, dst int) int {
	if i, ok := ps.pairIdx[topology.Pair{Src: src, Dst: dst}]; ok {
		return i
	}
	return -1
}

// TotalPaths returns the total number of (pair, path) slots — the dimension
// of the split-ratio vector.
func (ps *PathSet) TotalPaths() int {
	n := 0
	for _, pp := range ps.PairPaths {
		n += len(pp)
	}
	return n
}

// Offsets returns, for each pair, the offset of its first path in the
// flattened split-ratio vector, plus the total length.
func (ps *PathSet) Offsets() ([]int, int) {
	off := make([]int, len(ps.PairPaths))
	n := 0
	for i, pp := range ps.PairPaths {
		off[i] = n
		n += len(pp)
	}
	return off, n
}
