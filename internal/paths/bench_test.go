package paths

import (
	"testing"

	"repro/internal/topology"
)

func BenchmarkDijkstraAbilene(b *testing.B) {
	b.ReportAllocs()
	g := topology.Abilene()
	src := g.NodeIndex("Seattle")
	dst := g.NodeIndex("Atlanta")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Dijkstra(g, src, dst, nil, nil); !ok {
			b.Fatal("no path")
		}
	}
}

func BenchmarkYenK4Abilene(b *testing.B) {
	b.ReportAllocs()
	g := topology.Abilene()
	src := g.NodeIndex("Seattle")
	dst := g.NodeIndex("Atlanta")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ps := KShortest(g, src, dst, 4); len(ps) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkPathSetGeant(b *testing.B) {
	b.ReportAllocs()
	g := topology.Geant()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPathSet(g, 4)
	}
}
