package paths_test

import (
	"fmt"

	"repro/internal/paths"
	"repro/internal/topology"
)

// ExampleKShortest lists the two loopless routes between nodes 1 and 2 of
// the triangle topology.
func ExampleKShortest() {
	g := topology.Triangle()
	for _, p := range paths.KShortest(g, g.NodeIndex("1"), g.NodeIndex("2"), 4) {
		names := []string{}
		for _, n := range p.Nodes(g) {
			names = append(names, g.NodeName(n))
		}
		fmt.Println(names, "weight", p.Weight)
	}
	// Output:
	// [1 2] weight 1
	// [1 3 2] weight 2
}
