package paths

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

func TestDijkstraLine(t *testing.T) {
	g := topology.Line(5, 10)
	p, ok := Dijkstra(g, 0, 4, nil, nil)
	if !ok {
		t.Fatal("no path on a line graph")
	}
	if len(p.Edges) != 4 || p.Weight != 4 {
		t.Fatalf("line path wrong: %v", p)
	}
	nodes := p.Nodes(g)
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
}

func TestDijkstraRespectsBans(t *testing.T) {
	g := topology.Triangle()
	// Direct edge 1->2 exists; ban it and the path must go via node 3.
	direct := -1
	for _, e := range g.Edges() {
		if g.NodeName(e.Src) == "1" && g.NodeName(e.Dst) == "2" {
			direct = e.ID
		}
	}
	p, ok := Dijkstra(g, g.NodeIndex("1"), g.NodeIndex("2"), nil, map[int]bool{direct: true})
	if !ok {
		t.Fatal("no detour path")
	}
	if len(p.Edges) != 2 {
		t.Fatalf("detour should have 2 hops, got %v", p)
	}
}

func TestDijkstraNoPath(t *testing.T) {
	g := topology.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(a, b, 1, 1)
	if _, ok := Dijkstra(g, a, c, nil, nil); ok {
		t.Fatal("found a path that does not exist")
	}
}

func TestDijkstraWeights(t *testing.T) {
	// Two routes a->c: direct weight 5, via b weight 2+2=4.
	g := topology.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.AddEdge(a, c, 1, 5)
	g.AddEdge(a, b, 1, 2)
	g.AddEdge(b, c, 1, 2)
	p, ok := Dijkstra(g, a, c, nil, nil)
	if !ok || p.Weight != 4 || len(p.Edges) != 2 {
		t.Fatalf("Dijkstra ignored weights: %v", p)
	}
}

func TestKShortestTriangle(t *testing.T) {
	g := topology.Triangle()
	ps := KShortest(g, g.NodeIndex("1"), g.NodeIndex("2"), 4)
	if len(ps) != 2 {
		t.Fatalf("triangle has exactly 2 loopless 1->2 paths, got %d", len(ps))
	}
	if len(ps[0].Edges) != 1 || len(ps[1].Edges) != 2 {
		t.Fatalf("paths out of order: %v", ps)
	}
	if ps[0].Weight > ps[1].Weight {
		t.Fatal("paths not sorted by weight")
	}
}

func TestKShortestLoopless(t *testing.T) {
	g := topology.Abilene()
	for _, pair := range [][2]string{{"NewYork", "LosAngeles"}, {"Seattle", "Atlanta"}} {
		src, dst := g.NodeIndex(pair[0]), g.NodeIndex(pair[1])
		ps := KShortest(g, src, dst, 4)
		if len(ps) == 0 {
			t.Fatalf("no path %v", pair)
		}
		for _, p := range ps {
			nodes := p.Nodes(g)
			seen := make(map[int]bool)
			for _, n := range nodes {
				if seen[n] {
					t.Fatalf("path %v revisits node %d", p, n)
				}
				seen[n] = true
			}
			if nodes[0] != src || nodes[len(nodes)-1] != dst {
				t.Fatalf("path endpoints wrong: %v", nodes)
			}
		}
		// Non-decreasing weights, all distinct.
		for i := 1; i < len(ps); i++ {
			if ps[i].Weight < ps[i-1].Weight {
				t.Fatal("K-shortest not sorted")
			}
			if ps[i].equal(ps[i-1]) {
				t.Fatal("duplicate path in K-shortest result")
			}
		}
	}
}

func TestKShortestMatchesBruteForceOnRandom(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 8; trial++ {
		g := topology.Random(6, 4, 1, 10, r)
		src, dst := 0, 5
		got := KShortest(g, src, dst, 3)
		want := bruteForcePaths(g, src, dst, 3)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d paths, brute force %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Weight != want[i] {
				t.Fatalf("trial %d: path %d weight %v, brute force %v", trial, i, got[i].Weight, want[i])
			}
		}
	}
}

// bruteForcePaths enumerates all simple paths via DFS and returns the k
// smallest weights.
func bruteForcePaths(g *topology.Graph, src, dst, k int) []float64 {
	var weights []float64
	visited := make([]bool, g.NumNodes())
	var dfs func(u int, w float64)
	dfs = func(u int, w float64) {
		if u == dst {
			weights = append(weights, w)
			return
		}
		visited[u] = true
		for _, eid := range g.Out(u) {
			e := g.Edge(eid)
			if !visited[e.Dst] {
				dfs(e.Dst, w+e.Weight)
			}
		}
		visited[u] = false
	}
	dfs(src, 0)
	// selection sort the k smallest
	for i := 0; i < len(weights); i++ {
		for j := i + 1; j < len(weights); j++ {
			if weights[j] < weights[i] {
				weights[i], weights[j] = weights[j], weights[i]
			}
		}
	}
	if len(weights) > k {
		weights = weights[:k]
	}
	return weights
}

func TestPathSetShape(t *testing.T) {
	g := topology.Abilene()
	ps := NewPathSet(g, 4)
	if ps.NumPairs() != 110 {
		t.Fatalf("NumPairs = %d, want 110", ps.NumPairs())
	}
	for i, pp := range ps.PairPaths {
		if len(pp) == 0 {
			t.Fatalf("pair %d has no paths", i)
		}
		if len(pp) > 4 {
			t.Fatalf("pair %d has %d > 4 paths", i, len(pp))
		}
	}
	off, total := ps.Offsets()
	if total != ps.TotalPaths() {
		t.Fatal("Offsets total inconsistent with TotalPaths")
	}
	if off[0] != 0 {
		t.Fatal("first offset must be 0")
	}
	for i := 1; i < len(off); i++ {
		if off[i] != off[i-1]+len(ps.PairPaths[i-1]) {
			t.Fatal("offsets not cumulative")
		}
	}
}

func TestPairIndex(t *testing.T) {
	g := topology.Triangle()
	ps := NewPathSet(g, 2)
	for i, p := range ps.Pairs {
		if ps.PairIndex(p.Src, p.Dst) != i {
			t.Fatal("PairIndex inconsistent")
		}
	}
	if ps.PairIndex(0, 0) != -1 {
		t.Fatal("PairIndex of self pair should be -1")
	}
}

func TestKShortestZeroAndSelf(t *testing.T) {
	g := topology.Triangle()
	if ps := KShortest(g, 0, 0, 3); ps != nil {
		t.Fatal("self-pair should have no paths")
	}
	if ps := KShortest(g, 0, 1, 0); ps != nil {
		t.Fatal("k=0 should yield nil")
	}
}
