package experiments

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dote"
)

// quickSetup prepares a scaled-down DOTE-Curr instance once per test run.
func quickSetup(t *testing.T, v dote.Variant) *Setup {
	t.Helper()
	opts := QuickSetup(v)
	opts.Hidden = []int{24}
	opts.TrainLen = 50
	opts.TestLen = 15
	opts.TrainEpochs = 6
	s, err := Prepare(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPrepareCurr(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	if s.Model.Cfg.Variant != dote.Curr {
		t.Fatal("wrong variant")
	}
	if s.Target.DemandStart != 0 || s.Target.DemandLen != 110 {
		t.Fatalf("target demand slice wrong: %d+%d", s.Target.DemandStart, s.Target.DemandLen)
	}
	if err := s.Target.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.TrainEx) == 0 || len(s.TestEx) == 0 {
		t.Fatal("no examples")
	}
}

func TestPrepareHist(t *testing.T) {
	opts := QuickSetup(dote.Hist)
	opts.Hidden = []int{16}
	opts.TrainLen = 40
	opts.TestLen = 20
	opts.TrainEpochs = 3
	s, err := Prepare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Target.DemandStart != s.Model.HistoryDim() {
		t.Fatal("Hist demand slice must follow the history window")
	}
	if len(s.TrainEx) != 40-12 {
		t.Fatalf("train examples = %d, want 28", len(s.TrainEx))
	}
	for _, ex := range s.TrainEx {
		if len(ex.History) != s.Model.HistoryDim() {
			t.Fatal("bad history length")
		}
	}
}

func TestPrepareUnknownTopology(t *testing.T) {
	opts := QuickSetup(dote.Curr)
	opts.Topology = "nonexistent"
	if _, err := Prepare(opts); err == nil {
		t.Fatal("accepted unknown topology")
	}
}

func TestFigure3Rows(t *testing.T) {
	rows, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Figure 3 has %d routings, want 3", len(rows))
	}
	if math.Abs(rows[0].MLU-1) > 1e-9 || math.Abs(rows[1].MLU-1) > 1e-9 {
		t.Fatalf("routings A/B MLU = %v/%v, want 1/1", rows[0].MLU, rows[1].MLU)
	}
	if math.Abs(rows[2].MLU-2) > 1e-9 {
		t.Fatalf("routing C MLU = %v, want 2", rows[2].MLU)
	}
}

func TestRunComparisonShape(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	budgets := ComparisonBudgets{
		RandomEvals:   25,
		WhiteboxNodes: 5,
		WhiteboxTime:  10 * time.Second,
		Gradient: core.GradientConfig{
			Iters: 60, T: 1, AlphaD: 0.01, AlphaF: 0.01, AlphaL: 0.01,
			LambdaInit: 1, Restarts: 2, EvalEvery: 10, Patience: 6,
		},
	}
	rows, err := RunComparison(s, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("comparison rows = %d, want 4", len(rows))
	}
	// Paper-shape assertions: the gradient method must find a gap at least
	// as large as the test-set max and a meaningful one in absolute terms.
	testRow, randRow, wbRow, gradRow := rows[0], rows[1], rows[2], rows[3]
	if !gradRow.Found {
		t.Fatal("gradient row not found")
	}
	if gradRow.Ratio < testRow.Ratio*0.99 {
		t.Fatalf("gradient ratio %v below test-set ratio %v", gradRow.Ratio, testRow.Ratio)
	}
	if gradRow.Ratio < 1.05 {
		t.Fatalf("gradient ratio %v too small to be meaningful", gradRow.Ratio)
	}
	if !randRow.Found {
		t.Fatal("random search should always report something")
	}
	// The white-box row typically reports nothing; when it reports, it must
	// render properly either way.
	_ = wbRow.FormatRatio()
	if testRow.FormatRatio() == "—" {
		t.Fatal("test row must always be found")
	}
}

func TestRunSensitivityShape(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	base := core.GradientConfig{
		Iters: 40, T: 1, AlphaD: 0.01, AlphaF: 0.01, AlphaL: 0.01,
		LambdaInit: 1, Restarts: 1, EvalEvery: 10, Patience: 0,
	}
	rows, err := RunSensitivity(s, []float64{0.01, 0.05}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("sensitivity rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ratio < 1 {
			t.Fatalf("alpha %v found ratio %v < 1", r.AlphaL, r.Ratio)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	cfg := core.DefaultGradientConfig()
	cfg.Iters = 60
	cfg.Restarts = 2
	res, err := core.GradientSearch(s.Target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Skip("no adversarial input found in short search")
	}
	data := Figure5(s, res.BestX)
	if len(data.Thresholds) != len(data.Training) || len(data.Thresholds) != len(data.Adversarial) {
		t.Fatal("Figure 5 series misaligned")
	}
	// CDFs monotone.
	for i := 1; i < len(data.Thresholds); i++ {
		if data.Training[i] < data.Training[i-1] || data.Adversarial[i] < data.Adversarial[i-1] {
			t.Fatal("CDFs not monotone")
		}
	}
	// The training distribution should concentrate mass at small demands
	// (most pairs exchange little traffic).
	if data.Training[2] < 0.5 {
		t.Fatalf("training CDF at 0.1 = %v; gravity data should be mostly small", data.Training[2])
	}
}

func TestAblations(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	base := core.GradientConfig{
		Iters: 30, T: 1, AlphaD: 0.01, AlphaF: 0.01, AlphaL: 0.01,
		LambdaInit: 1, Restarts: 1, EvalEvery: 10, Patience: 0,
	}
	tRows, err := AblationInnerSteps(s, []int{1, 3}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(tRows) != 2 || tRows[1].GradEvals <= tRows[0].GradEvals {
		t.Fatalf("T ablation should cost more gradients at higher T: %+v", tRows)
	}
	rRows, err := AblationRestarts(s, []int{1, 2}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rRows) != 2 {
		t.Fatal("restart ablation shape wrong")
	}
	oRows, err := AblationObjective(s, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(oRows) != 2 || oRows[0].Config != "lagrangian" {
		t.Fatalf("objective ablation shape wrong: %+v", oRows)
	}
	pRows := AblationParallelism(s, []int{1, 2}, 8)
	if len(pRows) != 2 || pRows[0].Throughput <= 0 {
		t.Fatalf("parallelism ablation broken: %+v", pRows)
	}
}

func TestSaveLoadSetupRoundTrip(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	var buf bytes.Buffer
	if err := SaveSetup(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadSetup(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same topology/path set shape.
	if s2.Target.InputDim != s.Target.InputDim || s2.PS.NumPairs() != s.PS.NumPairs() {
		t.Fatal("round trip changed shape")
	}
	// Same trained weights: identical splits on identical input.
	h := s.TestEx[0].History
	a := s.Model.Splits(h)
	b := s2.Model.Splits(h)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("round trip changed weights")
		}
	}
	// Same deterministic traffic.
	if len(s2.TrainEx) != len(s.TrainEx) {
		t.Fatal("round trip changed training data")
	}
	for i := range s.TrainEx[0].Next {
		if s2.TrainEx[0].Next[i] != s.TrainEx[0].Next[i] {
			t.Fatal("round trip changed traffic")
		}
	}
}

// TestSaveLoadSetupThroughFile round-trips through a real file. Unlike
// bytes.Buffer, *os.File does not implement io.ByteReader, which historically
// made gob's header decoder buffer past the header and corrupt the weight
// stream for the second decoder — every file-based -setup load failed while
// the in-memory round-trip test stayed green.
func TestSaveLoadSetupThroughFile(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	path := filepath.Join(t.TempDir(), "setup.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveSetup(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	s2, err := LoadSetup(g)
	if err != nil {
		t.Fatalf("file-based LoadSetup: %v", err)
	}
	h := s.TestEx[0].History
	a, b := s.Model.Splits(h), s2.Model.Splits(h)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("file round trip changed weights")
		}
	}
}

func TestLoadSetupRejectsGarbage(t *testing.T) {
	if _, err := LoadSetup(strings.NewReader("garbage")); err == nil {
		t.Fatal("accepted garbage checkpoint")
	}
}

func TestRunComparisonExtended(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	budgets := ComparisonBudgets{
		RandomEvals:   15,
		WhiteboxNodes: 2,
		WhiteboxTime:  5 * time.Second,
		Gradient: core.GradientConfig{
			Iters: 30, T: 1, AlphaD: 0.01, AlphaF: 0.01, AlphaL: 0.01,
			LambdaInit: 1, Restarts: 1, EvalEvery: 10,
		},
	}
	rows, err := RunComparisonExtended(s, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("extended rows = %d, want 6", len(rows))
	}
	if rows[len(rows)-1].Method != "Gradient-based (ours)" {
		t.Fatalf("gradient row must be last, got %q", rows[len(rows)-1].Method)
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Method] = true
	}
	if !names["Hill Climbing"] || !names["Simulated Annealing"] {
		t.Fatal("extended baselines missing")
	}
}

func TestShiftEvaluation(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	res, err := ShiftEvaluation(s, []int{0, 1, 2}, 0.6, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Normal.N == 0 || res.Shifted.N == 0 {
		t.Fatal("missing evaluations")
	}
	// Ratios are ratios: both must be >= 1. (Whether the shift is harder
	// than the test distribution depends on training quality, so the
	// qualitative fiber-cut claim is exercised at full scale by
	// cmd/tereport, not asserted here.)
	if res.Shifted.MeanRatio < 1-1e-6 || res.Normal.MeanRatio < 1-1e-6 {
		t.Fatalf("impossible ratios: %v / %v", res.Shifted.MeanRatio, res.Normal.MeanRatio)
	}
	if res.Shifted.MaxRatio < res.Shifted.MeanRatio {
		t.Fatal("inconsistent shifted stats")
	}
}

func TestAblationHistoryLength(t *testing.T) {
	base := QuickSetup(dote.Hist)
	base.Hidden = []int{12}
	base.TrainLen = 30
	base.TestLen = 5
	base.TrainEpochs = 3
	cfg := core.GradientConfig{
		Iters: 25, T: 1, AlphaD: 0.01, AlphaF: 0.01, AlphaL: 0.01,
		LambdaInit: 1, Restarts: 1, EvalEvery: 5, Patience: 0,
	}
	rows, err := AblationHistoryLength(base, []int{2, 6}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("history ablation rows = %d", len(rows))
	}
	if rows[0].Config != "K=2" || rows[1].Config != "K=6" {
		t.Fatalf("labels wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.Found && r.Ratio < 1 {
			t.Fatalf("impossible ratio %v", r.Ratio)
		}
	}
}

func TestPrepareGeantTopology(t *testing.T) {
	opts := QuickSetup(dote.Curr)
	opts.Topology = "geant"
	opts.Hidden = []int{8}
	opts.TrainLen = 10
	opts.TestLen = 4
	opts.TrainEpochs = 1
	s, err := Prepare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Target.DemandLen != 22*21 {
		t.Fatalf("Geant demand pairs = %d, want 462", s.Target.DemandLen)
	}
}

func TestAblationMomentum(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	base := core.GradientConfig{
		Iters: 30, T: 1, AlphaD: 0.01, AlphaF: 0.01, AlphaL: 0.01,
		LambdaInit: 1, Restarts: 1, EvalEvery: 10, Patience: 0,
	}
	rows, err := AblationMomentum(s, []float64{0, 0.9}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("momentum rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Found && r.Ratio < 1 {
			t.Fatalf("impossible ratio %v", r.Ratio)
		}
	}
}

func TestRunTopologyScale(t *testing.T) {
	base := QuickSetup(dote.Curr)
	base.Hidden = []int{12}
	base.TrainLen = 20
	base.TestLen = 5
	base.TrainEpochs = 2
	cfg := core.GradientConfig{
		Iters: 20, T: 1, AlphaD: 0.01, AlphaF: 0.01, AlphaL: 0.01,
		LambdaInit: 1, Restarts: 1, EvalEvery: 10, Patience: 0,
	}
	rows, err := RunTopologyScale(base, []string{"triangle", "abilene"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("scale rows = %d", len(rows))
	}
	if rows[0].Pairs != 6 || rows[1].Pairs != 110 {
		t.Fatalf("pair counts wrong: %+v", rows)
	}
}

func TestAblationEstimators(t *testing.T) {
	s := quickSetup(t, dote.Curr)
	base := core.GradientConfig{
		Iters: 15, T: 1, AlphaD: 0.01, AlphaF: 0.01, AlphaL: 0.01,
		LambdaInit: 1, Restarts: 1, EvalEvery: 5, Patience: 0,
	}
	rows, err := AblationGradientEstimator(s, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("estimator ablation rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Found && r.Ratio < 1 {
			t.Fatalf("estimator %s found impossible ratio %v", r.Config, r.Ratio)
		}
	}
	// The gray-box rows report their true-evaluation bill; the white-box
	// chain-rule row never touches the opaque stage.
	if rows[0].TrueEvals != -1 {
		t.Fatalf("exact row TrueEvals = %d, want -1", rows[0].TrueEvals)
	}
	for _, r := range rows[1:] {
		if r.TrueEvals <= 0 {
			t.Fatalf("estimator %s reported no true evals (%d)", r.Config, r.TrueEvals)
		}
	}
	// The verified surrogate must never spend more true evaluations than
	// plain finite differences on the same budget.
	if fd, sur := rows[1].TrueEvals, rows[4].TrueEvals; sur > fd {
		t.Fatalf("verified surrogate spent %d true evals, FD spent %d", sur, fd)
	}
}
