package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/linalg"
)

// AblationRow is one configuration of a design-choice ablation.
type AblationRow struct {
	Config  string
	Ratio   float64
	Found   bool
	Runtime time.Duration
	// GradEvals counts end-to-end gradient computations spent.
	GradEvals int
	// TrueEvals counts true evaluations of the opaque stage (probe calls
	// plus forward sweeps) for the gray-box estimator ablation; -1 when the
	// notion does not apply (white-box rows, ablations that never probe).
	TrueEvals int64
}

// AblationInnerSteps varies T, the number of inner ascent steps per outer
// GDA iteration (Eq. 5). The paper fixes T = 1; more inner steps trade
// gradient evaluations for tighter inner maximization.
func AblationInnerSteps(s *Setup, ts []int, base core.GradientConfig) ([]AblationRow, error) {
	var rows []AblationRow
	for _, t := range ts {
		cfg := base
		cfg.T = t
		cfg.Seed = s.Opts.Seed + 600
		res, err := core.GradientSearch(s.Target, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config:    fmt.Sprintf("T=%d", t),
			Ratio:     res.BestRatio,
			Found:     res.Found,
			Runtime:   res.TimeToBest,
			GradEvals: res.GradEvals,
			TrueEvals: -1,
		})
	}
	return rows, nil
}

// AblationRestarts varies the number of random restarts.
func AblationRestarts(s *Setup, restarts []int, base core.GradientConfig) ([]AblationRow, error) {
	var rows []AblationRow
	for _, r := range restarts {
		cfg := base
		cfg.Restarts = r
		cfg.Seed = s.Opts.Seed + 700
		res, err := core.GradientSearch(s.Target, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config:    fmt.Sprintf("restarts=%d", r),
			Ratio:     res.BestRatio,
			Found:     res.Found,
			Runtime:   res.TimeToBest,
			GradEvals: res.GradEvals,
			TrueEvals: -1,
		})
	}
	return rows, nil
}

// AblationObjective compares the paper's Lagrangian reformulation (Eq. 3/4)
// against naive direct ascent on the numerator of Eq. 2.
func AblationObjective(s *Setup, base core.GradientConfig) ([]AblationRow, error) {
	var rows []AblationRow
	for _, mode := range []core.ObjectiveMode{core.Lagrangian, core.DirectAscent} {
		cfg := base
		cfg.Mode = mode
		cfg.Seed = s.Opts.Seed + 800
		res, err := core.GradientSearch(s.Target, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config:    mode.String(),
			Ratio:     res.BestRatio,
			Found:     res.Found,
			Runtime:   res.TimeToBest,
			GradEvals: res.GradEvals,
			TrueEvals: -1,
		})
	}
	return rows, nil
}

// AblationGradientEstimator compares the exact chain-rule gradient against
// the sampled estimators (finite differences, SPSA, and the surrogate-guided
// estimator with its trust/verify loop) applied to an opaque routing+MLU
// stage — the gray-box spectrum of §3.2/§6. Alongside ratio and runtime it
// reports each estimator's true-evaluation bill for the opaque stage:
// probes are counted analytically for FD/SPSA (2n+1 resp. 2·probes+1 per
// gradient, plus one per scoring eval) and measured through the estimator's
// own counters for the surrogate rows.
func AblationGradientEstimator(s *Setup, base core.GradientConfig) ([]AblationRow, error) {
	n := int64(s.Model.TotalPaths() + s.Model.NumPairs())
	verified, est := s.Model.SurrogateRoutingPipeline(surrogateGradCfg(s))
	pipelines := []struct {
		name      string
		p         *core.Pipeline
		cache     *core.EvalCache
		trueEvals func(res *core.SearchResult) int64
	}{
		{"exact chain rule", s.Model.Pipeline(), nil,
			func(*core.SearchResult) int64 { return -1 }},
		{"finite differences", s.Model.OpaqueRoutingPipeline().Grayboxed(1e-4), nil,
			func(res *core.SearchResult) int64 { return int64(res.GradEvals)*(2*n+1) + int64(res.Evals) }},
		{"spsa (64 probes)", spsaPipeline(s, 64), nil,
			func(res *core.SearchResult) int64 { return int64(res.GradEvals)*(2*64+1) + int64(res.Evals) }},
		{"online dnn surrogate", surrogatePipeline(s), nil,
			func(res *core.SearchResult) int64 { return int64(res.GradEvals) + int64(res.Evals) }},
		{"surrogate-guided (verified)", verified, core.NewEvalCache(1<<14, 0),
			func(*core.SearchResult) int64 { return est.Stats().TrueEvals }},
	}
	var rows []AblationRow
	for _, pl := range pipelines {
		target := *s.Target
		target.Pipeline = pl.p
		cfg := base
		cfg.Seed = s.Opts.Seed + 900
		cfg.EvalCache = pl.cache
		res, err := core.GradientSearch(&target, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config:    pl.name,
			Ratio:     res.BestRatio,
			Found:     res.Found,
			Runtime:   res.TimeToBest,
			GradEvals: res.GradEvals,
			TrueEvals: pl.trueEvals(res),
		})
	}
	return rows, nil
}

// surrogateGradCfg is the estimator-ablation configuration of the verified
// surrogate: defaults, seeded like the other rows.
func surrogateGradCfg(s *Setup) core.SurrogateGradConfig {
	return core.DefaultSurrogateGradConfig(s.Opts.Seed + 1400)
}

// spsaPipeline wraps the opaque routing stage with an SPSA estimator.
func spsaPipeline(s *Setup, probes int) *core.Pipeline {
	opaque := s.Model.OpaqueRoutingPipeline()
	stages := opaque.Stages()
	wrapped := make([]core.Component, len(stages))
	for i, st := range stages {
		if _, ok := st.(core.Differentiable); ok {
			wrapped[i] = st
		} else {
			wrapped[i] = core.WithSPSA(st, 1e-3, probes, s.Opts.Seed+1000)
		}
	}
	return core.NewPipeline(wrapped...)
}

// surrogatePipeline wraps the opaque routing stage with the §6 online DNN
// surrogate, whose training is folded into the search.
func surrogatePipeline(s *Setup) *core.Pipeline {
	opaque := s.Model.OpaqueRoutingPipeline()
	stages := opaque.Stages()
	inDim := s.Model.TotalPaths() + s.Model.NumPairs()
	cfg := core.DefaultSurrogateConfig(s.Opts.Seed + 1400)
	cfg.InputScale = s.Target.MaxDemand
	wrapped := make([]core.Component, len(stages))
	for i, st := range stages {
		if _, ok := st.(core.Differentiable); ok {
			wrapped[i] = st
		} else {
			wrapped[i] = core.WithOnlineSurrogate(st, inDim, 1, cfg)
		}
	}
	return core.NewPipeline(wrapped...)
}

// AblationParallelism measures gradient-evaluation throughput with
// different worker counts — quantifying the "compute gradients in parallel"
// benefit claimed in §3.2.
type ParallelismRow struct {
	Workers    int
	Throughput float64 // end-to-end gradients per second, scalar workers
	// BatchedThroughput is gradients per second when the same batch runs
	// lock-step through Pipeline.BatchGrad (the batched restart engine's hot
	// path) instead of per-row worker goroutines. Zero when the pipeline has
	// a stage without a native batched implementation.
	BatchedThroughput float64
}

// AblationMomentum compares plain ascent against heavy-ball momentum on
// the demand updates.
func AblationMomentum(s *Setup, momenta []float64, base core.GradientConfig) ([]AblationRow, error) {
	var rows []AblationRow
	for _, m := range momenta {
		cfg := base
		cfg.Momentum = m
		cfg.Seed = s.Opts.Seed + 1200
		res, err := core.GradientSearch(s.Target, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config:    fmt.Sprintf("momentum=%g", m),
			Ratio:     res.BestRatio,
			Found:     res.Found,
			Runtime:   res.TimeToBest,
			GradEvals: res.GradEvals,
			TrueEvals: -1,
		})
	}
	return rows, nil
}

// ScaleRow reports the analyzer's behaviour on one topology.
type ScaleRow struct {
	Topology string
	Pairs    int
	Ratio    float64
	Runtime  time.Duration
}

// RunTopologyScale runs the gradient attack across topologies of growing
// size — the scalability axis on which white-box tools collapse (§3.1) and
// the gray-box analyzer keeps working.
func RunTopologyScale(base SetupOptions, topologies []string, cfg core.GradientConfig) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, topo := range topologies {
		opts := base
		opts.Topology = topo
		s, err := Prepare(opts)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Seed = opts.Seed + 1300
		res, err := core.GradientSearch(s.Target, c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScaleRow{
			Topology: topo,
			Pairs:    s.PS.NumPairs(),
			Ratio:    res.BestRatio,
			Runtime:  res.TimeToBest,
		})
	}
	return rows, nil
}

// AblationHistoryLength trains DOTE-Hist with different history windows K
// and attacks each: longer histories give the DNN more context for benign
// traffic but also a larger attack surface (the adversary chooses the whole
// window), so the discovered gap typically grows with K.
func AblationHistoryLength(base SetupOptions, ks []int, cfg core.GradientConfig) ([]AblationRow, error) {
	var rows []AblationRow
	for _, k := range ks {
		opts := base
		opts.Variant = dote.Hist
		opts.HistLen = k
		s, err := Prepare(opts)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Seed = opts.Seed + 1100
		res, err := core.GradientSearch(s.Target, c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config:    fmt.Sprintf("K=%d", k),
			Ratio:     res.BestRatio,
			Found:     res.Found,
			Runtime:   res.TimeToBest,
			GradEvals: res.GradEvals,
			TrueEvals: -1,
		})
	}
	return rows, nil
}

// AblationParallelism benchmarks ParallelGrads over a fixed batch, and —
// when the pipeline batches natively — the same batch through the lock-step
// BatchGrad path for a batched-vs-scalar throughput comparison.
func AblationParallelism(s *Setup, workers []int, batch int) []ParallelismRow {
	xs := make([][]float64, batch)
	for i := range xs {
		xs[i] = make([]float64, s.Target.InputDim)
		for j := range xs[i] {
			xs[i][j] = float64((i+j)%7) / 7 * s.Target.MaxDemand
		}
	}
	batched := 0.0
	if s.Target.Pipeline.BatchCapable() {
		xm := linalg.NewMatrix(batch, s.Target.InputDim)
		for i := range xs {
			copy(xm.Row(i), xs[i])
		}
		s.Target.Pipeline.BatchGrad(xm) // warm pools outside the timed run
		start := time.Now()
		s.Target.Pipeline.BatchGrad(xm)
		batched = float64(batch) / time.Since(start).Seconds()
	}
	var rows []ParallelismRow
	for _, w := range workers {
		start := time.Now()
		core.ParallelGrads(s.Target.Pipeline, xs, w)
		elapsed := time.Since(start)
		rows = append(rows, ParallelismRow{
			Workers:           w,
			Throughput:        float64(batch) / elapsed.Seconds(),
			BatchedThroughput: batched,
		})
	}
	return rows
}
