package experiments

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/dote"
	"repro/internal/nn"
)

// checkpointHeader is the serialized experiment configuration. Everything
// except the trained weights is reconstructed deterministically from it.
type checkpointHeader struct {
	Variant     int
	Topology    string
	K           int
	HistLen     int
	Hidden      []int
	TrainLen    int
	TestLen     int
	TrainEpochs int
	TrainLR     float64
	Seed        uint64
}

// SaveSetup writes the setup's configuration and trained weights so a later
// process can LoadSetup without retraining.
func SaveSetup(w io.Writer, s *Setup) error {
	hdr := checkpointHeader{
		Variant:     int(s.Opts.Variant),
		Topology:    s.Opts.Topology,
		K:           s.Opts.K,
		HistLen:     s.Model.Cfg.HistLen,
		Hidden:      s.Opts.Hidden,
		TrainLen:    s.Opts.TrainLen,
		TestLen:     s.Opts.TestLen,
		TrainEpochs: s.Opts.TrainEpochs,
		TrainLR:     s.Opts.TrainLR,
		Seed:        s.Opts.Seed,
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("experiments: encoding header: %w", err)
	}
	return nn.SaveParams(w, s.Model.Net)
}

// LoadSetup rebuilds a Setup from a checkpoint: topology, path set and
// traffic regenerate deterministically from the recorded seed; training is
// SKIPPED and the stored weights are loaded instead.
func LoadSetup(r io.Reader) (*Setup, error) {
	// The checkpoint is two concatenated gob streams (header, then weights),
	// read by two decoders. Each decoder must consume exactly its own
	// messages: hand both the same io.ByteReader, otherwise gob wraps r in a
	// private bufio.Reader and the header decoder buffers ahead into the
	// weight stream, leaving the second decoder mid-message. That is why a
	// bytes.Buffer round-trip works but an *os.File load fails.
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var hdr checkpointHeader
	dec := gob.NewDecoder(r)
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("experiments: decoding header: %w", err)
	}
	opts := SetupOptions{
		Variant:     dote.Variant(hdr.Variant),
		Topology:    hdr.Topology,
		K:           hdr.K,
		HistLen:     hdr.HistLen,
		Hidden:      hdr.Hidden,
		TrainLen:    hdr.TrainLen,
		TestLen:     hdr.TestLen,
		TrainEpochs: 0, // sentinel: skip training below
		TrainLR:     hdr.TrainLR,
		Seed:        hdr.Seed,
	}
	s, err := prepareUntrained(opts)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadParams(r, s.Model.Net); err != nil {
		return nil, fmt.Errorf("experiments: loading weights: %w", err)
	}
	return s, nil
}
