// Package experiments wires the substrates together into the paper's
// evaluation (§5): it prepares trained DOTE pipelines on Abilene and runs
// the method comparison of Tables 1 and 2, the step-size sensitivity of
// Table 3, the routing example of Figure 3, and the demand-CDF comparison
// of Figure 5. Both cmd/tereport and the bench harness call into here, so
// the numbers in EXPERIMENTS.md regenerate from a single code path.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/obs"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/te"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/whitebox"
)

// SetupOptions configure an evaluation instance.
type SetupOptions struct {
	// Variant selects DOTE-Hist (Table 1) or DOTE-Curr (Table 2).
	Variant dote.Variant
	// Topology names the network ("abilene", "b4", "triangle").
	Topology string
	// K is the number of shortest paths per pair (§5 uses 4).
	K int
	// HistLen overrides the history window for DOTE-Hist (0 = variant
	// default of 12).
	HistLen int
	// Hidden are the DNN's hidden widths.
	Hidden []int
	// TrainLen / TestLen are the number of traffic epochs generated.
	TrainLen, TestLen int
	// TrainEpochs / TrainLR control DOTE training.
	TrainEpochs int
	TrainLR     float64
	// Seed drives everything.
	Seed uint64
	// Verbose, when non-nil, receives progress lines.
	Verbose func(string)
	// Obs, when non-nil, receives training telemetry (see
	// dote.TrainOptions.Obs). Nil adds no overhead.
	Obs *obs.Registry
}

// DefaultSetup mirrors §5 at a laptop-friendly scale.
func DefaultSetup(v dote.Variant) SetupOptions {
	return SetupOptions{
		Variant:     v,
		Topology:    "abilene",
		K:           4,
		Hidden:      []int{128, 128},
		TrainLen:    300,
		TestLen:     60,
		TrainEpochs: 25,
		TrainLR:     1e-3,
		Seed:        1,
	}
}

// QuickSetup is a scaled-down configuration for tests and benchmarks.
func QuickSetup(v dote.Variant) SetupOptions {
	s := DefaultSetup(v)
	s.Hidden = []int{48}
	s.TrainLen = 80
	s.TestLen = 20
	s.TrainEpochs = 10
	s.TrainLR = 3e-3
	return s
}

// Setup is a prepared evaluation instance: trained model, data, target.
type Setup struct {
	Opts    SetupOptions
	PS      *paths.PathSet
	Model   *dote.Model
	TrainEx []traffic.Example
	TestEx  []traffic.Example
	Target  *core.AttackTarget
}

func buildTopology(name string) (*topology.Graph, error) {
	switch name {
	case "abilene", "":
		return topology.Abilene(), nil
	case "b4":
		return topology.B4(), nil
	case "geant":
		return topology.Geant(), nil
	case "triangle":
		return topology.Triangle(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown topology %q", name)
	}
}

// prepareUntrained builds the topology, path set, model and traffic, but
// does NOT train — LoadSetup restores trained weights instead.
func prepareUntrained(opts SetupOptions) (*Setup, error) {
	g, err := buildTopology(opts.Topology)
	if err != nil {
		return nil, err
	}
	if opts.K <= 0 {
		opts.K = 4
	}
	ps := paths.NewPathSet(g, opts.K)
	cfg := dote.DefaultConfig(opts.Variant)
	if len(opts.Hidden) > 0 {
		cfg.Hidden = opts.Hidden
	}
	if opts.HistLen > 0 && opts.Variant == dote.Hist {
		cfg.HistLen = opts.HistLen
	}
	cfg.Seed = opts.Seed
	m := dote.New(ps, cfg)

	r := rng.New(opts.Seed + 100)
	gen := traffic.NewGravity(ps, 0.3, r)
	var trainEx, testEx []traffic.Example
	if opts.Variant == dote.Curr {
		trainEx = traffic.CurrWindows(traffic.Sequence(gen, opts.TrainLen))
		testEx = traffic.CurrWindows(traffic.Sequence(gen, opts.TestLen))
	} else {
		trainEx = traffic.Windows(traffic.Sequence(gen, opts.TrainLen), cfg.HistLen)
		testEx = traffic.Windows(traffic.Sequence(gen, opts.TestLen+cfg.HistLen), cfg.HistLen)
	}
	demandStart := 0
	if opts.Variant == dote.Hist {
		demandStart = m.HistoryDim()
	}
	target := &core.AttackTarget{
		Pipeline:    m.Pipeline(),
		InputDim:    m.InputDim(),
		DemandStart: demandStart,
		DemandLen:   m.NumPairs(),
		PS:          ps,
		MaxDemand:   g.AvgLinkCapacity(),
	}
	return &Setup{Opts: opts, PS: ps, Model: m, TrainEx: trainEx, TestEx: testEx, Target: target}, nil
}

// Prepare builds the topology and path set, generates gravity traffic,
// trains the DOTE variant end to end, and wraps everything in an
// AttackTarget whose box bound is the average link capacity (§5).
func Prepare(opts SetupOptions) (*Setup, error) {
	s, err := prepareUntrained(opts)
	if err != nil {
		return nil, err
	}
	topts := dote.DefaultTrainOptions()
	if opts.TrainEpochs > 0 {
		topts.Epochs = opts.TrainEpochs
	}
	if opts.TrainLR > 0 {
		topts.LR = opts.TrainLR
	}
	topts.Seed = opts.Seed + 200
	topts.Verbose = opts.Verbose
	topts.Obs = opts.Obs
	if _, err := dote.Train(s.Model, s.TrainEx, topts); err != nil {
		return nil, err
	}
	return s, nil
}

// MethodRow is one row of Table 1 or Table 2.
type MethodRow struct {
	Method  string
	Ratio   float64
	Found   bool
	Runtime time.Duration
	Note    string
	// Telemetry is a compact metrics summary for instrumented methods
	// (currently the gradient row when ComparisonBudgets.Gradient.Obs is
	// set); empty otherwise.
	Telemetry string
}

// FormatRatio renders the ratio column, using "—" for not-found (the
// white-box rows of Tables 1 and 2).
func (r MethodRow) FormatRatio() string {
	if !r.Found {
		return "—"
	}
	return fmt.Sprintf("%.2fx", r.Ratio)
}

// ComparisonBudgets bound each method in the Table 1/2 comparison.
type ComparisonBudgets struct {
	// RandomEvals bounds random search; the paper's runs take ~25 s.
	RandomEvals int
	// WhiteboxNodes / WhiteboxTime bound the MetaOpt-style MILP (§5 gave it
	// six hours; it still found nothing).
	WhiteboxNodes int
	WhiteboxTime  time.Duration
	// Gradient search configuration.
	Gradient core.GradientConfig
}

// DefaultBudgets returns laptop-scale budgets with the paper's
// hyper-parameters (alpha = 0.01, T = 1).
func DefaultBudgets() ComparisonBudgets {
	return ComparisonBudgets{
		RandomEvals:   400,
		WhiteboxNodes: 200,
		WhiteboxTime:  60 * time.Second,
		Gradient:      core.DefaultGradientConfig(),
	}
}

// RunComparison produces the four rows of Table 1 (DOTE-Hist) or Table 2
// (DOTE-Curr): the model's test-set ratio, random search, the white-box
// baseline, and the gray-box gradient method.
func RunComparison(s *Setup, budgets ComparisonBudgets) ([]MethodRow, error) {
	var rows []MethodRow
	log := s.Opts.Verbose
	say := func(format string, args ...interface{}) {
		if log != nil {
			log(fmt.Sprintf(format, args...))
		}
	}

	// Row 1: the ratio DOTE's authors measured — on the test set.
	say("evaluating %s on its test set...", s.Model.Cfg.Variant)
	stats, err := dote.Evaluate(s.Model, s.TestEx)
	if err != nil {
		return nil, err
	}
	rows = append(rows, MethodRow{
		Method: fmt.Sprintf("%s's test set", s.Model.Cfg.Variant),
		Ratio:  stats.MaxRatio,
		Found:  true,
		Note:   fmt.Sprintf("mean %.3f over %d epochs", stats.MeanRatio, stats.N),
	})

	// Row 2: black-box random search.
	say("running random search (%d evals)...", budgets.RandomEvals)
	rs, err := search.Random(s.Target, search.Budget{MaxEvals: budgets.RandomEvals}, s.Opts.Seed+300)
	if err != nil {
		return nil, err
	}
	rows = append(rows, MethodRow{
		Method:  "Random Search",
		Ratio:   rs.BestRatio,
		Found:   rs.Found,
		Runtime: rs.TimeToBest,
		Note:    fmt.Sprintf("%d evals", rs.Evals),
	})

	// Row 3: MetaOpt-style white-box MILP.
	say("running white-box MILP (budget %d nodes / %v)...", budgets.WhiteboxNodes, budgets.WhiteboxTime)
	wb, err := whitebox.Attack(s.Model, s.Target.MaxDemand, whitebox.Options{
		MaxNodes: budgets.WhiteboxNodes,
		MaxTime:  budgets.WhiteboxTime,
	})
	if err != nil {
		return nil, err
	}
	wbFound := wb.Found && wb.BestRatio > 1.05
	rows = append(rows, MethodRow{
		Method:  "MetaOpt-style white-box",
		Ratio:   wb.BestRatio,
		Found:   wbFound,
		Runtime: wb.Elapsed,
		Note:    fmt.Sprintf("%d B&B nodes, budget exhausted", wb.Evals),
	})

	// Row 4: the gray-box gradient-based analyzer.
	say("running gradient-based search (%d iters x %d restarts)...",
		budgets.Gradient.Iters, budgets.Gradient.Restarts)
	gcfg := budgets.Gradient
	gcfg.Seed = s.Opts.Seed + 400
	gr, err := core.GradientSearch(s.Target, gcfg)
	if err != nil {
		return nil, err
	}
	gnote := fmt.Sprintf("%d grad evals, %d LP evals", gr.GradEvals, gr.LPEvals)
	if gr.FaultCount > 0 {
		gnote += fmt.Sprintf(", %d fault(s) contained", gr.FaultCount)
	}
	if gr.StopReason == core.StopDeadline || gr.StopReason == core.StopCancelled {
		gnote += fmt.Sprintf(", stopped early (%s)", gr.StopReason)
	}
	rows = append(rows, MethodRow{
		Method:    "Gradient-based (ours)",
		Ratio:     gr.BestRatio,
		Found:     gr.Found,
		Runtime:   gr.TimeToBest,
		Note:      gnote,
		Telemetry: summarizeTelemetry(gr.Telemetry),
	})
	return rows, nil
}

// summarizeTelemetry compresses a search's metrics snapshot into a one-cell
// report-table summary: LP warm-start effectiveness and total pivot work are
// the numbers that explain where a search's runtime went.
func summarizeTelemetry(snap *obs.Snapshot) string {
	if snap == nil {
		return ""
	}
	return fmt.Sprintf("lp warm-hit %.0f%%, %d pivots, %d improvement(s)",
		100*snap.Gauges["lp.warm_hit_ratio"],
		snap.Counters["lp.pivots"],
		snap.Counters["search.improvements"])
}

// RunComparisonExtended adds the other black-box local-search baselines
// (hill climbing, simulated annealing) to the Table 1/2 rows — the "local
// search methods get stuck in local optima" claim of §3.1 made measurable.
func RunComparisonExtended(s *Setup, budgets ComparisonBudgets) ([]MethodRow, error) {
	rows, err := RunComparison(s, budgets)
	if err != nil {
		return nil, err
	}
	hc, err := search.HillClimb(s.Target, search.Budget{MaxEvals: budgets.RandomEvals}, s.Opts.Seed+310)
	if err != nil {
		return nil, err
	}
	sa, err := search.Anneal(s.Target, search.Budget{MaxEvals: budgets.RandomEvals}, s.Opts.Seed+320)
	if err != nil {
		return nil, err
	}
	extra := []MethodRow{
		{Method: "Hill Climbing", Ratio: hc.BestRatio, Found: hc.Found, Runtime: hc.TimeToBest,
			Note: fmt.Sprintf("%d evals", hc.Evals)},
		{Method: "Simulated Annealing", Ratio: sa.BestRatio, Found: sa.Found, Runtime: sa.TimeToBest,
			Note: fmt.Sprintf("%d evals", sa.Evals)},
	}
	// Keep the gradient row last, as in the paper's tables.
	out := append(append([]MethodRow{}, rows[:len(rows)-1]...), extra...)
	out = append(out, rows[len(rows)-1])
	return out, nil
}

// SensRow is one row of Table 3.
type SensRow struct {
	AlphaL  float64
	Ratio   float64
	Runtime time.Duration
}

// RunSensitivity reproduces Table 3: vary the multiplier step size α_λ with
// α_d = α_f = 0.01 fixed.
func RunSensitivity(s *Setup, alphas []float64, base core.GradientConfig) ([]SensRow, error) {
	var rows []SensRow
	for _, a := range alphas {
		cfg := base
		cfg.AlphaD = 0.01
		cfg.AlphaF = 0.01
		cfg.AlphaL = a
		cfg.Seed = s.Opts.Seed + 500
		res, err := core.GradientSearch(s.Target, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SensRow{AlphaL: a, Ratio: res.BestRatio, Runtime: res.TimeToBest})
	}
	return rows, nil
}

// ShiftResult compares a trained model's performance on its normal test
// distribution against post-shift traffic (a fiber-cut-style
// redistribution): the natural-world analogue of the adversarial inputs.
type ShiftResult struct {
	Normal, Shifted dote.EvalStats
}

// ShiftEvaluation evaluates the setup's model on shifted traffic where a
// fraction of all volume concentrates on a few hot pairs from epoch 0.
func ShiftEvaluation(s *Setup, hotPairs []int, fraction float64, epochs int) (*ShiftResult, error) {
	normal, err := dote.Evaluate(s.Model, s.TestEx)
	if err != nil {
		return nil, err
	}
	r := rng.New(s.Opts.Seed + 123)
	gen := &traffic.Shift{
		Inner:    traffic.NewGravity(s.PS, 0.3, r),
		At:       0,
		HotPairs: hotPairs,
		Fraction: fraction,
	}
	seq := traffic.Sequence(gen, epochs+s.Model.Cfg.HistLen)
	var ex []traffic.Example
	if s.Model.Cfg.Variant == dote.Curr {
		ex = traffic.CurrWindows(seq)
	} else {
		ex = traffic.Windows(seq, s.Model.Cfg.HistLen)
	}
	shifted, err := dote.Evaluate(s.Model, ex)
	if err != nil {
		return nil, err
	}
	return &ShiftResult{Normal: normal, Shifted: shifted}, nil
}

// RoutingRow is one column of Figure 3's table.
type RoutingRow struct {
	Name string
	MLU  float64
}

// Figure3 reproduces the motivating example: on the triangle topology with
// demands 1→2 = 1→3 = 100, routings A and B achieve MLU 1 with different
// split ratios, while routing C achieves MLU 2 — showing why split ratios
// alone (the DNN's output) do not determine end-to-end performance.
func Figure3() ([]RoutingRow, error) {
	g := topology.Triangle()
	ps := paths.NewPathSet(g, 4)
	tm := make(te.TrafficMatrix, ps.NumPairs())
	n1, n2, n3 := g.NodeIndex("1"), g.NodeIndex("2"), g.NodeIndex("3")
	tm[ps.PairIndex(n1, n2)] = 100
	tm[ps.PairIndex(n1, n3)] = 100

	route := func(assign map[int]int) te.Splits {
		s := te.ShortestPathSplits(ps)
		off, _ := ps.Offsets()
		for pair, pathIdx := range assign {
			for k := range ps.PairPaths[pair] {
				s[off[pair]+k] = 0
			}
			s[off[pair]+pathIdx] = 1
		}
		return s
	}
	findPath := func(pair int, nodes []int) int {
		for k, p := range ps.PairPaths[pair] {
			pn := p.Nodes(g)
			if len(pn) != len(nodes) {
				continue
			}
			ok := true
			for i := range pn {
				if pn[i] != nodes[i] {
					ok = false
					break
				}
			}
			if ok {
				return k
			}
		}
		return -1
	}
	p12, p13 := ps.PairIndex(n1, n2), ps.PairIndex(n1, n3)
	direct12 := findPath(p12, []int{n1, n2})
	via3 := findPath(p12, []int{n1, n3, n2})
	direct13 := findPath(p13, []int{n1, n3})
	via2 := findPath(p13, []int{n1, n2, n3})
	if direct12 < 0 || via3 < 0 || direct13 < 0 || via2 < 0 {
		return nil, fmt.Errorf("experiments: triangle path set incomplete")
	}

	var rows []RoutingRow
	for _, rc := range []struct {
		name   string
		assign map[int]int
	}{
		{"Routing A (direct)", map[int]int{p12: direct12, p13: direct13}},
		{"Routing B (swapped detours)", map[int]int{p12: via3, p13: via2}},
		{"Routing C (shared link)", map[int]int{p12: direct12, p13: via2}},
	} {
		mlu, _ := te.MLU(ps, tm, route(rc.assign))
		rows = append(rows, RoutingRow{Name: rc.name, MLU: mlu})
	}
	return rows, nil
}

// Figure5 compares the demand-size distribution of the adversarial input
// against training demands: the CDFs over demands normalized by the average
// link capacity, evaluated at the paper's x-axis points.
type Figure5Data struct {
	Thresholds  []float64
	Training    []float64
	Adversarial []float64
	// TopShareTraining / TopShareAdversarial report the fraction of total
	// volume carried by the 5 largest pairs — the concentration statistic
	// behind the paper's observation that "only a few pairs exchange the
	// majority of the traffic in the adversarial examples".
	TopShareTraining    float64
	TopShareAdversarial float64
}

// topKShare returns the fraction of total demand carried by the k largest
// entries (1 for a zero matrix).
func topKShare(tm te.TrafficMatrix, k int) float64 {
	total := tm.Total()
	if total == 0 {
		return 1
	}
	sorted := append([]float64{}, tm...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	if k > len(sorted) {
		k = len(sorted)
	}
	top := 0.0
	for _, v := range sorted[:k] {
		top += v
	}
	return top / total
}

// Figure5 computes the CDF comparison for a discovered adversarial input.
func Figure5(s *Setup, advInput []float64) Figure5Data {
	thresholds := []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	scale := s.PS.Graph.AvgLinkCapacity()
	var trainTMs []te.TrafficMatrix
	trainShare := 0.0
	for _, ex := range s.TrainEx {
		trainTMs = append(trainTMs, ex.Next)
		trainShare += topKShare(ex.Next, 5)
	}
	if len(s.TrainEx) > 0 {
		trainShare /= float64(len(s.TrainEx))
	}
	adv := s.Target.Demand(advInput)
	return Figure5Data{
		Thresholds:          thresholds,
		Training:            traffic.CDF(trainTMs, scale, thresholds),
		Adversarial:         traffic.CDF([]te.TrafficMatrix{adv}, scale, thresholds),
		TopShareTraining:    trainShare,
		TopShareAdversarial: topKShare(adv, 5),
	}
}
