package gan

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func tinyTarget(t *testing.T) (*dote.Model, *core.AttackTarget) {
	t.Helper()
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{8}
	m := dote.New(ps, cfg)
	tg := &core.AttackTarget{
		Pipeline:    m.Pipeline(),
		InputDim:    m.InputDim(),
		DemandStart: 0,
		DemandLen:   m.NumPairs(),
		PS:          ps,
		MaxDemand:   ps.Graph.AvgLinkCapacity(),
	}
	return m, tg
}

func realSamples(tg *core.AttackTarget, n int) [][]float64 {
	gen := traffic.NewGravity(tg.PS, 0.3, rng.New(11))
	out := make([][]float64, n)
	for i := range out {
		tm := gen.Next()
		out[i] = append([]float64{}, tm...)
	}
	return out
}

func TestTrainProducesVerifiedCorpus(t *testing.T) {
	_, tg := tinyTarget(t)
	cfg := DefaultConfig()
	cfg.Epochs = 25
	cfg.CorpusSize = 16
	corpus, err := Train(tg, realSamples(tg, 40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Inputs) != 16 || len(corpus.Ratios) != 16 || len(corpus.DiscScores) != 16 {
		t.Fatalf("corpus sizes wrong: %d/%d/%d", len(corpus.Inputs), len(corpus.Ratios), len(corpus.DiscScores))
	}
	for i, x := range corpus.Inputs {
		if len(x) != tg.InputDim {
			t.Fatal("corpus input dimension wrong")
		}
		for _, v := range x {
			if v < 0 || v > tg.MaxDemand {
				t.Fatalf("corpus input %d outside the demand box: %v", i, v)
			}
		}
		if corpus.Ratios[i] < 1-1e-9 {
			t.Fatalf("corpus ratio %v below 1", corpus.Ratios[i])
		}
		if corpus.DiscScores[i] < 0 || corpus.DiscScores[i] > 1 {
			t.Fatalf("disc score %v outside [0,1]", corpus.DiscScores[i])
		}
	}
	best, ratio := corpus.Best()
	if best == nil || ratio < corpus.MeanRatio() {
		t.Fatalf("Best() inconsistent: %v vs mean %v", ratio, corpus.MeanRatio())
	}
	if corpus.P90Ratio() > ratio || corpus.P90Ratio() < corpus.MeanRatio()*0.5 {
		t.Fatalf("P90 %v implausible (best %v, mean %v)", corpus.P90Ratio(), ratio, corpus.MeanRatio())
	}
}

func TestAdversarialPressureRaisesRatios(t *testing.T) {
	// A generator trained WITH the system-gradient term should produce a
	// corpus with a higher mean ratio than one trained with AdvWeight=0
	// (pure distribution matching).
	_, tg := tinyTarget(t)
	real := realSamples(tg, 40)

	cfgAdv := DefaultConfig()
	cfgAdv.Epochs = 40
	cfgAdv.CorpusSize = 24
	cfgAdv.AdvWeight = 2.0
	adv, err := Train(tg, real, cfgAdv)
	if err != nil {
		t.Fatal(err)
	}

	cfgPlain := cfgAdv
	cfgPlain.AdvWeight = 0
	plain, err := Train(tg, real, cfgPlain)
	if err != nil {
		t.Fatal(err)
	}
	if adv.MeanRatio() < plain.MeanRatio()*0.9 {
		t.Fatalf("adversarial corpus mean %v not better than plain %v", adv.MeanRatio(), plain.MeanRatio())
	}
}

func TestTrainValidation(t *testing.T) {
	_, tg := tinyTarget(t)
	if _, err := Train(tg, nil, DefaultConfig()); err == nil {
		t.Fatal("accepted empty real samples")
	}
	if _, err := Train(tg, [][]float64{{1, 2}}, DefaultConfig()); err == nil {
		t.Fatal("accepted wrong-dimension real samples")
	}
}

func TestEmptyCorpusHelpers(t *testing.T) {
	c := &Corpus{}
	if x, r := c.Best(); x != nil || r != 0 {
		t.Fatal("empty Best should be nil")
	}
	if c.MeanRatio() != 0 || c.P90Ratio() != 0 {
		t.Fatal("empty corpus stats should be 0")
	}
}
