// Package gan implements the §6 extension "Beyond single adversarial
// example": a generator/discriminator pair trained with the system's
// gradient. The generator learns to emit whole corpora of inputs that make
// the learning-enabled system underperform; the discriminator constrains
// them to look like a target distribution (e.g. the training data), so the
// corpus captures worst-TYPICAL rather than worst-case behaviour.
package gan

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Config controls corpus training.
type Config struct {
	// NoiseDim is the generator's latent dimension.
	NoiseDim int
	// GenHidden / DiscHidden are the hidden layer widths.
	GenHidden, DiscHidden []int
	// Epochs and Batch control training; LRG / LRD the two learning rates.
	Epochs, Batch int
	LRG, LRD      float64
	// AdvWeight balances "hurt the system" against "look realistic".
	AdvWeight float64
	// Seed drives all randomness.
	Seed uint64
	// CorpusSize is the number of samples drawn from the trained generator.
	CorpusSize int
}

// DefaultConfig returns a small, fast configuration.
func DefaultConfig() Config {
	return Config{
		NoiseDim:   8,
		GenHidden:  []int{32},
		DiscHidden: []int{32},
		Epochs:     60,
		Batch:      16,
		LRG:        2e-3,
		LRD:        2e-3,
		AdvWeight:  1.0,
		Seed:       1,
		CorpusSize: 64,
	}
}

// Corpus is the trained generator's output: candidate adversarial inputs
// with their verified performance ratios.
type Corpus struct {
	Inputs [][]float64
	Ratios []float64
	// DiscScores are the discriminator's realism scores in [0, 1].
	DiscScores []float64
}

// Best returns the corpus entry with the highest ratio.
func (c *Corpus) Best() (x []float64, ratio float64) {
	bi := -1
	for i, r := range c.Ratios {
		if bi < 0 || r > ratio {
			bi, ratio = i, r
		}
	}
	if bi < 0 {
		return nil, 0
	}
	return c.Inputs[bi], c.Ratios[bi]
}

// MeanRatio returns the corpus-average performance ratio.
func (c *Corpus) MeanRatio() float64 {
	if len(c.Ratios) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range c.Ratios {
		s += r
	}
	return s / float64(len(c.Ratios))
}

// P90Ratio returns the 90th-percentile ratio.
func (c *Corpus) P90Ratio() float64 {
	if len(c.Ratios) == 0 {
		return 0
	}
	sorted := append([]float64{}, c.Ratios...)
	sort.Float64s(sorted)
	return stats.Percentile(sorted, 0.9)
}

// Train fits the GAN against the target system and real-distribution
// samples, then returns a generated corpus with verified ratios.
func Train(target *core.AttackTarget, realSamples [][]float64, cfg Config) (*Corpus, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if len(realSamples) == 0 {
		return nil, fmt.Errorf("gan: no real samples")
	}
	for i, s := range realSamples {
		if len(s) != target.InputDim {
			return nil, fmt.Errorf("gan: real sample %d has length %d, want %d", i, len(s), target.InputDim)
		}
	}
	r := rng.New(cfg.Seed)
	n := target.InputDim
	gen := nn.MLP("gen", append(append([]int{cfg.NoiseDim}, cfg.GenHidden...), n), nn.ActTanh, r.Split())
	disc := nn.MLP("disc", append(append([]int{n}, cfg.DiscHidden...), 1), nn.ActLeakyReLU, r.Split())
	optG := nn.NewAdam(cfg.LRG)
	optD := nn.NewAdam(cfg.LRD)

	sampleNoise := func(batch int) []float64 {
		z := make([]float64, batch*cfg.NoiseDim)
		for i := range z {
			z[i] = r.NormFloat64()
		}
		return z
	}
	// The generator's raw outputs pass through a sigmoid scaled to the
	// demand box, guaranteeing feasible inputs.
	toInput := func(raw ad.Value) ad.Value {
		return ad.Scale(ad.Sigmoid(raw), target.MaxDemand)
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// --- Discriminator step: real -> 1, generated -> 0.
		{
			c := nn.NewCtx(true)
			batch := cfg.Batch
			// Real half.
			realX := make([]float64, 0, batch*n)
			for i := 0; i < batch; i++ {
				realX = append(realX, realSamples[r.Intn(len(realSamples))]...)
			}
			// Fake half (no gradient into the generator here).
			cg := nn.NewCtx(false)
			zs := sampleNoise(batch)
			fakeRaw := gen.Forward(cg, cg.T.ConstMat(zs, batch, cfg.NoiseDim))
			fake := toInput(fakeRaw)

			realOut := ad.Sigmoid(disc.Forward(c, c.T.ConstMat(realX, batch, n)))
			fakeOut := ad.Sigmoid(disc.Forward(c, c.T.ConstMat(fake.Data(), batch, n)))
			// BCE: -log(realOut) - log(1 - fakeOut), averaged.
			lossReal := ad.Neg(ad.Mean(ad.Log(ad.AddConst(realOut, 1e-9))))
			lossFake := ad.Neg(ad.Mean(ad.Log(ad.AddConst(ad.Neg(fakeOut), 1+1e-9))))
			loss := ad.Add(lossReal, lossFake)
			nn.ZeroGrads(disc.Params())
			ad.Backward(loss)
			c.Harvest()
			optD.Step(disc.Params())
		}
		// --- Generator step: fool the discriminator AND hurt the system.
		{
			c := nn.NewCtx(true)
			batch := cfg.Batch
			zs := sampleNoise(batch)
			raw := gen.Forward(c, c.T.ConstMat(zs, batch, cfg.NoiseDim))
			x := toInput(raw)
			// Realism term: -log D(G(z)).
			dOut := ad.Sigmoid(disc.Forward(c, x))
			lossReal := ad.Neg(ad.Mean(ad.Log(ad.AddConst(dOut, 1e-9))))
			nn.ZeroGrads(gen.Params())
			ad.Backward(lossReal)
			// Adversarial term: ascend the system's MLU. The end-to-end
			// gradient comes from the gray-box pipeline (chain rule) and is
			// injected into the generator's tape as a cotangent on x.
			xd := x.Data()
			cot := make([]float64, len(xd))
			for b := 0; b < batch; b++ {
				row := xd[b*n : (b+1)*n]
				g := target.Pipeline.Grad(row)
				// Normalize per sample so AdvWeight has consistent meaning.
				m := 0.0
				for _, v := range g {
					if a := math.Abs(v); a > m {
						m = a
					}
				}
				if m == 0 {
					continue
				}
				for j := range g {
					// Negative: Backward minimizes, we want to maximize MLU.
					cot[b*n+j] = -cfg.AdvWeight * g[j] / m / float64(batch)
				}
			}
			ad.BackwardVJP(x, cot)
			c.Harvest()
			optG.Step(gen.Params())
		}
	}

	// Draw and verify the corpus.
	corpus := &Corpus{}
	cg := nn.NewCtx(false)
	zs := sampleNoise(cfg.CorpusSize)
	raw := gen.Forward(cg, cg.T.ConstMat(zs, cfg.CorpusSize, cfg.NoiseDim))
	x := toInput(raw)
	cd := nn.NewCtx(false)
	scores := ad.Sigmoid(disc.Forward(cd, cd.T.ConstMat(x.Data(), cfg.CorpusSize, target.InputDim)))
	for b := 0; b < cfg.CorpusSize; b++ {
		row := append([]float64{}, x.Data()[b*n:(b+1)*n]...)
		ratio, _, _, err := target.Ratio(row)
		if err != nil {
			return nil, err
		}
		corpus.Inputs = append(corpus.Inputs, row)
		corpus.Ratios = append(corpus.Ratios, ratio)
		corpus.DiscScores = append(corpus.DiscScores, scores.Data()[b])
	}
	return corpus, nil
}
