package te

import (
	"testing"

	"repro/internal/paths"
	"repro/internal/topology"
)

// TestOptimalMLUWideDynamicRange replays a demand matrix found by the
// adversarial gradient search (Abilene, K=4) whose entries span eight orders
// of magnitude. The long pivot sequence it induces used to drift the
// simplex's incrementally-updated reduced-cost row far enough that a
// non-improving column scanned as improving with no ratio-limiting row, and
// the provably bounded min-MLU LP was reported unbounded.
func TestOptimalMLUWideDynamicRange(t *testing.T) {
	ps := paths.NewPathSet(topology.Abilene(), 4)
	tm := TrafficMatrix{
		0, 0, 1.5095108016055538, 0, 0, 0, 0, 2.033643941377765, 0, 0, 0, 0,
		2.2954174755097435e-05, 1.2542704686656571e-05, 1.073742641161389e-06,
		1.5935437216226617e-06, 6.571889367431805e-06, 2.4666326941139523e-07,
		0, 7.473624242668584e-08, 1.512976171131389e-06, 0, 5.274403340164719,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2.2216143393925893e-06, 0, 0, 0,
		0.8418473827433357, 0, 0, 0, 0, 0, 0, 5.3026012716226005e-06, 0, 0,
		8.165986422991497e-06, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		2.7317513129482655e-06, 0, 0, 0, 0, 0, 1.3254885165923491e-05,
		1.2501943576392313e-05, 1.2828691812329143e-06, 0,
		1.1180766085247968e-06, 0, 0, 0, 0, 0, 0, 1.1877656957524012e-05,
		1.1802802516479537e-06, 1.1181443355798777e-05, 3.929136106237368e-06,
		0, 0, 0, 0, 0, 0, 0, 0, 4.924445180765538, 0, 0, 0,
		0.0012331482968402955, 6.322320802660684, 7.657129283784327e-08,
		0.09388433317299082, 0.09388343624599645, 0.09387802890130999,
		0.09386772613007972, 0, 0, 0, 0, 0, 0, 7.128091088441002e-07,
		2.0860343061586534e-05, 1.7604696425152453e-05, 3.3588995200949584e-06,
		2.1417463900072905e-06, 2.670083224816439e-06, 2.6404399586347442,
	}
	if len(tm) != ps.NumPairs() {
		t.Fatalf("matrix has %d entries, path set %d pairs", len(tm), ps.NumPairs())
	}
	opt, splits, err := NewMLUSolver(ps).Solve(tm)
	if err != nil {
		t.Fatal(err)
	}
	if opt <= 0 {
		t.Fatalf("optimal MLU %v, want positive", opt)
	}
	// The returned splits must achieve the reported objective.
	achieved, _ := MLU(ps, tm, splits)
	if diff := achieved - opt; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("splits achieve MLU %.12f, solver reported %.12f", achieved, opt)
	}
}
