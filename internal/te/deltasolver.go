package te

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/paths"
)

// DeltaMLUSolver computes optimal MLUs for a sequence of traffic matrices on
// one path set using the flow formulation
//
//	min u  s.t.  Σ_k f_{i,k} ≥ d_i   (one GE row per pair)
//	             Σ f on e − cap_e·u ≤ 0   (one LE row per edge)
//
// whose coefficient matrix is DEMAND-INDEPENDENT: changing the traffic
// matrix only changes the right-hand side b. The solver is therefore built
// exactly once and every subsequent Solve goes through lp.Solver.ResolveRHS,
// which reuses the factorized optimal basis with zero pivots whenever it
// stays primal feasible under the new demands — the common case for the
// single-coordinate deltas of finite-difference probes.
//
// The GE relaxation is exact: any feasible point of the paper's EQ
// formulation (splits summing to one) scales to a feasible flow with the
// same u, and conversely scaling an over-delivering flow down to equality
// never increases a link load — so the two optima coincide, and Splits are
// recovered as f_{i,k}/Σ_k f_{i,k}.
//
// Zero-demand pairs keep their rows (Σf ≥ 0 is trivially satisfiable), which
// is what keeps the structure fingerprint stable across matrices. Pairs with
// no paths are rejected if they ever carry demand.
//
// Not safe for concurrent use (the point is a single resident basis);
// independent instances are independent. Use MLUSolver for the pooled
// concurrent path.
type DeltaMLUSolver struct {
	ps      *paths.PathSet
	offsets []int
	total   int

	prob      *lp.Problem
	solver    *lp.Solver
	u         lp.VarID
	fs        []lp.VarID // per path slot
	demandCon []int      // per pair: constraint index of its GE row (-1 if no paths)

	solved bool
}

// NewDeltaMLUSolver builds the demand-independent flow LP for ps.
func NewDeltaMLUSolver(ps *paths.PathSet) *DeltaMLUSolver {
	offsets, total := ps.Offsets()
	g := ps.Graph
	s := &DeltaMLUSolver{
		ps:        ps,
		offsets:   offsets,
		total:     total,
		prob:      lp.NewProblem(),
		solver:    lp.NewSolver(),
		fs:        make([]lp.VarID, total),
		demandCon: make([]int, ps.NumPairs()),
	}
	s.solver.KeepRHSFactors = true
	s.solver.Method = LPMethod()
	p := s.prob
	s.u = p.AddVariable("u", 0, math.Inf(1))
	expr := lp.NewExpr()
	for i, pp := range ps.PairPaths {
		if len(pp) == 0 {
			s.demandCon[i] = -1
			continue
		}
		expr.Reset()
		for k := range pp {
			s.fs[offsets[i]+k] = p.AddVariable("", 0, math.Inf(1))
			expr.Add(1, s.fs[offsets[i]+k])
		}
		s.demandCon[i] = p.AddConstraint("", expr, lp.GE, 0)
	}
	for e := 0; e < g.NumEdges(); e++ {
		expr.Reset()
		any := false
		for i, pp := range ps.PairPaths {
			for k, path := range pp {
				for _, eid := range path.Edges {
					if eid == e {
						expr.Add(1, s.fs[offsets[i]+k])
						any = true
						break
					}
				}
			}
		}
		if !any {
			continue
		}
		expr.Add(-g.Edge(e).Capacity, s.u)
		p.AddConstraint("", expr, lp.LE, 0)
	}
	p.SetObjective(lp.Minimize, expr.Reset().Add(1, s.u))
	return s
}

// SetObs routes the solver's LP telemetry (including "lp.rhs.ms") into reg;
// nil disables.
func (s *DeltaMLUSolver) SetObs(reg *obs.Registry) { s.solver.Obs = reg }

// SetMethod forces the simplex engine (overriding the package default read
// at construction). With lp.MethodRevised, an RHS delta that breaks primal
// feasibility is repaired by a few dual-simplex pivots instead of the dense
// path's full warm/cold fallback. Call before the first Solve.
func (s *DeltaMLUSolver) SetMethod(m lp.Method) { s.solver.Method = m }

// Stats returns the underlying solver's counters; RHSAttempts/RHSHits
// distinguish the rhs fast path from warm and cold solves.
func (s *DeltaMLUSolver) Stats() lp.SolverStatsSnapshot { return s.solver.Stats.Snapshot() }

// Solve returns the optimal MLU and optimal splits for tm. The first call
// solves cold; later calls update only the demand rows' right-hand sides and
// go through ResolveRHS.
func (s *DeltaMLUSolver) Solve(tm TrafficMatrix) (float64, Splits, error) {
	if len(tm) != s.ps.NumPairs() {
		return 0, nil, fmt.Errorf("te: traffic matrix has %d entries, want %d", len(tm), s.ps.NumPairs())
	}
	for i, d := range tm {
		ci := s.demandCon[i]
		if ci < 0 {
			if d != 0 {
				return 0, nil, fmt.Errorf("te: pair %d has demand %g but no paths", i, d)
			}
			continue
		}
		s.prob.SetConstraintRHS(ci, d)
	}
	var sol *lp.Solution
	if s.solved {
		sol = s.solver.ResolveRHS(s.prob)
	} else {
		sol = s.solver.Solve(s.prob)
	}
	if sol.Status != lp.StatusOptimal {
		return 0, nil, &StatusError{Op: "optimal MLU (delta)", Status: sol.Status}
	}
	s.solved = true

	splits := make(Splits, s.total)
	for i, pp := range s.ps.PairPaths {
		if len(pp) == 0 {
			continue
		}
		base := s.offsets[i]
		sum := 0.0
		for k := range pp {
			sum += sol.Value(s.fs[base+k])
		}
		if sum <= 0 {
			splits[base] = 1 // zero-demand pair: degenerate but valid splits
			continue
		}
		for k := range pp {
			splits[base+k] = sol.Value(s.fs[base+k]) / sum
		}
	}
	return sol.Objective, splits, nil
}
