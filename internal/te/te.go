// Package te implements the traffic-engineering substrate of the DOTE
// pipeline (Figure 2): traffic matrices, routing demands over predetermined
// path sets according to split ratios, link loads and the maximum link
// utilization (MLU) objective, plus the LP-based optimal baselines the
// performance ratio (Eq. 2) compares against.
package te

import (
	"context"
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/paths"
)

// TrafficMatrix holds one demand value per ordered source-destination pair,
// indexed consistently with PathSet.Pairs.
type TrafficMatrix []float64

// Clone returns a deep copy.
func (tm TrafficMatrix) Clone() TrafficMatrix {
	c := make(TrafficMatrix, len(tm))
	copy(c, tm)
	return c
}

// Total returns the sum of all demands.
func (tm TrafficMatrix) Total() float64 {
	s := 0.0
	for _, d := range tm {
		s += d
	}
	return s
}

// Scale multiplies every demand by alpha in place and returns tm.
func (tm TrafficMatrix) Scale(alpha float64) TrafficMatrix {
	for i := range tm {
		tm[i] *= alpha
	}
	return tm
}

// Max returns the largest demand.
func (tm TrafficMatrix) Max() float64 {
	m := 0.0
	for _, d := range tm {
		if d > m {
			m = d
		}
	}
	return m
}

// Splits is a flattened vector of per-(pair, path) split ratios laid out by
// PathSet.Offsets. A valid split vector is non-negative and sums to one
// within each pair's segment.
type Splits []float64

// UniformSplits returns splits that divide each pair's traffic evenly over
// its candidate paths.
func UniformSplits(ps *paths.PathSet) Splits {
	off, total := ps.Offsets()
	s := make(Splits, total)
	for i, pp := range ps.PairPaths {
		if len(pp) == 0 {
			continue
		}
		v := 1 / float64(len(pp))
		for k := range pp {
			s[off[i]+k] = v
		}
	}
	return s
}

// ShortestPathSplits returns splits that put all traffic on each pair's
// first (minimum weight) path.
func ShortestPathSplits(ps *paths.PathSet) Splits {
	off, total := ps.Offsets()
	s := make(Splits, total)
	for i, pp := range ps.PairPaths {
		if len(pp) > 0 {
			s[off[i]] = 1
		}
	}
	return s
}

// ValidateSplits checks non-negativity and per-pair normalization.
func ValidateSplits(ps *paths.PathSet, s Splits) error {
	off, total := ps.Offsets()
	if len(s) != total {
		return fmt.Errorf("te: splits length %d, want %d", len(s), total)
	}
	for i, pp := range ps.PairPaths {
		sum := 0.0
		for k := range pp {
			v := s[off[i]+k]
			if v < -1e-9 {
				return fmt.Errorf("te: negative split %g for pair %d path %d", v, i, k)
			}
			sum += v
		}
		if len(pp) > 0 && math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("te: pair %d splits sum to %g, want 1", i, sum)
		}
	}
	return nil
}

// LinkLoads routes tm according to s and returns the absolute load on each
// directed edge.
func LinkLoads(ps *paths.PathSet, tm TrafficMatrix, s Splits) []float64 {
	g := ps.Graph
	loads := make([]float64, g.NumEdges())
	off, _ := ps.Offsets()
	for i, pp := range ps.PairPaths {
		d := tm[i]
		if d == 0 {
			continue
		}
		for k, path := range pp {
			f := d * s[off[i]+k]
			if f == 0 {
				continue
			}
			for _, eid := range path.Edges {
				loads[eid] += f
			}
		}
	}
	return loads
}

// Utilizations divides loads by capacities.
func Utilizations(ps *paths.PathSet, loads []float64) []float64 {
	g := ps.Graph
	u := make([]float64, len(loads))
	for i := range loads {
		u[i] = loads[i] / g.Edge(i).Capacity
	}
	return u
}

// MLU returns the maximum link utilization when routing tm with splits s,
// along with the ID of the most utilized edge.
func MLU(ps *paths.PathSet, tm TrafficMatrix, s Splits) (float64, int) {
	loads := LinkLoads(ps, tm, s)
	g := ps.Graph
	best, arg := 0.0, -1
	for i, l := range loads {
		u := l / g.Edge(i).Capacity
		if u > best {
			best, arg = u, i
		}
	}
	return best, arg
}

// OptimalMLU solves the path-based LP
//
//	min u  s.t.  Σ_k x_{i,k} = 1 (pairs with demand),  link loads ≤ u·cap
//
// returning the optimal MLU and the optimal split ratios. Pairs with zero
// demand get their full split on the first path.
//
// Repeated calls on the same PathSet reuse a cached MLUSolver, so the LP is
// rebuilt allocation-free and warm-started from the previous optimal basis.
func OptimalMLU(ps *paths.PathSet, tm TrafficMatrix) (float64, Splits, error) {
	return solverFor(ps).Solve(tm)
}

// OptimalMLUCtx is OptimalMLU under a caller-controlled context: the
// context's deadline bounds the simplex itself (see MLUSolver.SolveCtx) and
// cancellation surfaces as ctx.Err().
func OptimalMLUCtx(ctx context.Context, ps *paths.PathSet, tm TrafficMatrix) (float64, Splits, error) {
	return solverFor(ps).SolveCtx(ctx, tm)
}

// NormalizeToUnitMLU scales tm so its optimal MLU equals one — the
// normalization the paper uses to move from Eq. 2 to the convex feasible
// space of Eq. 3. Returns the scaled matrix and the applied factor.
// A zero matrix is returned unchanged with factor 1.
func NormalizeToUnitMLU(ps *paths.PathSet, tm TrafficMatrix) (TrafficMatrix, float64, error) {
	opt, _, err := OptimalMLU(ps, tm)
	if err != nil {
		return nil, 0, err
	}
	if opt <= 0 {
		return tm.Clone(), 1, nil
	}
	factor := 1 / opt
	return tm.Clone().Scale(factor), factor, nil
}

// MaxTotalFlow solves the maximum total routed flow LP of §4 ("Other TE
// Objectives"): each pair may route at most its demand, links respect
// capacity, and the objective is the total routed volume.
func MaxTotalFlow(ps *paths.PathSet, tm TrafficMatrix) (float64, error) {
	g := ps.Graph
	off, total := ps.Offsets()
	p := lp.NewProblem()
	fs := make([]lp.VarID, total)
	obj := lp.NewExpr()
	for i, pp := range ps.PairPaths {
		if tm[i] == 0 || len(pp) == 0 {
			continue
		}
		capExpr := lp.NewExpr()
		for k := range pp {
			fs[off[i]+k] = p.AddVariable("", 0, math.Inf(1))
			capExpr.Add(1, fs[off[i]+k])
			obj.Add(1, fs[off[i]+k])
		}
		p.AddConstraint("", capExpr, lp.LE, tm[i])
	}
	for e := 0; e < g.NumEdges(); e++ {
		expr := lp.NewExpr()
		any := false
		for i, pp := range ps.PairPaths {
			if tm[i] == 0 {
				continue
			}
			for k, path := range pp {
				for _, eid := range path.Edges {
					if eid == e {
						expr.Add(1, fs[off[i]+k])
						any = true
						break
					}
				}
			}
		}
		if any {
			p.AddConstraint("", expr, lp.LE, g.Edge(e).Capacity)
		}
	}
	p.SetObjective(lp.Maximize, obj)
	sol := p.Solve()
	if sol.Status != lp.StatusOptimal {
		return 0, &StatusError{Op: "max total flow", Status: sol.Status}
	}
	return sol.Objective, nil
}

// MaxConcurrentFlow solves max z such that z·tm is fully routable within
// capacities (the maximum concurrent flow objective of §4). z > 1 means the
// network has headroom; z < 1 means tm is not fully routable.
func MaxConcurrentFlow(ps *paths.PathSet, tm TrafficMatrix) (float64, error) {
	g := ps.Graph
	off, total := ps.Offsets()
	p := lp.NewProblem()
	z := p.AddVariable("z", 0, math.Inf(1))
	fs := make([]lp.VarID, total)
	anyDemand := false
	for i, pp := range ps.PairPaths {
		if tm[i] == 0 || len(pp) == 0 {
			continue
		}
		anyDemand = true
		eq := lp.NewExpr()
		for k := range pp {
			fs[off[i]+k] = p.AddVariable("", 0, math.Inf(1))
			eq.Add(1, fs[off[i]+k])
		}
		eq.Add(-tm[i], z)
		p.AddConstraint("", eq, lp.EQ, 0)
	}
	if !anyDemand {
		return math.Inf(1), nil
	}
	for e := 0; e < g.NumEdges(); e++ {
		expr := lp.NewExpr()
		any := false
		for i, pp := range ps.PairPaths {
			if tm[i] == 0 {
				continue
			}
			for k, path := range pp {
				for _, eid := range path.Edges {
					if eid == e {
						expr.Add(1, fs[off[i]+k])
						any = true
						break
					}
				}
			}
		}
		if any {
			p.AddConstraint("", expr, lp.LE, g.Edge(e).Capacity)
		}
	}
	p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, z))
	sol := p.Solve()
	if sol.Status != lp.StatusOptimal {
		return 0, &StatusError{Op: "max concurrent flow", Status: sol.Status}
	}
	return sol.Objective, nil
}

// DeliveredFlow returns the total traffic actually delivered when routing
// tm with splits s under proportional shedding: flow on a path is scaled by
// 1/max(1, u_max) where u_max is the largest utilization along the path.
// This realizes the total-flow objective of §4 ("Other TE Objectives") for
// a system whose splits may oversubscribe links.
func DeliveredFlow(ps *paths.PathSet, tm TrafficMatrix, s Splits) float64 {
	loads := LinkLoads(ps, tm, s)
	g := ps.Graph
	util := make([]float64, len(loads))
	for e := range loads {
		util[e] = loads[e] / g.Edge(e).Capacity
	}
	off, _ := ps.Offsets()
	total := 0.0
	for i, pp := range ps.PairPaths {
		d := tm[i]
		if d == 0 {
			continue
		}
		for k, path := range pp {
			f := d * s[off[i]+k]
			if f == 0 {
				continue
			}
			worst := 1.0
			for _, eid := range path.Edges {
				if util[eid] > worst {
					worst = util[eid]
				}
			}
			total += f / worst
		}
	}
	return total
}

// PerformanceRatio computes MLU_system(d) / MLU_OPT(d) — the paper's Eq. 2 —
// for a system that produced splits s on traffic matrix tm. Returns the
// ratio along with both MLUs. A zero traffic matrix yields ratio 1.
func PerformanceRatio(ps *paths.PathSet, tm TrafficMatrix, s Splits) (ratio, sysMLU, optMLU float64, err error) {
	return PerformanceRatioCtx(context.Background(), ps, tm, s)
}

// PerformanceRatioCtx is PerformanceRatio under a caller-controlled context
// (the optimal-MLU LP inherits the context's deadline).
func PerformanceRatioCtx(ctx context.Context, ps *paths.PathSet, tm TrafficMatrix, s Splits) (ratio, sysMLU, optMLU float64, err error) {
	sysMLU, _ = MLU(ps, tm, s)
	optMLU, _, err = OptimalMLUCtx(ctx, ps, tm)
	if err != nil {
		return 0, 0, 0, err
	}
	if optMLU <= 0 {
		return 1, sysMLU, optMLU, nil
	}
	return sysMLU / optMLU, sysMLU, optMLU, nil
}
