package te

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/paths"
)

// StatusError reports an LP that finished without an optimal solution. It is
// a typed error so callers can distinguish a solver outcome (infeasible,
// unbounded, iteration/deadline limit) from malformed input: the search
// engine treats it as a rejected evaluation step, never as a usable MLU.
type StatusError struct {
	// Op names the LP that failed (e.g. "optimal MLU").
	Op string
	// Status is the solver's verdict.
	Status lp.Status
}

// Error implements error.
func (e *StatusError) Error() string { return fmt.Sprintf("te: %s LP %v", e.Op, e.Status) }

// MLUSolver computes optimal-MLU LPs for one path set, reusing everything
// that does not depend on the traffic matrix: the edge→path-slot incidence,
// the lp.Problem (Reset-rebuilt per solve, allocation-free in steady state)
// and an lp.Solver whose cached basis warm-starts consecutive solves.
// Consecutive adversarial-search iterates perturb the demand slightly, so
// the previous optimal basis is usually optimal or near-optimal for the next
// matrix — the warm solve then finishes in a handful of pivots instead of
// re-deriving the vertex from scratch.
//
// MLUSolver is safe for concurrent use: each Solve borrows an independent
// (Problem, Solver) pair from an internal pool, so parallel searchers never
// serialize on a shared tableau and each pooled pair keeps its own warm
// basis.
type MLUSolver struct {
	ps *paths.PathSet

	offsets []int
	total   int
	// edgeSlots[e] lists the path slots crossing edge e; edgeSlotPair[e][j]
	// is the demand pair of edgeSlots[e][j].
	edgeSlots    [][]int
	edgeSlotPair [][]int
	caps         []float64

	pool sync.Pool // of *mluState

	// stats aggregates the per-borrow counter deltas of every pooled
	// lp.Solver into one cumulative view (the pool itself cannot be
	// iterated, so each borrow folds its own delta in on return).
	stats lp.SolverStats
	// obsReg, when set, is handed to each borrowed solver so per-solve
	// latency/pivot histograms land in one shared registry.
	obsReg atomic.Pointer[obs.Registry]
	// method overrides the package-level LPMethod for this solver's pooled
	// lp.Solvers, stored as method+1 (0 = follow the package default).
	method atomic.Int32
}

// SetMethod forces the simplex engine for this solver's pooled lp.Solvers,
// overriding the package default set by SetLPMethod. Safe to call
// concurrently; in-flight borrows keep the method they started with.
func (s *MLUSolver) SetMethod(m lp.Method) { s.method.Store(int32(m) + 1) }

func (s *MLUSolver) lpMethod() lp.Method {
	if v := s.method.Load(); v != 0 {
		return lp.Method(v - 1)
	}
	return LPMethod()
}

// Stats returns the aggregated LP solve counters across every pooled solver
// this MLUSolver has borrowed. Safe to call concurrently with solves.
func (s *MLUSolver) Stats() lp.SolverStatsSnapshot { return s.stats.Snapshot() }

// SetObs routes per-solve LP telemetry ("lp.solve.ms", "lp.solve.pivots")
// from every pooled solver into reg. Pass nil to disable. Safe to call
// concurrently with solves; in-flight borrows keep the registry they
// started with.
func (s *MLUSolver) SetObs(reg *obs.Registry) { s.obsReg.Store(reg) }

// mluState is the per-borrow workspace of one in-flight solve.
type mluState struct {
	prob   *lp.Problem
	solver *lp.Solver
	xs     []lp.VarID
	expr   *lp.Expr
}

// NewMLUSolver builds the reusable incidence structures for ps.
func NewMLUSolver(ps *paths.PathSet) *MLUSolver {
	offsets, total := ps.Offsets()
	g := ps.Graph
	s := &MLUSolver{
		ps:           ps,
		offsets:      offsets,
		total:        total,
		edgeSlots:    make([][]int, g.NumEdges()),
		edgeSlotPair: make([][]int, g.NumEdges()),
		caps:         make([]float64, g.NumEdges()),
	}
	for e := 0; e < g.NumEdges(); e++ {
		s.caps[e] = g.Edge(e).Capacity
	}
	for i, pp := range ps.PairPaths {
		for k, path := range pp {
			slot := offsets[i] + k
			for _, eid := range path.Edges {
				s.edgeSlots[eid] = append(s.edgeSlots[eid], slot)
				s.edgeSlotPair[eid] = append(s.edgeSlotPair[eid], i)
			}
		}
	}
	s.pool.New = func() any {
		return &mluState{
			prob:   lp.NewProblem(),
			solver: lp.NewSolver(),
			xs:     make([]lp.VarID, total),
			expr:   lp.NewExpr(),
		}
	}
	return s
}

// Solve returns the optimal MLU and optimal splits for tm (pairs with zero
// demand get their full split on the first path).
func (s *MLUSolver) Solve(tm TrafficMatrix) (float64, Splits, error) {
	return s.SolveCtx(context.Background(), tm)
}

// SolveCtx is Solve under a caller-controlled context. The context's
// deadline, when set, is mapped onto lp.Problem.Deadline so the simplex
// itself stops pivoting once time is up (polled every 64 pivots); an expired
// or cancelled context surfaces as ctx.Err() rather than a StatusError, so
// callers can tell "the caller's budget ran out" apart from "this LP is
// genuinely stuck".
func (s *MLUSolver) SolveCtx(ctx context.Context, tm TrafficMatrix) (float64, Splits, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	if len(tm) != s.ps.NumPairs() {
		return 0, nil, fmt.Errorf("te: traffic matrix has %d entries, want %d", len(tm), s.ps.NumPairs())
	}
	st := s.pool.Get().(*mluState)
	st.solver.Obs = s.obsReg.Load()
	st.solver.Method = s.lpMethod()
	before := st.solver.Stats.Snapshot()
	defer func() {
		s.stats.AddSnapshot(st.solver.Stats.Snapshot().Sub(before))
		s.pool.Put(st)
	}()

	p := st.prob
	p.Reset()
	// Reset preserves Deadline across borrows, so set it explicitly each
	// solve: the ctx deadline when there is one, cleared otherwise (a stale
	// deadline from a previous time-boxed borrow must not leak into this one).
	if dl, ok := ctx.Deadline(); ok {
		p.Deadline = dl
	} else {
		p.Deadline = time.Time{}
	}
	u := p.AddVariable("u", 0, math.Inf(1))
	xs := st.xs
	for i, pp := range s.ps.PairPaths {
		if tm[i] == 0 {
			continue
		}
		if len(pp) == 0 {
			return 0, nil, fmt.Errorf("te: pair %d has demand %g but no paths", i, tm[i])
		}
		norm := st.expr.Reset()
		for k := range pp {
			// No explicit upper bound: the normalization row already caps
			// each split at one, and leaving the bound off keeps the simplex
			// tableau hundreds of rows smaller.
			xs[s.offsets[i]+k] = p.AddVariable("", 0, math.Inf(1))
			norm.Add(1, xs[s.offsets[i]+k])
		}
		p.AddConstraint("", norm, lp.EQ, 1)
	}
	// Per-edge: Σ d_i x_{i,k} [e on path] − u·cap_e ≤ 0.
	for e, slots := range s.edgeSlots {
		expr := st.expr.Reset()
		any := false
		for j, slot := range slots {
			pair := s.edgeSlotPair[e][j]
			if tm[pair] == 0 {
				continue
			}
			expr.Add(tm[pair], xs[slot])
			any = true
		}
		if !any {
			continue
		}
		expr.Add(-s.caps[e], u)
		p.AddConstraint("", expr, lp.LE, 0)
	}
	p.SetObjective(lp.Minimize, st.expr.Reset().Add(1, u))
	sol := st.solver.Solve(p)
	if sol.Status != lp.StatusOptimal {
		// A deadline-limited solve under an expired context is the context
		// firing, not a property of this LP.
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		return 0, nil, &StatusError{Op: "optimal MLU", Status: sol.Status}
	}
	splits := make(Splits, s.total)
	for i, pp := range s.ps.PairPaths {
		if tm[i] == 0 {
			if len(pp) > 0 {
				splits[s.offsets[i]] = 1
			}
			continue
		}
		for k := range pp {
			splits[s.offsets[i]+k] = sol.Value(xs[s.offsets[i]+k])
		}
	}
	return sol.Objective, splits, nil
}

// mluSolverCache maps path sets to their MLUSolver so the package-level
// OptimalMLU reuses incidence structures and warm bases across calls. The
// cache is bounded: when it would exceed mluCacheLimit entries it is emptied
// wholesale (path sets are few and long-lived in practice, so eviction is a
// correctness backstop, not a tuned policy).
var mluSolverCache = struct {
	sync.Mutex
	m map[*paths.PathSet]*MLUSolver
}{m: make(map[*paths.PathSet]*MLUSolver)}

const mluCacheLimit = 32

func solverFor(ps *paths.PathSet) *MLUSolver {
	mluSolverCache.Lock()
	defer mluSolverCache.Unlock()
	if s, ok := mluSolverCache.m[ps]; ok {
		return s
	}
	if len(mluSolverCache.m) >= mluCacheLimit {
		mluSolverCache.m = make(map[*paths.PathSet]*MLUSolver)
	}
	s := NewMLUSolver(ps)
	mluSolverCache.m[ps] = s
	return s
}

// InstrumentSolver routes LP telemetry for ps's cached MLUSolver (the one
// package-level OptimalMLU and the search engines use) into reg. Creates
// the solver if it is not cached yet, so instrumenting before the first
// solve works.
func InstrumentSolver(ps *paths.PathSet, reg *obs.Registry) {
	solverFor(ps).SetObs(reg)
}

// SolverStatsFor returns the cumulative LP solve counters of ps's cached
// MLUSolver. Callers scraping deltas should Sub two scrapes.
func SolverStatsFor(ps *paths.PathSet) lp.SolverStatsSnapshot {
	return solverFor(ps).Stats()
}
