package te

import (
	"math"
	"testing"

	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

// TestDeltaMLUSolverMatchesOptimal drives random demand sequences through
// the RHS-delta solver and checks every optimum against the EQ-formulation
// MLUSolver, validating the GE-relaxation argument end to end. Sequences are
// FD-probe shaped (single-coordinate perturbations) so the rhs fast path
// actually fires.
func TestDeltaMLUSolverMatchesOptimal(t *testing.T) {
	for _, tc := range []struct {
		name string
		ps   *paths.PathSet
	}{
		// Geant with the full K=4 path set is correct too but pushes the
		// EQ-formulation reference solver into tens of seconds; K=2 keeps the
		// cross-check cheap while exercising the same structure.
		{"triangle", trianglePS()},
		{"abilene", abilenePS()},
		{"geant", paths.NewPathSet(topology.Geant(), 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ps := tc.ps
			r := rng.New(11)
			ds := NewDeltaMLUSolver(ps)
			ref := NewMLUSolver(ps)

			tm := make(TrafficMatrix, ps.NumPairs())
			for i := range tm {
				tm[i] = r.Float64()
			}
			check := func(iter int) {
				t.Helper()
				got, splits, err := ds.Solve(tm)
				if err != nil {
					t.Fatalf("iter %d: delta solve: %v", iter, err)
				}
				want, _, err := ref.Solve(tm)
				if err != nil {
					t.Fatalf("iter %d: reference solve: %v", iter, err)
				}
				tol := 1e-9 * math.Max(1, want)
				if math.Abs(got-want) > tol {
					t.Fatalf("iter %d: delta MLU %.15g, reference %.15g", iter, got, want)
				}
				if err := ValidateSplits(ps, splits); err != nil {
					t.Fatalf("iter %d: %v", iter, err)
				}
				// The recovered splits must actually achieve the optimum.
				ach, _ := MLU(ps, tm, splits)
				if ach > want+1e-7*math.Max(1, want) {
					t.Fatalf("iter %d: splits achieve %.15g, optimum %.15g", iter, ach, want)
				}
			}
			check(0)
			iters := 40
			if tc.name == "geant" {
				iters = 12
			}
			for iter := 1; iter <= iters; iter++ {
				if iter%10 == 0 {
					for i := range tm {
						tm[i] = r.Float64()
					}
				} else {
					i := r.Intn(len(tm))
					tm[i] = math.Max(0, tm[i]+0.05*(r.Float64()-0.5))
				}
				check(iter)
			}
			st := ds.Stats()
			if st.RHSHits == 0 {
				t.Fatalf("no rhs hits: %+v", st)
			}
			t.Logf("%s: solves %d, rhs attempts %d, rhs hits %d, pivots %d",
				tc.name, st.Solves, st.RHSAttempts, st.RHSHits, st.Pivots)
		})
	}
}

// TestDeltaMLUSolverZeroAndErrorCases covers the degenerate paths: the
// all-zero matrix and demand on a pathless pair.
func TestDeltaMLUSolverZeroAndErrorCases(t *testing.T) {
	ps := trianglePS()
	ds := NewDeltaMLUSolver(ps)
	mlu, splits, err := ds.Solve(make(TrafficMatrix, ps.NumPairs()))
	if err != nil || mlu != 0 {
		t.Fatalf("zero matrix: mlu %v err %v", mlu, err)
	}
	if err := ValidateSplits(ps, splits); err != nil {
		t.Fatal(err)
	}
	tm := make(TrafficMatrix, ps.NumPairs())
	tm[0] = 1
	if _, _, err := ds.Solve(tm); err != nil {
		t.Fatalf("after zero matrix: %v", err)
	}
}
