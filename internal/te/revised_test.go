package te

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lp"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	s := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d / s
}

// gravityTM builds one deterministic gravity-like traffic matrix without
// pulling in the traffic package (which imports te).
func gravityTM(ps *paths.PathSet, scale float64, r *rng.RNG) TrafficMatrix {
	tm := make(TrafficMatrix, ps.NumPairs())
	for i := range tm {
		tm[i] = scale * r.Uniform(0.05, 1)
	}
	return tm
}

// TestMLURevisedMatchesDense pins the revised engine to the dense oracle on
// the real evaluation topologies: identical MLU objectives to 1e-9 rel
// across a perturbed matrix sequence.
func TestMLURevisedMatchesDense(t *testing.T) {
	topos := map[string]*topology.Graph{
		"abilene": topology.Abilene(),
		"geant":   topology.Geant(),
		"b4":      topology.B4(),
	}
	for name, g := range topos {
		ps := paths.NewPathSet(g, 4)
		dense := NewMLUSolver(ps)
		dense.SetMethod(lp.MethodDense)
		rev := NewMLUSolver(ps)
		rev.SetMethod(lp.MethodRevised)
		r := rng.New(5)
		scale := g.AvgLinkCapacity() / 8
		for iter := 0; iter < 6; iter++ {
			tm := gravityTM(ps, scale, r)
			dMLU, _, err := dense.Solve(tm)
			if err != nil {
				t.Fatalf("%s iter %d: dense: %v", name, iter, err)
			}
			rMLU, rSplits, err := rev.Solve(tm)
			if err != nil {
				t.Fatalf("%s iter %d: revised: %v", name, iter, err)
			}
			if d := relDiff(dMLU, rMLU); d > 1e-9 {
				t.Fatalf("%s iter %d: dense MLU %.15g revised %.15g (rel %.3g)", name, iter, dMLU, rMLU, d)
			}
			// Splits must be a valid routing: verify the revised solution
			// actually achieves its claimed MLU on the network.
			if got, _ := MLU(ps, tm, rSplits); relDiff(got, rMLU) > 1e-7 {
				t.Fatalf("%s iter %d: revised splits achieve MLU %.12g, LP claims %.12g", name, iter, got, rMLU)
			}
		}
		if rev.Stats().Pivots == 0 {
			t.Fatalf("%s: revised solver reported zero pivots — engine not exercised", name)
		}
	}
}

// TestDeltaSolverRevisedMatchesDense runs the RHS-delta flow solver under
// both engines across a demand sequence with occasional large swings, so the
// revised path exercises zero-pivot hits AND dual-simplex repairs.
func TestDeltaSolverRevisedMatchesDense(t *testing.T) {
	g := topology.Abilene()
	ps := paths.NewPathSet(g, 4)
	dense := NewDeltaMLUSolver(ps)
	dense.SetMethod(lp.MethodDense)
	rev := NewDeltaMLUSolver(ps)
	rev.SetMethod(lp.MethodRevised)
	r := rng.New(17)
	scale := g.AvgLinkCapacity() / 8
	tm := gravityTM(ps, scale, r)
	for iter := 0; iter < 40; iter++ {
		dMLU, _, err := dense.Solve(tm)
		if err != nil {
			t.Fatalf("iter %d: dense: %v", iter, err)
		}
		rMLU, _, err := rev.Solve(tm)
		if err != nil {
			t.Fatalf("iter %d: revised: %v", iter, err)
		}
		if d := relDiff(dMLU, rMLU); d > 1e-9 {
			t.Fatalf("iter %d: dense MLU %.15g revised %.15g (rel %.3g)", iter, dMLU, rMLU, d)
		}
		// Mostly small probes (ResolveRHS fast-path territory) with a big
		// kick every 5th iteration to force primal infeasibility.
		if iter%5 == 4 {
			i := r.Intn(len(tm))
			tm[i] *= 3
		} else {
			i := r.Intn(len(tm))
			tm[i] *= r.Uniform(0.9, 1.1)
		}
	}
	rs := rev.Stats()
	if rs.RHSAttempts == 0 {
		t.Fatal("revised delta solver never took the RHS fast path")
	}
	if rs.DualResolves == 0 {
		t.Fatal("no RHS delta was repaired by the dual simplex — the big kicks should force it")
	}
	t.Logf("revised delta stats: attempts=%d zero-pivot hits=%d dual resolves=%d dual pivots=%d cold=%d",
		rs.RHSAttempts, rs.RHSHits, rs.DualResolves, rs.DualPivots, rs.ColdSolves)
}

// TestLargeTopologyRevised solves a tegen-grown Waxman MLU LP with the
// revised engine — the problem size where the dense tableau (~rows×cols
// float64s) would not be practical. Kept moderate (60 nodes) so the test
// suite stays fast; the 100-node acceptance point runs in BenchmarkWaxman100
// (make bench-lp).
func TestLargeTopologyRevised(t *testing.T) {
	if testing.Short() {
		t.Skip("large LP in -short mode")
	}
	g := topology.Waxman(60, 4, 5, 10, rng.New(42))
	ps := paths.NewPathSet(g, 4)
	s := NewMLUSolver(ps)
	s.SetMethod(lp.MethodRevised)
	tm := gravityTM(ps, g.AvgLinkCapacity()/float64(g.NumNodes()), rng.New(1))
	mlu, splits, err := s.Solve(tm)
	if err != nil {
		t.Fatalf("revised solve: %v", err)
	}
	if mlu <= 0 {
		t.Fatalf("MLU %g, want > 0", mlu)
	}
	if got, _ := MLU(ps, tm, splits); relDiff(got, mlu) > 1e-7 {
		t.Fatalf("splits achieve MLU %.12g, LP claims %.12g", got, mlu)
	}
}

// TestRevisedConcurrentPool is the -race leg for the revised engine: several
// goroutines solving through one shared MLUSolver (pooled lp.Solvers, each
// with retained revised-simplex state) while another scrapes Stats() and a
// fourth flips the method override mid-flight. Correctness of each answer is
// pinned against a dense oracle computed up front.
func TestRevisedConcurrentPool(t *testing.T) {
	g := topology.Abilene()
	ps := paths.NewPathSet(g, 4)
	scale := g.AvgLinkCapacity() / 8

	// Oracle MLUs for a fixed set of matrices, via dense.
	const nTM = 8
	tms := make([]TrafficMatrix, nTM)
	want := make([]float64, nTM)
	oracle := NewMLUSolver(ps)
	oracle.SetMethod(lp.MethodDense)
	r := rng.New(23)
	for i := range tms {
		tms[i] = gravityTM(ps, scale, r)
		mlu, _, err := oracle.Solve(tms[i])
		if err != nil {
			t.Fatalf("oracle tm %d: %v", i, err)
		}
		want[i] = mlu
	}

	shared := NewMLUSolver(ps)
	shared.SetMethod(lp.MethodRevised)
	done := make(chan struct{})
	var aux, workers sync.WaitGroup
	// Scraper: hammer the aggregated stats view while solves fold deltas in.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = shared.Stats()
			}
		}
	}()
	// Flipper: toggle the method override; in-flight borrows keep the method
	// they started with, so every answer must still match the oracle.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
				if i%2 == 0 {
					shared.SetMethod(lp.MethodRevised)
				} else {
					shared.SetMethod(lp.MethodAuto)
				}
			}
		}
	}()
	var solveErr atomic.Value
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(worker int) {
			defer workers.Done()
			for iter := 0; iter < 12; iter++ {
				i := (worker + iter) % nTM
				mlu, _, err := shared.Solve(tms[i])
				if err != nil {
					solveErr.Store(fmt.Errorf("worker %d iter %d: %v", worker, iter, err))
					return
				}
				if d := relDiff(mlu, want[i]); d > 1e-9 {
					solveErr.Store(fmt.Errorf("worker %d tm %d: MLU %.15g want %.15g (rel %.3g)", worker, i, mlu, want[i], d))
					return
				}
			}
		}(w)
	}
	workers.Wait()
	close(done)
	aux.Wait()
	if err := solveErr.Load(); err != nil {
		t.Fatal(err)
	}
}

// TestSetLPMethodDefault checks the package default reaches pooled solvers.
func TestSetLPMethodDefault(t *testing.T) {
	SetLPMethod(lp.MethodRevised)
	defer SetLPMethod(lp.MethodAuto)
	if LPMethod() != lp.MethodRevised {
		t.Fatal("SetLPMethod did not stick")
	}
	g := topology.Triangle()
	ps := paths.NewPathSet(g, 2)
	s := NewMLUSolver(ps)
	tm := gravityTM(ps, 10, rng.New(2))
	if _, _, err := s.Solve(tm); err != nil {
		t.Fatalf("solve under revised default: %v", err)
	}
	if s.Stats().Refactors == 0 {
		t.Fatal("revised default not applied: no refactorizations recorded")
	}
}
