package te_test

import (
	"fmt"

	"repro/internal/paths"
	"repro/internal/te"
	"repro/internal/topology"
)

// ExampleOptimalMLU reproduces the Figure 3 demand set: two demands of 100
// out of node 1 saturate its outgoing capacity, so the optimal MLU is 1.
func ExampleOptimalMLU() {
	g := topology.Triangle()
	ps := paths.NewPathSet(g, 4)
	tm := make(te.TrafficMatrix, ps.NumPairs())
	tm[ps.PairIndex(g.NodeIndex("1"), g.NodeIndex("2"))] = 100
	tm[ps.PairIndex(g.NodeIndex("1"), g.NodeIndex("3"))] = 100
	opt, _, _ := te.OptimalMLU(ps, tm)
	fmt.Printf("optimal MLU = %g\n", opt)
	// Output: optimal MLU = 1
}

// ExampleMLU routes the same demands on fixed split ratios and shows the
// resulting utilization.
func ExampleMLU() {
	g := topology.Triangle()
	ps := paths.NewPathSet(g, 4)
	tm := make(te.TrafficMatrix, ps.NumPairs())
	tm[ps.PairIndex(g.NodeIndex("1"), g.NodeIndex("2"))] = 100
	mlu, _ := te.MLU(ps, tm, te.ShortestPathSplits(ps))
	fmt.Printf("MLU = %g\n", mlu)
	// Output: MLU = 1
}
