package te

import (
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

func randomPoint(ps *paths.PathSet, r *rng.RNG) (TrafficMatrix, Splits) {
	tm := make(TrafficMatrix, ps.NumPairs())
	for i := range tm {
		if r.Float64() < 0.2 {
			continue // keep some exact zeros in play
		}
		tm[i] = 5 * r.Float64()
	}
	off, total := ps.Offsets()
	s := make(Splits, total)
	for i, pp := range ps.PairPaths {
		if len(pp) == 0 {
			continue
		}
		sum := 0.0
		for k := range pp {
			v := r.Float64()
			if r.Float64() < 0.25 {
				v = 0
			}
			s[off[i]+k] = v
			sum += v
		}
		if sum == 0 {
			s[off[i]] = 1
			sum = 1
		}
		for k := range pp {
			s[off[i]+k] /= sum
		}
	}
	return tm, s
}

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestIncrementalEquivalenceRandomDeltas drives long randomized sequences of
// committed demand/split deltas and checks the resident LinkLoads/MLU stay
// within 1e-9 relative tolerance of a full recompute, and become exactly
// equal after each refresh epoch.
func TestIncrementalEquivalenceRandomDeltas(t *testing.T) {
	for _, tc := range []struct {
		name string
		ps   *paths.PathSet
	}{
		{"triangle", trianglePS()},
		{"abilene", abilenePS()},
		{"geant", paths.NewPathSet(topology.Geant(), 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ps := tc.ps
			r := rng.New(7)
			tm, s := randomPoint(ps, r)
			ev := NewIncrementalEvaluator(ps)
			ev.RefreshEvery = 64 // exercise several refresh epochs
			reg := obs.NewRegistry()
			ev.Instrument(reg)
			ev.Rebase(tm, s)

			_, total := ps.Offsets()
			check := func(iter int, exact bool) {
				t.Helper()
				wantLoads := LinkLoads(ps, tm, s)
				wantMLU, _ := MLU(ps, tm, s)
				gotLoads := ev.LinkLoads()
				gotMLU, gotArg := ev.MLU()
				for e := range wantLoads {
					if exact {
						if gotLoads[e] != wantLoads[e] {
							t.Fatalf("iter %d edge %d: load %v, want exactly %v", iter, e, gotLoads[e], wantLoads[e])
						}
					} else if relErr(gotLoads[e], wantLoads[e]) > 1e-9 {
						t.Fatalf("iter %d edge %d: load %v, want %v", iter, e, gotLoads[e], wantLoads[e])
					}
				}
				if exact && gotMLU != wantMLU {
					t.Fatalf("iter %d: MLU %v, want exactly %v", iter, gotMLU, wantMLU)
				}
				if relErr(gotMLU, wantMLU) > 1e-9 {
					t.Fatalf("iter %d: MLU %v, want %v", iter, gotMLU, wantMLU)
				}
				if u := ev.Utilizations()[gotArg]; u != gotMLU {
					t.Fatalf("iter %d: argmax edge %d has util %v, MLU %v", iter, gotArg, u, gotMLU)
				}
			}
			check(-1, true)

			for iter := 0; iter < 400; iter++ {
				if r.Float64() < 0.5 {
					pair := r.Intn(ps.NumPairs())
					v := tm[pair]
					switch r.Intn(3) {
					case 0:
						v = 5 * r.Float64()
					case 1:
						v = math.Max(0, v+0.5*(r.Float64()-0.5))
					default:
						v = 0
					}
					tm[pair] = v
					ev.SetDemand(pair, v)
				} else {
					slot := r.Intn(total)
					v := math.Max(0, s[slot]+0.3*(r.Float64()-0.5))
					s[slot] = v
					ev.SetSplit(slot, v)
				}
				check(iter, false)
			}

			// An explicit refresh restores exact agreement.
			ev.Refresh()
			check(400, true)

			snap := reg.Snapshot()
			if n := snap.Counters["te.incr.updates"]; n != 400 {
				t.Fatalf("updates counter %d, want 400", n)
			}
			// 400 updates with RefreshEvery=64 must have crossed epochs.
			if n := snap.Counters["te.incr.refreshes"]; n < 6 {
				t.Fatalf("refreshes counter %d, want >= 6", n)
			}
		})
	}
}

// TestIncrementalRefreshEpochExact pins the auto-refresh contract: exactly at
// a refresh epoch boundary the resident state equals a full recompute bitwise.
func TestIncrementalRefreshEpochExact(t *testing.T) {
	ps := abilenePS()
	r := rng.New(99)
	tm, s := randomPoint(ps, r)
	ev := NewIncrementalEvaluator(ps)
	ev.RefreshEvery = 16
	ev.Rebase(tm, s)
	for iter := 1; iter <= 64; iter++ {
		pair := r.Intn(ps.NumPairs())
		v := 5 * r.Float64()
		tm[pair] = v
		ev.SetDemand(pair, v)
		if iter%16 != 0 {
			continue
		}
		wantLoads := LinkLoads(ps, tm, s)
		got := ev.LinkLoads()
		for e := range wantLoads {
			if got[e] != wantLoads[e] {
				t.Fatalf("epoch %d edge %d: load %v, want exactly %v", iter/16, e, got[e], wantLoads[e])
			}
		}
		wantMLU, _ := MLU(ps, tm, s)
		if gotMLU, _ := ev.MLU(); gotMLU != wantMLU {
			t.Fatalf("epoch %d: MLU %v, want exactly %v", iter/16, gotMLU, wantMLU)
		}
	}
}

// TestIncrementalProbesExactAfterRebase pins the probe contract the sparse
// FD fast path depends on: immediately after Rebase, ProbeDemand/ProbeSplit
// are bitwise identical to a full evaluation at the perturbed point.
func TestIncrementalProbesExactAfterRebase(t *testing.T) {
	ps := abilenePS()
	r := rng.New(3)
	tm, s := randomPoint(ps, r)
	ev := NewIncrementalEvaluator(ps)
	ev.Rebase(tm, s)
	_, total := ps.Offsets()

	fullMax := func(tm TrafficMatrix, s Splits) float64 {
		u := Utilizations(ps, LinkLoads(ps, tm, s))
		best := u[0]
		for _, v := range u[1:] {
			if v > best {
				best = v
			}
		}
		return best
	}

	const h = 1e-4
	tmp := tm.Clone()
	for pair := 0; pair < ps.NumPairs(); pair++ {
		for _, d := range []float64{h, -h} {
			got := ev.ProbeDemand(pair, d)
			tmp[pair] = tm[pair] + d
			want := fullMax(tmp, s)
			tmp[pair] = tm[pair]
			if got != want {
				t.Fatalf("ProbeDemand(%d, %v) = %v, want exactly %v", pair, d, got, want)
			}
		}
	}
	stmp := append(Splits{}, s...)
	for slot := 0; slot < total; slot++ {
		for _, d := range []float64{h, -h} {
			got := ev.ProbeSplit(slot, d)
			stmp[slot] = s[slot] + d
			want := fullMax(tm, stmp)
			stmp[slot] = s[slot]
			if got != want {
				t.Fatalf("ProbeSplit(%d, %v) = %v, want exactly %v", slot, d, got, want)
			}
		}
	}
	// Probes must not have mutated the operating point.
	wantLoads := LinkLoads(ps, tm, s)
	for e, l := range ev.LinkLoads() {
		if l != wantLoads[e] {
			t.Fatalf("probe mutated loads at edge %d", e)
		}
	}
}

// TestIncrementalProbeRescanPath forces the argmax link to decrease under a
// probe so the O(E) rescan branch is covered.
func TestIncrementalProbeRescanPath(t *testing.T) {
	ps := trianglePS()
	tm := make(TrafficMatrix, ps.NumPairs())
	tm[0] = 10 // one dominant pair: its path edges hold the argmax
	s := UniformSplits(ps)
	ev := NewIncrementalEvaluator(ps)
	reg := obs.NewRegistry()
	ev.Instrument(reg)
	ev.Rebase(tm, s)

	got := ev.ProbeDemand(0, -9.5)
	tm2 := tm.Clone()
	tm2[0] = 0.5
	want, _ := MLU(ps, tm2, s)
	if relErr(got, want) > 1e-12 {
		t.Fatalf("rescan probe = %v, want %v", got, want)
	}
	if n := reg.Snapshot().Counters["te.incr.rescans"]; n < 1 {
		t.Fatalf("expected a rescan, counter = %d", n)
	}
}

// TestIncrementalConcurrentEvaluators is the -race leg: independent
// evaluators over a shared PathSet probing concurrently must not race.
func TestIncrementalConcurrentEvaluators(t *testing.T) {
	ps := abilenePS()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			tm, s := randomPoint(ps, r)
			ev := NewIncrementalEvaluator(ps)
			ev.Rebase(tm, s)
			for i := 0; i < 200; i++ {
				pair := r.Intn(ps.NumPairs())
				ev.ProbeDemand(pair, 1e-4)
				ev.SetDemand(pair, 2*r.Float64())
			}
			mlu, _ := ev.MLU()
			if math.IsNaN(mlu) {
				t.Errorf("NaN MLU")
			}
		}(uint64(w + 1))
	}
	wg.Wait()
}

// TestProbeSupportCertificate pins the probe-support certificate the sparse
// gradient fast path relies on: every coordinate SplitProbeCanMoveMax /
// DemandProbeCanMoveMax rejects must return the resident MLU BITWISE from
// both ±h probes (so its central difference is exactly zero), and on
// bottleneck-structured operating points the certified set must be a strict
// minority of the coordinates — otherwise certifying buys nothing.
func TestProbeSupportCertificate(t *testing.T) {
	const h = 1e-4
	for _, tc := range []struct {
		name string
		ps   *paths.PathSet
	}{
		{"triangle", trianglePS()},
		{"abilene", abilenePS()},
		{"geant", paths.NewPathSet(topology.Geant(), 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ps := tc.ps
			r := rng.New(11)
			_, total := ps.Offsets()
			for trial := 0; trial < 4; trial++ {
				tm, s := randomPoint(ps, r)
				ev := NewIncrementalEvaluator(ps)
				ev.Rebase(tm, s)
				maxU, _ := ev.MLU()
				certified, coords := 0, total+ps.NumPairs()
				for slot := 0; slot < total; slot++ {
					can := ev.SplitProbeCanMoveMax(slot, h)
					fp, fm := ev.ProbeSplit(slot, h), ev.ProbeSplit(slot, -h)
					if can {
						certified++
					} else if fp != maxU || fm != maxU {
						t.Fatalf("trial %d slot %d: certificate says zero but probes %v / %v, resident %v",
							trial, slot, fp, fm, maxU)
					}
				}
				for pair := 0; pair < ps.NumPairs(); pair++ {
					can := ev.DemandProbeCanMoveMax(pair, h)
					fp, fm := ev.ProbeDemand(pair, h), ev.ProbeDemand(pair, -h)
					if can {
						certified++
					} else if fp != maxU || fm != maxU {
						t.Fatalf("trial %d pair %d: certificate says zero but probes %v / %v, resident %v",
							trial, pair, fp, fm, maxU)
					}
				}
				if certified == 0 {
					t.Fatalf("trial %d: empty certificate at MLU %v", trial, maxU)
				}
				if coords > 100 && certified > coords/2 {
					t.Fatalf("trial %d: certificate covers %d of %d coordinates — not sparse", trial, certified, coords)
				}
				t.Logf("trial %d: certified %d of %d coordinates", trial, certified, coords)
			}
		})
	}
}
