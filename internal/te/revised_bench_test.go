package te

import (
	"testing"

	"repro/internal/lp"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

// waxman100PS caches the 100-node benchmark path set: the Go bench harness
// re-invokes each Benchmark function while calibrating b.N, and K-shortest
// paths over 9900 pairs cost more than the solve being measured.
var waxman100PS *paths.PathSet

func waxmanPS() *paths.PathSet {
	if waxman100PS == nil {
		g := topology.Waxman(100, 4, 5, 10, rng.New(7))
		waxman100PS = paths.NewPathSet(g, 4)
	}
	return waxman100PS
}

// BenchmarkWaxman100 is the acceptance point for the sparse revised engine: a
// tegen-grown 100-node Waxman topology (400 directed edges, 9900 pairs, K=4
// → ~10,300 LP rows, ~40,000 columns). The dense tableau at this size is
// ~3–4 GB and not practical, so only the revised engine runs: a from-scratch
// cold solve, and warm re-solves across small demand perturbations (the
// adversarial-search steady state).
func BenchmarkWaxman100(b *testing.B) {
	ps := waxmanPS()
	scale := ps.Graph.AvgLinkCapacity() / float64(ps.Graph.NumNodes())
	b.Run("cold", func(b *testing.B) {
		tm := gravityTM(ps, scale, rng.New(1))
		var pivots int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := NewMLUSolver(ps)
			s.SetMethod(lp.MethodRevised)
			if _, _, err := s.Solve(tm); err != nil {
				b.Fatal(err)
			}
			pivots += int64(s.Stats().Pivots)
		}
		b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
	})
	b.Run("warm", func(b *testing.B) {
		r := rng.New(2)
		tm := gravityTM(ps, scale, r)
		s := NewMLUSolver(ps)
		s.SetMethod(lp.MethodRevised)
		if _, _, err := s.Solve(tm); err != nil {
			b.Fatal(err)
		}
		before := s.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := r.Intn(len(tm))
			tm[j] *= r.Uniform(0.95, 1.05)
			if _, _, err := s.Solve(tm); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(s.Stats().Pivots-before.Pivots)/float64(b.N), "pivots/op")
	})
}
