package te

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/paths"
)

// DefaultRefreshEvery is the committed-update count after which an
// IncrementalEvaluator performs an automatic full recompute. Each committed
// delta perturbs the resident link loads by at most a few ulps, so the
// worst-case relative drift after n updates is O(n·ε); 4096 keeps it far
// below the 1e-9 equivalence tolerance the property tests pin.
const DefaultRefreshEvery = 4096

// IncrementalEvaluator keeps the link loads, utilizations, and MLU of one
// (traffic matrix, splits) operating point resident and updates them in time
// proportional to what changed rather than to topology size.
//
// Two mutation families with different accuracy contracts:
//
//   - SetDemand/SetSplit COMMIT a delta: only the links on the affected
//     pair's (or slot's) paths are adjusted, and the max is maintained via a
//     bounded recompute set — an O(E) rescan happens only when the argmax
//     link itself decreases. Committed deltas accumulate floating-point
//     drift, bounded by an automatic full recompute every RefreshEvery
//     updates (and on demand via Refresh).
//
//   - ProbeDemand/ProbeSplit evaluate the MLU at a perturbed point WITHOUT
//     mutating the evaluator. Touched links are recomputed from scratch in
//     slot order, so immediately after Rebase/Refresh a probe is bitwise
//     identical to a full pipeline evaluation at the probed point — the
//     property that lets the sparse finite-difference fast path reproduce
//     the dense search trajectory exactly.
//
// The zero-demand convention matches the routing kernels: slots whose flow
// is exactly zero are skipped, so skipped and added-as-zero terms agree
// bitwise. MLU() initializes its max at link 0 (like the pipeline's max
// stage) rather than at 0 (like the standalone MLU helper); the two agree
// whenever any utilization is non-negative.
//
// Not safe for concurrent use; independent evaluators are independent.
type IncrementalEvaluator struct {
	ps      *paths.PathSet
	offsets []int
	nPairs  int
	nSlots  int

	slotPair  []int
	slotEdges [][]int
	caps      []float64

	// reverse incidence: the slots crossing each edge, ascending, so a
	// per-edge from-scratch recompute visits slots in the same order as the
	// forward kernel and accumulates bitwise-identical partial sums
	edgeSlotOff  []int
	edgeSlotFlat []int

	tm    []float64
	s     []float64
	loads []float64
	util  []float64
	maxU  float64
	arg   int

	applied      int
	RefreshEvery int

	// probe/update scratch, reset after every operation
	touched []int
	mark    []bool
	probeU  []float64

	// telemetry handles; nil when uninstrumented (obs no-op contract)
	cProbes    *obs.Counter
	cUpdates   *obs.Counter
	cRefreshes *obs.Counter
	cRescans   *obs.Counter
	hProbeNS   *obs.Histogram
	hFullNS    *obs.Histogram
}

// NewIncrementalEvaluator builds an evaluator over ps's path structure. The
// operating point starts at all-zero demands and splits; call Rebase before
// probing.
func NewIncrementalEvaluator(ps *paths.PathSet) *IncrementalEvaluator {
	g := ps.Graph
	offsets, total := ps.Offsets()
	nE := g.NumEdges()
	ev := &IncrementalEvaluator{
		ps:           ps,
		offsets:      offsets,
		nPairs:       ps.NumPairs(),
		nSlots:       total,
		slotPair:     make([]int, total),
		slotEdges:    make([][]int, total),
		caps:         make([]float64, nE),
		tm:           make([]float64, ps.NumPairs()),
		s:            make([]float64, total),
		loads:        make([]float64, nE),
		util:         make([]float64, nE),
		mark:         make([]bool, nE),
		probeU:       make([]float64, nE),
		RefreshEvery: DefaultRefreshEvery,
	}
	for i, pp := range ps.PairPaths {
		for k, path := range pp {
			ev.slotPair[offsets[i]+k] = i
			ev.slotEdges[offsets[i]+k] = path.Edges
		}
	}
	for e := 0; e < nE; e++ {
		ev.caps[e] = g.Edge(e).Capacity
	}
	// Count-then-fill the edge→slot reverse incidence; appending slots in
	// ascending order keeps each edge's slot list sorted.
	ev.edgeSlotOff = make([]int, nE+1)
	for _, edges := range ev.slotEdges {
		for _, e := range edges {
			ev.edgeSlotOff[e+1]++
		}
	}
	for e := 0; e < nE; e++ {
		ev.edgeSlotOff[e+1] += ev.edgeSlotOff[e]
	}
	ev.edgeSlotFlat = make([]int, ev.edgeSlotOff[nE])
	fill := make([]int, nE)
	copy(fill, ev.edgeSlotOff[:nE])
	for slot, edges := range ev.slotEdges {
		for _, e := range edges {
			ev.edgeSlotFlat[fill[e]] = slot
			fill[e]++
		}
	}
	return ev
}

// Instrument attaches (reg non-nil) or detaches (reg nil) telemetry:
// counters te.incr.probes / te.incr.updates / te.incr.refreshes /
// te.incr.rescans and latency histograms te.incr.probe.ns / te.incr.full.ns.
// Timing is only taken when instrumented, so the uninstrumented hot path
// pays one nil check.
func (ev *IncrementalEvaluator) Instrument(reg *obs.Registry) {
	if reg == nil {
		ev.cProbes, ev.cUpdates, ev.cRefreshes, ev.cRescans = nil, nil, nil, nil
		ev.hProbeNS, ev.hFullNS = nil, nil
		return
	}
	ev.cProbes = reg.Counter("te.incr.probes")
	ev.cUpdates = reg.Counter("te.incr.updates")
	ev.cRefreshes = reg.Counter("te.incr.refreshes")
	ev.cRescans = reg.Counter("te.incr.rescans")
	ev.hProbeNS = reg.Histogram("te.incr.probe.ns")
	ev.hFullNS = reg.Histogram("te.incr.full.ns")
}

// Rebase copies tm and s as the new operating point and fully recomputes
// loads, utilizations, and the max. The inputs are copied; the caller keeps
// ownership.
func (ev *IncrementalEvaluator) Rebase(tm TrafficMatrix, s Splits) {
	if len(tm) != ev.nPairs || len(s) != ev.nSlots {
		panic(fmt.Sprintf("te: Rebase with %d demands / %d splits, want %d / %d",
			len(tm), len(s), ev.nPairs, ev.nSlots))
	}
	copy(ev.tm, tm)
	copy(ev.s, s)
	ev.recompute()
	ev.applied = 0
}

// Refresh forces a full recompute from the resident operating point,
// discarding any accumulated floating-point drift.
func (ev *IncrementalEvaluator) Refresh() {
	ev.recompute()
	ev.applied = 0
}

func (ev *IncrementalEvaluator) recompute() {
	var t0 time.Time
	if ev.hFullNS != nil {
		t0 = time.Now()
	}
	ev.cRefreshes.Inc()
	for e := range ev.loads {
		ev.loads[e] = 0
	}
	for slot := 0; slot < ev.nSlots; slot++ {
		f := ev.tm[ev.slotPair[slot]] * ev.s[slot]
		if f == 0 {
			continue
		}
		for _, e := range ev.slotEdges[slot] {
			ev.loads[e] += f
		}
	}
	for e := range ev.loads {
		ev.util[e] = ev.loads[e] / ev.caps[e]
	}
	ev.maxU, ev.arg = ev.util[0], 0
	for e := 1; e < len(ev.util); e++ {
		if ev.util[e] > ev.maxU {
			ev.maxU, ev.arg = ev.util[e], e
		}
	}
	if ev.hFullNS != nil {
		ev.hFullNS.Observe(float64(time.Since(t0)))
	}
}

// MLU returns the resident maximum link utilization and its edge ID.
func (ev *IncrementalEvaluator) MLU() (float64, int) { return ev.maxU, ev.arg }

// LinkLoads returns the resident per-edge loads. The slice is owned by the
// evaluator and valid until the next mutation; callers must not modify it.
func (ev *IncrementalEvaluator) LinkLoads() []float64 { return ev.loads }

// Utilizations returns the resident per-edge utilizations under the same
// borrowing contract as LinkLoads.
func (ev *IncrementalEvaluator) Utilizations() []float64 { return ev.util }

// Demand returns the resident demand of a pair.
func (ev *IncrementalEvaluator) Demand(pair int) float64 { return ev.tm[pair] }

// Split returns the resident split ratio of a path slot.
func (ev *IncrementalEvaluator) Split(slot int) float64 { return ev.s[slot] }

// SetDemand commits demand pair := v, adjusting only the links on that
// pair's paths.
func (ev *IncrementalEvaluator) SetDemand(pair int, v float64) {
	delta := v - ev.tm[pair]
	ev.tm[pair] = v
	if delta != 0 {
		lo, hi := ev.slotRange(pair)
		for slot := lo; slot < hi; slot++ {
			sv := ev.s[slot]
			if sv == 0 {
				continue
			}
			f := delta * sv
			for _, e := range ev.slotEdges[slot] {
				ev.loads[e] += f
				if !ev.mark[e] {
					ev.mark[e] = true
					ev.touched = append(ev.touched, e)
				}
			}
		}
		ev.commitTouched()
	}
	ev.finishUpdate()
}

// SetSplit commits split slot := v, adjusting only that slot's links.
func (ev *IncrementalEvaluator) SetSplit(slot int, v float64) {
	delta := v - ev.s[slot]
	ev.s[slot] = v
	if f := ev.tm[ev.slotPair[slot]] * delta; f != 0 {
		for _, e := range ev.slotEdges[slot] {
			ev.loads[e] += f
			if !ev.mark[e] {
				ev.mark[e] = true
				ev.touched = append(ev.touched, e)
			}
		}
		ev.commitTouched()
	}
	ev.finishUpdate()
}

// commitTouched refreshes utilizations on the touched set, maintains the
// max, and clears the scratch.
func (ev *IncrementalEvaluator) commitTouched() {
	for _, e := range ev.touched {
		ev.util[e] = ev.loads[e] / ev.caps[e]
	}
	switch {
	case !ev.mark[ev.arg]:
		// The argmax link is untouched, so it still dominates every other
		// untouched link; only the touched set can beat it.
		for _, e := range ev.touched {
			if ev.util[e] > ev.maxU {
				ev.maxU, ev.arg = ev.util[e], e
			}
		}
	case ev.util[ev.arg] >= ev.maxU:
		// The argmax link moved but did not decrease: it still dominates the
		// untouched links, so scanning the touched set suffices.
		ev.maxU = ev.util[ev.arg]
		for _, e := range ev.touched {
			if ev.util[e] > ev.maxU {
				ev.maxU, ev.arg = ev.util[e], e
			}
		}
	default:
		// The argmax link decreased: any link may now be the max — the one
		// bounded O(E) rescan in the design.
		ev.cRescans.Inc()
		ev.maxU, ev.arg = ev.util[0], 0
		for e := 1; e < len(ev.util); e++ {
			if ev.util[e] > ev.maxU {
				ev.maxU, ev.arg = ev.util[e], e
			}
		}
	}
	for _, e := range ev.touched {
		ev.mark[e] = false
	}
	ev.touched = ev.touched[:0]
}

func (ev *IncrementalEvaluator) finishUpdate() {
	ev.cUpdates.Inc()
	ev.applied++
	if ev.RefreshEvery > 0 && ev.applied >= ev.RefreshEvery {
		ev.recompute()
		ev.applied = 0
	}
}

func (ev *IncrementalEvaluator) slotRange(pair int) (lo, hi int) {
	lo = ev.offsets[pair]
	if pair+1 < len(ev.offsets) {
		return lo, ev.offsets[pair+1]
	}
	return lo, ev.nSlots
}

// ProbeDemand returns the MLU at the point where demand pair is perturbed by
// delta, without mutating the evaluator. Touched links are recomputed from
// scratch, so right after Rebase/Refresh the result is bitwise identical to
// a full evaluation at the perturbed point.
func (ev *IncrementalEvaluator) ProbeDemand(pair int, delta float64) float64 {
	var t0 time.Time
	if ev.hProbeNS != nil {
		t0 = time.Now()
	}
	ev.cProbes.Inc()
	dNew := ev.tm[pair] + delta
	lo, hi := ev.slotRange(pair)
	for slot := lo; slot < hi; slot++ {
		if ev.s[slot] == 0 {
			continue // flow is exactly zero before and after the perturbation
		}
		for _, e := range ev.slotEdges[slot] {
			if !ev.mark[e] {
				ev.mark[e] = true
				ev.touched = append(ev.touched, e)
			}
		}
	}
	for _, e := range ev.touched {
		sum := 0.0
		for _, slot := range ev.edgeSlotFlat[ev.edgeSlotOff[e]:ev.edgeSlotOff[e+1]] {
			p := ev.slotPair[slot]
			d := ev.tm[p]
			if p == pair {
				d = dNew
			}
			f := d * ev.s[slot]
			if f == 0 {
				continue
			}
			sum += f
		}
		ev.probeU[e] = sum / ev.caps[e]
	}
	mlu := ev.probeMax()
	for _, e := range ev.touched {
		ev.mark[e] = false
	}
	ev.touched = ev.touched[:0]
	if ev.hProbeNS != nil {
		ev.hProbeNS.Observe(float64(time.Since(t0)))
	}
	return mlu
}

// ProbeSplit returns the MLU at the point where split slot is perturbed by
// delta, without mutating the evaluator. Same exactness contract as
// ProbeDemand.
func (ev *IncrementalEvaluator) ProbeSplit(slot int, delta float64) float64 {
	var t0 time.Time
	if ev.hProbeNS != nil {
		t0 = time.Now()
	}
	ev.cProbes.Inc()
	sNew := ev.s[slot] + delta
	if d := ev.tm[ev.slotPair[slot]]; d != 0 {
		for _, e := range ev.slotEdges[slot] {
			if !ev.mark[e] {
				ev.mark[e] = true
				ev.touched = append(ev.touched, e)
			}
		}
		for _, e := range ev.touched {
			sum := 0.0
			for _, s2 := range ev.edgeSlotFlat[ev.edgeSlotOff[e]:ev.edgeSlotOff[e+1]] {
				sv := ev.s[s2]
				if s2 == slot {
					sv = sNew
				}
				f := ev.tm[ev.slotPair[s2]] * sv
				if f == 0 {
					continue
				}
				sum += f
			}
			ev.probeU[e] = sum / ev.caps[e]
		}
	}
	mlu := ev.probeMax()
	for _, e := range ev.touched {
		ev.mark[e] = false
	}
	ev.touched = ev.touched[:0]
	if ev.hProbeNS != nil {
		ev.hProbeNS.Observe(float64(time.Since(t0)))
	}
	return mlu
}

// certifySlack is the rounding-safety margin of the probe-support
// certificate. A from-scratch touched-link recompute differs from the
// resident sum by at most a few hundred ulps (the sums have identical terms
// in identical order except the perturbed one), so any link whose
// real-arithmetic perturbed utilization clears the resident max by more than
// this margin provably cannot move the float-computed max either. 1e-9
// relative is ~6 orders above the worst-case accumulation and ~5 below the
// h·flow/capacity scale at which ties actually matter, so the certificate
// stays a strict superset of the true support without inflating it.
const certifySlack = 1e-9

// SplitProbeCanMoveMax reports whether ProbeSplit(slot, ±h) could return
// anything other than the resident MLU. A split probe changes only the flow
// on the slot's own links, each by exactly h·demand, so the probed
// utilization of link l is util[l] ± h·|demand|/caps[l]. If the slot's pair
// carries zero demand the probe touches nothing; otherwise the max can move
// only if some crossed link's raised utilization reaches the resident max
// (the lowered side can never beat an untouched argmax, and a touched argmax
// trivially satisfies the inequality since util[arg] = maxU). A false return
// certifies both central-difference probes return the resident max bitwise —
// the derivative is exactly zero and need not be measured.
func (ev *IncrementalEvaluator) SplitProbeCanMoveMax(slot int, h float64) bool {
	d := ev.tm[ev.slotPair[slot]]
	if d == 0 {
		return false
	}
	if d < 0 {
		d = -d
	}
	if h < 0 {
		h = -h
	}
	floor := ev.maxU - certifySlack*(1+ev.maxU)
	for _, e := range ev.slotEdges[slot] {
		if ev.util[e]+h*d/ev.caps[e] >= floor {
			return true
		}
	}
	return false
}

// DemandProbeCanMoveMax reports whether ProbeDemand(pair, ±h) could return
// anything other than the resident MLU. A demand probe scales every nonzero
// slot of the pair, so link l's flow moves by h·Σ s[slot] over the pair's
// slots crossing l — the per-link share is accumulated into the probe
// scratch and tested against the same resident-max floor as the split
// certificate. Same exactness contract: false certifies a bitwise-zero
// central difference.
func (ev *IncrementalEvaluator) DemandProbeCanMoveMax(pair int, h float64) bool {
	if h < 0 {
		h = -h
	}
	lo, hi := ev.slotRange(pair)
	for slot := lo; slot < hi; slot++ {
		sv := ev.s[slot]
		if sv == 0 {
			continue
		}
		if sv < 0 {
			sv = -sv
		}
		for _, e := range ev.slotEdges[slot] {
			if !ev.mark[e] {
				ev.mark[e] = true
				ev.touched = append(ev.touched, e)
				ev.probeU[e] = 0
			}
			ev.probeU[e] += sv
		}
	}
	floor := ev.maxU - certifySlack*(1+ev.maxU)
	can := false
	for _, e := range ev.touched {
		if ev.util[e]+h*ev.probeU[e]/ev.caps[e] >= floor {
			can = true
		}
		ev.mark[e] = false
	}
	ev.touched = ev.touched[:0]
	return can
}

// probeMax computes the max utilization at the probed point: resident values
// on untouched links, probeU on touched ones. Same bounded-recompute logic
// as commitTouched, functionally.
func (ev *IncrementalEvaluator) probeMax() float64 {
	if len(ev.touched) == 0 {
		return ev.maxU
	}
	if !ev.mark[ev.arg] {
		best := ev.maxU
		for _, e := range ev.touched {
			if ev.probeU[e] > best {
				best = ev.probeU[e]
			}
		}
		return best
	}
	if ev.probeU[ev.arg] >= ev.maxU {
		best := ev.probeU[ev.arg]
		for _, e := range ev.touched {
			if ev.probeU[e] > best {
				best = ev.probeU[e]
			}
		}
		return best
	}
	ev.cRescans.Inc()
	best := ev.util[0]
	if ev.mark[0] {
		best = ev.probeU[0]
	}
	for e := 1; e < len(ev.util); e++ {
		u := ev.util[e]
		if ev.mark[e] {
			u = ev.probeU[e]
		}
		if u > best {
			best = u
		}
	}
	return best
}
