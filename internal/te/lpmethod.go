package te

import (
	"sync/atomic"

	"repro/internal/lp"
)

// defaultLPMethod holds the package-wide lp.Method default as method+1, so
// the zero value means "unset" (lp.MethodAuto). Solvers read it at borrow /
// construction time; changing it mid-run affects subsequent solves.
var defaultLPMethod atomic.Int32

// SetLPMethod sets the package default simplex engine for every MLU solver
// built or borrowed afterwards (cmd flags call this once at startup). The
// default is lp.MethodAuto: dense for Abilene/Geant-scale problems where the
// dense tableau is the exactness oracle, sparse revised for tegen-grown
// topologies whose tableau would not fit. Safe to call concurrently.
func SetLPMethod(m lp.Method) { defaultLPMethod.Store(int32(m) + 1) }

// LPMethod returns the current package default.
func LPMethod() lp.Method {
	if v := defaultLPMethod.Load(); v != 0 {
		return lp.Method(v - 1)
	}
	return lp.MethodAuto
}
