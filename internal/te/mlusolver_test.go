package te

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestMLUSolverMatchesFreshSolver perturbs a demand matrix across many
// solves of one MLUSolver (which warm-starts internally) and checks each
// optimal MLU against a freshly built solver, within 1e-9. Split vectors are
// not compared — degenerate optima may pick different vertices — but the
// returned splits must achieve the reported MLU.
func TestMLUSolverMatchesFreshSolver(t *testing.T) {
	ps := abilenePS()
	warm := NewMLUSolver(ps)
	r := rng.New(3)
	tm := make(TrafficMatrix, ps.NumPairs())
	for i := range tm {
		tm[i] = r.Float64() * 3
	}
	for iter := 0; iter < 10; iter++ {
		for i := range tm {
			tm[i] *= 0.9 + 0.2*r.Float64()
			if r.Float64() < 0.05 {
				tm[i] = 0 // shape changes exercise the cold path too
			}
		}
		got, splits, err := warm.Solve(tm)
		if err != nil {
			t.Fatalf("iter %d: warm solve: %v", iter, err)
		}
		want, _, err := NewMLUSolver(ps).Solve(tm)
		if err != nil {
			t.Fatalf("iter %d: fresh solve: %v", iter, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("iter %d: warm MLU %.12f, fresh %.12f", iter, got, want)
		}
		if err := ValidateSplits(ps, splits); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		achieved, _ := MLU(ps, tm, splits)
		if math.Abs(achieved-got) > 1e-6 {
			t.Fatalf("iter %d: splits achieve MLU %.9f, solver reported %.9f", iter, achieved, got)
		}
	}
}

// TestOptimalMLUCachedSolverStable checks the package-level cache: repeated
// OptimalMLU calls on one path set must keep returning the same objective
// for the same matrix within float tolerance (warm solves may pivot in a
// different order than the first cold solve, shifting the last bits).
func TestOptimalMLUCachedSolverStable(t *testing.T) {
	ps := trianglePS()
	tm := make(TrafficMatrix, ps.NumPairs())
	r := rng.New(9)
	for i := range tm {
		tm[i] = r.Float64() * 2
	}
	first, _, err := OptimalMLU(ps, tm)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		again, _, err := OptimalMLU(ps, tm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(again-first) > 1e-9 {
			t.Fatalf("call %d: MLU %.15f, first call %.15f", k, again, first)
		}
	}
}
