package te

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

func trianglePS() *paths.PathSet {
	return paths.NewPathSet(topology.Triangle(), 4)
}

func abilenePS() *paths.PathSet {
	return paths.NewPathSet(topology.Abilene(), 4)
}

// figure3TM returns the demand set of Figure 3: 1->2 = 100, 1->3 = 100.
func figure3TM(ps *paths.PathSet) TrafficMatrix {
	g := ps.Graph
	tm := make(TrafficMatrix, ps.NumPairs())
	tm[ps.PairIndex(g.NodeIndex("1"), g.NodeIndex("2"))] = 100
	tm[ps.PairIndex(g.NodeIndex("1"), g.NodeIndex("3"))] = 100
	return tm
}

// splitsFor builds a split vector that, for each listed pair, routes fully on
// the path whose node sequence matches.
func splitsFor(t *testing.T, ps *paths.PathSet, route map[[2]string][]string) Splits {
	t.Helper()
	g := ps.Graph
	s := ShortestPathSplits(ps)
	off, _ := ps.Offsets()
	for pair, wantNodes := range route {
		pi := ps.PairIndex(g.NodeIndex(pair[0]), g.NodeIndex(pair[1]))
		if pi < 0 {
			t.Fatalf("unknown pair %v", pair)
		}
		found := -1
		for k, p := range ps.PairPaths[pi] {
			nodes := p.Nodes(g)
			if len(nodes) != len(wantNodes) {
				continue
			}
			ok := true
			for i, n := range nodes {
				if g.NodeName(n) != wantNodes[i] {
					ok = false
					break
				}
			}
			if ok {
				found = k
				break
			}
		}
		if found < 0 {
			t.Fatalf("no candidate path %v for pair %v", wantNodes, pair)
		}
		for k := range ps.PairPaths[pi] {
			s[off[pi]+k] = 0
		}
		s[off[pi]+found] = 1
	}
	return s
}

// TestFigure3RoutingEquivalence reproduces Figure 3 exactly: routings A and
// B yield MLU 1, routing C yields MLU 2.
func TestFigure3RoutingEquivalence(t *testing.T) {
	ps := trianglePS()
	tm := figure3TM(ps)

	routingA := splitsFor(t, ps, map[[2]string][]string{
		{"1", "2"}: {"1", "2"},
		{"1", "3"}: {"1", "3"},
	})
	routingB := splitsFor(t, ps, map[[2]string][]string{
		{"1", "2"}: {"1", "3", "2"},
		{"1", "3"}: {"1", "2", "3"},
	})
	routingC := splitsFor(t, ps, map[[2]string][]string{
		{"1", "2"}: {"1", "2"},
		{"1", "3"}: {"1", "2", "3"},
	})

	mluA, _ := MLU(ps, tm, routingA)
	mluB, _ := MLU(ps, tm, routingB)
	mluC, _ := MLU(ps, tm, routingC)
	if math.Abs(mluA-1) > 1e-9 {
		t.Fatalf("routing A MLU = %v, want 1", mluA)
	}
	if math.Abs(mluB-1) > 1e-9 {
		t.Fatalf("routing B MLU = %v, want 1 (different splits, same MLU)", mluB)
	}
	if math.Abs(mluC-2) > 1e-9 {
		t.Fatalf("routing C MLU = %v, want 2", mluC)
	}
}

func TestUniformSplitsValid(t *testing.T) {
	for _, ps := range []*paths.PathSet{trianglePS(), abilenePS()} {
		if err := ValidateSplits(ps, UniformSplits(ps)); err != nil {
			t.Fatal(err)
		}
		if err := ValidateSplits(ps, ShortestPathSplits(ps)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidateSplitsRejects(t *testing.T) {
	ps := trianglePS()
	s := UniformSplits(ps)
	s[0] = -0.5
	if err := ValidateSplits(ps, s); err == nil {
		t.Fatal("negative split accepted")
	}
	s = UniformSplits(ps)
	s[0] += 0.5
	if err := ValidateSplits(ps, s); err == nil {
		t.Fatal("non-normalized split accepted")
	}
	if err := ValidateSplits(ps, s[:3]); err == nil {
		t.Fatal("short split vector accepted")
	}
}

func TestLinkLoadsSimple(t *testing.T) {
	ps := trianglePS()
	tm := figure3TM(ps)
	s := ShortestPathSplits(ps)
	loads := LinkLoads(ps, tm, s)
	g := ps.Graph
	total := 0.0
	for _, l := range loads {
		total += l
	}
	// Both demands take their 1-hop direct paths: total edge-flow = 200.
	if math.Abs(total-200) > 1e-9 {
		t.Fatalf("total link load = %v, want 200", total)
	}
	utils := Utilizations(ps, loads)
	for i, u := range utils {
		want := loads[i] / g.Edge(i).Capacity
		if math.Abs(u-want) > 1e-12 {
			t.Fatal("Utilizations inconsistent with loads")
		}
	}
}

func TestOptimalMLUTriangle(t *testing.T) {
	ps := trianglePS()
	tm := figure3TM(ps)
	opt, splits, err := OptimalMLU(ps, tm)
	if err != nil {
		t.Fatal(err)
	}
	// Demands 100+100 out of node 1 with 200 outgoing capacity: splitting
	// 1->2 over [1-2] and 1->3 over [1-3] fills both links exactly: MLU
	// cannot be below 2/3? Direct routing gives MLU 1. But the LP can also
	// split: best possible is 2/3 when load spreads over three links...
	// Node 1 has out-capacity 200 and must emit 200 units, so MLU >= ...
	// every unit leaves node 1 over links 1-2 or 1-3 (cap 100 each), total
	// 200 over 200 => max(u) >= avg(u) = 1. Optimal is exactly 1.
	if math.Abs(opt-1) > 1e-6 {
		t.Fatalf("triangle optimal MLU = %v, want 1", opt)
	}
	if err := ValidateSplits(ps, splits); err != nil {
		t.Fatalf("optimal splits invalid: %v", err)
	}
	got, _ := MLU(ps, tm, splits)
	if math.Abs(got-opt) > 1e-6 {
		t.Fatalf("routing optimal splits gives MLU %v, LP said %v", got, opt)
	}
}

func TestOptimalMLUNeverWorseThanHeuristics(t *testing.T) {
	ps := abilenePS()
	r := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		tm := make(TrafficMatrix, ps.NumPairs())
		for i := range tm {
			tm[i] = r.Float64() * 2
		}
		opt, _, err := OptimalMLU(ps, tm)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Splits{UniformSplits(ps), ShortestPathSplits(ps)} {
			h, _ := MLU(ps, tm, s)
			if opt > h+1e-6 {
				t.Fatalf("optimal MLU %v worse than heuristic %v", opt, h)
			}
		}
	}
}

func TestOptimalMLUScalesLinearly(t *testing.T) {
	// MLU_OPT(alpha * d) == alpha * MLU_OPT(d) — the linearity the paper's
	// normalization argument (Eq. 3) relies on.
	ps := abilenePS()
	r := rng.New(6)
	tm := make(TrafficMatrix, ps.NumPairs())
	for i := range tm {
		tm[i] = r.Float64()
	}
	opt1, _, err := OptimalMLU(ps, tm)
	if err != nil {
		t.Fatal(err)
	}
	opt3, _, err := OptimalMLU(ps, tm.Clone().Scale(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt3-3*opt1) > 1e-5*math.Max(1, opt3) {
		t.Fatalf("linearity violated: MLU(3d)=%v, 3*MLU(d)=%v", opt3, 3*opt1)
	}
}

func TestNormalizeToUnitMLU(t *testing.T) {
	ps := abilenePS()
	r := rng.New(7)
	tm := make(TrafficMatrix, ps.NumPairs())
	for i := range tm {
		tm[i] = 0.1 + r.Float64()
	}
	norm, factor, err := NormalizeToUnitMLU(ps, tm)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := OptimalMLU(ps, norm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-1) > 1e-5 {
		t.Fatalf("normalized optimal MLU = %v, want 1", opt)
	}
	if factor <= 0 {
		t.Fatalf("factor = %v, want positive", factor)
	}
}

func TestZeroTrafficMatrix(t *testing.T) {
	ps := trianglePS()
	tm := make(TrafficMatrix, ps.NumPairs())
	opt, splits, err := OptimalMLU(ps, tm)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 0 {
		t.Fatalf("zero TM optimal MLU = %v, want 0", opt)
	}
	if err := ValidateSplits(ps, splits); err != nil {
		t.Fatal(err)
	}
	norm, factor, err := NormalizeToUnitMLU(ps, tm)
	if err != nil || factor != 1 || norm.Total() != 0 {
		t.Fatalf("zero TM normalization wrong: %v %v %v", norm, factor, err)
	}
}

func TestMaxTotalFlow(t *testing.T) {
	ps := trianglePS()
	tm := figure3TM(ps)
	flow, err := MaxTotalFlow(ps, tm)
	if err != nil {
		t.Fatal(err)
	}
	// All 200 units are routable (optimal MLU is 1).
	if math.Abs(flow-200) > 1e-5 {
		t.Fatalf("max total flow = %v, want 200", flow)
	}
	// Triple demands: only 200 can still leave node 1.
	flow3, err := MaxTotalFlow(ps, tm.Clone().Scale(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flow3-200) > 1e-5 {
		t.Fatalf("max total flow under overload = %v, want 200", flow3)
	}
}

func TestMaxConcurrentFlow(t *testing.T) {
	ps := trianglePS()
	tm := figure3TM(ps)
	z, err := MaxConcurrentFlow(ps, tm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-1) > 1e-5 {
		t.Fatalf("concurrent flow = %v, want 1", z)
	}
	z2, err := MaxConcurrentFlow(ps, tm.Clone().Scale(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z2-0.5) > 1e-5 {
		t.Fatalf("concurrent flow at 2x = %v, want 0.5", z2)
	}
}

func TestConcurrentFlowInverseOfMLU(t *testing.T) {
	// For any demand, max concurrent flow z and optimal MLU u satisfy
	// z = 1/u (both are the same LP up to inversion).
	ps := abilenePS()
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		tm := make(TrafficMatrix, ps.NumPairs())
		for i := range tm {
			if rr.Float64() < 0.3 {
				tm[i] = rr.Float64() * 3
			}
		}
		if tm.Total() == 0 {
			return true
		}
		u, _, err := OptimalMLU(ps, tm)
		if err != nil || u == 0 {
			return err == nil
		}
		z, err := MaxConcurrentFlow(ps, tm)
		if err != nil {
			return false
		}
		return math.Abs(z*u-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPerformanceRatio(t *testing.T) {
	ps := trianglePS()
	tm := figure3TM(ps)
	// Routing C from Figure 3 has MLU 2 while the optimal is 1 -> ratio 2.
	routingC := splitsFor(t, ps, map[[2]string][]string{
		{"1", "2"}: {"1", "2"},
		{"1", "3"}: {"1", "2", "3"},
	})
	ratio, sys, opt, err := PerformanceRatio(ps, tm, routingC)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-2) > 1e-6 || math.Abs(sys-2) > 1e-6 || math.Abs(opt-1) > 1e-6 {
		t.Fatalf("ratio=%v sys=%v opt=%v, want 2/2/1", ratio, sys, opt)
	}
}

// TestRatioScaleInvarianceWithFixedSplits verifies the property behind the
// paper's normalization argument (Eq. 2 -> Eq. 3): when the system's splits
// do not change, scaling the demand leaves the performance ratio unchanged,
// because both the system MLU and the optimal MLU scale linearly.
func TestRatioScaleInvarianceWithFixedSplits(t *testing.T) {
	ps := abilenePS()
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		tm := make(TrafficMatrix, ps.NumPairs())
		for i := range tm {
			if rr.Float64() < 0.4 {
				tm[i] = rr.Float64() * 2
			}
		}
		if tm.Total() == 0 {
			return true
		}
		splits := UniformSplits(ps)
		r1, _, _, err := PerformanceRatio(ps, tm, splits)
		if err != nil {
			return false
		}
		alpha := 0.25 + 3*rr.Float64()
		r2, _, _, err := PerformanceRatio(ps, tm.Clone().Scale(alpha), splits)
		if err != nil {
			return false
		}
		return math.Abs(r1-r2) < 1e-4*(1+r1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveredFlowZeroAndFull(t *testing.T) {
	ps := trianglePS()
	zero := make(TrafficMatrix, ps.NumPairs())
	if got := DeliveredFlow(ps, zero, UniformSplits(ps)); got != 0 {
		t.Fatalf("zero demand delivered %v", got)
	}
}

func TestTrafficMatrixHelpers(t *testing.T) {
	tm := TrafficMatrix{1, 2, 3}
	if tm.Total() != 6 || tm.Max() != 3 {
		t.Fatal("Total/Max wrong")
	}
	c := tm.Clone()
	c.Scale(2)
	if tm[0] != 1 || c[0] != 2 {
		t.Fatal("Clone/Scale aliasing bug")
	}
}
