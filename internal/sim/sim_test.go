package sim

import (
	"math"
	"testing"

	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/te"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func trianglePS() *paths.PathSet {
	return paths.NewPathSet(topology.Triangle(), 2)
}

func TestRunBasics(t *testing.T) {
	ps := trianglePS()
	gen := traffic.NewGravity(ps, 0.3, rng.New(1))
	seq := traffic.Sequence(gen, 10)
	rep, err := Run(ps, &StaticPolicy{PolicyName: "uniform", S: te.UniformSplits(ps)}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 10 {
		t.Fatalf("epochs = %d", len(rep.Epochs))
	}
	if err := rep.Sanity(); err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "uniform" {
		t.Fatal("policy name lost")
	}
}

func TestNoCongestionNoLoss(t *testing.T) {
	ps := trianglePS()
	// Tiny demands: nothing congests, nothing drops.
	tm := make(te.TrafficMatrix, ps.NumPairs())
	for i := range tm {
		tm[i] = 0.5
	}
	rep, err := Run(ps, &StaticPolicy{PolicyName: "sp", S: te.ShortestPathSplits(ps)}, []te.TrafficMatrix{tm})
	if err != nil {
		t.Fatal(err)
	}
	e := rep.Epochs[0]
	if e.MLU > 1 || e.LossFraction != 0 || e.CongestedLinks != 0 {
		t.Fatalf("spurious congestion: %+v", e)
	}
	if math.Abs(e.DeliveredLoad-e.OfferedLoad) > 1e-9 {
		t.Fatal("lossless epoch should deliver everything")
	}
}

func TestOverloadCausesLossAndDelay(t *testing.T) {
	ps := trianglePS()
	g := ps.Graph
	// Overload the direct 1->2 path: demand 3x the link capacity, all on
	// the shortest path.
	tm := make(te.TrafficMatrix, ps.NumPairs())
	tm[ps.PairIndex(g.NodeIndex("1"), g.NodeIndex("2"))] = 300
	rep, err := Run(ps, &StaticPolicy{PolicyName: "sp", S: te.ShortestPathSplits(ps)}, []te.TrafficMatrix{tm})
	if err != nil {
		t.Fatal(err)
	}
	e := rep.Epochs[0]
	if e.MLU < 3-1e-9 {
		t.Fatalf("MLU = %v, want 3", e.MLU)
	}
	if e.CongestedLinks != 1 {
		t.Fatalf("congested links = %d, want 1", e.CongestedLinks)
	}
	// Proportional shedding: 100 of 300 delivered.
	if math.Abs(e.LossFraction-2.0/3) > 1e-9 {
		t.Fatalf("loss fraction = %v, want 2/3", e.LossFraction)
	}
	if e.MeanQueueingDelay <= 0 {
		t.Fatal("no delay under congestion")
	}
	if err := rep.Sanity(); err != nil {
		t.Fatal(err)
	}
}

func TestOraclePolicyDominates(t *testing.T) {
	ps := trianglePS()
	gen := traffic.NewGravity(ps, 0.3, rng.New(2))
	seq := traffic.Sequence(gen, 8)
	reports, err := Compare(ps, []Policy{
		&OraclePolicy{PS: ps},
		&StaticPolicy{PolicyName: "shortest-path", S: te.ShortestPathSplits(ps)},
	}, seq)
	if err != nil {
		t.Fatal(err)
	}
	oracle, sp := reports[0], reports[1]
	for i := range seq {
		if oracle.Epochs[i].MLU > sp.Epochs[i].MLU+1e-6 {
			t.Fatalf("epoch %d: oracle MLU %v worse than shortest path %v",
				i, oracle.Epochs[i].MLU, sp.Epochs[i].MLU)
		}
	}
	if oracle.TotalLossFraction() > sp.TotalLossFraction()+1e-9 {
		t.Fatal("oracle lost more traffic than shortest path")
	}
}

func TestFuncPolicy(t *testing.T) {
	ps := trianglePS()
	calls := 0
	p := &FuncPolicy{
		PolicyName: "probe",
		Fn: func(h []te.TrafficMatrix, c te.TrafficMatrix) te.Splits {
			if len(h) != calls {
				t.Fatalf("history length %d at call %d", len(h), calls)
			}
			calls++
			return te.UniformSplits(ps)
		},
	}
	gen := traffic.NewGravity(ps, 0.3, rng.New(3))
	if _, err := Run(ps, p, traffic.Sequence(gen, 5)); err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("policy called %d times", calls)
	}
}

func TestHistoryPolicyFlattening(t *testing.T) {
	ps := trianglePS()
	pairs := ps.NumPairs()
	var gotHist []float64
	p := HistoryPolicy("probe", 2, pairs, false, func(h []float64) te.Splits {
		gotHist = append([]float64{}, h...)
		return te.UniformSplits(ps)
	})
	tm1 := make(te.TrafficMatrix, pairs)
	tm2 := make(te.TrafficMatrix, pairs)
	tm3 := make(te.TrafficMatrix, pairs)
	for i := 0; i < pairs; i++ {
		tm1[i], tm2[i], tm3[i] = 1, 2, 3
	}
	// First epoch: no history -> zero padded.
	p.Splits(nil, tm1)
	if len(gotHist) != 2*pairs {
		t.Fatalf("history length %d", len(gotHist))
	}
	for _, v := range gotHist {
		if v != 0 {
			t.Fatal("empty history must be zero padded")
		}
	}
	// Third epoch: history = [tm1, tm2] -> flattened oldest-first.
	p.Splits([]te.TrafficMatrix{tm1, tm2}, tm3)
	if gotHist[0] != 1 || gotHist[pairs] != 2 {
		t.Fatalf("history misordered: %v...", gotHist[:2])
	}
	// Curr-style: sees the current matrix.
	pc := HistoryPolicy("curr", 1, pairs, true, func(h []float64) te.Splits {
		gotHist = append([]float64{}, h...)
		return te.UniformSplits(ps)
	})
	pc.Splits([]te.TrafficMatrix{tm1}, tm3)
	if gotHist[0] != 3 {
		t.Fatal("useCurrent policy must see the current epoch")
	}
}

func TestRunRejectsEmptyAndInvalid(t *testing.T) {
	ps := trianglePS()
	if _, err := Run(ps, &OraclePolicy{PS: ps}, nil); err == nil {
		t.Fatal("accepted empty sequence")
	}
	bad := &FuncPolicy{PolicyName: "bad", Fn: func([]te.TrafficMatrix, te.TrafficMatrix) te.Splits {
		s := te.UniformSplits(ps)
		s[0] += 1 // breaks normalization
		return s
	}}
	tm := make(te.TrafficMatrix, ps.NumPairs())
	tm[0] = 1
	if _, err := Run(ps, bad, []te.TrafficMatrix{tm}); err == nil {
		t.Fatal("accepted invalid splits")
	}
}

func TestReportAggregates(t *testing.T) {
	r := &Report{Epochs: []EpochMetrics{
		{MLU: 1, OfferedLoad: 10, DeliveredLoad: 10, MeanQueueingDelay: 1},
		{MLU: 3, OfferedLoad: 10, DeliveredLoad: 5, MeanQueueingDelay: 3},
	}}
	if r.MaxMLU() != 3 {
		t.Fatal("MaxMLU wrong")
	}
	if math.Abs(r.TotalLossFraction()-0.25) > 1e-12 {
		t.Fatalf("TotalLossFraction = %v, want 0.25", r.TotalLossFraction())
	}
	if r.MeanDelay() != 2 {
		t.Fatal("MeanDelay wrong")
	}
	empty := &Report{}
	if empty.MeanDelay() != 0 || empty.TotalLossFraction() != 0 || empty.MaxMLU() != 0 {
		t.Fatal("empty report aggregates should be zero")
	}
}
