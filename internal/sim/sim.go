// Package sim implements a fluid-level network simulator that replays
// traffic-matrix sequences through a routing policy and reports the
// operational consequences — utilization, loss, and queueing-delay proxies.
//
// The paper argues (§1) that a learning-enabled TE system that
// underperforms the optimal "can cause unnecessary congestion, delays, and
// packet drops under certain demands". The analyzer quantifies the MLU gap;
// this simulator translates that gap into operator-facing metrics so the
// adversarial inputs can be judged in operational terms.
package sim

import (
	"fmt"
	"math"

	"repro/internal/paths"
	"repro/internal/te"
)

// Policy produces split ratios for each epoch. Implementations: a trained
// DOTE model (via an adapter), static shortest-path or uniform routing, or
// the LP optimum.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Splits returns the split ratios used to route epoch t. history holds
	// all previous epochs' demands (oldest first); current is epoch t's
	// demand, which predictive policies must NOT inspect.
	Splits(history []te.TrafficMatrix, current te.TrafficMatrix) te.Splits
}

// StaticPolicy always routes with fixed splits.
type StaticPolicy struct {
	PolicyName string
	S          te.Splits
}

// Name implements Policy.
func (p *StaticPolicy) Name() string { return p.PolicyName }

// Splits implements Policy.
func (p *StaticPolicy) Splits([]te.TrafficMatrix, te.TrafficMatrix) te.Splits { return p.S }

// OraclePolicy routes each epoch with the LP-optimal splits for that
// epoch's demand — the unachievable upper bound TE systems chase.
type OraclePolicy struct {
	PS *paths.PathSet
}

// Name implements Policy.
func (p *OraclePolicy) Name() string { return "oracle-optimal" }

// Splits implements Policy.
func (p *OraclePolicy) Splits(_ []te.TrafficMatrix, current te.TrafficMatrix) te.Splits {
	_, s, err := te.OptimalMLU(p.PS, current)
	if err != nil {
		// The LP can only fail on malformed inputs; fall back to shortest
		// paths so the simulation can proceed.
		return te.ShortestPathSplits(p.PS)
	}
	return s
}

// FuncPolicy adapts a closure (e.g. a trained DOTE model) as a Policy.
type FuncPolicy struct {
	PolicyName string
	Fn         func(history []te.TrafficMatrix, current te.TrafficMatrix) te.Splits
}

// Name implements Policy.
func (p *FuncPolicy) Name() string { return p.PolicyName }

// Splits implements Policy.
func (p *FuncPolicy) Splits(h []te.TrafficMatrix, c te.TrafficMatrix) te.Splits {
	return p.Fn(h, c)
}

// HistoryPolicy adapts a DOTE-style predictor to the Policy interface: it
// flattens the last k epochs (zero-padded when fewer exist) and hands them
// to splitsFn. Use k=1 with useCurrent=true for DOTE-Curr-style systems
// that see the current matrix.
func HistoryPolicy(name string, k, pairs int, useCurrent bool, splitsFn func(history []float64) te.Splits) Policy {
	return &FuncPolicy{
		PolicyName: name,
		Fn: func(history []te.TrafficMatrix, current te.TrafficMatrix) te.Splits {
			if useCurrent {
				h := make([]float64, len(current))
				copy(h, current)
				return splitsFn(h)
			}
			h := make([]float64, k*pairs)
			for j := 0; j < k; j++ {
				idx := len(history) - k + j
				if idx >= 0 {
					copy(h[j*pairs:(j+1)*pairs], history[idx])
				}
			}
			return splitsFn(h)
		},
	}
}

// EpochMetrics are the operational outcomes of one routed epoch.
type EpochMetrics struct {
	// MLU is the maximum link utilization.
	MLU float64
	// OfferedLoad / DeliveredLoad: total traffic offered vs delivered after
	// proportional shedding on oversubscribed links.
	OfferedLoad, DeliveredLoad float64
	// LossFraction = 1 − delivered/offered.
	LossFraction float64
	// CongestedLinks counts links with utilization > 1.
	CongestedLinks int
	// MeanQueueingDelay is an M/M/1-style delay proxy averaged over links:
	// u/(1−u) for u < 1, capped for saturated links.
	MeanQueueingDelay float64
}

// Report aggregates a full simulation run.
type Report struct {
	Policy string
	Epochs []EpochMetrics
}

// MaxMLU returns the worst epoch's MLU.
func (r *Report) MaxMLU() float64 {
	worst := 0.0
	for _, e := range r.Epochs {
		if e.MLU > worst {
			worst = e.MLU
		}
	}
	return worst
}

// TotalLossFraction returns total lost volume over total offered volume.
func (r *Report) TotalLossFraction() float64 {
	off, del := 0.0, 0.0
	for _, e := range r.Epochs {
		off += e.OfferedLoad
		del += e.DeliveredLoad
	}
	if off == 0 {
		return 0
	}
	return 1 - del/off
}

// MeanDelay returns the average queueing-delay proxy across epochs.
func (r *Report) MeanDelay() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range r.Epochs {
		s += e.MeanQueueingDelay
	}
	return s / float64(len(r.Epochs))
}

// delayCap bounds the M/M/1 proxy on saturated links.
const delayCap = 100.0

// Run replays the demand sequence through the policy and measures each
// epoch. Predictive policies receive the history but never the current
// epoch's demand.
func Run(ps *paths.PathSet, policy Policy, seq []te.TrafficMatrix) (*Report, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("sim: empty demand sequence")
	}
	rep := &Report{Policy: policy.Name()}
	g := ps.Graph
	for t, tm := range seq {
		splits := policy.Splits(seq[:t], tm)
		if err := te.ValidateSplits(ps, splits); err != nil {
			return nil, fmt.Errorf("sim: epoch %d: policy produced invalid splits: %w", t, err)
		}
		loads := te.LinkLoads(ps, tm, splits)
		m := EpochMetrics{OfferedLoad: tm.Total()}
		congested := 0
		delaySum := 0.0
		for e, l := range loads {
			u := l / g.Edge(e).Capacity
			if u > m.MLU {
				m.MLU = u
			}
			if u > 1+1e-6 {
				congested++
			}
			if u >= 1 {
				delaySum += delayCap
			} else {
				d := u / (1 - u)
				if d > delayCap {
					d = delayCap
				}
				delaySum += d
			}
		}
		m.CongestedLinks = congested
		m.MeanQueueingDelay = delaySum / float64(len(loads))
		m.DeliveredLoad = te.DeliveredFlow(ps, tm, splits)
		if m.OfferedLoad > 0 {
			m.LossFraction = 1 - m.DeliveredLoad/m.OfferedLoad
			if m.LossFraction < 0 {
				m.LossFraction = 0
			}
		}
		rep.Epochs = append(rep.Epochs, m)
	}
	return rep, nil
}

// Compare runs several policies over the same sequence.
func Compare(ps *paths.PathSet, policies []Policy, seq []te.TrafficMatrix) ([]*Report, error) {
	var out []*Report
	for _, p := range policies {
		r, err := Run(ps, p, seq)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Sanity checks that a report is internally consistent (used by tests and
// the CLI's self-check mode).
func (r *Report) Sanity() error {
	for i, e := range r.Epochs {
		if e.DeliveredLoad > e.OfferedLoad+1e-6 {
			return fmt.Errorf("sim: epoch %d delivered %v > offered %v", i, e.DeliveredLoad, e.OfferedLoad)
		}
		if e.LossFraction < 0 || e.LossFraction > 1 {
			return fmt.Errorf("sim: epoch %d loss fraction %v out of range", i, e.LossFraction)
		}
		if e.MLU <= 1 && e.LossFraction > 1e-6 {
			return fmt.Errorf("sim: epoch %d lossy (%v) without congestion (MLU %v)", i, e.LossFraction, e.MLU)
		}
		if math.IsNaN(e.MeanQueueingDelay) || e.MeanQueueingDelay < 0 {
			return fmt.Errorf("sim: epoch %d bad delay %v", i, e.MeanQueueingDelay)
		}
	}
	return nil
}
