package linalg

import (
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
)

func fillRand(r *rng.RNG, v []float64) {
	for i := range v {
		v[i] = r.NormFloat64()
	}
}

// relClose compares with a relative tolerance: the blocked NN kernel pairs k
// terms before adding, so it can differ from the naive reference in the last
// bits of a long accumulation.
func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

var blockedShapes = []struct{ m, k, p int }{
	{0, 0, 0},
	{0, 3, 2},
	{1, 1, 1},
	{1, 5, 1},
	{7, 1, 3},
	{2, 300, 2},   // tall-thin in k, crosses the k-panel boundary
	{300, 2, 2},   // tall-thin in m
	{2, 2, 300},   // wide
	{5, 129, 7},   // one past the k panel
	{4, 128, 4},   // exactly one k panel, exactly one row tile
	{13, 131, 17}, // nothing a multiple of any tile
	{33, 64, 40},
}

func TestMatMulBlockedMatchesNaive(t *testing.T) {
	r := rng.New(7)
	for _, sh := range blockedShapes {
		m, k, p := sh.m, sh.k, sh.p
		a := make([]float64, m*k)
		b := make([]float64, k*p)
		fillRand(r, a)
		fillRand(r, b)
		want := make([]float64, m*p)
		got := make([]float64, m*p)
		fillRand(r, want)
		copy(got, want) // same nonzero starting accumulator
		MatMulAddInto(want, a, b, m, k, p)
		MatMulBlockedAddInto(got, a, b, m, k, p)
		for i := range want {
			if !relClose(got[i], want[i], 1e-12) {
				t.Fatalf("NN shape %v: c[%d] = %g, naive %g", sh, i, got[i], want[i])
			}
		}
	}
}

func TestMatMulNTBlockedMatchesNaiveBitwise(t *testing.T) {
	r := rng.New(8)
	for _, sh := range blockedShapes {
		m, k, p := sh.m, sh.k, sh.p
		a := make([]float64, m*p)
		b := make([]float64, k*p)
		fillRand(r, a)
		fillRand(r, b)
		want := make([]float64, m*k)
		got := make([]float64, m*k)
		fillRand(r, want)
		copy(got, want)
		MatMulNTAddInto(want, a, b, m, k, p)
		MatMulNTBlockedAddInto(got, a, b, m, k, p)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("NT shape %v: c[%d] = %g, naive %g", sh, i, got[i], want[i])
			}
		}
	}
}

func TestMatMulTNBlockedMatchesNaiveBitwise(t *testing.T) {
	r := rng.New(9)
	for _, sh := range blockedShapes {
		m, k, p := sh.m, sh.k, sh.p
		a := make([]float64, m*k)
		b := make([]float64, m*p)
		fillRand(r, a)
		fillRand(r, b)
		want := make([]float64, k*p)
		got := make([]float64, k*p)
		fillRand(r, want)
		copy(got, want)
		MatMulTNAddInto(want, a, b, m, k, p)
		MatMulTNBlockedAddInto(got, a, b, m, k, p)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("TN shape %v: c[%d] = %g, naive %g", sh, i, got[i], want[i])
			}
		}
	}
}

// TestMatMulBlockedRowSliceInvariant checks the determinism contract the
// batched search engine relies on: row r of a batched product is bitwise
// identical to the same row computed in a 1-row call, for every batch size.
func TestMatMulBlockedRowSliceInvariant(t *testing.T) {
	r := rng.New(10)
	k, p := 131, 57
	b := make([]float64, k*p)
	fillRand(r, b)
	for _, m := range []int{1, 2, 3, 4, 5, 9, 16} {
		a := make([]float64, m*k)
		fillRand(r, a)
		batch := make([]float64, m*p)
		MatMulBlockedAddInto(batch, a, b, m, k, p)
		for i := 0; i < m; i++ {
			single := make([]float64, p)
			MatMulBlockedAddInto(single, a[i*k:(i+1)*k], b, 1, k, p)
			for j := 0; j < p; j++ {
				if batch[i*p+j] != single[j] {
					t.Fatalf("m=%d row %d col %d: batch %g, single-row %g",
						m, i, j, batch[i*p+j], single[j])
				}
			}
		}
	}
}

// TestMatMulBlockedParallelPath forces the goroutine fan-out (the machine
// running the tests may have GOMAXPROCS=1) and checks both correctness and,
// under -race, the absence of data races between row-range workers.
func TestMatMulBlockedParallelPath(t *testing.T) {
	oldWorkers := mmMaxWorkers
	mmMaxWorkers = 4
	defer func() { mmMaxWorkers = oldWorkers }()

	r := rng.New(11)
	m, k, p := 96, 80, 70 // m*k*p > mmParallelFlops
	if m*k*p < mmParallelFlops {
		t.Fatalf("shape too small to exercise the parallel path")
	}
	a := make([]float64, m*k)
	b := make([]float64, k*p)
	fillRand(r, a)
	fillRand(r, b)
	serial := make([]float64, m*p)
	matMulAddRange(serial, a, b, 0, m, k, p)

	// Concurrent callers sharing the read-only inputs, each with its own
	// output — the shape of use inside concurrent restarts/training steps.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make([]float64, m*p)
			MatMulBlockedAddInto(got, a, b, m, k, p)
			for i := range got {
				if got[i] != serial[i] {
					t.Errorf("parallel c[%d] = %g, serial %g", i, got[i], serial[i])
					return
				}
			}
		}()
	}
	wg.Wait()

	gotNT := make([]float64, m*k)
	wantNT := make([]float64, m*k)
	a2 := make([]float64, m*p)
	b2 := make([]float64, k*p)
	fillRand(r, a2)
	fillRand(r, b2)
	MatMulNTAddInto(wantNT, a2, b2, m, k, p)
	MatMulNTBlockedAddInto(gotNT, a2, b2, m, k, p)
	for i := range gotNT {
		if gotNT[i] != wantNT[i] {
			t.Fatalf("parallel NT c[%d] = %g, serial %g", i, gotNT[i], wantNT[i])
		}
	}

	gotTN := make([]float64, k*p)
	wantTN := make([]float64, k*p)
	a3 := make([]float64, m*k)
	b3 := make([]float64, m*p)
	fillRand(r, a3)
	fillRand(r, b3)
	MatMulTNAddInto(wantTN, a3, b3, m, k, p)
	MatMulTNBlockedAddInto(gotTN, a3, b3, m, k, p)
	for i := range gotTN {
		if gotTN[i] != wantTN[i] {
			t.Fatalf("parallel TN c[%d] = %g, serial %g", i, gotTN[i], wantTN[i])
		}
	}
}
