package linalg

import (
	"runtime"
	"sync"
)

// Cache-blocked, register-tiled matmul kernels. These back the batched
// restart engine: the analyzer runs all active restarts as one [R, n] batch,
// so the DNN forward/backward becomes matrix–matrix work routed through
// these kernels instead of R row-loop products.
//
// Determinism contract: for every kernel here, the floating-point result of
// each output CELL depends only on that cell's inputs and is accumulated in
// a fixed order (k ascending, in pairs), never on the number of rows in the
// call, the blocking, or the parallel split. Row r of a batched product is
// therefore bitwise identical to the same row computed in a 1-row call —
// the property the batched search engine relies on to reproduce the scalar
// path's trajectory exactly.

const (
	// mmBlockK is the k-panel height: mmBlockK rows of B are streamed per
	// pass so the active B panel (mmBlockK × p floats) stays cache-resident
	// across the row tile. 128 rows × ~500 cols × 8 B ≈ 512 KiB worst case
	// at DOTE scale, sized for L2.
	mmBlockK = 128
	// mmRowTile is the register tile: 4 output rows share each loaded B row,
	// quartering B traffic relative to the naive row loop.
	mmRowTile = 4
	// mmParallelFlops is the multiply count above which the goroutine fan-out
	// pays for itself; below it a single pass through the serial kernel wins.
	mmParallelFlops = 1 << 17
	// mmMinRowsPerTask bounds the fan-out so no goroutine gets trivial work.
	mmMinRowsPerTask = 4
)

// mmMaxWorkers caps the parallel fan-out; a var so tests can force the
// parallel path on single-CPU machines.
var mmMaxWorkers = runtime.GOMAXPROCS(0)

// mmWorkerCount reports how many goroutines a kernel over m output rows and
// the given multiply count should fan out to; <= 1 means run serially.
// Callers branch on it BEFORE constructing the range closure, so the serial
// hot path (every scalar-pipeline matmul) stays allocation-free.
func mmWorkerCount(m, flops int) int {
	workers := mmMaxWorkers
	if workers > m/mmMinRowsPerTask {
		workers = m / mmMinRowsPerTask
	}
	if flops < mmParallelFlops {
		return 1
	}
	return workers
}

// parallelRowRanges splits [0, m) into per-worker row ranges and runs fn on
// each concurrently. Ranges are disjoint, so worker goroutines never share
// output cells.
func parallelRowRanges(m, workers int, fn func(i0, i1 int)) {
	chunk := (m + workers - 1) / workers
	// Round chunks to the register tile so only the last range has a ragged
	// tail (values are unaffected; this just keeps the quad kernel busy).
	chunk = (chunk + mmRowTile - 1) / mmRowTile * mmRowTile
	var wg sync.WaitGroup
	for i0 := 0; i0 < m; i0 += chunk {
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			fn(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// MatMulBlockedAddInto accumulates C += A·B for row-major A [m,k], B [k,p],
// C [m,p] using the blocked kernels. Bit-for-bit, each output row matches a
// 1-row call on the same inputs (see the determinism contract above).
func MatMulBlockedAddInto(c, a, b []float64, m, k, p int) {
	if len(c) != m*p || len(a) != m*k || len(b) != k*p {
		panic("linalg: MatMulBlockedAddInto dimension mismatch")
	}
	if m == 0 || k == 0 || p == 0 {
		return
	}
	if w := mmWorkerCount(m, m*k*p); w > 1 {
		parallelRowRanges(m, w, func(i0, i1 int) {
			matMulAddRange(c, a, b, i0, i1, k, p)
		})
		return
	}
	matMulAddRange(c, a, b, 0, m, k, p)
}

// MatMulBlockedInto computes C = A·B, overwriting C.
func MatMulBlockedInto(c, a, b []float64, m, k, p int) {
	ZeroInto(c)
	MatMulBlockedAddInto(c, a, b, m, k, p)
}

// matMulAddRange runs the blocked NN kernel over output rows [i0, i1).
func matMulAddRange(c, a, b []float64, i0, i1, k, p int) {
	for kb := 0; kb < k; kb += mmBlockK {
		ke := kb + mmBlockK
		if ke > k {
			ke = k
		}
		i := i0
		for ; i+mmRowTile <= i1; i += mmRowTile {
			matMulQuadRows(c, a, b, i, kb, ke, k, p)
		}
		for ; i < i1; i++ {
			matMulOneRow(c[i*p:i*p+p], a[i*k:i*k+k], b, kb, ke, p)
		}
	}
}

// matMulOneRow accumulates crow += arow[kb:ke]·B[kb:ke] with k processed in
// ascending pairs — the same per-cell order as the quad kernel, so a row's
// result never depends on which tile shape computed it.
func matMulOneRow(crow, arow, b []float64, kb, ke, p int) {
	kk := kb
	for ; kk+1 < ke; kk += 2 {
		av0, av1 := arow[kk], arow[kk+1]
		b0 := b[kk*p : kk*p+p]
		b1 := b[(kk+1)*p : (kk+1)*p+p]
		_ = crow[len(b0)-1]
		for j, bv0 := range b0 {
			crow[j] += av0*bv0 + av1*b1[j]
		}
	}
	if kk < ke {
		av := arow[kk]
		brow := b[kk*p : kk*p+p]
		_ = crow[len(brow)-1]
		for j, bv := range brow {
			crow[j] += av * bv
		}
	}
}

// matMulQuadRows accumulates four output rows at once, reusing each loaded
// B element across the row tile. k-pairing matches matMulOneRow exactly.
func matMulQuadRows(c, a, b []float64, i, kb, ke, k, p int) {
	a0 := a[i*k : i*k+k]
	a1 := a[(i+1)*k : (i+1)*k+k]
	a2 := a[(i+2)*k : (i+2)*k+k]
	a3 := a[(i+3)*k : (i+3)*k+k]
	c0 := c[i*p : i*p+p]
	c1 := c[(i+1)*p : (i+1)*p+p]
	c2 := c[(i+2)*p : (i+2)*p+p]
	c3 := c[(i+3)*p : (i+3)*p+p]
	kk := kb
	for ; kk+1 < ke; kk += 2 {
		a00, a01 := a0[kk], a0[kk+1]
		a10, a11 := a1[kk], a1[kk+1]
		a20, a21 := a2[kk], a2[kk+1]
		a30, a31 := a3[kk], a3[kk+1]
		b0 := b[kk*p : kk*p+p]
		b1 := b[(kk+1)*p : (kk+1)*p+p]
		for j, bv0 := range b0 {
			bv1 := b1[j]
			c0[j] += a00*bv0 + a01*bv1
			c1[j] += a10*bv0 + a11*bv1
			c2[j] += a20*bv0 + a21*bv1
			c3[j] += a30*bv0 + a31*bv1
		}
	}
	if kk < ke {
		av0, av1, av2, av3 := a0[kk], a1[kk], a2[kk], a3[kk]
		brow := b[kk*p : kk*p+p]
		for j, bv := range brow {
			c0[j] += av0 * bv
			c1[j] += av1 * bv
			c2[j] += av2 * bv
			c3[j] += av3 * bv
		}
	}
}

// MatMulNTBlockedAddInto accumulates C += A·Bᵀ for row-major A [m,p],
// B [k,p], C [m,k] — the dA = dC·Bᵀ rule of a matmul backward pass. Each
// output cell is one dot product accumulated in a single register chain over
// ascending j, so results are bitwise identical to MatMulNTAddInto and
// independent of the 4-wide column unroll and the parallel row split.
func MatMulNTBlockedAddInto(c, a, b []float64, m, k, p int) {
	if len(c) != m*k || len(a) != m*p || len(b) != k*p {
		panic("linalg: MatMulNTBlockedAddInto dimension mismatch")
	}
	if m == 0 || k == 0 {
		return
	}
	if w := mmWorkerCount(m, m*k*p); w > 1 {
		parallelRowRanges(m, w, func(i0, i1 int) {
			matMulNTAddRange(c, a, b, i0, i1, k, p)
		})
		return
	}
	matMulNTAddRange(c, a, b, 0, m, k, p)
}

func matMulNTAddRange(c, a, b []float64, i0, i1, k, p int) {
	for i := i0; i < i1; i++ {
		arow := a[i*p : i*p+p]
		crow := c[i*k : i*k+k]
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			b0 := b[kk*p : kk*p+p]
			b1 := b[(kk+1)*p : (kk+1)*p+p]
			b2 := b[(kk+2)*p : (kk+2)*p+p]
			b3 := b[(kk+3)*p : (kk+3)*p+p]
			var s0, s1, s2, s3 float64
			for j, av := range arow {
				s0 += av * b0[j]
				s1 += av * b1[j]
				s2 += av * b2[j]
				s3 += av * b3[j]
			}
			crow[kk] += s0
			crow[kk+1] += s1
			crow[kk+2] += s2
			crow[kk+3] += s3
		}
		for ; kk < k; kk++ {
			brow := b[kk*p : kk*p+p]
			s := 0.0
			for j, av := range arow {
				s += av * brow[j]
			}
			crow[kk] += s
		}
	}
}

// MatMulTNBlockedAddInto accumulates C += Aᵀ·B for row-major A [m,k],
// B [m,p], C [k,p] — the dB = Aᵀ·dC rule. Parallelism splits the OUTPUT rows
// (columns of A); every cell still accumulates over batch rows i in
// ascending order, bitwise matching MatMulTNAddInto.
func MatMulTNBlockedAddInto(c, a, b []float64, m, k, p int) {
	if len(c) != k*p || len(a) != m*k || len(b) != m*p {
		panic("linalg: MatMulTNBlockedAddInto dimension mismatch")
	}
	if m == 0 || k == 0 || p == 0 {
		return
	}
	if w := mmWorkerCount(k, m*k*p); w > 1 {
		parallelRowRanges(k, w, func(k0, k1 int) {
			matMulTNAddRange(c, a, b, k0, k1, m, k, p)
		})
		return
	}
	matMulTNAddRange(c, a, b, 0, k, m, k, p)
}

func matMulTNAddRange(c, a, b []float64, k0, k1, m, k, p int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		brow := b[i*p : i*p+p]
		for kk := k0; kk < k1; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			crow := c[kk*p : kk*p+p]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}
