package linalg

import "sync"

// Vector pool: sync.Pool-backed scratch buffers for the per-goroutine hot
// paths (finite-difference probes, SPSA perturbations, pipeline cotangents).
//
// Ownership rules: GetVec hands the caller exclusive use of a zeroed slice
// of the exact requested length; the caller must not retain any reference
// after PutVec. Never PutVec a slice that escapes to a caller (e.g. a
// returned gradient) — only scratch that dies inside the function.

var vecPool = sync.Pool{New: func() any {
	s := make([]float64, 0, 256)
	return &s
}}

// GetVec returns a zeroed scratch vector of length n from the pool. The
// caller has exclusive use of it until PutVec.
func GetVec(n int) []float64 {
	sp := vecPool.Get().(*[]float64)
	s := *sp
	if cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	return s
}

// PutVec returns a scratch vector to the pool.
func PutVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	v = v[:0]
	vecPool.Put(&v)
}
