// Package linalg implements the small amount of dense linear algebra the
// repository needs: vectors, row-major matrices, and a Cholesky
// factorization used by the Gaussian-process surrogate.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += fmt.Sprintf("%v\n", m.Row(i))
	}
	return s
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MatVec computes y = M x.
func (m *Matrix) MatVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MatVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MatMul computes C = A B.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("linalg: MatMul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the max-absolute-value norm of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y += alpha * x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// CopyVec returns a copy of v.
func CopyVec(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}

// ErrNotPD reports that a matrix passed to Cholesky was not (numerically)
// positive definite.
var ErrNotPD = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular L with A = L Lᵀ for a symmetric
// positive-definite A. Only the lower triangle of A is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPD
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b given the Cholesky factor L of A.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveCholesky length mismatch")
	}
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveLinear solves the square system A x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols || len(b) != a.Rows {
		panic("linalg: SolveLinear dimension mismatch")
	}
	n := a.Rows
	m := a.Clone()
	x := CopyVec(b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, best := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(m.At(r, col)); a > best {
				p, best = r, a
			}
		}
		if best < 1e-14 {
			return nil, errors.New("linalg: singular matrix")
		}
		if p != col {
			for j := 0; j < n; j++ {
				vi, vj := m.At(col, j), m.At(p, j)
				m.Set(col, j, vj)
				m.Set(p, j, vi)
			}
			x[col], x[p] = x[p], x[col]
		}
		piv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / piv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}
