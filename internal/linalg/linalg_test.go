package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := m.MatVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if !almostEq(y[i], want[i], 1e-12) {
			t.Fatalf("MatVec = %v, want %v", y, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	id := FromRows([][]float64{{1, 0}, {0, 1}})
	c := MatMul(a, id)
	for i := range a.Data {
		if !almostEq(c.Data[i], a.Data[i], 1e-12) {
			t.Fatalf("A*I != A: %v vs %v", c.Data, a.Data)
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := MatMul(a, b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(c.At(i, j), want[i][j], 1e-12) {
				t.Fatalf("MatMul mismatch at (%d,%d): %v", i, j, c)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape wrong: %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatal("transpose content wrong")
			}
		}
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(8)
		// Random SPD matrix: A = B Bᵀ + n I.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := MatMul(b, b.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky failed on SPD matrix: %v", err)
		}
		// Check L Lᵀ == A.
		rec := MatMul(l, l.T())
		for i := range a.Data {
			if !almostEq(rec.Data[i], a.Data[i], 1e-8) {
				t.Fatalf("L Lᵀ != A at %d: %v vs %v", i, rec.Data[i], a.Data[i])
			}
		}
		// Check the solver: A x = b should reproduce b.
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = r.NormFloat64()
		}
		x := SolveCholesky(l, rhs)
		ax := a.MatVec(x)
		for i := range rhs {
			if !almostEq(ax[i], rhs[i], 1e-7) {
				t.Fatalf("SolveCholesky residual too large: %v vs %v", ax[i], rhs[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-10) || !almostEq(x[1], 3, 1e-10) {
		t.Fatalf("SolveLinear = %v, want [1 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("SolveLinear accepted a singular matrix")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	r := rng.New(99)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(10)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.NormFloat64()
		}
		b := a.MatVec(xTrue)
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{3, 4}
	if !almostEq(Norm2(a), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
	if !almostEq(NormInf([]float64{-7, 2}), 7, 1e-12) {
		t.Fatal("NormInf wrong")
	}
	if !almostEq(Dot([]float64{1, 2}, []float64{3, 4}), 11, 1e-12) {
		t.Fatal("Dot wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if !almostEq(y[0], 3, 1e-12) || !almostEq(y[1], 5, 1e-12) {
		t.Fatal("AXPY wrong")
	}
	Scale(0.5, y)
	if !almostEq(y[0], 1.5, 1e-12) {
		t.Fatal("Scale wrong")
	}
	c := CopyVec(y)
	c[0] = 99
	if y[0] == 99 {
		t.Fatal("CopyVec did not copy")
	}
}
