package linalg

// In-place kernels over raw row-major slices. These are the allocation-free
// counterparts of the Matrix helpers: the caller owns every buffer, nothing
// is allocated, and the "AddInto" variants accumulate (dst += …) so reverse-
// mode AD can fold gradient contributions without temporaries. The ad
// package's matrix ops and the dote routing components are routed through
// these kernels.

// MatVecInto computes y = A·x for row-major A [m,n]; y must have length m.
func MatVecInto(y, a, x []float64, m, n int) {
	if len(y) != m || len(a) != m*n || len(x) != n {
		panic("linalg: MatVecInto dimension mismatch")
	}
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// MatVecTransAddInto accumulates x += Aᵀ·y for row-major A [m,n].
func MatVecTransAddInto(x, a, y []float64, m, n int) {
	if len(x) != n || len(a) != m*n || len(y) != m {
		panic("linalg: MatVecTransAddInto dimension mismatch")
	}
	for i := 0; i < m; i++ {
		g := y[i]
		if g == 0 {
			continue
		}
		row := a[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			x[j] += g * row[j]
		}
	}
}

// OuterAddInto accumulates the outer product A += y·xᵀ into row-major A
// [m,n], where y has length m and x length n.
func OuterAddInto(a, y, x []float64, m, n int) {
	if len(a) != m*n || len(y) != m || len(x) != n {
		panic("linalg: OuterAddInto dimension mismatch")
	}
	for i := 0; i < m; i++ {
		g := y[i]
		if g == 0 {
			continue
		}
		row := a[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += g * x[j]
		}
	}
}

// MatMulAddInto accumulates C += A·B for row-major A [m,k], B [k,p],
// C [m,p]. Call ZeroInto(c) first for a plain product.
func MatMulAddInto(c, a, b []float64, m, k, p int) {
	if len(c) != m*p || len(a) != m*k || len(b) != k*p {
		panic("linalg: MatMulAddInto dimension mismatch")
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*p : (i+1)*p]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[kk*p : (kk+1)*p]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulInto computes C = A·B, overwriting C.
func MatMulInto(c, a, b []float64, m, k, p int) {
	ZeroInto(c)
	MatMulAddInto(c, a, b, m, k, p)
}

// MatMulNTAddInto accumulates C += A·Bᵀ for row-major A [m,p], B [k,p],
// C [m,k] — the dA = dC·Bᵀ rule of a matmul backward pass.
func MatMulNTAddInto(c, a, b []float64, m, k, p int) {
	if len(c) != m*k || len(a) != m*p || len(b) != k*p {
		panic("linalg: MatMulNTAddInto dimension mismatch")
	}
	for i := 0; i < m; i++ {
		arow := a[i*p : (i+1)*p]
		crow := c[i*k : (i+1)*k]
		for kk := 0; kk < k; kk++ {
			brow := b[kk*p : (kk+1)*p]
			s := 0.0
			for j := 0; j < p; j++ {
				s += arow[j] * brow[j]
			}
			crow[kk] += s
		}
	}
}

// MatMulTNAddInto accumulates C += Aᵀ·B for row-major A [m,k], B [m,p],
// C [k,p] — the dB = Aᵀ·dC rule of a matmul backward pass.
func MatMulTNAddInto(c, a, b []float64, m, k, p int) {
	if len(c) != k*p || len(a) != m*k || len(b) != m*p {
		panic("linalg: MatMulTNAddInto dimension mismatch")
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		brow := b[i*p : (i+1)*p]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			crow := c[kk*p : (kk+1)*p]
			for j := 0; j < p; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// AddInto computes dst = a + b elementwise.
func AddInto(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("linalg: AddInto length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// SubInto computes dst = a - b elementwise.
func SubInto(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("linalg: SubInto length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// MulInto computes dst = a * b elementwise.
func MulInto(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("linalg: MulInto length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// ScaleInto computes dst = alpha * v.
func ScaleInto(dst []float64, alpha float64, v []float64) {
	if len(dst) != len(v) {
		panic("linalg: ScaleInto length mismatch")
	}
	for i := range dst {
		dst[i] = alpha * v[i]
	}
}

// AccumInto computes dst += src.
func AccumInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic("linalg: AccumInto length mismatch")
	}
	for i := range src {
		dst[i] += src[i]
	}
}

// ZeroInto clears v.
func ZeroInto(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// MatVecInto computes y = M·x into a caller-provided buffer — the
// allocation-free sibling of MatVec.
func (m *Matrix) MatVecInto(y, x []float64) {
	MatVecInto(y, m.Data, x, m.Rows, m.Cols)
}

// MatMulIntoMat computes dst = A·B without allocating; dst must be
// preshaped to [a.Rows, b.Cols].
func MatMulIntoMat(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("linalg: MatMulIntoMat dimension mismatch")
	}
	MatMulInto(dst.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
}
