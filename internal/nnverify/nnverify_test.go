package nnverify

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

func TestBoundsSoundness(t *testing.T) {
	// IBP bounds must contain every sampled network output.
	for _, act := range []nn.ActKind{nn.ActReLU, nn.ActELU, nn.ActTanh, nn.ActSigmoid, nn.ActLeakyReLU, nn.ActSoftplus} {
		r := rng.New(uint64(act) + 1)
		net := nn.MLP("m", []int{4, 8, 3}, act, r)
		box := Box(4, -1, 2)
		bounds, err := Bounds(net, box)
		if err != nil {
			t.Fatal(err)
		}
		if len(bounds) != 3 {
			t.Fatalf("bounds dim = %d", len(bounds))
		}
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, 4)
			for i := range x {
				x[i] = r.Uniform(-1, 2)
			}
			c := nn.NewCtx(false)
			out := net.Forward(c, c.T.ConstMat(x, 1, 4))
			for j, v := range out.Data() {
				if !bounds[j].Contains(v) {
					t.Fatalf("act %v: output %d = %v escapes proven bound [%v, %v]",
						act, j, v, bounds[j].Lo, bounds[j].Hi)
				}
			}
		}
	}
}

func TestBoundsExactForAffine(t *testing.T) {
	// A single dense layer with no activation: IBP is exact.
	d := &nn.Dense{W: nn.NewParam("W", 2, 1), B: nn.NewParam("b", 1, 1)}
	copy(d.W.Data, []float64{2, -3})
	d.B.Data[0] = 1
	net := &nn.Sequential{Layers: []nn.Layer{d}}
	bounds, err := Bounds(net, []Interval{{0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// y = 2a - 3b + 1 over [0,1]^2: min 1-3 = -2, max 2+1 = 3.
	if bounds[0].Lo != -2 || bounds[0].Hi != 3 {
		t.Fatalf("affine bounds = %+v, want [-2, 3]", bounds[0])
	}
}

func TestBoundsDimMismatch(t *testing.T) {
	net := nn.MLP("m", []int{3, 2}, nn.ActReLU, rng.New(1))
	if _, err := Bounds(net, Box(5, 0, 1)); err == nil {
		t.Fatal("accepted wrong box dimension")
	}
}

func TestVerifyReport(t *testing.T) {
	net := nn.MLP("m", []int{3, 6, 4}, nn.ActELU, rng.New(2))
	rep, err := Verify(net, Box(3, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.LogitsBounded {
		t.Fatal("finite network reported unbounded")
	}
	if !rep.SplitsAlwaysSimplex {
		t.Fatal("softmax post-processor is simplex-feasible by construction")
	}
	if rep.MaxLogitRange <= 0 {
		t.Fatal("zero logit range on a nontrivial box")
	}
	if len(rep.OutputBounds) != 4 {
		t.Fatal("wrong output dimension")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{-1, 2}
	if !iv.Contains(0) || !iv.Contains(-1) || !iv.Contains(2) {
		t.Fatal("Contains broken")
	}
	if iv.Contains(3) {
		t.Fatal("Contains accepted outside value")
	}
	box := Box(3, 1, 2)
	if len(box) != 3 || box[1].Lo != 1 || box[2].Hi != 2 {
		t.Fatal("Box broken")
	}
}

// TestIsolationIsInsufficient is the §2 argument as a test: the DNN passes
// every isolated check, yet the composed system's performance ratio is not
// bounded by any of them — two networks with IDENTICAL isolated
// certificates produce very different end-to-end MLUs on the same demand.
func TestIsolationIsInsufficient(t *testing.T) {
	// Two tiny "networks" (constant logits): one prefers direct paths, one
	// detours everything. Both have bounded logits and softmax outputs on
	// the simplex — identical isolated properties.
	mk := func(bias []float64) *nn.Sequential {
		d := &nn.Dense{W: nn.NewParam("W", 1, len(bias)), B: nn.NewParam("b", len(bias), 1)}
		copy(d.B.Data, bias)
		return &nn.Sequential{Layers: []nn.Layer{d}}
	}
	a := mk([]float64{5, -5})
	b := mk([]float64{-5, 5})
	for _, net := range []*nn.Sequential{a, b} {
		rep, err := Verify(net, Box(1, 0, 1))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.LogitsBounded || !rep.SplitsAlwaysSimplex {
			t.Fatal("isolated certificates should hold for both networks")
		}
	}
	// Yet their end-to-end effect differs 2x on Figure 3's demand (tested
	// exhaustively in te.TestFigure3RoutingEquivalence); here we only
	// assert the certificates cannot distinguish them.
	ra, _ := Verify(a, Box(1, 0, 1))
	rb, _ := Verify(b, Box(1, 0, 1))
	if ra.LogitsBounded != rb.LogitsBounded || ra.SplitsAlwaysSimplex != rb.SplitsAlwaysSimplex {
		t.Fatal("expected indistinguishable certificates")
	}
}
