// Package nnverify implements a small interval-bound-propagation (IBP)
// verifier for the feed-forward networks in this repository — the style of
// tool §3.1 calls "DNN verifiers": it proves properties of the DNN in
// ISOLATION (output ranges, simplex feasibility of the post-processed
// splits) over a box of inputs.
//
// Its purpose here is partly negative, making the paper's §2 argument
// executable: a DNN can pass every isolated check this verifier can express
// — outputs bounded, split ratios always on the simplex — and the composed
// SYSTEM can still underperform the optimal by large factors, because the
// damage depends on how split ratios interact with the demands (Figure 3).
// End-to-end analysis, not isolated verification, is what surfaces that.
package nnverify

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Interval is a closed interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// width returns Hi - Lo.
func (iv Interval) width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies in the interval (with tolerance).
func (iv Interval) Contains(v float64) bool {
	const tol = 1e-9
	return v >= iv.Lo-tol && v <= iv.Hi+tol
}

// Bounds propagates an input box through a network and returns sound output
// intervals. Supported layers: Dense and every activation in internal/nn.
func Bounds(net *nn.Sequential, input []Interval) ([]Interval, error) {
	cur := append([]Interval{}, input...)
	for _, layer := range net.Layers {
		switch l := layer.(type) {
		case *nn.Dense:
			if len(cur) != l.W.Rows {
				return nil, fmt.Errorf("nnverify: layer expects %d inputs, box has %d", l.W.Rows, len(cur))
			}
			next := make([]Interval, l.W.Cols)
			for j := 0; j < l.W.Cols; j++ {
				lo, hi := l.B.Data[j], l.B.Data[j]
				for i := 0; i < l.W.Rows; i++ {
					w := l.W.Data[i*l.W.Cols+j]
					if w >= 0 {
						lo += w * cur[i].Lo
						hi += w * cur[i].Hi
					} else {
						lo += w * cur[i].Hi
						hi += w * cur[i].Lo
					}
				}
				next[j] = Interval{lo, hi}
			}
			cur = next
		case *nn.Activation:
			next := make([]Interval, len(cur))
			for i, iv := range cur {
				next[i] = activationInterval(l.Kind, iv)
			}
			cur = next
		default:
			return nil, fmt.Errorf("nnverify: unsupported layer type %T", layer)
		}
	}
	return cur, nil
}

// activationInterval maps an interval through a monotone activation. All
// activations in internal/nn are nondecreasing, so endpoint evaluation is
// exact.
func activationInterval(k nn.ActKind, iv Interval) Interval {
	f := func(x float64) float64 {
		switch k {
		case nn.ActIdentity:
			return x
		case nn.ActReLU:
			return math.Max(0, x)
		case nn.ActLeakyReLU:
			if x > 0 {
				return x
			}
			return 0.01 * x
		case nn.ActELU:
			if x > 0 {
				return x
			}
			return math.Exp(x) - 1
		case nn.ActSigmoid:
			return 1 / (1 + math.Exp(-x))
		case nn.ActTanh:
			return math.Tanh(x)
		case nn.ActSoftplus:
			if x > 30 {
				return x
			}
			return math.Log1p(math.Exp(x))
		default:
			panic("nnverify: unknown activation")
		}
	}
	return Interval{f(iv.Lo), f(iv.Hi)}
}

// Box builds a uniform input box of the given dimension.
func Box(dim int, lo, hi float64) []Interval {
	out := make([]Interval, dim)
	for i := range out {
		out[i] = Interval{lo, hi}
	}
	return out
}

// Report is the outcome of the isolated-DNN verification.
type Report struct {
	// OutputBounds are the proven logit intervals.
	OutputBounds []Interval
	// MaxLogitRange is the widest proven output interval.
	MaxLogitRange float64
	// LogitsBounded certifies every logit is finite over the box.
	LogitsBounded bool
	// SplitsAlwaysSimplex certifies that the post-processed split ratios
	// are a probability distribution per demand — true BY CONSTRUCTION for
	// a softmax post-processor, which is exactly why this property is
	// vacuous as a safety argument.
	SplitsAlwaysSimplex bool
}

// Verify runs the isolated checks a DNN verifier could prove about a
// DOTE-style network over the given input box.
func Verify(net *nn.Sequential, input []Interval) (*Report, error) {
	bounds, err := Bounds(net, input)
	if err != nil {
		return nil, err
	}
	rep := &Report{OutputBounds: bounds, LogitsBounded: true, SplitsAlwaysSimplex: true}
	for _, iv := range bounds {
		if math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) || math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
			rep.LogitsBounded = false
		}
		if w := iv.width(); w > rep.MaxLogitRange {
			rep.MaxLogitRange = w
		}
	}
	return rep, nil
}
