// Package whitebox reimplements the mechanism of MetaOpt-class white-box
// analyzers (§3.1): encode the ENTIRE learning-enabled pipeline — DNN,
// post-processor, routing and objective — as one joint mixed-integer
// optimization, then solve it.
//
// As in the paper, the smooth activation must first be replaced by a
// piecewise-linear one (ReLU), each ReLU neuron costs a binary variable
// (big-M encoding), and the bilinear interactions (splits × demands,
// normalization) can only be relaxed (McCormick envelopes). The result is
// exact on toy networks but explodes combinatorially at realistic sizes —
// reproducing the "no result within budget" rows of Tables 1 and 2.
package whitebox

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/nn"
)

// DenseWeights is one affine layer y = W·x + b with W indexed [out][in].
type DenseWeights struct {
	W [][]float64
	B []float64
}

// LayersFromModel extracts the dense layers of a DOTE model's network,
// dropping its (smooth) activations — the white-box tool will re-insert
// ReLUs between them, mirroring the paper's substitution.
func LayersFromModel(m *dote.Model) []DenseWeights {
	var out []DenseWeights
	for _, layer := range m.Net.Layers {
		d, ok := layer.(*nn.Dense)
		if !ok {
			continue
		}
		in, o := d.W.Rows, d.W.Cols
		w := make([][]float64, o)
		for j := 0; j < o; j++ {
			w[j] = make([]float64, in)
			for i := 0; i < in; i++ {
				w[j][i] = d.W.Data[i*o+j]
			}
		}
		b := make([]float64, o)
		copy(b, d.B.Data)
		out = append(out, DenseWeights{W: w, B: b})
	}
	return out
}

// affineBounds propagates interval bounds through y = W·x + b.
func affineBounds(l DenseWeights, lo, hi []float64) (outLo, outHi []float64) {
	outLo = make([]float64, len(l.W))
	outHi = make([]float64, len(l.W))
	for j, row := range l.W {
		a, b := l.B[j], l.B[j]
		for i, w := range row {
			if w >= 0 {
				a += w * lo[i]
				b += w * hi[i]
			} else {
				a += w * hi[i]
				b += w * lo[i]
			}
		}
		outLo[j], outHi[j] = a, b
	}
	return outLo, outHi
}

// EncodeMLP encodes a ReLU network exactly in the MILP: each hidden neuron
// gets the standard big-M formulation with interval-propagated bounds. The
// final layer is affine (no ReLU), matching the DOTE logits head. Returns
// the output variables and their propagated bounds.
func EncodeMLP(p *milp.Problem, layers []DenseWeights, inputs []lp.VarID, inLo, inHi []float64) (outs []lp.VarID, outLo, outHi []float64) {
	x := inputs
	lo, hi := inLo, inHi
	for li, layer := range layers {
		isLast := li == len(layers)-1
		preLo, preHi := affineBounds(layer, lo, hi)
		next := make([]lp.VarID, len(layer.W))
		nextLo := make([]float64, len(layer.W))
		nextHi := make([]float64, len(layer.W))
		for j, row := range layer.W {
			pre := p.AddVariable(fmt.Sprintf("a%d_%d", li, j), preLo[j], preHi[j])
			e := lp.NewExpr().Add(-1, pre).AddConst(layer.B[j])
			for i, w := range row {
				if w != 0 {
					e.Add(w, x[i])
				}
			}
			p.AddConstraint("", e, lp.EQ, 0)
			if isLast {
				next[j] = pre
				nextLo[j], nextHi[j] = preLo[j], preHi[j]
				continue
			}
			// ReLU: z = max(0, pre).
			switch {
			case preLo[j] >= 0:
				next[j] = pre
				nextLo[j], nextHi[j] = preLo[j], preHi[j]
			case preHi[j] <= 0:
				z := p.AddVariable(fmt.Sprintf("z%d_%d", li, j), 0, 0)
				next[j] = z
				nextLo[j], nextHi[j] = 0, 0
			default:
				z := p.AddVariable(fmt.Sprintf("z%d_%d", li, j), 0, preHi[j])
				delta := p.AddBinary(fmt.Sprintf("relu%d_%d", li, j))
				// z >= pre
				p.AddConstraint("", lp.NewExpr().Add(1, z).Add(-1, pre), lp.GE, 0)
				// z <= pre - lo*(1 - delta), i.e. z - pre - lo*delta <= -lo
				p.AddConstraint("", lp.NewExpr().Add(1, z).Add(-1, pre).Add(-preLo[j], delta), lp.LE, -preLo[j])
				// z <= hi * delta
				p.AddConstraint("", lp.NewExpr().Add(1, z).Add(-preHi[j], delta), lp.LE, 0)
				next[j] = z
				nextLo[j], nextHi[j] = 0, preHi[j]
			}
		}
		x, lo, hi = next, nextLo, nextHi
	}
	return x, lo, hi
}

// addMcCormick adds w = x·y relaxed by its McCormick envelope over the box
// [xl,xu]×[yl,yu] and returns w. The envelope is exact only at the box
// corners — the fundamental approximation white-box tools must accept for
// bilinear stages.
func addMcCormick(p *milp.Problem, x, y lp.VarID, xl, xu, yl, yu float64) lp.VarID {
	wlo := math.Min(math.Min(xl*yl, xl*yu), math.Min(xu*yl, xu*yu))
	whi := math.Max(math.Max(xl*yl, xl*yu), math.Max(xu*yl, xu*yu))
	w := p.AddVariable("", wlo, whi)
	// w >= xl*y + x*yl - xl*yl
	p.AddConstraint("", lp.NewExpr().Add(1, w).Add(-xl, y).Add(-yl, x), lp.GE, -xl*yl)
	// w >= xu*y + x*yu - xu*yu
	p.AddConstraint("", lp.NewExpr().Add(1, w).Add(-xu, y).Add(-yu, x), lp.GE, -xu*yu)
	// w <= xu*y + x*yl - xu*yl
	p.AddConstraint("", lp.NewExpr().Add(1, w).Add(-xu, y).Add(-yl, x), lp.LE, -xu*yl)
	// w <= xl*y + x*yu - xl*yu
	p.AddConstraint("", lp.NewExpr().Add(1, w).Add(-xl, y).Add(-yu, x), lp.LE, -xl*yu)
	return w
}

// Options bound the white-box attack.
type Options struct {
	// MaxNodes / MaxTime bound the branch and bound (§5 gave MetaOpt six
	// hours).
	MaxNodes int
	MaxTime  time.Duration
}

// Attack runs the white-box analysis of a DOTE model: it builds the joint
// MILP over (demand, DNN, splits, routing) and reports the best VERIFIED
// adversarial input — each MILP incumbent's demand is re-scored on the real
// pipeline, because the encoding itself is only a relaxation of the true
// system. Typically the solver exhausts its budget with no usable
// incumbent, which is the finding of Tables 1 and 2.
func Attack(m *dote.Model, maxDemand float64, opts Options) (*core.SearchResult, error) {
	if maxDemand <= 0 {
		return nil, fmt.Errorf("whitebox: maxDemand must be positive")
	}
	start := time.Now()
	res := &core.SearchResult{Method: "white-box (MetaOpt-style MILP)"}

	ps := m.PS
	numPairs := ps.NumPairs()
	inDim := m.HistoryDim()

	p := milp.NewProblem()
	// Demand variables (the adversarial input). For DOTE-Hist the history
	// epochs are additional free inputs; for DOTE-Curr the DNN input IS the
	// demand.
	demVars := make([]lp.VarID, numPairs)
	for i := range demVars {
		demVars[i] = p.AddVariable(fmt.Sprintf("d%d", i), 0, maxDemand)
	}
	var inVars []lp.VarID
	if m.Cfg.Variant == dote.Curr {
		inVars = demVars
	} else {
		inVars = make([]lp.VarID, inDim)
		for i := range inVars {
			inVars[i] = p.AddVariable(fmt.Sprintf("h%d", i), 0, maxDemand)
		}
	}
	inLo := make([]float64, len(inVars))
	inHi := make([]float64, len(inVars))
	scale := 1 / m.InputScale
	for i := range inHi {
		inHi[i] = maxDemand * scale
	}
	// The network consumes scaled inputs; introduce scaled aliases.
	scaled := make([]lp.VarID, len(inVars))
	for i, v := range inVars {
		s := p.AddVariable("", 0, maxDemand*scale)
		p.AddConstraint("", lp.NewExpr().Add(1, s).Add(-scale, v), lp.EQ, 0)
		scaled[i] = s
	}
	layers := LayersFromModel(m)
	logits, logitLo, logitHi := EncodeMLP(p, layers, scaled, inLo, inHi)

	// Post-processor: true softmax is not piecewise linear; white-box tools
	// must approximate. We use the MetaOpt-style bilinear normalization
	// s_ik · Σ_j σ(z_ij) = σ(z_ik) with σ = shifted ReLU, McCormick-relaxed.
	offsets, total := ps.Offsets()
	splitVars := make([]lp.VarID, total)
	for pi, pp := range ps.PairPaths {
		if len(pp) == 0 {
			continue
		}
		// σ_k = z_k - min bound + eps keeps the mass positive.
		sigma := make([]lp.VarID, len(pp))
		sigLo := make([]float64, len(pp))
		sigHi := make([]float64, len(pp))
		const eps = 1e-3
		for k := range pp {
			idx := offsets[pi] + k
			shift := -logitLo[idx] + eps
			sv := p.AddVariable("", eps, logitHi[idx]+shift)
			p.AddConstraint("", lp.NewExpr().Add(1, sv).Add(-1, logits[idx]), lp.EQ, shift)
			sigma[k] = sv
			sigLo[k], sigHi[k] = eps, logitHi[idx]+shift
		}
		sumLo, sumHi := 0.0, 0.0
		for k := range pp {
			sumLo += sigLo[k]
			sumHi += sigHi[k]
		}
		sum := p.AddVariable("", sumLo, sumHi)
		se := lp.NewExpr().Add(-1, sum)
		for _, sv := range sigma {
			se.Add(1, sv)
		}
		p.AddConstraint("", se, lp.EQ, 0)
		norm := lp.NewExpr()
		for k := range pp {
			s := p.AddVariable("", 0, 1)
			splitVars[offsets[pi]+k] = s
			// s * sum = sigma_k (bilinear, McCormick).
			w := addMcCormick(p, s, sum, 0, 1, sumLo, sumHi)
			p.AddConstraint("", lp.NewExpr().Add(1, w).Add(-1, sigma[k]), lp.EQ, 0)
			norm.Add(1, s)
		}
		p.AddConstraint("", norm, lp.EQ, 1)
	}

	// Routing: per-edge utilization from bilinear flow = demand * split.
	g := ps.Graph
	edgeExprs := make([]*lp.Expr, g.NumEdges())
	for e := range edgeExprs {
		edgeExprs[e] = lp.NewExpr()
	}
	for pi, pp := range ps.PairPaths {
		for k, path := range pp {
			s := splitVars[offsets[pi]+k]
			w := addMcCormick(p, demVars[pi], s, 0, maxDemand, 0, 1)
			for _, eid := range path.Edges {
				edgeExprs[eid].Add(1/g.Edge(eid).Capacity, w)
			}
		}
	}
	// Feasibility of Eq. 3: the demand must be routable at MLU <= 1 by SOME
	// split — exactly linear via auxiliary optimal-flow variables
	// f_{pair,path}: per-pair conservation plus per-edge capacity rows.
	feasCap := make([]*lp.Expr, g.NumEdges())
	for e := range feasCap {
		feasCap[e] = lp.NewExpr()
	}
	for pi, pp := range ps.PairPaths {
		if len(pp) == 0 {
			continue
		}
		fe := lp.NewExpr().Add(-1, demVars[pi])
		for _, path := range pp {
			fv := p.AddVariable("", 0, math.Inf(1))
			fe.Add(1, fv)
			for _, eid := range path.Edges {
				feasCap[eid].Add(1, fv)
			}
		}
		p.AddConstraint("", fe, lp.EQ, 0)
	}
	for e, expr := range feasCap {
		if len(expr.Terms) > 0 {
			p.AddConstraint("", expr, lp.LE, g.Edge(e).Capacity)
		}
	}

	// Objective: maximize the system's MLU = max_e utilization_e, encoded
	// with edge-selector binaries.
	u := p.AddVariable("mlu", 0, math.Inf(1))
	selSum := lp.NewExpr()
	const bigM = 1e4
	for e, expr := range edgeExprs {
		// u >= util_e
		ge := lp.NewExpr().Add(1, u)
		for _, t := range expr.Terms {
			ge.Add(-t.Coeff, t.Var)
		}
		p.AddConstraint("", ge, lp.GE, 0)
		// u <= util_e + M(1 - delta_e)
		delta := p.AddBinary(fmt.Sprintf("argmax%d", e))
		le := lp.NewExpr().Add(1, u).Add(bigM, delta)
		for _, t := range expr.Terms {
			le.Add(-t.Coeff, t.Var)
		}
		p.AddConstraint("", le, lp.LE, bigM)
		selSum.Add(1, delta)
	}
	p.AddConstraint("", selSum, lp.EQ, 1)
	p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, u))

	sol := p.Solve(milp.Options{MaxNodes: opts.MaxNodes, MaxTime: opts.MaxTime})
	res.Elapsed = time.Since(start)
	res.Evals = sol.Nodes
	if sol.Status == milp.Optimal || sol.Status == milp.Feasible {
		// Verify the incumbent on the REAL pipeline (the encoding is a
		// relaxation; its objective value is not trustworthy).
		x := make([]float64, m.InputDim())
		if m.Cfg.Variant == dote.Curr {
			for i, v := range demVars {
				x[i] = sol.X[v]
			}
		} else {
			for i, v := range inVars {
				x[i] = sol.X[v]
			}
			for i, v := range demVars {
				x[m.HistoryDim()+i] = sol.X[v]
			}
		}
		ratio, sys, opt, err := m.PerformanceRatio(x)
		if err != nil {
			return nil, err
		}
		res.LPEvals++
		if ratio > 1 {
			res.Found = true
			res.BestRatio = ratio
			res.BestSysMLU, res.BestOptMLU = sys, opt
			res.BestX = x
			res.TimeToBest = res.Elapsed
		}
	}
	return res, nil
}
