package whitebox

import (
	"math"
	"testing"
	"time"

	"repro/internal/dote"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
)

// reluForward evaluates a ReLU MLP (linear last layer) directly.
func reluForward(layers []DenseWeights, x []float64) []float64 {
	cur := x
	for li, l := range layers {
		next := make([]float64, len(l.W))
		for j, row := range l.W {
			s := l.B[j]
			for i, w := range row {
				s += w * cur[i]
			}
			if li < len(layers)-1 && s < 0 {
				s = 0
			}
			next[j] = s
		}
		cur = next
	}
	return cur
}

func randLayers(r *rng.RNG, sizes []int) []DenseWeights {
	var layers []DenseWeights
	for li := 0; li+1 < len(sizes); li++ {
		w := make([][]float64, sizes[li+1])
		for j := range w {
			w[j] = make([]float64, sizes[li])
			for i := range w[j] {
				w[j][i] = r.Uniform(-1, 1)
			}
		}
		b := make([]float64, sizes[li+1])
		for j := range b {
			b[j] = r.Uniform(-0.5, 0.5)
		}
		layers = append(layers, DenseWeights{W: w, B: b})
	}
	return layers
}

// TestEncodeMLPExactAtFixedInput pins the MILP inputs to a point and checks
// the encoded outputs equal the direct forward pass — the encoding must be
// EXACT for ReLU networks (§3.1's "model everything" requirement).
func TestEncodeMLPExactAtFixedInput(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 5; trial++ {
		layers := randLayers(r, []int{3, 4, 2})
		x := []float64{r.Uniform(0, 1), r.Uniform(0, 1), r.Uniform(0, 1)}
		p := milp.NewProblem()
		inputs := make([]lp.VarID, 3)
		for i := range inputs {
			inputs[i] = p.AddVariable("", x[i], x[i]) // pinned
		}
		lo := []float64{0, 0, 0}
		hi := []float64{1, 1, 1}
		outs, _, _ := EncodeMLP(p, layers, inputs, lo, hi)
		// Any feasible point works; optimize a dummy objective.
		p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, outs[0]))
		sol := p.Solve(milp.Options{})
		if sol.Status != milp.Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		want := reluForward(layers, x)
		for j, ov := range outs {
			if math.Abs(sol.X[ov]-want[j]) > 1e-5 {
				t.Fatalf("trial %d: output %d = %v, direct %v", trial, j, sol.X[ov], want[j])
			}
		}
	}
}

// TestEncodeMLPMaximization: the MILP's maximum over the input box must
// match a dense grid search on a tiny network.
func TestEncodeMLPMaximization(t *testing.T) {
	r := rng.New(2)
	layers := randLayers(r, []int{2, 3, 1})
	p := milp.NewProblem()
	inputs := []lp.VarID{p.AddVariable("", 0, 1), p.AddVariable("", 0, 1)}
	outs, _, _ := EncodeMLP(p, layers, inputs, []float64{0, 0}, []float64{1, 1})
	p.SetObjective(lp.Maximize, lp.NewExpr().Add(1, outs[0]))
	sol := p.Solve(milp.Options{})
	if sol.Status != milp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	best := math.Inf(-1)
	const steps = 60
	for a := 0; a <= steps; a++ {
		for b := 0; b <= steps; b++ {
			v := reluForward(layers, []float64{float64(a) / steps, float64(b) / steps})[0]
			if v > best {
				best = v
			}
		}
	}
	// Grid is a lower bound on the true max; MILP must match it closely
	// (the max of a ReLU net over a box is attained at cell corners of its
	// linear regions, so a fine grid gets within a small tolerance).
	if sol.Objective < best-1e-6 {
		t.Fatalf("MILP max %v below grid max %v", sol.Objective, best)
	}
	if sol.Objective > best+0.15 {
		t.Fatalf("MILP max %v implausibly above grid max %v", sol.Objective, best)
	}
}

func TestLayersFromModel(t *testing.T) {
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{5}
	m := dote.New(ps, cfg)
	layers := LayersFromModel(m)
	if len(layers) != 2 {
		t.Fatalf("layers = %d, want 2", len(layers))
	}
	if len(layers[0].W) != 5 || len(layers[0].W[0]) != m.HistoryDim() {
		t.Fatalf("layer 0 shape %dx%d", len(layers[0].W), len(layers[0].W[0]))
	}
	if len(layers[1].W) != m.TotalPaths() {
		t.Fatalf("layer 1 out = %d, want %d", len(layers[1].W), m.TotalPaths())
	}
}

// TestAttackTinyModelTerminates: on a toy model the joint encoding should at
// least run to completion and produce an honest (verified) result.
func TestAttackTinyModelTerminates(t *testing.T) {
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{4}
	m := dote.New(ps, cfg)
	res, err := Attack(m, ps.Graph.AvgLinkCapacity(), Options{MaxNodes: 3000, MaxTime: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals == 0 {
		t.Fatal("no branch-and-bound nodes explored")
	}
	if res.Found {
		// When a verified input exists it must reproduce its ratio.
		ratio, _, _, err := m.PerformanceRatio(res.BestX)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ratio-res.BestRatio) > 1e-9 {
			t.Fatalf("verified ratio %v != reported %v", ratio, res.BestRatio)
		}
	}
}

// TestAttackRealisticSizeExhaustsBudget reproduces the Table 1/2 failure
// mode: at Abilene scale with a real hidden layer, the joint encoding finds
// no useful adversarial input within a budget that the gradient method
// beats by orders of magnitude.
func TestAttackRealisticSizeExhaustsBudget(t *testing.T) {
	ps := paths.NewPathSet(topology.Abilene(), 4)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{64}
	m := dote.New(ps, cfg)
	res, err := Attack(m, ps.Graph.AvgLinkCapacity(), Options{MaxNodes: 30, MaxTime: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found && res.BestRatio > 1.5 {
		t.Fatalf("white-box unexpectedly effective (%v); the scalability claim would not hold", res.BestRatio)
	}
}

// TestAttackHistVariant exercises the DOTE-Hist encoding path, where the
// history window adds free input variables beyond the routed demand.
func TestAttackHistVariant(t *testing.T) {
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := dote.DefaultConfig(dote.Hist)
	cfg.Hidden = []int{3}
	cfg.HistLen = 2
	m := dote.New(ps, cfg)
	res, err := Attack(m, ps.Graph.AvgLinkCapacity(), Options{MaxNodes: 500, MaxTime: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals == 0 {
		t.Fatal("no nodes explored")
	}
	if res.Found {
		if len(res.BestX) != m.InputDim() {
			t.Fatalf("input dim %d, want %d", len(res.BestX), m.InputDim())
		}
		ratio, _, _, err := m.PerformanceRatio(res.BestX)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ratio-res.BestRatio) > 1e-9 {
			t.Fatalf("verified ratio %v != reported %v", ratio, res.BestRatio)
		}
	}
}

func TestAttackRejectsBadDemand(t *testing.T) {
	ps := paths.NewPathSet(topology.Triangle(), 2)
	m := dote.New(ps, dote.DefaultConfig(dote.Curr))
	if _, err := Attack(m, 0, Options{MaxNodes: 1}); err == nil {
		t.Fatal("accepted non-positive maxDemand")
	}
}

func TestMcCormickEnvelopeContainsProduct(t *testing.T) {
	// For pinned x, y the McCormick relaxation must admit w = x*y.
	r := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		x, y := r.Uniform(0, 2), r.Uniform(-1, 3)
		p := milp.NewProblem()
		xv := p.AddVariable("", x, x)
		yv := p.AddVariable("", y, y)
		w := addMcCormick(p, xv, yv, 0, 2, -1, 3)
		p.SetObjective(lp.Minimize, lp.NewExpr().Add(1, w))
		lo := p.Solve(milp.Options{})
		p2 := milp.NewProblem()
		xv2 := p2.AddVariable("", x, x)
		yv2 := p2.AddVariable("", y, y)
		w2 := addMcCormick(p2, xv2, yv2, 0, 2, -1, 3)
		p2.SetObjective(lp.Maximize, lp.NewExpr().Add(1, w2))
		hi := p2.Solve(milp.Options{})
		if lo.Status != milp.Optimal || hi.Status != milp.Optimal {
			t.Fatalf("trial %d: envelope solve failed", trial)
		}
		prod := x * y
		if prod < lo.Objective-1e-6 || prod > hi.Objective+1e-6 {
			t.Fatalf("trial %d: product %v outside envelope [%v, %v]", trial, prod, lo.Objective, hi.Objective)
		}
	}
}

func TestAffineBounds(t *testing.T) {
	l := DenseWeights{W: [][]float64{{1, -2}}, B: []float64{3}}
	lo, hi := affineBounds(l, []float64{0, 0}, []float64{1, 1})
	// y = x0 - 2 x1 + 3 over [0,1]^2: min 1, max 4.
	if lo[0] != 1 || hi[0] != 4 {
		t.Fatalf("bounds = [%v, %v], want [1, 4]", lo[0], hi[0])
	}
}
