package traffic

import (
	"math"
	"testing"

	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/te"
	"repro/internal/topology"
)

func abilenePS() *paths.PathSet {
	return paths.NewPathSet(topology.Abilene(), 4)
}

func TestGravityShape(t *testing.T) {
	ps := abilenePS()
	g := NewGravity(ps, 0.3, rng.New(1))
	if g.NumPairs() != 110 {
		t.Fatalf("NumPairs = %d", g.NumPairs())
	}
	tm := g.Next()
	if len(tm) != 110 {
		t.Fatalf("matrix size = %d", len(tm))
	}
	for _, d := range tm {
		if d < 0 {
			t.Fatal("negative demand")
		}
		if d > ps.Graph.AvgLinkCapacity()+1e-9 {
			t.Fatalf("demand %v exceeds avg link capacity clip", d)
		}
	}
}

func TestGravityRoutable(t *testing.T) {
	// The operating point must keep demands feasible (optimal MLU bounded).
	ps := abilenePS()
	g := NewGravity(ps, 0.3, rng.New(2))
	for i := 0; i < 3; i++ {
		tm := g.Next()
		opt, _, err := te.OptimalMLU(ps, tm)
		if err != nil {
			t.Fatal(err)
		}
		if opt <= 0 || opt > 3 {
			t.Fatalf("gravity optimal MLU %v out of sane range", opt)
		}
	}
}

func TestGravityDiurnalCycle(t *testing.T) {
	ps := abilenePS()
	g := NewGravity(ps, 0.3, rng.New(3))
	g.Noise = 0 // isolate the seasonal component
	totals := make([]float64, g.Period)
	for i := range totals {
		totals[i] = g.Next().Total()
	}
	// Peak (quarter period) must exceed trough (three quarters).
	peak, trough := totals[g.Period/4], totals[3*g.Period/4]
	if peak <= trough {
		t.Fatalf("no diurnal modulation: peak %v <= trough %v", peak, trough)
	}
}

func TestGravityMostPairsSmall(t *testing.T) {
	// The Figure 5 property: most pairs exchange small traffic.
	ps := abilenePS()
	g := NewGravity(ps, 0.3, rng.New(4))
	tm := g.Next()
	avgCap := ps.Graph.AvgLinkCapacity()
	small := 0
	for _, d := range tm {
		if d < 0.1*avgCap {
			small++
		}
	}
	if frac := float64(small) / float64(len(tm)); frac < 0.6 {
		t.Fatalf("only %.2f of gravity demands are small; want most", frac)
	}
}

func TestUniformBounds(t *testing.T) {
	ps := abilenePS()
	u := NewUniform(ps, 5, rng.New(5))
	tm := u.Next()
	if u.NumPairs() != len(tm) {
		t.Fatal("NumPairs mismatch")
	}
	for _, d := range tm {
		if d < 0 || d > 5 {
			t.Fatalf("uniform demand %v out of [0, 5]", d)
		}
	}
}

func TestBimodalClip(t *testing.T) {
	ps := abilenePS()
	b := NewBimodal(ps, 0.1, rng.New(6))
	maxCap := ps.Graph.AvgLinkCapacity()
	for i := 0; i < 5; i++ {
		for _, d := range b.Next() {
			if d < 0 || d > maxCap {
				t.Fatalf("bimodal demand %v out of range", d)
			}
		}
	}
}

func TestSparseActiveCount(t *testing.T) {
	ps := abilenePS()
	s := NewSparse(ps, 3, 2, rng.New(7))
	tm := s.Next()
	active := 0
	for _, d := range tm {
		if d > 0 {
			active++
		}
	}
	if active != 3 {
		t.Fatalf("sparse active pairs = %d, want 3", active)
	}
}

func TestSequenceAndWindows(t *testing.T) {
	ps := abilenePS()
	g := NewGravity(ps, 0.3, rng.New(8))
	seq := Sequence(g, 20)
	if len(seq) != 20 {
		t.Fatalf("sequence length %d", len(seq))
	}
	k := 12
	ws := Windows(seq, k)
	if len(ws) != 20-k {
		t.Fatalf("windows = %d, want %d", len(ws), 20-k)
	}
	for _, w := range ws {
		if len(w.History) != k*110 {
			t.Fatalf("history length %d", len(w.History))
		}
		if len(w.Next) != 110 {
			t.Fatal("next length wrong")
		}
	}
	// Window content: first window's history must equal seq[0..k) flattened.
	for j := 0; j < k; j++ {
		for i := 0; i < 110; i++ {
			if ws[0].History[j*110+i] != seq[j][i] {
				t.Fatal("window content misaligned")
			}
		}
	}
	if &ws[0].Next[0] != &seq[k][0] {
		t.Fatal("window Next should alias the sequence epoch")
	}
}

func TestCurrWindows(t *testing.T) {
	ps := abilenePS()
	g := NewGravity(ps, 0.3, rng.New(9))
	seq := Sequence(g, 5)
	ws := CurrWindows(seq)
	if len(ws) != 5 {
		t.Fatal("CurrWindows length wrong")
	}
	for i, w := range ws {
		if len(w.History) != len(seq[i]) {
			t.Fatal("CurrWindows history shape wrong")
		}
		for j := range w.History {
			if w.History[j] != seq[i][j] {
				t.Fatal("CurrWindows history must equal the current epoch")
			}
		}
	}
}

func TestWindowsPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Windows(seq, 0) did not panic")
		}
	}()
	Windows(nil, 0)
}

func TestCDFMonotoneAndNormalized(t *testing.T) {
	tms := []te.TrafficMatrix{{0.1, 0.5, 0.9}, {0.2, 0.4, 1.5}}
	th := []float64{0.1, 0.3, 0.5, 1.0, 2.0}
	cdf := CDF(tms, 1, th)
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone: %v", cdf)
		}
	}
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-12 {
		t.Fatalf("CDF tail = %v, want 1", cdf[len(cdf)-1])
	}
	if cdf[0] != 1.0/6 {
		t.Fatalf("CDF(0.1) = %v, want 1/6", cdf[0])
	}
	if got := CDF(nil, 1, th); got[0] != 0 {
		t.Fatal("empty CDF should be zero")
	}
}

func TestShiftRedistributes(t *testing.T) {
	ps := abilenePS()
	base := NewGravity(ps, 0.3, rng.New(10))
	s := &Shift{Inner: base, At: 3, HotPairs: []int{0, 1}, Fraction: 0.5}
	if s.NumPairs() != 110 {
		t.Fatal("NumPairs passthrough wrong")
	}
	seq := Sequence(s, 6)
	// Volume is conserved by the shift; compare against an identically
	// seeded unshifted generator.
	ref := Sequence(NewGravity(ps, 0.3, rng.New(10)), 6)
	for e := range seq {
		if math.Abs(seq[e].Total()-ref[e].Total()) > 1e-9*(1+ref[e].Total()) {
			t.Fatalf("epoch %d: shift changed total volume", e)
		}
	}
	// Before the event: identical. After: hot pairs dominate.
	for e := 0; e < 3; e++ {
		for i := range seq[e] {
			if seq[e][i] != ref[e][i] {
				t.Fatalf("epoch %d shifted before the event", e)
			}
		}
	}
	for e := 3; e < 6; e++ {
		if seq[e][0] <= ref[e][0] {
			t.Fatalf("epoch %d: hot pair did not gain volume", e)
		}
	}
}

func TestShiftNoHotPairsIsIdentity(t *testing.T) {
	ps := abilenePS()
	s := &Shift{Inner: NewGravity(ps, 0.3, rng.New(11)), At: 0, Fraction: 0.5}
	ref := Sequence(NewGravity(ps, 0.3, rng.New(11)), 2)
	got := Sequence(s, 2)
	for e := range got {
		for i := range got[e] {
			if got[e][i] != ref[e][i] {
				t.Fatal("shift without hot pairs must be identity")
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	ps := abilenePS()
	a := Sequence(NewGravity(ps, 0.3, rng.New(42)), 3)
	b := Sequence(NewGravity(ps, 0.3, rng.New(42)), 3)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("gravity not deterministic under same seed")
			}
		}
	}
}
