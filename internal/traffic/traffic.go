// Package traffic generates synthetic demand workloads. The paper trains
// and tests DOTE on real Abilene traces; those are proprietary-scale data we
// substitute with generators that preserve the properties the analysis
// depends on (see DESIGN.md): gravity-structured demands where most pairs
// exchange small traffic, cyclostationary (diurnal) evolution, and noise.
package traffic

import (
	"math"

	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/te"
)

// Generator produces a sequence of traffic matrices (one per epoch).
type Generator interface {
	// Next returns the demand matrix of the next epoch.
	Next() te.TrafficMatrix
	// NumPairs returns the matrix dimensionality.
	NumPairs() int
}

// Gravity generates gravity-model demands with diurnal modulation and
// multiplicative noise:
//
//	d_t(i,j) = base(i,j) · season(t) · noise,  base(i,j) ∝ w_i·w_j
//
// Most node weights are small with a few large ones, so most pairs exchange
// little traffic — the training-data shape shown in Figure 5.
type Gravity struct {
	ps     *paths.PathSet
	base   te.TrafficMatrix
	r      *rng.RNG
	t      int
	Period int     // epochs per diurnal cycle
	Amp    float64 // seasonal amplitude in [0, 1)
	Noise  float64 // multiplicative noise stddev
	MaxDem float64 // per-pair clip (0 = no clip)
}

// NewGravity builds a gravity generator whose demands average to the given
// fraction of the topology's average link capacity.
func NewGravity(ps *paths.PathSet, meanUtilization float64, r *rng.RNG) *Gravity {
	g := ps.Graph
	n := g.NumNodes()
	// Heavy-tailed node weights: a few "large PoPs".
	w := make([]float64, n)
	for i := range w {
		w[i] = r.Pareto(1, 1.2)
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	base := make(te.TrafficMatrix, ps.NumPairs())
	totalW := 0.0
	for i, p := range ps.Pairs {
		base[i] = w[p.Src] * w[p.Dst]
		totalW += base[i]
	}
	// Scale so the mean per-pair demand is meanUtilization * avgCap / pairs
	// spread: pick total volume = meanUtilization * avgCap * sqrt(pairs) as
	// a pragmatic operating point that keeps the optimal MLU well below 1.
	avgCap := g.AvgLinkCapacity()
	target := meanUtilization * avgCap * math.Sqrt(float64(ps.NumPairs()))
	for i := range base {
		base[i] = base[i] / totalW * target
	}
	return &Gravity{
		ps:     ps,
		base:   base,
		r:      r,
		Period: 96, // 15-minute epochs per day, as in DOTE
		Amp:    0.4,
		Noise:  0.1,
		MaxDem: avgCap,
	}
}

// NumPairs returns the matrix dimensionality.
func (g *Gravity) NumPairs() int { return len(g.base) }

// Next returns the next epoch's demands.
func (g *Gravity) Next() te.TrafficMatrix {
	season := 1 + g.Amp*math.Sin(2*math.Pi*float64(g.t)/float64(g.Period))
	g.t++
	tm := make(te.TrafficMatrix, len(g.base))
	for i, b := range g.base {
		v := b * season * (1 + g.Noise*g.r.NormFloat64())
		if v < 0 {
			v = 0
		}
		if g.MaxDem > 0 && v > g.MaxDem {
			v = g.MaxDem
		}
		tm[i] = v
	}
	return tm
}

// Uniform generates i.i.d. uniform demands in [0, maxDemand] — the simplest
// stress workload.
type Uniform struct {
	pairs  int
	maxDem float64
	r      *rng.RNG
}

// NewUniform builds a uniform generator.
func NewUniform(ps *paths.PathSet, maxDemand float64, r *rng.RNG) *Uniform {
	return &Uniform{pairs: ps.NumPairs(), maxDem: maxDemand, r: r}
}

// NumPairs returns the matrix dimensionality.
func (u *Uniform) NumPairs() int { return u.pairs }

// Next returns the next epoch's demands.
func (u *Uniform) Next() te.TrafficMatrix {
	tm := make(te.TrafficMatrix, u.pairs)
	for i := range tm {
		tm[i] = u.r.Float64() * u.maxDem
	}
	return tm
}

// Bimodal generates elephant-mice demands: each pair is an elephant with
// probability pElephant drawing from a heavy distribution, otherwise a
// mouse. Pair roles re-randomize each epoch — a proxy for sudden traffic
// shifts (e.g. after fiber cuts, §5).
type Bimodal struct {
	pairs     int
	pElephant float64
	mouseMean float64
	elephMean float64
	maxDem    float64
	r         *rng.RNG
}

// NewBimodal builds a bimodal generator scaled to the topology.
func NewBimodal(ps *paths.PathSet, pElephant float64, r *rng.RNG) *Bimodal {
	avgCap := ps.Graph.AvgLinkCapacity()
	return &Bimodal{
		pairs:     ps.NumPairs(),
		pElephant: pElephant,
		mouseMean: avgCap / float64(ps.NumPairs()),
		elephMean: avgCap / 4,
		maxDem:    avgCap,
		r:         r,
	}
}

// NumPairs returns the matrix dimensionality.
func (b *Bimodal) NumPairs() int { return b.pairs }

// Next returns the next epoch's demands.
func (b *Bimodal) Next() te.TrafficMatrix {
	tm := make(te.TrafficMatrix, b.pairs)
	for i := range tm {
		mean := b.mouseMean
		if b.r.Float64() < b.pElephant {
			mean = b.elephMean
		}
		v := b.r.ExpFloat64() * mean
		if v > b.maxDem {
			v = b.maxDem
		}
		tm[i] = v
	}
	return tm
}

// Sparse generates demands where only a few random pairs are active each
// epoch — the shape of the adversarial inputs the analyzer finds (Figure 5).
type Sparse struct {
	pairs  int
	active int
	volume float64
	r      *rng.RNG
}

// NewSparse builds a sparse generator with the given number of active pairs
// per epoch, each carrying `volume` demand.
func NewSparse(ps *paths.PathSet, active int, volume float64, r *rng.RNG) *Sparse {
	return &Sparse{pairs: ps.NumPairs(), active: active, volume: volume, r: r}
}

// NumPairs returns the matrix dimensionality.
func (s *Sparse) NumPairs() int { return s.pairs }

// Next returns the next epoch's demands.
func (s *Sparse) Next() te.TrafficMatrix {
	tm := make(te.TrafficMatrix, s.pairs)
	perm := s.r.Perm(s.pairs)
	for i := 0; i < s.active && i < s.pairs; i++ {
		tm[perm[i]] = s.volume * (0.5 + s.r.Float64())
	}
	return tm
}

// Shift wraps a generator and, from epoch At onward, reroutes a fraction of
// every pair's demand onto a small set of "hot" pairs — the sudden traffic
// redistribution a fiber cut causes (§5: "such as when a fiber cut happens
// and causes a shift in the traffic distribution"). History-driven systems
// trained before the shift see stale patterns afterwards.
type Shift struct {
	Inner Generator
	// At is the epoch index at which the shift starts.
	At int
	// HotPairs receive the displaced volume.
	HotPairs []int
	// Fraction of each pair's demand that gets displaced (0..1].
	Fraction float64

	t int
}

// NumPairs returns the matrix dimensionality.
func (s *Shift) NumPairs() int { return s.Inner.NumPairs() }

// Next returns the next epoch's demands, shifted once the event fires.
func (s *Shift) Next() te.TrafficMatrix {
	tm := s.Inner.Next()
	epoch := s.t
	s.t++
	if epoch < s.At || len(s.HotPairs) == 0 || s.Fraction <= 0 {
		return tm
	}
	displaced := 0.0
	for i := range tm {
		d := tm[i] * s.Fraction
		tm[i] -= d
		displaced += d
	}
	per := displaced / float64(len(s.HotPairs))
	for _, p := range s.HotPairs {
		tm[p] += per
	}
	return tm
}

// Sequence materializes n epochs from a generator.
func Sequence(g Generator, n int) []te.TrafficMatrix {
	out := make([]te.TrafficMatrix, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Example is one supervised sample for DOTE training: the flattened history
// window (oldest epoch first) and the next epoch's demands.
type Example struct {
	History []float64 // K*pairs values
	Next    te.TrafficMatrix
}

// Windows slides a length-k history window over seq, producing one Example
// per position. DOTE-Hist uses k=12; DOTE-Curr degenerates to k=1 with
// History == Next (the current matrix is the input).
func Windows(seq []te.TrafficMatrix, k int) []Example {
	if k < 1 {
		panic("traffic: window length must be >= 1")
	}
	var out []Example
	for i := k; i < len(seq); i++ {
		h := make([]float64, 0, k*len(seq[0]))
		for j := i - k; j < i; j++ {
			h = append(h, seq[j]...)
		}
		out = append(out, Example{History: h, Next: seq[i]})
	}
	return out
}

// CurrWindows produces DOTE-Curr examples: the input is the current epoch's
// demands themselves.
func CurrWindows(seq []te.TrafficMatrix) []Example {
	out := make([]Example, len(seq))
	for i, tm := range seq {
		h := make([]float64, len(tm))
		copy(h, tm)
		out[i] = Example{History: h, Next: tm}
	}
	return out
}

// CDF returns the empirical CDF of the positive demand entries of the given
// matrices, evaluated at the given thresholds — the measurement behind
// Figure 5. Demands are normalized by `scale` before comparison.
func CDF(tms []te.TrafficMatrix, scale float64, thresholds []float64) []float64 {
	var all []float64
	for _, tm := range tms {
		for _, d := range tm {
			all = append(all, d/scale)
		}
	}
	out := make([]float64, len(thresholds))
	if len(all) == 0 {
		return out
	}
	for i, th := range thresholds {
		cnt := 0
		for _, v := range all {
			if v <= th {
				cnt++
			}
		}
		out[i] = float64(cnt) / float64(len(all))
	}
	return out
}
