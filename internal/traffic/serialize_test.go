package traffic

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/te"
)

func TestSequenceRoundTrip(t *testing.T) {
	ps := abilenePS()
	seq := Sequence(NewGravity(ps, 0.3, rng.New(1)), 5)
	var buf bytes.Buffer
	if err := WriteSequence(&buf, seq); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSequence(&buf, ps.NumPairs())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("epochs = %d", len(got))
	}
	for e := range seq {
		for i := range seq[e] {
			if got[e][i] != seq[e][i] {
				t.Fatalf("epoch %d demand %d: %v != %v", e, i, got[e][i], seq[e][i])
			}
		}
	}
}

func TestParseSequenceComments(t *testing.T) {
	in := "# header\n1 2 3\n\n4 5 6\n"
	got, err := ParseSequence(strings.NewReader(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][2] != 6 {
		t.Fatalf("parse wrong: %v", got)
	}
}

func TestParseSequenceErrors(t *testing.T) {
	cases := []struct {
		in        string
		wantPairs int
	}{
		{"1 x 3", 0},
		{"1 -2 3", 0},
		{"1 2 3\n1 2", 0},
		{"1 2", 3},
	}
	for _, c := range cases {
		if _, err := ParseSequence(strings.NewReader(c.in), c.wantPairs); err == nil {
			t.Fatalf("accepted malformed input %q", c.in)
		}
	}
}

func TestParseSequenceEmpty(t *testing.T) {
	got, err := ParseSequence(strings.NewReader(""), 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v %v", got, err)
	}
	var buf bytes.Buffer
	if err := WriteSequence(&buf, []te.TrafficMatrix{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("empty sequence should write nothing")
	}
}
