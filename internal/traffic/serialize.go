package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/te"
)

// WriteSequence serializes traffic matrices as text: one epoch per line,
// space-separated demands in pair order. Lines starting with '#' are
// comments; the format round-trips through ParseSequence.
func WriteSequence(w io.Writer, seq []te.TrafficMatrix) error {
	bw := bufio.NewWriter(w)
	for _, tm := range seq {
		for i, d := range tm {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(d, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseSequence reads matrices written by WriteSequence. Every epoch must
// have the same number of demands; wantPairs > 0 additionally enforces the
// dimensionality.
func ParseSequence(r io.Reader, wantPairs int) ([]te.TrafficMatrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []te.TrafficMatrix
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		tm := make(te.TrafficMatrix, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("traffic: line %d field %d: %v", lineNo, i, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("traffic: line %d field %d: negative demand %v", lineNo, i, v)
			}
			tm[i] = v
		}
		if len(out) > 0 && len(tm) != len(out[0]) {
			return nil, fmt.Errorf("traffic: line %d has %d demands, earlier epochs had %d", lineNo, len(tm), len(out[0]))
		}
		if wantPairs > 0 && len(tm) != wantPairs {
			return nil, fmt.Errorf("traffic: line %d has %d demands, want %d", lineNo, len(tm), wantPairs)
		}
		out = append(out, tm)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
