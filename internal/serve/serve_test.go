package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// recordStage is a trivially differentiable identity-sum pipeline stage that
// records every ObserveTrueEval fan-out — the serve-level stand-in for a
// surrogate learner riding the shared EvalCache's observation hook.
type recordStage struct {
	mu    sync.Mutex
	calls int
}

func (o *recordStage) Name() string { return "record" }

func (o *recordStage) Forward(x []float64) []float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return []float64{s}
}

func (o *recordStage) VJP(x, ybar []float64) []float64 {
	g := make([]float64, len(x))
	for i := range g {
		g[i] = ybar[0]
	}
	return g
}

func (o *recordStage) ObserveTrueEval(x []float64, ratio, sys, opt float64) {
	o.mu.Lock()
	o.calls++
	o.mu.Unlock()
}

func (o *recordStage) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.calls
}

// syntheticFleet is a TargetBuilder seam: every job gets a fresh cheap
// target whose observer stage is retrievable by job label, with optional
// per-label hooks called on each true evaluation (for channel-forced
// schedules).
type syntheticFleet struct {
	mu     sync.Mutex
	stages map[string]*recordStage
	hooks  map[string]func(call int)
}

func newSyntheticFleet() *syntheticFleet {
	return &syntheticFleet{
		stages: make(map[string]*recordStage),
		hooks:  make(map[string]func(int)),
	}
}

func (f *syntheticFleet) stage(label string) *recordStage {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stages[label]
}

func (f *syntheticFleet) build(spec *JobSpec) (*core.AttackTarget, string, error) {
	stage := &recordStage{}
	f.mu.Lock()
	f.stages[spec.Label] = stage
	hook := f.hooks[spec.Label]
	f.mu.Unlock()
	p := core.NewPipeline(stage)
	var calls atomic.Int64
	return &core.AttackTarget{
		Pipeline:  p,
		InputDim:  4,
		MaxDemand: 1,
		RatioOverride: func(x []float64) (float64, float64, float64, error) {
			n := calls.Add(1)
			if hook != nil {
				hook(int(n))
			}
			sys := p.EvalScalar(x)
			return sys, sys, 1, nil
		},
	}, "synthetic dim=4", nil
}

// testServer boots a Server over the fleet plus an httptest front end.
func testServer(t *testing.T, fleet *syntheticFleet, cfg Config) (*Server, *Client) {
	t.Helper()
	if fleet != nil {
		cfg.BuildTarget = fleet.build
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, &Client{Base: ts.URL, HTTP: ts.Client()}
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	fleet := newSyntheticFleet()
	_, c := testServer(t, fleet, Config{})
	ctx := context.Background()

	view, err := c.Submit(ctx, JobSpec{
		Label:     "lifecycle",
		Threshold: 1000, // sum of 4 coords capped at 1 each: always passes
		Budget:    Budget{Iters: 60, Restarts: 2, EvalEvery: 1, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}

	var types []string
	last, err := c.Stream(ctx, view.ID, func(ev Event) error {
		types = append(types, ev.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(types) < 3 || types[0] != "queued" || types[1] != "running" {
		t.Fatalf("event order %v, want queued, running, ...", types)
	}
	improved := 0
	for _, ty := range types {
		if ty == "improved" {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("no incremental best-so-far events streamed")
	}
	if last.Type != "done" || !last.Found || last.BestRatio <= 0 {
		t.Fatalf("terminal event %+v, want done with a positive best ratio", last)
	}
	if last.Pass == nil || !*last.Pass {
		t.Fatalf("threshold 1000 must pass, got %+v", last.Pass)
	}

	final, err := c.Get(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || len(final.Result) == 0 {
		t.Fatalf("final view state=%s result bytes=%d", final.State, len(final.Result))
	}
	res, err := core.ReadResultJSON(bytes.NewReader(final.Result))
	if err != nil {
		t.Fatalf("result JSON does not round-trip: %v", err)
	}
	if res.BestRatio != last.BestRatio {
		t.Fatalf("result ratio %v != done-event ratio %v", res.BestRatio, last.BestRatio)
	}
}

// TestGateMatchesDirectSearch pins the daemon's core contract: a gate run
// through the job queue and work-stealing pool returns bitwise the same
// adversarial ratio as a direct scalar-engine GradientSearchContext with the
// same seed and budget — per-restart trajectories are scheduling-independent.
func TestGateMatchesDirectSearch(t *testing.T) {
	fleet := newSyntheticFleet()
	_, c := testServer(t, fleet, Config{})

	spec := JobSpec{
		Label:     "gate",
		Threshold: 1e9,
		Budget: Budget{
			Iters: 60, Restarts: 2, EvalEvery: 1, Seed: 42,
			EvalCache: -1, // bitwise comparisons leave memoization out
		},
	}

	// Direct reference run with the exact config the daemon derives.
	target, _, err := fleet.build(&spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultGradientConfig()
	cfg.Iters, cfg.Restarts, cfg.EvalEvery, cfg.Seed = 60, 2, 1, 42
	cfg.Engine = core.EngineScalar
	direct, err := core.GradientSearchContext(context.Background(), target, cfg)
	if err != nil {
		t.Fatal(err)
	}

	out, err := c.Gate(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Pass {
		t.Fatalf("gate failed under threshold 1e9: ratio %v", out.Ratio)
	}
	if out.Ratio != direct.BestRatio {
		t.Fatalf("gate ratio %v != direct search ratio %v (must be bitwise equal)",
			out.Ratio, direct.BestRatio)
	}
}

// TestCancelMidSearchReturnsBestSoFar is the ISSUE's serve-mode cancellation
// contract: cancelling a running job does not discard it — the search winds
// down and the job completes with its best-so-far result and StopReason
// "cancelled".
func TestCancelMidSearchReturnsBestSoFar(t *testing.T) {
	fleet := newSyntheticFleet()
	_, c := testServer(t, fleet, Config{})
	ctx := context.Background()

	view, err := c.Submit(ctx, JobSpec{
		Label: "cancel-me",
		Budget: Budget{
			Iters:    50_000_000, // far beyond any test budget: only cancel ends it
			Restarts: 2, EvalEvery: 1, Patience: -1, Seed: 9, EvalCache: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var cancelOnce sync.Once
	last, err := c.Stream(ctx, view.ID, func(ev Event) error {
		if ev.Type == "improved" {
			cancelOnce.Do(func() {
				if err := c.Cancel(ctx, view.ID); err != nil {
					t.Errorf("cancel: %v", err)
				}
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Type != "done" {
		t.Fatalf("terminal event %q, want done (cancelled mid-search still completes)", last.Type)
	}
	if last.StopReason != core.StopCancelled.String() {
		t.Fatalf("stop reason %q, want %q", last.StopReason, core.StopCancelled)
	}
	if !last.Found || last.BestRatio <= 0 {
		t.Fatalf("cancelled job lost its best-so-far: %+v", last)
	}

	final, err := c.Get(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ReadResultJSON(bytes.NewReader(final.Result))
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != core.StopCancelled || !res.Found {
		t.Fatalf("result stop=%v found=%v, want cancelled best-so-far", res.StopReason, res.Found)
	}
}

// TestConcurrentJobsSharedCacheObserversStayAttached is the daemon-level
// acceptance for the observer-clobbering fix: two jobs on the same
// checkpoint digest share one memo cache; job A starts and finishes strictly
// inside job B's lifetime (B is channel-held mid-search); B's observer stage
// must see EVERY fresh insert of the whole window — including those after A
// finished and detached its own fan-out.
func TestConcurrentJobsSharedCacheObserversStayAttached(t *testing.T) {
	fleet := newSyntheticFleet()
	bMid := make(chan struct{})
	aDone := make(chan struct{})
	var gate sync.Once
	fleet.hooks["B"] = func(call int) {
		if call == 30 {
			gate.Do(func() {
				close(bMid)
				<-aDone
			})
		}
	}
	s, c := testServer(t, fleet, Config{JobConcurrency: 2})
	ctx := context.Background()

	specB := JobSpec{
		Label:          "B",
		CheckpointPath: "shared-ckpt", // same digest as A: one shared cache
		Budget: Budget{
			Iters: 400, Restarts: 1, EvalEvery: 1, Patience: -1, Seed: 7,
		},
	}
	viewB, err := c.Submit(ctx, specB)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-bMid:
	case <-time.After(30 * time.Second):
		t.Fatal("job B never reached its gate")
	}

	viewA, err := c.Submit(ctx, JobSpec{
		Label:          "A",
		CheckpointPath: "shared-ckpt",
		Budget: Budget{
			Iters: 60, Restarts: 2, EvalEvery: 1, Patience: -1, Seed: 1301,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	lastA, err := c.Stream(ctx, viewA.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastA.Type != "done" {
		t.Fatalf("job A ended %q", lastA.Type)
	}
	close(aDone)
	if last, err := c.Stream(ctx, viewB.ID, nil); err != nil || last.Type != "done" {
		t.Fatalf("job B ended %q err=%v", last.Type, err)
	}

	cache := s.sharedCache(&specB)
	s.mu.Lock()
	nCaches := len(s.caches)
	s.mu.Unlock()
	if nCaches != 1 {
		t.Fatalf("expected one shared cache for one digest, got %d", nCaches)
	}
	st := cache.Stats()
	inserts := int(st.Entries + st.Evictions)
	if inserts == 0 {
		t.Fatal("test exercised no cache inserts")
	}
	if got := fleet.stage("A").count(); got == 0 {
		t.Fatal("job A's observer saw no true evaluations")
	}
	// B attached before any insert (it ran first, A was only submitted once
	// B was mid-search) and stayed attached past A's completion, so it must
	// have observed every fresh insert exactly once.
	if got := fleet.stage("B").count(); got != inserts {
		t.Fatalf("job B's observer saw %d of %d fresh inserts — a finishing job detached a concurrent job's fan-out", got, inserts)
	}
}

var servePromLine = regexp.MustCompile(
	`^(# (TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)|.*)|[a-zA-Z_:][a-zA-Z0-9_:]*(\{quantile="[0-9.]+"\})? (NaN|[+-]Inf|[-+0-9.eE]+))$`)

func TestMetricsEndpointAndJobCompletionDump(t *testing.T) {
	fleet := newSyntheticFleet()
	var dump bytes.Buffer
	s, c := testServer(t, fleet, Config{MetricsDump: &dump})
	ctx := context.Background()

	if _, err := c.Gate(ctx, JobSpec{
		Label:  "metrics",
		Budget: Budget{Iters: 40, Restarts: 2, EvalEvery: 1, Seed: 3},
	}, nil); err != nil {
		t.Fatal(err)
	}

	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if !servePromLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE serve_jobs_completed counter\nserve_jobs_completed 1\n",
		"# TYPE serve_pool_tasks counter\n",
		"# TYPE serve_job_elapsed_ms summary\n",
		"search_improvements ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Raw endpoint checks the CI smoke test also relies on.
	resp, err := c.client().Get(c.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}

	// The serve-mode -metrics flush: a snapshot landed when the job
	// completed, not at process exit. Shutdown first so the runner's write
	// happens-before our read.
	shCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), "# metrics after job j1") ||
		!strings.Contains(dump.String(), "serve.jobs.completed") {
		t.Fatalf("job-completion metrics dump missing or empty:\n%s", dump.String())
	}
}

func TestSubmitValidation(t *testing.T) {
	// Default builder: a checkpoint is mandatory.
	s := New(Config{Workers: 1, JobConcurrency: 1})
	defer s.Shutdown(context.Background())
	if _, err := s.Submit(JobSpec{Label: "no-checkpoint"}); err == nil {
		t.Fatal("submit without checkpoint must fail under the default builder")
	}

	fleet := newSyntheticFleet()
	_, c := testServer(t, fleet, Config{Workers: 1, JobConcurrency: 1})
	if _, err := c.Submit(context.Background(), JobSpec{
		Budget: Budget{Engine: "warp-drive"},
	}); err == nil {
		t.Fatal("unknown engine must be rejected")
	}
	resp, err := c.client().Post(c.url("/jobs"), "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}
