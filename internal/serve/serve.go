package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// JobSpec describes one analysis job: which trained model to attack, under
// which scenario, with what search budget. It is the POST /jobs request body.
type JobSpec struct {
	// Label is a free-form tag echoed in events and listings.
	Label string `json:"label,omitempty"`
	// Checkpoint is an inline experiments.SaveSetup checkpoint (base64 in
	// JSON). CheckpointPath names one on the daemon's filesystem instead.
	// Exactly one of the two is required under the default target builder.
	Checkpoint     []byte   `json:"checkpoint,omitempty"`
	CheckpointPath string   `json:"checkpoint_path,omitempty"`
	Scenario       Scenario `json:"scenario"`
	Budget         Budget   `json:"budget"`
	// Threshold, when positive, is the CI gate: the done event carries
	// pass = (best ratio <= threshold).
	Threshold float64 `json:"threshold,omitempty"`
}

// Scenario selects how the model under analysis is exposed to the search.
// The zero value is the white-box chain-rule pipeline, matching `e2eperf
// attack` without -opaque.
type Scenario struct {
	// Opaque fuses routing+MLU into a gray-box stage with FD gradients.
	Opaque bool `json:"opaque,omitempty"`
	// Dense (with Opaque) forces dense full-vector probing instead of the
	// incremental sparse evaluators.
	Dense bool `json:"dense,omitempty"`
	// FDStep overrides the finite-difference probe step (default 1e-4).
	FDStep float64 `json:"fd_step,omitempty"`
	// SparseRefresh overrides the incremental evaluators' full-recompute
	// interval (0 = library default).
	SparseRefresh int `json:"sparse_refresh,omitempty"`
}

// Budget bounds the gradient search. Zero fields inherit
// core.DefaultGradientConfig; Seed 0 inherits the default seed.
type Budget struct {
	Iters     int     `json:"iters,omitempty"`
	Restarts  int     `json:"restarts,omitempty"`
	T         int     `json:"t,omitempty"`
	AlphaD    float64 `json:"alpha_d,omitempty"`
	AlphaF    float64 `json:"alpha_f,omitempty"`
	AlphaL    float64 `json:"alpha_l,omitempty"`
	EvalEvery int     `json:"eval_every,omitempty"`
	// Patience: 0 inherits the default; negative disables early stopping.
	Patience int    `json:"patience,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	// Engine: "" or "scalar" shards restarts over the daemon's
	// work-stealing pool (the normal mode — restarts from all jobs
	// interleave over one set of cores); "batched" runs the lock-step
	// batched engine inside the job instead, with parallelism equal to the
	// pool size. Per-restart trajectories are bitwise identical either way.
	Engine string `json:"engine,omitempty"`
	// EvalCache: 0 shares a memo cache with every other job on the same
	// checkpoint digest + scenario (the daemon's cross-job speedup); -1
	// disables caching (what bitwise gate comparisons want); >0 gives this
	// job a private cache of that many entries.
	EvalCache int `json:"eval_cache,omitempty"`
	// TimeoutMS bounds the search wall-clock; on expiry the job completes
	// with its best-so-far result and StopReason "deadline".
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// JobState is the lifecycle of a job. Queued and running are transient;
// done, failed and cancelled are terminal. A job cancelled mid-search still
// ends "done" — with its best-so-far result and StopReason "cancelled" —
// because the search produced a usable answer; "cancelled" is reserved for
// jobs cancelled before they started.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Event is one line of a job's NDJSON stream. Types: "queued", "running",
// "improved" (a new global best, streamed as it happens), "done", "failed",
// "cancelled".
type Event struct {
	Type  string `json:"type"`
	Job   string `json:"job"`
	Label string `json:"label,omitempty"`
	// Desc describes the built target ("geant/DOTE-Curr dim=462"), on
	// "running" events.
	Desc string `json:"desc,omitempty"`
	// Ratio/SysMLU/OptMLU/Iter accompany "improved" events.
	Ratio  float64 `json:"ratio,omitempty"`
	SysMLU float64 `json:"sys_mlu,omitempty"`
	OptMLU float64 `json:"opt_mlu,omitempty"`
	Iter   int     `json:"iter,omitempty"`
	// ElapsedMS is time since search start (improved) or total (done).
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// Terminal summary fields ("done").
	Found      bool    `json:"found,omitempty"`
	BestRatio  float64 `json:"best_ratio,omitempty"`
	StopReason string  `json:"stop_reason,omitempty"`
	Threshold  float64 `json:"threshold,omitempty"`
	Pass       *bool   `json:"pass,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// JobView is the JSON summary of a job (GET /jobs, GET /jobs/{id}). BestRatio
// tracks the live best-so-far while the job runs, so pollers see incremental
// progress without holding a stream open.
type JobView struct {
	ID         string          `json:"id"`
	Label      string          `json:"label,omitempty"`
	State      JobState        `json:"state"`
	CreatedAt  time.Time       `json:"created_at"`
	StartedAt  *time.Time      `json:"started_at,omitempty"`
	FinishedAt *time.Time      `json:"finished_at,omitempty"`
	Found      bool            `json:"found,omitempty"`
	BestRatio  float64         `json:"best_ratio,omitempty"`
	StopReason string          `json:"stop_reason,omitempty"`
	Threshold  float64         `json:"threshold,omitempty"`
	Pass       *bool           `json:"pass,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// TargetBuilder materializes a job's model under analysis. The default
// builder loads the experiments checkpoint and applies the scenario; tests
// substitute cheap synthetic targets to keep the daemon's machinery under
// test without training a model.
type TargetBuilder func(spec *JobSpec) (*core.AttackTarget, string, error)

// Config configures a Server. The zero value works: GOMAXPROCS pool workers,
// two concurrent jobs, a fresh registry, checkpoint-backed target building.
type Config struct {
	// Workers sizes the work-stealing pool (<= 0: GOMAXPROCS).
	Workers int
	// JobConcurrency is how many jobs run at once (<= 0: 2). Restart-level
	// parallelism within each job comes from the shared pool.
	JobConcurrency int
	// Registry receives all daemon + search telemetry and backs /metrics.
	// Nil creates a private one.
	Registry *obs.Registry
	// CacheEntries sizes the shared per-checkpoint-digest eval caches
	// (0: 1<<16; negative: disable shared caches entirely).
	CacheEntries int
	// CacheQuantum is the demand quantization step for cache keys (0: default).
	CacheQuantum float64
	// BuildTarget overrides checkpoint loading (test seam).
	BuildTarget TargetBuilder
	// MetricsDump, when set, receives a registry snapshot after every job
	// completes — the serve-mode answer to the CLI's exit-time -metrics
	// dump, flushed while the daemon is still alive. MetricsFormat selects
	// "text" (default), "json" or "prom".
	MetricsDump   io.Writer
	MetricsFormat string
	// Logf, when set, receives daemon log lines.
	Logf func(format string, args ...any)
}

// Server is the analyzer daemon: a FIFO job queue drained by a fixed set of
// job runners, all sharding their searches' restarts over one work-stealing
// pool, with job lifecycle exposed over HTTP.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	pool    *Pool
	baseCtx context.Context
	stopAll context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Job
	jobs   map[string]*Job
	order  []*Job
	nextID int
	closed bool
	caches map[string]*core.EvalCache

	wg             sync.WaitGroup
	dumpMu         sync.Mutex
	defaultBuilder bool
	runningN       atomic.Int64

	submitted, completed, failed, cancelled *obs.Counter
	queuedG, runningG                       *obs.Gauge
	jobElapsed                              *obs.Histogram
}

// Job is one queued or executed analysis. All fields behind mu; events are
// append-only so streams replay from the beginning.
type Job struct {
	ID   string
	Spec JobSpec

	s      *Server
	mu     sync.Mutex
	cond   *sync.Cond
	state  JobState
	events []Event
	result *core.SearchResult
	errMsg string
	cancel context.CancelFunc // set while running

	created, started, finished time.Time
	bestRatio                  float64
	bestFound                  bool
}

// New creates a Server and starts its job runners and worker pool. Call
// Shutdown to stop it.
func New(cfg Config) *Server {
	if cfg.JobConcurrency <= 0 {
		cfg.JobConcurrency = 2
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 1 << 16
	}
	defaultBuilder := cfg.BuildTarget == nil
	if defaultBuilder {
		cfg.BuildTarget = BuildFromCheckpoint
	}
	if cfg.MetricsFormat == "" {
		cfg.MetricsFormat = "text"
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		pool:       NewPool(cfg.Workers, reg),
		baseCtx:    ctx,
		stopAll:    stop,
		jobs:       make(map[string]*Job),
		caches:     make(map[string]*core.EvalCache),
		submitted:  reg.Counter("serve.jobs.submitted"),
		completed:  reg.Counter("serve.jobs.completed"),
		failed:     reg.Counter("serve.jobs.failed"),
		cancelled:  reg.Counter("serve.jobs.cancelled"),
		queuedG:    reg.Gauge("serve.jobs.queued"),
		runningG:   reg.Gauge("serve.jobs.running"),
		jobElapsed: reg.Histogram("serve.job.elapsed.ms"),
	}
	s.defaultBuilder = defaultBuilder
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.JobConcurrency)
	for i := 0; i < cfg.JobConcurrency; i++ {
		go s.runner()
	}
	return s
}

// Registry returns the daemon's telemetry registry (what /metrics renders).
func (s *Server) Registry() *obs.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit validates and enqueues a job.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if len(spec.Checkpoint) == 0 && spec.CheckpointPath == "" && s.defaultBuilder {
		return nil, errors.New("serve: job needs checkpoint or checkpoint_path")
	}
	if err := validBudget(spec.Budget); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("serve: server is shut down")
	}
	s.nextID++
	j := &Job{
		ID:      fmt.Sprintf("j%d", s.nextID),
		Spec:    spec,
		s:       s,
		state:   JobQueued,
		created: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	s.mu.Unlock()

	// The queued event lands before the job is discoverable, so it is
	// always the first line of every stream.
	j.emit(Event{Type: "queued", Job: j.ID, Label: spec.Label})

	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.queue = append(s.queue, j)
	s.queuedG.Set(float64(len(s.queue)))
	s.mu.Unlock()
	s.submitted.Inc()
	s.cond.Signal()
	s.logf("job %s queued (%s)", j.ID, spec.Label)
	return j, nil
}

func validBudget(b Budget) error {
	switch b.Engine {
	case "", "scalar", "auto", "batched":
	default:
		return fmt.Errorf("serve: unknown engine %q (want scalar or batched)", b.Engine)
	}
	if b.Iters < 0 || b.Restarts < 0 || b.T < 0 || b.EvalEvery < 0 {
		return errors.New("serve: negative budget fields")
	}
	return nil
}

// Job returns a job by ID, nil when unknown.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs returns all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// Shutdown stops the server: no new submissions, still-queued jobs are
// cancelled, running searches are cancelled (they complete with best-so-far
// results and StopReason "cancelled"), and the worker pool drains. Blocks
// until runners exit or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		s.cond.Broadcast()
		s.stopAll()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.pool.Close()
	return nil
}

// runner is one job-execution loop; JobConcurrency of them drain the queue.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// nextJob blocks for the next queued job; nil means the server is shutting
// down (any jobs still queued at that point are cancelled, not run).
func (s *Server) nextJob() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			for _, j := range s.queue {
				j.cancelQueued()
			}
			s.queue = nil
			s.queuedG.Set(0)
			return nil
		}
		for len(s.queue) > 0 {
			j := s.queue[0]
			s.queue = s.queue[1:]
			s.queuedG.Set(float64(len(s.queue)))
			if j.State() == JobQueued {
				return j
			}
		}
		s.cond.Wait()
	}
}

// searchConfig translates a budget into a GradientConfig wired into the
// daemon: shared registry, work-stealing pool, memo cache policy.
func (s *Server) searchConfig(j *Job) core.GradientConfig {
	b := j.Spec.Budget
	cfg := core.DefaultGradientConfig()
	if b.Iters > 0 {
		cfg.Iters = b.Iters
	}
	if b.Restarts > 0 {
		cfg.Restarts = b.Restarts
	}
	if b.T > 0 {
		cfg.T = b.T
	}
	if b.AlphaD > 0 {
		cfg.AlphaD = b.AlphaD
	}
	if b.AlphaF > 0 {
		cfg.AlphaF = b.AlphaF
	}
	if b.AlphaL > 0 {
		cfg.AlphaL = b.AlphaL
	}
	if b.EvalEvery > 0 {
		cfg.EvalEvery = b.EvalEvery
	}
	if b.Patience > 0 {
		cfg.Patience = b.Patience
	} else if b.Patience < 0 {
		cfg.Patience = 0
	}
	if b.Seed != 0 {
		cfg.Seed = b.Seed
	}
	cfg.Obs = s.reg
	if b.Engine == "batched" {
		cfg.Engine = core.EngineBatched
		cfg.Workers = s.pool.Workers()
	} else {
		cfg.Engine = core.EngineScalar
		cfg.Executor = s.pool
	}
	switch {
	case b.EvalCache > 0:
		cfg.EvalCache = core.NewEvalCache(b.EvalCache, s.cfg.CacheQuantum)
	case b.EvalCache == 0:
		cfg.EvalCache = s.sharedCache(&j.Spec)
	}
	return cfg
}

// sharedCache returns the memo cache for the job's checkpoint digest +
// scenario, creating it on first use. Caches are keyed on both because a
// cache entry is "true ratio at quantized input x" — valid only for one
// model, and only for one forward numerical path (sparse incremental
// evaluation is not bitwise identical to dense recomputation). Nil when the
// server config disables shared caches.
func (s *Server) sharedCache(spec *JobSpec) *core.EvalCache {
	if s.cfg.CacheEntries < 0 {
		return nil
	}
	d := specDigest(spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.caches[d]
	if !ok {
		c = core.NewEvalCache(s.cfg.CacheEntries, s.cfg.CacheQuantum)
		s.caches[d] = c
	}
	return c
}

// specDigest hashes the model identity (checkpoint bytes or path) and the
// scenario into the shared-cache key.
func specDigest(spec *JobSpec) string {
	h := sha256.New()
	if len(spec.Checkpoint) > 0 {
		h.Write(spec.Checkpoint)
	} else {
		fmt.Fprintf(h, "path:%s", spec.CheckpointPath)
	}
	fmt.Fprintf(h, "|opaque=%t dense=%t fd=%g refresh=%d",
		spec.Scenario.Opaque, spec.Scenario.Dense, spec.Scenario.FDStep, spec.Scenario.SparseRefresh)
	return hex.EncodeToString(h.Sum(nil))
}

// runJob executes one job end to end: build target, run the search on the
// shared pool, stream improvements, record the terminal event, flush
// metrics.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	if ms := j.Spec.Budget.TimeoutMS; ms > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(ms)*time.Millisecond)
	}
	defer cancel()

	j.mu.Lock()
	if j.state != JobQueued { // cancelled between dequeue and start
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	s.runningG.Set(float64(s.runningN.Add(1)))
	defer func() { s.runningG.Set(float64(s.runningN.Add(-1))) }()

	target, desc, err := s.cfg.BuildTarget(&j.Spec)
	if err != nil {
		s.failJob(j, fmt.Errorf("building target: %w", err))
		return
	}
	j.emit(Event{Type: "running", Job: j.ID, Label: j.Spec.Label, Desc: desc})
	s.logf("job %s running: %s", j.ID, desc)

	cfg := s.searchConfig(j)
	cfg.OnImprove = func(ratio, sys, opt float64, iter int, elapsed time.Duration) {
		j.mu.Lock()
		j.bestRatio, j.bestFound = ratio, true
		j.mu.Unlock()
		j.emit(Event{
			Type: "improved", Job: j.ID, Label: j.Spec.Label,
			Ratio: ratio, SysMLU: sys, OptMLU: opt,
			Iter: iter, ElapsedMS: elapsed.Milliseconds(),
		})
	}
	res, err := core.GradientSearchContext(ctx, target, cfg)
	if err != nil {
		s.failJob(j, err)
		return
	}

	j.mu.Lock()
	j.state = JobDone
	j.finished = time.Now()
	j.result = res
	j.bestRatio, j.bestFound = res.BestRatio, res.Found
	elapsed := j.finished.Sub(j.started)
	j.mu.Unlock()
	ev := Event{
		Type: "done", Job: j.ID, Label: j.Spec.Label,
		Found: res.Found, BestRatio: res.BestRatio,
		ElapsedMS: elapsed.Milliseconds(),
	}
	if res.StopReason != core.StopNone {
		ev.StopReason = res.StopReason.String()
	}
	if t := j.Spec.Threshold; t > 0 {
		pass := res.BestRatio <= t
		ev.Threshold, ev.Pass = t, &pass
	}
	j.emit(ev)
	s.completed.Inc()
	s.jobElapsed.Observe(float64(elapsed.Milliseconds()))
	s.logf("job %s done: ratio %.3f (%s)", j.ID, res.BestRatio, res.StopReason)
	s.dumpMetrics(j.ID)
}

func (s *Server) failJob(j *Job, err error) {
	j.mu.Lock()
	j.state = JobFailed
	j.finished = time.Now()
	j.errMsg = err.Error()
	j.mu.Unlock()
	j.emit(Event{Type: "failed", Job: j.ID, Label: j.Spec.Label, Error: err.Error()})
	s.failed.Inc()
	s.logf("job %s failed: %v", j.ID, err)
	s.dumpMetrics(j.ID)
}

// dumpMetrics flushes a registry snapshot to the configured sink after a job
// completes — serve-mode's replacement for the CLI's at-exit dump, which a
// long-lived daemon would never reach.
func (s *Server) dumpMetrics(jobID string) {
	if s.cfg.MetricsDump == nil {
		return
	}
	s.dumpMu.Lock()
	defer s.dumpMu.Unlock()
	fmt.Fprintf(s.cfg.MetricsDump, "# metrics after job %s\n", jobID)
	if err := s.reg.Snapshot().Write(s.cfg.MetricsDump, s.cfg.MetricsFormat); err != nil {
		s.logf("metrics dump failed: %v", err)
	}
}

// --- Job accessors ---

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the search result (nil until the job is done).
func (j *Job) Result() *core.SearchResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Cancel requests cancellation: a queued job is dropped ("cancelled"
// terminal state); a running job's search context is cancelled, so it
// completes normally with its best-so-far result and StopReason
// "cancelled". Returns false when the job is already terminal.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		j.mu.Unlock()
		j.cancelQueued()
		return true
	case JobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// cancelQueued moves a still-queued job to its terminal cancelled state.
func (j *Job) cancelQueued() {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return
	}
	j.state = JobCancelled
	j.finished = time.Now()
	j.mu.Unlock()
	j.emit(Event{Type: "cancelled", Job: j.ID, Label: j.Spec.Label})
	j.s.cancelled.Inc()
}

// emit appends an event and wakes streamers.
func (j *Job) emit(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.mu.Unlock()
	j.cond.Broadcast()
}

// await blocks until the job has events past index i, is terminal, or ctx
// is done; it returns the new events and whether the job is terminal.
func (j *Job) await(ctx context.Context, i int) ([]Event, bool) {
	stop := context.AfterFunc(ctx, func() { j.cond.Broadcast() })
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.events) <= i && !j.state.terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	return append([]Event(nil), j.events[i:]...), j.state.terminal()
}

// View summarizes the job; withResult attaches the full search-result JSON
// (adversarial input included) once the job is done.
func (j *Job) View(withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		Label:     j.Spec.Label,
		State:     j.state,
		CreatedAt: j.created,
		Found:     j.bestFound,
		BestRatio: j.bestRatio,
		Threshold: j.Spec.Threshold,
		Error:     j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	if j.result != nil {
		if j.result.StopReason != core.StopNone {
			v.StopReason = j.result.StopReason.String()
		}
		if j.Spec.Threshold > 0 {
			pass := j.result.BestRatio <= j.Spec.Threshold
			v.Pass = &pass
		}
		if withResult {
			var buf bytes.Buffer
			if err := j.result.WriteJSON(&buf); err == nil {
				v.Result = buf.Bytes()
			}
		}
	}
	return v
}

// --- default target builder ---

// BuildFromCheckpoint is the default TargetBuilder: load the experiments
// checkpoint (inline bytes or path), apply the scenario, return the target.
func BuildFromCheckpoint(spec *JobSpec) (*core.AttackTarget, string, error) {
	var src io.Reader
	switch {
	case len(spec.Checkpoint) > 0:
		src = bytes.NewReader(spec.Checkpoint)
	case spec.CheckpointPath != "":
		f, err := os.Open(spec.CheckpointPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		src = f
	default:
		return nil, "", errors.New("serve: job needs checkpoint or checkpoint_path")
	}
	st, err := experiments.LoadSetup(src)
	if err != nil {
		return nil, "", err
	}
	sc := spec.Scenario
	if sc.Opaque {
		if sc.SparseRefresh > 0 {
			st.Model.SparseRefresh = sc.SparseRefresh
		}
		fd := sc.FDStep
		if fd <= 0 {
			fd = 1e-4
		}
		if sc.Dense {
			st.Target.Pipeline = st.Model.OpaqueRoutingPipelineDense().Grayboxed(fd)
		} else {
			st.Target.Pipeline = st.Model.OpaqueRoutingPipeline().Grayboxed(fd)
		}
	}
	topo := st.Opts.Topology
	if topo == "" {
		topo = "abilene"
	}
	mode := "white-box"
	if sc.Opaque {
		mode = "gray-box"
	}
	desc := fmt.Sprintf("%s/%s %s dim=%d", topo, st.Model.Cfg.Variant, mode, st.Target.InputDim)
	return st.Target, desc, nil
}

// --- HTTP API ---

// Handler returns the daemon's HTTP API:
//
//	POST /jobs              submit a JobSpec, returns the JobView (202)
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         job summary; full result JSON once done
//	GET  /jobs/{id}/stream  NDJSON event stream (replays from the start,
//	                        follows until the job is terminal)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /metrics           obs registry, Prometheus text format
//	GET  /healthz           liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, http.StatusAccepted, j.View(false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View(false))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, j.View(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"cancelled": j.Cancel()})
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; ; {
		evs, terminal := j.await(r.Context(), i)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		i += len(evs)
		if len(evs) > 0 && fl != nil {
			fl.Flush()
		}
		if terminal && len(evs) == 0 {
			return
		}
		if r.Context().Err() != nil {
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.Snapshot().WritePrometheus(w); err != nil {
		s.logf("/metrics write failed: %v", err)
	}
}
