package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a minimal HTTP client for the daemon API — what `e2eperf gate`
// and the CI smoke test use. Base is the daemon's root URL
// ("http://127.0.0.1:8473").
type Client struct {
	Base string
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decodeOrError decodes a JSON response into v, turning non-2xx statuses
// into errors carrying the response body.
func decodeOrError(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if v == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Submit posts a job and returns its initial view.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobView, error) {
	var view JobView
	body, err := json.Marshal(spec)
	if err != nil {
		return view, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/jobs"), bytes.NewReader(body))
	if err != nil {
		return view, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return view, err
	}
	return view, decodeOrError(resp, &view)
}

// Get fetches a job view (with the full result JSON once done).
func (c *Client) Get(ctx context.Context, id string) (JobView, error) {
	var view JobView
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/jobs/"+id), nil)
	if err != nil {
		return view, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return view, err
	}
	return view, decodeOrError(resp, &view)
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/jobs/"+id+"/cancel"), nil)
	if err != nil {
		return err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	return decodeOrError(resp, nil)
}

// Stream follows a job's NDJSON event stream from the beginning, invoking
// fn per event until the stream ends (job terminal), fn returns an error,
// or ctx is done. It returns the last event seen.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) (Event, error) {
	var last Event
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/jobs/"+id+"/stream"), nil)
	if err != nil {
		return last, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return last, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return last, fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return last, fmt.Errorf("serve: bad stream line: %w", err)
		}
		last = ev
		if fn != nil {
			if err := fn(ev); err != nil {
				return last, err
			}
		}
	}
	return last, sc.Err()
}

// GateOutcome is the verdict of one gate run.
type GateOutcome struct {
	// Job is the terminal job view (full result attached when done).
	Job JobView
	// Ratio is the adversarial ratio bound the search certified.
	Ratio float64
	// Pass is whether the ratio stayed at or under the threshold.
	Pass bool
	// StopReason is the search's stop reason ("converged", "deadline", ...).
	StopReason string
}

// Gate is the CI killer app in one call: submit the job, follow its stream
// until terminal (fn, when non-nil, observes every event — progress
// output), and return the verdict. A job that fails or is cancelled before
// producing a result is an error, not a verdict.
func (c *Client) Gate(ctx context.Context, spec JobSpec, fn func(Event) error) (*GateOutcome, error) {
	view, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	last, err := c.Stream(ctx, view.ID, fn)
	if err != nil {
		return nil, err
	}
	switch last.Type {
	case "done":
	case "failed":
		return nil, fmt.Errorf("serve: job %s failed: %s", view.ID, last.Error)
	case "cancelled":
		return nil, fmt.Errorf("serve: job %s cancelled before running", view.ID)
	default:
		return nil, fmt.Errorf("serve: stream for job %s ended early (last event %q)", view.ID, last.Type)
	}
	final, err := c.Get(ctx, view.ID)
	if err != nil {
		return nil, err
	}
	out := &GateOutcome{
		Job:        final,
		Ratio:      last.BestRatio,
		StopReason: last.StopReason,
		Pass:       true,
	}
	if last.Pass != nil {
		out.Pass = *last.Pass
	}
	return out, nil
}

// Metrics scrapes /metrics and returns the raw exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("serve: /metrics: %s", resp.Status)
	}
	return string(body), nil
}
