package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestPoolRunsEveryTaskExactlyOnce(t *testing.T) {
	p := NewPool(4, nil)
	var ran atomic.Int64
	var wg sync.WaitGroup
	const n = 200
	for i := 0; i < n; i++ {
		wg.Add(1)
		p.Run(func() {
			ran.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	p.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d tasks", got, n)
	}
}

// TestPoolStealsFromBlockedWorker pins the work-stealing behavior: a task
// queued behind a long-running one on a busy worker is executed by an idle
// worker instead of waiting. The schedule is channel-forced: task A blocks
// its worker until task C (queued behind A's position in round-robin order)
// has run — which can only happen if another worker took it.
func TestPoolStealsFromBlockedWorker(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(2, reg)
	defer p.Close()

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	p.Run(func() { // lands on worker 0's queue
		defer wg.Done()
		<-release
	})
	p.Run(func() { // worker 1's queue
		defer wg.Done()
	})
	p.Run(func() { // worker 0's queue, behind the blocked task
		defer wg.Done()
		close(release) // unblocks A — proves this ran while A was blocked
	})
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["serve.pool.tasks"]; got != 3 {
		t.Fatalf("serve.pool.tasks = %d, want 3", got)
	}
	if got := snap.Counters["serve.pool.steals"]; got < 1 {
		t.Fatalf("serve.pool.steals = %d, want >= 1 (idle worker never stole)", got)
	}
}

// TestPoolRunAfterClose: tasks submitted to a closed pool still execute
// (on their own goroutine) so an in-flight search can never deadlock on a
// drained pool.
func TestPoolRunAfterClose(t *testing.T) {
	p := NewPool(2, nil)
	p.Close()
	done := make(chan struct{})
	p.Run(func() { close(done) })
	<-done
}
