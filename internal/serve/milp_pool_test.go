package serve

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/obs"
)

// poolPackingMILP builds a small alloc-style packing MILP (integral
// placement of typed requests over capacitated hosts, minimizing the peak
// utilization u) — the exact problem shape the analyzer's RatioOverride
// solves on its hot path.
func poolPackingMILP(counts []int) *milp.Problem {
	dem := [][]float64{{1, 2}, {2, 1}, {4, 4}, {1, 1}}
	caps := [][]float64{{16, 16}, {32, 24}, {24, 32}}
	T, H, R := len(counts), len(caps), 2
	p := milp.NewProblem()
	u := p.AddVariable("u", 0, math.Inf(1))
	y := make([]lp.VarID, T*H)
	for t := 0; t < T; t++ {
		for h := 0; h < H; h++ {
			y[t*H+h] = p.AddInteger(fmt.Sprintf("y_%d_%d", t, h), 0, float64(counts[t]))
		}
	}
	for t := 0; t < T; t++ {
		e := lp.NewExpr()
		for h := 0; h < H; h++ {
			e.Add(1, y[t*H+h])
		}
		p.AddConstraint("", e, lp.EQ, float64(counts[t]))
	}
	for h := 0; h < H; h++ {
		for r := 0; r < R; r++ {
			e := lp.NewExpr()
			for t := 0; t < T; t++ {
				e.Add(dem[t][r], y[t*H+h])
			}
			e.Add(-caps[h][r], u)
			p.AddConstraint("", e, lp.LE, 0)
		}
	}
	p.SetObjective(lp.Minimize, lp.NewExpr().Add(1, u))
	return p
}

// TestPoolBackedMILPDeterminism is the daemon-side half of the MILP
// determinism contract (the in-package half lives in internal/milp): many
// concurrent parallel MILP solves sharing ONE work-stealing serve.Pool as
// their Executor — so wave tasks from different solves interleave over the
// same workers and steal from each other — must all produce the bitwise
// sequential-reference result. Runs under `go test -race ./internal/serve`.
func TestPoolBackedMILPDeterminism(t *testing.T) {
	counts := []int{7, 5, 3, 8}
	ref := poolPackingMILP(counts).Solve(milp.Options{Workers: 1})
	if ref.Status != milp.Optimal {
		t.Fatalf("reference solve: %v", ref.Status)
	}

	pool := NewPool(6, nil)
	defer pool.Close()

	const searches = 10
	sols := make([]*milp.Solution, searches)
	var wg sync.WaitGroup
	for i := 0; i < searches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sols[i] = poolPackingMILP(counts).Solve(milp.Options{Workers: 4, Executor: pool})
		}(i)
	}
	wg.Wait()

	for i, s := range sols {
		if s.Status != ref.Status || s.Objective != ref.Objective ||
			s.BestBound != ref.BestBound || s.Nodes != ref.Nodes {
			t.Fatalf("solve %d over shared pool: %v/%x/%x/%d, want %v/%x/%x/%d",
				i, s.Status, s.Objective, s.BestBound, s.Nodes,
				ref.Status, ref.Objective, ref.BestBound, ref.Nodes)
		}
		for j := range s.X {
			if s.X[j] != ref.X[j] {
				t.Fatalf("solve %d: X[%d] = %x, want %x (not bitwise)", i, j, s.X[j], ref.X[j])
			}
		}
	}
}

// BenchmarkPoolThroughput is the fleet-throughput benchmark ROADMAP item 3
// left open: complete gradient searches per hour when a fleet of concurrent
// jobs shards all its restarts over one work-stealing pool — the number a
// capacity planner needs to size a gating daemon. Uses the same synthetic
// cheap target as the serve tests so the measured cost is search machinery
// plus pool scheduling, not model training.
func BenchmarkPoolThroughput(b *testing.B) {
	fleet := newSyntheticFleet()
	pool := NewPool(0, obs.NewRegistry())
	defer pool.Close()

	const inflight = 4
	sem := make(chan struct{}, inflight)
	start := time.Now()
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			target, _, err := fleet.build(&JobSpec{Label: fmt.Sprintf("bench-%d", i)})
			if err != nil {
				b.Error(err)
				return
			}
			cfg := core.DefaultGradientConfig()
			cfg.Iters = 30
			cfg.Restarts = 6
			cfg.Seed = uint64(i + 1)
			cfg.Executor = pool
			if _, err := core.GradientSearch(target, cfg); err != nil {
				b.Error(err)
			}
		}(i)
	}
	wg.Wait()
	b.StopTimer()
	if el := time.Since(start).Hours(); el > 0 {
		b.ReportMetric(float64(b.N)/el, "searches/hour")
	}
}
