// Package serve is the analyzer-as-a-service layer: a long-lived daemon that
// accepts a queue of analysis jobs (topology × model checkpoint × scenario ×
// budget) over a local HTTP API, shards every job's restarts across one
// work-stealing worker pool, streams incremental best-so-far results per job
// as NDJSON, and exposes the internal/obs registry at /metrics in Prometheus
// text format. The killer app is the CI gate for retrained models: POST a
// checkpoint, block until the adversarial ratio bound is computed, fail the
// build when it exceeds a threshold (cmd/e2eperf's serve and gate
// subcommands front this package).
//
// Everything rides machinery that already exists in internal/core: jobs are
// cancelled through contexts and report structured StopReasons with
// best-so-far results, component panics stay contained per restart, and
// telemetry flows through the shared obs registry that /metrics renders.
package serve

import (
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Pool is the daemon's work-stealing executor. It implements core.Executor:
// every gradient search submits one task per restart, so restarts from many
// concurrent jobs interleave over one fixed set of workers — the serve-side
// extension of the batched engine's restart partitioning, across jobs
// instead of within one.
//
// Each worker owns a FIFO queue; Run spreads incoming tasks round-robin, a
// worker prefers its own queue, and an idle worker steals the oldest task
// from the first non-empty victim. Tasks are whole restart trajectories
// (milliseconds to minutes of work), so queue operations are vanishingly
// rare next to task bodies and a single mutex over all queues is cheaper
// than per-queue locking plus a lost-wakeup dance; the stealing structure —
// per-worker queues, owner preference, victim scans — is what balances the
// fleet when jobs finish at different times.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]func()
	closed bool
	rr     int // round-robin submit cursor

	wg sync.WaitGroup

	// Telemetry handles (nil without a registry: every increment a no-op).
	tasks  *obs.Counter
	steals *obs.Counter
	queued *obs.Gauge
}

// NewPool starts a pool of n workers (n <= 0 means GOMAXPROCS). reg, when
// non-nil, receives pool telemetry: serve.pool.tasks, serve.pool.steals and
// the serve.pool.queued gauge.
func NewPool(n int, reg *obs.Registry) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		queues: make([][]func(), n),
		tasks:  reg.Counter("serve.pool.tasks"),
		steals: reg.Counter("serve.pool.steals"),
		queued: reg.Gauge("serve.pool.queued"),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.queues) }

// Run implements core.Executor: the task is queued for exactly-once
// execution on some worker. After Close the task runs on its own goroutine
// instead — a search mid-submit during shutdown must still terminate, never
// deadlock on a drained pool.
func (p *Pool) Run(task func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		go task()
		return
	}
	w := p.rr % len(p.queues)
	p.rr++
	p.queues[w] = append(p.queues[w], task)
	p.tasks.Inc()
	p.queued.Set(float64(p.queuedLocked()))
	p.mu.Unlock()
	p.cond.Signal()
}

// queuedLocked counts tasks waiting across all queues; p.mu must be held.
func (p *Pool) queuedLocked() int {
	n := 0
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// popLocked takes the next task for worker w: front of its own queue, else
// the oldest task of the first non-empty victim (a steal). p.mu must be
// held. Returns nil when every queue is empty.
func (p *Pool) popLocked(w int) func() {
	if q := p.queues[w]; len(q) > 0 {
		task := q[0]
		p.queues[w] = q[1:]
		return task
	}
	for i := 1; i < len(p.queues); i++ {
		v := (w + i) % len(p.queues)
		if q := p.queues[v]; len(q) > 0 {
			task := q[0]
			p.queues[v] = q[1:]
			p.steals.Inc()
			return task
		}
	}
	return nil
}

func (p *Pool) worker(w int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if task := p.popLocked(w); task != nil {
			p.queued.Set(float64(p.queuedLocked()))
			p.mu.Unlock()
			task()
			p.mu.Lock()
			continue
		}
		if p.closed {
			break
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Close stops the pool: workers drain every queued task, then exit. Close
// blocks until the drain completes. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
