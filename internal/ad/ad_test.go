package ad

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// numericGrad computes a central-difference gradient of f at x.
func numericGrad(f func(x []float64) float64, x []float64) []float64 {
	const h = 1e-6
	g := make([]float64, len(x))
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		fp := f(x)
		x[i] = orig - h
		fm := f(x)
		x[i] = orig
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

// checkGrad verifies the tape gradient of build against central differences.
// build must construct a scalar from a leaf created with t.Var(x).
func checkGrad(t *testing.T, name string, build func(tp *Tape, x Value) Value, x []float64, tol float64) {
	t.Helper()
	eval := func(xs []float64) float64 {
		tp := NewTape()
		v := tp.Var(xs)
		return build(tp, v).ScalarValue()
	}
	tp := NewTape()
	leaf := tp.Var(x)
	out := build(tp, leaf)
	Backward(out)
	got := leaf.Grad()
	want := numericGrad(eval, append([]float64{}, x...))
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Fatalf("%s: grad[%d] = %v, numeric %v", name, i, got[i], want[i])
		}
	}
}

func TestElementwiseGradients(t *testing.T) {
	x := []float64{0.5, -1.2, 2.0, -0.3, 0.9}
	cases := []struct {
		name  string
		build func(tp *Tape, v Value) Value
	}{
		{"add", func(tp *Tape, v Value) Value {
			return Sum(Add(v, tp.Const([]float64{1, 2, 3, 4, 5})))
		}},
		{"sub", func(tp *Tape, v Value) Value {
			return Sum(Sub(tp.Const([]float64{1, 2, 3, 4, 5}), v))
		}},
		{"mul", func(tp *Tape, v Value) Value {
			return Sum(Mul(v, v))
		}},
		{"div", func(tp *Tape, v Value) Value {
			return Sum(Div(tp.Const([]float64{1, 1, 1, 1, 1}), AddConst(Square(v), 1)))
		}},
		{"scale", func(tp *Tape, v Value) Value { return Sum(Scale(v, -2.5)) }},
		{"sigmoid", func(tp *Tape, v Value) Value { return Sum(Sigmoid(v)) }},
		{"tanh", func(tp *Tape, v Value) Value { return Sum(Tanh(v)) }},
		{"exp", func(tp *Tape, v Value) Value { return Sum(Exp(v)) }},
		{"square", func(tp *Tape, v Value) Value { return Sum(Square(v)) }},
		{"softplus", func(tp *Tape, v Value) Value { return Sum(Softplus(v)) }},
		{"elu", func(tp *Tape, v Value) Value { return Sum(ELU(v, 1.0)) }},
		{"leaky", func(tp *Tape, v Value) Value { return Sum(LeakyReLU(v, 0.01)) }},
		{"neg", func(tp *Tape, v Value) Value { return Sum(Neg(v)) }},
		{"mean", func(tp *Tape, v Value) Value { return Mean(Square(v)) }},
		{"logsumexp", func(tp *Tape, v Value) Value { return LogSumExp(v) }},
		{"dot", func(tp *Tape, v Value) Value {
			return Dot(v, tp.Const([]float64{2, -1, 0.5, 3, 1}))
		}},
		{"softmax", func(tp *Tape, v Value) Value {
			return Dot(Softmax(v), tp.Const([]float64{1, 0, 2, 0, -1}))
		}},
		{"chain", func(tp *Tape, v Value) Value {
			return Sum(Mul(Sigmoid(v), Tanh(Scale(v, 0.5))))
		}},
	}
	for _, c := range cases {
		checkGrad(t, c.name, c.build, x, 1e-5)
	}
}

func TestPositiveDomainGradients(t *testing.T) {
	x := []float64{0.5, 1.2, 2.0, 0.3}
	checkGrad(t, "log", func(tp *Tape, v Value) Value { return Sum(Log(v)) }, x, 1e-5)
	checkGrad(t, "sqrt", func(tp *Tape, v Value) Value { return Sum(Sqrt(v)) }, x, 1e-5)
}

func TestReLUGradient(t *testing.T) {
	// Avoid the kink at 0.
	x := []float64{0.5, -1.2, 2.0, -0.3}
	checkGrad(t, "relu", func(tp *Tape, v Value) Value { return Sum(ReLU(v)) }, x, 1e-5)
	checkGrad(t, "abs", func(tp *Tape, v Value) Value { return Sum(Abs(v)) }, x, 1e-5)
	checkGrad(t, "clamp", func(tp *Tape, v Value) Value { return Sum(Clamp(v, -1, 1)) }, x, 1e-5)
}

func TestMaxGradient(t *testing.T) {
	x := []float64{1, 5, 3, 2}
	tp := NewTape()
	v := tp.Var(x)
	out := Max(v)
	if out.ScalarValue() != 5 {
		t.Fatalf("Max = %v", out.ScalarValue())
	}
	Backward(out)
	g := v.Grad()
	want := []float64{0, 1, 0, 0}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("Max grad = %v, want %v", g, want)
		}
	}
	tp2 := NewTape()
	v2 := tp2.Var([]float64{4, 1, 9})
	m := Min(v2)
	if m.ScalarValue() != 1 {
		t.Fatalf("Min = %v", m.ScalarValue())
	}
}

func TestScalarBroadcast(t *testing.T) {
	x := []float64{1, 2, 3}
	checkGrad(t, "broadcast-mul", func(tp *Tape, v Value) Value {
		s := Sum(v) // scalar
		return Sum(Mul(v, s))
	}, x, 1e-5)
	checkGrad(t, "broadcast-add", func(tp *Tape, v Value) Value {
		return Sum(Add(v, Mean(v)))
	}, x, 1e-5)
	checkGrad(t, "broadcast-div", func(tp *Tape, v Value) Value {
		return Sum(Div(v, AddConst(Square(Mean(v)), 1)))
	}, x, 1e-5)
}

func TestMatVecGradient(t *testing.T) {
	r := rng.New(1)
	wdata := make([]float64, 12)
	for i := range wdata {
		wdata[i] = r.NormFloat64()
	}
	x := []float64{0.3, -0.7, 1.1}
	// Gradient with respect to x.
	checkGrad(t, "matvec-x", func(tp *Tape, v Value) Value {
		w := tp.ConstMat(wdata, 4, 3)
		return Sum(Square(MatVec(w, v)))
	}, x, 1e-4)
	// Gradient with respect to W.
	checkGrad(t, "matvec-w", func(tp *Tape, v Value) Value {
		w := Reshape(v, 4, 3)
		return Sum(Square(MatVec(w, tp.Const(x))))
	}, wdata, 1e-4)
}

func TestMatMulGradient(t *testing.T) {
	r := rng.New(2)
	a := make([]float64, 6)
	b := make([]float64, 8)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	for i := range b {
		b[i] = r.NormFloat64()
	}
	checkGrad(t, "matmul-a", func(tp *Tape, v Value) Value {
		am := Reshape(v, 3, 2)
		bm := tp.ConstMat(b, 2, 4)
		return Sum(Square(MatMul(am, bm)))
	}, a, 1e-4)
	checkGrad(t, "matmul-b", func(tp *Tape, v Value) Value {
		am := tp.ConstMat(a, 3, 2)
		bm := Reshape(v, 2, 4)
		return Sum(Square(MatMul(am, bm)))
	}, b, 1e-4)
}

func TestMatMulMatchesMatVec(t *testing.T) {
	r := rng.New(3)
	w := make([]float64, 20)
	x := make([]float64, 5)
	for i := range w {
		w[i] = r.NormFloat64()
	}
	for i := range x {
		x[i] = r.NormFloat64()
	}
	tp := NewTape()
	wm := tp.ConstMat(w, 4, 5)
	xv := tp.Const(x)
	y1 := MatVec(wm, xv)
	y2 := MatMul(wm, Reshape(xv, 5, 1))
	for i := 0; i < 4; i++ {
		if math.Abs(y1.Data()[i]-y2.Data()[i]) > 1e-12 {
			t.Fatal("MatVec and MatMul disagree")
		}
	}
}

func TestSegmentSoftmaxSimplex(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nseg := 1 + r.Intn(5)
		offsets := make([]int, nseg)
		lens := make([]int, nseg)
		total := 0
		for i := range lens {
			offsets[i] = total
			lens[i] = 1 + r.Intn(4)
			total += lens[i]
		}
		x := make([]float64, total)
		for i := range x {
			x[i] = r.Uniform(-5, 5)
		}
		tp := NewTape()
		y := SegmentSoftmax(tp.Var(x), offsets, lens)
		for s := range offsets {
			sum := 0.0
			for i := offsets[s]; i < offsets[s]+lens[s]; i++ {
				v := y.Data()[i]
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentSoftmaxGradient(t *testing.T) {
	x := []float64{0.1, -0.5, 1.2, 0.7, -1.1, 0.4, 2.2}
	offsets := []int{0, 3, 5}
	lens := []int{3, 2, 2}
	checkGrad(t, "segment-softmax", func(tp *Tape, v Value) Value {
		y := SegmentSoftmax(v, offsets, lens)
		return Dot(y, tp.Const([]float64{1, -2, 0.5, 3, 0, 1, -1}))
	}, x, 1e-5)
}

func TestSegmentSumGradient(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	checkGrad(t, "segment-sum", func(tp *Tape, v Value) Value {
		y := SegmentSum(v, []int{0, 2}, []int{2, 3})
		return Dot(y, tp.Const([]float64{2, -1}))
	}, x, 1e-6)
	tp := NewTape()
	y := SegmentSum(tp.Const(x), []int{0, 2}, []int{2, 3})
	if y.Data()[0] != 3 || y.Data()[1] != 12 {
		t.Fatalf("SegmentSum = %v", y.Data())
	}
}

func TestConcatSliceGradient(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	checkGrad(t, "concat-slice", func(tp *Tape, v Value) Value {
		a := Slice(v, 0, 2)
		b := Slice(v, 2, 4)
		c := Concat(Scale(a, 2), b, tp.Const([]float64{7}))
		return Sum(Square(c))
	}, x, 1e-5)
}

func TestRowAndAddRowVector(t *testing.T) {
	xdata := []float64{1, 2, 3, 4, 5, 6}
	checkGrad(t, "addrowvector", func(tp *Tape, v Value) Value {
		m := Reshape(v, 2, 3)
		bias := tp.Const([]float64{1, -1, 0.5})
		y := AddRowVector(m, bias)
		return Sum(Square(y))
	}, xdata, 1e-5)
	checkGrad(t, "row", func(tp *Tape, v Value) Value {
		m := Reshape(v, 2, 3)
		return Sum(Square(Row(m, 1)))
	}, xdata, 1e-5)
}

func TestCustomOpGradient(t *testing.T) {
	// Custom op: y_i = a_i * b_i (bilinear), gradient checked against Mul.
	x := []float64{0.5, -1, 2}
	b := []float64{3, 4, 5}
	checkGrad(t, "custom-bilinear", func(tp *Tape, v Value) Value {
		bc := tp.Const(b)
		y := Custom(tp, []Value{v, bc}, 3, 1,
			func(in [][]float64, out []float64) {
				for i := range out {
					out[i] = in[0][i] * in[1][i]
				}
			},
			func(in [][]float64, out, gout []float64, gin [][]float64) {
				for i := range gout {
					gin[0][i] += gout[i] * in[1][i]
				}
			})
		return Sum(Square(y))
	}, x, 1e-5)
}

func TestBackwardVJP(t *testing.T) {
	// y = 2x, VJP with cotangent w must give 2w.
	tp := NewTape()
	x := tp.Var([]float64{1, 2, 3})
	y := Scale(x, 2)
	BackwardVJP(y, []float64{1, 10, 100})
	g := x.Grad()
	want := []float64{2, 20, 200}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("VJP grad = %v, want %v", g, want)
		}
	}
}

func TestGradAccumulationAndZero(t *testing.T) {
	tp := NewTape()
	x := tp.Var([]float64{1})
	y := Scale(x, 3)
	Backward(y)
	Backward(y) // second pass accumulates
	if x.Grad()[0] != 6 {
		t.Fatalf("accumulated grad = %v, want 6", x.Grad()[0])
	}
	tp.ZeroGrads()
	if x.Grad()[0] != 0 {
		t.Fatal("ZeroGrads did not clear")
	}
}

func TestTapeReset(t *testing.T) {
	tp := NewTape()
	tp.Var([]float64{1, 2})
	if tp.NumNodes() != 1 {
		t.Fatal("node not recorded")
	}
	tp.Reset()
	if tp.NumNodes() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestShapePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	tp := NewTape()
	a := tp.Var([]float64{1, 2})
	b := tp.Var([]float64{1, 2, 3})
	mustPanic("add-shape", func() { Add(a, b) })
	mustPanic("backward-nonscalar", func() { Backward(a) })
	mustPanic("slice-range", func() { Slice(a, 0, 5) })
	mustPanic("reshape", func() { Reshape(a, 3, 3) })
	tp2 := NewTape()
	c := tp2.Var([]float64{1, 2})
	mustPanic("cross-tape", func() { Add(a, c) })
}

func TestDeepChainGradient(t *testing.T) {
	// Long chains must not lose gradient ordering.
	x := []float64{0.1}
	checkGrad(t, "deep-chain", func(tp *Tape, v Value) Value {
		y := v
		for i := 0; i < 30; i++ {
			y = Tanh(Scale(y, 1.1))
		}
		return Sum(y)
	}, x, 1e-4)
}

func TestSharedSubexpressionGradient(t *testing.T) {
	// z = x*y + x: gradient through a value used twice.
	x := []float64{2, 3}
	checkGrad(t, "shared", func(tp *Tape, v Value) Value {
		y := Square(v)
		return Sum(Add(Mul(v, y), v))
	}, x, 1e-5)
}
