package ad

import "math"

// Sum returns the scalar sum of all elements of x.
func Sum(x Value) Value {
	t := x.t
	out := t.result(1, 1, x.n.requires)
	s := 0.0
	for _, v := range x.n.data {
		s += v
	}
	out.n.data[0] = s
	if out.n.requires {
		xn, on := x.n, out.n
		on.backward = func() {
			xn.ensureGrad()
			g := on.grad[0]
			for i := range xn.grad {
				xn.grad[i] += g
			}
		}
	}
	return out
}

// Mean returns the scalar mean of all elements of x.
func Mean(x Value) Value {
	return Scale(Sum(x), 1/float64(x.Len()))
}

// Dot returns the scalar inner product of two equal-length vectors.
func Dot(a, b Value) Value {
	return Sum(Mul(a, b))
}

// Max returns the scalar maximum of x. The subgradient flows entirely to
// the first attaining element — the standard max subgradient, which is what
// makes the MLU objective piecewise sub-differentiable (§3.2).
func Max(x Value) Value {
	t := x.t
	out := t.result(1, 1, x.n.requires)
	best, arg := math.Inf(-1), 0
	for i, v := range x.n.data {
		if v > best {
			best, arg = v, i
		}
	}
	out.n.data[0] = best
	if out.n.requires {
		xn, on := x.n, out.n
		on.backward = func() {
			xn.ensureGrad()
			xn.grad[arg] += on.grad[0]
		}
	}
	return out
}

// Min returns the scalar minimum of x (subgradient to first attaining
// element).
func Min(x Value) Value {
	return Neg(Max(Neg(x)))
}

// LogSumExp returns log Σ e^{x_i} — a smooth upper bound on Max used by the
// smooth-objective ablation.
func LogSumExp(x Value) Value {
	t := x.t
	out := t.result(1, 1, x.n.requires)
	m := math.Inf(-1)
	for _, v := range x.n.data {
		if v > m {
			m = v
		}
	}
	s := 0.0
	for _, v := range x.n.data {
		s += math.Exp(v - m)
	}
	out.n.data[0] = m + math.Log(s)
	if out.n.requires {
		xn, on := x.n, out.n
		lse := out.n.data[0]
		on.backward = func() {
			xn.ensureGrad()
			g := on.grad[0]
			for i, v := range xn.data {
				xn.grad[i] += g * math.Exp(v-lse)
			}
		}
	}
	return out
}

// SegmentSoftmax applies a softmax independently within each contiguous
// segment of x. offsets[i] is the start of segment i and lens[i] its length;
// segments must tile x exactly. This is the DOTE post-processor (Figure 2):
// it turns raw DNN outputs into per-demand split ratios that sum to one.
func SegmentSoftmax(x Value, offsets, lens []int) Value {
	if x.Cols() != 1 {
		panic("ad: SegmentSoftmax requires a vector")
	}
	total := 0
	for _, l := range lens {
		total += l
	}
	if total != x.Len() || len(offsets) != len(lens) {
		panic("ad: SegmentSoftmax segments must tile the input")
	}
	t := x.t
	out := t.result(x.Rows(), 1, x.n.requires)
	for s := range offsets {
		o, l := offsets[s], lens[s]
		if l == 0 {
			continue
		}
		m := math.Inf(-1)
		for i := o; i < o+l; i++ {
			if x.n.data[i] > m {
				m = x.n.data[i]
			}
		}
		sum := 0.0
		for i := o; i < o+l; i++ {
			e := math.Exp(x.n.data[i] - m)
			out.n.data[i] = e
			sum += e
		}
		for i := o; i < o+l; i++ {
			out.n.data[i] /= sum
		}
	}
	if out.n.requires {
		xn, on := x.n, out.n
		on.backward = func() {
			xn.ensureGrad()
			for s := range offsets {
				o, l := offsets[s], lens[s]
				if l == 0 {
					continue
				}
				// dx_i = y_i * (g_i - Σ_j g_j y_j)
				dot := 0.0
				for i := o; i < o+l; i++ {
					dot += on.grad[i] * on.data[i]
				}
				for i := o; i < o+l; i++ {
					xn.grad[i] += on.data[i] * (on.grad[i] - dot)
				}
			}
		}
	}
	return out
}

// Softmax applies a softmax over the whole vector.
func Softmax(x Value) Value {
	return SegmentSoftmax(x, []int{0}, []int{x.Len()})
}

// SegmentSum sums within contiguous segments, producing one output element
// per segment.
func SegmentSum(x Value, offsets, lens []int) Value {
	if x.Cols() != 1 {
		panic("ad: SegmentSum requires a vector")
	}
	t := x.t
	out := t.result(len(offsets), 1, x.n.requires)
	for s := range offsets {
		o, l := offsets[s], lens[s]
		sum := 0.0
		for i := o; i < o+l; i++ {
			sum += x.n.data[i]
		}
		out.n.data[s] = sum
	}
	if out.n.requires {
		xn, on := x.n, out.n
		on.backward = func() {
			xn.ensureGrad()
			for s := range offsets {
				o, l := offsets[s], lens[s]
				g := on.grad[s]
				for i := o; i < o+l; i++ {
					xn.grad[i] += g
				}
			}
		}
	}
	return out
}

// Gather returns y with y_i = x[indices[i]]. Repeated indices are allowed;
// the backward pass scatter-accumulates.
func Gather(x Value, indices []int) Value {
	if x.Cols() != 1 {
		panic("ad: Gather requires a vector")
	}
	t := x.t
	out := t.result(len(indices), 1, x.n.requires)
	for i, idx := range indices {
		if idx < 0 || idx >= x.Len() {
			panic("ad: Gather index out of range")
		}
		out.n.data[i] = x.n.data[idx]
	}
	if out.n.requires {
		xn, on := x.n, out.n
		on.backward = func() {
			xn.ensureGrad()
			for i, idx := range indices {
				xn.grad[idx] += on.grad[i]
			}
		}
	}
	return out
}

// SegmentMax computes the maximum within each contiguous segment; the
// subgradient flows to the first attaining element of each segment.
func SegmentMax(x Value, offsets, lens []int) Value {
	if x.Cols() != 1 {
		panic("ad: SegmentMax requires a vector")
	}
	t := x.t
	out := t.result(len(offsets), 1, x.n.requires)
	args := make([]int, len(offsets))
	for s := range offsets {
		o, l := offsets[s], lens[s]
		if l == 0 {
			panic("ad: SegmentMax with empty segment")
		}
		best, arg := x.n.data[o], o
		for i := o + 1; i < o+l; i++ {
			if x.n.data[i] > best {
				best, arg = x.n.data[i], i
			}
		}
		out.n.data[s] = best
		args[s] = arg
	}
	if out.n.requires {
		xn, on := x.n, out.n
		on.backward = func() {
			xn.ensureGrad()
			for s := range args {
				xn.grad[args[s]] += on.grad[s]
			}
		}
	}
	return out
}

// Custom records a user-defined differentiable op over the given inputs.
// forward receives the input data slices and must return the output data;
// backward receives (inputs, output, outputGrad) and must return one
// gradient slice per input (nil for inputs that need none). This is the
// extension point components like the routing step use.
func Custom(t *Tape, inputs []Value, rows, cols int,
	forward func(in [][]float64) []float64,
	backward func(in [][]float64, out, gout []float64) [][]float64,
) Value {
	requires := false
	datas := make([][]float64, len(inputs))
	for i, v := range inputs {
		if v.t != t {
			panic("ad: Custom input from different tape")
		}
		datas[i] = v.n.data
		requires = requires || v.n.requires
	}
	out := t.result(rows, cols, requires)
	res := forward(datas)
	if len(res) != rows*cols {
		panic("ad: Custom forward returned wrong size")
	}
	copy(out.n.data, res)
	if requires {
		on := out.n
		ins := make([]*node, len(inputs))
		for i, v := range inputs {
			ins[i] = v.n
		}
		on.backward = func() {
			grads := backward(datas, on.data, on.grad)
			if len(grads) != len(ins) {
				panic("ad: Custom backward returned wrong arity")
			}
			for i, g := range grads {
				if g == nil || !ins[i].requires {
					continue
				}
				ins[i].ensureGrad()
				if len(g) != len(ins[i].data) {
					panic("ad: Custom backward gradient size mismatch")
				}
				for j := range g {
					ins[i].grad[j] += g[j]
				}
			}
		}
	}
	return out
}
