package ad

import "math"

// Sum returns the scalar sum of all elements of x.
func Sum(x Value) Value {
	t := x.t
	out := t.result(1, 1, x.n.requires)
	s := 0.0
	for _, v := range x.n.data {
		s += v
	}
	out.n.data[0] = s
	if out.n.requires {
		out.n.bk = bkSum
		out.n.a = x.n
	}
	return out
}

func backSum(n *node) {
	xn := n.a
	xn.ensureGrad()
	g := n.grad[0]
	for i := range xn.grad {
		xn.grad[i] += g
	}
}

// Mean returns the scalar mean of all elements of x.
func Mean(x Value) Value {
	return Scale(Sum(x), 1/float64(x.Len()))
}

// Dot returns the scalar inner product of two equal-length vectors.
func Dot(a, b Value) Value {
	return Sum(Mul(a, b))
}

// Max returns the scalar maximum of x. The subgradient flows entirely to
// the first attaining element — the standard max subgradient, which is what
// makes the MLU objective piecewise sub-differentiable (§3.2).
func Max(x Value) Value {
	t := x.t
	out := t.result(1, 1, x.n.requires)
	best, arg := math.Inf(-1), 0
	for i, v := range x.n.data {
		if v > best {
			best, arg = v, i
		}
	}
	out.n.data[0] = best
	if out.n.requires {
		out.n.bk = bkMax
		out.n.a = x.n
		out.n.i1 = arg
	}
	return out
}

func backMax(n *node) {
	xn := n.a
	xn.ensureGrad()
	xn.grad[n.i1] += n.grad[0]
}

// Min returns the scalar minimum of x (subgradient to first attaining
// element).
func Min(x Value) Value {
	return Neg(Max(Neg(x)))
}

// LogSumExp returns log Σ e^{x_i} — a smooth upper bound on Max used by the
// smooth-objective ablation.
func LogSumExp(x Value) Value {
	t := x.t
	out := t.result(1, 1, x.n.requires)
	m := math.Inf(-1)
	for _, v := range x.n.data {
		if v > m {
			m = v
		}
	}
	s := 0.0
	for _, v := range x.n.data {
		s += math.Exp(v - m)
	}
	out.n.data[0] = m + math.Log(s)
	if out.n.requires {
		out.n.bk = bkLSE
		out.n.a = x.n
	}
	return out
}

func backLSE(n *node) {
	xn := n.a
	xn.ensureGrad()
	g := n.grad[0]
	lse := n.data[0]
	for i, v := range xn.data {
		xn.grad[i] += g * math.Exp(v-lse)
	}
}

// SegmentSoftmax applies a softmax independently within each contiguous
// segment of x. offsets[i] is the start of segment i and lens[i] its length;
// segments must tile x exactly. This is the DOTE post-processor (Figure 2):
// it turns raw DNN outputs into per-demand split ratios that sum to one.
// The offsets and lens slices are retained by the tape until Reset; callers
// must not mutate them while the tape is live.
func SegmentSoftmax(x Value, offsets, lens []int) Value {
	if x.Cols() != 1 {
		panic("ad: SegmentSoftmax requires a vector")
	}
	total := 0
	for _, l := range lens {
		total += l
	}
	if total != x.Len() || len(offsets) != len(lens) {
		panic("ad: SegmentSoftmax segments must tile the input")
	}
	t := x.t
	out := t.result(x.Rows(), 1, x.n.requires)
	for s := range offsets {
		o, l := offsets[s], lens[s]
		if l == 0 {
			continue
		}
		m := math.Inf(-1)
		for i := o; i < o+l; i++ {
			if x.n.data[i] > m {
				m = x.n.data[i]
			}
		}
		sum := 0.0
		for i := o; i < o+l; i++ {
			e := math.Exp(x.n.data[i] - m)
			out.n.data[i] = e
			sum += e
		}
		for i := o; i < o+l; i++ {
			out.n.data[i] /= sum
		}
	}
	if out.n.requires {
		out.n.bk = bkSegmentSoftmax
		out.n.a = x.n
		out.n.ints = offsets
		out.n.ints2 = lens
	}
	return out
}

func backSegmentSoftmax(n *node) {
	xn := n.a
	xn.ensureGrad()
	offsets, lens := n.ints, n.ints2
	for s := range offsets {
		o, l := offsets[s], lens[s]
		if l == 0 {
			continue
		}
		// dx_i = y_i * (g_i - Σ_j g_j y_j)
		dot := 0.0
		for i := o; i < o+l; i++ {
			dot += n.grad[i] * n.data[i]
		}
		for i := o; i < o+l; i++ {
			xn.grad[i] += n.data[i] * (n.grad[i] - dot)
		}
	}
}

// Softmax applies a softmax over the whole vector.
func Softmax(x Value) Value {
	off := x.t.ia.alloc(1)
	ln := x.t.ia.alloc(1)
	off[0], ln[0] = 0, x.Len()
	return SegmentSoftmax(x, off, ln)
}

// SegmentSum sums within contiguous segments, producing one output element
// per segment. The offsets and lens slices are retained until Tape.Reset.
func SegmentSum(x Value, offsets, lens []int) Value {
	if x.Cols() != 1 {
		panic("ad: SegmentSum requires a vector")
	}
	t := x.t
	out := t.result(len(offsets), 1, x.n.requires)
	for s := range offsets {
		o, l := offsets[s], lens[s]
		sum := 0.0
		for i := o; i < o+l; i++ {
			sum += x.n.data[i]
		}
		out.n.data[s] = sum
	}
	if out.n.requires {
		out.n.bk = bkSegmentSum
		out.n.a = x.n
		out.n.ints = offsets
		out.n.ints2 = lens
	}
	return out
}

func backSegmentSum(n *node) {
	xn := n.a
	xn.ensureGrad()
	offsets, lens := n.ints, n.ints2
	for s := range offsets {
		o, l := offsets[s], lens[s]
		g := n.grad[s]
		for i := o; i < o+l; i++ {
			xn.grad[i] += g
		}
	}
}

// Gather returns y with y_i = x[indices[i]]. Repeated indices are allowed;
// the backward pass scatter-accumulates. The indices slice is retained until
// Tape.Reset.
func Gather(x Value, indices []int) Value {
	if x.Cols() != 1 {
		panic("ad: Gather requires a vector")
	}
	t := x.t
	out := t.result(len(indices), 1, x.n.requires)
	for i, idx := range indices {
		if idx < 0 || idx >= x.Len() {
			panic("ad: Gather index out of range")
		}
		out.n.data[i] = x.n.data[idx]
	}
	if out.n.requires {
		out.n.bk = bkGather
		out.n.a = x.n
		out.n.ints = indices
	}
	return out
}

func backGather(n *node) {
	xn := n.a
	xn.ensureGrad()
	for i, idx := range n.ints {
		xn.grad[idx] += n.grad[i]
	}
}

// SegmentMax computes the maximum within each contiguous segment; the
// subgradient flows to the first attaining element of each segment.
func SegmentMax(x Value, offsets, lens []int) Value {
	if x.Cols() != 1 {
		panic("ad: SegmentMax requires a vector")
	}
	t := x.t
	out := t.result(len(offsets), 1, x.n.requires)
	args := t.ia.alloc(len(offsets))
	for s := range offsets {
		o, l := offsets[s], lens[s]
		if l == 0 {
			panic("ad: SegmentMax with empty segment")
		}
		best, arg := x.n.data[o], o
		for i := o + 1; i < o+l; i++ {
			if x.n.data[i] > best {
				best, arg = x.n.data[i], i
			}
		}
		out.n.data[s] = best
		args[s] = arg
	}
	if out.n.requires {
		out.n.bk = bkSegmentMax
		out.n.a = x.n
		out.n.ints = args
	}
	return out
}

func backSegmentMax(n *node) {
	xn := n.a
	xn.ensureGrad()
	for s := range n.ints {
		xn.grad[n.ints[s]] += n.grad[s]
	}
}

// Custom records a user-defined differentiable op over the given inputs.
// forward receives the input data slices and the (zeroed) output buffer to
// fill in place. backward receives (inputs, output, outputGrad, gin) and
// must ACCUMULATE (+=) each input's gradient into the corresponding gin
// slice; gin[i] is nil for inputs that need no gradient. Neither closure may
// retain its buffer arguments. This in-place contract keeps the routing
// step and other extension-point ops allocation-free.
func Custom(t *Tape, inputs []Value, rows, cols int,
	forward func(in [][]float64, out []float64),
	backward func(in [][]float64, out, gout []float64, gin [][]float64),
) Value {
	requires := false
	datas := t.ra.allocSlices(len(inputs))
	for i, v := range inputs {
		if v.t != t {
			panic("ad: Custom input from different tape")
		}
		datas[i] = v.n.data
		requires = requires || v.n.requires
	}
	out := t.result(rows, cols, requires)
	forward(datas, out.n.data)
	if requires {
		on := out.n
		on.bk = bkCustom
		ins := t.ra.allocNodes(len(inputs))
		for i, v := range inputs {
			ins[i] = v.n
		}
		on.srcs = ins
		on.customB = backward
		on.customIn = datas
		on.customG = t.ra.allocSlices(len(inputs))
	}
	return out
}

func backCustom(n *node) {
	gin := n.customG
	for i, in := range n.srcs {
		if in.requires {
			in.ensureGrad()
			gin[i] = in.grad
		} else {
			gin[i] = nil
		}
	}
	n.customB(n.customIn, n.data, n.grad, gin)
}
