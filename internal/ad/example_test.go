package ad_test

import (
	"fmt"

	"repro/internal/ad"
)

// Example shows the tape workflow: record a computation, run the backward
// pass, read gradients from the leaves.
func Example() {
	t := ad.NewTape()
	x := t.Var([]float64{1, 2, 3})
	y := ad.Sum(ad.Square(x)) // y = Σ x²
	ad.Backward(y)
	fmt.Println("y =", y.ScalarValue())
	fmt.Println("dy/dx =", x.Grad())
	// Output:
	// y = 14
	// dy/dx = [2 4 6]
}

// ExampleSegmentSoftmax shows the DOTE post-processor primitive: a softmax
// applied independently per demand's path segment.
func ExampleSegmentSoftmax() {
	t := ad.NewTape()
	logits := t.Var([]float64{0, 0, 100, 0})
	// Two demands with two candidate paths each.
	splits := ad.SegmentSoftmax(logits, []int{0, 2}, []int{2, 2})
	fmt.Printf("%.2f\n", splits.Data())
	// Output: [0.50 0.50 1.00 0.00]
}

// ExampleBackwardVJP shows the vector-Jacobian product the gray-box chain
// rule is built on.
func ExampleBackwardVJP() {
	t := ad.NewTape()
	x := t.Var([]float64{3, 4})
	y := ad.Scale(x, 10) // J = 10·I
	ad.BackwardVJP(y, []float64{1, 0.5})
	fmt.Println(x.Grad())
	// Output: [10 5]
}
