package ad

import "sync"

// arena is a bump allocator for float64 scratch that a Tape reuses across
// Reset cycles. Blocks are retained and re-carved, so a tape that repeatedly
// records same-shaped graphs stops allocating entirely after the first
// build. alloc always returns zeroed memory.
type arena struct {
	blocks [][]float64
	cur    int // index of the block currently being carved
	off    int // offset into blocks[cur]
}

// arenaBlockFloats is the minimum block size (128 KiB of float64s). Requests
// larger than a block get a dedicated block of exactly their size.
const arenaBlockFloats = 16384

func (a *arena) alloc(n int) []float64 {
	if n == 0 {
		return nil
	}
	for {
		if a.cur < len(a.blocks) {
			b := a.blocks[a.cur]
			if a.off+n <= len(b) {
				s := b[a.off : a.off+n : a.off+n]
				a.off += n
				for i := range s {
					s[i] = 0
				}
				return s
			}
			// Current block exhausted for this request; move on.
			a.cur++
			a.off = 0
			continue
		}
		size := arenaBlockFloats
		if n > size {
			size = n
		}
		a.blocks = append(a.blocks, make([]float64, size))
	}
}

// reset rewinds the arena without releasing memory.
func (a *arena) reset() {
	a.cur = 0
	a.off = 0
}

// nodeBlockSize is how many node structs are allocated per block.
const nodeBlockSize = 64

// nodeArena hands out node structs from retained blocks.
type nodeArena struct {
	blocks [][]node
	cur    int
	off    int
}

func (a *nodeArena) get() *node {
	if a.cur >= len(a.blocks) {
		a.blocks = append(a.blocks, make([]node, nodeBlockSize))
	}
	b := a.blocks[a.cur]
	n := &b[a.off]
	a.off++
	if a.off == len(b) {
		a.cur++
		a.off = 0
	}
	return n
}

func (a *nodeArena) reset() {
	a.cur = 0
	a.off = 0
}

// intArena is a bump allocator for int scratch (e.g. per-segment argmax
// indices) with the same reuse semantics as arena.
type intArena struct {
	blocks [][]int
	cur    int
	off    int
}

const intArenaBlock = 4096

func (a *intArena) alloc(n int) []int {
	if n == 0 {
		return nil
	}
	for {
		if a.cur < len(a.blocks) {
			b := a.blocks[a.cur]
			if a.off+n <= len(b) {
				s := b[a.off : a.off+n : a.off+n]
				a.off += n
				return s
			}
			a.cur++
			a.off = 0
			continue
		}
		size := intArenaBlock
		if n > size {
			size = n
		}
		a.blocks = append(a.blocks, make([]int, size))
	}
}

func (a *intArena) reset() {
	a.cur = 0
	a.off = 0
}

// refArena is a bump allocator for the small pointer-shaped slices multi-
// input ops need ([]*node source lists, [][]float64 data/grad views). It
// keeps Concat and Custom allocation-free in steady state.
type refArena struct {
	nodeBlocks  [][]*node
	ncur, noff  int
	sliceBlocks [][][]float64
	scur, soff  int
}

const refArenaBlock = 256

func (a *refArena) allocNodes(n int) []*node {
	if n == 0 {
		return nil
	}
	for {
		if a.ncur < len(a.nodeBlocks) {
			b := a.nodeBlocks[a.ncur]
			if a.noff+n <= len(b) {
				s := b[a.noff : a.noff+n : a.noff+n]
				a.noff += n
				return s
			}
			a.ncur++
			a.noff = 0
			continue
		}
		size := refArenaBlock
		if n > size {
			size = n
		}
		a.nodeBlocks = append(a.nodeBlocks, make([]*node, size))
	}
}

func (a *refArena) allocSlices(n int) [][]float64 {
	if n == 0 {
		return nil
	}
	for {
		if a.scur < len(a.sliceBlocks) {
			b := a.sliceBlocks[a.scur]
			if a.soff+n <= len(b) {
				s := b[a.soff : a.soff+n : a.soff+n]
				a.soff += n
				return s
			}
			a.scur++
			a.soff = 0
			continue
		}
		size := refArenaBlock
		if n > size {
			size = n
		}
		a.sliceBlocks = append(a.sliceBlocks, make([][]float64, size))
	}
}

func (a *refArena) reset() {
	a.ncur, a.noff = 0, 0
	a.scur, a.soff = 0, 0
}

// tapePool recycles tapes (with their arenas) across goroutines. A pooled
// tape retains its grown arenas, so hot paths that GetTape/PutTape per
// gradient run allocation-free in steady state.
var tapePool = sync.Pool{New: func() any { return NewTape() }}

// GetTape returns a reset tape from the pool. The caller owns it until
// PutTape; tapes are not safe for concurrent use.
func GetTape() *Tape {
	return tapePool.Get().(*Tape)
}

// PutTape resets t and returns it to the pool. All Values recorded on t —
// including their Data() and Grad() slices — are invalidated; callers must
// copy anything they need out first.
func PutTape(t *Tape) {
	t.Reset()
	tapePool.Put(t)
}
