package ad

import (
	"testing"

	"repro/internal/rng"
)

func randomVec(n int, seed uint64) []float64 {
	r := rng.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func BenchmarkMatVec(b *testing.B) {
	b.ReportAllocs()
	w := randomVec(128*1320, 1)
	x := randomVec(1320, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		wm := tp.ConstMat(w, 128, 1320)
		MatVec(wm, tp.Const(x))
	}
}

func BenchmarkMatMulForwardBackward(b *testing.B) {
	b.ReportAllocs()
	// The DOTE-scale first layer: [1, 1320] x [1320, 128].
	a := randomVec(1320, 3)
	w := randomVec(1320*128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		am := tp.VarMat(a, 1, 1320)
		wm := tp.ConstMat(w, 1320, 128)
		out := MatMul(am, wm)
		Backward(Sum(Square(out)))
	}
}

func BenchmarkSegmentSoftmax(b *testing.B) {
	b.ReportAllocs()
	// Abilene-scale: 110 segments of ~4.
	const segs, segLen = 110, 4
	x := randomVec(segs*segLen, 5)
	offsets := make([]int, segs)
	lens := make([]int, segs)
	for i := range offsets {
		offsets[i] = i * segLen
		lens[i] = segLen
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		SegmentSoftmax(tp.Const(x), offsets, lens)
	}
}

func BenchmarkBackwardDeepChain(b *testing.B) {
	b.ReportAllocs()
	x := randomVec(256, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		v := tp.Var(x)
		y := v
		for d := 0; d < 8; d++ {
			y = Tanh(Scale(y, 1.01))
		}
		Backward(Sum(y))
	}
}
