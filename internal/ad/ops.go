package ad

import (
	"fmt"
	"math"
)

// checkSameShape panics unless a and b have identical shapes.
func checkSameShape(a, b Value) {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		panic(fmt.Sprintf("ad: shape mismatch %dx%d vs %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
}

// elementwiseBinary implements c = f(a, b) with per-element partials.
// If b is scalar it broadcasts.
func elementwiseBinary(a, b Value, f func(x, y float64) float64, dfa, dfb func(x, y float64) float64) Value {
	a.sameTape(b)
	t := a.t
	broadcastB := b.IsScalar() && !a.IsScalar()
	if !broadcastB {
		checkSameShape(a, b)
	}
	out := t.result(a.Rows(), a.Cols(), a.n.requires || b.n.requires)
	bv := func(i int) float64 {
		if broadcastB {
			return b.n.data[0]
		}
		return b.n.data[i]
	}
	for i := range out.n.data {
		out.n.data[i] = f(a.n.data[i], bv(i))
	}
	if out.n.requires {
		an, bn, on := a.n, b.n, out.n
		on.backward = func() {
			if an.requires {
				an.ensureGrad()
				for i := range on.grad {
					an.grad[i] += on.grad[i] * dfa(an.data[i], bv(i))
				}
			}
			if bn.requires {
				bn.ensureGrad()
				if broadcastB {
					s := 0.0
					for i := range on.grad {
						s += on.grad[i] * dfb(an.data[i], bn.data[0])
					}
					bn.grad[0] += s
				} else {
					for i := range on.grad {
						bn.grad[i] += on.grad[i] * dfb(an.data[i], bn.data[i])
					}
				}
			}
		}
	}
	return out
}

// elementwiseUnary implements y = f(x) with derivative df(x, y).
func elementwiseUnary(x Value, f func(float64) float64, df func(x, y float64) float64) Value {
	t := x.t
	out := t.result(x.Rows(), x.Cols(), x.n.requires)
	for i, v := range x.n.data {
		out.n.data[i] = f(v)
	}
	if out.n.requires {
		xn, on := x.n, out.n
		on.backward = func() {
			xn.ensureGrad()
			for i := range on.grad {
				xn.grad[i] += on.grad[i] * df(xn.data[i], on.data[i])
			}
		}
	}
	return out
}

// Add returns a + b (b may be scalar-broadcast).
func Add(a, b Value) Value {
	return elementwiseBinary(a, b,
		func(x, y float64) float64 { return x + y },
		func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return 1 })
}

// Sub returns a - b (b may be scalar-broadcast).
func Sub(a, b Value) Value {
	return elementwiseBinary(a, b,
		func(x, y float64) float64 { return x - y },
		func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return -1 })
}

// Mul returns the elementwise product a * b (b may be scalar-broadcast).
func Mul(a, b Value) Value {
	return elementwiseBinary(a, b,
		func(x, y float64) float64 { return x * y },
		func(x, y float64) float64 { return y },
		func(x, y float64) float64 { return x })
}

// Div returns the elementwise quotient a / b (b may be scalar-broadcast).
func Div(a, b Value) Value {
	return elementwiseBinary(a, b,
		func(x, y float64) float64 { return x / y },
		func(x, y float64) float64 { return 1 / y },
		func(x, y float64) float64 { return -x / (y * y) })
}

// Scale returns alpha * x for a constant alpha.
func Scale(x Value, alpha float64) Value {
	return elementwiseUnary(x,
		func(v float64) float64 { return alpha * v },
		func(x, y float64) float64 { return alpha })
}

// AddConst returns x + c elementwise for a constant c.
func AddConst(x Value, c float64) Value {
	return elementwiseUnary(x,
		func(v float64) float64 { return v + c },
		func(x, y float64) float64 { return 1 })
}

// Neg returns -x.
func Neg(x Value) Value { return Scale(x, -1) }

// ReLU returns max(x, 0) elementwise. The subgradient at 0 is 0.
func ReLU(x Value) Value {
	return elementwiseUnary(x,
		func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0
		},
		func(x, y float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// LeakyReLU returns x for x > 0 and slope*x otherwise.
func LeakyReLU(x Value, slope float64) Value {
	return elementwiseUnary(x,
		func(v float64) float64 {
			if v > 0 {
				return v
			}
			return slope * v
		},
		func(x, y float64) float64 {
			if x > 0 {
				return 1
			}
			return slope
		})
}

// ELU returns x for x > 0 and alpha*(e^x - 1) otherwise — the smooth
// activation DOTE-style DNNs use and white-box tools cannot encode exactly.
func ELU(x Value, alpha float64) Value {
	return elementwiseUnary(x,
		func(v float64) float64 {
			if v > 0 {
				return v
			}
			return alpha * (math.Exp(v) - 1)
		},
		func(x, y float64) float64 {
			if x > 0 {
				return 1
			}
			return y + alpha // alpha*e^x = y + alpha
		})
}

// Sigmoid returns 1 / (1 + e^-x) elementwise.
func Sigmoid(x Value) Value {
	return elementwiseUnary(x,
		func(v float64) float64 { return 1 / (1 + math.Exp(-v)) },
		func(x, y float64) float64 { return y * (1 - y) })
}

// Tanh returns tanh(x) elementwise.
func Tanh(x Value) Value {
	return elementwiseUnary(x, math.Tanh,
		func(x, y float64) float64 { return 1 - y*y })
}

// Exp returns e^x elementwise.
func Exp(x Value) Value {
	return elementwiseUnary(x, math.Exp,
		func(x, y float64) float64 { return y })
}

// Log returns ln(x) elementwise.
func Log(x Value) Value {
	return elementwiseUnary(x, math.Log,
		func(x, y float64) float64 { return 1 / x })
}

// Sqrt returns the elementwise square root.
func Sqrt(x Value) Value {
	return elementwiseUnary(x, math.Sqrt,
		func(x, y float64) float64 { return 0.5 / y })
}

// Square returns x*x elementwise.
func Square(x Value) Value {
	return elementwiseUnary(x,
		func(v float64) float64 { return v * v },
		func(x, y float64) float64 { return 2 * x })
}

// Abs returns |x| elementwise with subgradient 0 at 0.
func Abs(x Value) Value {
	return elementwiseUnary(x, math.Abs,
		func(x, y float64) float64 {
			switch {
			case x > 0:
				return 1
			case x < 0:
				return -1
			default:
				return 0
			}
		})
}

// Softplus returns log(1 + e^x), a smooth approximation of ReLU used when
// approximating non-differentiable components (§6).
func Softplus(x Value) Value {
	return elementwiseUnary(x,
		func(v float64) float64 {
			if v > 30 {
				return v
			}
			return math.Log1p(math.Exp(v))
		},
		func(x, y float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// Clamp limits x to [lo, hi] with zero gradient outside the interval.
func Clamp(x Value, lo, hi float64) Value {
	return elementwiseUnary(x,
		func(v float64) float64 { return math.Max(lo, math.Min(hi, v)) },
		func(x, y float64) float64 {
			if x >= lo && x <= hi {
				return 1
			}
			return 0
		})
}

// Concat concatenates rank-1 values into one vector.
func Concat(vs ...Value) Value {
	if len(vs) == 0 {
		panic("ad: Concat of nothing")
	}
	t := vs[0].t
	total := 0
	requires := false
	for _, v := range vs {
		vs[0].sameTape(v)
		if v.Cols() != 1 {
			panic("ad: Concat requires vectors")
		}
		total += v.Len()
		requires = requires || v.n.requires
	}
	out := t.result(total, 1, requires)
	pos := 0
	for _, v := range vs {
		copy(out.n.data[pos:], v.n.data)
		pos += v.Len()
	}
	if requires {
		on := out.n
		ins := make([]*node, len(vs))
		for i, v := range vs {
			ins[i] = v.n
		}
		on.backward = func() {
			pos := 0
			for _, in := range ins {
				if in.requires {
					in.ensureGrad()
					for i := range in.data {
						in.grad[i] += on.grad[pos+i]
					}
				}
				pos += len(in.data)
			}
		}
	}
	return out
}

// Slice returns the sub-vector x[from:to] of a rank-1 value.
func Slice(x Value, from, to int) Value {
	if x.Cols() != 1 {
		panic("ad: Slice requires a vector")
	}
	if from < 0 || to > x.Len() || from > to {
		panic("ad: Slice bounds out of range")
	}
	t := x.t
	out := t.result(to-from, 1, x.n.requires)
	copy(out.n.data, x.n.data[from:to])
	if out.n.requires {
		xn, on := x.n, out.n
		on.backward = func() {
			xn.ensureGrad()
			for i := range on.grad {
				xn.grad[from+i] += on.grad[i]
			}
		}
	}
	return out
}
