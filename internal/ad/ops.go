package ad

import (
	"fmt"
	"math"
)

// checkSameShape panics unless a and b have identical shapes.
func checkSameShape(a, b Value) {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		panic(fmt.Sprintf("ad: shape mismatch %dx%d vs %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
}

// elementwiseBinary implements c = f(a, b) with per-element partials.
// If b is scalar it broadcasts. dfa and dfb must be top-level functions
// (they are stored on the node; a capturing closure would allocate).
func elementwiseBinary(a, b Value, f, dfa, dfb func(x, y float64) float64) Value {
	a.sameTape(b)
	t := a.t
	broadcastB := b.IsScalar() && !a.IsScalar()
	if !broadcastB {
		checkSameShape(a, b)
	}
	out := t.result(a.Rows(), a.Cols(), a.n.requires || b.n.requires)
	if broadcastB {
		bv := b.n.data[0]
		for i := range out.n.data {
			out.n.data[i] = f(a.n.data[i], bv)
		}
	} else {
		for i := range out.n.data {
			out.n.data[i] = f(a.n.data[i], b.n.data[i])
		}
	}
	if out.n.requires {
		on := out.n
		on.bk = bkElemBinary
		on.a, on.b = a.n, b.n
		on.dfa, on.dfb = dfa, dfb
		on.flag = broadcastB
	}
	return out
}

func backElemBinary(n *node) {
	an, bn := n.a, n.b
	if an.requires {
		an.ensureGrad()
		if n.flag {
			bv := bn.data[0]
			for i := range n.grad {
				an.grad[i] += n.grad[i] * n.dfa(an.data[i], bv)
			}
		} else {
			for i := range n.grad {
				an.grad[i] += n.grad[i] * n.dfa(an.data[i], bn.data[i])
			}
		}
	}
	if bn.requires {
		bn.ensureGrad()
		if n.flag {
			s := 0.0
			for i := range n.grad {
				s += n.grad[i] * n.dfb(an.data[i], bn.data[0])
			}
			bn.grad[0] += s
		} else {
			for i := range n.grad {
				bn.grad[i] += n.grad[i] * n.dfb(an.data[i], bn.data[i])
			}
		}
	}
}

// elementwiseUnary implements y = f(x) with derivative du(x, y, p1, p2),
// where p1 and p2 are op parameters (slope, bounds, …) stored on the node so
// that du can be a top-level, non-capturing function.
func elementwiseUnary(x Value, f func(float64) float64, du func(x, y, p1, p2 float64) float64, p1, p2 float64) Value {
	t := x.t
	out := t.result(x.Rows(), x.Cols(), x.n.requires)
	for i, v := range x.n.data {
		out.n.data[i] = f(v)
	}
	if out.n.requires {
		on := out.n
		on.bk = bkElemUnary
		on.a = x.n
		on.du = du
		on.p1, on.p2 = p1, p2
	}
	return out
}

func backElemUnary(n *node) {
	xn := n.a
	xn.ensureGrad()
	du, p1, p2 := n.du, n.p1, n.p2
	for i := range n.grad {
		xn.grad[i] += n.grad[i] * du(xn.data[i], n.data[i], p1, p2)
	}
}

// Static partials for the binary ops.
func dOne(x, y float64) float64    { return 1 }
func dNegOne(x, y float64) float64 { return -1 }
func dRight(x, y float64) float64  { return y }
func dLeft(x, y float64) float64   { return x }
func dDivA(x, y float64) float64   { return 1 / y }
func dDivB(x, y float64) float64   { return -x / (y * y) }

func fAdd(x, y float64) float64 { return x + y }
func fSub(x, y float64) float64 { return x - y }
func fMul(x, y float64) float64 { return x * y }
func fDiv(x, y float64) float64 { return x / y }

// Add returns a + b (b may be scalar-broadcast).
func Add(a, b Value) Value { return elementwiseBinary(a, b, fAdd, dOne, dOne) }

// Sub returns a - b (b may be scalar-broadcast).
func Sub(a, b Value) Value { return elementwiseBinary(a, b, fSub, dOne, dNegOne) }

// Mul returns the elementwise product a * b (b may be scalar-broadcast).
func Mul(a, b Value) Value { return elementwiseBinary(a, b, fMul, dRight, dLeft) }

// Div returns the elementwise quotient a / b (b may be scalar-broadcast).
func Div(a, b Value) Value { return elementwiseBinary(a, b, fDiv, dDivA, dDivB) }

// Static partials for the unary ops; p1/p2 carry the op parameters.
func duConst(x, y, p1, p2 float64) float64 { return p1 }
func duOne(x, y, p1, p2 float64) float64   { return 1 }
func duReLU(x, y, p1, p2 float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}
func duLeakyReLU(x, y, p1, p2 float64) float64 {
	if x > 0 {
		return 1
	}
	return p1
}
func duELU(x, y, p1, p2 float64) float64 {
	if x > 0 {
		return 1
	}
	return y + p1 // alpha*e^x = y + alpha
}
func duSigmoid(x, y, p1, p2 float64) float64 { return y * (1 - y) }
func duTanh(x, y, p1, p2 float64) float64    { return 1 - y*y }
func duExp(x, y, p1, p2 float64) float64     { return y }
func duLog(x, y, p1, p2 float64) float64     { return 1 / x }
func duSqrt(x, y, p1, p2 float64) float64    { return 0.5 / y }
func duSquare(x, y, p1, p2 float64) float64  { return 2 * x }
func duAbs(x, y, p1, p2 float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
func duSoftplus(x, y, p1, p2 float64) float64 { return 1 / (1 + math.Exp(-x)) }
func duClamp(x, y, p1, p2 float64) float64 {
	if x >= p1 && x <= p2 {
		return 1
	}
	return 0
}

// Scale returns alpha * x for a constant alpha.
func Scale(x Value, alpha float64) Value {
	return elementwiseUnary(x,
		func(v float64) float64 { return alpha * v },
		duConst, alpha, 0)
}

// AddConst returns x + c elementwise for a constant c.
func AddConst(x Value, c float64) Value {
	return elementwiseUnary(x,
		func(v float64) float64 { return v + c },
		duOne, 0, 0)
}

// Neg returns -x.
func Neg(x Value) Value { return Scale(x, -1) }

// ReLU returns max(x, 0) elementwise. The subgradient at 0 is 0.
func ReLU(x Value) Value {
	return elementwiseUnary(x,
		func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0
		},
		duReLU, 0, 0)
}

// LeakyReLU returns x for x > 0 and slope*x otherwise.
func LeakyReLU(x Value, slope float64) Value {
	return elementwiseUnary(x,
		func(v float64) float64 {
			if v > 0 {
				return v
			}
			return slope * v
		},
		duLeakyReLU, slope, 0)
}

// ELU returns x for x > 0 and alpha*(e^x - 1) otherwise — the smooth
// activation DOTE-style DNNs use and white-box tools cannot encode exactly.
func ELU(x Value, alpha float64) Value {
	return elementwiseUnary(x,
		func(v float64) float64 {
			if v > 0 {
				return v
			}
			return alpha * (math.Exp(v) - 1)
		},
		duELU, alpha, 0)
}

// Sigmoid returns 1 / (1 + e^-x) elementwise.
func Sigmoid(x Value) Value {
	return elementwiseUnary(x,
		func(v float64) float64 { return 1 / (1 + math.Exp(-v)) },
		duSigmoid, 0, 0)
}

// Tanh returns tanh(x) elementwise.
func Tanh(x Value) Value {
	return elementwiseUnary(x, math.Tanh, duTanh, 0, 0)
}

// Exp returns e^x elementwise.
func Exp(x Value) Value {
	return elementwiseUnary(x, math.Exp, duExp, 0, 0)
}

// Log returns ln(x) elementwise.
func Log(x Value) Value {
	return elementwiseUnary(x, math.Log, duLog, 0, 0)
}

// Sqrt returns the elementwise square root.
func Sqrt(x Value) Value {
	return elementwiseUnary(x, math.Sqrt, duSqrt, 0, 0)
}

// Square returns x*x elementwise.
func Square(x Value) Value {
	return elementwiseUnary(x,
		func(v float64) float64 { return v * v },
		duSquare, 0, 0)
}

// Abs returns |x| elementwise with subgradient 0 at 0.
func Abs(x Value) Value {
	return elementwiseUnary(x, math.Abs, duAbs, 0, 0)
}

// Softplus returns log(1 + e^x), a smooth approximation of ReLU used when
// approximating non-differentiable components (§6).
func Softplus(x Value) Value {
	return elementwiseUnary(x,
		func(v float64) float64 {
			if v > 30 {
				return v
			}
			return math.Log1p(math.Exp(v))
		},
		duSoftplus, 0, 0)
}

// Clamp limits x to [lo, hi] with zero gradient outside the interval.
func Clamp(x Value, lo, hi float64) Value {
	return elementwiseUnary(x,
		func(v float64) float64 { return math.Max(lo, math.Min(hi, v)) },
		duClamp, lo, hi)
}

// Concat concatenates rank-1 values into one vector.
func Concat(vs ...Value) Value {
	if len(vs) == 0 {
		panic("ad: Concat of nothing")
	}
	t := vs[0].t
	total := 0
	requires := false
	for _, v := range vs {
		vs[0].sameTape(v)
		if v.Cols() != 1 {
			panic("ad: Concat requires vectors")
		}
		total += v.Len()
		requires = requires || v.n.requires
	}
	out := t.result(total, 1, requires)
	pos := 0
	for _, v := range vs {
		copy(out.n.data[pos:], v.n.data)
		pos += v.Len()
	}
	if requires {
		on := out.n
		on.bk = bkConcat
		ins := t.ra.allocNodes(len(vs))
		for i, v := range vs {
			ins[i] = v.n
		}
		on.srcs = ins
	}
	return out
}

func backConcat(n *node) {
	pos := 0
	for _, in := range n.srcs {
		if in.requires {
			in.ensureGrad()
			for i := range in.data {
				in.grad[i] += n.grad[pos+i]
			}
		}
		pos += len(in.data)
	}
}

// Slice returns the sub-vector x[from:to] of a rank-1 value.
func Slice(x Value, from, to int) Value {
	if x.Cols() != 1 {
		panic("ad: Slice requires a vector")
	}
	if from < 0 || to > x.Len() || from > to {
		panic("ad: Slice bounds out of range")
	}
	t := x.t
	out := t.result(to-from, 1, x.n.requires)
	copy(out.n.data, x.n.data[from:to])
	if out.n.requires {
		on := out.n
		on.bk = bkSlice
		on.a = x.n
		on.i1 = from
	}
	return out
}

func backSlice(n *node) {
	xn := n.a
	xn.ensureGrad()
	from := n.i1
	for i := range n.grad {
		xn.grad[from+i] += n.grad[i]
	}
}
