package ad

import (
	"fmt"

	"repro/internal/linalg"
)

// MatVec returns W·x for a matrix W [m,n] and vector x [n].
func MatVec(w, x Value) Value {
	w.sameTape(x)
	if x.Cols() != 1 || w.Cols() != x.Rows() {
		panic(fmt.Sprintf("ad: MatVec shapes %dx%d · %dx%d", w.Rows(), w.Cols(), x.Rows(), x.Cols()))
	}
	t := w.t
	m, n := w.Rows(), w.Cols()
	out := t.result(m, 1, w.n.requires || x.n.requires)
	linalg.MatVecInto(out.n.data, w.n.data, x.n.data, m, n)
	if out.n.requires {
		on := out.n
		on.bk = bkMatVec
		on.a, on.b = w.n, x.n
	}
	return out
}

func backMatVec(n *node) {
	wn, xn := n.a, n.b
	m, nn := wn.rows, wn.cols
	if wn.requires {
		wn.ensureGrad()
		linalg.OuterAddInto(wn.grad, n.grad, xn.data, m, nn)
	}
	if xn.requires {
		xn.ensureGrad()
		linalg.MatVecTransAddInto(xn.grad, wn.data, n.grad, m, nn)
	}
}

// MatMul returns A·B for matrices A [m,k] and B [k,p].
func MatMul(a, b Value) Value {
	a.sameTape(b)
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("ad: MatMul shapes %dx%d · %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	t := a.t
	m, k, p := a.Rows(), a.Cols(), b.Cols()
	out := t.result(m, p, a.n.requires || b.n.requires)
	// Arena storage is zeroed at allocation, so accumulate directly. The
	// blocked kernel keeps each output row's accumulation order independent
	// of the batch size, so a [R,k] product agrees bitwise with R separate
	// [1,k] products — the batched restart engine depends on this.
	linalg.MatMulBlockedAddInto(out.n.data, a.n.data, b.n.data, m, k, p)
	if out.n.requires {
		on := out.n
		on.bk = bkMatMul
		on.a, on.b = a.n, b.n
	}
	return out
}

func backMatMul(n *node) {
	an, bn := n.a, n.b
	m, k, p := an.rows, an.cols, bn.cols
	// dA = dC · Bᵀ ; dB = Aᵀ · dC.
	if an.requires {
		an.ensureGrad()
		linalg.MatMulNTBlockedAddInto(an.grad, n.grad, bn.data, m, k, p)
	}
	if bn.requires {
		bn.ensureGrad()
		linalg.MatMulTNBlockedAddInto(bn.grad, an.data, n.grad, m, k, p)
	}
}

// Reshape reinterprets x with a new shape of identical element count.
func Reshape(x Value, rows, cols int) Value {
	if rows*cols != x.Len() {
		panic("ad: Reshape element count mismatch")
	}
	t := x.t
	out := t.result(rows, cols, x.n.requires)
	copy(out.n.data, x.n.data)
	if out.n.requires {
		on := out.n
		on.bk = bkCopy
		on.a = x.n
	}
	return out
}

func backCopy(n *node) {
	xn := n.a
	xn.ensureGrad()
	linalg.AccumInto(xn.grad, n.grad)
}

// AddRowVector adds vector v [p] to every row of matrix x [m,p] — the bias
// broadcast of a dense layer applied to a batch.
func AddRowVector(x, v Value) Value {
	x.sameTape(v)
	if v.Cols() != 1 || v.Rows() != x.Cols() {
		panic("ad: AddRowVector shape mismatch")
	}
	t := x.t
	m, p := x.Rows(), x.Cols()
	out := t.result(m, p, x.n.requires || v.n.requires)
	for i := 0; i < m; i++ {
		linalg.AddInto(out.n.data[i*p:(i+1)*p], x.n.data[i*p:(i+1)*p], v.n.data)
	}
	if out.n.requires {
		on := out.n
		on.bk = bkAddRowVector
		on.a, on.b = x.n, v.n
	}
	return out
}

func backAddRowVector(n *node) {
	xn, vn := n.a, n.b
	m, p := n.rows, n.cols
	if xn.requires {
		xn.ensureGrad()
		linalg.AccumInto(xn.grad, n.grad)
	}
	if vn.requires {
		vn.ensureGrad()
		for i := 0; i < m; i++ {
			linalg.AccumInto(vn.grad, n.grad[i*p:(i+1)*p])
		}
	}
}

// Row extracts row i of a matrix as a vector.
func Row(x Value, i int) Value {
	if i < 0 || i >= x.Rows() {
		panic("ad: Row out of range")
	}
	t := x.t
	p := x.Cols()
	out := t.result(p, 1, x.n.requires)
	copy(out.n.data, x.n.data[i*p:(i+1)*p])
	if out.n.requires {
		on := out.n
		on.bk = bkRow
		on.a = x.n
		on.i1 = i
	}
	return out
}

func backRow(n *node) {
	xn := n.a
	xn.ensureGrad()
	p := n.rows // the row was extracted as a [p,1] vector
	linalg.AccumInto(xn.grad[n.i1*p:(n.i1+1)*p], n.grad)
}
