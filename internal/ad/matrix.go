package ad

import "fmt"

// MatVec returns W·x for a matrix W [m,n] and vector x [n].
func MatVec(w, x Value) Value {
	w.sameTape(x)
	if x.Cols() != 1 || w.Cols() != x.Rows() {
		panic(fmt.Sprintf("ad: MatVec shapes %dx%d · %dx%d", w.Rows(), w.Cols(), x.Rows(), x.Cols()))
	}
	t := w.t
	m, n := w.Rows(), w.Cols()
	out := t.result(m, 1, w.n.requires || x.n.requires)
	for i := 0; i < m; i++ {
		row := w.n.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.n.data[j]
		}
		out.n.data[i] = s
	}
	if out.n.requires {
		wn, xn, on := w.n, x.n, out.n
		on.backward = func() {
			if wn.requires {
				wn.ensureGrad()
				for i := 0; i < m; i++ {
					g := on.grad[i]
					if g == 0 {
						continue
					}
					grow := wn.grad[i*n : (i+1)*n]
					for j := 0; j < n; j++ {
						grow[j] += g * xn.data[j]
					}
				}
			}
			if xn.requires {
				xn.ensureGrad()
				for i := 0; i < m; i++ {
					g := on.grad[i]
					if g == 0 {
						continue
					}
					row := wn.data[i*n : (i+1)*n]
					for j := 0; j < n; j++ {
						xn.grad[j] += g * row[j]
					}
				}
			}
		}
	}
	return out
}

// MatMul returns A·B for matrices A [m,k] and B [k,p].
func MatMul(a, b Value) Value {
	a.sameTape(b)
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("ad: MatMul shapes %dx%d · %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	t := a.t
	m, k, p := a.Rows(), a.Cols(), b.Cols()
	out := t.result(m, p, a.n.requires || b.n.requires)
	for i := 0; i < m; i++ {
		arow := a.n.data[i*k : (i+1)*k]
		crow := out.n.data[i*p : (i+1)*p]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.n.data[kk*p : (kk+1)*p]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	if out.n.requires {
		an, bn, on := a.n, b.n, out.n
		on.backward = func() {
			// dA = dC · Bᵀ ; dB = Aᵀ · dC.
			if an.requires {
				an.ensureGrad()
				for i := 0; i < m; i++ {
					gro := on.grad[i*p : (i+1)*p]
					gra := an.grad[i*k : (i+1)*k]
					for kk := 0; kk < k; kk++ {
						brow := bn.data[kk*p : (kk+1)*p]
						s := 0.0
						for j := 0; j < p; j++ {
							s += gro[j] * brow[j]
						}
						gra[kk] += s
					}
				}
			}
			if bn.requires {
				bn.ensureGrad()
				for i := 0; i < m; i++ {
					arow := an.data[i*k : (i+1)*k]
					gro := on.grad[i*p : (i+1)*p]
					for kk, av := range arow {
						if av == 0 {
							continue
						}
						grb := bn.grad[kk*p : (kk+1)*p]
						for j := 0; j < p; j++ {
							grb[j] += av * gro[j]
						}
					}
				}
			}
		}
	}
	return out
}

// Reshape reinterprets x with a new shape of identical element count.
func Reshape(x Value, rows, cols int) Value {
	if rows*cols != x.Len() {
		panic("ad: Reshape element count mismatch")
	}
	t := x.t
	out := t.result(rows, cols, x.n.requires)
	copy(out.n.data, x.n.data)
	if out.n.requires {
		xn, on := x.n, out.n
		on.backward = func() {
			xn.ensureGrad()
			for i := range on.grad {
				xn.grad[i] += on.grad[i]
			}
		}
	}
	return out
}

// AddRowVector adds vector v [p] to every row of matrix x [m,p] — the bias
// broadcast of a dense layer applied to a batch.
func AddRowVector(x, v Value) Value {
	x.sameTape(v)
	if v.Cols() != 1 || v.Rows() != x.Cols() {
		panic("ad: AddRowVector shape mismatch")
	}
	t := x.t
	m, p := x.Rows(), x.Cols()
	out := t.result(m, p, x.n.requires || v.n.requires)
	for i := 0; i < m; i++ {
		xrow := x.n.data[i*p : (i+1)*p]
		orow := out.n.data[i*p : (i+1)*p]
		for j := 0; j < p; j++ {
			orow[j] = xrow[j] + v.n.data[j]
		}
	}
	if out.n.requires {
		xn, vn, on := x.n, v.n, out.n
		on.backward = func() {
			if xn.requires {
				xn.ensureGrad()
				for i := range on.grad {
					xn.grad[i] += on.grad[i]
				}
			}
			if vn.requires {
				vn.ensureGrad()
				for i := 0; i < m; i++ {
					gro := on.grad[i*p : (i+1)*p]
					for j := 0; j < p; j++ {
						vn.grad[j] += gro[j]
					}
				}
			}
		}
	}
	return out
}

// Row extracts row i of a matrix as a vector.
func Row(x Value, i int) Value {
	if i < 0 || i >= x.Rows() {
		panic("ad: Row out of range")
	}
	t := x.t
	p := x.Cols()
	out := t.result(p, 1, x.n.requires)
	copy(out.n.data, x.n.data[i*p:(i+1)*p])
	if out.n.requires {
		xn, on := x.n, out.n
		on.backward = func() {
			xn.ensureGrad()
			for j := range on.grad {
				xn.grad[i*p+j] += on.grad[j]
			}
		}
	}
	return out
}
