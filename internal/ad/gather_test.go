package ad

import "testing"

func TestGatherForwardAndGrad(t *testing.T) {
	tp := NewTape()
	x := tp.Var([]float64{10, 20, 30})
	y := Gather(x, []int{2, 0, 2}) // repeated index accumulates in backward
	if y.Data()[0] != 30 || y.Data()[1] != 10 || y.Data()[2] != 30 {
		t.Fatalf("Gather forward = %v", y.Data())
	}
	BackwardVJP(y, []float64{1, 5, 2})
	g := x.Grad()
	want := []float64{5, 0, 3}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("Gather grad = %v, want %v", g, want)
		}
	}
}

func TestGatherPanics(t *testing.T) {
	tp := NewTape()
	x := tp.Var([]float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Gather accepted out-of-range index")
		}
	}()
	Gather(x, []int{5})
}

func TestSegmentMaxForwardAndGrad(t *testing.T) {
	tp := NewTape()
	x := tp.Var([]float64{1, 9, 3, 7, 2})
	y := SegmentMax(x, []int{0, 2}, []int{2, 3})
	if y.Data()[0] != 9 || y.Data()[1] != 7 {
		t.Fatalf("SegmentMax = %v", y.Data())
	}
	BackwardVJP(y, []float64{2, 3})
	g := x.Grad()
	want := []float64{0, 2, 0, 3, 0}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("SegmentMax grad = %v, want %v", g, want)
		}
	}
}

func TestSegmentMaxTieGoesToFirst(t *testing.T) {
	tp := NewTape()
	x := tp.Var([]float64{5, 5})
	y := SegmentMax(x, []int{0}, []int{2})
	BackwardVJP(y, []float64{1})
	if x.Grad()[0] != 1 || x.Grad()[1] != 0 {
		t.Fatalf("tie subgradient = %v, want first element", x.Grad())
	}
}

func TestSegmentMaxEmptySegmentPanics(t *testing.T) {
	tp := NewTape()
	x := tp.Var([]float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("SegmentMax accepted an empty segment")
		}
	}()
	SegmentMax(x, []int{0, 1}, []int{1, 0})
}

func TestGatherNumericGradient(t *testing.T) {
	x := []float64{0.5, -1.5, 2.5}
	checkGrad(t, "gather-chain", func(tp *Tape, v Value) Value {
		y := Gather(v, []int{0, 2, 1, 0})
		return Sum(Square(y))
	}, x, 1e-6)
}
