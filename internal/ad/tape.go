// Package ad implements reverse-mode automatic differentiation on a tape.
//
// The gray-box analyzer (§3.2) needs exactly two capabilities from every
// differentiable component: forward evaluation and vector-Jacobian products
// combined by the chain rule (Figure 4). This package provides both, for
// the DNN, the post-processor, the routing step, and the MLU objective.
//
// Values are dense row-major tensors of rank 1 or 2; scalars are length-1
// vectors. Build a computation on a Tape, call Backward on a scalar output,
// then read gradients from the leaves.
//
// Tapes are arena-backed: node structs, tensor storage and gradients are
// carved from grown-on-demand arenas that Reset rewinds without freeing.
// A tape that records same-shaped graphs between Resets therefore stops
// allocating after the first build — the property the analyzer's inner
// search loop depends on. The flip side is an ownership rule: Reset (and
// PutTape) invalidates every Value recorded on the tape, including the
// slices returned by Data() and Grad(). Copy anything you need out first.
package ad

import "fmt"

// Tape records a computation for reverse-mode differentiation. A Tape is not
// safe for concurrent use; build one per goroutine (or use GetTape/PutTape).
type Tape struct {
	nodes []*node
	na    nodeArena
	fa    arena
	ia    intArena
	ra    refArena
}

// backKind dispatches a node's backward rule. Storing a kind plus operand
// fields on the (arena-reused) node avoids the per-node closure allocation
// a `func()` field would cost on every recorded op.
type backKind uint8

const (
	bkNone backKind = iota
	bkElemBinary
	bkElemUnary
	bkConcat
	bkSlice
	bkMatVec
	bkMatMul
	bkCopy
	bkRow
	bkAddRowVector
	bkSum
	bkMax
	bkLSE
	bkSegmentSoftmax
	bkSegmentSum
	bkSegmentMax
	bkGather
	bkCustom
)

// node is one tape entry. The operand fields (a, b, srcs, df*, ints, …) are
// a union: each backKind reads only the fields its recording op set.
type node struct {
	t        *Tape
	data     []float64
	grad     []float64
	rows     int
	cols     int
	requires bool // participates in gradient computation

	bk       backKind
	a, b     *node                              // unary/binary parents
	srcs     []*node                            // n-ary parents (Concat, Custom)
	dfa, dfb func(x, y float64) float64         // elementwise-binary partials
	du       func(x, y, p1, p2 float64) float64 // elementwise-unary partial
	p1, p2   float64                            // unary parameters (alpha, bounds, …)
	flag     bool                               // elementwise-binary: broadcast b
	i1       int                                // Slice from / Row index / Max arg
	ints     []int                              // offsets, indices or argmaxes
	ints2    []int                              // segment lengths
	customB  func(in [][]float64, out, gout []float64, gin [][]float64)
	customIn [][]float64
	customG  [][]float64
}

// Value is a handle to a tensor on a tape.
type Value struct {
	t *Tape
	n *node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset drops all recorded nodes so the tape can be reused. The arenas
// backing node storage are rewound, not freed: every Value previously
// recorded on the tape — and every slice obtained from Data() or Grad() —
// is invalidated and will be overwritten by subsequent recording.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.na.reset()
	t.fa.reset()
	t.ia.reset()
	t.ra.reset()
}

// NumNodes returns the number of recorded nodes (for tests).
func (t *Tape) NumNodes() int { return len(t.nodes) }

func (t *Tape) newNode(rows, cols int, requires bool) *node {
	n := t.na.get()
	*n = node{
		t:        t,
		data:     t.fa.alloc(rows * cols),
		rows:     rows,
		cols:     cols,
		requires: requires,
	}
	t.nodes = append(t.nodes, n)
	return n
}

// Var records a differentiable leaf vector (copies data).
func (t *Tape) Var(data []float64) Value {
	n := t.newNode(len(data), 1, true)
	copy(n.data, data)
	return Value{t, n}
}

// VarMat records a differentiable leaf matrix with the given shape, reading
// rows*cols values from data (copies).
func (t *Tape) VarMat(data []float64, rows, cols int) Value {
	if len(data) != rows*cols {
		panic("ad: VarMat shape mismatch")
	}
	n := t.newNode(rows, cols, true)
	copy(n.data, data)
	return Value{t, n}
}

// Const records a non-differentiable leaf vector (copies data).
func (t *Tape) Const(data []float64) Value {
	n := t.newNode(len(data), 1, false)
	copy(n.data, data)
	return Value{t, n}
}

// ConstMat records a non-differentiable leaf matrix.
func (t *Tape) ConstMat(data []float64, rows, cols int) Value {
	if len(data) != rows*cols {
		panic("ad: ConstMat shape mismatch")
	}
	n := t.newNode(rows, cols, false)
	copy(n.data, data)
	return Value{t, n}
}

// Scalar records a non-differentiable scalar.
func (t *Tape) Scalar(v float64) Value { return t.Const([]float64{v}) }

// Data returns the forward value (shared storage — treat as read-only, and
// invalid after Tape.Reset).
func (v Value) Data() []float64 { return v.n.data }

// Grad returns the accumulated gradient after Backward, or nil if the value
// does not participate in differentiation. Shared storage; treat as
// read-only, and invalid after Tape.Reset.
func (v Value) Grad() []float64 { return v.n.grad }

// Rows returns the number of rows (vector length for rank-1 values).
func (v Value) Rows() int { return v.n.rows }

// Cols returns the number of columns (1 for vectors).
func (v Value) Cols() int { return v.n.cols }

// Len returns the total number of elements.
func (v Value) Len() int { return len(v.n.data) }

// ScalarValue returns the single element of a scalar value.
func (v Value) ScalarValue() float64 {
	if len(v.n.data) != 1 {
		panic("ad: ScalarValue of non-scalar")
	}
	return v.n.data[0]
}

// IsScalar reports whether the value has exactly one element.
func (v Value) IsScalar() bool { return len(v.n.data) == 1 }

func (v Value) sameTape(w Value) {
	if v.t != w.t {
		panic("ad: values from different tapes")
	}
}

// ensureGrad allocates the gradient buffer lazily (from the tape arena).
func (n *node) ensureGrad() {
	if n.grad == nil {
		n.grad = n.t.fa.alloc(len(n.data))
	}
}

// Backward runs reverse-mode accumulation from the given scalar output,
// seeding its adjoint with 1. It may be called once per tape build; call
// Tape.Reset to start over.
func Backward(out Value) {
	if !out.IsScalar() {
		panic("ad: Backward requires a scalar output")
	}
	BackwardWithSeed(out, 1)
}

// BackwardWithSeed runs reverse accumulation seeding the output adjoint with
// the given value (vector outputs get the seed broadcast is not supported;
// use BackwardVJP for vector-Jacobian products).
func BackwardWithSeed(out Value, seed float64) {
	out.t.clearIntermediateGrads()
	out.n.ensureGrad()
	for i := range out.n.grad {
		out.n.grad[i] += seed
	}
	runBackward(out.t)
}

// BackwardVJP seeds the output's adjoint with the cotangent vector ybar and
// runs reverse accumulation — computing ybarᵀ · J for every leaf. This is
// the primitive the gray-box chain rule (Figure 4) composes.
func BackwardVJP(out Value, ybar []float64) {
	if len(ybar) != out.Len() {
		panic(fmt.Sprintf("ad: BackwardVJP cotangent length %d, want %d", len(ybar), out.Len()))
	}
	out.t.clearIntermediateGrads()
	out.n.ensureGrad()
	for i := range ybar {
		out.n.grad[i] += ybar[i]
	}
	runBackward(out.t)
}

func runBackward(t *Tape) {
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.bk != bkNone && n.grad != nil {
			n.backprop()
		}
	}
}

// backprop propagates n's adjoint into its parents according to its kind.
func (n *node) backprop() {
	switch n.bk {
	case bkElemBinary:
		backElemBinary(n)
	case bkElemUnary:
		backElemUnary(n)
	case bkConcat:
		backConcat(n)
	case bkSlice:
		backSlice(n)
	case bkMatVec:
		backMatVec(n)
	case bkMatMul:
		backMatMul(n)
	case bkCopy:
		backCopy(n)
	case bkRow:
		backRow(n)
	case bkAddRowVector:
		backAddRowVector(n)
	case bkSum:
		backSum(n)
	case bkMax:
		backMax(n)
	case bkLSE:
		backLSE(n)
	case bkSegmentSoftmax:
		backSegmentSoftmax(n)
	case bkSegmentSum:
		backSegmentSum(n)
	case bkSegmentMax:
		backSegmentMax(n)
	case bkGather:
		backGather(n)
	case bkCustom:
		backCustom(n)
	default:
		panic("ad: unknown backward kind")
	}
}

// clearIntermediateGrads zeroes the adjoints of all non-leaf nodes so a
// fresh backward pass does not double-count earlier passes. Leaf gradients
// accumulate across passes, matching the usual framework semantics.
func (t *Tape) clearIntermediateGrads() {
	for _, n := range t.nodes {
		if n.bk != bkNone && n.grad != nil {
			for i := range n.grad {
				n.grad[i] = 0
			}
		}
	}
}

// ZeroGrads clears all gradient buffers on the tape (keeps forward values).
func (t *Tape) ZeroGrads() {
	for _, n := range t.nodes {
		if n.grad != nil {
			for i := range n.grad {
				n.grad[i] = 0
			}
		}
	}
}

// result creates an op output node; requires is true if any input requires
// gradients.
func (t *Tape) result(rows, cols int, requires bool) Value {
	return Value{t, t.newNode(rows, cols, requires)}
}
