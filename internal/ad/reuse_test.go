package ad

import (
	"math"
	"testing"
)

// buildAndGrad records a small but representative graph (matvec, activation,
// softmax-style reductions, slicing, concat) on t and returns copies of the
// output and the input gradient.
func buildAndGrad(t *Tape, w, x []float64, rows, cols int) (float64, []float64) {
	wm := t.VarMat(w, rows, cols)
	xv := t.Var(x)
	h := Tanh(MatVec(wm, xv))
	s := Softmax(h)
	mix := Concat(Slice(s, 0, rows/2), Slice(s, rows/2, rows))
	out := Add(Sum(Mul(mix, h)), LogSumExp(h))
	Backward(out)
	grad := append([]float64(nil), xv.Grad()...)
	return out.ScalarValue(), grad
}

// TestTapeReuseIdenticalGradients rebuilds the same graph after Reset and
// checks that forward values and gradients are bit-identical to the first
// build — the arena rewind must not leak state between builds.
func TestTapeReuseIdenticalGradients(t *testing.T) {
	const rows, cols = 6, 4
	w := make([]float64, rows*cols)
	x := make([]float64, cols)
	for i := range w {
		w[i] = math.Sin(float64(i) + 1)
	}
	for i := range x {
		x[i] = math.Cos(float64(i) + 1)
	}

	tape := NewTape()
	out1, grad1 := buildAndGrad(tape, w, x, rows, cols)
	nodes1 := tape.NumNodes()

	for rebuild := 0; rebuild < 3; rebuild++ {
		tape.Reset()
		out2, grad2 := buildAndGrad(tape, w, x, rows, cols)
		if out2 != out1 {
			t.Fatalf("rebuild %d: output %g, want %g", rebuild, out2, out1)
		}
		for i := range grad1 {
			if grad2[i] != grad1[i] {
				t.Fatalf("rebuild %d: grad[%d] = %g, want %g", rebuild, i, grad2[i], grad1[i])
			}
		}
		if tape.NumNodes() != nodes1 {
			t.Fatalf("rebuild %d: %d nodes, want %d", rebuild, tape.NumNodes(), nodes1)
		}
	}
}

// TestTapeReuseAcrossShapes interleaves builds of different sizes on one
// tape, checking each against a fresh-tape reference: arena growth for a
// large graph must not corrupt a later small build and vice versa.
func TestTapeReuseAcrossShapes(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{4, 3}, {40, 30}, {4, 3}, {16, 24}, {40, 30}, {2, 2},
	}
	tape := NewTape()
	for si, sh := range shapes {
		w := make([]float64, sh.rows*sh.cols)
		x := make([]float64, sh.cols)
		for i := range w {
			w[i] = math.Sin(float64(si*31+i) + 0.5)
		}
		for i := range x {
			x[i] = math.Cos(float64(si*17+i) + 0.5)
		}
		tape.Reset()
		out, grad := buildAndGrad(tape, w, x, sh.rows, sh.cols)
		refOut, refGrad := buildAndGrad(NewTape(), w, x, sh.rows, sh.cols)
		if out != refOut {
			t.Fatalf("shape %d (%dx%d): output %g, want %g", si, sh.rows, sh.cols, out, refOut)
		}
		for i := range refGrad {
			if grad[i] != refGrad[i] {
				t.Fatalf("shape %d (%dx%d): grad[%d] = %g, want %g",
					si, sh.rows, sh.cols, i, grad[i], refGrad[i])
			}
		}
	}
}

// TestPooledTapeRoundTrip exercises GetTape/PutTape: a pooled tape must come
// back reset and usable, and results copied out before PutTape stay valid.
func TestPooledTapeRoundTrip(t *testing.T) {
	x := []float64{0.3, -0.7, 1.1}
	var outs [4]float64
	var grads [4][]float64
	for k := 0; k < 4; k++ {
		tape := GetTape()
		xv := tape.Var(x)
		out := Sum(Square(xv))
		Backward(out)
		outs[k] = out.ScalarValue()
		grads[k] = append([]float64(nil), xv.Grad()...)
		PutTape(tape)
	}
	for k := 1; k < 4; k++ {
		if outs[k] != outs[0] {
			t.Fatalf("pooled build %d: output %g, want %g", k, outs[k], outs[0])
		}
		for i := range grads[0] {
			if grads[k][i] != grads[0][i] {
				t.Fatalf("pooled build %d: grad[%d] = %g, want %g", k, i, grads[k][i], grads[0][i])
			}
		}
	}
	for i, want := range []float64{0.6, -1.4, 2.2} {
		if math.Abs(grads[0][i]-want) > 1e-12 {
			t.Fatalf("grad[%d] = %g, want %g", i, grads[0][i], want)
		}
	}
}

// TestTapeReuseStopsAllocating verifies the headline property: rebuilding a
// same-shaped graph on a Reset tape performs zero heap allocations.
func TestTapeReuseStopsAllocating(t *testing.T) {
	const rows, cols = 8, 5
	w := make([]float64, rows*cols)
	x := make([]float64, cols)
	for i := range w {
		w[i] = float64(i%7) - 3
	}
	for i := range x {
		x[i] = float64(i) + 0.5
	}
	tape := NewTape()
	buildAndGrad(tape, w, x, rows, cols) // grow arenas
	sink := make([]float64, cols)
	allocs := testing.AllocsPerRun(50, func() {
		tape.Reset()
		wm := tape.VarMat(w, rows, cols)
		xv := tape.Var(x)
		out := Sum(Tanh(MatVec(wm, xv)))
		Backward(out)
		copy(sink, xv.Grad())
	})
	if allocs != 0 {
		t.Fatalf("rebuild on reset tape allocates %v times per run, want 0", allocs)
	}
}
