package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first outputs")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) bucket %d count %d not near uniform", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("exponential variate negative: %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestDirichletOnSimplex(t *testing.T) {
	r := New(23)
	f := func(seed uint64) bool {
		rr := New(seed)
		out := make([]float64, 2+rr.Intn(8))
		r.Dirichlet(0.5, out)
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaPositiveAndMean(t *testing.T) {
	r := New(29)
	for _, shape := range []float64{0.3, 1, 2.5, 7} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := r.Gamma(shape)
			if x <= 0 {
				t.Fatalf("Gamma(%v) returned non-positive %v", shape, x)
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-shape)/shape > 0.05 {
			t.Fatalf("Gamma(%v) mean %v too far from shape", shape, mean)
		}
	}
}

func TestParetoTail(t *testing.T) {
	r := New(31)
	for i := 0; i < 10000; i++ {
		if x := r.Pareto(2, 1.5); x < 2 {
			t.Fatalf("Pareto(2, 1.5) below xm: %v", x)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(37)
	for i := 0; i < 1000; i++ {
		if x := r.LogNormal(0, 1); x <= 0 {
			t.Fatalf("LogNormal non-positive: %v", x)
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(41)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}
