// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository.
//
// Every randomized routine in this codebase takes an explicit *rng.RNG (or a
// seed) so that experiments are reproducible bit-for-bit across runs and
// platforms. The generator is an xoshiro256** core seeded via SplitMix64,
// following the reference constructions by Blackman and Vigna.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; use Split to derive independent generators for goroutines.
type RNG struct {
	s [4]uint64

	// cached second normal variate from Box-Muller
	hasGauss bool
	gauss    float64
}

// splitMix64 advances the given state and returns the next SplitMix64 output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Two generators built
// from the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new independent generator from this one. The parent
// advances, so successive Splits yield distinct children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method would be faster; modulo bias for
	// n << 2^64 is negligible for our workloads, but we still reject to keep
	// the stream exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.gauss = mag * math.Sin(2*math.Pi*v)
	r.hasGauss = true
	return mag * math.Cos(2*math.Pi*v)
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns exp(mu + sigma*Z) for standard normal Z.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the elements indexed 0..n-1 using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pareto returns a Pareto(xm, alpha) variate: heavy-tailed sizes used by the
// elephant-mice traffic generators.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Dirichlet fills out with a Dirichlet(alpha, ..., alpha) sample of the given
// length (a random point on the probability simplex).
func (r *RNG) Dirichlet(alpha float64, out []float64) {
	sum := 0.0
	for i := range out {
		g := r.Gamma(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Gamma returns a Gamma(shape, 1) variate using Marsaglia-Tsang for
// shape >= 1 and the boost trick for shape < 1.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		g := r.Gamma(shape + 1)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return g * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
