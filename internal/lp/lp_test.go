package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s := p.Solve()
	if s.Status != StatusOptimal {
		t.Fatalf("solve status = %v, want optimal", s.Status)
	}
	return s
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0, obj=12.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.AddConstraint("c1", NewExpr().Add(1, x).Add(1, y), LE, 4)
	p.AddConstraint("c2", NewExpr().Add(1, x).Add(3, y), LE, 6)
	p.SetObjective(Maximize, NewExpr().Add(3, x).Add(2, y))
	s := solveOK(t, p)
	if math.Abs(s.Objective-12) > 1e-7 {
		t.Fatalf("objective = %v, want 12", s.Objective)
	}
	if math.Abs(s.Value(x)-4) > 1e-7 || math.Abs(s.Value(y)) > 1e-7 {
		t.Fatalf("solution = (%v, %v), want (4, 0)", s.Value(x), s.Value(y))
	}
}

func TestSimpleMin(t *testing.T) {
	// min x + y st x + 2y >= 4, 3x + y >= 6 -> intersection x=8/5, y=6/5, obj=14/5.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.AddConstraint("", NewExpr().Add(1, x).Add(2, y), GE, 4)
	p.AddConstraint("", NewExpr().Add(3, x).Add(1, y), GE, 6)
	p.SetObjective(Minimize, NewExpr().Add(1, x).Add(1, y))
	s := solveOK(t, p)
	if math.Abs(s.Objective-14.0/5) > 1e-7 {
		t.Fatalf("objective = %v, want 2.8", s.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x st x + y = 5, y <= 3 -> y=3, x=2.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.AddConstraint("", NewExpr().Add(1, x).Add(1, y), EQ, 5)
	p.AddConstraint("", NewExpr().Add(1, y), LE, 3)
	p.SetObjective(Minimize, NewExpr().Add(1, x))
	s := solveOK(t, p)
	if math.Abs(s.Value(x)-2) > 1e-7 {
		t.Fatalf("x = %v, want 2", s.Value(x))
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	p.AddConstraint("", NewExpr().Add(1, x), LE, 1)
	p.AddConstraint("", NewExpr().Add(1, x), GE, 2)
	p.SetObjective(Minimize, NewExpr().Add(1, x))
	if s := p.Solve(); s.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	p.SetObjective(Maximize, NewExpr().Add(1, x))
	if s := p.Solve(); s.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min |style| objective via free var: min x st x >= -3 (free var with GE).
	p := NewProblem()
	x := p.AddVariable("x", math.Inf(-1), math.Inf(1))
	p.AddConstraint("", NewExpr().Add(1, x), GE, -3)
	p.SetObjective(Minimize, NewExpr().Add(1, x))
	s := solveOK(t, p)
	if math.Abs(s.Value(x)+3) > 1e-7 {
		t.Fatalf("x = %v, want -3", s.Value(x))
	}
}

func TestVariableBounds(t *testing.T) {
	// max x + y with x in [1, 2], y in [-5, -1] -> obj = 2 + (-1) = 1.
	p := NewProblem()
	x := p.AddVariable("x", 1, 2)
	y := p.AddVariable("y", -5, -1)
	p.SetObjective(Maximize, NewExpr().Add(1, x).Add(1, y))
	s := solveOK(t, p)
	if math.Abs(s.Objective-1) > 1e-7 {
		t.Fatalf("objective = %v, want 1", s.Objective)
	}
	if math.Abs(s.Value(x)-2) > 1e-7 || math.Abs(s.Value(y)+1) > 1e-7 {
		t.Fatalf("solution = (%v, %v), want (2, -1)", s.Value(x), s.Value(y))
	}
}

func TestUpperBoundedOnly(t *testing.T) {
	// Variable with only an upper bound: max x st x <= 7 (via bound).
	p := NewProblem()
	x := p.AddVariable("x", math.Inf(-1), 7)
	p.SetObjective(Maximize, NewExpr().Add(1, x))
	s := solveOK(t, p)
	if math.Abs(s.Value(x)-7) > 1e-7 {
		t.Fatalf("x = %v, want 7", s.Value(x))
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 3, 3)
	y := p.AddVariable("y", 0, 10)
	p.AddConstraint("", NewExpr().Add(1, x).Add(1, y), LE, 8)
	p.SetObjective(Maximize, NewExpr().Add(1, y))
	s := solveOK(t, p)
	if math.Abs(s.Value(x)-3) > 1e-7 || math.Abs(s.Value(y)-5) > 1e-7 {
		t.Fatalf("solution = (%v, %v), want (3, 5)", s.Value(x), s.Value(y))
	}
}

func TestObjectiveConstant(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 1)
	p.SetObjective(Maximize, NewExpr().Add(2, x).AddConst(10))
	s := solveOK(t, p)
	if math.Abs(s.Objective-12) > 1e-7 {
		t.Fatalf("objective = %v, want 12", s.Objective)
	}
}

func TestExprConstInConstraint(t *testing.T) {
	// x + 1 <= 3  ->  x <= 2.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	p.AddConstraint("", NewExpr().Add(1, x).AddConst(1), LE, 3)
	p.SetObjective(Maximize, NewExpr().Add(1, x))
	s := solveOK(t, p)
	if math.Abs(s.Value(x)-2) > 1e-7 {
		t.Fatalf("x = %v, want 2", s.Value(x))
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicate equality rows force a redundant row in phase 1.
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.AddConstraint("", NewExpr().Add(1, x).Add(1, y), EQ, 4)
	p.AddConstraint("", NewExpr().Add(2, x).Add(2, y), EQ, 8)
	p.SetObjective(Maximize, NewExpr().Add(1, x))
	s := solveOK(t, p)
	if math.Abs(s.Value(x)-4) > 1e-7 {
		t.Fatalf("x = %v, want 4", s.Value(x))
	}
}

// TestRandomLPsAgainstEnumeration cross-checks the simplex against brute
// force enumeration of basic feasible solutions on small random LPs.
func TestRandomLPsAgainstEnumeration(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 40; trial++ {
		// Random bounded LP: max c.x st A x <= b, 0 <= x <= 10.
		n := 2 + r.Intn(2)
		m := 2 + r.Intn(3)
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = math.Floor(r.Uniform(-2, 5))
			}
			b[i] = math.Floor(r.Uniform(1, 20))
		}
		c := make([]float64, n)
		for j := range c {
			c[j] = math.Floor(r.Uniform(-3, 6))
		}
		p := NewProblem()
		vars := make([]VarID, n)
		for j := range vars {
			vars[j] = p.AddVariable("", 0, 10)
		}
		obj := NewExpr()
		for j := range vars {
			obj.Add(c[j], vars[j])
		}
		p.SetObjective(Maximize, obj)
		for i := range a {
			e := NewExpr()
			for j := range vars {
				e.Add(a[i][j], vars[j])
			}
			p.AddConstraint("", e, LE, b[i])
		}
		s := p.Solve()
		if s.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		// Brute force over a fine grid (coarse check: grid optimum must not
		// exceed the LP optimum, and LP point must be feasible).
		for i := range a {
			lhs := 0.0
			for j := range vars {
				lhs += a[i][j] * s.Value(vars[j])
			}
			if lhs > b[i]+1e-6 {
				t.Fatalf("trial %d: LP point violates constraint %d", trial, i)
			}
		}
		const steps = 10
		bestGrid := math.Inf(-1)
		var rec func(j int, x []float64)
		rec = func(j int, x []float64) {
			if j == n {
				for i := range a {
					lhs := 0.0
					for k := 0; k < n; k++ {
						lhs += a[i][k] * x[k]
					}
					if lhs > b[i]+1e-9 {
						return
					}
				}
				v := 0.0
				for k := 0; k < n; k++ {
					v += c[k] * x[k]
				}
				if v > bestGrid {
					bestGrid = v
				}
				return
			}
			for s := 0; s <= steps; s++ {
				x[j] = 10 * float64(s) / steps
				rec(j+1, x)
			}
		}
		rec(0, make([]float64, n))
		if bestGrid > s.Objective+1e-6 {
			t.Fatalf("trial %d: grid found %v > simplex optimum %v", trial, bestGrid, s.Objective)
		}
	}
}
