package lp_test

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// ExampleProblem demonstrates the modeling API on a two-variable LP.
func ExampleProblem() {
	p := lp.NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.AddConstraint("c1", lp.NewExpr().Add(1, x).Add(1, y), lp.LE, 4)
	p.AddConstraint("c2", lp.NewExpr().Add(1, x).Add(3, y), lp.LE, 6)
	p.SetObjective(lp.Maximize, lp.NewExpr().Add(3, x).Add(2, y))
	s := p.Solve()
	fmt.Printf("%v objective=%g x=%g y=%g\n", s.Status, s.Objective, s.Value(x), s.Value(y))
	// Output: optimal objective=12 x=4 y=0
}
