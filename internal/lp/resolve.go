package lp

import (
	"math"
	"time"
)

// This file implements the RHS-delta re-solve path: when a problem is solved
// repeatedly and only its constraint right-hand sides change between solves
// (the exact shape of finite-difference probes on the optimal-MLU LP, whose
// flow formulation keeps demands purely in b), the previous optimal basis B
// remains DUAL feasible — the reduced costs c − c_B B⁻¹A do not involve b at
// all. It therefore remains optimal if and only if it is still primal
// feasible, i.e. B⁻¹·b_new ≥ 0. ResolveRHS checks exactly that and, on
// success, reads the new vertex off the cached factors with zero pivots.
//
// The columns of B⁻¹ needed for the update come for free from the final
// simplex tableau: the tableau is M·[A|b] for the change-of-basis matrix
// M = B⁻¹ (up to the per-row sign flips of the cold solve), so the column of
// a row's slack variable — whose constraint column is ±e_r — is ±M·e_r.
// Independent of the cold solve's sign flips,
//
//	B⁻¹ e_r = slackSign_r · tableau[:, slackCol_r],
//
// which is why only rows owning a slack/surplus column support delta updates
// (EQ rows fall back to a normal warm/cold solve when their RHS changes).

// rhsFeasEps mirrors the warm-start feasibility tolerance: basic values this
// far below zero abandon the fast path, smaller negatives are clamped.
const rhsFeasEps = 1e-7

// captureRHSFactors snapshots everything ResolveRHS needs from a finished
// solve: the standard-form b, the basic-variable values, and the reachable
// B⁻¹ columns. No-op unless KeepRHSFactors is set and the basis covers every
// row (redundant-row removal leaves a partial basis that cannot be updated).
func (s *Solver) captureRHSFactors(t [][]float64, basis []int, width int) {
	m := len(s.rowSlackCol)
	if !s.KeepRHSFactors || len(basis) != m {
		s.rhsReady = false
		return
	}
	s.rhsM, s.rhsTotal = m, s.warmTotal
	s.rhsPrevB = append(s.rhsPrevB[:0], s.b[:m]...)
	s.rhsXB = growF(s.rhsXB, m)
	s.rhsBinv = growF(s.rhsBinv, m*m)
	for i := 0; i < m; i++ {
		s.rhsXB[i] = t[i][width-1]
		row := s.rhsBinv[i*m : (i+1)*m]
		for r := 0; r < m; r++ {
			if sc := s.rowSlackCol[r]; sc >= 0 {
				row[r] = s.rowSlackSign[r] * t[i][sc]
			} else {
				row[r] = 0
			}
		}
	}
	s.rhsReady = true
}

// buildRHS recomputes the standard-form right-hand side of p into s.rhsBNew
// without touching the coefficient matrix, mirroring buildStandard's rhs
// arithmetic exactly (bound shifts applied term by term, bound rows appended
// in variable order). Returns nil if the row count no longer matches the
// cached solve — a bound flipped between one- and two-sided, i.e. the
// structure changed.
func (s *Solver) buildRHS(p *Problem) []float64 {
	s.rhsBNew = growF(s.rhsBNew, s.rhsM)
	row := 0
	for _, con := range p.cons {
		rhs := con.rhs
		for _, t := range con.expr.Terms {
			rhs -= t.Coeff * s.forms[t.Var].shift
		}
		if row >= s.rhsM {
			return nil
		}
		s.rhsBNew[row] = rhs
		row++
	}
	for _, v := range p.vars {
		if !math.IsInf(v.lo, -1) && !math.IsInf(v.hi, 1) {
			if row >= s.rhsM {
				return nil
			}
			if v.hi > v.lo {
				s.rhsBNew[row] = v.hi - v.lo
			} else {
				s.rhsBNew[row] = 0
			}
			row++
		}
	}
	return s.rhsBNew[:row]
}

// ResolveRHS re-solves p assuming ONLY constraint right-hand sides (and/or
// two-sided bound gaps) changed since the last successful solve on this
// solver. If the cached optimal basis is still primal feasible under the new
// b, the new optimum is produced with zero pivots; otherwise — or when no
// factors are cached, the structure fingerprint differs, or a changed row
// has no slack column — it falls back to Solve's normal warm/cold path,
// which is always correct.
//
// Contract: between the cached solve and this call, the caller must not have
// changed variable count or one-sided bounds, constraint count, relations,
// coefficients, or the objective (use SetConstraintRHS for the intended
// mutation). The fast path cannot detect coefficient edits and would return
// a stale vertex; structural edits are caught by the fingerprint and fall
// back. Requires KeepRHSFactors to have been set before the cached solve.
func (s *Solver) ResolveRHS(p *Problem) *Solution {
	if s.lastRevised && s.resolveMethod(p) != MethodDense {
		return s.resolveRHSRevised(p)
	}
	if !s.rhsReady || len(p.vars) != s.rhsNV || len(p.cons) != s.rhsNC ||
		len(s.warmBasis) != s.rhsM {
		return s.Solve(p)
	}
	s.Stats.RHSAttempts.Add(1)
	var t0 time.Time
	if s.Obs != nil {
		t0 = time.Now()
	}
	m := s.rhsM
	bNew := s.buildRHS(p)
	if bNew == nil || len(bNew) != m {
		// A bound flipped between two-sided and one-sided: structure changed.
		return s.Solve(p)
	}

	// xB_new = xB_old + Σ_r Δb_r · B⁻¹e_r over the changed rows.
	s.rhsXBNew = growF(s.rhsXBNew, m)
	xb := s.rhsXBNew
	copy(xb, s.rhsXB[:m])
	for r := 0; r < m; r++ {
		d := bNew[r] - s.rhsPrevB[r]
		if d == 0 {
			continue
		}
		if s.rowSlackCol[r] < 0 {
			return s.Solve(p) // EQ row changed: no B⁻¹ column cached
		}
		for i := 0; i < m; i++ {
			xb[i] += d * s.rhsBinv[i*m+r]
		}
	}
	for i := 0; i < m; i++ {
		if xb[i] < -rhsFeasEps {
			// Basis went primal infeasible under the new b: the cached vertex
			// is no longer optimal, pivoting is required — fall back.
			return s.Solve(p)
		}
	}

	// Hit: same basis, dual feasibility untouched, primal feasibility just
	// verified — the cached basis is optimal for the new b.
	s.Stats.Solves.Add(1)
	s.Stats.RHSHits.Add(1)
	for i := 0; i < m; i++ {
		if xb[i] < 0 {
			xb[i] = 0
		}
	}
	copy(s.rhsPrevB, bNew)
	copy(s.rhsXB, xb)
	total := s.rhsTotal
	s.xstd = growF(s.xstd, total)
	for i := range s.xstd {
		s.xstd[i] = 0
	}
	for i, bi := range s.warmBasis {
		if bi < total {
			s.xstd[bi] = xb[i]
		}
	}
	sol := &Solution{Status: StatusOptimal}
	s.extract(p, total, sol)
	if s.Obs != nil {
		s.Obs.Histogram("lp.rhs.ms").Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	}
	return sol
}

// resolveRHSRevised is the revised-engine RHS-delta path. An RHS change
// leaves reduced costs untouched, so the retained basis stays DUAL feasible
// unconditionally: recompute x_B under the new b, and either it is still
// primal feasible (zero-pivot hit, same as the dense fast path) or the dual
// simplex repairs the bound violations in a few pivots — PR 5's warm/cold
// fallback becomes a handful of dual pivots. Anything non-optimal falls back
// to the full Solve path, which is always correct.
func (s *Solver) resolveRHSRevised(p *Problem) *Solution {
	rv := s.rev
	// The sfProb identity check matters beyond hygiene: rebuildRHS refreshes
	// only b, so a retained form built from a DIFFERENT problem of the same
	// shape (possible once bases can be loaded into pooled solvers) would
	// silently keep that problem's matrix and costs.
	if rv == nil || !rv.valid || rv.sfProb != p || len(p.vars) != rv.nv || len(p.cons) != rv.nc {
		return s.Solve(p)
	}
	s.Stats.RHSAttempts.Add(1)
	var t0 time.Time
	if s.Obs != nil {
		t0 = time.Now()
	}
	rv.sf.rebuildRHS(p)
	rv.computeXB()

	dualPivots := 0
	if !rv.primalFeasible() {
		maxIter := p.MaxIter
		if maxIter == 0 {
			maxIter = 100*(rv.sf.m+10) + rv.sf.ncols
		}
		st, dp := rv.dual(&s.Stats, maxIter, p.Deadline)
		dualPivots = dp
		if st != StatusOptimal {
			// Includes genuine infeasibility: re-derive it through the full
			// path rather than trusting a tolerance-filtered dual verdict.
			rv.valid = false
			return s.Solve(p)
		}
		s.Stats.DualResolves.Add(1)
		s.Stats.EtaLen.Store(int64(rv.f.nEtas()))
	} else {
		s.Stats.RHSHits.Add(1)
	}

	s.Stats.Solves.Add(1)
	sol := &Solution{Status: StatusOptimal}
	rv.extract(p, sol)
	if s.Obs != nil {
		s.Obs.Histogram("lp.rhs.ms").Observe(float64(time.Since(t0)) / float64(time.Millisecond))
		if dualPivots > 0 {
			s.Obs.Histogram("lp.rhs.dual_pivots").Observe(float64(dualPivots))
		}
	}
	return sol
}
