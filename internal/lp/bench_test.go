package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// buildRandomLP constructs a feasible bounded random LP of the given size.
func buildRandomLP(vars, cons int, seed uint64) *Problem {
	r := rng.New(seed)
	p := NewProblem()
	ids := make([]VarID, vars)
	for i := range ids {
		ids[i] = p.AddVariable("", 0, math.Inf(1))
	}
	obj := NewExpr()
	for _, v := range ids {
		obj.Add(r.Uniform(0.1, 2), v)
	}
	p.SetObjective(Maximize, obj)
	for c := 0; c < cons; c++ {
		e := NewExpr()
		for _, v := range ids {
			if r.Float64() < 0.3 {
				e.Add(r.Uniform(0.1, 1), v)
			}
		}
		p.AddConstraint("", e, LE, r.Uniform(5, 20))
	}
	return p
}

func BenchmarkSimplexSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := buildRandomLP(20, 15, 1)
		if s := p.Solve(); s.Status != StatusOptimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := buildRandomLP(120, 80, 2)
		if s := p.Solve(); s.Status != StatusOptimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}

func BenchmarkClone(b *testing.B) {
	b.ReportAllocs()
	p := buildRandomLP(120, 80, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Clone()
	}
}
