package lp

import (
	"math"
	"testing"
	"time"
)

// TestSimplexBealeCycling drives runSimplex with the canonical tableau of
// Beale's classic cycling LP
//
//	min −0.75x₁ + 150x₂ − 0.02x₃ + 6x₄
//	s.t. 0.25x₁ − 60x₂ − 0.04x₃ + 9x₄ ≤ 0
//	     0.50x₁ − 90x₂ − 0.02x₃ + 3x₄ ≤ 0
//	     x₃ ≤ 1,  x ≥ 0
//
// whose optimum is −0.05 at x = (0.04, 0, 1, 0). Under Dantzig's entering
// rule with this solver's leaving tie-break, the initial degenerate vertex
// cycles FOREVER — every pivot has θ = 0 and the basis sequence repeats —
// so without stall detection the solve exhausts any iteration budget. The
// stall detector must engage Bland's rule and reach the optimum within a
// small budget (the previous maxIter/2 flip made the wasted pivots scale
// with the caller's budget instead of the cycle length).
func TestSimplexBealeCycling(t *testing.T) {
	tab := [][]float64{
		{0.25, -60, -0.04, 9, 1, 0, 0, 0},
		{0.5, -90, -0.02, 3, 0, 1, 0, 0},
		{0, 0, 1, 0, 0, 0, 1, 1},
	}
	basis := []int{4, 5, 6}
	cost := []float64{-0.75, 150, -0.02, 6, 0, 0, 0, 0}
	z := make([]float64, 8)
	obj, _, st := runSimplex(tab, basis, cost, 7, 100, time.Time{}, z)
	if st != StatusOptimal {
		t.Fatalf("status %v, want optimal (cycle not broken within 100 iterations)", st)
	}
	if math.Abs(obj-(-0.05)) > 1e-9 {
		t.Fatalf("objective %v, want -0.05", obj)
	}
}

// TestSimplexDegenerateVertex checks that a legitimately degenerate optimum
// (more tight constraints than dimensions) still solves exactly: stall
// detection must not misread a short degenerate stretch as a cycle and
// degrade the solution.
func TestSimplexDegenerateVertex(t *testing.T) {
	p := NewProblem()
	x1 := p.AddVariable("x1", 0, math.Inf(1))
	x2 := p.AddVariable("x2", 0, math.Inf(1))
	p.AddConstraint("", NewExpr().Add(1, x1), LE, 1)
	p.AddConstraint("", NewExpr().Add(1, x2), LE, 1)
	p.AddConstraint("", NewExpr().Add(1, x1).Add(1, x2), LE, 2)
	p.SetObjective(Maximize, NewExpr().Add(1, x1).Add(1, x2))

	sol := p.Solve()
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("objective %v, want 2", sol.Objective)
	}
}
