package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// relDiff returns |a−b| / max(1, |a|, |b|).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	s := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d / s
}

// buildRandomBoxLP constructs a random LP exercising everything the bounded-
// variable revised simplex must handle: one-sided, two-sided, fixed, and
// free variables; LE/GE/EQ rows; both senses. Rows are anchored on a known
// interior point so most instances are feasible and bounded, but not all —
// status disagreements are themselves assertions.
func buildRandomBoxLP(vars, cons int, seed uint64) *Problem {
	r := rng.New(seed)
	p := NewProblem()
	ids := make([]VarID, vars)
	x0 := make([]float64, vars) // anchor point, respected by every bound
	for i := range ids {
		switch r.Intn(6) {
		case 0: // two-sided box
			lo := r.Uniform(-3, 0)
			ids[i] = p.AddVariable("", lo, lo+r.Uniform(0.5, 4))
			x0[i] = lo + 0.25
		case 1: // upper-bounded only
			hi := r.Uniform(0, 5)
			ids[i] = p.AddVariable("", math.Inf(-1), hi)
			x0[i] = hi - 1
		case 2: // fixed
			v := r.Uniform(-1, 1)
			ids[i] = p.AddVariable("", v, v)
			x0[i] = v
		case 3: // free
			ids[i] = p.AddVariable("", math.Inf(-1), math.Inf(1))
			x0[i] = r.Uniform(-1, 1)
		default: // classic x ≥ 0
			ids[i] = p.AddVariable("", 0, math.Inf(1))
			x0[i] = r.Uniform(0, 2)
		}
	}
	obj := NewExpr()
	for _, v := range ids {
		obj.Add(r.Uniform(-1, 2), v)
	}
	if r.Intn(2) == 0 {
		p.SetObjective(Minimize, obj)
	} else {
		p.SetObjective(Maximize, obj)
	}
	for c := 0; c < cons; c++ {
		e := NewExpr()
		lhs := 0.0
		for i, v := range ids {
			if r.Float64() < 0.4 {
				co := r.Uniform(-1, 1)
				e.Add(co, v)
				lhs += co * x0[i]
			}
		}
		switch r.Intn(3) {
		case 0:
			p.AddConstraint("", e, LE, lhs+r.Uniform(0.1, 3))
		case 1:
			p.AddConstraint("", e, GE, lhs-r.Uniform(0.1, 3))
		default:
			p.AddConstraint("", e, EQ, lhs)
		}
	}
	return p
}

// TestRevisedMatchesDenseRandom pins the revised engine to the dense oracle
// across the randomized suite: statuses must agree, and optimal objectives
// must match to 1e-9 relative.
func TestRevisedMatchesDenseRandom(t *testing.T) {
	shapes := []struct{ vars, cons int }{
		{4, 3}, {8, 5}, {12, 12}, {20, 14}, {30, 18}, {25, 40},
	}
	for _, sh := range shapes {
		for seed := uint64(1); seed <= 40; seed++ {
			p := buildRandomBoxLP(sh.vars, sh.cons, seed*1000+uint64(sh.vars))
			dense := &Solver{Method: MethodDense}
			rev := &Solver{Method: MethodRevised}
			ds := dense.Solve(p)
			rs := rev.Solve(p)
			if ds.Status != rs.Status {
				t.Fatalf("%dx%d seed %d: dense %v, revised %v", sh.vars, sh.cons, seed, ds.Status, rs.Status)
			}
			if ds.Status != StatusOptimal {
				continue
			}
			if d := relDiff(ds.Objective, rs.Objective); d > 1e-9 {
				t.Fatalf("%dx%d seed %d: dense obj %.15g, revised %.15g (rel %.3g)",
					sh.vars, sh.cons, seed, ds.Objective, rs.Objective, d)
			}
		}
	}
}

// TestRevisedMatchesDenseNonNegative covers the legacy generator (only
// x ≥ 0, LE rows, Maximize) at larger shapes.
func TestRevisedMatchesDenseNonNegative(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		p := buildRandomLP(60, 45, seed)
		ds := (&Solver{Method: MethodDense}).Solve(p)
		rs := (&Solver{Method: MethodRevised}).Solve(p)
		if ds.Status != StatusOptimal || rs.Status != StatusOptimal {
			t.Fatalf("seed %d: dense %v revised %v", seed, ds.Status, rs.Status)
		}
		if d := relDiff(ds.Objective, rs.Objective); d > 1e-9 {
			t.Fatalf("seed %d: dense obj %.15g revised %.15g (rel %.3g)", seed, ds.Objective, rs.Objective, d)
		}
	}
}

// TestRevisedWarmStart mirrors TestWarmStartEquivalence for the revised
// engine: a perturbed solve sequence must hit the retained basis and match
// cold objectives.
func TestRevisedWarmStart(t *testing.T) {
	r := rng.New(11)
	warm := &Solver{Method: MethodRevised}
	p := NewProblem()
	base := []float64{3, 5, 2}
	caps := []float64{4, 4, 4, 4}
	for iter := 0; iter < 25; iter++ {
		d := make([]float64, len(base))
		for i := range d {
			d[i] = base[i] * (0.8 + 0.4*r.Float64())
		}
		buildTransportLP(p, d, caps)
		got := warm.Solve(p)
		if got.Status != StatusOptimal {
			t.Fatalf("iter %d: warm revised status %v", iter, got.Status)
		}
		buildTransportLP(p, d, caps)
		want := (&Solver{Method: MethodDense}).Solve(p)
		if want.Status != StatusOptimal {
			t.Fatalf("iter %d: dense oracle status %v", iter, want.Status)
		}
		if d := relDiff(got.Objective, want.Objective); d > 1e-9 {
			t.Fatalf("iter %d: revised %.15g dense %.15g (rel %.3g)", iter, got.Objective, want.Objective, d)
		}
	}
	if warm.Stats.WarmAttempts.Load() == 0 {
		t.Fatal("revised solver never attempted its retained basis")
	}
	if warm.Stats.WarmHits.Load() == 0 {
		t.Fatal("revised solver never completed a warm solve")
	}
	if warm.Stats.Refactors.Load() == 0 {
		t.Fatal("Refactors counter never moved")
	}
}

// TestRevisedInfeasible and TestRevisedUnbounded pin the non-optimal
// statuses.
func TestRevisedInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	e := NewExpr()
	e.Add(1, x)
	e.Add(1, y)
	p.AddConstraint("", e, LE, 1)
	e2 := NewExpr()
	e2.Add(1, x)
	e2.Add(1, y)
	p.AddConstraint("", e2, GE, 3)
	obj := NewExpr()
	obj.Add(1, x)
	p.SetObjective(Minimize, obj)
	s := (&Solver{Method: MethodRevised}).Solve(p)
	if s.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestRevisedUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	e := NewExpr()
	e.Add(1, x)
	e.Add(-1, y)
	p.AddConstraint("", e, LE, 1)
	obj := NewExpr()
	obj.Add(1, x)
	obj.Add(1, y)
	p.SetObjective(Maximize, obj)
	s := (&Solver{Method: MethodRevised}).Solve(p)
	if s.Status != StatusUnbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

// TestRevisedDualResolveRHS is the tentpole's contract test: randomized RHS
// perturbations that deliberately break primal feasibility of the retained
// basis must be repaired by the dual simplex, matching a pristine cold solve
// to 1e-9 rel while never exceeding the cold solve's pivot count.
func TestRevisedDualResolveRHS(t *testing.T) {
	r := rng.New(23)
	s := &Solver{Method: MethodRevised}
	p := NewProblem()
	base := []float64{6, 9, 4}
	caps := []float64{7, 7, 7, 7}
	buildTransportLP(p, base, caps)
	if got := s.Solve(p); got.Status != StatusOptimal {
		t.Fatalf("base solve status %v", got.Status)
	}

	dualTotal := 0
	for iter := 0; iter < 30; iter++ {
		// Large swings so the retained basis routinely goes primal
		// infeasible — the zero-pivot path must not be the only one tested.
		// The upper factor keeps worst-case total demand under total capacity
		// so every perturbed instance stays feasible.
		for i := range base {
			p.SetConstraintRHS(i, base[i]*r.Uniform(0.4, 1.4))
		}
		preDual := s.Stats.DualPivots.Load()
		got := s.ResolveRHS(p)
		if got.Status != StatusOptimal {
			t.Fatalf("iter %d: resolve status %v", iter, got.Status)
		}
		dualPivots := int(s.Stats.DualPivots.Load() - preDual)
		dualTotal += dualPivots

		cold := &Solver{Method: MethodRevised}
		want := cold.Solve(p)
		if want.Status != StatusOptimal {
			t.Fatalf("iter %d: pristine cold status %v", iter, want.Status)
		}
		if d := relDiff(got.Objective, want.Objective); d > 1e-9 {
			t.Fatalf("iter %d: dual-path obj %.15g, cold %.15g (rel %.3g)",
				iter, got.Objective, want.Objective, d)
		}
		coldPivots := int(cold.Stats.Pivots.Load())
		if dualPivots > coldPivots {
			t.Fatalf("iter %d: dual path took %d pivots, cold solve only %d",
				iter, dualPivots, coldPivots)
		}
	}
	if s.Stats.RHSAttempts.Load() == 0 {
		t.Fatal("ResolveRHS never reached the revised fast path")
	}
	if s.Stats.DualResolves.Load() == 0 {
		t.Fatal("no perturbation exercised the dual simplex — widen the swings")
	}
	if s.Stats.ColdSolves.Load() != 1 {
		t.Fatalf("ColdSolves = %d, want 1 (only the base solve)", s.Stats.ColdSolves.Load())
	}
	t.Logf("dual pivots across 30 resolves: %d (resolves via dual: %d, zero-pivot hits: %d)",
		dualTotal, s.Stats.DualResolves.Load(), s.Stats.RHSHits.Load())
}

// TestRevisedPivotPhaseSplit checks the new SolverStats phase counters add
// up on both engines.
func TestRevisedPivotPhaseSplit(t *testing.T) {
	for _, m := range []Method{MethodDense, MethodRevised} {
		s := &Solver{Method: m}
		p := buildRandomBoxLP(20, 14, 99)
		if got := s.Solve(p); got.Status == StatusOptimal {
			snap := s.Stats.Snapshot()
			if snap.Phase1Pivots+snap.Phase2Pivots != snap.Pivots {
				t.Fatalf("%v: phase1 %d + phase2 %d != pivots %d",
					m, snap.Phase1Pivots, snap.Phase2Pivots, snap.Pivots)
			}
		}
	}
}

// TestParseMethod covers the flag spellings.
func TestParseMethod(t *testing.T) {
	cases := map[string]Method{"auto": MethodAuto, "": MethodAuto, "dense": MethodDense, "revised": MethodRevised, "sparse": MethodRevised}
	for in, want := range cases {
		got, ok := ParseMethod(in)
		if !ok || got != want {
			t.Fatalf("ParseMethod(%q) = %v, %v", in, got, ok)
		}
	}
	if _, ok := ParseMethod("bogus"); ok {
		t.Fatal("ParseMethod accepted bogus")
	}
	if MethodRevised.String() != "revised" || MethodDense.String() != "dense" || MethodAuto.String() != "auto" {
		t.Fatal("Method.String mismatch")
	}
}
