package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// mutateBounds applies one random bound tightening or widening to a variable
// of p, keeping lo ≤ hi and both bounds finite-or-as-before, and returns
// whether it changed anything. Mirrors the branch-and-bound mutation shape:
// a single-variable box edit between solves.
func mutateBounds(p *Problem, r *rng.RNG) bool {
	n := p.NumVars()
	if n == 0 {
		return false
	}
	v := VarID(r.Intn(n))
	lo, hi := p.VarBounds(v)
	switch r.Intn(3) {
	case 0: // tighten lower toward the middle of the (finite) box
		nlo := lo
		if math.IsInf(lo, -1) {
			nlo = -3 + r.Uniform(0, 2)
		} else {
			nlo = lo + r.Uniform(0, 0.5)
		}
		if nlo > hi {
			nlo = hi
		}
		if nlo == lo {
			return false
		}
		p.SetVarBounds(v, nlo, hi)
	case 1: // tighten upper
		nhi := hi
		if math.IsInf(hi, 1) {
			nhi = 3 - r.Uniform(0, 2)
		} else {
			nhi = hi - r.Uniform(0, 0.5)
		}
		if nhi < lo {
			nhi = lo
		}
		if nhi == hi {
			return false
		}
		p.SetVarBounds(v, lo, nhi)
	default: // widen one side (dual feasibility is preserved either way)
		if math.IsInf(lo, -1) {
			return false
		}
		p.SetVarBounds(v, lo-r.Uniform(0, 1), hi)
	}
	return true
}

// TestResolveBoundsRandomizedEquivalence drives a warm solver through chains
// of single-variable bound edits via ResolveBounds and pins every answer to
// a pristine dense cold solve: statuses must agree (including the dual
// simplex's trusted infeasibility verdicts) and optimal objectives must
// match to 1e-9 relative.
func TestResolveBoundsRandomizedEquivalence(t *testing.T) {
	shapes := []struct{ vars, cons int }{
		{4, 3}, {8, 5}, {12, 12}, {20, 14},
	}
	for _, sh := range shapes {
		for seed := uint64(1); seed <= 25; seed++ {
			p := buildRandomBoxLP(sh.vars, sh.cons, seed*77+uint64(sh.cons))
			warm := &Solver{Method: MethodRevised}
			if warm.Solve(p).Status != StatusOptimal {
				continue // need a retained basis to warm from
			}
			r := rng.New(seed * 13)
			for step := 0; step < 8; step++ {
				if !mutateBounds(p, r) {
					continue
				}
				ws := warm.ResolveBounds(p)
				ds := (&Solver{Method: MethodDense}).Solve(p)
				if ws.Status != ds.Status {
					t.Fatalf("%dx%d seed %d step %d: warm %v, dense %v",
						sh.vars, sh.cons, seed, step, ws.Status, ds.Status)
				}
				if ds.Status != StatusOptimal {
					break // chain ends once the box empties
				}
				if d := relDiff(ws.Objective, ds.Objective); d > 1e-9 {
					t.Fatalf("%dx%d seed %d step %d: warm obj %.15g, dense %.15g (rel %.3g)",
						sh.vars, sh.cons, seed, step, ws.Objective, ds.Objective, d)
				}
			}
		}
	}
}

// TestResolveBoundsHitStats checks the fast path actually engages on a
// bound tightening: BoundAttempts and BoundHits advance and no cold solve
// is charged for the re-solve.
func TestResolveBoundsHitStats(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 10)
	y := p.AddVariable("y", 0, 10)
	obj := NewExpr()
	obj.Add(1, x)
	obj.Add(1, y)
	p.SetObjective(Maximize, obj)
	e := NewExpr()
	e.Add(1, x)
	e.Add(1, y)
	p.AddConstraint("cap", e, LE, 12)

	s := &Solver{Method: MethodRevised}
	if st := s.Solve(p).Status; st != StatusOptimal {
		t.Fatalf("base solve: %v", st)
	}
	cold := s.Stats.ColdSolves.Load()
	p.SetVarBounds(x, 0, 3) // optimum moves: x=3, y=9
	sol := s.ResolveBounds(p)
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-12) > 1e-9 {
		t.Fatalf("resolve: %v obj %g", sol.Status, sol.Objective)
	}
	if a := s.Stats.BoundAttempts.Load(); a != 1 {
		t.Fatalf("BoundAttempts = %d, want 1", a)
	}
	if h := s.Stats.BoundHits.Load(); h != 1 {
		t.Fatalf("BoundHits = %d, want 1", h)
	}
	if c := s.Stats.ColdSolves.Load(); c != cold {
		t.Fatalf("cold solves advanced %d → %d on the fast path", cold, c)
	}
}

// TestResolveBoundsInfeasibleVerdict pins the trusted dual infeasibility
// verdict against the dense oracle when a tightening empties the feasible
// region.
func TestResolveBoundsInfeasibleVerdict(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, 4)
	y := p.AddVariable("y", 0, 4)
	obj := NewExpr()
	obj.Add(1, x)
	obj.Add(2, y)
	p.SetObjective(Maximize, obj)
	e := NewExpr()
	e.Add(1, x)
	e.Add(1, y)
	p.AddConstraint("need", e, GE, 5)

	s := &Solver{Method: MethodRevised}
	if st := s.Solve(p).Status; st != StatusOptimal {
		t.Fatalf("base solve: %v", st)
	}
	p.SetVarBounds(x, 0, 1)
	p.SetVarBounds(y, 0, 1) // x+y ≥ 5 impossible
	ws := s.ResolveBounds(p)
	ds := (&Solver{Method: MethodDense}).Solve(p)
	if ws.Status != StatusInfeasible || ds.Status != StatusInfeasible {
		t.Fatalf("warm %v dense %v, want both infeasible", ws.Status, ds.Status)
	}
}

// TestBasisSnapshotDeterminism is the parallel-B&B contract at the LP layer:
// ResolveBounds from a loaded snapshot must be bitwise identical whether the
// loading solver is the one that produced the snapshot or a fresh solver
// with arbitrary prior history.
func TestBasisSnapshotDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		p := buildRandomBoxLP(10, 8, seed*991)
		producer := &Solver{Method: MethodRevised}
		if producer.Solve(p).Status != StatusOptimal {
			continue
		}
		var snap Basis
		if !producer.SaveBasis(&snap) {
			t.Fatalf("seed %d: SaveBasis failed after optimal revised solve", seed)
		}

		r := rng.New(seed)
		q := p.Clone()
		for !mutateBounds(q, r) {
		}

		// Same snapshot, three differently-seasoned solvers.
		solvers := []*Solver{
			producer,
			{Method: MethodRevised}, // pristine
			{Method: MethodRevised}, // seasoned on an unrelated problem
		}
		solvers[2].Solve(buildRandomBoxLP(7, 6, seed+5000))

		var ref *Solution
		for i, s := range solvers {
			if i != 0 {
				if !s.LoadBasis(&snap) {
					t.Fatalf("seed %d solver %d: LoadBasis failed", seed, i)
				}
			}
			got := s.ResolveBounds(q.Clone())
			if i == 0 {
				ref = got
				continue
			}
			if got.Status != ref.Status {
				t.Fatalf("seed %d solver %d: status %v, want %v", seed, i, got.Status, ref.Status)
			}
			if got.Status != StatusOptimal {
				continue
			}
			if got.Objective != ref.Objective {
				t.Fatalf("seed %d solver %d: objective %x, want %x (not bitwise)",
					seed, i, got.Objective, ref.Objective)
			}
			for j := range got.X {
				if got.X[j] != ref.X[j] {
					t.Fatalf("seed %d solver %d: X[%d] %x vs %x", seed, i, j, got.X[j], ref.X[j])
				}
			}
		}
	}
}

// TestLoadBasisEmpty checks the no-snapshot edge: loading a never-saved
// Basis reports false and leaves the solver cold-solving correctly.
func TestLoadBasisEmpty(t *testing.T) {
	var b Basis
	s := &Solver{Method: MethodRevised}
	if s.LoadBasis(&b) {
		t.Fatal("LoadBasis succeeded on an empty snapshot")
	}
	p := NewProblem()
	x := p.AddVariable("x", 0, 1)
	obj := NewExpr()
	obj.Add(1, x)
	p.SetObjective(Maximize, obj)
	e := NewExpr()
	e.Add(1, x)
	p.AddConstraint("", e, LE, 1)
	if sol := s.ResolveBounds(p); sol.Status != StatusOptimal || math.Abs(sol.Objective-1) > 1e-12 {
		t.Fatalf("fallback solve: %v obj %g", sol.Status, sol.Objective)
	}
}
