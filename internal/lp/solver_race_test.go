package lp

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestStatsConcurrentScrape is the regression test for the SolverStats data
// race: the counters were plain ints, so any reader scraping a solver's
// stats while Solve was in flight raced with the increments (run this under
// -race to see the old layout fail). A dedicated reader goroutine snapshots
// continuously while the owner goroutine solves.
func TestStatsConcurrentScrape(t *testing.T) {
	s := NewSolver()
	s.Obs = obs.NewRegistry()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := s.Stats.Snapshot()
				if snap.WarmHits > snap.WarmAttempts || snap.WarmAttempts > snap.Solves {
					t.Error("snapshot ordering violated")
					return
				}
				_ = snap.WarmHitRatio()
				_ = s.Obs.Snapshot()
			}
		}
	}()

	const solves = 50
	p := NewProblem()
	for i := 0; i < solves; i++ {
		d := []float64{3, 5, 2}
		d[i%3] += float64(i%7) * 0.1
		buildTransportLP(p, d, []float64{4, 4, 4, 4})
		if sol := s.Solve(p); sol.Status != StatusOptimal {
			t.Fatalf("solve %d: status %v", i, sol.Status)
		}
	}
	close(stop)
	wg.Wait()

	snap := s.Stats.Snapshot()
	if snap.Solves != solves {
		t.Fatalf("Solves = %d, want %d", snap.Solves, solves)
	}
	if snap.Pivots == 0 {
		t.Fatal("no pivots recorded across 50 transport solves")
	}
	if got := s.Obs.Snapshot().Histograms["lp.solve.ms"].Count; got != solves {
		t.Fatalf("lp.solve.ms count = %d, want %d", got, solves)
	}
	if got := s.Obs.Snapshot().Histograms["lp.solve.pivots"].Count; got != solves {
		t.Fatalf("lp.solve.pivots count = %d, want %d", got, solves)
	}
}

// TestSnapshotSub pins the delta arithmetic the aggregation layers rely on.
func TestSnapshotSub(t *testing.T) {
	a := SolverStatsSnapshot{Solves: 10, WarmAttempts: 8, WarmHits: 6, ColdSolves: 4, Pivots: 100}
	b := SolverStatsSnapshot{Solves: 7, WarmAttempts: 5, WarmHits: 4, ColdSolves: 3, Pivots: 60}
	d := a.Sub(b)
	if d != (SolverStatsSnapshot{Solves: 3, WarmAttempts: 3, WarmHits: 2, ColdSolves: 1, Pivots: 40}) {
		t.Fatalf("Sub = %+v", d)
	}
	if r := d.WarmHitRatio(); r != 2.0/3.0 {
		t.Fatalf("WarmHitRatio = %v, want 2/3", r)
	}
	if r := (SolverStatsSnapshot{}).WarmHitRatio(); r != 0 {
		t.Fatalf("empty WarmHitRatio = %v, want 0", r)
	}
}
