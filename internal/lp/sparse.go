package lp

import "math"

// This file holds the sparse computational form the revised simplex operates
// on. Instead of the dense solver's standard form (shifted/split variables,
// explicit bound rows, an m×(n+m) tableau), the revised engine keeps the
// model almost verbatim:
//
//	min c·x   s.t.   A x + s = b,   lo_j ≤ x_j ≤ hi_j,   slack bounds by rel
//
// A is stored once in compressed sparse column (CSC) layout; the m slack
// columns are implicit unit vectors (coefficient +1, bounds encoding the
// relation: LE ⇒ s ∈ [0,∞), GE ⇒ s ∈ (−∞,0], EQ ⇒ s ∈ [0,0]). Variable
// bounds — including two-sided boxes, which the dense path materializes as
// extra rows — are handled natively by the bounded-variable simplex, so a
// path-split box constraint costs nothing beyond its bounds entries.
type sparseForm struct {
	n, m  int // structural columns, rows
	ncols int // n + m (slacks appended)

	// CSC of the structural block (columns [0,n)).
	colptr []int32
	rowidx []int32
	vals   []float64

	// Per column (structurals then slacks): bounds and sense-applied cost.
	lo, hi []float64
	cost   []float64

	// Right-hand side (constant-folded by the modeling layer).
	b []float64
}

func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// build converts p into the computational form, reusing all grown buffers.
// Duplicate terms on one (row, var) are combined, matching the dense
// builder's `+=` semantics. Maximize is folded into the costs so the engine
// always minimizes; the Solution objective is recomputed in model space at
// extraction, exactly like the dense path.
func (f *sparseForm) build(p *Problem) {
	n := len(p.vars)
	m := len(p.cons)
	f.n, f.m, f.ncols = n, m, n+m

	// Pass 1: per-column entry counts (duplicates counted; compressed below).
	f.colptr = growI32(f.colptr, n+1)
	for i := range f.colptr {
		f.colptr[i] = 0
	}
	nnz := 0
	for ci := range p.cons {
		for _, t := range p.cons[ci].expr.Terms {
			if int(t.Var) < 0 || int(t.Var) >= n {
				panic(ErrBadModel)
			}
			f.colptr[t.Var+1]++
			nnz++
		}
	}
	for j := 0; j < n; j++ {
		f.colptr[j+1] += f.colptr[j]
	}
	f.rowidx = growI32(f.rowidx, nnz)
	f.vals = growF(f.vals, nnz)

	// Pass 2: scatter terms column-wise. next[j] tracks the fill cursor.
	next := make([]int32, n)
	copy(next, f.colptr[:n])
	for ci := range p.cons {
		for _, t := range p.cons[ci].expr.Terms {
			k := next[t.Var]
			f.rowidx[k] = int32(ci)
			f.vals[k] = t.Coeff
			next[t.Var] = k + 1
		}
	}

	// Pass 3: combine duplicate rows within each column. Rows were appended
	// in constraint order, so duplicates are detected with one sweep
	// comparing against the last kept row.
	w := int32(0)
	for j := 0; j < n; j++ {
		start := f.colptr[j]
		end := f.colptr[j+1]
		f.colptr[j] = w
		for k := start; k < end; k++ {
			if w > f.colptr[j] && f.rowidx[w-1] == f.rowidx[k] {
				f.vals[w-1] += f.vals[k]
				continue
			}
			f.rowidx[w] = f.rowidx[k]
			f.vals[w] = f.vals[k]
			w++
		}
	}
	f.colptr[n] = w

	// Bounds and costs.
	f.lo = growF(f.lo, n+m)
	f.hi = growF(f.hi, n+m)
	f.cost = growF(f.cost, n+m)
	for j, v := range p.vars {
		f.lo[j], f.hi[j] = v.lo, v.hi
		f.cost[j] = 0
	}
	for i, con := range p.cons {
		j := n + i
		f.cost[j] = 0
		switch con.rel {
		case LE:
			f.lo[j], f.hi[j] = 0, math.Inf(1)
		case GE:
			f.lo[j], f.hi[j] = math.Inf(-1), 0
		default: // EQ
			f.lo[j], f.hi[j] = 0, 0
		}
	}
	sense := 1.0
	if p.objSense == Maximize {
		sense = -1
	}
	for _, t := range p.objExpr.Terms {
		f.cost[t.Var] += sense * t.Coeff
	}

	f.b = growF(f.b, m)
	for i, con := range p.cons {
		f.b[i] = con.rhs
	}
}

// rebuildRHS refreshes only f.b from p — the ResolveRHS mutation. In the
// computational form the right-hand side is the model rhs verbatim (no bound
// shifts), so this is a straight copy.
func (f *sparseForm) rebuildRHS(p *Problem) {
	for i := range p.cons {
		f.b[i] = p.cons[i].rhs
	}
}

// rebuildBounds refreshes only the structural-column bounds from p — the
// ResolveBounds mutation. Slack bounds encode constraint relations, which a
// bound edit cannot change, and costs/A are untouched by construction, so
// the rest of the computational form stays valid.
func (f *sparseForm) rebuildBounds(p *Problem) {
	for j := range p.vars {
		f.lo[j], f.hi[j] = p.vars[j].lo, p.vars[j].hi
	}
}

// column iterates column j (structural or slack) as (rows, vals) slices.
// Slack columns return the cached unit entry.
func (f *sparseForm) column(j int, unitRow *[1]int32, unitVal *[1]float64) ([]int32, []float64) {
	if j < f.n {
		return f.rowidx[f.colptr[j]:f.colptr[j+1]], f.vals[f.colptr[j]:f.colptr[j+1]]
	}
	unitRow[0] = int32(j - f.n)
	unitVal[0] = 1
	return unitRow[:], unitVal[:]
}

// dotColumn returns y·a_j without materializing slack columns.
func (f *sparseForm) dotColumn(y []float64, j int) float64 {
	if j >= f.n {
		return y[j-f.n]
	}
	s := 0.0
	for k := f.colptr[j]; k < f.colptr[j+1]; k++ {
		s += y[f.rowidx[k]] * f.vals[k]
	}
	return s
}

// scatterColumn adds coeff·a_j into the dense vector x.
func (f *sparseForm) scatterColumn(x []float64, j int, coeff float64) {
	if j >= f.n {
		x[j-f.n] += coeff
		return
	}
	for k := f.colptr[j]; k < f.colptr[j+1]; k++ {
		x[f.rowidx[k]] += coeff * f.vals[k]
	}
}
