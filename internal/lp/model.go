package lp

import (
	"fmt"
	"time"
)

// Sense selects the optimization direction.
type Sense int

const (
	// Minimize the objective.
	Minimize Sense = iota
	// Maximize the objective.
	Maximize
)

// Rel is a constraint relation.
type Rel int

const (
	// LE is "<=".
	LE Rel = iota
	// GE is ">=".
	GE
	// EQ is "=".
	EQ
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// VarID identifies a model variable.
type VarID int

// Term is a linear coefficient on a variable.
type Term struct {
	Var   VarID
	Coeff float64
}

// Expr is a linear expression: sum of terms plus a constant.
type Expr struct {
	Terms []Term
	Const float64
}

// NewExpr builds an expression from alternating coefficient, variable pairs.
func NewExpr() *Expr { return &Expr{} }

// Add appends coeff*v to the expression and returns it for chaining.
func (e *Expr) Add(coeff float64, v VarID) *Expr {
	e.Terms = append(e.Terms, Term{Var: v, Coeff: coeff})
	return e
}

// AddConst adds a constant to the expression.
func (e *Expr) AddConst(c float64) *Expr {
	e.Const += c
	return e
}

// Reset empties the expression, keeping its term capacity, so callers can
// reuse one scratch Expr while building many constraints.
func (e *Expr) Reset() *Expr {
	e.Terms = e.Terms[:0]
	e.Const = 0
	return e
}

type variable struct {
	name   string
	lo, hi float64
}

type constraint struct {
	name string
	expr Expr
	rel  Rel
	rhs  float64
}

// Problem is a linear program under construction.
//
// AddConstraint and SetObjective copy the terms they are given into an
// internal arena, so the caller may freely reuse (Reset) one scratch Expr
// across calls. Problem itself is reusable: Reset empties the model while
// retaining all grown capacity, which makes rebuild-and-resolve loops (the
// per-traffic-matrix optimal-MLU LPs) allocation-free in steady state.
type Problem struct {
	vars     []variable
	cons     []constraint
	objSense Sense
	objExpr  Expr
	MaxIter  int // simplex iteration cap; 0 means automatic
	// Deadline, when non-zero, aborts the simplex with StatusIterLimit
	// once passed. Branch-and-bound uses it to keep huge node relaxations
	// from blowing the overall budget.
	Deadline time.Time

	termArena []Term // backing store for interned constraint terms
	objTerms  []Term // backing store for the objective's terms
}

// NewProblem returns an empty LP.
func NewProblem() *Problem {
	return &Problem{objSense: Minimize}
}

// Reset empties the model (variables, constraints, objective) while keeping
// every grown buffer, so the Problem can be rebuilt without allocating.
// MaxIter and Deadline are preserved.
func (p *Problem) Reset() {
	p.vars = p.vars[:0]
	p.cons = p.cons[:0]
	p.objSense = Minimize
	p.objExpr = Expr{}
	p.termArena = p.termArena[:0]
	p.objTerms = p.objTerms[:0]
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return len(p.vars) }

// NumConstraints returns the constraint count.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVariable adds a variable with bounds [lo, hi]. Use math.Inf for
// unbounded sides. An empty name gets an automatic "x<i>" name, generated
// lazily by VarName so the hot path never formats strings.
func (p *Problem) AddVariable(name string, lo, hi float64) VarID {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %s has lo > hi", name))
	}
	p.vars = append(p.vars, variable{name: name, lo: lo, hi: hi})
	return VarID(len(p.vars) - 1)
}

// VarName returns the name of a variable (auto-named variables render as
// "x<index>").
func (p *Problem) VarName(v VarID) string {
	if p.vars[v].name == "" {
		return fmt.Sprintf("x%d", int(v))
	}
	return p.vars[v].name
}

// VarBounds returns the bounds of a variable.
func (p *Problem) VarBounds(v VarID) (lo, hi float64) {
	return p.vars[v].lo, p.vars[v].hi
}

// SetVarBounds tightens (or replaces) the bounds of a variable — the hook
// branch-and-bound uses to branch.
func (p *Problem) SetVarBounds(v VarID, lo, hi float64) {
	if lo > hi {
		panic("lp: SetVarBounds with lo > hi")
	}
	p.vars[v].lo = lo
	p.vars[v].hi = hi
}

// Clone returns a deep copy of the model that can be modified (e.g. bounds
// tightened) without affecting the original.
func (p *Problem) Clone() *Problem {
	c := &Problem{
		vars:     append([]variable{}, p.vars...),
		cons:     make([]constraint, len(p.cons)),
		objSense: p.objSense,
		MaxIter:  p.MaxIter,
		Deadline: p.Deadline,
	}
	for i, con := range p.cons {
		c.cons[i] = constraint{
			name: con.name,
			expr: Expr{Terms: append([]Term{}, con.expr.Terms...), Const: con.expr.Const},
			rel:  con.rel,
			rhs:  con.rhs,
		}
	}
	c.objExpr = Expr{Terms: append([]Term{}, p.objExpr.Terms...), Const: p.objExpr.Const}
	return c
}

// internTerms copies ts into the problem's term arena and returns the
// interned view. Growing the arena may reallocate its backing array; slices
// handed out earlier keep pointing at the old (still valid) memory, so
// interned views are stable until the next Reset.
func (p *Problem) internTerms(ts []Term) []Term {
	start := len(p.termArena)
	p.termArena = append(p.termArena, ts...)
	return p.termArena[start:len(p.termArena):len(p.termArena)]
}

// AddConstraint adds expr rel rhs and returns the constraint's index (its
// insertion order), usable with SetConstraintRHS. The expression's terms are
// copied; the caller keeps ownership of expr.
func (p *Problem) AddConstraint(name string, expr *Expr, rel Rel, rhs float64) int {
	p.cons = append(p.cons, constraint{
		name: name,
		expr: Expr{Terms: p.internTerms(expr.Terms)},
		rel:  rel,
		rhs:  rhs - expr.Const,
	})
	return len(p.cons) - 1
}

// SetConstraintRHS replaces the right-hand side of constraint i (an index
// returned by AddConstraint) without touching its expression — the mutation
// Solver.ResolveRHS is built for. Any constant the original expression
// carried was folded into the stored rhs at AddConstraint time and is NOT
// re-applied here; rhs is interpreted against the constant-free expression.
func (p *Problem) SetConstraintRHS(i int, rhs float64) {
	p.cons[i].rhs = rhs
}

// ConstraintRHS returns the (constant-folded) right-hand side of constraint i.
func (p *Problem) ConstraintRHS(i int) float64 { return p.cons[i].rhs }

// SetObjective sets the optimization sense and objective expression (terms
// are copied; the caller keeps ownership of expr).
func (p *Problem) SetObjective(sense Sense, expr *Expr) {
	p.objSense = sense
	p.objTerms = append(p.objTerms[:0], expr.Terms...)
	p.objExpr = Expr{Terms: p.objTerms, Const: expr.Const}
}

// Solution holds a solve outcome.
type Solution struct {
	Status    Status
	Objective float64
	// X holds a value per model variable (valid when Status == StatusOptimal).
	X []float64
}

// Value returns the solution value of v.
func (s *Solution) Value(v VarID) float64 { return s.X[v] }

// Solve converts the model to standard form and runs the simplex using a
// pooled package-level Solver. Callers that repeatedly solve structurally
// similar problems should hold their own Solver to benefit from basis
// warm-starting deterministically.
func (p *Problem) Solve() *Solution {
	s := getPooledSolver()
	sol := s.Solve(p)
	putPooledSolver(s)
	return sol
}
