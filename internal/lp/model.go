package lp

import (
	"fmt"
	"math"
	"time"
)

// Sense selects the optimization direction.
type Sense int

const (
	// Minimize the objective.
	Minimize Sense = iota
	// Maximize the objective.
	Maximize
)

// Rel is a constraint relation.
type Rel int

const (
	// LE is "<=".
	LE Rel = iota
	// GE is ">=".
	GE
	// EQ is "=".
	EQ
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "?"
	}
}

// VarID identifies a model variable.
type VarID int

// Term is a linear coefficient on a variable.
type Term struct {
	Var   VarID
	Coeff float64
}

// Expr is a linear expression: sum of terms plus a constant.
type Expr struct {
	Terms []Term
	Const float64
}

// NewExpr builds an expression from alternating coefficient, variable pairs.
func NewExpr() *Expr { return &Expr{} }

// Add appends coeff*v to the expression and returns it for chaining.
func (e *Expr) Add(coeff float64, v VarID) *Expr {
	e.Terms = append(e.Terms, Term{Var: v, Coeff: coeff})
	return e
}

// AddConst adds a constant to the expression.
func (e *Expr) AddConst(c float64) *Expr {
	e.Const += c
	return e
}

type variable struct {
	name   string
	lo, hi float64
}

type constraint struct {
	name string
	expr Expr
	rel  Rel
	rhs  float64
}

// Problem is a linear program under construction.
type Problem struct {
	vars     []variable
	cons     []constraint
	objSense Sense
	objExpr  Expr
	MaxIter  int // simplex iteration cap; 0 means automatic
	// Deadline, when non-zero, aborts the simplex with StatusIterLimit
	// once passed. Branch-and-bound uses it to keep huge node relaxations
	// from blowing the overall budget.
	Deadline    time.Time
	nameCounter int
}

// NewProblem returns an empty LP.
func NewProblem() *Problem {
	return &Problem{objSense: Minimize}
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return len(p.vars) }

// NumConstraints returns the constraint count.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVariable adds a variable with bounds [lo, hi]. Use math.Inf for
// unbounded sides. An empty name is auto-generated.
func (p *Problem) AddVariable(name string, lo, hi float64) VarID {
	if name == "" {
		name = fmt.Sprintf("x%d", p.nameCounter)
		p.nameCounter++
	}
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %s has lo > hi", name))
	}
	p.vars = append(p.vars, variable{name: name, lo: lo, hi: hi})
	return VarID(len(p.vars) - 1)
}

// VarName returns the name of a variable.
func (p *Problem) VarName(v VarID) string { return p.vars[v].name }

// VarBounds returns the bounds of a variable.
func (p *Problem) VarBounds(v VarID) (lo, hi float64) {
	return p.vars[v].lo, p.vars[v].hi
}

// SetVarBounds tightens (or replaces) the bounds of a variable — the hook
// branch-and-bound uses to branch.
func (p *Problem) SetVarBounds(v VarID, lo, hi float64) {
	if lo > hi {
		panic("lp: SetVarBounds with lo > hi")
	}
	p.vars[v].lo = lo
	p.vars[v].hi = hi
}

// Clone returns a deep copy of the model that can be modified (e.g. bounds
// tightened) without affecting the original.
func (p *Problem) Clone() *Problem {
	c := &Problem{
		vars:        append([]variable{}, p.vars...),
		cons:        make([]constraint, len(p.cons)),
		objSense:    p.objSense,
		MaxIter:     p.MaxIter,
		Deadline:    p.Deadline,
		nameCounter: p.nameCounter,
	}
	for i, con := range p.cons {
		c.cons[i] = constraint{
			name: con.name,
			expr: Expr{Terms: append([]Term{}, con.expr.Terms...), Const: con.expr.Const},
			rel:  con.rel,
			rhs:  con.rhs,
		}
	}
	c.objExpr = Expr{Terms: append([]Term{}, p.objExpr.Terms...), Const: p.objExpr.Const}
	return c
}

// AddConstraint adds expr rel rhs.
func (p *Problem) AddConstraint(name string, expr *Expr, rel Rel, rhs float64) {
	if name == "" {
		name = fmt.Sprintf("c%d", len(p.cons))
	}
	p.cons = append(p.cons, constraint{name: name, expr: *expr, rel: rel, rhs: rhs - expr.Const})
}

// SetObjective sets the optimization sense and objective expression.
func (p *Problem) SetObjective(sense Sense, expr *Expr) {
	p.objSense = sense
	p.objExpr = *expr
}

// Solution holds a solve outcome.
type Solution struct {
	Status    Status
	Objective float64
	// X holds a value per model variable (valid when Status == StatusOptimal).
	X []float64
}

// Value returns the solution value of v.
func (s *Solution) Value(v VarID) float64 { return s.X[v] }

// Solve converts the model to standard form and runs the simplex.
//
// Conversion: each variable x with bounds [lo, hi] becomes a shifted
// non-negative variable; a free variable becomes the difference of two
// non-negative variables; finite upper bounds become explicit constraints.
// Inequalities gain slack/surplus variables.
func (p *Problem) Solve() *Solution {
	nv := len(p.vars)
	// Per-variable transform: x = lo + u            (lo finite)
	//                         x = hi - u            (only hi finite)
	//                         x = u+ - u-           (free)
	type xform struct {
		posCol int     // column of u (or u+)
		negCol int     // column of u- for free vars, else -1
		shift  float64 // additive constant
		sign   float64 // +1 or -1 multiplier on u
	}
	forms := make([]xform, nv)
	ncols := 0
	for i, v := range p.vars {
		switch {
		case !math.IsInf(v.lo, -1):
			forms[i] = xform{posCol: ncols, negCol: -1, shift: v.lo, sign: 1}
			ncols++
		case !math.IsInf(v.hi, 1):
			forms[i] = xform{posCol: ncols, negCol: -1, shift: v.hi, sign: -1}
			ncols++
		default:
			forms[i] = xform{posCol: ncols, negCol: ncols + 1, shift: 0, sign: 1}
			ncols += 2
		}
	}

	// Collect all rows: model constraints plus finite-bound rows not already
	// encoded by the shift.
	type row struct {
		coeffs map[int]float64
		rel    Rel
		rhs    float64
	}
	var rows []row
	addTermsToRow := func(r *row, v VarID, coeff float64) {
		f := forms[v]
		r.coeffs[f.posCol] += coeff * f.sign
		if f.negCol >= 0 {
			r.coeffs[f.negCol] -= coeff
		}
		r.rhs -= coeff * f.shift
	}
	for _, c := range p.cons {
		r := row{coeffs: make(map[int]float64), rel: c.rel, rhs: c.rhs}
		for _, t := range c.expr.Terms {
			if int(t.Var) < 0 || int(t.Var) >= nv {
				panic(ErrBadModel)
			}
			addTermsToRow(&r, t.Var, t.Coeff)
		}
		rows = append(rows, r)
	}
	// Bounds rows for variables with both bounds finite: lo + u <= hi.
	for i, v := range p.vars {
		if !math.IsInf(v.lo, -1) && !math.IsInf(v.hi, 1) && v.hi > v.lo {
			r := row{coeffs: map[int]float64{forms[i].posCol: 1}, rel: LE, rhs: v.hi - v.lo}
			rows = append(rows, r)
		} else if v.hi == v.lo {
			r := row{coeffs: map[int]float64{forms[i].posCol: 1}, rel: EQ, rhs: 0}
			rows = append(rows, r)
		}
	}

	// Add slacks.
	nslack := 0
	for _, r := range rows {
		if r.rel != EQ {
			nslack++
		}
	}
	total := ncols + nslack
	a := make([][]float64, len(rows))
	b := make([]float64, len(rows))
	si := ncols
	for i, r := range rows {
		a[i] = make([]float64, total)
		for col, coeff := range r.coeffs {
			a[i][col] = coeff
		}
		b[i] = r.rhs
		switch r.rel {
		case LE:
			a[i][si] = 1
			si++
		case GE:
			a[i][si] = -1
			si++
		}
	}

	// Objective in standard columns.
	c := make([]float64, total)
	objConst := p.objExpr.Const
	sense := 1.0
	if p.objSense == Maximize {
		sense = -1
	}
	for _, t := range p.objExpr.Terms {
		f := forms[t.Var]
		c[f.posCol] += sense * t.Coeff * f.sign
		if f.negCol >= 0 {
			c[f.negCol] -= sense * t.Coeff
		}
		objConst += 0 // shifts contribute a constant handled below
	}
	shiftConst := 0.0
	for _, t := range p.objExpr.Terms {
		shiftConst += t.Coeff * forms[t.Var].shift
	}

	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 200 * (total + len(rows) + 10)
	}
	res := solveStandard(a, b, c, maxIter, p.Deadline)
	sol := &Solution{Status: res.status}
	if res.status != StatusOptimal {
		return sol
	}
	// Map back to model variables.
	sol.X = make([]float64, nv)
	for i := range p.vars {
		f := forms[i]
		u := res.x[f.posCol]
		x := f.shift + f.sign*u
		if f.negCol >= 0 {
			x -= res.x[f.negCol]
		}
		sol.X[i] = x
	}
	obj := shiftConst + objConst
	for _, t := range p.objExpr.Terms {
		obj += t.Coeff * (sol.X[t.Var] - forms[t.Var].shift)
	}
	// Recompute objective directly for clarity and to avoid transform drift.
	obj = p.objExpr.Const
	for _, t := range p.objExpr.Terms {
		obj += t.Coeff * sol.X[t.Var]
	}
	sol.Objective = obj
	return sol
}
