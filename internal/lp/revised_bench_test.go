package lp

import (
	"testing"

	"repro/internal/rng"
)

// benchTransport builds a 24-source × 32-route transportation LP (768
// variables, 56 rows) with enough slack capacity that random demand
// perturbations stay feasible — big enough that pivot counts separate the
// engines, small enough that the dense leg stays quick.
func benchTransport(p *Problem, r *rng.RNG) (d, caps []float64) {
	d = make([]float64, 24)
	caps = make([]float64, 32)
	total := 0.0
	for i := range d {
		d[i] = r.Uniform(1, 5)
		total += d[i]
	}
	for j := range caps {
		caps[j] = total / float64(len(caps)) * r.Uniform(1.2, 1.8)
	}
	buildTransportLP(p, d, caps)
	return d, caps
}

// BenchmarkColdSolve pits the two engines on identical cold solves of the
// same instance and reports pivot counts alongside wall time.
func BenchmarkColdSolve(b *testing.B) {
	for _, eng := range []struct {
		name string
		m    Method
	}{{"dense", MethodDense}, {"revised", MethodRevised}} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			p := NewProblem()
			benchTransport(p, rng.New(11))
			var pivots int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewSolver()
				s.Method = eng.m
				if sol := s.Solve(p); sol.Status != StatusOptimal {
					b.Fatalf("status %v", sol.Status)
				}
				pivots += s.Stats.Pivots.Load()
			}
			b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
		})
	}
}

// BenchmarkResolveRHS measures the tentpole's RHS-delta contract. Each op
// perturbs the demand rows of a solved transportation LP and re-solves:
//
//   - dual: ResolveRHS on the retained revised basis — a handful of
//     dual-simplex pivots (dual-pivots/op) when the perturbation breaks
//     primal feasibility, zero when it doesn't;
//   - cold: a pristine revised Solve of the identical perturbed instance —
//     the pivot count the dual path is saving (pivots/op).
//
// The committed BENCH_PR6.json carries the measured pivot-count win.
func BenchmarkResolveRHS(b *testing.B) {
	b.Run("dual", func(b *testing.B) {
		b.ReportAllocs()
		r := rng.New(7)
		p := NewProblem()
		d, _ := benchTransport(p, rng.New(11))
		s := NewSolver()
		s.Method = MethodRevised
		if sol := s.Solve(p); sol.Status != StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
		prePivots := s.Stats.Pivots.Load()
		preDual := s.Stats.DualPivots.Load()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for row := range d {
				p.SetConstraintRHS(row, d[row]*r.Uniform(0.5, 1.3))
			}
			if sol := s.ResolveRHS(p); sol.Status != StatusOptimal {
				b.Fatalf("status %v", sol.Status)
			}
		}
		b.ReportMetric(float64(s.Stats.Pivots.Load()-prePivots)/float64(b.N), "pivots/op")
		b.ReportMetric(float64(s.Stats.DualPivots.Load()-preDual)/float64(b.N), "dual-pivots/op")
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		r := rng.New(7)
		p := NewProblem()
		d, _ := benchTransport(p, rng.New(11))
		var pivots int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for row := range d {
				p.SetConstraintRHS(row, d[row]*r.Uniform(0.5, 1.3))
			}
			s := NewSolver()
			s.Method = MethodRevised
			if sol := s.Solve(p); sol.Status != StatusOptimal {
				b.Fatalf("status %v", sol.Status)
			}
			pivots += s.Stats.Pivots.Load()
		}
		b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
	})
}
