// Package lp implements a small linear-programming toolkit: a modeling layer
// (variables, linear constraints, min/max objectives) and a two-phase dense
// primal simplex solver with optimal-basis warm-starting (see Solver).
//
// The paper's pipeline needs LP in three places: computing the optimal MLU
// that the performance ratio (Eq. 2) compares against, the total-flow and
// concurrent-flow objectives of §4, and as the relaxation engine inside the
// branch-and-bound MILP used by the MetaOpt-style white-box baseline.
package lp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Status describes the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal bounded solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means no point satisfies all constraints.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded in the optimize
	// direction.
	StatusUnbounded
	// StatusIterLimit means the iteration cap was hit before convergence.
	StatusIterLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

const (
	eps      = 1e-9
	pivotEps = 1e-9

	// stallEps is the ratio-test step θ below which a pivot counts as
	// degenerate (the entering variable cannot move, so the objective is
	// unchanged); after max(stallWindow, 2m) consecutive degenerate pivots
	// Bland's anti-cycling rule engages. θ, not the objective delta, is the
	// right degeneracy signal: on demands spanning many orders of magnitude a
	// genuinely improving pivot can move the objective by less than any
	// absolute threshold while θ stays O(1). The window scales with the row
	// count because highly degenerate vertices support legitimate (and
	// numerically healthier) Dantzig walks of up to O(m) zero-step pivots,
	// while true cycles are short (the classic examples have period six) and
	// keep spinning until any finite window catches them.
	stallEps    = 1e-9
	stallWindow = 32
)

// runSimplex optimizes the tableau in place. Columns >= allowCols are never
// chosen to enter the basis. z is caller-provided scratch of at least the
// tableau width (it holds the reduced-cost row). Returns the objective value
// for the given cost vector, the number of pivots performed (the telemetry
// layer's per-solve work measure) and a status. The deadline, when set, is
// polled every 64 pivots — often enough to bound overruns, rare enough that
// the clock read never shows up in profiles.
func runSimplex(t [][]float64, basis []int, cost []float64, allowCols, maxIter int, deadline time.Time, z []float64) (float64, int, Status) {
	m := len(t)
	if m == 0 {
		return 0, 0, StatusOptimal
	}
	pivots := 0
	width := len(t[0])
	// Reduced-cost row: z[j] = cost[j] - cB · column j. Maintain it
	// explicitly alongside the tableau.
	z = z[:width]
	copy(z, cost)
	zVal := 0.0
	for i, bi := range basis {
		cb := cost[bi]
		if cb == 0 {
			continue
		}
		row := t[i]
		for j := 0; j < width; j++ {
			z[j] -= cb * row[j]
		}
		zVal += cb * row[width-1]
	}

	// Anti-cycling: Dantzig's rule is fastest but can cycle on degenerate
	// vertices. Instead of flipping to Bland's rule at an arbitrary iteration
	// count (which lets a cycle near the start spin for half the budget),
	// watch for stalling: a run of consecutive degenerate pivots longer than
	// the window engages Bland's rule — which provably terminates — until
	// real progress resumes.
	useBland := false
	stall := 0
	window := stallWindow
	if 2*m > window {
		window = 2 * m
	}
	for iter := 0; iter < maxIter; iter++ {
		if !deadline.IsZero() && iter%64 == 0 && time.Now().After(deadline) {
			return 0, pivots, StatusIterLimit
		}
		// Entering variable.
		enter := -1
		best := -eps
		for j := 0; j < allowCols; j++ {
			if z[j] < -eps {
				if useBland {
					enter = j
					break
				}
				if z[j] < best {
					best = z[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			// Optimal. Recompute objective from basis values.
			obj := 0.0
			for i, bi := range basis {
				obj += cost[bi] * t[i][width-1]
			}
			return obj, pivots, StatusOptimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > pivotEps {
				ratio := t[i][width-1] / t[i][enter]
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			// No row limits the entering column. The incrementally updated
			// reduced-cost row drifts over long pivot sequences, so a column
			// whose exact reduced cost is ≈ 0 can scan as improving; with no
			// positive tableau entries it would then read as "unbounded" on a
			// provably bounded problem (demand vectors spanning many orders of
			// magnitude trigger exactly this). Recompute the row from the
			// tableau before trusting the verdict.
			recomputeReducedCosts(t, basis, cost, z, width)
			if z[enter] < -eps {
				return 0, pivots, StatusUnbounded
			}
			continue // refreshed row: rescan entering candidates
		}
		// Stall accounting: a degenerate pivot (θ ≈ 0) leaves the objective
		// unchanged, and a run of them is a potential cycle — switch to
		// Bland's rule, which provably terminates, and switch back once the
		// iterate actually moves again. Bland picks the FIRST negative reduced
		// cost, so unlike Dantzig it will happily pivot on an eps-scale drift
		// artifact; refresh the z row from the tableau on engagement and
		// rescan, so its choices are made on clean data.
		if bestRatio <= stallEps {
			stall++
			if stall >= window && !useBland {
				useBland = true
				recomputeReducedCosts(t, basis, cost, z, width)
				continue
			}
		} else {
			stall = 0
			useBland = false
		}
		pivot(t, basis, leave, enter)
		pivots++
		// Update reduced costs.
		factor := z[enter]
		if factor != 0 {
			row := t[leave]
			for j := 0; j < width; j++ {
				z[j] -= factor * row[j]
			}
		}
	}
	return 0, pivots, StatusIterLimit
}

// recomputeReducedCosts rebuilds z[j] = cost[j] − cB·column j exactly from
// the current tableau, discarding accumulated incremental-update error.
func recomputeReducedCosts(t [][]float64, basis []int, cost, z []float64, width int) {
	copy(z, cost[:width])
	for i, bi := range basis {
		cb := cost[bi]
		if cb == 0 {
			continue
		}
		row := t[i]
		for j := 0; j < width; j++ {
			z[j] -= cb * row[j]
		}
	}
}

// pivot performs a Gauss-Jordan pivot at (row, col) and records the basis
// change.
func pivot(t [][]float64, basis []int, row, col int) {
	width := len(t[0])
	pr := t[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j < width; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // kill round-off
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		ri := t[i]
		for j := 0; j < width; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
	basis[row] = col
}

// ErrBadModel reports a malformed model (e.g. unknown variable).
var ErrBadModel = errors.New("lp: malformed model")
