package lp

import "time"

// This file holds the variable-bound warm re-solve path (ResolveBounds) and
// the basis snapshot API (Basis / SaveBasis / LoadBasis) built for
// branch-and-bound: a MILP child node differs from its parent by a single
// tightened variable bound, and in the bounded-variable revised simplex a
// bound change leaves costs and the constraint matrix untouched — the
// retained optimal basis stays DUAL feasible by construction, so the dual
// simplex repairs the (at most one) primal bound violation in a handful of
// pivots instead of a full phase-1/phase-2 cold solve.

// Basis is a reusable snapshot of the revised engine's basis: which columns
// are basic (ordered as factorized) and every column's nonbasic status, plus
// the problem-shape fingerprint it belongs to. It deliberately excludes
// numeric factors — LoadBasis re-factorizes from scratch, so a solve started
// from a snapshot is a pure function of (problem, snapshot), independent of
// the loading solver's history. That property is what makes parallel
// branch-and-bound deterministic: any worker handed the same (node bounds,
// parent basis) pair computes bitwise-identical pivots.
type Basis struct {
	basis  []int32
	vstat  []vstatus
	nv, nc int
}

// SaveBasis copies the solver's current revised basis into b (reusing b's
// buffers) and reports whether a snapshot was available — it is only after a
// successful revised-engine solve. Dense solves and failed solves return
// false and leave b unchanged.
func (s *Solver) SaveBasis(b *Basis) bool {
	rv := s.rev
	if rv == nil || !rv.valid || !s.lastRevised {
		return false
	}
	b.basis = append(b.basis[:0], rv.basis...)
	b.vstat = append(b.vstat[:0], rv.vstat...)
	b.nv, b.nc = rv.nv, rv.nc
	return true
}

// LoadBasis installs a snapshot as the solver's retained revised basis, so
// the next ResolveBounds (or revised Solve) warm-starts from it. The
// partial-pricing cursor is reset along with the load: together with the
// fresh factorization ResolveBounds performs, this erases every trace of the
// solver's prior pivot history, which keeps warm node solves reproducible
// across workers. Reports false for an empty (never-saved) snapshot.
func (s *Solver) LoadBasis(b *Basis) bool {
	if b == nil || (b.nv == 0 && len(b.basis) == 0) {
		return false
	}
	if s.rev == nil {
		s.rev = &revised{}
	}
	rv := s.rev
	rv.basis = append(rv.basis[:0], b.basis...)
	rv.vstat = append(rv.vstat[:0], b.vstat...)
	rv.nv, rv.nc = b.nv, b.nc
	rv.cursor = 0
	rv.valid = true
	s.lastRevised = true
	return true
}

// InvalidateBasis drops every piece of warm-start state — the dense warm
// basis, the RHS factor cache, and the revised engine's retained basis and
// pricing cursor — forcing the next solve cold. Branch-and-bound uses it
// when a node has no usable parent snapshot, so the resulting cold solve is
// identical no matter which pooled solver runs it.
func (s *Solver) InvalidateBasis() {
	s.warmBasis = s.warmBasis[:0]
	s.warmTotal = 0
	s.rhsReady = false
	s.lastRevised = false
	if s.rev != nil {
		s.rev.valid = false
		s.rev.cursor = 0
	}
}

// ResolveBounds re-solves p after a variable-bound-only mutation, reusing
// the retained revised basis. The contract mirrors ResolveRHS: since the
// last successful solve (or LoadBasis), only variable bounds may have
// changed — costs, coefficients, relations, and the RHS must be untouched.
//
// Fast path: refresh the bound arrays of the computational form, normalize
// nonbasic statuses against the new bounds, re-factorize, and check primal
// feasibility. A still-feasible basis is a zero-pivot hit; an infeasible one
// goes to the dual simplex, which is warranted to start dual feasible when
// no status changed (bounds don't enter reduced costs). A conclusive dual
// verdict — optimal or infeasible — is returned directly; anything else
// (iteration/deadline limits, singular basis, shape mismatch, status repair
// that broke dual feasibility) falls back to the full Solve path, which is
// always correct. On the dense engine ResolveBounds degrades to Solve's
// ordinary warm/cold fallback.
//
// The re-factorization is unconditional, not an optimization opportunity:
// starting every bound re-solve from a clean LU of the loaded basis (rather
// than an inherited eta file) is what makes the result independent of the
// solver's history — see Basis.
func (s *Solver) ResolveBounds(p *Problem) *Solution {
	if s.resolveMethod(p) != MethodRevised {
		return s.Solve(p)
	}
	rv := s.rev
	if rv == nil || !rv.valid || rv.nv != len(p.vars) || rv.nc != len(p.cons) || len(p.cons) == 0 {
		return s.Solve(p)
	}
	s.Stats.BoundAttempts.Add(1)
	var t0 time.Time
	if s.Obs != nil {
		t0 = time.Now()
	}
	rv.refactorEvery = s.RefactorEvery
	if rv.refactorEvery <= 0 {
		rv.refactorEvery = DefaultRefactorEvery
	}
	if rv.sfProb != p {
		// Basis loaded into a solver that has not built THIS problem's form —
		// a pooled worker's first node, or a pooled solver whose previous
		// problem happened to share p's shape. Identity, not shape, is the
		// test: an incremental bound refresh on another problem's matrix
		// would silently solve the wrong LP. The form is a pure function of
		// p, so the full build is bitwise identical to a refresh.
		rv.sf.build(p)
		rv.sfProb = p
	} else {
		rv.sf.rebuildBounds(p)
	}
	if rv.sf.m != len(p.cons) || len(rv.basis) != rv.sf.m || len(rv.vstat) != rv.sf.ncols {
		rv.valid = false
		return s.Solve(p)
	}
	rv.growState()
	rv.normalizeStatuses()
	if !rv.refactor(&s.Stats) {
		rv.valid = false
		return s.Solve(p)
	}
	if !rv.dualFeasible() {
		// Pure tightenings preserve dual feasibility (reduced costs don't
		// see bounds, and fixing a column only relaxes its sign condition),
		// so branch-and-bound never takes this exit. Generic callers can:
		// widening can UNFIX a column whose reduced cost was unconstrained
		// while lo == hi, and a status repair can move a variable off a
		// vanished bound. The check is one BTRAN plus a column sweep —
		// cheap next to the refactorization — so it runs unconditionally
		// rather than trusting the caller's mutation discipline.
		rv.valid = false
		return s.Solve(p)
	}
	dualPivots := 0
	if !rv.primalFeasible() {
		maxIter := p.MaxIter
		if maxIter == 0 {
			maxIter = 100*(rv.sf.m+10) + rv.sf.ncols
		}
		st, dp := rv.dual(&s.Stats, maxIter, p.Deadline)
		dualPivots = dp
		switch st {
		case StatusOptimal:
			s.Stats.DualResolves.Add(1)
		case StatusInfeasible:
			// Trust the dual's infeasibility proof, exactly like the revised
			// warm-start path in solveRevised — for branch-and-bound this is
			// the common "tightening emptied the node" outcome and re-deriving
			// it cold would erase the warm-start win.
			rv.valid = false
			s.Stats.Solves.Add(1)
			s.Stats.BoundHits.Add(1)
			s.Stats.EtaLen.Store(int64(rv.f.nEtas()))
			if s.Obs != nil {
				s.Obs.Histogram("lp.bounds.ms").Observe(float64(time.Since(t0)) / float64(time.Millisecond))
				s.Obs.Histogram("lp.bounds.dual_pivots").Observe(float64(dualPivots))
			}
			return &Solution{Status: StatusInfeasible}
		default:
			rv.valid = false
			return s.Solve(p)
		}
	}
	s.Stats.Solves.Add(1)
	s.Stats.BoundHits.Add(1)
	s.Stats.EtaLen.Store(int64(rv.f.nEtas()))
	s.lastRevised = true
	sol := &Solution{Status: StatusOptimal}
	rv.extract(p, sol)
	if s.Obs != nil {
		s.Obs.Histogram("lp.bounds.ms").Observe(float64(time.Since(t0)) / float64(time.Millisecond))
		if dualPivots > 0 {
			s.Obs.Histogram("lp.bounds.dual_pivots").Observe(float64(dualPivots))
		}
	}
	return sol
}
