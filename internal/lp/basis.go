package lp

import "math"

// This file implements the factorized basis behind the revised simplex: a
// sparse LU of the basis matrix B (Gilbert–Peierls left-looking elimination
// with partial pivoting and a triangularity-peeling column preorder) plus a
// product-form eta file for the rank-one basis changes between
// refactorizations. FTRAN solves B z = a (entering columns, basic values),
// BTRAN solves Bᵀ y = c (simplex multipliers, tableau rows); both run in
// O(nnz(L)+nnz(U)+nnz(etas)) against dense work vectors.
//
// Position vs row space: B's k-th column is A[:, basis[k]], so FTRAN maps a
// row-indexed right-hand side to basis-position-indexed coefficients and
// BTRAN the reverse. Eta transforms act purely in position space.

const (
	// luSingularTol declares a basis singular when no pivot candidate in a
	// column exceeds it.
	luSingularTol = 1e-11
	// luDropTol drops eta/L fill entries too small to matter, bounding file
	// growth from cancellation noise.
	luDropTol = 1e-13
	// etaPivotTol is the minimum acceptable eta pivot magnitude; a smaller
	// pivot triggers an early (stability) refactorization.
	etaPivotTol = 1e-8
)

type luFactor struct {
	m int

	// Pivot order: step k eliminated row prow[k]; rowpos is the inverse.
	prow   []int32
	rowpos []int32

	// L (unit diagonal implicit): per step, entries strictly below the pivot,
	// stored (row, value/pivot). Flat CSC-style arrays.
	lstart []int32
	lrow   []int32
	lval   []float64

	// U: per step (column), above-diagonal entries indexed by STEP, plus the
	// diagonal.
	ustart []int32
	urow   []int32
	uval   []float64
	udiag  []float64

	// Eta file: product-form updates appended per pivot since the last
	// refactorization. Entry lists exclude the pivot position.
	estart  []int32
	epos    []int32
	eval    []float64
	epiv    []int32
	epivval []float64

	// Factorization scratch.
	x       []float64
	reach   []int32 // rows touched by the current column
	topo    []int32 // pivoted steps in topological order (reverse postorder)
	stack   []int32
	stackIt []int32
	visited []bool

	// Preorder scratch.
	rowptr, rowlst   []int32
	colcnt, rowcnt   []int32
	fwdq, backq      []int32
	activeR, activeC []bool
	order, tail      []int32
}

// nEtas returns the eta-file length (updates since the last refactorization).
func (f *luFactor) nEtas() int { return len(f.epiv) }

// fillEntries returns the total stored L+U+eta entries — the telemetry
// layer's factor-size measure.
func (f *luFactor) fillEntries() int {
	return len(f.lrow) + len(f.urow) + len(f.epos)
}

// preorder computes a column permutation of basis that peels row/column
// singletons to the triangular fringes, leaving only the irreducible "bump"
// for general elimination — the classical reinversion ordering that keeps LU
// fill near nnz(B) on network-flow bases. The permutation is returned as the
// new basis order (a slice owned by f, valid until the next call).
func (f *luFactor) preorder(sf *sparseForm, basis []int32) []int32 {
	m := f.m
	// Build the row→positions map (CSR of the basis pattern).
	f.rowptr = growI32(f.rowptr, m+1)
	for i := range f.rowptr {
		f.rowptr[i] = 0
	}
	var ur [1]int32
	var uv [1]float64
	nnz := 0
	for _, j := range basis {
		rows, _ := sf.column(int(j), &ur, &uv)
		for _, r := range rows {
			f.rowptr[r+1]++
		}
		nnz += len(rows)
	}
	for r := 0; r < m; r++ {
		f.rowptr[r+1] += f.rowptr[r]
	}
	f.rowlst = growI32(f.rowlst, nnz)
	fillNext := make([]int32, m)
	copy(fillNext, f.rowptr[:m])
	f.colcnt = growI32(f.colcnt, m)
	f.rowcnt = growI32(f.rowcnt, m)
	for r := range f.rowcnt {
		f.rowcnt[r] = 0
	}
	for k, j := range basis {
		rows, _ := sf.column(int(j), &ur, &uv)
		f.colcnt[k] = int32(len(rows))
		for _, r := range rows {
			f.rowlst[fillNext[r]] = int32(k)
			fillNext[r] = fillNext[r] + 1
			f.rowcnt[r]++
		}
	}

	if cap(f.activeR) < m {
		f.activeR = make([]bool, m)
		f.activeC = make([]bool, m)
	}
	activeR, activeC := f.activeR[:m], f.activeC[:m]
	for i := 0; i < m; i++ {
		activeR[i], activeC[i] = true, true
	}
	f.fwdq, f.backq = f.fwdq[:0], f.backq[:0]
	for k := 0; k < m; k++ {
		if f.colcnt[k] == 1 {
			f.fwdq = append(f.fwdq, int32(k))
		}
	}
	for r := 0; r < m; r++ {
		if f.rowcnt[r] == 1 {
			f.backq = append(f.backq, int32(r))
		}
	}
	f.order, f.tail = f.order[:0], f.tail[:0]

	dropCol := func(k int32, keepRow int32) {
		activeC[k] = false
		rows, _ := sf.column(int(basis[k]), &ur, &uv)
		for _, r := range rows {
			if r == keepRow || !activeR[r] {
				continue
			}
			f.rowcnt[r]--
			if f.rowcnt[r] == 1 {
				f.backq = append(f.backq, r)
			}
		}
	}
	dropRow := func(r int32, keepCol int32) {
		activeR[r] = false
		for idx := f.rowptr[r]; idx < f.rowptr[r+1]; idx++ {
			k := f.rowlst[idx]
			if k == keepCol || !activeC[k] {
				continue
			}
			f.colcnt[k]--
			if f.colcnt[k] == 1 {
				f.fwdq = append(f.fwdq, k)
			}
		}
	}

	for len(f.fwdq) > 0 || len(f.backq) > 0 {
		if len(f.fwdq) > 0 {
			k := f.fwdq[len(f.fwdq)-1]
			f.fwdq = f.fwdq[:len(f.fwdq)-1]
			if !activeC[k] || f.colcnt[k] != 1 {
				continue
			}
			// The single active row of column k.
			var pr int32 = -1
			rows, _ := sf.column(int(basis[k]), &ur, &uv)
			for _, r := range rows {
				if activeR[r] {
					pr = r
					break
				}
			}
			if pr < 0 {
				activeC[k] = false
				continue
			}
			f.order = append(f.order, k)
			dropCol(k, pr)
			dropRow(pr, k)
			continue
		}
		r := f.backq[len(f.backq)-1]
		f.backq = f.backq[:len(f.backq)-1]
		if !activeR[r] || f.rowcnt[r] != 1 {
			continue
		}
		var pc int32 = -1
		for idx := f.rowptr[r]; idx < f.rowptr[r+1]; idx++ {
			if activeC[f.rowlst[idx]] {
				pc = f.rowlst[idx]
				break
			}
		}
		if pc < 0 {
			activeR[r] = false
			continue
		}
		f.tail = append(f.tail, pc)
		dropRow(r, pc)
		dropCol(pc, r)
	}
	// Final order: forward triangle, bump (original relative order), reversed
	// backward triangle.
	for k := 0; k < m; k++ {
		if activeC[k] {
			f.order = append(f.order, int32(k))
		}
	}
	for i := len(f.tail) - 1; i >= 0; i-- {
		f.order = append(f.order, f.tail[i])
	}
	// Map positions to basis columns.
	out := append(f.tail[:0], f.order...) // tail's contents were consumed above
	for i := range out {
		out[i] = basis[out[i]]
	}
	return out
}

// factor computes the sparse LU of the basis (columns A[:, basis[k]] in
// order) and clears the eta file. Returns false if the basis is numerically
// singular. The caller is responsible for column ordering (see preorder).
func (f *luFactor) factor(sf *sparseForm, basis []int32) bool {
	m := sf.m
	f.m = m
	f.prow = growI32(f.prow, m)
	f.rowpos = growI32(f.rowpos, m)
	for i := 0; i < m; i++ {
		f.rowpos[i] = -1
	}
	f.lstart = growI32(f.lstart, m+1)
	f.ustart = growI32(f.ustart, m+1)
	f.udiag = growF(f.udiag, m)
	f.lrow, f.lval = f.lrow[:0], f.lval[:0]
	f.urow, f.uval = f.urow[:0], f.uval[:0]
	f.estart = append(f.estart[:0], 0)
	f.epos, f.eval = f.epos[:0], f.eval[:0]
	f.epiv, f.epivval = f.epiv[:0], f.epivval[:0]

	f.x = growF(f.x, m)
	for i := range f.x {
		f.x[i] = 0
	}
	if cap(f.visited) < m {
		f.visited = make([]bool, m)
	}
	visited := f.visited[:m]

	var ur [1]int32
	var uv [1]float64
	for k := 0; k < m; k++ {
		rows, vals := sf.column(int(basis[k]), &ur, &uv)

		// Symbolic: depth-first reach of the column's pattern through the L
		// columns of earlier steps; topo gets pivoted steps in topological
		// order, reach gets every touched row.
		f.reach, f.topo = f.reach[:0], f.topo[:0]
		for _, r0 := range rows {
			if visited[r0] {
				continue
			}
			f.stack = append(f.stack[:0], r0)
			f.stackIt = append(f.stackIt[:0], 0)
			visited[r0] = true
			for len(f.stack) > 0 {
				top := len(f.stack) - 1
				r := f.stack[top]
				s := f.rowpos[r]
				if s < 0 {
					// Unpivoted row: terminal node.
					f.reach = append(f.reach, r)
					f.stack = f.stack[:top]
					f.stackIt = f.stackIt[:top]
					continue
				}
				advanced := false
				for it := f.stackIt[top]; it < f.lstart[s+1]-f.lstart[s]; it++ {
					child := f.lrow[f.lstart[s]+it]
					if !visited[child] {
						visited[child] = true
						f.stackIt[top] = it + 1
						f.stack = append(f.stack, child)
						f.stackIt = append(f.stackIt, 0)
						advanced = true
						break
					}
				}
				if advanced {
					continue
				}
				f.reach = append(f.reach, r)
				f.topo = append(f.topo, s)
				f.stack = f.stack[:top]
				f.stackIt = f.stackIt[:top]
			}
		}

		// Numeric: sparse lower solve against finished columns.
		for i, r := range rows {
			f.x[r] += vals[i] // += combines duplicate rows defensively
		}
		for t := len(f.topo) - 1; t >= 0; t-- {
			s := f.topo[t]
			v := f.x[f.prow[s]]
			if v == 0 {
				continue
			}
			for idx := f.lstart[s]; idx < f.lstart[s+1]; idx++ {
				f.x[f.lrow[idx]] -= f.lval[idx] * v
			}
		}

		// Pivot: largest magnitude among unpivoted reached rows.
		var pr int32 = -1
		best := luSingularTol
		for _, r := range f.reach {
			if f.rowpos[r] >= 0 {
				continue
			}
			if a := math.Abs(f.x[r]); a > best {
				best, pr = a, r
			}
		}
		if pr < 0 {
			// Singular: clean scratch before reporting failure.
			for _, r := range f.reach {
				f.x[r] = 0
				visited[r] = false
			}
			return false
		}

		// Store U column (pivoted rows) and scaled L column (the rest).
		for _, r := range f.reach {
			if s := f.rowpos[r]; s >= 0 {
				if v := f.x[r]; v != 0 {
					f.urow = append(f.urow, s)
					f.uval = append(f.uval, v)
				}
			}
		}
		piv := f.x[pr]
		f.udiag[k] = piv
		for _, r := range f.reach {
			if f.rowpos[r] >= 0 || r == pr {
				continue
			}
			if v := f.x[r] / piv; math.Abs(v) > luDropTol {
				f.lrow = append(f.lrow, r)
				f.lval = append(f.lval, v)
			}
		}
		f.lstart[k+1] = int32(len(f.lrow))
		f.ustart[k+1] = int32(len(f.urow))
		f.prow[k] = pr
		f.rowpos[pr] = int32(k)

		for _, r := range f.reach {
			f.x[r] = 0
			visited[r] = false
		}
	}
	return true
}

// ftran solves B z = rhs. rhs is row-indexed and is consumed (zeroed); out is
// position-indexed. rhs and out must be distinct length-m slices.
func (f *luFactor) ftran(rhs, out []float64) {
	m := f.m
	// L-solve in row space.
	for k := 0; k < m; k++ {
		v := rhs[f.prow[k]]
		if v == 0 {
			continue
		}
		for idx := f.lstart[k]; idx < f.lstart[k+1]; idx++ {
			rhs[f.lrow[idx]] -= f.lval[idx] * v
		}
	}
	// Gather to position space and backward U-solve.
	for k := 0; k < m; k++ {
		out[k] = rhs[f.prow[k]]
		rhs[f.prow[k]] = 0
	}
	for k := m - 1; k >= 0; k-- {
		zk := out[k] / f.udiag[k]
		out[k] = zk
		if zk == 0 {
			continue
		}
		for idx := f.ustart[k]; idx < f.ustart[k+1]; idx++ {
			out[f.urow[idx]] -= f.uval[idx] * zk
		}
	}
	// Eta file, in append order.
	for e := 0; e < len(f.epiv); e++ {
		r := f.epiv[e]
		zr := out[r] / f.epivval[e]
		if zr != 0 {
			for idx := f.estart[e]; idx < f.estart[e+1]; idx++ {
				out[f.epos[idx]] -= f.eval[idx] * zr
			}
		}
		out[r] = zr
	}
}

// btran solves Bᵀ y = c. c is position-indexed and is consumed (zeroed); out
// is row-indexed. c and out must be distinct length-m slices.
func (f *luFactor) btran(c, out []float64) {
	m := f.m
	// Eta transposes, newest first.
	for e := len(f.epiv) - 1; e >= 0; e-- {
		r := f.epiv[e]
		s := c[r]
		for idx := f.estart[e]; idx < f.estart[e+1]; idx++ {
			s -= f.eval[idx] * c[f.epos[idx]]
		}
		c[r] = s / f.epivval[e]
	}
	// Uᵀ forward solve (in place on c).
	for k := 0; k < m; k++ {
		t := c[k]
		for idx := f.ustart[k]; idx < f.ustart[k+1]; idx++ {
			t -= f.uval[idx] * c[f.urow[idx]]
		}
		c[k] = t / f.udiag[k]
	}
	// Lᵀ backward solve, scattering to row space.
	for k := m - 1; k >= 0; k-- {
		t := c[k]
		for idx := f.lstart[k]; idx < f.lstart[k+1]; idx++ {
			t -= f.lval[idx] * out[f.lrow[idx]]
		}
		out[f.prow[k]] = t
		c[k] = 0
	}
}

// appendEta records the basis change "column at position r replaced, with
// FTRAN'd entering column w" as a product-form update. Returns false when
// w[r] is too small to pivot on stably — the caller should refactorize.
func (f *luFactor) appendEta(w []float64, r int) bool {
	pv := w[r]
	if math.Abs(pv) < etaPivotTol {
		return false
	}
	for i, v := range w {
		if i == r || v == 0 {
			continue
		}
		if math.Abs(v) <= luDropTol {
			continue
		}
		f.epos = append(f.epos, int32(i))
		f.eval = append(f.eval, v)
	}
	f.estart = append(f.estart, int32(len(f.epos)))
	f.epiv = append(f.epiv, int32(r))
	f.epivval = append(f.epivval, pv)
	return true
}
