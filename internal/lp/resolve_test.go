package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// buildResolveLP builds
//
//	min x + 2y   s.t.   x + y >= b1,  x <= b2,  y <= b3,  x,y >= 0
//
// whose optimum always pushes as much as possible onto the cheap x.
func buildResolveLP(b1, b2, b3 float64) (*Problem, VarID, VarID) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.AddConstraint("cover", NewExpr().Add(1, x).Add(1, y), GE, b1)
	p.AddConstraint("capx", NewExpr().Add(1, x), LE, b2)
	p.AddConstraint("capy", NewExpr().Add(1, y), LE, b3)
	p.SetObjective(Minimize, NewExpr().Add(1, x).Add(2, y))
	return p, x, y
}

// TestResolveRHSHit pins the fast path: a feasibility-preserving RHS change
// must return the identical optimal basis and objective as a cold solve,
// with zero pivots.
func TestResolveRHSHit(t *testing.T) {
	p, x, y := buildResolveLP(4, 10, 10)
	s := NewSolver()
	s.KeepRHSFactors = true
	if sol := s.Solve(p); sol.Status != StatusOptimal || math.Abs(sol.Objective-4) > 1e-9 {
		t.Fatalf("seed solve: %+v", sol)
	}
	basisBefore := append([]int{}, s.warmBasis...)
	pivotsBefore := s.Stats.Pivots.Load()

	// Raise the covering demand: x moves 4 -> 6, same basis stays feasible.
	p.SetConstraintRHS(0, 6)
	sol := s.ResolveRHS(p)
	if sol.Status != StatusOptimal {
		t.Fatalf("resolve status %v", sol.Status)
	}
	if math.Abs(sol.Objective-6) > 1e-9 || math.Abs(sol.Value(x)-6) > 1e-9 || math.Abs(sol.Value(y)) > 1e-9 {
		t.Fatalf("resolve optimum: obj %g x %g y %g", sol.Objective, sol.Value(x), sol.Value(y))
	}
	if got, want := s.Stats.RHSAttempts.Load(), int64(1); got != want {
		t.Fatalf("RHSAttempts %d, want %d", got, want)
	}
	if got, want := s.Stats.RHSHits.Load(), int64(1); got != want {
		t.Fatalf("RHSHits %d, want %d", got, want)
	}
	if got := s.Stats.Pivots.Load(); got != pivotsBefore {
		t.Fatalf("RHS hit pivoted: %d -> %d", pivotsBefore, got)
	}
	for i, bi := range s.warmBasis {
		if basisBefore[i] != bi {
			t.Fatalf("basis changed on RHS hit: %v -> %v", basisBefore, s.warmBasis)
		}
	}

	// Cross-check objective and vertex against a pristine cold solver.
	cold := NewSolver()
	ref := cold.Solve(p)
	if math.Abs(ref.Objective-sol.Objective) > 1e-9 {
		t.Fatalf("resolve obj %g, cold obj %g", sol.Objective, ref.Objective)
	}
	for i := range ref.X {
		if math.Abs(ref.X[i]-sol.X[i]) > 1e-9 {
			t.Fatalf("vertex mismatch at %d: resolve %v cold %v", i, sol.X, ref.X)
		}
	}
}

// TestResolveRHSFallbackInfeasibleBasis pins the fallback: an RHS change that
// makes the cached basis primal infeasible must still return the CORRECT new
// optimum (via the warm/cold path), never a stale or clamped vertex.
func TestResolveRHSFallbackInfeasibleBasis(t *testing.T) {
	p, x, y := buildResolveLP(6, 10, 10)
	s := NewSolver()
	s.KeepRHSFactors = true
	if sol := s.Solve(p); sol.Status != StatusOptimal {
		t.Fatalf("seed solve: %+v", sol)
	}

	// Choke x's capacity below the covering demand: the all-on-x basis goes
	// infeasible and y must enter.
	p.SetConstraintRHS(1, 3)
	sol := s.ResolveRHS(p)
	if sol.Status != StatusOptimal {
		t.Fatalf("fallback status %v", sol.Status)
	}
	// Optimum: x = 3, y = 3, obj = 3 + 6 = 9.
	if math.Abs(sol.Objective-9) > 1e-9 || math.Abs(sol.Value(x)-3) > 1e-9 || math.Abs(sol.Value(y)-3) > 1e-9 {
		t.Fatalf("fallback optimum: obj %g x %g y %g", sol.Objective, sol.Value(x), sol.Value(y))
	}
	if s.Stats.RHSAttempts.Load() != 1 || s.Stats.RHSHits.Load() != 0 {
		t.Fatalf("stats: attempts %d hits %d, want 1/0",
			s.Stats.RHSAttempts.Load(), s.Stats.RHSHits.Load())
	}
	// The fallback re-captures factors; the next feasible delta hits again.
	p.SetConstraintRHS(0, 5)
	sol = s.ResolveRHS(p)
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-7) > 1e-9 {
		t.Fatalf("post-fallback resolve: %+v", sol)
	}
	if s.Stats.RHSHits.Load() != 1 {
		t.Fatalf("post-fallback RHSHits %d, want 1", s.Stats.RHSHits.Load())
	}
}

// TestResolveRHSEQRowFallsBack: a changed EQ row has no slack column to read
// B⁻¹ from, so the resolve must fall back — and still be right.
func TestResolveRHSEQRowFallsBack(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 0, math.Inf(1))
	y := p.AddVariable("y", 0, math.Inf(1))
	p.AddConstraint("sum", NewExpr().Add(1, x).Add(1, y), EQ, 5)
	p.SetObjective(Minimize, NewExpr().Add(1, x).Add(3, y))
	s := NewSolver()
	s.KeepRHSFactors = true
	if sol := s.Solve(p); sol.Status != StatusOptimal || math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("seed solve: %+v", sol)
	}
	p.SetConstraintRHS(0, 8)
	sol := s.ResolveRHS(p)
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-8) > 1e-9 || math.Abs(sol.Value(x)-8) > 1e-9 {
		t.Fatalf("EQ fallback: %+v", sol)
	}
	if s.Stats.RHSHits.Load() != 0 {
		t.Fatalf("EQ row resolved on the fast path: hits %d", s.Stats.RHSHits.Load())
	}
}

// TestResolveRHSWithoutFactorsIsSolve: a solver without KeepRHSFactors (or
// before any solve) must transparently behave like Solve.
func TestResolveRHSWithoutFactorsIsSolve(t *testing.T) {
	p, _, _ := buildResolveLP(4, 10, 10)
	s := NewSolver()
	sol := s.ResolveRHS(p)
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-4) > 1e-9 {
		t.Fatalf("resolve-as-solve: %+v", sol)
	}
	if s.Stats.RHSAttempts.Load() != 0 {
		t.Fatalf("attempt counted without cached factors")
	}
}

// TestResolveRHSRandomizedEquivalence drives a random min-u flow LP (the
// optimal-MLU shape: demands live purely in b) through long random RHS delta
// sequences and cross-checks every resolve against a pristine cold solver.
func TestResolveRHSRandomizedEquivalence(t *testing.T) {
	const (
		pairs = 6
		K     = 3
		edges = 10
		iters = 60
	)
	r := rng.New(42)

	// Random slot -> edge incidence (each "path" crosses 1-3 edges).
	slotEdges := make([][]int, pairs*K)
	for s := range slotEdges {
		n := 1 + int(r.Uint64()%3)
		seen := map[int]bool{}
		for len(slotEdges[s]) < n {
			e := int(r.Uint64() % edges)
			if !seen[e] {
				seen[e] = true
				slotEdges[s] = append(slotEdges[s], e)
			}
		}
	}
	caps := make([]float64, edges)
	for e := range caps {
		caps[e] = 1 + 4*r.Float64()
	}
	demand := make([]float64, pairs)
	for i := range demand {
		demand[i] = 2 * r.Float64()
	}

	build := func() (*Problem, []int) {
		p := NewProblem()
		u := p.AddVariable("u", 0, math.Inf(1))
		fs := make([]VarID, pairs*K)
		for s := range fs {
			fs[s] = p.AddVariable("", 0, math.Inf(1))
		}
		demandCon := make([]int, pairs)
		e := NewExpr()
		for i := 0; i < pairs; i++ {
			e.Reset()
			for k := 0; k < K; k++ {
				e.Add(1, fs[i*K+k])
			}
			demandCon[i] = p.AddConstraint("", e, GE, demand[i])
		}
		for eid := 0; eid < edges; eid++ {
			e.Reset()
			any := false
			for s, se := range slotEdges {
				for _, x := range se {
					if x == eid {
						e.Add(1, fs[s])
						any = true
						break
					}
				}
			}
			if !any {
				continue
			}
			e.Add(-caps[eid], u)
			p.AddConstraint("", e, LE, 0)
		}
		p.SetObjective(Minimize, NewExpr().Add(1, u))
		return p, demandCon
	}

	p, demandCon := build()
	s := NewSolver()
	s.KeepRHSFactors = true
	if sol := s.Solve(p); sol.Status != StatusOptimal {
		t.Fatalf("seed solve: %+v", sol)
	}

	hits := 0
	for it := 0; it < iters; it++ {
		// Perturb one demand (FD-probe shape) or, occasionally, all of them.
		if it%10 == 9 {
			for i := range demand {
				demand[i] = 2 * r.Float64()
			}
		} else {
			i := int(r.Uint64() % pairs)
			demand[i] = math.Max(0, demand[i]+0.2*(r.Float64()-0.5))
		}
		for i, ci := range demandCon {
			p.SetConstraintRHS(ci, demand[i])
		}
		sol := s.ResolveRHS(p)
		if sol.Status != StatusOptimal {
			t.Fatalf("iter %d: resolve status %v", it, sol.Status)
		}
		ref := NewSolver().Solve(p)
		if ref.Status != StatusOptimal {
			t.Fatalf("iter %d: reference status %v", it, ref.Status)
		}
		tol := 1e-9 * math.Max(1, math.Abs(ref.Objective))
		if math.Abs(sol.Objective-ref.Objective) > tol {
			t.Fatalf("iter %d: resolve obj %.15g, cold obj %.15g", it, sol.Objective, ref.Objective)
		}
	}
	hits = int(s.Stats.RHSHits.Load())
	if hits == 0 {
		t.Fatalf("no RHS hits across %d single-coordinate perturbations", iters)
	}
	t.Logf("rhs hits: %d/%d attempts (%d solves, %d pivots)",
		hits, s.Stats.RHSAttempts.Load(), s.Stats.Solves.Load(), s.Stats.Pivots.Load())
}
