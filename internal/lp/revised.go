package lp

import (
	"math"
	"sort"
	"time"
)

// This file implements the sparse revised simplex: a bounded-variable primal
// simplex (composite phase 1 + phase 2) and a dual simplex, both driven
// through the factorized basis of basis.go over the CSC storage of
// sparse.go. Where the dense engine streams O(rows×cols) tableau memory per
// pivot, the revised engine touches O(nnz) — the entering column, one BTRAN,
// one FTRAN and a pricing pass — which is what lets tegen-grown topologies
// with tens of thousands of rows solve interactively.
//
// Design notes (DESIGN.md §11): nonbasic variables sit at a bound (or at
// zero when free), so two-sided boxes never materialize as rows; phase 1
// minimizes the sum of bound violations with composite costs recomputed per
// iteration; a triangular crash basis covers infeasible rows with structural
// columns before phase 1 ever runs; the dual simplex re-solves an RHS
// perturbation from the retained (still dual-feasible) basis in a handful of
// pivots instead of a cold restart.

const (
	// primalTol mirrors the dense warm-start feasibility tolerance.
	primalTol = 1e-7
	// dualTol is the reduced-cost optimality tolerance (dense eps).
	dualTol = 1e-9
	// dualStartTol is the looser test for "is this basis still dual feasible
	// enough to hand to the dual simplex" on warm starts.
	dualStartTol = 1e-7
	// rsPivotTol is the minimum |w_i| for a row to participate in a ratio
	// test.
	rsPivotTol = 1e-9
	// priceChunk bounds how many eligible-candidate columns a partial pricing
	// pass examines past its first hit before committing to the best seen.
	priceChunk = 1024

	// DefaultRefactorEvery is the eta-file length that triggers a periodic
	// refactorization when Solver.RefactorEvery is zero.
	DefaultRefactorEvery = 64
)

type vstatus byte

const (
	vsBasic vstatus = iota
	vsLower
	vsUpper
	vsFree // nonbasic at value 0, both bounds infinite
)

// revised holds the engine state retained across solves for warm starts and
// RHS-delta dual re-solves.
type revised struct {
	sf sparseForm
	f  luFactor

	basis []int32
	vstat []vstatus
	xB    []float64

	// dense scratch, all length m
	rhs, w, y, cb []float64
	infeas        []int8

	// reduced-cost scratch over columns (dual simplex pricing)
	alpha []float64
	dred  []float64

	// breakpoint scratch for the long-step phase-1 ratio test
	bps []ratioBP

	// partial-pricing cursor
	cursor int

	// nv/nc fingerprint the Problem shape the retained basis belongs to;
	// valid is set only by a successful solve.
	nv, nc int
	valid  bool

	// sfProb identifies the Problem sf was built from. The resolve paths may
	// refresh sf incrementally (rebuildRHS/rebuildBounds) only when the
	// caller hands back the very same Problem — a shape match alone is not
	// enough: a pooled solver whose last problem merely had the same
	// dimensions would otherwise keep its stale matrix and costs.
	sfProb *Problem

	refactorEvery int
}

// ratioBP is one breakpoint of the piecewise-linear phase-1 objective along
// the entering direction: at step t basic row hits a bound and the slope of
// the infeasibility sum bends up by gain = |rate|.
type ratioBP struct {
	t, gain float64
	row     int
	land    vstatus
}

func (rv *revised) value(j int) float64 {
	switch rv.vstat[j] {
	case vsLower:
		return rv.sf.lo[j]
	case vsUpper:
		return rv.sf.hi[j]
	default:
		return 0
	}
}

// normalizeStatuses repairs nonbasic statuses that no longer agree with the
// (possibly changed) bounds — a warm start across bound edits must never
// place a variable at an infinite bound. It reports whether any status
// changed: a changed status can break dual feasibility of the retained
// basis, so callers on the bound-resolve fast path re-check before handing
// the basis to the dual simplex.
func (rv *revised) normalizeStatuses() bool {
	sf := &rv.sf
	changed := false
	for j := 0; j < sf.ncols; j++ {
		switch rv.vstat[j] {
		case vsLower:
			if math.IsInf(sf.lo[j], -1) {
				if !math.IsInf(sf.hi[j], 1) {
					rv.vstat[j] = vsUpper
				} else {
					rv.vstat[j] = vsFree
				}
				changed = true
			}
		case vsUpper:
			if math.IsInf(sf.hi[j], 1) {
				if !math.IsInf(sf.lo[j], -1) {
					rv.vstat[j] = vsLower
				} else {
					rv.vstat[j] = vsFree
				}
				changed = true
			}
		case vsFree:
			if !math.IsInf(sf.lo[j], -1) {
				rv.vstat[j] = vsLower
				changed = true
			} else if !math.IsInf(sf.hi[j], 1) {
				rv.vstat[j] = vsUpper
				changed = true
			}
		}
	}
	return changed
}

func (rv *revised) growState() {
	sf := &rv.sf
	m := sf.m
	rv.xB = growF(rv.xB, m)
	rv.rhs = growF(rv.rhs, m)
	rv.w = growF(rv.w, m)
	rv.y = growF(rv.y, m)
	rv.cb = growF(rv.cb, m)
	if cap(rv.infeas) < m {
		rv.infeas = make([]int8, m)
	}
	rv.infeas = rv.infeas[:m]
	if cap(rv.vstat) < sf.ncols {
		rv.vstat = make([]vstatus, sf.ncols)
	}
	rv.vstat = rv.vstat[:sf.ncols]
}

// coldStart installs the slack basis with every structural at a bound, then
// runs the triangular crash: rows whose slack-basic start would violate the
// slack's own bounds get covered by an unused structural column whose
// topmost nonzero sits in that row (so the crash basis stays lower
// triangular and factors without fill). The crash turns the O(rows) phase-1
// pivot march of flow LPs — one pivot per demand row — into a triangular
// solve.
func (rv *revised) coldStart() {
	sf := &rv.sf
	n, m := sf.n, sf.m
	rv.growState()
	if cap(rv.basis) < m {
		rv.basis = make([]int32, m)
	}
	rv.basis = rv.basis[:m]
	for j := 0; j < n; j++ {
		switch {
		case !math.IsInf(sf.lo[j], -1):
			rv.vstat[j] = vsLower
		case !math.IsInf(sf.hi[j], 1):
			rv.vstat[j] = vsUpper
		default:
			rv.vstat[j] = vsFree
		}
	}
	for i := 0; i < m; i++ {
		rv.basis[i] = int32(n + i)
		rv.vstat[n+i] = vsBasic
	}

	// Residual of each row with every structural at its start value.
	r := rv.rhs
	copy(r, sf.b)
	for j := 0; j < n; j++ {
		if v := rv.value(j); v != 0 {
			sf.scatterColumn(r, j, -v)
		}
	}
	// Bucket structural columns by their topmost row.
	bucket := make([]int32, m)
	for i := range bucket {
		bucket[i] = -1
	}
	bestAbs := make([]float64, m)
	for j := 0; j < n; j++ {
		if sf.colptr[j] == sf.colptr[j+1] || sf.lo[j] == sf.hi[j] {
			continue // empty or fixed column: useless as a crash pivot
		}
		top := sf.rowidx[sf.colptr[j]]
		for k := sf.colptr[j]; k < sf.colptr[j+1]; k++ {
			if sf.rowidx[k] < top {
				top = sf.rowidx[k]
			}
		}
		// |a_{top,j}|: find the entry at the top row.
		var a float64
		for k := sf.colptr[j]; k < sf.colptr[j+1]; k++ {
			if sf.rowidx[k] == top {
				a = math.Abs(sf.vals[k])
				break
			}
		}
		if a < 1e-7 {
			continue
		}
		if bucket[top] < 0 || a > bestAbs[top] {
			bucket[top], bestAbs[top] = int32(j), a
		}
	}
	for i := 0; i < m; i++ {
		slack := n + i
		if r[i] >= sf.lo[slack]-primalTol && r[i] <= sf.hi[slack]+primalTol {
			continue // slack start already feasible for this row
		}
		j := bucket[i]
		if j < 0 {
			continue
		}
		rv.vstat[slack] = vsLower
		if math.IsInf(sf.lo[slack], -1) {
			rv.vstat[slack] = vsUpper // GE slack: upper bound 0
		}
		rv.basis[i] = j
		rv.vstat[j] = vsBasic
	}
}

// refactor (re)factorizes the current basis — preorder, LU, recompute basic
// values — and returns false if the basis is singular.
func (rv *revised) refactor(stats *SolverStats) bool {
	rv.f.m = rv.sf.m
	order := rv.f.preorder(&rv.sf, rv.basis)
	copy(rv.basis, order)
	if !rv.f.factor(&rv.sf, rv.basis) {
		return false
	}
	if stats != nil {
		stats.Refactors.Add(1)
	}
	rv.computeXB()
	return true
}

// computeXB solves B x_B = b − N x_N from the current factorization.
func (rv *revised) computeXB() {
	sf := &rv.sf
	r := rv.rhs
	copy(r, sf.b)
	for j := 0; j < sf.ncols; j++ {
		if rv.vstat[j] == vsBasic {
			continue
		}
		if v := rv.value(j); v != 0 {
			sf.scatterColumn(r, j, -v)
		}
	}
	rv.f.ftran(r, rv.xB)
}

// classifyInfeas fills rv.infeas (-1 below lower, +1 above upper, 0 inside)
// and returns the number of infeasible basics.
func (rv *revised) classifyInfeas() int {
	sf := &rv.sf
	bad := 0
	for i, bi := range rv.basis {
		l, h := sf.lo[bi], sf.hi[bi]
		switch {
		case rv.xB[i] < l-primalTol:
			rv.infeas[i] = -1
			bad++
		case rv.xB[i] > h+primalTol:
			rv.infeas[i] = 1
			bad++
		default:
			rv.infeas[i] = 0
		}
	}
	return bad
}

func (rv *revised) primalFeasible() bool { return rv.classifyInfeas() == 0 }

// dualFeasible reports whether the current basis's reduced costs satisfy the
// sign conditions within dualStartTol — the gate for handing a primal-
// infeasible warm basis to the dual simplex.
func (rv *revised) dualFeasible() bool {
	sf := &rv.sf
	for i, bi := range rv.basis {
		rv.cb[i] = sf.cost[bi]
	}
	rv.f.btran(rv.cb, rv.y)
	for j := 0; j < sf.ncols; j++ {
		if rv.vstat[j] == vsBasic || sf.lo[j] == sf.hi[j] {
			continue
		}
		d := sf.cost[j] - sf.dotColumn(rv.y, j)
		switch rv.vstat[j] {
		case vsLower:
			if d < -dualStartTol {
				return false
			}
		case vsUpper:
			if d > dualStartTol {
				return false
			}
		case vsFree:
			if math.Abs(d) > dualStartTol {
				return false
			}
		}
	}
	return true
}

// eligible reports whether nonbasic j with reduced cost d can improve a
// minimization, and if so the movement direction (+1 increase, −1 decrease).
func (rv *revised) eligible(j int, d, tol float64) (float64, bool) {
	sf := &rv.sf
	if sf.lo[j] == sf.hi[j] {
		return 0, false // fixed: cannot move
	}
	switch rv.vstat[j] {
	case vsLower:
		if d < -tol {
			return 1, true
		}
	case vsUpper:
		if d > tol {
			return -1, true
		}
	case vsFree:
		if d < -tol {
			return 1, true
		}
		if d > tol {
			return -1, true
		}
	}
	return 0, false
}

// primal runs the bounded-variable primal simplex with composite phase-1
// costs: while any basic violates a bound the pricing vector is the sum-of-
// infeasibilities subgradient, and the ratio test walks the piecewise-linear
// infeasibility objective (long-step rule) so one pivot can cross many bound
// breakpoints. Pivots are attributed to phase 1 (infeasible start of the
// iteration) or phase 2.
func (rv *revised) primal(stats *SolverStats, maxIter int, deadline time.Time) (st Status, p1, p2 int) {
	sf := &rv.sf
	m := sf.m
	refactorEvery := rv.refactorEvery

	useBland := false
	stall := 0
	window := stallWindow
	if 2*m > window {
		window = 2 * m
	}
	cleanups := 0

	for iter := 0; iter < maxIter; iter++ {
		if !deadline.IsZero() && iter%64 == 0 && time.Now().After(deadline) {
			return StatusIterLimit, p1, p2
		}
		if rv.f.nEtas() >= refactorEvery {
			if !rv.refactor(stats) {
				return StatusIterLimit, p1, p2
			}
		}

		nbad := rv.classifyInfeas()
		phase1 := nbad > 0

		// Pricing vector y = B⁻ᵀ c_B for the active costs.
		if phase1 {
			for i := range rv.cb {
				rv.cb[i] = float64(rv.infeas[i])
			}
		} else {
			for i, bi := range rv.basis {
				rv.cb[i] = sf.cost[bi]
			}
		}
		rv.f.btran(rv.cb, rv.y)

		// Partial pricing: scan from a rotating cursor, commit to the best
		// candidate within priceChunk of the first hit; Bland's rule (first
		// eligible from column 0) engages on degenerate stalls.
		enter := -1
		var sigma float64
		best := 0.0
		start := rv.cursor
		if useBland {
			start = 0
		}
		scanned, sinceHit := 0, 0
		for scanned < sf.ncols {
			j := start + scanned
			if j >= sf.ncols {
				j -= sf.ncols
			}
			scanned++
			if rv.vstat[j] == vsBasic {
				continue
			}
			var d float64
			if phase1 {
				d = -sf.dotColumn(rv.y, j)
			} else {
				d = sf.cost[j] - sf.dotColumn(rv.y, j)
			}
			sg, ok := rv.eligible(j, d, dualTol)
			if !ok {
				if enter >= 0 {
					sinceHit++
					if sinceHit >= priceChunk {
						break
					}
				}
				continue
			}
			if useBland {
				best, enter, sigma = math.Abs(d), j, sg
				break
			}
			if a := math.Abs(d); a > best {
				best, enter, sigma = a, j, sg
			}
			sinceHit++
			if sinceHit >= priceChunk {
				break
			}
		}
		rv.cursor = 0
		if enter >= 0 {
			rv.cursor = enter + 1
			if rv.cursor >= sf.ncols {
				rv.cursor = 0
			}
		}

		if enter < 0 {
			if phase1 {
				return StatusInfeasible, p1, p2
			}
			// Optimal for the current factors. Long pivot runs accumulate
			// drift in x_B; refactorize once and re-verify before trusting
			// the verdict, so the reported vertex is factor-fresh.
			if rv.f.nEtas() > 0 && cleanups < 3 {
				cleanups++
				if !rv.refactor(stats) {
					return StatusIterLimit, p1, p2
				}
				useBland = false
				stall = 0
				continue
			}
			return StatusOptimal, p1, p2
		}

		// FTRAN the entering column.
		for i := range rv.rhs {
			rv.rhs[i] = 0
		}
		sf.scatterColumn(rv.rhs, enter, 1)
		rv.f.ftran(rv.rhs, rv.w)

		// Ratio test. x_B moves at rate −σ·w per unit of entering movement.
		bestT := math.Inf(1)
		leave := -1
		landAt := vsLower
		tOwn := math.Inf(1)
		if !math.IsInf(sf.hi[enter], 1) && !math.IsInf(sf.lo[enter], -1) {
			tOwn = sf.hi[enter] - sf.lo[enter] // own-bound flip
		}
		if phase1 && !useBland {
			// Long-step (piecewise-linear) phase-1 ratio test. The sum of
			// infeasibilities is piecewise linear along the entering
			// direction: every basic crossing a bound bends the slope up by
			// |rate|. Walking breakpoints in t-order and stopping only where
			// the slope turns non-negative lets one pivot repair hundreds of
			// violated rows — e.g. the MLU utilization column lifting every
			// capacity row at once — where a nearest-blocker rule would burn
			// one pivot per row. Under Bland's rule the classic test below
			// runs instead (its termination proof needs nearest blocking).
			bps := rv.bps[:0]
			push := func(t, gain float64, row int, land vstatus) {
				if t < 0 {
					t = 0
				}
				bps = append(bps, ratioBP{t: t, gain: gain, row: row, land: land})
			}
			for i := 0; i < m; i++ {
				wi := rv.w[i]
				if wi > -rsPivotTol && wi < rsPivotTol {
					continue
				}
				rate := -sigma * wi
				bi := rv.basis[i]
				l, h := sf.lo[bi], sf.hi[bi]
				gain := math.Abs(rate)
				switch {
				case rv.infeas[i] == -1 && rate > 0: // below lower, healing up
					push((l-rv.xB[i])/rate, gain, i, vsLower)
					if !math.IsInf(h, 1) {
						push((h-rv.xB[i])/rate, gain, i, vsUpper)
					}
				case rv.infeas[i] == 1 && rate < 0: // above upper, healing down
					push((h-rv.xB[i])/rate, gain, i, vsUpper)
					if !math.IsInf(l, -1) {
						push((l-rv.xB[i])/rate, gain, i, vsLower)
					}
				case rv.infeas[i] == 0 && rate > 0 && !math.IsInf(h, 1):
					push((h-rv.xB[i])/rate, gain, i, vsUpper)
				case rv.infeas[i] == 0 && rate < 0 && !math.IsInf(l, -1):
					push((l-rv.xB[i])/rate, gain, i, vsLower)
				}
			}
			rv.bps = bps
			// Equal-t ties favor the larger |rate| (= |w|): the slope flips
			// at the same step either way, and the bigger pivot is the
			// numerically safer basis exchange.
			sort.Slice(bps, func(a, b int) bool {
				if bps[a].t != bps[b].t {
					return bps[a].t < bps[b].t
				}
				return bps[a].gain > bps[b].gain
			})
			slope := -best
			lastK := -1
			for k := range bps {
				if bps[k].t >= tOwn {
					break
				}
				lastK = k
				slope += bps[k].gain
				if slope >= -1e-12 {
					bestT, leave, landAt = bps[k].t, bps[k].row, bps[k].land
					break
				}
			}
			if leave < 0 {
				if !math.IsInf(tOwn, 1) {
					bestT = tOwn // bound flip absorbs the still-negative slope
				} else if lastK >= 0 {
					// Exact arithmetic guarantees the slope turns non-negative
					// within the breakpoint list, but rows filtered at
					// rsPivotTol contribute to the reduced cost and not to the
					// walk. Stop at the final breakpoint rather than declaring
					// the direction unblocked: the step still strictly reduces
					// the infeasibility sum and the pivot element passed the
					// stability filter.
					bestT, leave, landAt = bps[lastK].t, bps[lastK].row, bps[lastK].land
				}
			}
		} else {
			if !math.IsInf(tOwn, 1) {
				bestT = tOwn
			}
			for i := 0; i < m; i++ {
				wi := rv.w[i]
				if wi > -rsPivotTol && wi < rsPivotTol {
					continue
				}
				rate := -sigma * wi
				bi := rv.basis[i]
				l, h := sf.lo[bi], sf.hi[bi]
				var t float64
				var land vstatus
				switch rv.infeas[i] {
				case -1: // below lower: blocks only moving up, at the lower bound
					if rate <= 0 {
						continue
					}
					t, land = (l-rv.xB[i])/rate, vsLower
				case 1: // above upper: blocks only moving down, at the upper bound
					if rate >= 0 {
						continue
					}
					t, land = (h-rv.xB[i])/rate, vsUpper
				default:
					if rate > 0 {
						if math.IsInf(h, 1) {
							continue
						}
						t, land = (h-rv.xB[i])/rate, vsUpper
					} else {
						if math.IsInf(l, -1) {
							continue
						}
						t, land = (l-rv.xB[i])/rate, vsLower
					}
				}
				if t < 0 {
					t = 0
				}
				if t < bestT-eps {
					bestT, leave, landAt = t, i, land
				} else if t < bestT+eps && leave >= 0 {
					// Tie-break: Bland prefers the lowest basis column (provable
					// termination); otherwise prefer the biggest pivot element.
					if useBland {
						if rv.basis[i] < rv.basis[leave] {
							bestT, leave, landAt = t, i, land
						}
					} else if math.Abs(wi) > math.Abs(rv.w[leave]) {
						bestT, leave, landAt = t, i, land
					}
				}
			}
		}

		if math.IsInf(bestT, 1) {
			if phase1 {
				// The infeasibility sum is bounded below, so an unblocked
				// improving ray is numerical noise: refresh and retry. With
				// factors already fresh a retry would repeat the identical
				// iteration forever — give up instead.
				if rv.f.nEtas() == 0 {
					return StatusIterLimit, p1, p2
				}
				if !rv.refactor(stats) {
					return StatusIterLimit, p1, p2
				}
				continue
			}
			return StatusUnbounded, p1, p2
		}

		// Stall bookkeeping mirrors the dense engine: a run of degenerate
		// steps longer than the window engages Bland's rule.
		if bestT <= stallEps {
			stall++
			if stall >= window && !useBland {
				useBland = true
				continue
			}
		} else {
			stall = 0
			useBland = false
		}

		if phase1 {
			p1++
		} else {
			p2++
		}

		if leave < 0 {
			// Bound flip: the entering variable crosses its box, no basis
			// change.
			for i := 0; i < m; i++ {
				if wi := rv.w[i]; wi != 0 {
					rv.xB[i] -= sigma * bestT * wi
				}
			}
			if rv.vstat[enter] == vsUpper {
				rv.vstat[enter] = vsLower
			} else {
				rv.vstat[enter] = vsUpper
			}
			continue
		}

		if math.Abs(rv.w[leave]) < etaPivotTol {
			// Unstable pivot: refresh the factors and retry the iteration
			// (the recomputed column is usually healthier). A fresh
			// factorization that still produces no stable pivot gives up.
			if rv.f.nEtas() == 0 {
				return StatusIterLimit, p1, p2
			}
			if !rv.refactor(stats) {
				return StatusIterLimit, p1, p2
			}
			if phase1 {
				p1--
			} else {
				p2--
			}
			continue
		}

		vEnter := rv.value(enter) + sigma*bestT
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			if wi := rv.w[i]; wi != 0 {
				rv.xB[i] -= sigma * bestT * wi
			}
		}
		left := rv.basis[leave]
		rv.basis[leave] = int32(enter)
		rv.vstat[enter] = vsBasic
		rv.vstat[left] = landAt
		rv.xB[leave] = vEnter
		if !rv.f.appendEta(rv.w, leave) {
			// Pivot too small for a stable eta: rebuild factors from the
			// already-updated basis instead.
			if !rv.refactor(stats) {
				return StatusIterLimit, p1, p2
			}
		}
	}
	return StatusIterLimit, p1, p2
}

// dual runs the bounded-variable dual simplex from a dual-feasible basis,
// driving out primal bound violations one leaving row at a time. It is the
// RHS-delta continuation: a demand or capacity delta leaves reduced costs
// untouched, so the retained basis re-solves in however many pivots the
// violations need instead of a cold restart.
func (rv *revised) dual(stats *SolverStats, maxIter int, deadline time.Time) (Status, int) {
	sf := &rv.sf
	m := sf.m
	pivots := 0
	refactorEvery := rv.refactorEvery
	rv.alpha = growF(rv.alpha, sf.ncols)
	rv.dred = growF(rv.dred, sf.ncols)
	stall := 0
	window := stallWindow
	if 2*m > window {
		window = 2 * m
	}
	blandish := false

	for iter := 0; iter < maxIter; iter++ {
		if !deadline.IsZero() && iter%64 == 0 && time.Now().After(deadline) {
			return StatusIterLimit, pivots
		}
		if rv.f.nEtas() >= refactorEvery {
			if !rv.refactor(stats) {
				return StatusIterLimit, pivots
			}
		}

		// Leaving row: the worst bound violation.
		leave := -1
		worst := primalTol
		toLower := false
		for i, bi := range rv.basis {
			if v := sf.lo[bi] - rv.xB[i]; v > worst {
				worst, leave, toLower = v, i, true
			}
			if v := rv.xB[i] - sf.hi[bi]; v > worst {
				worst, leave, toLower = v, i, false
			}
		}
		if leave < 0 {
			return StatusOptimal, pivots
		}

		// Reduced costs (fresh each pivot: the dual ratio test needs them
		// exact, and recomputing dodges incremental drift).
		for i, bi := range rv.basis {
			rv.cb[i] = sf.cost[bi]
		}
		rv.f.btran(rv.cb, rv.y)
		// Tableau row: alpha_j = (B⁻ᵀ e_leave)·a_j.
		for i := range rv.cb {
			rv.cb[i] = 0
		}
		rv.cb[leave] = 1
		rho := rv.rhs // reuse as the row-space unit solve
		rv.f.btran(rv.cb, rho)

		enter := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		for j := 0; j < sf.ncols; j++ {
			if rv.vstat[j] == vsBasic || sf.lo[j] == sf.hi[j] {
				continue
			}
			a := sf.dotColumn(rho, j)
			if a > -rsPivotTol && a < rsPivotTol {
				continue
			}
			// Direction filter: the entering variable must move off its
			// bound in the direction that repairs the leaving row.
			ok := false
			switch rv.vstat[j] {
			case vsLower:
				ok = (toLower && a < 0) || (!toLower && a > 0)
			case vsUpper:
				ok = (toLower && a > 0) || (!toLower && a < 0)
			case vsFree:
				ok = true
			}
			if !ok {
				continue
			}
			d := sf.cost[j] - sf.dotColumn(rv.y, j)
			// Dual feasibility makes d·(sign) ≥ 0; numerical noise is
			// clamped so ratios stay non-negative.
			r := math.Abs(d) / math.Abs(a)
			if rv.vstat[j] == vsFree {
				r = 0 // free variables have zero reduced cost at optimality
			}
			if r < bestRatio-eps || (r < bestRatio+eps && (blandish && enter >= 0 && j < enter || !blandish && math.Abs(a) > bestAlpha)) || enter < 0 {
				bestRatio, enter, bestAlpha = r, j, math.Abs(a)
			}
		}
		if enter < 0 {
			// Dual unbounded: no entering column can repair the violated
			// row — the primal is infeasible.
			return StatusInfeasible, pivots
		}

		// FTRAN the entering column for the update.
		for i := range rv.rhs {
			rv.rhs[i] = 0
		}
		sf.scatterColumn(rv.rhs, enter, 1)
		rv.f.ftran(rv.rhs, rv.w)
		if math.Abs(rv.w[leave]) < etaPivotTol {
			if rv.f.nEtas() == 0 {
				return StatusIterLimit, pivots
			}
			if !rv.refactor(stats) {
				return StatusIterLimit, pivots
			}
			continue
		}

		left := rv.basis[leave]
		target := sf.hi[left]
		land := vsUpper
		if toLower {
			target, land = sf.lo[left], vsLower
		}
		delta := (rv.xB[leave] - target) / rv.w[leave]
		if math.Abs(delta) <= stallEps {
			stall++
			if stall >= window {
				blandish = true
			}
		} else {
			stall = 0
			blandish = false
		}
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			if wi := rv.w[i]; wi != 0 {
				rv.xB[i] -= delta * wi
			}
		}
		rv.basis[leave] = int32(enter)
		vEnter := rv.value(enter) + delta
		rv.vstat[enter] = vsBasic
		rv.vstat[left] = land
		rv.xB[leave] = vEnter
		pivots++
		if stats != nil {
			stats.DualPivots.Add(1)
			stats.Pivots.Add(1)
		}
		if !rv.f.appendEta(rv.w, leave) {
			if !rv.refactor(stats) {
				return StatusIterLimit, pivots
			}
		}
	}
	return StatusIterLimit, pivots
}

// extract maps the engine state to a Solution in model space.
func (rv *revised) extract(p *Problem, sol *Solution) {
	sf := &rv.sf
	sol.X = make([]float64, sf.n)
	for j := 0; j < sf.n; j++ {
		if rv.vstat[j] != vsBasic {
			sol.X[j] = rv.value(j)
		}
	}
	for i, bi := range rv.basis {
		if int(bi) < sf.n {
			sol.X[bi] = rv.xB[i]
		}
	}
	obj := p.objExpr.Const
	for _, t := range p.objExpr.Terms {
		obj += t.Coeff * sol.X[t.Var]
	}
	sol.Objective = obj
}
