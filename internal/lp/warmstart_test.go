package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// buildTransportLP models a small transportation problem: route demand d
// from 3 sources through 4 routes with per-route capacity caps, minimizing
// routed cost. The structure (shape) is fixed; d and caps vary per call.
func buildTransportLP(p *Problem, d, caps []float64) {
	p.Reset()
	xs := make([]VarID, 0, len(d)*len(caps))
	e := NewExpr()
	for i := range d {
		e.Reset()
		for range caps {
			v := p.AddVariable("", 0, math.Inf(1))
			xs = append(xs, v)
			e.Add(1, v)
		}
		p.AddConstraint("", e, EQ, d[i])
	}
	for j := range caps {
		e.Reset()
		for i := range d {
			e.Add(1, xs[i*len(caps)+j])
		}
		p.AddConstraint("", e, LE, caps[j])
	}
	obj := NewExpr()
	for i := range d {
		for j := range caps {
			obj.Add(float64(1+(i+2*j)%5), xs[i*len(caps)+j])
		}
	}
	p.SetObjective(Minimize, obj)
}

// TestWarmStartEquivalence solves a sequence of perturbed instances with one
// warm-starting Solver and checks every objective against a cold solve on a
// fresh Solver, within 1e-9. Degenerate optima may sit at different vertices,
// so only objectives are compared.
func TestWarmStartEquivalence(t *testing.T) {
	r := rng.New(7)
	warm := NewSolver()
	p := NewProblem()
	base := []float64{3, 5, 2}
	caps := []float64{4, 4, 4, 4}
	for iter := 0; iter < 25; iter++ {
		d := make([]float64, len(base))
		for i := range d {
			d[i] = base[i] * (0.8 + 0.4*r.Float64())
		}
		buildTransportLP(p, d, caps)
		got := warm.Solve(p)
		if got.Status != StatusOptimal {
			t.Fatalf("iter %d: warm solver status %v", iter, got.Status)
		}
		buildTransportLP(p, d, caps)
		want := NewSolver().Solve(p)
		if want.Status != StatusOptimal {
			t.Fatalf("iter %d: cold solver status %v", iter, want.Status)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-9 {
			t.Fatalf("iter %d: warm objective %.12f, cold %.12f", iter, got.Objective, want.Objective)
		}
	}
	if warm.Stats.Solves.Load() != 25 {
		t.Fatalf("Solves = %d, want 25", warm.Stats.Solves.Load())
	}
	if warm.Stats.WarmAttempts.Load() == 0 {
		t.Fatal("warm solver never attempted its cached basis")
	}
	if warm.Stats.WarmHits.Load() == 0 {
		t.Fatal("warm solver never completed a solve from the cached basis")
	}
}

// TestWarmStartInfeasibleBasisFallback forces the cached basis to be
// infeasible for the next instance (demand far beyond the previous vertex's
// active capacities) and checks the solver silently falls back to a cold
// solve with the correct optimum.
func TestWarmStartInfeasibleBasisFallback(t *testing.T) {
	warm := NewSolver()
	p := NewProblem()

	buildTransportLP(p, []float64{3, 5, 2}, []float64{4, 4, 4, 4})
	if sol := warm.Solve(p); sol.Status != StatusOptimal {
		t.Fatalf("first solve status %v", sol.Status)
	}

	// Same shape, radically different data: total demand 15 against the
	// same capacities forces a different active set.
	d2 := []float64{1, 13, 1}
	caps2 := []float64{9, 2, 2, 2}
	buildTransportLP(p, d2, caps2)
	attemptsBefore := warm.Stats.WarmAttempts.Load()
	coldBefore := warm.Stats.ColdSolves.Load()
	got := warm.Solve(p)
	if got.Status != StatusOptimal {
		t.Fatalf("perturbed solve status %v", got.Status)
	}
	if warm.Stats.WarmAttempts.Load() != attemptsBefore+1 {
		t.Fatalf("WarmAttempts = %d, want %d", warm.Stats.WarmAttempts.Load(), attemptsBefore+1)
	}

	buildTransportLP(p, d2, caps2)
	want := NewSolver().Solve(p)
	if math.Abs(got.Objective-want.Objective) > 1e-9 {
		t.Fatalf("objective after fallback %.12f, cold %.12f", got.Objective, want.Objective)
	}
	// The warm path either succeeded (degenerate luck) or fell back cold;
	// both are fine, but a fallback must be visible in the stats.
	if warm.Stats.WarmHits.Load()+warm.Stats.ColdSolves.Load()-coldBefore == 0 {
		t.Fatal("solve neither hit warm nor recorded a cold fallback")
	}
}

// TestWarmStartShapeMismatchFallsBackCold verifies a shape change (different
// variable count) never attempts the stale basis.
func TestWarmStartShapeMismatchFallsBackCold(t *testing.T) {
	warm := NewSolver()
	p := NewProblem()
	buildTransportLP(p, []float64{3, 5, 2}, []float64{4, 4, 4, 4})
	if sol := warm.Solve(p); sol.Status != StatusOptimal {
		t.Fatalf("first solve status %v", sol.Status)
	}
	attempts := warm.Stats.WarmAttempts.Load()

	buildTransportLP(p, []float64{2, 2}, []float64{3, 3, 3})
	got := warm.Solve(p)
	if got.Status != StatusOptimal {
		t.Fatalf("reshaped solve status %v", got.Status)
	}
	if warm.Stats.WarmAttempts.Load() != attempts {
		t.Fatal("solver attempted a warm start across a shape change")
	}
	buildTransportLP(p, []float64{2, 2}, []float64{3, 3, 3})
	want := NewSolver().Solve(p)
	if math.Abs(got.Objective-want.Objective) > 1e-9 {
		t.Fatalf("objective %.12f, cold %.12f", got.Objective, want.Objective)
	}
}

// TestWarmStartInfeasibleClearsCache checks that a non-optimal outcome
// drops the cached basis so the next same-shape solve starts cold.
func TestWarmStartInfeasibleClearsCache(t *testing.T) {
	warm := NewSolver()
	p := NewProblem()
	buildTransportLP(p, []float64{3, 5, 2}, []float64{4, 4, 4, 4})
	if sol := warm.Solve(p); sol.Status != StatusOptimal {
		t.Fatalf("first solve status %v", sol.Status)
	}

	// Infeasible: demand exceeds total capacity.
	buildTransportLP(p, []float64{30, 50, 20}, []float64{4, 4, 4, 4})
	if sol := warm.Solve(p); sol.Status != StatusInfeasible {
		t.Fatalf("overloaded solve status %v, want infeasible", sol.Status)
	}

	attempts := warm.Stats.WarmAttempts.Load()
	buildTransportLP(p, []float64{3, 5, 2}, []float64{4, 4, 4, 4})
	sol := warm.Solve(p)
	if sol.Status != StatusOptimal {
		t.Fatalf("recovery solve status %v", sol.Status)
	}
	if warm.Stats.WarmAttempts.Load() != attempts {
		t.Fatal("solver reused a basis cached before an infeasible outcome")
	}
}
