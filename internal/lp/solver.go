package lp

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// SolverStats counts solve outcomes (cumulative). The fields are atomic so
// the metrics layer can scrape a solver's stats while solves are in flight:
// Solve mutates these counters on every call, and a plain-int version of
// this struct was a data race against any concurrent reader. Read individual
// fields with Load, or take a coherent view with Snapshot.
type SolverStats struct {
	// Solves is the total number of Solve calls.
	Solves atomic.Int64
	// WarmAttempts counts solves that tried the cached basis.
	WarmAttempts atomic.Int64
	// WarmHits counts solves completed from the cached basis alone.
	WarmHits atomic.Int64
	// ColdSolves counts full two-phase solves (first solves and fallbacks).
	ColdSolves atomic.Int64
	// Pivots is the total number of simplex pivots across all solves (warm
	// phase-2 pivots and both cold phases).
	Pivots atomic.Int64
	// RHSAttempts counts ResolveRHS calls that reached the delta fast path
	// (structure matched and factors were cached).
	RHSAttempts atomic.Int64
	// RHSHits counts ResolveRHS calls completed from the cached basis with
	// zero pivots — the basis stayed primal feasible under the new RHS.
	RHSHits atomic.Int64
	// BoundAttempts counts ResolveBounds calls that reached the revised
	// warm path (a retained basis matched the problem shape).
	BoundAttempts atomic.Int64
	// BoundHits counts ResolveBounds calls completed from the retained
	// factors — zero pivots when the basis stayed primal feasible under the
	// new bounds, or a handful of dual pivots otherwise — without a cold
	// fallback. Conclusive infeasibility verdicts from the dual simplex
	// count as hits: the warm machinery settled the solve.
	BoundHits atomic.Int64
	// Phase1Pivots and Phase2Pivots split Pivots by simplex phase: feasibility
	// restoration vs optimization. Warm solves that start feasible contribute
	// only to Phase2Pivots. (Dense warm pivots count as phase 2; dense cold
	// solves split by their two tableau phases.)
	Phase1Pivots atomic.Int64
	Phase2Pivots atomic.Int64
	// DualPivots counts dual-simplex pivots (revised engine only): bound
	// violations repaired from a retained dual-feasible basis instead of a
	// cold restart.
	DualPivots atomic.Int64
	// DualResolves counts ResolveRHS calls completed by the dual simplex —
	// the basis went primal infeasible under the new RHS but was repaired in
	// DualPivots pivots without a cold solve.
	DualResolves atomic.Int64
	// Refactors counts basis refactorizations in the revised engine (periodic
	// RefactorEvery triggers, stability triggers, and warm/cold starts).
	Refactors atomic.Int64
	// EtaLen is a gauge, not a counter: the eta-file length after the most
	// recent revised-engine solve. Read with Load; Snapshot carries it
	// verbatim and Sub keeps the newer value.
	EtaLen atomic.Int64
}

// Snapshot reads every counter into a plain value. Each field is read
// atomically; the snapshot as a whole is not one atomic cut, which is fine
// for monotone counters (a scrape can be at most one in-flight solve stale).
func (s *SolverStats) Snapshot() SolverStatsSnapshot {
	return SolverStatsSnapshot{
		Solves:        s.Solves.Load(),
		WarmAttempts:  s.WarmAttempts.Load(),
		WarmHits:      s.WarmHits.Load(),
		ColdSolves:    s.ColdSolves.Load(),
		Pivots:        s.Pivots.Load(),
		RHSAttempts:   s.RHSAttempts.Load(),
		RHSHits:       s.RHSHits.Load(),
		BoundAttempts: s.BoundAttempts.Load(),
		BoundHits:     s.BoundHits.Load(),
		Phase1Pivots:  s.Phase1Pivots.Load(),
		Phase2Pivots:  s.Phase2Pivots.Load(),
		DualPivots:    s.DualPivots.Load(),
		DualResolves:  s.DualResolves.Load(),
		Refactors:     s.Refactors.Load(),
		EtaLen:        s.EtaLen.Load(),
	}
}

// AddSnapshot accumulates d into the counters — used by aggregators (e.g.
// te.MLUSolver) that fold per-borrow deltas from pooled solvers into one
// cumulative view.
func (s *SolverStats) AddSnapshot(d SolverStatsSnapshot) {
	s.Solves.Add(d.Solves)
	s.WarmAttempts.Add(d.WarmAttempts)
	s.WarmHits.Add(d.WarmHits)
	s.ColdSolves.Add(d.ColdSolves)
	s.Pivots.Add(d.Pivots)
	s.RHSAttempts.Add(d.RHSAttempts)
	s.RHSHits.Add(d.RHSHits)
	s.BoundAttempts.Add(d.BoundAttempts)
	s.BoundHits.Add(d.BoundHits)
	s.Phase1Pivots.Add(d.Phase1Pivots)
	s.Phase2Pivots.Add(d.Phase2Pivots)
	s.DualPivots.Add(d.DualPivots)
	s.DualResolves.Add(d.DualResolves)
	s.Refactors.Add(d.Refactors)
	if d.EtaLen != 0 {
		s.EtaLen.Store(d.EtaLen) // gauge: latest observation wins
	}
}

// SolverStatsSnapshot is a plain-value copy of SolverStats.
type SolverStatsSnapshot struct {
	Solves        int64
	WarmAttempts  int64
	WarmHits      int64
	ColdSolves    int64
	Pivots        int64
	RHSAttempts   int64
	RHSHits       int64
	BoundAttempts int64
	BoundHits     int64
	Phase1Pivots  int64
	Phase2Pivots  int64
	DualPivots    int64
	DualResolves  int64
	Refactors     int64
	EtaLen        int64 // gauge (see SolverStats.EtaLen)
}

// Sub returns the element-wise difference a − b: the per-interval delta
// between two scrapes of the same cumulative counters.
func (a SolverStatsSnapshot) Sub(b SolverStatsSnapshot) SolverStatsSnapshot {
	return SolverStatsSnapshot{
		Solves:        a.Solves - b.Solves,
		WarmAttempts:  a.WarmAttempts - b.WarmAttempts,
		WarmHits:      a.WarmHits - b.WarmHits,
		ColdSolves:    a.ColdSolves - b.ColdSolves,
		Pivots:        a.Pivots - b.Pivots,
		RHSAttempts:   a.RHSAttempts - b.RHSAttempts,
		RHSHits:       a.RHSHits - b.RHSHits,
		BoundAttempts: a.BoundAttempts - b.BoundAttempts,
		BoundHits:     a.BoundHits - b.BoundHits,
		Phase1Pivots:  a.Phase1Pivots - b.Phase1Pivots,
		Phase2Pivots:  a.Phase2Pivots - b.Phase2Pivots,
		DualPivots:    a.DualPivots - b.DualPivots,
		DualResolves:  a.DualResolves - b.DualResolves,
		Refactors:     a.Refactors - b.Refactors,
		EtaLen:        a.EtaLen, // gauge: carry the newer value
	}
}

// WarmHitRatio returns WarmHits/WarmAttempts (0 when no warm starts were
// attempted).
func (a SolverStatsSnapshot) WarmHitRatio() float64 {
	if a.WarmAttempts == 0 {
		return 0
	}
	return float64(a.WarmHits) / float64(a.WarmAttempts)
}

// Method selects the simplex engine a Solver runs.
type Method int

const (
	// MethodAuto picks per problem: dense below autoRevisedCells estimated
	// tableau cells (exactness-oracle territory), revised above.
	MethodAuto Method = iota
	// MethodDense forces the two-phase dense tableau simplex.
	MethodDense
	// MethodRevised forces the sparse revised simplex (revised.go).
	MethodRevised
)

// autoRevisedCells is the estimated dense tableau size (rows × columns,
// artificials included) past which MethodAuto dispatches to the revised
// engine: ~4M cells ≈ 32 MB of tableau, the point where per-pivot memory
// traffic dwarfs the revised engine's O(nnz) iteration cost. Abilene- and
// Geant-scale flow LPs stay dense; tegen-grown 100+ node topologies go
// revised.
const autoRevisedCells = 1 << 22

func (m Method) String() string {
	switch m {
	case MethodDense:
		return "dense"
	case MethodRevised:
		return "revised"
	default:
		return "auto"
	}
}

// ParseMethod maps the -lp flag spellings to a Method.
func ParseMethod(name string) (Method, bool) {
	switch name {
	case "auto", "":
		return MethodAuto, true
	case "dense":
		return MethodDense, true
	case "revised", "sparse":
		return MethodRevised, true
	}
	return MethodAuto, false
}

// Solver runs the two-phase dense primal simplex over reusable workspace and
// warm-starts successive solves from the previous optimal basis.
//
// Warm-starting is correctness-safe by construction: the cached basis is only
// a candidate starting vertex. The solver rebuilds the CURRENT problem's
// tableau, canonicalizes it around the cached basis (Gauss-Jordan with row
// swaps), and verifies primal feasibility (b ≥ 0). If the basis is singular
// or infeasible for the new data — or phase 2 ends anything but optimal — it
// falls back to the full two-phase cold solve. Phase 2 always optimizes the
// current objective to convergence, so a stale basis can cost time, never
// correctness.
//
// A Solver is not safe for concurrent use; pool per goroutine.
type Solver struct {
	Stats SolverStats

	// Obs, when non-nil, receives per-solve telemetry: "lp.solve.ms"
	// (wall-clock latency) and "lp.solve.pivots" histograms. Nil costs
	// nothing — no clock reads, no lookups — so solvers are instrumented
	// unconditionally and enabled per run.
	Obs *obs.Registry

	// Method selects the engine: MethodAuto (default) dispatches per problem
	// by estimated dense tableau size, MethodDense/MethodRevised force one.
	Method Method

	// RefactorEvery bounds the revised engine's eta-file length between basis
	// refactorizations; zero means DefaultRefactorEvery. Smaller values trade
	// refactorization time for FTRAN/BTRAN speed and numerical freshness.
	RefactorEvery int

	// rev is the revised-simplex engine state, retained across solves for
	// warm starts and dual-simplex RHS re-solves; lastRevised records which
	// engine produced the last successful solve so ResolveRHS routes to the
	// matching fast path.
	rev         *revised
	lastRevised bool

	// standard-form workspace: a is m×total row-major, b length m, c length
	// total. Rebuilt from the Problem on every Solve.
	forms []xform
	a     []float64
	b     []float64
	c     []float64

	// tableau workspace
	tabBuf []float64
	tab    [][]float64
	basis  []int
	cost   []float64
	z      []float64
	xstd   []float64

	// cached optimal basis of the previous solve
	warmBasis []int
	warmTotal int

	// KeepRHSFactors, when set before solving, makes every successful solve
	// additionally cache the slack-column block of the final tableau (the
	// columns of B⁻¹ reachable through slack/surplus variables) so a later
	// ResolveRHS can re-solve an RHS-only perturbation with zero pivots.
	// Costs one O(m²) copy per successful solve; leave it off for one-shot
	// problems.
	KeepRHSFactors bool

	// per-row slack bookkeeping of the last buildStandard: the standard-form
	// column of row r's slack/surplus variable (-1 for EQ rows) and its sign
	// (+1 slack, -1 surplus).
	rowSlackCol  []int
	rowSlackSign []float64

	// RHS-delta factor cache (valid when rhsReady; see resolve.go)
	rhsReady       bool
	rhsNV, rhsNC   int // structure fingerprint: len(vars), len(cons)
	rhsM, rhsTotal int
	rhsPrevB       []float64 // standard-form b of the cached solve
	rhsXB          []float64 // basic-variable values (final tableau RHS column)
	rhsBinv        []float64 // m×m row-major; column r valid iff rowSlackCol[r] >= 0
	rhsBNew        []float64 // scratch: rebuilt standard-form b
	rhsXBNew       []float64 // scratch: candidate basic values under the new b
}

// NewSolver returns an empty solver.
func NewSolver() *Solver { return &Solver{} }

// solverPool backs Problem.Solve for callers that do not hold their own
// Solver. Pooled solvers keep their workspace AND their warm basis; a basis
// from an unrelated problem is rejected by the shape check or the
// feasibility check and simply falls back cold.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}

func getPooledSolver() *Solver  { return solverPool.Get().(*Solver) }
func putPooledSolver(s *Solver) { solverPool.Put(s) }

// xform maps one model variable to standard-form columns:
//
//	x = shift + sign·u            (one bound finite)
//	x = u⁺ − u⁻                   (free: negCol ≥ 0)
type xform struct {
	posCol int
	negCol int
	shift  float64
	sign   float64
}

func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// buildStandard converts p to standard form (min c·x, A x = b before slack
// signs, x ≥ 0) into the solver's workspace, returning the row count and
// total column count. Conversion rules match the modeling layer: shifted
// variables for finite bounds, split variables for free ones, slack/surplus
// columns for inequalities, and explicit rows for two-sided bounds.
func (s *Solver) buildStandard(p *Problem) (m, total int) {
	nv := len(p.vars)
	if cap(s.forms) < nv {
		s.forms = make([]xform, nv)
	}
	s.forms = s.forms[:nv]
	ncols := 0
	for i, v := range p.vars {
		switch {
		case !math.IsInf(v.lo, -1):
			s.forms[i] = xform{posCol: ncols, negCol: -1, shift: v.lo, sign: 1}
			ncols++
		case !math.IsInf(v.hi, 1):
			s.forms[i] = xform{posCol: ncols, negCol: -1, shift: v.hi, sign: -1}
			ncols++
		default:
			s.forms[i] = xform{posCol: ncols, negCol: ncols + 1, shift: 0, sign: 1}
			ncols += 2
		}
	}

	// Count rows and slacks: model constraints plus bound rows for variables
	// whose two-sided bounds the shift alone cannot encode.
	m = len(p.cons)
	nslack := 0
	for _, c := range p.cons {
		if c.rel != EQ {
			nslack++
		}
	}
	for _, v := range p.vars {
		if !math.IsInf(v.lo, -1) && !math.IsInf(v.hi, 1) {
			if v.hi > v.lo {
				m++
				nslack++ // lo + u ≤ hi gains a slack
			} else {
				m++ // u = 0
			}
		}
	}
	total = ncols + nslack

	s.a = growF(s.a, m*total)
	for i := range s.a {
		s.a[i] = 0
	}
	s.b = growF(s.b, m)
	s.c = growF(s.c, total)
	for i := range s.c {
		s.c[i] = 0
	}

	s.rowSlackCol = growI(s.rowSlackCol, m)
	s.rowSlackSign = growF(s.rowSlackSign, m)
	si := ncols // next slack column
	row := 0
	for _, con := range p.cons {
		ar := s.a[row*total : (row+1)*total]
		rhs := con.rhs
		for _, t := range con.expr.Terms {
			if int(t.Var) < 0 || int(t.Var) >= nv {
				panic(ErrBadModel)
			}
			f := s.forms[t.Var]
			ar[f.posCol] += t.Coeff * f.sign
			if f.negCol >= 0 {
				ar[f.negCol] -= t.Coeff
			}
			rhs -= t.Coeff * f.shift
		}
		s.rowSlackCol[row], s.rowSlackSign[row] = -1, 0
		switch con.rel {
		case LE:
			ar[si] = 1
			s.rowSlackCol[row], s.rowSlackSign[row] = si, 1
			si++
		case GE:
			ar[si] = -1
			s.rowSlackCol[row], s.rowSlackSign[row] = si, -1
			si++
		}
		s.b[row] = rhs
		row++
	}
	for i, v := range p.vars {
		if !math.IsInf(v.lo, -1) && !math.IsInf(v.hi, 1) {
			ar := s.a[row*total : (row+1)*total]
			ar[s.forms[i].posCol] = 1
			s.rowSlackCol[row], s.rowSlackSign[row] = -1, 0
			if v.hi > v.lo {
				ar[si] = 1
				s.rowSlackCol[row], s.rowSlackSign[row] = si, 1
				si++
				s.b[row] = v.hi - v.lo
			} else {
				s.b[row] = 0
			}
			row++
		}
	}
	s.rhsNV, s.rhsNC = nv, len(p.cons)

	sense := 1.0
	if p.objSense == Maximize {
		sense = -1
	}
	for _, t := range p.objExpr.Terms {
		f := s.forms[t.Var]
		s.c[f.posCol] += sense * t.Coeff * f.sign
		if f.negCol >= 0 {
			s.c[f.negCol] -= sense * t.Coeff
		}
	}
	return m, total
}

// growTab shapes the tableau workspace to m rows of the given width,
// zeroed.
func (s *Solver) growTab(m, width int) [][]float64 {
	need := m * width
	s.tabBuf = growF(s.tabBuf, need)
	for i := range s.tabBuf {
		s.tabBuf[i] = 0
	}
	if cap(s.tab) < m {
		s.tab = make([][]float64, m)
	}
	t := s.tab[:m]
	for i := range t {
		t[i] = s.tabBuf[i*width : (i+1)*width : (i+1)*width]
	}
	return t
}

// Solve optimizes p with the engine selected by Method: the dense two-phase
// tableau simplex or the sparse revised simplex, warm-starting from the
// previous optimal basis when shapes match either way.
func (s *Solver) Solve(p *Problem) *Solution {
	if s.resolveMethod(p) == MethodRevised {
		return s.solveRevised(p)
	}
	return s.solveDense(p)
}

// resolveMethod applies MethodAuto's size-based dispatch: estimate the dense
// standard-form tableau (bound rows, split frees, slacks, artificials) and
// go revised once it would exceed autoRevisedCells.
func (s *Solver) resolveMethod(p *Problem) Method {
	switch s.Method {
	case MethodDense:
		return MethodDense
	case MethodRevised:
		return MethodRevised
	}
	rows := len(p.cons)
	cols := 0
	for i := range p.vars {
		v := &p.vars[i]
		cols++
		loFin, hiFin := !math.IsInf(v.lo, -1), !math.IsInf(v.hi, 1)
		if loFin && hiFin {
			rows++ // bound row
			cols++ // its slack
		} else if !loFin && !hiFin {
			cols++ // split free variable
		}
	}
	cols += len(p.cons) // slacks/surpluses, upper bound
	if rows*(cols+rows+1) >= autoRevisedCells {
		return MethodRevised
	}
	return MethodDense
}

// solveDense converts p to standard form and runs the dense tableau simplex,
// warm-starting from the previous optimal basis when shapes match.
func (s *Solver) solveDense(p *Problem) *Solution {
	s.Stats.Solves.Add(1)
	s.lastRevised = false
	var t0 time.Time
	if s.Obs != nil {
		t0 = time.Now()
	}
	m, total := s.buildStandard(p)

	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 200 * (total + m + 10)
	}

	sol := &Solution{}
	if m == 0 {
		for _, cj := range s.c {
			if cj < -eps {
				sol.Status = StatusUnbounded
				return sol
			}
		}
		sol.Status = StatusOptimal
		s.xstd = growF(s.xstd, total)
		for i := range s.xstd {
			s.xstd[i] = 0
		}
		s.extract(p, total, sol)
		return sol
	}

	st := StatusIterLimit
	p1, p2 := 0, 0
	warmOK := false
	if len(s.warmBasis) == m && s.warmTotal == total {
		s.Stats.WarmAttempts.Add(1)
		var wp int
		if st, wp = s.warmSolve(m, total, maxIter, p); st == StatusOptimal {
			warmOK = true
			s.Stats.WarmHits.Add(1)
		}
		p2 += wp // warm starts begin feasible: all pivots are phase 2
	}
	if !warmOK {
		s.Stats.ColdSolves.Add(1)
		var cp1, cp2 int
		st, cp1, cp2 = s.coldSolve(m, total, maxIter, p)
		p1 += cp1
		p2 += cp2
	}
	pivots := p1 + p2
	s.Stats.Pivots.Add(int64(pivots))
	s.Stats.Phase1Pivots.Add(int64(p1))
	s.Stats.Phase2Pivots.Add(int64(p2))
	if s.Obs != nil {
		s.Obs.Histogram("lp.solve.ms").Observe(float64(time.Since(t0)) / float64(time.Millisecond))
		s.Obs.Histogram("lp.solve.pivots").Observe(float64(pivots))
	}
	sol.Status = st
	if st != StatusOptimal {
		// A failed solve invalidates the cached basis and RHS factors.
		s.warmBasis = s.warmBasis[:0]
		s.warmTotal = 0
		s.rhsReady = false
		return sol
	}
	s.extract(p, total, sol)
	return sol
}

// warmSolve canonicalizes a fresh tableau around the cached basis and, if
// the resulting vertex is primal feasible, runs phase 2 only. The int return
// is the phase-2 pivot count.
func (s *Solver) warmSolve(m, total, maxIter int, p *Problem) (Status, int) {
	width := total + 1
	t := s.growTab(m, width)
	for i := 0; i < m; i++ {
		copy(t[i], s.a[i*total:(i+1)*total])
		t[i][width-1] = s.b[i]
	}
	basis := growI(s.basis, m)
	// Pivot each cached basis column into its own row. Row swaps keep the
	// elimination stable when the new data permutes which row a basis
	// variable best lives in; a near-zero pivot column means the cached
	// basis is singular for this data and the warm start is abandoned.
	for i := 0; i < m; i++ {
		col := s.warmBasis[i]
		bestRow, bestAbs := -1, 1e-7
		for r := i; r < m; r++ {
			if abs := math.Abs(t[r][col]); abs > bestAbs {
				bestRow, bestAbs = r, abs
			}
		}
		if bestRow < 0 {
			return StatusIterLimit, 0 // singular: fall back cold
		}
		t[i], t[bestRow] = t[bestRow], t[i]
		pivot(t, basis, i, col)
	}
	// Primal feasibility of the warm vertex.
	for i := 0; i < m; i++ {
		if t[i][width-1] < -1e-7 {
			return StatusIterLimit, 0 // infeasible start: fall back cold
		}
		if t[i][width-1] < 0 {
			t[i][width-1] = 0
		}
	}
	s.cost = growF(s.cost, width)
	copy(s.cost, s.c)
	s.cost[width-1] = 0
	s.z = growF(s.z, width)
	_, pivots, st := runSimplex(t, basis, s.cost, total, maxIter, p.Deadline, s.z)
	if st != StatusOptimal {
		return st, pivots
	}
	s.finish(t, basis, total, width)
	return StatusOptimal, pivots
}

// coldSolve runs the full two-phase simplex with artificial variables,
// returning the phase-1 and phase-2 pivot counts separately.
func (s *Solver) coldSolve(m, total, maxIter int, p *Problem) (Status, int, int) {
	width := total + m + 1
	t := s.growTab(m, width)
	for i := 0; i < m; i++ {
		sign := 1.0
		if s.b[i] < 0 {
			sign = -1
		}
		row := t[i]
		ar := s.a[i*total : (i+1)*total]
		for j := 0; j < total; j++ {
			row[j] = sign * ar[j]
		}
		row[total+i] = 1
		row[width-1] = sign * s.b[i]
	}
	basis := growI(s.basis, m)
	for i := range basis {
		basis[i] = total + i
	}

	// Phase 1: minimize the sum of artificials.
	s.cost = growF(s.cost, width)
	for j := range s.cost {
		s.cost[j] = 0
	}
	for j := total; j < total+m; j++ {
		s.cost[j] = 1
	}
	s.z = growF(s.z, width)
	z1, p1, st := runSimplex(t, basis, s.cost, total+m, maxIter, p.Deadline, s.z)
	if st != StatusOptimal {
		return st, p1, 0
	}
	if z1 > 1e-7 {
		return StatusInfeasible, p1, 0
	}
	// Drive remaining artificials out of the basis.
	for i := 0; i < len(t); i++ {
		if basis[i] < total {
			continue
		}
		pivotCol := -1
		for j := 0; j < total; j++ {
			if math.Abs(t[i][j]) > 1e-7 {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			pivot(t, basis, i, pivotCol)
		} else {
			// Redundant row: remove it.
			t = append(t[:i], t[i+1:]...)
			basis = append(basis[:i], basis[i+1:]...)
			i--
		}
	}

	// Phase 2: minimize the real objective. Artificials are nonbasic and
	// excluded from the entering scan, so they stay out.
	copy(s.cost, s.c)
	for j := total; j < width; j++ {
		s.cost[j] = 0
	}
	_, p2, st := runSimplex(t, basis, s.cost, total, maxIter, p.Deadline, s.z)
	if st != StatusOptimal {
		return st, p1, p2
	}
	s.finish(t, basis, total, width)
	return StatusOptimal, p1, p2
}

// finish reads the optimal vertex out of the tableau and caches the basis
// for the next warm start. Only bases covering every original row (no
// redundant rows were dropped) are cached; a partial basis cannot
// canonicalize the full rebuilt tableau.
func (s *Solver) finish(t [][]float64, basis []int, total, width int) {
	s.xstd = growF(s.xstd, total)
	for i := range s.xstd {
		s.xstd[i] = 0
	}
	for i, bi := range basis {
		if bi < total {
			s.xstd[bi] = t[i][width-1]
		}
	}
	s.warmBasis = append(s.warmBasis[:0], basis...)
	s.warmTotal = total
	s.captureRHSFactors(t, basis, width)
}

// solveRevised runs the sparse revised simplex (revised.go). Warm starts
// reuse the retained basis and nonbasic statuses when the problem shape
// matches: a still-primal-feasible basis goes straight to phase 2, a
// primal-infeasible but dual-feasible one to the dual simplex, anything else
// through composite phase 1 — and on any failure the engine falls back to a
// cold crash-basis solve, so a stale basis costs time, never correctness.
func (s *Solver) solveRevised(p *Problem) *Solution {
	s.Stats.Solves.Add(1)
	var t0 time.Time
	if s.Obs != nil {
		t0 = time.Now()
	}
	if s.rev == nil {
		s.rev = &revised{}
	}
	rv := s.rev
	rv.refactorEvery = s.RefactorEvery
	if rv.refactorEvery <= 0 {
		rv.refactorEvery = DefaultRefactorEvery
	}
	s.lastRevised = false

	warmable := rv.valid && rv.nv == len(p.vars) && rv.nc == len(p.cons)
	rv.sf.build(p)
	rv.sfProb = p
	rv.nv, rv.nc = len(p.vars), len(p.cons)
	rv.valid = false
	m := rv.sf.m

	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 100*(m+10) + rv.sf.ncols
	}

	sol := &Solution{}
	if m == 0 {
		// No constraints: every variable sits at its cost-minimizing bound
		// (mirrors the dense engine's standard-form shortcut).
		sol.Status = StatusOptimal
		sol.X = make([]float64, rv.sf.n)
		for j := 0; j < rv.sf.n; j++ {
			c := rv.sf.cost[j]
			lo, hi := rv.sf.lo[j], rv.sf.hi[j]
			switch {
			case c > eps:
				if math.IsInf(lo, -1) {
					sol.Status = StatusUnbounded
					return sol
				}
				sol.X[j] = lo
			case c < -eps:
				if math.IsInf(hi, 1) {
					sol.Status = StatusUnbounded
					return sol
				}
				sol.X[j] = hi
			default:
				if !math.IsInf(lo, -1) {
					sol.X[j] = lo
				} else if !math.IsInf(hi, 1) {
					sol.X[j] = hi
				}
			}
		}
		obj := p.objExpr.Const
		for _, t := range p.objExpr.Terms {
			obj += t.Coeff * sol.X[t.Var]
		}
		sol.Objective = obj
		return sol
	}

	st := StatusIterLimit
	p1, p2 := 0, 0
	warmOK := false
	if warmable && len(rv.basis) == m && len(rv.vstat) == rv.sf.ncols {
		s.Stats.WarmAttempts.Add(1)
		rv.growState()
		rv.normalizeStatuses()
		if rv.refactor(&s.Stats) {
			if !rv.primalFeasible() && rv.dualFeasible() {
				st, _ = rv.dual(&s.Stats, maxIter, p.Deadline)
			} else {
				st, p1, p2 = rv.primal(&s.Stats, maxIter, p.Deadline)
			}
			if st == StatusOptimal {
				warmOK = true
				s.Stats.WarmHits.Add(1)
			}
		}
	}
	if !warmOK && st != StatusInfeasible && st != StatusUnbounded {
		s.Stats.ColdSolves.Add(1)
		rv.coldStart()
		if rv.refactor(&s.Stats) {
			var cp1, cp2 int
			st, cp1, cp2 = rv.primal(&s.Stats, maxIter, p.Deadline)
			p1 += cp1
			p2 += cp2
		} else {
			st = StatusIterLimit
		}
	}
	s.Stats.Pivots.Add(int64(p1 + p2))
	s.Stats.Phase1Pivots.Add(int64(p1))
	s.Stats.Phase2Pivots.Add(int64(p2))
	s.Stats.EtaLen.Store(int64(rv.f.nEtas()))
	if s.Obs != nil {
		s.Obs.Histogram("lp.solve.ms").Observe(float64(time.Since(t0)) / float64(time.Millisecond))
		s.Obs.Histogram("lp.solve.pivots").Observe(float64(p1 + p2))
	}
	sol.Status = st
	if st != StatusOptimal {
		return sol
	}
	rv.valid = true
	s.lastRevised = true
	rv.extract(p, sol)
	return sol
}

// extract maps the standard-form solution back to model variables and
// computes the objective in model space.
func (s *Solver) extract(p *Problem, total int, sol *Solution) {
	sol.X = make([]float64, len(p.vars))
	for i := range p.vars {
		f := s.forms[i]
		u := s.xstd[f.posCol]
		x := f.shift + f.sign*u
		if f.negCol >= 0 {
			x -= s.xstd[f.negCol]
		}
		sol.X[i] = x
	}
	obj := p.objExpr.Const
	for _, t := range p.objExpr.Terms {
		obj += t.Coeff * sol.X[t.Var]
	}
	sol.Objective = obj
}
