package alloc

import (
	"repro/internal/ad"
	"repro/internal/core"
	"repro/internal/nn"
)

// scorerStage is pipeline stage 1: request mix [T] → [mix | logits]
// [T + T·H]. The mix rides along unchanged because the placement stage
// needs both it and the scores, and core.Pipeline is a pure chain.
// Differentiable through the nn tape.
type scorerStage struct{ s *System }

// Name implements core.Component.
func (st *scorerStage) Name() string { return "vm-scorer" }

// Forward implements core.Component.
func (st *scorerStage) Forward(x []float64) []float64 {
	s := st.s
	out := make([]float64, s.T+s.T*s.H)
	copy(out, x)
	copy(out[s.T:], s.scoreLogits(x))
	return out
}

// VJP implements core.Differentiable: the logits cotangent pulls back
// through the MLP tape, the pass-through cotangent adds directly.
func (st *scorerStage) VJP(x, ybar []float64) []float64 {
	s := st.s
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)
	in := c.T.VarMat(x, 1, s.T)
	logits := s.Scorer.Forward(c, ad.Scale(in, 1/s.Cfg.MaxCount))
	ad.BackwardVJP(logits, ybar[s.T:])
	g := make([]float64, s.T)
	if ig := in.Grad(); ig != nil {
		copy(g, ig)
	}
	for i := 0; i < s.T; i++ {
		g[i] += ybar[i]
	}
	return g
}

// placementStage is stage 2: [mix | logits] → per-host per-resource
// utilizations [H·R], via a per-type softmax over hosts and the shared
// load kernels — the differentiable post-processor of the allocator
// pipeline, recorded on the pooled ad tape for the VJP.
type placementStage struct{ s *System }

// Name implements core.Component.
func (st *placementStage) Name() string { return "placement-softmax" }

// Forward implements core.Component.
func (st *placementStage) Forward(x []float64) []float64 {
	return st.s.placeUtil(x)
}

// VJP implements core.Differentiable.
func (st *placementStage) VJP(x, ybar []float64) []float64 {
	s := st.s
	t := ad.GetTape()
	defer ad.PutTape(t)
	in := t.Var(x)
	mixV := ad.Slice(in, 0, s.T)
	logitsV := ad.Slice(in, s.T, s.T+s.T*s.H)
	shares := ad.SegmentSoftmax(logitsV, s.offsets, s.lens)
	util := ad.Custom(t, []ad.Value{mixV, shares}, s.H*s.R, 1, s.loadFwd, s.loadBwd)
	ad.BackwardVJP(util, ybar)
	g := make([]float64, len(x))
	copy(g, in.Grad())
	return g
}

// metricStage is stage 3: utilizations [H·R] → the scalar packing metric.
// Deliberately opaque (a plain Func with no VJP): the analyzer gray-boxes
// it with finite differences or SPSA, exactly like the paper treats
// components it cannot differentiate.
func (s *System) metricStage() core.Component {
	return &core.Func{
		ComponentName: "fragmentation-metric",
		Fn: func(util []float64) []float64 {
			return []float64{maxUtil(util)}
		},
	}
}

// PipelineOptions select how the analyzer sees the allocator.
type PipelineOptions struct {
	// Opaque treats the WHOLE allocator as one black box [T] → metric, so
	// FD/SPSA probes run directly over request-mix vectors. False exposes
	// the three-stage chain (scorer and placement differentiable, metric
	// opaque) and lets the chain rule do most of the work.
	Opaque bool
	// SPSASamples > 0 estimates opaque-stage VJPs with that many SPSA
	// two-point probes instead of coordinate finite differences.
	SPSASamples int
	// FDStep is the probe step for FD/SPSA (0 = 1e-4).
	FDStep float64
	// Seed drives the SPSA probe directions.
	Seed uint64
}

// Pipeline assembles the analyzer's view of the allocator.
func (s *System) Pipeline(o PipelineOptions) *core.Pipeline {
	step := o.FDStep
	if step == 0 {
		step = 1e-4
	}
	wrap := func(c core.Component) core.Component {
		if o.SPSASamples > 0 {
			return core.WithSPSA(c, step, o.SPSASamples, o.Seed+77)
		}
		return core.WithFiniteDiff(c, step)
	}
	if o.Opaque {
		whole := &core.Func{
			ComponentName: "vm-allocator",
			Fn: func(mix []float64) []float64 {
				return []float64{s.Forward(mix)}
			},
		}
		return core.NewPipeline(wrap(whole))
	}
	return core.NewPipeline(&scorerStage{s}, &placementStage{s}, wrap(s.metricStage()))
}

// Target packages the allocator for the shared gray-box searchers: the
// request-mix box is the search space, and scoring goes through the packing
// MILP via RatioOverride — the opaque-stage contract (DESIGN.md §14). No
// alloc-specific search loop exists; core.GradientSearch does all the work.
func (s *System) Target(o PipelineOptions) *core.AttackTarget {
	t := &core.AttackTarget{
		Pipeline:    s.Pipeline(o),
		InputDim:    s.T,
		DemandStart: 0,
		DemandLen:   s.T,
		PS:          nil, // non-TE system: scoring comes from RatioOverride
		MaxDemand:   s.Cfg.MaxCount,
	}
	t.RatioOverride = s.Ratio
	return t
}
