package alloc

import (
	"context"
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/milp"
)

// Quantize rounds a continuous request-mix search point to integer
// per-type counts clamped to [0, MaxCount]. The searchers explore a
// continuous box; the MILP baseline only accepts whole VMs. The quantum
// matches core.NewEvalCache(·, 1.0) keys, so memoization dedups exactly
// the points that score identically.
func (s *System) Quantize(mix []float64) []int {
	n := make([]int, s.T)
	for t := 0; t < s.T; t++ {
		v := math.Round(mix[t])
		if v < 0 {
			v = 0
		}
		if v > s.Cfg.MaxCount {
			v = s.Cfg.MaxCount
		}
		n[t] = int(v)
	}
	return n
}

// OptimalPacking solves the integral bin-packing MILP for the request
// counts n: minimize the peak utilization u subject to every request being
// placed and every host fitting its load within u·capacity:
//
//	min u
//	s.t.  Σ_h y[t][h] = n[t]                        ∀ t
//	      Σ_t dem[t][r]·y[t][h] − cap[h][r]·u ≤ 0   ∀ h, r
//	      y[t][h] ∈ {0, …, n[t]},  u ≥ 0
//
// This is the opaque optimal-baseline component of the case study: the
// analyzer only ever sees its objective value. The solve runs under the
// configured node budget so scoring stays deterministic.
func (s *System) OptimalPacking(n []int) *milp.Solution {
	p := milp.NewProblem()
	u := p.AddVariable("u", 0, math.Inf(1))
	y := make([]lp.VarID, s.T*s.H)
	for t := 0; t < s.T; t++ {
		for h := 0; h < s.H; h++ {
			y[t*s.H+h] = p.AddInteger(fmt.Sprintf("y_%d_%d", t, h), 0, float64(n[t]))
		}
	}
	for t := 0; t < s.T; t++ {
		e := lp.NewExpr()
		for h := 0; h < s.H; h++ {
			e.Add(1, y[t*s.H+h])
		}
		p.AddConstraint(fmt.Sprintf("place_%d", t), e, lp.EQ, float64(n[t]))
	}
	for h := 0; h < s.H; h++ {
		for r := 0; r < s.R; r++ {
			e := lp.NewExpr()
			for t := 0; t < s.T; t++ {
				if d := s.Cfg.TypeDemands[t][r]; d != 0 {
					e.Add(d, y[t*s.H+h])
				}
			}
			e.Add(-s.Cfg.HostCaps[h][r], u)
			p.AddConstraint(fmt.Sprintf("cap_%d_%d", h, r), e, lp.LE, 0)
		}
	}
	obj := lp.NewExpr().Add(1, u)
	p.SetObjective(lp.Minimize, obj)
	ctx := s.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return p.SolveCtx(ctx, milp.Options{
		MaxNodes:  s.Cfg.MILPMaxNodes,
		MaxTime:   s.Cfg.MILPMaxTime,
		Workers:   s.Cfg.MILPWorkers,
		Executor:  s.Exec,
		Obs:       s.Obs,
		ColdClone: s.Cfg.MILPColdClone,
	})
}

// Ratio is the alloc analog of the TE performance ratio (Eq. 2) and plugs
// straight into core.AttackTarget.RatioOverride: the allocator's peak
// utilization on the quantized mix over the packing MILP's optimum for the
// same counts. Ratios above one measure how much fragmentation the learned
// scorer leaves on the table versus an exact packer.
func (s *System) Ratio(x []float64) (ratio, sys, opt float64, err error) {
	n := s.Quantize(x)
	total := 0
	for _, c := range n {
		total += c
	}
	if total == 0 {
		return 1, 0, 0, nil
	}
	mix := make([]float64, s.T)
	for t, c := range n {
		mix[t] = float64(c)
	}
	sys = s.Forward(mix)
	ms := s.OptimalPacking(n)
	if ms.Status != milp.Optimal && ms.Status != milp.Feasible {
		// No usable baseline under the node budget: reject the step (the
		// searchers contain per-restart eval faults and move on).
		return 0, 0, 0, fmt.Errorf("alloc: packing MILP %v after %d nodes", ms.Status, ms.Nodes)
	}
	opt = ms.Objective
	if opt <= 1e-12 {
		return 1, sys, opt, nil
	}
	return sys / opt, sys, opt, nil
}

// FractionalOptimal solves the LP relaxation of the packing problem for an
// arbitrary (not necessarily integral) load matrix: place load[t][r]
// fractionally across hosts to minimize peak utilization. This is the
// promoted version of examples/scheduler's ad-hoc baseline — one shared,
// global-free implementation both case-study examples call.
func FractionalOptimal(load, caps [][]float64) (float64, error) {
	T := len(load)
	H := len(caps)
	if T == 0 || H == 0 {
		return 0, fmt.Errorf("alloc: FractionalOptimal needs load and capacity rows")
	}
	R := len(caps[0])
	p := lp.NewProblem()
	u := p.AddVariable("u", 0, math.Inf(1))
	f := make([]lp.VarID, T*H)
	for t := 0; t < T; t++ {
		for h := 0; h < H; h++ {
			f[t*H+h] = p.AddVariable(fmt.Sprintf("f_%d_%d", t, h), 0, 1)
		}
	}
	for t := 0; t < T; t++ {
		e := lp.NewExpr()
		for h := 0; h < H; h++ {
			e.Add(1, f[t*H+h])
		}
		p.AddConstraint(fmt.Sprintf("split_%d", t), e, lp.EQ, 1)
	}
	for h := 0; h < H; h++ {
		for r := 0; r < R; r++ {
			e := lp.NewExpr()
			for t := 0; t < T; t++ {
				if load[t][r] != 0 {
					e.Add(load[t][r], f[t*H+h])
				}
			}
			e.Add(-caps[h][r], u)
			p.AddConstraint(fmt.Sprintf("cap_%d_%d", h, r), e, lp.LE, 0)
		}
	}
	p.SetObjective(lp.Minimize, lp.NewExpr().Add(1, u))
	s := p.Solve()
	if s.Status != lp.StatusOptimal {
		return 0, fmt.Errorf("alloc: fractional packing LP %v", s.Status)
	}
	return s.Objective, nil
}

// MixReport is the human-facing explanation of one request mix, used by the
// CLI and the example self-check.
type MixReport struct {
	Counts        []int   `json:"counts"`
	Ratio         float64 `json:"ratio"`
	SysUtil       float64 `json:"sys_util"`
	OptUtil       float64 `json:"opt_util"`
	Fragmentation float64 `json:"fragmentation"`
	MILPStatus    string  `json:"milp_status"`
	MILPNodes     int     `json:"milp_nodes"`
	BestBound     float64 `json:"best_bound"`
	Gap           float64 `json:"gap"`
	LPBound       float64 `json:"lp_bound"`
	// Warm-engine solver telemetry (see milp.Solution): node relaxations
	// completed warm from a parent basis, the dual pivots they spent, and
	// the relaxations that needed a full cold solve.
	NodeResolves  int `json:"node_resolves"`
	DualPivots    int `json:"dual_pivots"`
	ColdFallbacks int `json:"cold_fallbacks"`
}

// Explain evaluates a mix and reports every quantity of interest: the
// system and MILP-optimal peak utilizations, their ratio, the fragmentation
// score, and the MILP's own soundness telemetry (status, nodes, BestBound,
// gap) — the numbers the soundness fixes in internal/milp exist to make
// trustworthy.
func (s *System) Explain(x []float64) (*MixReport, error) {
	n := s.Quantize(x)
	mix := make([]float64, s.T)
	load := make([][]float64, s.T)
	for t, c := range n {
		mix[t] = float64(c)
		load[t] = make([]float64, s.R)
		for r := 0; r < s.R; r++ {
			load[t][r] = float64(c) * s.Cfg.TypeDemands[t][r]
		}
	}
	rep := &MixReport{
		Counts:        n,
		SysUtil:       s.Forward(mix),
		Fragmentation: s.Fragmentation(mix),
	}
	ms := s.OptimalPacking(n)
	rep.MILPStatus = ms.Status.String()
	rep.MILPNodes = ms.Nodes
	rep.BestBound = ms.BestBound
	rep.NodeResolves = ms.NodeResolves
	rep.DualPivots = ms.DualPivots
	rep.ColdFallbacks = ms.ColdFallbacks
	if ms.Status == milp.Optimal || ms.Status == milp.Feasible {
		rep.OptUtil = ms.Objective
		rep.Gap = ms.Gap()
		if rep.OptUtil > 1e-12 {
			rep.Ratio = rep.SysUtil / rep.OptUtil
		} else {
			rep.Ratio = 1
		}
	} else {
		return rep, fmt.Errorf("alloc: packing MILP %v after %d nodes", ms.Status, ms.Nodes)
	}
	if lb, err := FractionalOptimal(load, s.Cfg.HostCaps); err == nil {
		rep.LPBound = lb
	}
	return rep, nil
}
