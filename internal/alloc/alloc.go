// Package alloc is the repository's second full case study: a gray-box
// end-to-end performance analysis of an ML-augmented VM allocator, in the
// shape of the follow-up paper ("A Performance Analyzer for a Public
// Cloud's ML-Augmented VM Allocator", same group). The pipeline mirrors
// that system:
//
//	request mix ──► ML scorer ──► placement post-processor ──► fragmentation
//	  [T]           (MLP over      (per-type softmax over        metric
//	                 candidate      hosts, on the ad tape)       (opaque)
//	                 hosts)
//
// and the optimal baseline is the integral bin-packing MILP
// (internal/milp) treated as the OPAQUE component: the analyzer never sees
// inside the branch and bound, it only scores candidates against its
// incumbent through core.AttackTarget.RatioOverride. Everything else —
// FD/SPSA gray-boxing, gradient search, EvalCache memoization, telemetry —
// is the exact same internal/core machinery the DOTE case study uses,
// which is the point: two domains, one analyzer.
package alloc

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/ad"
	"repro/internal/milp"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Config describes the datacenter slice and the scorer.
type Config struct {
	// TypeDemands[t][r] is the per-instance demand of VM type t on
	// resource r (e.g. vCPUs, memory).
	TypeDemands [][]float64
	// HostCaps[h][r] is host h's capacity on resource r.
	HostCaps [][]float64
	// MaxCount is the per-type request-count box bound the adversary
	// searches within (the alloc analog of MaxDemand).
	MaxCount float64
	// Hidden is the scorer MLP's hidden layer widths.
	Hidden []int
	// Seed drives scorer initialization and training traffic.
	Seed uint64
	// TrainEpochs is the number of self-supervised training steps.
	TrainEpochs int
	// TrainLR is the Adam learning rate.
	TrainLR float64
	// MILPMaxNodes bounds the packing MILP's branch and bound per solve.
	// Node budgets (not wall-clock ones) keep scoring deterministic.
	MILPMaxNodes int
	// MILPMaxTime optionally bounds MILP wall clock (0 = unlimited;
	// introduces timing nondeterminism, so the self-checks leave it 0).
	MILPMaxTime time.Duration
	// MILPWorkers is the number of LP relaxations the packing MILP solves
	// concurrently per wave (≤1 = sequential). The warm engine's results are
	// bitwise independent of this knob, so it is a pure throughput dial.
	MILPWorkers int
	// MILPColdClone selects the legacy clone-per-node MILP engine. Kept as
	// the A/B baseline for the warm-engine benchmarks, not for production.
	MILPColdClone bool
}

// DefaultConfig is the full-scale configuration: 6 VM types across 4
// heterogeneous hosts and 2 resources (vCPU, memory).
func DefaultConfig() Config {
	return Config{
		TypeDemands: [][]float64{
			{1, 2}, // small, memory-leaning
			{2, 1}, // small, cpu-leaning
			{4, 4}, // balanced medium
			{8, 2}, // cpu-heavy large
			{2, 8}, // memory-heavy large
			{1, 1}, // micro
		},
		HostCaps: [][]float64{
			{16, 16},
			{32, 24},
			{24, 32},
			{48, 48},
		},
		MaxCount:     12,
		Hidden:       []int{48},
		TrainEpochs:  400,
		TrainLR:      2e-3,
		MILPMaxNodes: 20000,
	}
}

// QuickConfig is the laptop-scale configuration used by tests, the
// examples/alloc self-check and -quick CLI runs.
func QuickConfig() Config {
	c := DefaultConfig()
	c.TypeDemands = c.TypeDemands[:4]
	c.HostCaps = c.HostCaps[:3]
	c.MaxCount = 8
	c.Hidden = []int{32}
	c.TrainEpochs = 200
	c.MILPMaxNodes = 8000
	return c
}

// System is an instantiated allocator: the datacenter shape plus a scorer.
type System struct {
	Cfg     Config
	T, H, R int
	Scorer  *nn.Sequential

	// Obs, when non-nil, receives the packing MILP's telemetry (milp.nodes,
	// milp.warm_hits, …) so `-metrics` surfaces the baseline's solver work.
	Obs *obs.Registry
	// Exec, when non-nil and MILPWorkers > 1, runs the MILP's per-wave LP
	// solves (e.g. a shared serve.Pool).
	Exec milp.Executor
	// ctx bounds baseline MILP solves; set via Bind (nil = background). The
	// indirection exists because core.AttackTarget.RatioOverride has no
	// context parameter — the search's context is bound once up front.
	ctx context.Context

	// offsets/lens are the per-type host segments of the [T·H] logit
	// vector, shared by every softmax in the package. Retained by live
	// tapes, so never mutated after New.
	offsets, lens []int

	// loadFwd/loadBwd are the placement kernels recorded onto tapes by the
	// placement stage and the training objective: built once here so the
	// per-evaluation hot path allocates no closures.
	loadFwd func(in [][]float64, out []float64)
	loadBwd func(in [][]float64, out, gout []float64, gin [][]float64)
}

// New builds a system with a freshly initialized (untrained) scorer.
func New(cfg Config) (*System, error) {
	T := len(cfg.TypeDemands)
	H := len(cfg.HostCaps)
	if T == 0 || H == 0 {
		return nil, fmt.Errorf("alloc: need at least one VM type and one host")
	}
	R := len(cfg.TypeDemands[0])
	for t, d := range cfg.TypeDemands {
		if len(d) != R {
			return nil, fmt.Errorf("alloc: type %d has %d resources, want %d", t, len(d), R)
		}
	}
	for h, c := range cfg.HostCaps {
		if len(c) != R {
			return nil, fmt.Errorf("alloc: host %d has %d resources, want %d", h, len(c), R)
		}
		for r, v := range c {
			if v <= 0 {
				return nil, fmt.Errorf("alloc: host %d resource %d capacity %v must be positive", h, r, v)
			}
		}
	}
	if cfg.MaxCount <= 0 {
		return nil, fmt.Errorf("alloc: MaxCount must be positive")
	}
	s := &System{Cfg: cfg, T: T, H: H, R: R}
	sizes := append(append([]int{T}, cfg.Hidden...), T*H)
	s.Scorer = nn.MLP("vm-scorer", sizes, nn.ActELU, rng.New(cfg.Seed))
	s.offsets = make([]int, T)
	s.lens = make([]int, T)
	for t := 0; t < T; t++ {
		s.offsets[t] = t * H
		s.lens[t] = H
	}
	dem, caps := cfg.TypeDemands, cfg.HostCaps
	s.loadFwd = func(in [][]float64, out []float64) {
		mix, shares := in[0], in[1]
		for t := 0; t < T; t++ {
			if mix[t] == 0 {
				continue
			}
			for h := 0; h < H; h++ {
				f := mix[t] * shares[t*H+h]
				for r := 0; r < R; r++ {
					out[h*R+r] += f * dem[t][r]
				}
			}
		}
		for h := 0; h < H; h++ {
			for r := 0; r < R; r++ {
				out[h*R+r] /= caps[h][r]
			}
		}
	}
	s.loadBwd = func(in [][]float64, out, gout []float64, gin [][]float64) {
		mix, shares := in[0], in[1]
		gm, gs := gin[0], gin[1]
		for t := 0; t < T; t++ {
			for h := 0; h < H; h++ {
				sum := 0.0
				for r := 0; r < R; r++ {
					sum += gout[h*R+r] * dem[t][r] / caps[h][r]
				}
				if gm != nil {
					gm[t] += shares[t*H+h] * sum
				}
				if gs != nil {
					gs[t*H+h] += mix[t] * sum
				}
			}
		}
	}
	return s, nil
}

// Train runs the self-supervised recipe of the DOTE family: the scorer
// directly minimizes the differentiable softmax-placement utilization on
// random request mixes — the same "train against the metric you serve"
// loop the VM allocator paper describes for its scorer. Deterministic for
// a fixed Config.Seed. progress, when non-nil, receives occasional lines.
func (s *System) Train(progress func(string)) {
	r := rng.New(s.Cfg.Seed + 1)
	opt := nn.NewAdam(s.Cfg.TrainLR)
	mix := make([]float64, s.T)
	for epoch := 0; epoch < s.Cfg.TrainEpochs; epoch++ {
		for i := range mix {
			mix[i] = r.Float64() * s.Cfg.MaxCount / 2
		}
		c := nn.GetCtx(true)
		loss := s.softUtil(c, mix)
		nn.ZeroGrads(s.Scorer.Params())
		ad.Backward(loss)
		c.Harvest()
		lv := loss.ScalarValue()
		nn.PutCtx(c)
		opt.Step(s.Scorer.Params())
		if progress != nil && (epoch+1)%100 == 0 {
			progress(fmt.Sprintf("alloc scorer epoch %d/%d: soft util %.3f", epoch+1, s.Cfg.TrainEpochs, lv))
		}
	}
}

// softUtil is the differentiable training objective: scorer logits →
// softmax placement → max host utilization.
func (s *System) softUtil(c *nn.Ctx, mix []float64) ad.Value {
	in := c.T.ConstMat(mix, 1, s.T)
	logits := s.Scorer.Forward(c, ad.Scale(in, 1/s.Cfg.MaxCount))
	shares := ad.SegmentSoftmax(ad.Reshape(logits, s.T*s.H, 1), s.offsets, s.lens)
	mv := c.T.Const(mix)
	util := ad.Custom(c.T, []ad.Value{mv, shares}, s.H*s.R, 1, s.loadFwd, s.loadBwd)
	return ad.Max(util)
}

// scoreLogits evaluates the scorer on a mix, returning the [T·H] logits.
// The result is copied out of the pooled tape.
func (s *System) scoreLogits(mix []float64) []float64 {
	c := nn.GetCtx(false)
	defer nn.PutCtx(c)
	in := c.T.ConstMat(mix, 1, s.T)
	logits := s.Scorer.Forward(c, ad.Scale(in, 1/s.Cfg.MaxCount))
	out := make([]float64, s.T*s.H)
	copy(out, logits.Data())
	return out
}

// placeUtil computes per-host per-resource utilizations [H·R] from a
// [mix | logits] vector in plain Go, with the same max-subtracted softmax
// arithmetic as ad.SegmentSoftmax.
func (s *System) placeUtil(x []float64) []float64 {
	mix, logits := x[:s.T], x[s.T:]
	util := make([]float64, s.H*s.R)
	shares := make([]float64, s.H)
	for t := 0; t < s.T; t++ {
		seg := logits[t*s.H : (t+1)*s.H]
		m := math.Inf(-1)
		for _, v := range seg {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for h, v := range seg {
			e := math.Exp(v - m)
			shares[h] = e
			sum += e
		}
		for h := 0; h < s.H; h++ {
			f := mix[t] * shares[h] / sum
			for r := 0; r < s.R; r++ {
				util[h*s.R+r] += f * s.Cfg.TypeDemands[t][r]
			}
		}
	}
	for h := 0; h < s.H; h++ {
		for r := 0; r < s.R; r++ {
			util[h*s.R+r] /= s.Cfg.HostCaps[h][r]
		}
	}
	return util
}

// maxUtil reduces a utilization vector to the packing metric: the maximum
// per-host per-resource utilization (the bin-packing analog of the MLU).
func maxUtil(util []float64) float64 {
	m := 0.0
	for _, v := range util {
		if v > m {
			m = v
		}
	}
	return m
}

// Forward evaluates the whole allocator on a request mix: scorer →
// placement → metric. This is the system H(x) whose worst case the
// analyzer hunts.
func (s *System) Forward(mix []float64) float64 {
	x := make([]float64, s.T+s.T*s.H)
	copy(x, mix)
	copy(x[s.T:], s.scoreLogits(mix))
	return maxUtil(s.placeUtil(x))
}

// Fragmentation summarizes how unevenly a mix's placement loads the hosts:
// 1 − mean/max utilization, in [0, 1). Zero means perfectly balanced; high
// values mean capacity stranded on idle hosts while one host saturates —
// the failure mode the VM-allocator analysis measures.
func (s *System) Fragmentation(mix []float64) float64 {
	x := make([]float64, s.T+s.T*s.H)
	copy(x, mix)
	copy(x[s.T:], s.scoreLogits(mix))
	util := s.placeUtil(x)
	max := maxUtil(util)
	if max == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range util {
		mean += v
	}
	mean /= float64(len(util))
	return 1 - mean/max
}

// Bind attaches ctx to every subsequent baseline MILP solve: when the
// analyzer's search context is cancelled or hits its deadline, in-flight
// packing solves stop at the next wave boundary instead of running their
// node budget out. Call once before the search; not safe to call
// concurrently with evaluations.
func (s *System) Bind(ctx context.Context) { s.ctx = ctx }

// AverageMix is the nominal operating point: every type at half its box
// bound — the mix the self-checks compare the adversarial ratio against.
func (s *System) AverageMix() []float64 {
	m := make([]float64, s.T)
	for i := range m {
		m[i] = s.Cfg.MaxCount / 2
	}
	return m
}
