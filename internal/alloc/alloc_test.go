package alloc

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/milp"
)

func quickSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	bad := QuickConfig()
	bad.TypeDemands = nil
	if _, err := New(bad); err == nil {
		t.Fatal("want error for empty type set")
	}
	bad = QuickConfig()
	bad.HostCaps[0] = []float64{1} // wrong resource arity
	if _, err := New(bad); err == nil {
		t.Fatal("want error for mismatched resource count")
	}
	bad = QuickConfig()
	bad.MaxCount = 0
	if _, err := New(bad); err == nil {
		t.Fatal("want error for non-positive MaxCount")
	}
}

func TestPipelinesAgreeWithForward(t *testing.T) {
	s := quickSystem(t)
	staged := s.Pipeline(PipelineOptions{})
	opaque := s.Pipeline(PipelineOptions{Opaque: true})
	mix := []float64{3, 1, 5, 2}
	want := s.Forward(mix)
	if got := staged.EvalScalar(mix); math.Abs(got-want) > 1e-12 {
		t.Fatalf("staged pipeline = %v, Forward = %v", got, want)
	}
	if got := opaque.EvalScalar(mix); math.Abs(got-want) > 1e-12 {
		t.Fatalf("opaque pipeline = %v, Forward = %v", got, want)
	}
}

// The staged pipeline's end-to-end gradient (analytic scorer and placement
// VJPs chained with the FD-wrapped metric) must agree with a central finite
// difference of the whole system — the gray-box contract.
func TestStagedGradMatchesFD(t *testing.T) {
	s := quickSystem(t)
	staged := s.Pipeline(PipelineOptions{FDStep: 1e-5})
	mix := []float64{3.3, 1.7, 5.1, 2.4}
	g := staged.Grad(mix)
	const h = 1e-5
	for i := range mix {
		xp := append([]float64(nil), mix...)
		xm := append([]float64(nil), mix...)
		xp[i] += h
		xm[i] -= h
		fd := (s.Forward(xp) - s.Forward(xm)) / (2 * h)
		if math.Abs(g[i]-fd) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("coord %d: staged grad %v, FD %v", i, g[i], fd)
		}
	}
}

func TestSPSAPipelineGradFinite(t *testing.T) {
	s := quickSystem(t)
	p := s.Pipeline(PipelineOptions{Opaque: true, SPSASamples: 8, FDStep: 1e-3, Seed: 3})
	g := p.Grad([]float64{3, 1, 5, 2})
	if len(g) != s.T {
		t.Fatalf("grad len = %d, want %d", len(g), s.T)
	}
	nonzero := false
	for _, v := range g {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite SPSA gradient %v", g)
		}
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("SPSA gradient identically zero")
	}
}

// The packing MILP must prove optimality on quick-config instances, beat
// (or match) its own LP relaxation bound, and report a closed gap — the
// exact invariants the milp soundness fixes exist to guarantee.
func TestOptimalPackingSanity(t *testing.T) {
	s := quickSystem(t)
	n := []int{4, 4, 4, 4}
	ms := s.OptimalPacking(n)
	if ms.Status != milp.Optimal {
		t.Fatalf("status = %v, want optimal", ms.Status)
	}
	if ms.Gap() != 0 {
		t.Fatalf("gap = %v at optimality", ms.Gap())
	}
	load := make([][]float64, s.T)
	for tt, c := range n {
		load[tt] = make([]float64, s.R)
		for r := 0; r < s.R; r++ {
			load[tt][r] = float64(c) * s.Cfg.TypeDemands[tt][r]
		}
	}
	lb, err := FractionalOptimal(load, s.Cfg.HostCaps)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Objective < lb-1e-9 {
		t.Fatalf("integral optimum %v below fractional bound %v", ms.Objective, lb)
	}
	if ms.Objective <= 0 {
		t.Fatalf("optimum %v not positive for a nonzero mix", ms.Objective)
	}
}

func TestRatioQuantizesAndIsDeterministic(t *testing.T) {
	s := quickSystem(t)
	x := []float64{3.4, 0.6, 9.9, -1.2} // rounds+clamps to [3 1 8 0]
	r1, sys1, opt1, err := s.Ratio(x)
	if err != nil {
		t.Fatal(err)
	}
	r2, sys2, opt2, err := s.Ratio(x)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 || sys1 != sys2 || opt1 != opt2 {
		t.Fatalf("Ratio not deterministic: (%v %v %v) vs (%v %v %v)", r1, sys1, opt1, r2, sys2, opt2)
	}
	if got, want := s.Quantize(x), []int{3, 1, 8, 0}; !equalInts(got, want) {
		t.Fatalf("Quantize = %v, want %v", got, want)
	}
	if r1 < 1-1e-9 {
		t.Fatalf("ratio %v below 1: system beat the exact packer", r1)
	}
	// The all-zero mix scores trivially without touching the MILP.
	r0, sys0, opt0, err := s.Ratio(make([]float64, s.T))
	if err != nil {
		t.Fatal(err)
	}
	if r0 != 1 || sys0 != 0 || opt0 != 0 {
		t.Fatalf("zero mix = (%v %v %v), want (1 0 0)", r0, sys0, opt0)
	}
}

func TestExplainReportsSoundnessTelemetry(t *testing.T) {
	s := quickSystem(t)
	rep, err := s.Explain(s.AverageMix())
	if err != nil {
		t.Fatal(err)
	}
	if rep.MILPStatus != "optimal" {
		t.Fatalf("milp status = %q", rep.MILPStatus)
	}
	if math.IsInf(rep.BestBound, 0) || rep.BestBound != rep.OptUtil {
		t.Fatalf("BestBound %v inconsistent with optimum %v", rep.BestBound, rep.OptUtil)
	}
	if rep.LPBound > rep.OptUtil+1e-9 {
		t.Fatalf("LP bound %v above integral optimum %v", rep.LPBound, rep.OptUtil)
	}
	if rep.Fragmentation < 0 || rep.Fragmentation >= 1 {
		t.Fatalf("fragmentation %v out of [0,1)", rep.Fragmentation)
	}
}

// The acceptance check in miniature: the shared gradient search, scoring
// through the MILP ratio oracle, must find a request mix strictly worse
// than the nominal average mix — deterministically at a fixed seed.
func TestSearchFindsWorseThanAverageMix(t *testing.T) {
	cfg := QuickConfig()
	cfg.TrainEpochs = 80
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Train(nil)
	avg, _, _, err := s.Ratio(s.AverageMix())
	if err != nil {
		t.Fatal(err)
	}
	gcfg := core.DefaultGradientConfig()
	gcfg.Iters = 40
	gcfg.Restarts = 4
	gcfg.EvalEvery = 2
	gcfg.AlphaD = 0.5
	gcfg.EvalCache = core.NewEvalCache(1024, 1.0)
	res, err := core.GradientSearch(s.Target(PipelineOptions{}), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("search found nothing")
	}
	if !(res.BestRatio > avg) {
		t.Fatalf("best ratio %v not strictly above average-mix ratio %v", res.BestRatio, avg)
	}
	res2, err := core.GradientSearch(s.Target(PipelineOptions{}), gcfg)
	if err != nil {
		t.Fatal(err)
	}
	// The continuous BestX may differ between runs when concurrent restarts
	// tie on the best ratio; what must be reproducible is the score and the
	// quantized mix the MILP actually certified.
	if res2.BestRatio != res.BestRatio || !equalInts(s.Quantize(res2.BestX), s.Quantize(res.BestX)) {
		t.Fatalf("search not deterministic: %v@%v vs %v@%v", res.BestRatio, res.BestX, res2.BestRatio, res2.BestX)
	}
}

func TestScorerSaveLoadRoundTrip(t *testing.T) {
	s := quickSystem(t)
	cfg := s.Cfg
	cfg.TrainEpochs = 20
	s.Cfg = cfg
	s.Train(nil)
	mix := []float64{2, 5, 1, 4}
	want := s.Forward(mix)
	var buf bytes.Buffer
	if err := s.SaveScorer(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := quickSystem(t)
	if fresh.Forward(mix) == want {
		t.Skip("untrained scorer coincides with trained; pick a different mix")
	}
	if err := fresh.LoadScorer(&buf); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Forward(mix); got != want {
		t.Fatalf("round-tripped Forward = %v, want %v", got, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
