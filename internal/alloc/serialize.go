package alloc

import (
	"io"

	"repro/internal/nn"
)

// SaveScorer writes the scorer's parameters so a trained checkpoint can be
// attacked later without retraining (the `e2eperf alloc -save/-load` flow).
func (s *System) SaveScorer(w io.Writer) error {
	return nn.SaveParams(w, s.Scorer)
}

// LoadScorer restores scorer parameters saved by SaveScorer into a System
// built from the same Config.
func (s *System) LoadScorer(r io.Reader) error {
	return nn.LoadParams(r, s.Scorer)
}
