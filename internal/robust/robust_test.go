package robust

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dote"
	"repro/internal/paths"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func setup(t *testing.T) (*dote.Model, []traffic.Example, []traffic.Example, *core.AttackTarget) {
	t.Helper()
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := dote.DefaultConfig(dote.Curr)
	cfg.Hidden = []int{16}
	m := dote.New(ps, cfg)
	gen := traffic.NewGravity(ps, 0.3, rng.New(21))
	trainEx := traffic.CurrWindows(traffic.Sequence(gen, 50))
	testEx := traffic.CurrWindows(traffic.Sequence(gen, 15))
	opts := dote.DefaultTrainOptions()
	opts.Epochs = 8
	opts.LR = 3e-3
	if _, err := dote.Train(m, trainEx, opts); err != nil {
		t.Fatal(err)
	}
	tg := &core.AttackTarget{
		Pipeline:    m.Pipeline(),
		InputDim:    m.InputDim(),
		DemandStart: 0,
		DemandLen:   m.NumPairs(),
		PS:          ps,
		MaxDemand:   ps.Graph.AvgLinkCapacity(),
	}
	return m, trainEx, testEx, tg
}

func TestExamplesFromInputs(t *testing.T) {
	m, _, _, _ := setup(t)
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = float64(i)
	}
	exs := ExamplesFromInputs(m, [][]float64{x})
	if len(exs) != 1 {
		t.Fatal("wrong example count")
	}
	// For Curr: history == demand == x.
	for i := range x {
		if exs[0].History[i] != x[i] || exs[0].Next[i] != x[i] {
			t.Fatal("Curr example conversion wrong")
		}
	}
	// Mutating the example must not alias the input.
	exs[0].Next[0] = -1
	if x[0] == -1 {
		t.Fatal("example aliases the input")
	}
}

func TestExamplesFromInputsHist(t *testing.T) {
	ps := paths.NewPathSet(topology.Triangle(), 2)
	cfg := dote.DefaultConfig(dote.Hist)
	cfg.Hidden = []int{8}
	cfg.HistLen = 2
	m := dote.New(ps, cfg)
	x := make([]float64, m.InputDim())
	for i := range x {
		x[i] = float64(i + 1)
	}
	exs := ExamplesFromInputs(m, [][]float64{x})
	if len(exs[0].History) != m.HistoryDim() || len(exs[0].Next) != m.NumPairs() {
		t.Fatal("Hist example shapes wrong")
	}
	if exs[0].Next[0] != x[m.HistoryDim()] {
		t.Fatal("Hist demand misaligned")
	}
}

func TestHardenReducesAdversarialGap(t *testing.T) {
	m, trainEx, testEx, tg := setup(t)
	// Find adversarial inputs with a short gradient search.
	scfg := core.DefaultGradientConfig()
	scfg.Iters = 120
	scfg.Restarts = 2
	res, err := core.GradientSearch(tg, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Skip("no adversarial input found on this tiny model; nothing to harden")
	}
	opts := dote.DefaultTrainOptions()
	opts.Epochs = 10
	opts.LR = 2e-3
	out, err := Harden(m, trainEx, testEx, [][]float64{res.BestX}, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.BeforeAdv <= 0 || out.AfterAdv <= 0 {
		t.Fatalf("ratios missing: %+v", out)
	}
	// Hardening must improve (or at least not worsen much) the adversarial
	// ratio on the very inputs it trained on.
	if out.AfterAdv > out.BeforeAdv*1.05 {
		t.Fatalf("hardening made the adversarial gap worse: %v -> %v", out.BeforeAdv, out.AfterAdv)
	}
	// And the average case must stay reasonable.
	if out.AfterTest.MeanRatio > out.BeforeTest.MeanRatio*2 {
		t.Fatalf("hardening destroyed average-case performance: %v -> %v",
			out.BeforeTest.MeanRatio, out.AfterTest.MeanRatio)
	}
}

func TestIterativeHarden(t *testing.T) {
	m, trainEx, testEx, tg := setup(t)
	opts := dote.DefaultTrainOptions()
	opts.Epochs = 6
	opts.LR = 2e-3
	mine := func(model *dote.Model, round int) ([]float64, float64, bool) {
		cfg := core.DefaultGradientConfig()
		cfg.Iters = 100
		cfg.Restarts = 1
		cfg.Seed = uint64(500 + round)
		res, err := core.GradientSearch(tg, cfg)
		if err != nil || !res.Found {
			return nil, 0, false
		}
		return res.BestX, res.BestRatio, true
	}
	rounds, err := IterativeHarden(m, trainEx, testEx, 2, 5, opts, mine)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Skip("analyzer found nothing on this tiny model")
	}
	for i, r := range rounds {
		if r.Round != i || r.FoundRatio < 1 || r.TestMean < 1-1e-6 {
			t.Fatalf("bad round record: %+v", r)
		}
	}
}

func TestIterativeHardenValidation(t *testing.T) {
	m, trainEx, testEx, _ := setup(t)
	_, err := IterativeHarden(m, trainEx, testEx, 0, 1, dote.DefaultTrainOptions(), nil)
	if err == nil {
		t.Fatal("accepted zero rounds")
	}
}

func TestHardenValidation(t *testing.T) {
	m, trainEx, testEx, _ := setup(t)
	if _, err := Harden(m, trainEx, testEx, nil, 1, dote.DefaultTrainOptions()); err == nil {
		t.Fatal("accepted empty adversarial set")
	}
}
