// Package robust implements the §6 extension "Improving robustness of
// learning-enabled systems": take the adversarial inputs the analyzer
// found, add them to the DNN's training data, retrain, and measure both the
// adversarial gap and the average-case performance — checking that
// hardening does not hurt the common case.
package robust

import (
	"fmt"

	"repro/internal/dote"
	"repro/internal/te"
	"repro/internal/traffic"
)

// Result reports performance before and after adversarial retraining.
type Result struct {
	// BeforeTest / AfterTest are the in-distribution test statistics; the
	// average case must not degrade materially.
	BeforeTest, AfterTest dote.EvalStats
	// BeforeAdv / AfterAdv are the worst ratios over the adversarial inputs.
	BeforeAdv, AfterAdv float64
}

// ExamplesFromInputs converts raw adversarial search-space inputs into
// supervised training examples for the given model variant.
func ExamplesFromInputs(m *dote.Model, inputs [][]float64) []traffic.Example {
	out := make([]traffic.Example, 0, len(inputs))
	for _, x := range inputs {
		hist, dem := m.SplitInput(x)
		h := append([]float64{}, hist...)
		d := make(te.TrafficMatrix, len(dem))
		copy(d, dem)
		out = append(out, traffic.Example{History: h, Next: d})
	}
	return out
}

// worstRatio evaluates the model on the adversarial inputs and returns the
// largest performance ratio.
func worstRatio(m *dote.Model, inputs [][]float64) (float64, error) {
	worst := 0.0
	for _, x := range inputs {
		ratio, _, _, err := m.PerformanceRatio(x)
		if err != nil {
			return 0, err
		}
		if ratio > worst {
			worst = ratio
		}
	}
	return worst, nil
}

// IterativeResult records one attack-retrain round.
type IterativeResult struct {
	Round int
	// FoundRatio is the gap the analyzer discovered THIS round (against
	// the weights from the previous round).
	FoundRatio float64
	// TestMean is the in-distribution mean ratio after retraining.
	TestMean float64
}

// IterativeHarden runs the full §6 robustness loop: attack, fold the found
// input into the training set, retrain, repeat. mine is called each round
// with the current model and must return an adversarial input and its
// ratio (ok=false stops the loop — the analyzer found nothing). The
// returned trajectory shows whether the discovered gap shrinks over rounds.
func IterativeHarden(
	m *dote.Model,
	trainEx, testEx []traffic.Example,
	rounds, weight int,
	opts dote.TrainOptions,
	mine func(m *dote.Model, round int) (x []float64, ratio float64, ok bool),
) ([]IterativeResult, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("robust: rounds must be >= 1")
	}
	if weight < 1 {
		weight = 1
	}
	augmented := append([]traffic.Example{}, trainEx...)
	var out []IterativeResult
	for round := 0; round < rounds; round++ {
		x, ratio, ok := mine(m, round)
		if !ok {
			break
		}
		advEx := ExamplesFromInputs(m, [][]float64{x})
		for i := 0; i < weight; i++ {
			augmented = append(augmented, advEx...)
		}
		if _, err := dote.Train(m, augmented, opts); err != nil {
			return nil, err
		}
		stats, err := dote.Evaluate(m, testEx)
		if err != nil {
			return nil, err
		}
		out = append(out, IterativeResult{Round: round, FoundRatio: ratio, TestMean: stats.MeanRatio})
	}
	return out, nil
}

// Harden retrains the model on its original training set augmented with the
// adversarial inputs (repeated `weight` times so that a handful of
// adversarial points is not drowned out), then reports before/after
// statistics on testEx and on the adversarial inputs themselves.
func Harden(m *dote.Model, trainEx, testEx []traffic.Example, advInputs [][]float64, weight int, opts dote.TrainOptions) (*Result, error) {
	if len(advInputs) == 0 {
		return nil, fmt.Errorf("robust: no adversarial inputs")
	}
	if weight < 1 {
		weight = 1
	}
	res := &Result{}
	var err error
	if res.BeforeTest, err = dote.Evaluate(m, testEx); err != nil {
		return nil, err
	}
	if res.BeforeAdv, err = worstRatio(m, advInputs); err != nil {
		return nil, err
	}
	augmented := append([]traffic.Example{}, trainEx...)
	advEx := ExamplesFromInputs(m, advInputs)
	for i := 0; i < weight; i++ {
		augmented = append(augmented, advEx...)
	}
	if _, err = dote.Train(m, augmented, opts); err != nil {
		return nil, err
	}
	if res.AfterTest, err = dote.Evaluate(m, testEx); err != nil {
		return nil, err
	}
	if res.AfterAdv, err = worstRatio(m, advInputs); err != nil {
		return nil, err
	}
	return res, nil
}
