package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// paramBlob is the on-disk form of a parameter.
type paramBlob struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// SaveParams writes the parameters of a layer to w (gob encoding).
func SaveParams(w io.Writer, l Layer) error {
	var blobs []paramBlob
	for _, p := range l.Params() {
		blobs = append(blobs, paramBlob{Name: p.Name, Rows: p.Rows, Cols: p.Cols, Data: p.Data})
	}
	return gob.NewEncoder(w).Encode(blobs)
}

// LoadParams reads parameters previously written by SaveParams into a layer
// with an identical architecture. Parameters are matched positionally and
// validated by shape.
func LoadParams(r io.Reader, l Layer) error {
	var blobs []paramBlob
	if err := gob.NewDecoder(r).Decode(&blobs); err != nil {
		return err
	}
	params := l.Params()
	if len(blobs) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", len(blobs), len(params))
	}
	for i, b := range blobs {
		p := params[i]
		if b.Rows != p.Rows || b.Cols != p.Cols {
			return fmt.Errorf("nn: param %d (%s) shape %dx%d, model wants %dx%d",
				i, b.Name, b.Rows, b.Cols, p.Rows, p.Cols)
		}
		copy(p.Data, b.Data)
	}
	return nil
}
