package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMinibatchMSEStepLearns(t *testing.T) {
	r := rng.New(1)
	net := MLP("m", []int{2, 16, 1}, ActTanh, r)
	opt := NewAdam(5e-3)
	mb := NewMinibatch(2, 1, 8)
	target := func(x []float64) float64 { return 0.7*x[0] - 0.4*x[1] }

	first, last := 0.0, 0.0
	for step := 0; step < 400; step++ {
		mb.Reset()
		for i := 0; i < 8; i++ {
			x := []float64{r.Uniform(-1, 1), r.Uniform(-1, 1)}
			mb.Add(x, []float64{target(x)})
		}
		if mb.Len() != 8 {
			t.Fatalf("batch len = %d", mb.Len())
		}
		loss := MSEStep(net, opt, mb)
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if !(last < first/10) {
		t.Fatalf("training did not converge: first loss %v, last %v", first, last)
	}
}

func TestMinibatchAddScaled(t *testing.T) {
	mb := NewMinibatch(3, 1, 2)
	mb.AddScaled([]float64{2, 9, -4}, []float64{5}, []float64{2, 3, 4})
	want := []float64{1, 3, -1}
	for i, v := range want {
		if mb.X[i] != v {
			t.Fatalf("scaled X[%d] = %v, want %v", i, mb.X[i], v)
		}
	}
	if mb.Y[0] != 5 {
		t.Fatalf("Y[0] = %v", mb.Y[0])
	}
}

func TestMinibatchReusesStorage(t *testing.T) {
	mb := NewMinibatch(4, 1, 16)
	fill := func() {
		mb.Reset()
		for i := 0; i < 16; i++ {
			mb.Add([]float64{1, 2, 3, 4}, []float64{1})
		}
	}
	fill()
	base := &mb.X[0]
	for round := 0; round < 50; round++ {
		fill()
		if &mb.X[0] != base {
			t.Fatal("minibatch reallocated its backing storage at steady state")
		}
	}
	if got := testing.AllocsPerRun(100, fill); got != 0 {
		t.Fatalf("refilling the minibatch allocates %v allocs/op, want 0", got)
	}
}

func TestMSEStepEmptyBatch(t *testing.T) {
	net := MLP("m", []int{2, 4, 1}, ActTanh, rng.New(2))
	before := append([]float64{}, net.Params()[0].Data...)
	mb := NewMinibatch(2, 1, 4)
	if loss := MSEStep(net, NewAdam(1e-3), mb); loss != 0 {
		t.Fatalf("empty batch loss = %v", loss)
	}
	for i, v := range net.Params()[0].Data {
		if v != before[i] {
			t.Fatal("empty batch mutated parameters")
		}
	}
	if math.IsNaN(net.Params()[0].Data[0]) {
		t.Fatal("NaN parameter")
	}
}
